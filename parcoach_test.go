package parcoach_test

import (
	"strings"
	"testing"

	"parcoach"
	"parcoach/internal/core"
)

const cleanSrc = `
func main() {
	MPI_Init()
	var x = rank()
	parallel num_threads(4) {
		pfor i = 0 .. 16 {
			atomic x += i
		}
		single {
			MPI_Allreduce(x, x, sum)
		}
	}
	print(x)
	MPI_Finalize()
}`

const buggySrc = `
func main() {
	MPI_Init()
	var x = 0
	if rank() == 0 {
		MPI_Bcast(x)
	}
	parallel num_threads(2) {
		MPI_Barrier()
	}
	MPI_Finalize()
}`

func TestCompileBaselineHasNoAnalysis(t *testing.T) {
	p, err := parcoach.Compile("clean.mh", cleanSrc, parcoach.Options{Mode: parcoach.ModeBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if p.Analysis != nil || len(p.Diagnostics()) != 0 {
		t.Error("baseline mode must not analyse")
	}
	if p.Timing.Analysis != 0 || p.Timing.Instrument != 0 {
		t.Error("baseline mode must not spend verification time")
	}
	if len(p.IR) == 0 || p.Stats.IRInsts == 0 {
		t.Error("baseline must still produce IR")
	}
}

func TestCompileAnalyzeWarnsWithoutCodegen(t *testing.T) {
	p, err := parcoach.Compile("buggy.mh", buggySrc, parcoach.Options{Mode: parcoach.ModeAnalyze})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Warnings()) == 0 {
		t.Fatal("buggy source must produce warnings")
	}
	if p.Instrumented != nil {
		t.Error("analyze mode must not instrument")
	}
}

func TestCompileFullInstrumentsSelectively(t *testing.T) {
	p, err := parcoach.Compile("buggy.mh", buggySrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrumented == nil {
		t.Fatal("full mode must instrument the flagged program")
	}
	if p.Stats.Checks.CCChecks == 0 && p.Stats.Checks.PhaseCounts == 0 {
		t.Error("instrumentation stats empty")
	}
	// A clean program needs no instrumented tree even in full mode.
	pc, err := parcoach.Compile("clean.mh", cleanSrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if pc.Instrumented != nil {
		t.Error("clean program must not be instrumented")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := parcoach.Compile("bad.mh", "func main( {", parcoach.Options{}); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := parcoach.Compile("bad.mh", "func main() { x = 1 }", parcoach.Options{}); err == nil {
		t.Error("sem error not reported")
	}
}

func TestRunCleanProgram(t *testing.T) {
	p, err := parcoach.Compile("clean.mh", cleanSrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(parcoach.RunOptions{Procs: 2})
	if res.Err != nil {
		t.Fatalf("clean run failed: %v", res.Err)
	}
	// sum 0..15 = 120 per rank, + rank; allreduce over 2 ranks.
	if !strings.Contains(res.Output, "r0: 241") || !strings.Contains(res.Output, "r1: 241") {
		t.Errorf("output wrong:\n%s", res.Output)
	}
}

func TestRunBuggyProgramAbortsWithVerifierError(t *testing.T) {
	p, err := parcoach.Compile("buggy.mh", buggySrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(parcoach.RunOptions{Procs: 2})
	if res.Err == nil {
		t.Fatal("buggy instrumented run must abort")
	}
	if !strings.Contains(res.Err.Error(), "verification error") {
		t.Errorf("want a verifier abort, got: %v", res.Err)
	}
	// The uninstrumented run fails differently (runtime detection).
	res2 := p.RunUninstrumented(parcoach.RunOptions{Procs: 2})
	if res2.Err == nil {
		t.Error("uninstrumented buggy run must also fail (ground truth)")
	}
}

func TestModeString(t *testing.T) {
	if parcoach.ModeBaseline.String() != "baseline" ||
		parcoach.ModeAnalyze.String() != "warnings" ||
		parcoach.ModeFull.String() != "warnings+codegen" {
		t.Error("mode names wrong")
	}
}

func TestInitialContextOption(t *testing.T) {
	src := "func main() { MPI_Barrier() }"
	mono, err := parcoach.Compile("m.mh", src, parcoach.Options{Mode: parcoach.ModeAnalyze})
	if err != nil {
		t.Fatal(err)
	}
	if len(mono.Warnings()) != 0 {
		t.Errorf("monothreaded context must be clean: %v", mono.Warnings())
	}
	multi, err := parcoach.Compile("m.mh", src, parcoach.Options{
		Mode: parcoach.ModeAnalyze, Initial: parcoach.ContextMultithreaded})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range multi.Warnings() {
		if d.Kind == core.DiagMultithreadedCollective {
			found = true
		}
	}
	if !found {
		t.Error("multithreaded initial context must flag the bare collective")
	}
}

func TestTimingsPopulated(t *testing.T) {
	p, err := parcoach.Compile("clean.mh", cleanSrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if p.Timing.Frontend <= 0 || p.Timing.Backend <= 0 || p.Timing.Total <= 0 {
		t.Errorf("timings missing: %+v", p.Timing)
	}
	if p.Stats.Functions != 1 || p.Stats.Statements == 0 || p.Stats.CFGNodes == 0 {
		t.Errorf("stats missing: %+v", p.Stats)
	}
}
