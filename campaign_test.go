package parcoach_test

import (
	"strings"
	"testing"

	"parcoach"
	"parcoach/internal/mhgen"
	"parcoach/internal/sched"
)

// campaignSeeds is the compact corpus the campaign tests sweep: two
// full bug-class cycles of mhgen seeds.
func campaignSeeds(n uint64) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	return seeds
}

// TestCampaignDeterministicAcrossWorkers pins the determinism
// contract: a fixed-seed campaign renders byte-identically at any
// worker count — every coverage-set update, splice and mutation
// decision happens in the serial merge, never in the parallel phase.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	var reports []string
	for _, workers := range []int{1, 4, 8} {
		rep, err := parcoach.Campaign(parcoach.CampaignOptions{
			Seeds:   campaignSeeds(20),
			Budget:  140,
			Seed:    7,
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reports = append(reports, rep.Format())
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("campaign report differs between worker counts:\n--- workers=1\n%s\n--- other\n%s",
				reports[0], reports[i])
		}
	}
}

// TestCampaignSmoke is the CI campaign-smoke assertion set: a small
// fixed-seed campaign's coverage trajectory grows monotonically, it
// catches bugs, and every committed corpus entry with a recorded
// failing schedule replays to the same detection — mutants from their
// (reduced) committed source, seed entries from their seed.
func TestCampaignSmoke(t *testing.T) {
	rep, err := parcoach.Campaign(parcoach.CampaignOptions{
		Seeds:  campaignSeeds(20),
		Budget: 140,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trajectory) == 0 {
		t.Fatal("campaign ran no rounds")
	}
	last := 0
	for _, p := range rep.Trajectory {
		if p.Coverage < last {
			t.Fatalf("coverage shrank at round %d: %d -> %d", p.Round, last, p.Coverage)
		}
		last = p.Coverage
	}
	if last == 0 {
		t.Fatal("campaign accumulated no coverage")
	}
	if len(rep.Bugs) == 0 {
		t.Fatal("campaign caught no planted bugs")
	}
	if rep.Runs > rep.Budget {
		t.Fatalf("campaign overspent its budget: %d > %d", rep.Runs, rep.Budget)
	}

	replayed := 0
	for _, ce := range rep.Corpus {
		if ce.FailToken == "" {
			continue
		}
		src := ce.Source
		if ce.Origin == "seed" {
			src = mhgen.FromSeed(ce.Seed).Source
		}
		p, err := parcoach.Compile(ce.Name+".mh", src, parcoach.Options{Mode: parcoach.ModeFull})
		if err != nil {
			t.Fatalf("corpus entry %s no longer compiles: %v", ce.Name, err)
		}
		s, err := sched.Parse(ce.FailToken)
		if err != nil {
			t.Fatalf("corpus entry %s has an unparsable fail token %q: %v", ce.Name, ce.FailToken, err)
		}
		res := p.Run(parcoach.RunOptions{Procs: ce.Procs, Threads: ce.Threads, MaxSteps: 2_000_000, Scheduler: s})
		out := res.Outcome()
		if out != parcoach.RunCheckAbort && out != parcoach.RunValueError {
			t.Fatalf("corpus entry %s: recorded failing schedule replays %s:\n%s", ce.Name, out, src)
		}
		if r, ok := s.(*sched.Replay); ok && r.Diverged() {
			t.Fatalf("corpus entry %s: fail-token replay diverged", ce.Name)
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("no corpus entry recorded a failing schedule")
	}
}

// TestCampaignUniformBaseline: the uniform mode spends exactly the
// per-entry budget with no mutation, and its report carries the same
// coverage signal (the comparability contract of the bench).
func TestCampaignUniformBaseline(t *testing.T) {
	rep, err := parcoach.Campaign(parcoach.CampaignOptions{
		Seeds:         campaignSeeds(10),
		Seed:          7,
		Uniform:       true,
		UniformBudget: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 40 {
		t.Fatalf("uniform sweep ran %d schedules, want 40", rep.Runs)
	}
	if rep.Mutants != 0 {
		t.Fatalf("uniform sweep admitted %d mutants", rep.Mutants)
	}
	for _, ce := range rep.Corpus {
		if ce.Runs != 4 {
			t.Fatalf("uniform sweep gave %s %d runs, want 4", ce.Name, ce.Runs)
		}
	}
	if !strings.HasPrefix(rep.Format(), "uniform ") {
		t.Fatalf("uniform report mislabeled:\n%s", rep.Format())
	}
}
