// Package parcoach is a Go reproduction of "Static/Dynamic Validation of
// MPI Collective Communications in Multi-threaded Context" (Saillard,
// Carribault, Barthou — PPoPP 2015), the multi-threaded extension of
// PARCOACH.
//
// The package compiles MiniHybrid programs (a small MPI+OpenMP-shaped
// language, see internal/parser) through a full pipeline:
//
//	parse → semantic checks → [compile-time verification] →
//	constant folding → CFG + dead-node elimination → linear IR
//	[→ selective instrumentation of flagged functions]
//
// and can execute the result on a simulated MPI world with fork/join
// thread teams, where the planted runtime checks stop erroneous runs with
// located error messages before they deadlock.
//
// The compile path runs on the internal/pipeline pass manager: every pass
// declares the per-function artifacts it produces and consumes (folded
// AST, CFG, dominators, parallelism words, summaries, analysis,
// instrumented bodies, IR, allocations), and function-level work fans out
// across a worker pool, with the interprocedural summary stage walking
// the call graph in SCC order so callee summaries exist before their
// callers are analysed. CompileBatch shares one pool across many
// programs; diagnostics and stats are identical for any worker count.
//
// Typical use:
//
//	prog, err := parcoach.Compile("bench.mh", src, parcoach.Options{Mode: parcoach.ModeFull})
//	for _, d := range prog.Diagnostics() { fmt.Println(d) }
//	res := prog.Run(parcoach.RunOptions{Procs: 4, Threads: 4})
package parcoach

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"parcoach/internal/ast"
	"parcoach/internal/campaign"
	"parcoach/internal/cfg"
	"parcoach/internal/core"
	"parcoach/internal/dom"
	"parcoach/internal/explore"
	"parcoach/internal/instrument"
	"parcoach/internal/interp"
	"parcoach/internal/mhgen"
	"parcoach/internal/parser"
	"parcoach/internal/passes"
	"parcoach/internal/pipeline"
	"parcoach/internal/sem"
)

// Mode selects how much of the paper's tooling runs during compilation.
type Mode int

// Compilation modes, matching the bars of the paper's Figure 1.
const (
	// ModeBaseline compiles without any verification (the 100% baseline).
	ModeBaseline Mode = iota
	// ModeAnalyze adds the compile-time verification (warnings only).
	ModeAnalyze
	// ModeFull adds verification-code generation: flagged functions are
	// instrumented and the instrumented code is what gets lowered and run.
	ModeFull
)

func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeAnalyze:
		return "warnings"
	case ModeFull:
		return "warnings+codegen"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Context re-exports the initial-context option.
type Context = core.Context

// Initial contexts for the analysis.
const (
	ContextMonothreaded  = core.ContextMonothreaded
	ContextMultithreaded = core.ContextMultithreaded
)

// Diagnostic re-exports the analysis warning type.
type Diagnostic = core.Diagnostic

// Options configures Compile and CompileBatch.
type Options struct {
	// Mode selects baseline / warnings / warnings+codegen (default
	// ModeFull).
	Mode Mode
	// Initial is the threading context assumed at program start.
	Initial Context
	// RawPDF disables the rank-dependence refinement of phase 3
	// (ablation: the unrefined PDF+ of PARCOACH Algorithm 1).
	RawPDF bool
	// Workers sets the width of the compile worker pool: per-function
	// pipeline work (folding, CFG and dominator construction, the
	// parallelism-word and checking phases, instrumentation, lowering and
	// register allocation) fans across this many workers, and
	// CompileBatch additionally compiles whole files concurrently on the
	// same pool. 0 means runtime.GOMAXPROCS(0); 1 means fully serial.
	// Diagnostics, stats and generated code are identical for any value.
	Workers int
}

// PassTime re-exports the pipeline's per-pass timing entry.
type PassTime = pipeline.PassTime

// Timing records where compilation time went; the Figure 1 harness reads
// it to separate analysis and instrumentation cost from the baseline.
type Timing struct {
	Frontend   time.Duration // lex, parse, semantic checks
	Analysis   time.Duration // the paper's three compile-time phases
	Instrument time.Duration // verification-code generation
	Backend    time.Duration // folding, CFG, DCE, lowering
	Total      time.Duration
	// Passes holds the wall-clock time of every pipeline pass in
	// execution order (the fine-grained view the buckets above sum up).
	Passes []PassTime
}

// CompileStats summarizes the compiled artifact.
type CompileStats struct {
	Functions  int
	Statements int
	CFGNodes   int
	CFGEdges   int
	Folds      passes.FoldStats
	DeadNodes  int
	IRInsts    int
	Spills     int
	Checks     instrument.Stats
}

// Program is a compiled MiniHybrid program.
type Program struct {
	Name string
	// Source is the parsed, analysed program.
	Source *ast.Program
	// Instrumented is the verification-instrumented tree (ModeFull with
	// findings), or nil.
	Instrumented *ast.Program
	// Analysis holds the compile-time verification result (nil in
	// ModeBaseline).
	Analysis *core.Result
	// Graphs holds the backend's final per-function CFGs (of the
	// instrumented functions where codegen rewrote them): the cached
	// artifacts the analysis rode on, after dead-node elimination.
	Graphs map[string]*cfg.Graph
	// IR is the lowered object code per function (of the instrumented
	// tree when present, else the folded source).
	IR map[string]*passes.FuncIR
	// Allocations holds the per-function register allocation results.
	Allocations map[string]*passes.Allocation
	// Timing and Stats describe the compilation itself.
	Timing Timing
	Stats  CompileStats

	opts Options
}

// File is one source file of a batch compilation.
type File struct {
	Name   string
	Source string
}

// Compile runs the pipeline on src. Parse and semantic errors abort; the
// verification phases never fail compilation — they produce Diagnostics.
//
// The pipeline mirrors how PARCOACH sits in GCC's middle end: the baseline
// compiler folds constants and builds the CFG anyway; the analysis is an
// extra pass over those existing graphs; verification-code generation
// rewrites only the flagged functions (selective instrumentation) and
// rebuilds just their graphs before the common DCE + lowering backend
// finishes the job.
func Compile(name, src string, opts Options) (*Program, error) {
	return compile(name, src, opts, pipeline.NewPool(opts.Workers))
}

// CompileBatch compiles many programs on one shared worker pool — the
// entry point for serving heavy compile traffic. Whole files compile
// concurrently and each file's per-function pipeline work fans out on the
// same pool, so the hardware stays busy whether the batch is many small
// programs or a few large ones.
//
// The returned slice is parallel to files; entries whose compilation
// failed are nil and their errors are joined into the returned error.
// Every program's diagnostics, stats and code are identical to what a
// serial Compile of that file produces.
func CompileBatch(files []File, opts Options) ([]*Program, error) {
	pool := pipeline.NewPool(opts.Workers)
	progs := make([]*Program, len(files))
	errs := make([]error, len(files))
	pool.Map(len(files), func(i int) {
		progs[i], errs[i] = compile(files[i].Name, files[i].Source, opts, pool)
	})
	return progs, errors.Join(errs...)
}

// CacheKey names the compiled artifact of (name, src, opts): a
// versioned SHA-256 over the source bytes and the canonicalized
// options. Two submissions with the same key compile to byte-identical
// diagnostics, stats and code, so a cache (cmd/parcoachd's artifact
// cache) may serve either's Program for both.
//
// Canonicalization: only the fields that change the compiled artifact
// participate — Mode, Initial, RawPDF. Workers is deliberately
// excluded (diagnostics, stats and generated code are identical for
// any worker count; letting pool width fragment the cache would make
// the hit rate depend on a knob that cannot change the answer). The
// name participates because diagnostics embed it in their positions.
func CacheKey(name, src string, opts Options) string {
	h := sha256.New()
	h.Write([]byte("parcoach-artifact-v1\x00"))
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src))
	h.Write([]byte{0})
	fmt.Fprintf(h, "mode=%d;initial=%d;rawpdf=%t", opts.Mode, opts.Initial, opts.RawPDF)
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Compiler is the long-lived form of CompileBatch: one worker pool
// shared across every Compile and Batch call for the life of the
// value, so a server compiling on demand (cmd/parcoachd) keeps its
// workers warm instead of rebuilding a pool per request. Safe for
// concurrent use.
//
// Cached additionally memoizes compiled artifacts by CacheKey, so
// harnesses that resubmit the same source under the same options (the
// differential sweep's replay paths, a campaign's corpus re-runs) pay
// for each distinct artifact once.
type Compiler struct {
	pool *pipeline.Pool

	mu     sync.Mutex
	cache  map[string]*cacheEntry
	hits   uint64
	misses uint64
}

// cacheEntry is one memoized artifact; the Once gives Cached
// singleflight semantics — concurrent requests for the same key block
// on one compilation instead of duplicating it.
type cacheEntry struct {
	once sync.Once
	prog *Program
	err  error
}

// NewCompiler builds a compiler around a persistent pool of the given
// width (0 = GOMAXPROCS, 1 = serial), matching Options.Workers
// semantics. The Workers field of per-call Options is ignored — the
// shared pool is the width.
func NewCompiler(workers int) *Compiler {
	return &Compiler{pool: pipeline.NewPool(workers)}
}

// Compile runs the pipeline on src using the compiler's shared pool.
// Output is identical to a standalone Compile of the same inputs.
func (c *Compiler) Compile(name, src string, opts Options) (*Program, error) {
	return compile(name, src, opts, c.pool)
}

// CompileCtx is Compile with cooperative cancellation at pass
// boundaries; the daemon uses it so a disconnected client's compile
// stops early. Canceled compiles return the context's cause — callers
// that cache errors must take care not to cache those.
func (c *Compiler) CompileCtx(ctx context.Context, name, src string, opts Options) (*Program, error) {
	return compileCtx(ctx, name, src, opts, c.pool)
}

// Cached is Compile through the compiler's artifact cache: the first
// request for a CacheKey compiles (errors are cached too — a source
// that fails to parse fails identically on every resubmission), and
// every later request for the same key returns the same *Program.
// Callers therefore share the artifact; Program is read-only after
// compilation and safe for concurrent Run/Explore.
func (c *Compiler) Cached(name, src string, opts Options) (*Program, error) {
	key := CacheKey(name, src, opts)
	c.mu.Lock()
	if c.cache == nil {
		c.cache = make(map[string]*cacheEntry)
	}
	e, ok := c.cache[key]
	if ok {
		c.hits++
	} else {
		e = new(cacheEntry)
		c.cache[key] = e
		c.misses++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		// Quarantine a panicking compile INSIDE the once: sync.Once marks
		// itself done even when f panics, so without this a panic would be
		// cached forever as a (nil, nil) artifact — every later request for
		// the key would get a nil Program and no error. The panic becomes a
		// cached QuarantineError instead, which is at least a loud,
		// deterministic failure for this source.
		defer func() {
			if r := recover(); r != nil {
				e.prog, e.err = nil, interp.NewQuarantineError("compile", r, debug.Stack())
			}
		}()
		e.prog, e.err = compile(name, src, opts, c.pool)
	})
	return e.prog, e.err
}

// CompilerStats reports the artifact cache's traffic.
type CompilerStats struct {
	Hits   uint64 // Cached requests served from the artifact cache
	Misses uint64 // Cached requests that had to compile
}

// CacheStats returns a snapshot of the artifact cache counters.
func (c *Compiler) CacheStats() CompilerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CompilerStats{Hits: c.hits, Misses: c.misses}
}

// Batch compiles many programs on the shared pool; the returned slice
// is parallel to files, exactly as CompileBatch.
func (c *Compiler) Batch(files []File, opts Options) ([]*Program, error) {
	progs := make([]*Program, len(files))
	errs := make([]error, len(files))
	c.pool.Map(len(files), func(i int) {
		progs[i], errs[i] = compile(files[i].Name, files[i].Source, opts, c.pool)
	})
	return progs, errors.Join(errs...)
}

// compile builds and runs the pass pipeline for one source file on the
// given pool.
func compile(name, src string, opts Options, pool *pipeline.Pool) (*Program, error) {
	return compileCtx(nil, name, src, opts, pool)
}

// compileCtx is compile under a context: cancellation is observed at
// pass boundaries, so an abandoned request stops compiling within one
// pass instead of running the pipeline to completion for nobody.
func compileCtx(ctx context.Context, name, src string, opts Options, pool *pipeline.Pool) (*Program, error) {
	start := time.Now()
	p := &Program{Name: name, opts: opts}
	m := pipeline.New(pool)

	// Artifacts flowing between the passes below. Per-function slices are
	// indexed by position in Funcs; fan-out passes write disjoint slots.
	var (
		prog      *ast.Program // parsed + semantically checked
		folded    *ast.Program // constant-folded clone (the analysed tree)
		foldStats []passes.FoldStats
		graphs    map[string]*cfg.Graph
		glist     []*cfg.Graph // graphs in function order
		deadNodes []int
		doms      map[string]*dom.Tree
		an        *core.Analysis
		final     *ast.Program // tree the backend lowers
		irs       []*passes.FuncIR
		allocs    []*passes.Allocation
	)

	m.Add(pipeline.Pass{
		Name:     "frontend",
		Produces: []pipeline.Artifact{pipeline.ArtAST},
		Run: func() error {
			var err error
			if prog, err = parser.Parse(name, src); err != nil {
				return err
			}
			if err = sem.Check(prog); err != nil {
				return err
			}
			p.Source = prog
			return nil
		},
	})

	m.Add(pipeline.Pass{
		Name:     "fold",
		Consumes: []pipeline.Artifact{pipeline.ArtAST},
		Produces: []pipeline.Artifact{pipeline.ArtFoldedAST},
		Setup: func() error {
			folded = &ast.Program{
				File:    prog.File,
				Regions: prog.Regions,
				Funcs:   make([]*ast.FuncDecl, len(prog.Funcs)),
				ByName:  make(map[string]*ast.FuncDecl, len(prog.Funcs)),
			}
			foldStats = make([]passes.FoldStats, len(prog.Funcs))
			return nil
		},
		Items: func() int { return len(prog.Funcs) },
		RunItem: func(i int) error {
			fn := ast.CloneFunc(prog.Funcs[i])
			st := passes.FoldFunc(fn)
			folded.Funcs[i] = fn
			foldStats[i] = st
			return nil
		},
		After: func() error {
			for i, fn := range folded.Funcs {
				folded.ByName[fn.Name] = fn
				p.Stats.Folds = p.Stats.Folds.Add(foldStats[i])
			}
			final = folded
			return nil
		},
	})

	m.Add(pipeline.Pass{
		Name:     "cfg",
		Consumes: []pipeline.Artifact{pipeline.ArtFoldedAST},
		Produces: []pipeline.Artifact{pipeline.ArtCFG},
		Setup: func() error {
			glist = make([]*cfg.Graph, len(folded.Funcs))
			return nil
		},
		Items: func() int { return len(folded.Funcs) },
		RunItem: func(i int) error {
			glist[i] = cfg.Build(folded.Funcs[i])
			return nil
		},
		After: func() error {
			graphs = make(map[string]*cfg.Graph, len(glist))
			for i, fn := range folded.Funcs {
				graphs[fn.Name] = glist[i]
			}
			return nil
		},
	})

	if opts.Mode >= ModeAnalyze {
		addAnalysisPasses(m, p, opts, &folded, &graphs, &doms, &an)
	}

	if opts.Mode >= ModeFull {
		addInstrumentPass(m, p, &folded, &graphs, &final)
	}

	// The backend reads `final` and the graphs, which the instrument pass
	// rewrites in ModeFull — declare that, so the manager's wiring
	// validation catches any registration reorder that would silently
	// lower the un-instrumented tree.
	backendInputs := []pipeline.Artifact{pipeline.ArtCFG, pipeline.ArtFoldedAST}
	if opts.Mode >= ModeFull {
		backendInputs = append(backendInputs, pipeline.ArtInstrumented)
	}

	m.Add(pipeline.Pass{
		Name:     "dce",
		Consumes: backendInputs,
		Setup: func() error {
			// Re-snapshot: instrumentation may have swapped flagged
			// functions' graphs.
			glist = glist[:0]
			for _, fn := range final.Funcs {
				glist = append(glist, graphs[fn.Name])
			}
			deadNodes = make([]int, len(glist))
			return nil
		},
		Items: func() int { return len(glist) },
		RunItem: func(i int) error {
			deadNodes[i] = passes.EliminateDead(glist[i])
			return nil
		},
		After: func() error {
			for i, g := range glist {
				p.Stats.DeadNodes += deadNodes[i]
				nodes, edges := g.Size()
				p.Stats.CFGNodes += nodes
				p.Stats.CFGEdges += edges
			}
			p.Graphs = graphs
			return nil
		},
	})

	m.Add(pipeline.Pass{
		Name:     "lower",
		Consumes: backendInputs,
		Produces: []pipeline.Artifact{pipeline.ArtIR},
		Setup: func() error {
			irs = make([]*passes.FuncIR, len(final.Funcs))
			return nil
		},
		Items: func() int { return len(final.Funcs) },
		RunItem: func(i int) error {
			irs[i] = passes.Lower(final.Funcs[i])
			return nil
		},
		After: func() error {
			p.IR = make(map[string]*passes.FuncIR, len(irs))
			for i, fn := range final.Funcs {
				p.IR[fn.Name] = irs[i]
				p.Stats.IRInsts += len(irs[i].Insts)
			}
			return nil
		},
	})

	m.Add(pipeline.Pass{
		Name:     "regalloc",
		Consumes: []pipeline.Artifact{pipeline.ArtIR},
		Produces: []pipeline.Artifact{pipeline.ArtAllocation},
		Setup: func() error {
			allocs = make([]*passes.Allocation, len(irs))
			return nil
		},
		Items: func() int { return len(irs) },
		RunItem: func(i int) error {
			allocs[i] = passes.Optimize(irs[i])
			return nil
		},
		After: func() error {
			p.Allocations = make(map[string]*passes.Allocation, len(irs))
			for i, fn := range final.Funcs {
				p.Allocations[fn.Name] = allocs[i]
				p.Stats.Spills += allocs[i].Spills
			}
			return nil
		},
	})

	if err := m.RunCtx(ctx); err != nil {
		return nil, err
	}

	p.Timing.Passes = m.Timings()
	for _, pt := range p.Timing.Passes {
		switch pt.Name {
		case "frontend":
			p.Timing.Frontend += pt.Duration
		case "instrument":
			p.Timing.Instrument += pt.Duration
		case "dominators", "analysis-begin", "analysis-prepare", "taint",
			"contexts", "summaries", "check", "analysis-finish":
			p.Timing.Analysis += pt.Duration
		default: // fold, cfg, dce, lower, regalloc
			p.Timing.Backend += pt.Duration
		}
	}
	p.Stats.Functions = len(prog.Funcs)
	p.Stats.Statements = ast.CountStmts(prog)
	p.Timing.Total = time.Since(start)
	return p, nil
}

// addAnalysisPasses registers the compile-time verification stages: the
// dominator artifacts, the staged core analyzer (prepare → taint →
// contexts → SCC-ordered summaries → parallel per-function checking →
// deterministic merge). Parameters are pointers because the artifacts
// they read are only assigned when the earlier passes execute.
func addAnalysisPasses(m *pipeline.Manager, p *Program, opts Options,
	folded **ast.Program, graphs *map[string]*cfg.Graph, doms *map[string]*dom.Tree, an **core.Analysis) {

	var dlist []*dom.Tree
	m.Add(pipeline.Pass{
		Name:     "dominators",
		Consumes: []pipeline.Artifact{pipeline.ArtCFG},
		Produces: []pipeline.Artifact{pipeline.ArtDominators},
		Setup: func() error {
			dlist = make([]*dom.Tree, len((*folded).Funcs))
			return nil
		},
		Items: func() int { return len((*folded).Funcs) },
		RunItem: func(i int) error {
			dlist[i] = dom.Dominators((*graphs)[(*folded).Funcs[i].Name])
			return nil
		},
		After: func() error {
			*doms = make(map[string]*dom.Tree, len(dlist))
			for i, fn := range (*folded).Funcs {
				(*doms)[fn.Name] = dlist[i]
			}
			return nil
		},
	})
	m.Add(pipeline.Pass{
		Name:     "analysis-begin",
		Consumes: []pipeline.Artifact{pipeline.ArtFoldedAST, pipeline.ArtCFG, pipeline.ArtDominators},
		Produces: []pipeline.Artifact{pipeline.ArtCallGraph},
		Run: func() error {
			*an = core.Begin(*folded, core.Options{
				Initial: opts.Initial, RawPDF: opts.RawPDF,
				Graphs: *graphs, Doms: *doms, Runner: m.Pool(),
			})
			return nil
		},
	})
	m.Add(pipeline.Pass{
		Name:     "analysis-prepare",
		Consumes: []pipeline.Artifact{pipeline.ArtCFG, pipeline.ArtDominators, pipeline.ArtCallGraph},
		Produces: []pipeline.Artifact{pipeline.ArtPWords},
		Items:    func() int { return (*an).NumFuncs() },
		RunItem:  func(i int) error { (*an).PrepareFunc(i); return nil },
	})
	m.Add(pipeline.Pass{
		Name:     "taint",
		Consumes: []pipeline.Artifact{pipeline.ArtFoldedAST},
		Produces: []pipeline.Artifact{pipeline.ArtTaint},
		Run:      func() error { (*an).ComputeTaint(); return nil },
	})
	m.Add(pipeline.Pass{
		Name:     "contexts",
		Consumes: []pipeline.Artifact{pipeline.ArtPWords, pipeline.ArtCallGraph},
		Produces: []pipeline.Artifact{pipeline.ArtContexts},
		Run:      func() error { (*an).ComputeContexts(); return nil },
	})
	m.Add(pipeline.Pass{
		Name:     "summaries",
		Consumes: []pipeline.Artifact{pipeline.ArtPWords, pipeline.ArtContexts, pipeline.ArtCallGraph},
		Produces: []pipeline.Artifact{pipeline.ArtSummary},
		Waves:    func() [][]int { return (*an).SummaryWaves() },
		RunItem:  func(i int) error { (*an).ComputeSummarySCC(i); return nil },
	})
	m.Add(pipeline.Pass{
		Name: "check",
		Consumes: []pipeline.Artifact{
			pipeline.ArtPWords, pipeline.ArtTaint, pipeline.ArtContexts, pipeline.ArtSummary,
		},
		Items:   func() int { return (*an).NumFuncs() },
		RunItem: func(i int) error { (*an).CheckFunc(i); return nil },
	})
	m.Add(pipeline.Pass{
		Name:     "analysis-finish",
		Consumes: []pipeline.Artifact{pipeline.ArtSummary},
		Produces: []pipeline.Artifact{pipeline.ArtAnalysis},
		Run:      func() error { p.Analysis = (*an).Finish(); return nil },
	})
}

// addInstrumentPass registers verification-code generation: every
// function of the folded tree is cloned, flagged functions are rewritten
// with runtime checks and get fresh CFGs — all fanned per function. When
// the analysis found nothing the pass degenerates to zero items and the
// folded tree ships unchanged.
func addInstrumentPass(m *pipeline.Manager, p *Program,
	folded **ast.Program, graphs *map[string]*cfg.Graph, final **ast.Program) {

	var inst *ast.Program
	var newGraphs []*cfg.Graph
	m.Add(pipeline.Pass{
		Name:     "instrument",
		Consumes: []pipeline.Artifact{pipeline.ArtFoldedAST, pipeline.ArtAnalysis},
		Produces: []pipeline.Artifact{pipeline.ArtInstrumented},
		Setup: func() error {
			if p.Analysis == nil || !p.Analysis.NeedsInstrumentation() {
				inst = nil
				return nil
			}
			inst = &ast.Program{
				File:    (*folded).File,
				Regions: (*folded).Regions,
				Funcs:   make([]*ast.FuncDecl, len((*folded).Funcs)),
				ByName:  make(map[string]*ast.FuncDecl, len((*folded).Funcs)),
			}
			newGraphs = make([]*cfg.Graph, len((*folded).Funcs))
			return nil
		},
		Items: func() int {
			if inst == nil {
				return 0
			}
			return len((*folded).Funcs)
		},
		RunItem: func(i int) error {
			fn := ast.CloneFunc((*folded).Funcs[i])
			inst.Funcs[i] = fn
			if fa := p.Analysis.Funcs[fn.Name]; fa != nil && fa.NeedsInstrumentation {
				instrument.Func(fn, fa, p.Analysis)
				newGraphs[i] = cfg.Build(fn)
			}
			return nil
		},
		After: func() error {
			if inst == nil {
				return nil
			}
			for i, fn := range inst.Funcs {
				inst.ByName[fn.Name] = fn
				if newGraphs[i] != nil {
					(*graphs)[fn.Name] = newGraphs[i]
				}
			}
			p.Instrumented = inst
			p.Stats.Checks = instrument.Count(inst)
			*final = inst
			return nil
		},
	})
}

// Diagnostics returns the analysis warnings (empty in ModeBaseline),
// sorted into a canonical order independent of the worker count.
func (p *Program) Diagnostics() []Diagnostic {
	if p.Analysis == nil {
		return nil
	}
	return p.Analysis.Diags
}

// Warnings returns only the error-class diagnostics.
func (p *Program) Warnings() []Diagnostic {
	if p.Analysis == nil {
		return nil
	}
	return p.Analysis.Errors()
}

// WarningKinds returns the sorted, deduplicated kind names of the
// error-class diagnostics — the static half of a program's verdict, as
// the differential harness (internal/mhgen/diff) and the report tables
// consume it. Empty means statically clean.
func (p *Program) WarningKinds() []string {
	seen := make(map[string]bool)
	var kinds []string
	for _, d := range p.Warnings() {
		name := d.Kind.String()
		if !seen[name] {
			seen[name] = true
			kinds = append(kinds, name)
		}
	}
	sort.Strings(kinds)
	return kinds
}

// RunOutcome classifies how a run ended; it re-exports the interpreter's
// outcome classes so harnesses can cross-check the dynamic verdict
// (which layer stopped the run) against the static one.
type RunOutcome = interp.Outcome

// Run outcome classes.
const (
	// RunClean: the run completed without error.
	RunClean = interp.OutcomeClean
	// RunCheckAbort: a planted runtime check stopped the run.
	RunCheckAbort = interp.OutcomeCheckAbort
	// RunMPIError: the simulated MPI library rejected the run.
	RunMPIError = interp.OutcomeMPIError
	// RunDeadlock: the monitor's deadlock oracle fired.
	RunDeadlock = interp.OutcomeDeadlock
	// RunRuntimeError: a plain execution error.
	RunRuntimeError = interp.OutcomeRuntimeError
	// RunBudget: the run exhausted its step budget (a spinning schedule,
	// distinct from a deadlock).
	RunBudget = interp.OutcomeBudget
	// RunValueError: the value oracle flagged data-level disagreement in
	// a collective round whose sequence matched (divergent roots,
	// mismatched reduction ops, a torn source buffer, or a result
	// differing from the oracle's recomputation).
	RunValueError = interp.OutcomeValueError
	// RunCanceled: the run was stopped by external cancellation (client
	// disconnect, SIGTERM, -timeout); says nothing about the program.
	RunCanceled = interp.OutcomeCanceled
	// RunTimeout: the per-run wall-clock watchdog fired.
	RunTimeout = interp.OutcomeTimeout
	// RunInternalError: the run or its compile panicked and was
	// quarantined — a validator bug, not a program verdict.
	RunInternalError = interp.OutcomeInternalError
)

// ClassifyRun maps a run error to its outcome class (nil means RunClean).
func ClassifyRun(err error) RunOutcome { return interp.ClassifyError(err) }

// RunOptions configures execution on the simulated runtime.
type RunOptions = interp.Options

// RunResult is the outcome of executing a program.
type RunResult = interp.Result

// Mode reports the compilation mode the program was built with (the
// daemon's session cache reads it to decide whether a cached artifact's
// runs carry the value oracle).
func (p *Program) Mode() Mode { return p.opts.Mode }

// Run executes the program: the instrumented tree when codegen produced
// one, otherwise the pristine source. In ModeFull the verifier's value
// oracle is armed alongside the planted checks — value bugs are
// statically invisible, so the oracle is tied to the mode, not to
// whether instrumentation rewrote anything.
func (p *Program) Run(opts RunOptions) *RunResult {
	target := p.Source
	if p.Instrumented != nil {
		target = p.Instrumented
	}
	if p.opts.Mode >= ModeFull {
		opts.ValueCheck = true
	}
	return interp.Run(target, opts)
}

// ExploreOptions configures schedule exploration (see internal/explore):
// strategy (round-robin, seeded random, PCT, bounded exhaustive DFS),
// run budget, seed, and run parameters.
type ExploreOptions = explore.Options

// ExplorationReport summarizes the schedule space of one program: how
// many interleavings ran, the distinct outcome classes they produced,
// and a replayable token for the first failing schedule.
type ExplorationReport = explore.Report

// ExploreStrategy re-exports the exploration strategy selector.
type ExploreStrategy = explore.Strategy

// Exploration strategies.
const (
	// ExploreRoundRobin runs the single deterministic reference schedule.
	ExploreRoundRobin = explore.StrategyRoundRobin
	// ExploreRandom samples seeded uniform schedules.
	ExploreRandom = explore.StrategyRandom
	// ExplorePCT samples random-priority schedules with bounded
	// priority-change depth.
	ExplorePCT = explore.StrategyPCT
	// ExploreDFS enumerates interleavings exhaustively up to the budget.
	ExploreDFS = explore.StrategyDFS
)

// ExploreFrontier re-exports the DFS frontier selector.
type ExploreFrontier = explore.Frontier

// DFS frontier implementations.
const (
	// ExploreFrontierSteal is the work-stealing frontier (default):
	// per-worker LIFO deques ordered longest-common-prefix-first, with
	// idle workers stealing the shallowest — largest — subtree from a
	// peer, so skewed prefix trees keep the whole pool busy.
	ExploreFrontierSteal = explore.FrontierSteal
	// ExploreFrontierWave is the legacy wave-batched frontier, kept as
	// the equivalence reference and benchmark baseline.
	ExploreFrontierWave = explore.FrontierWave
	// ExploreFrontierDPOR is the work-stealing frontier with dynamic
	// partial-order reduction: each run's event trace is analyzed for
	// racing step pairs and only their reversal prefixes are explored,
	// with a global sleep-set ledger keeping stolen subtrees sound. On
	// commuting-heavy programs it exhausts schedule spaces orders of
	// magnitude beyond the plain DFS budget, with identical verdict
	// sets.
	ExploreFrontierDPOR = explore.FrontierDPOR
)

// Explore runs the program (instrumented when codegen produced checks,
// like Run) under many interleavings and reports the distinct verdicts
// the schedule space contains. A single run validates one interleaving;
// Explore is the dynamic layer's answer to schedule-dependent bugs.
func (p *Program) Explore(opts ExploreOptions) *ExplorationReport {
	target := p.Source
	if p.Instrumented != nil {
		target = p.Instrumented
	}
	if p.opts.Mode >= ModeFull {
		opts.ValueCheck = true
	}
	return explore.Explore(target, opts)
}

// Explore runs prog's compiled artifact under many interleavings; see
// Program.Explore.
func Explore(prog *Program, opts ExploreOptions) *ExplorationReport {
	return prog.Explore(opts)
}

// ExploreUninstrumented explores the pristine source regardless of mode
// (what the schedule space looks like on a real machine, without the
// planted checks).
func (p *Program) ExploreUninstrumented(opts ExploreOptions) *ExplorationReport {
	return explore.Explore(p.Source, opts)
}

// RunUninstrumented executes the pristine source regardless of mode (used
// by the overhead experiments to compare against instrumented runs).
func (p *Program) RunUninstrumented(opts RunOptions) *RunResult {
	return interp.Run(p.Source, opts)
}

// CampaignOptions configures an exploration campaign over generated
// programs (internal/campaign): a corpus of mhgen seeds is explored
// with the total schedule budget allocated by marginal coverage —
// entries whose schedules keep producing novel coverage keys
// (positional state signatures, verdict classes, happens-before edge
// shapes, static warning kinds) earn more schedules, dry entries are
// retired, and mutation (seed neighborhoods, schedule-prefix splicing)
// grows the corpus. A campaign is a pure function of its options:
// reports are byte-identical at any Workers value.
type CampaignOptions struct {
	// Seeds is the initial corpus (mhgen generation seeds).
	Seeds []uint64
	// Budget is the total schedule budget (default 16 × len(Seeds) —
	// the same total the uniform baseline spends).
	Budget int
	// Seed is the campaign master seed.
	Seed uint64
	// Workers is the shared pool width (0 = GOMAXPROCS).
	Workers int
	// MaxSteps bounds each run (default 2 million, as the differential
	// harness).
	MaxSteps int64
	// Uniform runs the linear-sweep baseline instead: the same engine,
	// coverage signal and schedule streams, but a fixed equal budget
	// per entry and no adaptation, mutation or splicing.
	Uniform bool
	// NoMutate / NoSplice / NoReduce disable individual campaign
	// channels (the bench harness disables mutation so campaign and
	// baseline cover the identical program set).
	NoMutate bool
	NoSplice bool
	NoReduce bool
	// Initial, MaxPerRound, DryRounds, UniformBudget and MaxCorpus
	// override the engine's allocation knobs (zero = default).
	Initial       int
	MaxPerRound   int
	DryRounds     int
	UniformBudget int
	MaxCorpus     int

	// Ctx, when non-nil, cancels the campaign between rounds and aborts
	// in-flight runs; the partial report carries Canceled.
	Ctx context.Context
	// RunTimeout, when positive, arms the per-run wall-clock watchdog on
	// every campaign session (wedged runs classify as timeout instead of
	// hanging the campaign).
	RunTimeout time.Duration
	// Checkpoint/CheckpointEvery/Resume/HaltAfterRound expose the
	// engine's checkpoint-resume machinery (see campaign.Options): a
	// resumed campaign's report is byte-identical to an uninterrupted
	// run of the same options.
	Checkpoint      string
	CheckpointEvery int
	Resume          string
	HaltAfterRound  int
}

// CampaignReport re-exports the campaign's result; CampaignPoint is
// one round of its coverage-vs-budget trajectory.
type (
	CampaignReport = campaign.Report
	CampaignPoint  = campaign.Point
)

// Campaign runs a coverage-guided exploration campaign: every corpus
// entry compiles once through a shared artifact-cached Compiler
// (ModeFull, so planted checks and the value oracle are armed), and
// all schedule execution fans out on one worker pool.
func Campaign(opts CampaignOptions) (*CampaignReport, error) {
	pool := pipeline.NewPool(opts.Workers)
	comp := &Compiler{pool: pool}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 2_000_000
	}
	compile := func(gp *mhgen.Program) (*campaign.Compiled, error) {
		p, err := comp.Cached(gp.Name+".mh", gp.Source, Options{Mode: ModeFull})
		if err != nil {
			return nil, err
		}
		target := p.Source
		if p.Instrumented != nil {
			target = p.Instrumented
		}
		sess := interp.NewSession(target, interp.Options{
			Procs:       gp.Procs,
			Threads:     gp.Threads,
			MaxSteps:    maxSteps,
			ValueCheck:  true,
			WallTimeout: opts.RunTimeout,
		})
		return &campaign.Compiled{Session: sess, StaticKinds: p.WarningKinds()}, nil
	}
	return campaign.Run(campaign.Options{
		Seeds:           opts.Seeds,
		Budget:          opts.Budget,
		Seed:            opts.Seed,
		Compile:         compile,
		Pool:            pool,
		Uniform:         opts.Uniform,
		NoMutate:        opts.NoMutate,
		NoSplice:        opts.NoSplice,
		NoReduce:        opts.NoReduce,
		Initial:         opts.Initial,
		MaxPerRound:     opts.MaxPerRound,
		DryRounds:       opts.DryRounds,
		UniformBudget:   opts.UniformBudget,
		MaxCorpus:       opts.MaxCorpus,
		Ctx:             opts.Ctx,
		Checkpoint:      opts.Checkpoint,
		CheckpointEvery: opts.CheckpointEvery,
		Resume:          opts.Resume,
		HaltAfterRound:  opts.HaltAfterRound,
	})
}
