// Package parcoach is a Go reproduction of "Static/Dynamic Validation of
// MPI Collective Communications in Multi-threaded Context" (Saillard,
// Carribault, Barthou — PPoPP 2015), the multi-threaded extension of
// PARCOACH.
//
// The package compiles MiniHybrid programs (a small MPI+OpenMP-shaped
// language, see internal/parser) through a full pipeline:
//
//	parse → semantic checks → [compile-time verification] →
//	constant folding → CFG + dead-node elimination → linear IR
//	[→ selective instrumentation of flagged functions]
//
// and can execute the result on a simulated MPI world with fork/join
// thread teams, where the planted runtime checks stop erroneous runs with
// located error messages before they deadlock.
//
// Typical use:
//
//	prog, err := parcoach.Compile("bench.mh", src, parcoach.Options{Mode: parcoach.ModeFull})
//	for _, d := range prog.Diagnostics() { fmt.Println(d) }
//	res := prog.Run(parcoach.RunOptions{Procs: 4, Threads: 4})
package parcoach

import (
	"fmt"
	"time"

	"parcoach/internal/ast"
	"parcoach/internal/cfg"
	"parcoach/internal/core"
	"parcoach/internal/instrument"
	"parcoach/internal/interp"
	"parcoach/internal/parser"
	"parcoach/internal/passes"
	"parcoach/internal/sem"
)

// Mode selects how much of the paper's tooling runs during compilation.
type Mode int

// Compilation modes, matching the bars of the paper's Figure 1.
const (
	// ModeBaseline compiles without any verification (the 100% baseline).
	ModeBaseline Mode = iota
	// ModeAnalyze adds the compile-time verification (warnings only).
	ModeAnalyze
	// ModeFull adds verification-code generation: flagged functions are
	// instrumented and the instrumented code is what gets lowered and run.
	ModeFull
)

func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeAnalyze:
		return "warnings"
	case ModeFull:
		return "warnings+codegen"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Context re-exports the initial-context option.
type Context = core.Context

// Initial contexts for the analysis.
const (
	ContextMonothreaded  = core.ContextMonothreaded
	ContextMultithreaded = core.ContextMultithreaded
)

// Diagnostic re-exports the analysis warning type.
type Diagnostic = core.Diagnostic

// Options configures Compile.
type Options struct {
	// Mode selects baseline / warnings / warnings+codegen (default
	// ModeFull).
	Mode Mode
	// Initial is the threading context assumed at program start.
	Initial Context
	// RawPDF disables the rank-dependence refinement of phase 3
	// (ablation: the unrefined PDF+ of PARCOACH Algorithm 1).
	RawPDF bool
}

// Timing records where compilation time went; the Figure 1 harness reads
// it to separate analysis and instrumentation cost from the baseline.
type Timing struct {
	Frontend   time.Duration // lex, parse, semantic checks
	Analysis   time.Duration // the paper's three compile-time phases
	Instrument time.Duration // verification-code generation
	Backend    time.Duration // folding, CFG, DCE, lowering
	Total      time.Duration
}

// CompileStats summarizes the compiled artifact.
type CompileStats struct {
	Functions  int
	Statements int
	CFGNodes   int
	CFGEdges   int
	Folds      passes.FoldStats
	DeadNodes  int
	IRInsts    int
	Spills     int
	Checks     instrument.Stats
}

// Program is a compiled MiniHybrid program.
type Program struct {
	Name string
	// Source is the parsed, analysed program.
	Source *ast.Program
	// Instrumented is the verification-instrumented tree (ModeFull with
	// findings), or nil.
	Instrumented *ast.Program
	// Analysis holds the compile-time verification result (nil in
	// ModeBaseline).
	Analysis *core.Result
	// IR is the lowered object code per function (of the instrumented
	// tree when present, else the folded source).
	IR map[string]*passes.FuncIR
	// Allocations holds the per-function register allocation results.
	Allocations map[string]*passes.Allocation
	// Timing and Stats describe the compilation itself.
	Timing Timing
	Stats  CompileStats

	opts Options
}

// Compile runs the pipeline on src. Parse and semantic errors abort; the
// verification phases never fail compilation — they produce Diagnostics.
//
// The pipeline mirrors how PARCOACH sits in GCC's middle end: the baseline
// compiler folds constants and builds the CFG anyway; the analysis is an
// extra pass over that existing CFG; verification-code generation rewrites
// only the flagged functions (selective instrumentation) and rebuilds just
// their graphs before the common DCE + lowering backend finishes the job.
func Compile(name, src string, opts Options) (*Program, error) {
	start := time.Now()
	p := &Program{Name: name, opts: opts}

	// Front end.
	t0 := time.Now()
	prog, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := sem.Check(prog); err != nil {
		return nil, err
	}
	p.Source = prog
	p.Timing.Frontend = time.Since(t0)

	// Backend, first half: fold and build the CFG the analysis will reuse.
	t0 = time.Now()
	folded, foldStats := passes.FoldProgram(prog)
	p.Stats.Folds = foldStats
	graphs := cfg.BuildAll(folded)
	backend := time.Since(t0)

	// Compile-time verification (the paper's three phases) on the
	// compiler's graphs.
	if opts.Mode >= ModeAnalyze {
		t0 = time.Now()
		p.Analysis = core.Analyze(folded, core.Options{
			Initial: opts.Initial, RawPDF: opts.RawPDF, Graphs: graphs,
		})
		p.Timing.Analysis = time.Since(t0)
	}

	// Verification-code generation: rewrite flagged functions, rebuild
	// their graphs only.
	final := folded
	if opts.Mode >= ModeFull && p.Analysis != nil && p.Analysis.NeedsInstrumentation() {
		t0 = time.Now()
		p.Instrumented = instrument.Program(folded, p.Analysis)
		p.Stats.Checks = instrument.Count(p.Instrumented)
		for name, fa := range p.Analysis.Funcs {
			if fa.NeedsInstrumentation {
				if fn := p.Instrumented.Func(name); fn != nil {
					graphs[name] = cfg.Build(fn)
				}
			}
		}
		p.Timing.Instrument = time.Since(t0)
		final = p.Instrumented
	}

	// Backend, second half: DCE on the graphs, lower the final tree.
	t0 = time.Now()
	for _, g := range graphs {
		p.Stats.DeadNodes += passes.EliminateDead(g)
		nodes, edges := g.Size()
		p.Stats.CFGNodes += nodes
		p.Stats.CFGEdges += edges
	}
	p.IR = passes.LowerProgram(final)
	p.Allocations = make(map[string]*passes.Allocation, len(p.IR))
	for name, ir := range p.IR {
		p.Allocations[name] = passes.Optimize(ir)
		p.Stats.IRInsts += len(ir.Insts)
		p.Stats.Spills += p.Allocations[name].Spills
	}
	p.Timing.Backend = backend + time.Since(t0)

	p.Stats.Functions = len(prog.Funcs)
	p.Stats.Statements = ast.CountStmts(prog)
	p.Timing.Total = time.Since(start)
	return p, nil
}

// Diagnostics returns the analysis warnings (empty in ModeBaseline).
func (p *Program) Diagnostics() []Diagnostic {
	if p.Analysis == nil {
		return nil
	}
	return p.Analysis.Diags
}

// Warnings returns only the error-class diagnostics.
func (p *Program) Warnings() []Diagnostic {
	if p.Analysis == nil {
		return nil
	}
	return p.Analysis.Errors()
}

// RunOptions configures execution on the simulated runtime.
type RunOptions = interp.Options

// RunResult is the outcome of executing a program.
type RunResult = interp.Result

// Run executes the program: the instrumented tree when codegen produced
// one, otherwise the pristine source.
func (p *Program) Run(opts RunOptions) *RunResult {
	target := p.Source
	if p.Instrumented != nil {
		target = p.Instrumented
	}
	return interp.Run(target, opts)
}

// RunUninstrumented executes the pristine source regardless of mode (used
// by the overhead experiments to compare against instrumented runs).
func (p *Program) RunUninstrumented(opts RunOptions) *RunResult {
	return interp.Run(p.Source, opts)
}
