package parcoach_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"parcoach"
	"parcoach/internal/sched"
	"parcoach/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenProgram is one compile-and-run subject: every .mh file under
// examples/ plus the generator-backed programs the epcc and nasmz
// examples compile (at smoke-test scale).
type goldenProgram struct {
	name    string
	source  string
	procs   int
	threads int
}

func goldenPrograms(t *testing.T) []goldenProgram {
	t.Helper()
	var progs []goldenProgram
	paths, err := filepath.Glob(filepath.Join("examples", "*", "*.mh"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example .mh files found")
	}
	sort.Strings(paths)
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Base(filepath.Dir(path))
		base := strings.TrimSuffix(filepath.Base(path), ".mh")
		progs = append(progs, goldenProgram{
			name:    dir + "-" + base,
			source:  string(src),
			procs:   2,
			threads: 2,
		})
	}
	for _, gen := range []struct {
		suffix string
		w      workload.Workload
	}{
		{"clean", workload.EPCC(workload.ScaleS, workload.BugNone)},
		{"clean", workload.BTMZ(workload.ScaleS, workload.BugNone)},
		{"earlyreturn", workload.BTMZ(workload.ScaleS, workload.BugEarlyReturn)},
	} {
		w := gen.w
		progs = append(progs, goldenProgram{
			name: w.Name + "-" + gen.suffix, source: w.Source, procs: w.Procs, threads: w.Threads,
		})
	}
	return progs
}

// describe renders the deterministic compile-and-run record of one
// program: per-mode diagnostics and artifact stats, and the run outcome.
// Run output lines are sorted (process/thread interleaving is not part of
// the contract) and recorded only for successful runs. mkSched, when
// non-nil, serializes each run under the returned scheduler (a fresh one
// per run); nil keeps the free-running execution the goldens were
// recorded with.
func describe(t *testing.T, gp goldenProgram, mkSched func() sched.Scheduler) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (procs=%d threads=%d)\n", gp.name, gp.procs, gp.threads)
	for _, mode := range []parcoach.Mode{parcoach.ModeBaseline, parcoach.ModeAnalyze, parcoach.ModeFull} {
		p, err := parcoach.Compile(gp.name+".mh", gp.source, parcoach.Options{Mode: mode, Workers: 4})
		if err != nil {
			t.Fatalf("%s %s: %v", gp.name, mode, err)
		}
		fmt.Fprintf(&b, "\n== mode %s ==\n", mode)
		fmt.Fprintf(&b, "functions=%d statements=%d cfg=%d/%d dead=%d ir=%d spills=%d\n",
			p.Stats.Functions, p.Stats.Statements, p.Stats.CFGNodes, p.Stats.CFGEdges,
			p.Stats.DeadNodes, p.Stats.IRInsts, p.Stats.Spills)
		fmt.Fprintf(&b, "folds=%+v\n", p.Stats.Folds)
		if mode >= parcoach.ModeFull {
			fmt.Fprintf(&b, "checks=%+v instrumented=%v\n", p.Stats.Checks, p.Instrumented != nil)
		}
		if diags := p.Diagnostics(); len(diags) > 0 {
			fmt.Fprintln(&b, "diagnostics:")
			for _, d := range diags {
				fmt.Fprintf(&b, "  %s\n", d)
			}
		} else {
			fmt.Fprintln(&b, "diagnostics: none")
		}
		runOpts := parcoach.RunOptions{Procs: gp.procs, Threads: gp.threads}
		if mkSched != nil {
			runOpts.Scheduler = mkSched()
		}
		res := p.Run(runOpts)
		if res.Err != nil {
			fmt.Fprintln(&b, "run: error")
		} else {
			fmt.Fprintln(&b, "run: ok")
			lines := strings.Split(strings.TrimRight(res.Output, "\n"), "\n")
			sort.Strings(lines)
			for _, line := range lines {
				if line != "" {
					fmt.Fprintf(&b, "  %s\n", line)
				}
			}
		}
	}
	return b.String()
}

// TestGoldenExamples locks the compile-and-run behavior of every example
// program in all three modes against testdata/golden. Regenerate with
// `go test -run TestGoldenExamples -update .`.
func TestGoldenExamples(t *testing.T) {
	for _, gp := range goldenPrograms(t) {
		t.Run(gp.name, func(t *testing.T) {
			got := describe(t, gp, nil)
			path := filepath.Join("testdata", "golden", gp.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", gp.name, got, want)
			}
		})
	}
}

// TestGoldenExamplesSerializedRoundRobin is the scheduler-refactor
// regression lock: running every golden program under the serialized
// round-robin scheduler must be byte-identical to the pre-refactor
// golden files recorded with free-running execution — the pluggable
// scheduler changes *which* interleavings are reachable, not what the
// deterministic reference schedule computes.
func TestGoldenExamplesSerializedRoundRobin(t *testing.T) {
	for _, gp := range goldenPrograms(t) {
		t.Run(gp.name, func(t *testing.T) {
			got := describe(t, gp, func() sched.Scheduler { return sched.NewRoundRobin() })
			path := filepath.Join("testdata", "golden", gp.name+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run TestGoldenExamples with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("serialized round-robin diverges from the pre-refactor golden for %s:\n--- got ---\n%s\n--- want ---\n%s",
					gp.name, got, want)
			}
		})
	}
}
