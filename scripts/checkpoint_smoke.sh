#!/usr/bin/env bash
# Checkpoint/kill/resume byte-identity smoke: a campaign halted after
# its first round (the deterministic kill switch) and resumed from the
# checkpoint must print a report byte-identical to the same campaign run
# uninterrupted — at every worker count. Also proves the checkpoint file
# survives an unclean halt: the writer is atomic (temp file + rename),
# so the resume never sees a torn file.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/mhgen" ./cmd/mhgen

campaign_flags=(-seed 0 -n 10 -budget 70 -campaign-seed 7)

for workers in 1 4 8; do
  ckpt="$workdir/w$workers.ckpt"

  "$workdir/mhgen" campaign "${campaign_flags[@]}" -workers "$workers" \
    > "$workdir/uninterrupted.$workers"

  # Halt after round 1: the campaign checkpoints and stops — the
  # deterministic stand-in for a mid-run kill (the checkpoint write is
  # atomic, so any later kill point only loses rounds, never the file).
  "$workdir/mhgen" campaign "${campaign_flags[@]}" -workers "$workers" \
    -checkpoint "$ckpt" -halt-after-round 1 > /dev/null
  [ -s "$ckpt" ] || { echo "FAIL: workers=$workers wrote no checkpoint"; exit 1; }

  "$workdir/mhgen" campaign "${campaign_flags[@]}" -workers "$workers" \
    -checkpoint "$ckpt" -resume > "$workdir/resumed.$workers"

  if ! cmp -s "$workdir/uninterrupted.$workers" "$workdir/resumed.$workers"; then
    echo "FAIL: workers=$workers resumed report differs from uninterrupted:"
    diff "$workdir/uninterrupted.$workers" "$workdir/resumed.$workers" || true
    exit 1
  fi
  echo "workers=$workers: resumed report byte-identical"
done

# The resumed reports must also agree across worker counts (the
# campaign determinism contract composed with resume).
cmp -s "$workdir/resumed.1" "$workdir/resumed.4" && cmp -s "$workdir/resumed.1" "$workdir/resumed.8" \
  || { echo "FAIL: resumed reports differ across worker counts"; exit 1; }

echo "PASS: checkpoint/resume smoke complete"
