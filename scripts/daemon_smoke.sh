#!/usr/bin/env bash
# End-to-end smoke of the parcoachd daemon: build it under the race
# detector, boot it, and drive the whole validation loop over HTTP —
# cold compile → content-addressed cache hit (byte-identical
# diagnostics) → streamed DFS exploration of a planted schedule-only
# deadlock → replay of the reported failing schedule, both through the
# daemon's /run and through hybridrun -replay.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -race -o "$workdir/parcoachd" ./cmd/parcoachd
go build -o "$workdir/hybridrun" ./cmd/hybridrun

addr=127.0.0.1:7490
"$workdir/parcoachd" -addr "$addr" &
daemon_pid=$!

for i in $(seq 1 50); do
  if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" -eq 50 ]; then echo "FAIL: daemon never became healthy"; exit 1; fi
  sleep 0.2
done
echo "daemon healthy on $addr"

# The property-suite racer: statically quiet, deadlocks only under a
# particular single-election schedule — exactly what /explore must find.
cat > "$workdir/racer.mh" <<'EOF'
func main() {
	MPI_Init()
	var winner = 0
	parallel num_threads(2) {
		single nowait { winner = tid() }
	}
	if winner == 0 {
		MPI_Barrier()
	}
	MPI_Finalize()
}
EOF
jq -Rs '{name: "racer.mh", source: .}' "$workdir/racer.mh" > "$workdir/compile.json"

# 1. Cold compile: a miss.
miss=$(curl -sf -d @"$workdir/compile.json" "http://$addr/compile")
[ "$(jq -r .cached <<<"$miss")" = "false" ] || { echo "FAIL: first compile claims cached"; exit 1; }
key=$(jq -r .key <<<"$miss")
echo "compiled cold: $key"

# 2. Same source again: a hit, diagnostics byte-identical.
hit=$(curl -sf -d @"$workdir/compile.json" "http://$addr/compile")
[ "$(jq -r .cached <<<"$hit")" = "true" ] || { echo "FAIL: second compile missed the cache"; exit 1; }
[ "$(jq -c .diagnostics <<<"$miss")" = "$(jq -c .diagnostics <<<"$hit")" ] \
  || { echo "FAIL: cached diagnostics differ"; exit 1; }
echo "cache hit with identical diagnostics"

# 3. Streamed DFS exploration must find the planted deadlock.
jq -n --arg key "$key" \
  '{key: $key, strategy: "dfs", schedules: 512, workers: 4, stream: true}' \
  > "$workdir/explore.json"
curl -sfN -d @"$workdir/explore.json" "http://$addr/explore" > "$workdir/stream.ndjson"
[ "$(head -n1 "$workdir/stream.ndjson" | jq -r .event)" = "start" ] \
  || { echo "FAIL: stream did not open with a start event"; exit 1; }
report=$(tail -n1 "$workdir/stream.ndjson")
[ "$(jq -r .event <<<"$report")" = "report" ] || { echo "FAIL: stream did not end with a report"; exit 1; }
outcome=$(jq -r .report.firstFailure.outcome <<<"$report")
token=$(jq -r .report.firstFailure.schedule <<<"$report")
[ "$outcome" = "deadlock" ] || { echo "FAIL: explored outcome $outcome, want deadlock"; exit 1; }
grep -q '"event":"failure"' "$workdir/stream.ndjson" || { echo "FAIL: no streamed failure event"; exit 1; }
echo "exploration streamed a deadlock, replay token: $token"

# 4. Replay the token through the daemon: must reproduce.
replay=$(jq -n --arg key "$key" --arg sched "$token" '{key: $key, schedule: $sched}' \
  | curl -sf -d @- "http://$addr/run")
[ "$(jq -r .outcome <<<"$replay")" = "deadlock" ] || { echo "FAIL: daemon replay did not reproduce"; exit 1; }
[ "$(jq -r .diverged <<<"$replay")" = "null" ] || { echo "FAIL: daemon replay diverged"; exit 1; }
echo "daemon replay reproduced the deadlock"

# 5. And through the CLI: hybridrun -replay exits 1 on the failing run.
set +e
"$workdir/hybridrun" -replay "$token" "$workdir/racer.mh" >/dev/null 2>"$workdir/replay.err"
rc=$?
set -e
[ "$rc" -eq 1 ] || { echo "FAIL: hybridrun -replay exited $rc, want 1"; cat "$workdir/replay.err"; exit 1; }
grep -q deadlock "$workdir/replay.err" || { echo "FAIL: hybridrun replay error is not a deadlock"; exit 1; }
echo "hybridrun -replay reproduced the deadlock"

# 6. Stats reflect the traffic.
stats=$(curl -sf "http://$addr/stats")
[ "$(jq -r .cache.hits <<<"$stats")" -ge 1 ] || { echo "FAIL: no cache hits counted"; exit 1; }
[ "$(jq -r .sessions.warm <<<"$stats")" -ge 1 ] || { echo "FAIL: no warm sessions"; exit 1; }
[ "$(jq -r .explore.schedules <<<"$stats")" -ge 1 ] || { echo "FAIL: no schedules counted"; exit 1; }

# 7. Robustness: a client that hangs up mid-run must show up in the
# robustness counters — the run aborted (canceledRuns), the request
# counted (canceledRequests) — and the daemon must stay healthy.
for counter in canceledRequests quarantinedPanics canceledRuns watchdogRuns; do
  [ "$(jq -r ".robust.$counter" <<<"$stats")" != "null" ] \
    || { echo "FAIL: /stats robust section lacks $counter"; exit 1; }
done
cat > "$workdir/spin.json" <<'EOF'
{"name":"spin.mh","schedule":"rr","maxSteps":2000000000,
 "source":"func main() {\n\tMPI_Init()\n\tvar i = 0\n\twhile i < 2000000000 {\n\t\ti = i + 1\n\t}\n\tMPI_Finalize()\n}"}
EOF
set +e
curl -s --max-time 2 -d @"$workdir/spin.json" "http://$addr/run" >/dev/null 2>&1
set -e
for i in $(seq 1 50); do
  robust=$(curl -sf "http://$addr/stats" | jq .robust)
  if [ "$(jq -r .canceledRequests <<<"$robust")" -ge 1 ] \
     && [ "$(jq -r .canceledRuns <<<"$robust")" -ge 1 ]; then break; fi
  if [ "$i" -eq 50 ]; then
    echo "FAIL: client disconnect never reached the robustness counters: $robust"; exit 1
  fi
  sleep 0.2
done
curl -sf "http://$addr/healthz" >/dev/null || { echo "FAIL: daemon unhealthy after disconnect"; exit 1; }
echo "client disconnect aborted the run and was counted"

echo "PASS: daemon smoke complete"
