package parcoach_test

import (
	"os"
	"path/filepath"
	"testing"

	"parcoach"
	"parcoach/internal/ast"
	"parcoach/internal/explore"
	"parcoach/internal/interp"
	"parcoach/internal/mhgen"
	"parcoach/internal/mhgen/diff"
	"parcoach/internal/parser"
	"parcoach/internal/sched"
	"parcoach/internal/workload"
)

// The fuzz targets below are seeded from the committed corpus under
// testdata/fuzz (regenerate with `go run ./cmd/mhgen -corpus testdata/fuzz`)
// plus the generator itself. CI smoke-runs them with -fuzztime=20s so
// they cannot rot; run them longer locally with e.g.
//
//	go test -run='^$' -fuzz=FuzzParse -fuzztime=2m .

// fuzzSeeds adds generated programs spanning every bug class to f.
func fuzzSeeds(f *testing.F) {
	for _, bug := range append([]workload.Bug{workload.BugNone}, workload.AllBugs...) {
		f.Add(mhgen.Generate(mhgen.Config{Seed: 5, Bug: bug}).Source)
	}
	f.Add("func main() { MPI_Init()\nMPI_Finalize() }")
	f.Add("func f(") // malformed
}

// FuzzParse: the parser never panics on any input, and accepted programs
// survive a print→reparse round trip.
func FuzzParse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fuzz.mh", src)
		if err != nil || prog == nil {
			return
		}
		rendered := ast.String(prog)
		if _, err := parser.Parse("fuzz2.mh", rendered); err != nil {
			t.Fatalf("accepted program failed to reparse after printing: %v\noriginal:\n%s\nrendered:\n%s",
				err, src, rendered)
		}
	})
}

// FuzzCompile: the full ModeFull pipeline never panics on any parseable
// input, and its diagnostics are identical at any worker count.
func FuzzCompile(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := parcoach.Compile("fuzz.mh", src, parcoach.Options{Mode: parcoach.ModeFull, Workers: 1})
		if err != nil {
			return
		}
		p4, err := parcoach.Compile("fuzz.mh", src, parcoach.Options{Mode: parcoach.ModeFull, Workers: 4})
		if err != nil {
			t.Fatalf("compile succeeded serial but failed with workers: %v", err)
		}
		d1, d4 := p1.Diagnostics(), p4.Diagnostics()
		if len(d1) != len(d4) {
			t.Fatalf("diagnostic count differs by worker count: %d vs %d", len(d1), len(d4))
		}
		for i := range d1 {
			if d1[i].String() != d4[i].String() {
				t.Fatalf("diagnostic %d differs by worker count:\n%s\n%s", i, d1[i], d4[i])
			}
		}
	})
}

// TestDifferentialMatrix is the acceptance harness of the generated
// corpus: 200 seeded programs — every planted bug class plus clean
// programs at both sizes — compiled in all three modes and executed
// under the monitor's deadlock oracle, with the verdicts cross-checked
// against the ground-truth labels. Any soundness violation fails with a
// greedily reduced reproducer; the full detection matrix is locked
// against testdata/golden/mhgen-matrix.golden (regenerate with -update).
func TestDifferentialMatrix(t *testing.T) {
	const seeds = 200
	opts := diff.Options{Workers: 4}
	var m diff.Matrix
	for seed := uint64(0); seed < seeds; seed++ {
		gp := mhgen.FromSeed(seed)
		row := diff.Evaluate(gp, opts)
		if len(row.Violations) > 0 {
			t.Errorf("seed %d (%s): %v\nreduced repro:\n%s",
				seed, gp.Bug, row.Violations, diff.ReduceFailure(gp, opts))
		}
		m.Rows = append(m.Rows, row)
	}
	if t.Failed() {
		return
	}
	for _, r := range m.FalseNegatives() {
		// A false negative is only tolerable when the golden matrix below
		// acknowledges it; flag it loudly so the diff is a deliberate act.
		t.Logf("labeled false negative: %s", r)
	}

	got := m.Format()
	path := filepath.Join("testdata", "golden", "mhgen-matrix.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden matrix (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("detection matrix changed (rerun with -update if intended):\n--- got ---\n%s", got)
	}
}

// TestDifferentialDeterminism pins the acceptance contract that the same
// seed yields a byte-identical program and an identical verdict at any
// worker count.
func TestDifferentialDeterminism(t *testing.T) {
	for _, seed := range []uint64{0, 3, 10, 41, 87, 123} {
		a, b := mhgen.FromSeed(seed), mhgen.FromSeed(seed)
		if a.Source != b.Source {
			t.Fatalf("seed %d: source not byte-identical", seed)
		}
		r1 := diff.Evaluate(a, diff.Options{Workers: 1})
		r8 := diff.Evaluate(b, diff.Options{Workers: 8})
		if r1.String() != r8.String() {
			t.Errorf("seed %d: verdicts differ across worker counts:\n%s\n%s", seed, r1, r8)
		}
	}
}

// TestExploreSmoke is the CI -race gate for the schedule-exploration
// stack: a planted concurrency bug must be caught on some explored
// schedule, the printed schedule must replay to the identical verdict,
// and the whole report must be byte-deterministic.
func TestExploreSmoke(t *testing.T) {
	gp := mhgen.Generate(mhgen.Config{Seed: 5, Bug: workload.BugConcurrentSingles})
	prog, err := parcoach.Compile(gp.Name+".mh", gp.Source, parcoach.Options{Mode: parcoach.ModeFull, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	opts := parcoach.ExploreOptions{
		Strategy:  parcoach.ExploreRandom,
		Schedules: 8,
		Procs:     gp.Procs,
		Threads:   gp.Threads,
		MaxSteps:  2_000_000,
		Workers:   4,
	}
	rep := prog.Explore(opts)
	v := rep.Verdict(parcoach.RunCheckAbort)
	if v == nil {
		t.Fatalf("planted %s escaped 8 explored schedules: %s", gp.Bug, rep)
	}
	if again := prog.Explore(opts); again.String() != rep.String() {
		t.Fatalf("exploration not deterministic:\n%s\n%s", rep, again)
	}
	// Replay the detecting schedule.
	s, err := sched.Parse(v.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Run(parcoach.RunOptions{
		Procs: gp.Procs, Threads: gp.Threads, MaxSteps: 2_000_000, Scheduler: s,
	})
	if got := parcoach.ClassifyRun(res.Err); got != parcoach.RunCheckAbort {
		t.Fatalf("replay of %q = %v (%v), want check-abort", v.Schedule, got, res.Err)
	}
}

// FuzzValueOracle: the value oracle never fires on a correct-by-
// construction program, under any explored schedule. The input is a
// generation seed, not program text: an arbitrary mutated program can
// legitimately carry a wrong root or a torn buffer, but a clean mhgen
// program cannot — so any verdict here is an oracle false positive (the
// result recomputation disagreeing with the matcher's own snapshots),
// never a real race.
func FuzzValueOracle(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		gp := mhgen.Generate(mhgen.Config{
			Seed: seed,
			Bug:  workload.BugNone,
			Size: mhgen.Size(seed % 2),
		})
		prog, err := parser.Parse(gp.Name+".mh", gp.Source)
		if err != nil {
			t.Fatalf("clean generated program failed to parse: %v", err)
		}
		rep := explore.Explore(prog, explore.Options{
			Strategy:   explore.StrategyRandom,
			Schedules:  4,
			Seed:       int64(seed),
			Procs:      gp.Procs,
			Threads:    gp.Threads,
			MaxSteps:   200_000,
			ValueCheck: true,
		})
		if v := rep.Verdict(interp.OutcomeValueError); v != nil {
			t.Fatalf("value oracle fired on a clean program (seed %d, schedule %s): %s\n%s",
				seed, v.Schedule, v.Sample, gp.Source)
		}
	})
}

// FuzzExplore: schedule exploration never panics, hangs, or goes
// nondeterministic on any parseable program — including the planted-bug
// corpus under testdata/fuzz.
func FuzzExplore(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fuzz.mh", src)
		if err != nil {
			return
		}
		opts := explore.Options{
			Strategy:  explore.StrategyRandom,
			Schedules: 3,
			Procs:     2,
			Threads:   2,
			MaxSteps:  20_000,
		}
		a := explore.Explore(prog, opts)
		if a.Schedules != 3 {
			t.Fatalf("ran %d schedules, want 3", a.Schedules)
		}
		if b := explore.Explore(prog, opts); a.String() != b.String() {
			t.Fatalf("exploration not deterministic for:\n%s\n-- a --\n%s-- b --\n%s", src, a, b)
		}
	})
}
