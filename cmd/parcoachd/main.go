// Command parcoachd is the PARCOACH validation daemon: one long-lived
// process serving compile/run/explore over HTTP+JSON (internal/serve),
// with a content-addressed artifact cache, warm interpreter sessions,
// and explicit load shedding.
//
// Usage:
//
//	parcoachd [flags]
//
//	-addr A            listen address (default 127.0.0.1:7489)
//	-workers N         compile worker pool width (0 = all cores)
//	-cache-cap N       artifact cache capacity (LRU beyond it)
//	-max-concurrent N  requests executing at once (0 = NumCPU)
//	-queue-depth N     requests waiting for a slot before 429
//	-drain-timeout D   per-run drain bound before a wedged run's state
//	                   is abandoned (0 = interpreter default)
//	-timeout D         per-run wall-clock watchdog: a wedged run is
//	                   abandoned after D and answers with outcome
//	                   "timeout" (0 = no watchdog)
//
// Endpoints: POST /compile, POST /run, POST /explore (NDJSON streaming
// with "stream":true), GET /healthz, GET /stats. Example:
//
//	curl -s localhost:7489/compile -d '{"name":"bug.mh","source":"..."}'
//	curl -s localhost:7489/explore -d '{"key":"sha256:...","strategy":"dfs","schedules":512,"stream":true}'
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener closes,
// in-flight requests (including streamed explorations) finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parcoach/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7489", "listen address")
	workers := flag.Int("workers", 0, "compile worker pool width (0 = all cores)")
	cacheCap := flag.Int("cache-cap", 0, "artifact cache capacity (0 = default)")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent request slots (0 = NumCPU)")
	queueDepth := flag.Int("queue-depth", 0, "queued requests before 429 (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 0, "per-run drain bound (0 = default)")
	runTimeout := flag.Duration("timeout", 0, "per-run wall-clock watchdog (0 = none)")
	flag.Parse()

	if *runTimeout < 0 {
		fmt.Fprintf(os.Stderr, "parcoachd: -timeout must be non-negative, got %v\n", *runTimeout)
		os.Exit(2)
	}
	srv := serve.New(serve.Config{
		Workers:       *workers,
		CacheCap:      *cacheCap,
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		DrainTimeout:  *drainTimeout,
		RunTimeout:    *runTimeout,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "parcoachd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "parcoachd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "parcoachd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "parcoachd: shutdown:", err)
		os.Exit(1)
	}
}
