// Command benchjson measures schedule-exploration throughput and emits
// a machine-readable BENCH_explore.json, seeding the perf trajectory
// with schedules/sec data points that CI or a laptop can regenerate
// identically.
//
// It runs the same grid as BenchmarkExplore — the property-suite racer
// and a generated concurrency-bug program, each explored under every
// strategy (rr / random / pct / dfs, the DFS under both the
// work-stealing and the legacy wave-batched frontier) at pool widths
// 1/4/8 — and reports, per cell, the best schedules/sec over -repeat
// rounds (best-of, because the metric is a capability, not an average
// over scheduler noise).
//
// Usage:
//
//	benchjson [-o BENCH_explore.json] [-repeat 3] [-budget 1024]
//
// Output shape:
//
//	{
//	  "go": "go1.24", "gomaxprocs": 8, "schedule_budget": 1024,
//	  "results": [
//	    {"program": "racer", "strategy": "dfs", "frontier": "steal",
//	     "workers": 8, "schedules": 1590, "seconds": 0.023,
//	     "schedules_per_sec": 67827}, ...
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"parcoach"
	"parcoach/internal/explore"
	"parcoach/internal/mhgen"
	"parcoach/internal/workload"
)

type result struct {
	Program         string  `json:"program"`
	Strategy        string  `json:"strategy"`
	Frontier        string  `json:"frontier,omitempty"`
	Workers         int     `json:"workers"`
	Schedules       int     `json:"schedules"`
	Seconds         float64 `json:"seconds"`
	SchedulesPerSec float64 `json:"schedules_per_sec"`
}

type report struct {
	Go             string   `json:"go"`
	GOMAXPROCS     int      `json:"gomaxprocs"`
	ScheduleBudget int      `json:"schedule_budget"`
	Results        []result `json:"results"`
}

func main() {
	out := flag.String("o", "BENCH_explore.json", "output file")
	repeat := flag.Int("repeat", 3, "rounds per cell (best kept)")
	budget := flag.Int("budget", 1024, "DFS schedule budget (sampling strategies use 64)")
	flag.Parse()

	gp := mhgen.Generate(mhgen.Config{Seed: 5, Bug: workload.BugConcurrentSingles})
	type subject struct {
		name           string
		prog           *parcoach.Program
		procs, threads int
	}
	var subjects []subject
	for _, s := range []struct {
		name           string
		src            string
		procs, threads int
	}{
		{"racer", explore.BenchRacerSrc, 2, 2},
		{gp.Name, gp.Source, gp.Procs, gp.Threads},
	} {
		prog, err := parcoach.Compile(s.name+".mh", s.src, parcoach.Options{Mode: parcoach.ModeFull})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		subjects = append(subjects, subject{s.name, prog, s.procs, s.threads})
	}

	rep := report{Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), ScheduleBudget: *budget}
	for _, s := range subjects {
		for _, c := range explore.BenchGrid(*budget) {
			for _, workers := range []int{1, 4, 8} {
				best := result{
					Program: s.name, Strategy: c.Strategy.String(), Workers: workers,
				}
				if c.Strategy == parcoach.ExploreDFS {
					best.Frontier = c.Frontier.String()
				}
				for round := 0; round < *repeat; round++ {
					start := time.Now()
					r := s.prog.Explore(parcoach.ExploreOptions{
						Strategy:  c.Strategy,
						Frontier:  c.Frontier,
						Schedules: c.Schedules,
						Workers:   workers,
						Procs:     s.procs,
						Threads:   s.threads,
						MaxSteps:  explore.DefaultMaxSteps,
					})
					secs := time.Since(start).Seconds()
					sps := float64(r.Schedules) / secs
					if sps > best.SchedulesPerSec {
						best.Schedules = r.Schedules
						best.Seconds = secs
						best.SchedulesPerSec = sps
					}
				}
				fmt.Fprintf(os.Stderr, "%-28s %-8s %-6s workers=%d: %8.0f schedules/s (%d schedules)\n",
					s.name, best.Strategy, best.Frontier, workers, best.SchedulesPerSec, best.Schedules)
				rep.Results = append(rep.Results, best)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d cells)\n", *out, len(rep.Results))
}
