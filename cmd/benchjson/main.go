// Command benchjson measures schedule-exploration throughput and emits
// a machine-readable BENCH_explore.json, seeding the perf trajectory
// with schedules/sec data points that CI or a laptop can regenerate
// identically.
//
// It runs the same grid as BenchmarkExplore — the property-suite racer
// and a generated concurrency-bug program, each explored under every
// strategy (rr / random / pct / dfs, the DFS under both the
// work-stealing and the legacy wave-batched frontier) at pool widths
// 1/4/8 — and reports, per cell, the best schedules/sec over -repeat
// rounds (best-of, because the metric is a capability, not an average
// over scheduler noise).
//
// With -campaign it instead benchmarks the coverage-guided campaign
// engine (internal/campaign) against its own linear-sweep baseline and
// writes BENCH_campaign.json: the uniform sweep's final distinct
// coverage and found-bug set, the campaign's coverage-vs-budget
// trajectory, the budget at which the campaign matches the sweep's
// final coverage, and a byte-identity check of the campaign report
// across pool widths 1/4/8.
//
// Usage:
//
//	benchjson [-o BENCH_explore.json] [-repeat 3] [-budget 1024]
//	benchjson -campaign [-seeds 200] [-campaign-seed 42] [-o BENCH_campaign.json]
//
// Output shape:
//
//	{
//	  "go": "go1.24", "gomaxprocs": 8, "schedule_budget": 1024,
//	  "results": [
//	    {"program": "racer", "strategy": "dfs", "frontier": "steal",
//	     "workers": 8, "schedules": 1590, "seconds": 0.023,
//	     "schedules_per_sec": 67827}, ...
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"parcoach"
	"parcoach/internal/explore"
	"parcoach/internal/mhgen"
	"parcoach/internal/workload"
)

type result struct {
	Program         string  `json:"program"`
	Strategy        string  `json:"strategy"`
	Frontier        string  `json:"frontier,omitempty"`
	Workers         int     `json:"workers"`
	Schedules       int     `json:"schedules"`
	Seconds         float64 `json:"seconds"`
	SchedulesPerSec float64 `json:"schedules_per_sec"`
}

type report struct {
	Go             string   `json:"go"`
	GOMAXPROCS     int      `json:"gomaxprocs"`
	ScheduleBudget int      `json:"schedule_budget"`
	Results        []result `json:"results"`
}

// campaignSide is one arm of the campaign-vs-sweep comparison.
type campaignSide struct {
	Runs       int                      `json:"runs"`
	Coverage   int                      `json:"coverage"`
	Bugs       int                      `json:"bugs"`
	Trajectory []parcoach.CampaignPoint `json:"trajectory"`
}

// campaignReport is the BENCH_campaign.json shape. Everything in it is
// a pure function of (seeds, campaign_seed, uniform_budget) — CI and a
// laptop regenerate it byte-identically.
type campaignReport struct {
	Go            string `json:"go"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Seeds         int    `json:"seeds"`
	CampaignSeed  uint64 `json:"campaign_seed"`
	UniformBudget int    `json:"uniform_budget"`

	Uniform  campaignSide `json:"uniform"`
	Campaign campaignSide `json:"campaign"`

	// BudgetToMatch is the campaign run count at which its cumulative
	// distinct coverage first reaches the uniform sweep's final count;
	// Speedup is uniform runs ÷ BudgetToMatch.
	BudgetToMatch int     `json:"budget_to_match"`
	Speedup       float64 `json:"speedup"`
	// BugSetsEqual records that both arms caught the identical planted
	// bug set — the adaptive allocation costs no detections.
	BugSetsEqual bool `json:"bug_sets_equal"`
	// WorkersChecked lists the pool widths whose campaign reports were
	// verified byte-identical (the determinism contract).
	WorkersChecked []int `json:"workers_checked"`
}

func main() {
	out := flag.String("o", "", "output file (default per mode)")
	repeat := flag.Int("repeat", 3, "rounds per cell (best kept)")
	budget := flag.Int("budget", 1024, "DFS schedule budget (sampling strategies use 64)")
	campaignMode := flag.Bool("campaign", false, "benchmark the campaign engine instead of raw exploration")
	seeds := flag.Int("seeds", 200, "campaign mode: initial corpus size")
	campaignSeed := flag.Uint64("campaign-seed", 42, "campaign mode: master seed")
	flag.Parse()

	if *campaignMode {
		if *out == "" {
			*out = "BENCH_campaign.json"
		}
		campaignBench(*out, *seeds, *campaignSeed)
		return
	}
	if *out == "" {
		*out = "BENCH_explore.json"
	}

	gp := mhgen.Generate(mhgen.Config{Seed: 5, Bug: workload.BugConcurrentSingles})
	type subject struct {
		name           string
		prog           *parcoach.Program
		procs, threads int
	}
	var subjects []subject
	for _, s := range []struct {
		name           string
		src            string
		procs, threads int
	}{
		{"racer", explore.BenchRacerSrc, 2, 2},
		{gp.Name, gp.Source, gp.Procs, gp.Threads},
	} {
		prog, err := parcoach.Compile(s.name+".mh", s.src, parcoach.Options{Mode: parcoach.ModeFull})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		subjects = append(subjects, subject{s.name, prog, s.procs, s.threads})
	}

	rep := report{Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), ScheduleBudget: *budget}
	for _, s := range subjects {
		for _, c := range explore.BenchGrid(*budget) {
			for _, workers := range []int{1, 4, 8} {
				best := result{
					Program: s.name, Strategy: c.Strategy.String(), Workers: workers,
				}
				if c.Strategy == parcoach.ExploreDFS {
					best.Frontier = c.Frontier.String()
				}
				for round := 0; round < *repeat; round++ {
					start := time.Now()
					r := s.prog.Explore(parcoach.ExploreOptions{
						Strategy:  c.Strategy,
						Frontier:  c.Frontier,
						Schedules: c.Schedules,
						Workers:   workers,
						Procs:     s.procs,
						Threads:   s.threads,
						MaxSteps:  explore.DefaultMaxSteps,
					})
					secs := time.Since(start).Seconds()
					sps := float64(r.Schedules) / secs
					if sps > best.SchedulesPerSec {
						best.Schedules = r.Schedules
						best.Seconds = secs
						best.SchedulesPerSec = sps
					}
				}
				fmt.Fprintf(os.Stderr, "%-28s %-8s %-6s workers=%d: %8.0f schedules/s (%d schedules)\n",
					s.name, best.Strategy, best.Frontier, workers, best.SchedulesPerSec, best.Schedules)
				rep.Results = append(rep.Results, best)
			}
		}
	}

	writeJSON(*out, rep)
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d cells)\n", *out, len(rep.Results))
}

// campaignBench runs the linear sweep, then the campaign on the exact
// same corpus and total budget (mutation off so both arms cover the
// identical program set), verifies the campaign report is
// byte-identical at pool widths 1/4/8, and writes the comparison.
func campaignBench(out string, nseeds int, seed uint64) {
	seedList := make([]uint64, nseeds)
	for i := range seedList {
		seedList[i] = uint64(i)
	}

	uni, err := parcoach.Campaign(parcoach.CampaignOptions{
		Seeds: seedList, Seed: seed, Uniform: true, Workers: 8,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "uniform:  runs=%d coverage=%d bugs=%d\n", uni.Runs, uni.Coverage, len(uni.Bugs))

	workers := []int{1, 4, 8}
	var camp *parcoach.CampaignReport
	var canonical string
	for _, w := range workers {
		r, err := parcoach.Campaign(parcoach.CampaignOptions{
			Seeds: seedList, Seed: seed, Budget: uni.Runs, NoMutate: true, Workers: w,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if canonical == "" {
			camp, canonical = r, r.Format()
		} else if r.Format() != canonical {
			fmt.Fprintf(os.Stderr, "benchjson: campaign report differs at workers=%d — determinism contract broken\n", w)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "campaign: workers=%d runs=%d coverage=%d bugs=%d\n", w, r.Runs, r.Coverage, len(r.Bugs))
	}

	rep := campaignReport{
		Go:             runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Seeds:          nseeds,
		CampaignSeed:   seed,
		UniformBudget:  uni.Budget / nseeds,
		Uniform:        campaignSide{Runs: uni.Runs, Coverage: uni.Coverage, Bugs: len(uni.Bugs), Trajectory: uni.Trajectory},
		Campaign:       campaignSide{Runs: camp.Runs, Coverage: camp.Coverage, Bugs: len(camp.Bugs), Trajectory: camp.Trajectory},
		BugSetsEqual:   slicesEqual(uni.Bugs, camp.Bugs),
		WorkersChecked: workers,
	}
	for _, p := range camp.Trajectory {
		if p.Coverage >= uni.Coverage {
			rep.BudgetToMatch = p.Runs
			rep.Speedup = float64(uni.Runs) / float64(p.Runs)
			break
		}
	}
	if rep.BudgetToMatch > 0 {
		fmt.Fprintf(os.Stderr, "campaign matches sweep coverage at %d of %d runs (%.2fx less budget)\n",
			rep.BudgetToMatch, uni.Runs, rep.Speedup)
	} else {
		fmt.Fprintln(os.Stderr, "campaign did not reach sweep coverage within budget")
	}
	writeJSON(out, rep)
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", out)
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
}
