// Command parcoach is the static-analysis front end: it compiles a
// MiniHybrid source file, prints the compile-time verification warnings
// (with collective names and source lines, as the paper requires), and can
// dump the CFG, the parallelism-word analysis artifacts, the instrumented
// source and the lowered IR.
//
// Usage:
//
//	parcoach [flags] file.mh
//
//	-initial multithreaded   assume main may start inside a parallel region
//	-raw-pdf                 disable the rank-dependence refinement (ablation)
//	-mode baseline|analyze|full
//	-dot func                write the function's CFG in Graphviz DOT to stdout
//	-ir func                 dump the function's lowered IR
//	-dump-instrumented       print the instrumented program
//	-summary                 print per-function analysis summary
package main

import (
	"flag"
	"fmt"
	"os"

	"parcoach"
	"parcoach/internal/ast"
	"parcoach/internal/cfg"
)

func main() {
	initial := flag.String("initial", "monothreaded", "initial context: monothreaded or multithreaded")
	rawPDF := flag.Bool("raw-pdf", false, "disable the rank-dependence refinement of phase 3")
	mode := flag.String("mode", "full", "compilation mode: baseline, analyze or full")
	dotFunc := flag.String("dot", "", "dump the CFG of the named function as DOT")
	irFunc := flag.String("ir", "", "dump the lowered IR of the named function")
	dumpInst := flag.Bool("dump-instrumented", false, "print the instrumented program")
	summary := flag.Bool("summary", false, "print per-function analysis summary")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: parcoach [flags] file.mh")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	opts := parcoach.Options{Mode: parcoach.ModeFull, RawPDF: *rawPDF}
	switch *mode {
	case "baseline":
		opts.Mode = parcoach.ModeBaseline
	case "analyze":
		opts.Mode = parcoach.ModeAnalyze
	case "full":
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *initial {
	case "monothreaded":
	case "multithreaded":
		opts.Initial = parcoach.ContextMultithreaded
	default:
		fatal(fmt.Errorf("unknown initial context %q", *initial))
	}

	prog, err := parcoach.Compile(file, string(src), opts)
	if err != nil {
		fatal(err)
	}

	for _, d := range prog.Diagnostics() {
		fmt.Println(d)
	}

	if *summary && prog.Analysis != nil {
		fmt.Printf("\nfunctions: %d, statements: %d, cfg nodes: %d, required level: %s\n",
			prog.Stats.Functions, prog.Stats.Statements, prog.Stats.CFGNodes, prog.Analysis.RequiredLevel)
		for _, f := range prog.Source.Funcs {
			fa := prog.Analysis.Funcs[f.Name]
			if fa == nil {
				continue
			}
			fmt.Printf("  %-24s multithreaded-entry=%-5v S=%d Sipw=%d Scc=%d cc=%v\n",
				f.Name, fa.Multithreaded, len(fa.MultithreadedColls), len(fa.Sipw), len(fa.Scc), fa.NeedsCC)
		}
		fmt.Printf("instrumentation: %+v\n", prog.Stats.Checks)
	}

	if *dotFunc != "" {
		fn := prog.Source.Func(*dotFunc)
		if fn == nil {
			fatal(fmt.Errorf("no function %q", *dotFunc))
		}
		cfg.Build(fn).WriteDot(os.Stdout)
	}

	if *irFunc != "" {
		ir, ok := prog.IR[*irFunc]
		if !ok {
			fatal(fmt.Errorf("no IR for function %q", *irFunc))
		}
		fmt.Print(ir.String())
		if alloc := prog.Allocations[*irFunc]; alloc != nil {
			fmt.Printf("spills: %d, max live: %d\n", alloc.Spills, alloc.MaxLive)
		}
	}

	if *dumpInst {
		if prog.Instrumented == nil {
			fmt.Println("// no instrumentation required")
		} else {
			ast.Fprint(os.Stdout, prog.Instrumented)
		}
	}

	if len(prog.Warnings()) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parcoach:", err)
	os.Exit(2)
}
