// Command parcoach is the static-analysis front end: it compiles one or
// more MiniHybrid source files, prints the compile-time verification
// warnings (with collective names and source lines, as the paper
// requires), and can dump the CFG, the parallelism-word analysis
// artifacts, the instrumented source and the lowered IR. Multiple files
// compile concurrently on one shared worker pool (the CompileBatch API).
//
// Usage:
//
//	parcoach [flags] file.mh [file2.mh ...]
//
//	-initial multithreaded   assume main may start inside a parallel region
//	-raw-pdf                 disable the rank-dependence refinement (ablation)
//	-mode baseline|analyze|full
//	-workers N               compile worker pool width (0 = all cores)
//	-dot func                write the function's CFG in Graphviz DOT to stdout
//	-ir func                 dump the function's lowered IR
//	-dump-instrumented       print the instrumented program
//	-summary                 print per-function analysis summary
//	-timings                 print per-pass pipeline timings
package main

import (
	"flag"
	"fmt"
	"os"

	"parcoach"
	"parcoach/internal/ast"
)

func main() {
	initial := flag.String("initial", "monothreaded", "initial context: monothreaded or multithreaded")
	rawPDF := flag.Bool("raw-pdf", false, "disable the rank-dependence refinement of phase 3")
	mode := flag.String("mode", "full", "compilation mode: baseline, analyze or full")
	workers := flag.Int("workers", 0, "compile worker pool width (0 = all cores, 1 = serial)")
	dotFunc := flag.String("dot", "", "dump the CFG of the named function as DOT")
	irFunc := flag.String("ir", "", "dump the lowered IR of the named function")
	dumpInst := flag.Bool("dump-instrumented", false, "print the instrumented program")
	summary := flag.Bool("summary", false, "print per-function analysis summary")
	timings := flag.Bool("timings", false, "print per-pass pipeline timings")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: parcoach [flags] file.mh [file2.mh ...]")
		flag.Usage()
		os.Exit(2)
	}

	opts := parcoach.Options{Mode: parcoach.ModeFull, RawPDF: *rawPDF, Workers: *workers}
	switch *mode {
	case "baseline":
		opts.Mode = parcoach.ModeBaseline
	case "analyze":
		opts.Mode = parcoach.ModeAnalyze
	case "full":
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *initial {
	case "monothreaded":
	case "multithreaded":
		opts.Initial = parcoach.ContextMultithreaded
	default:
		fatal(fmt.Errorf("unknown initial context %q", *initial))
	}

	files := make([]parcoach.File, flag.NArg())
	for i, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		files[i] = parcoach.File{Name: name, Source: string(src)}
	}

	progs, err := parcoach.CompileBatch(files, opts)
	// A failing file must not discard the other programs' reports: print
	// what compiled, then the per-file errors, then exit 2 (compile
	// errors outrank the warnings exit code 1).
	anyWarnings := false
	dumped := false
	for _, prog := range progs {
		if prog == nil {
			continue
		}
		dumped = report(prog, len(progs) > 1, *summary, *timings, *dotFunc, *irFunc, *dumpInst) || dumped
		if len(prog.Warnings()) > 0 {
			anyWarnings = true
		}
	}
	if err != nil {
		fatal(err)
	}
	// A -dot/-ir function name that matched no input at all is a usage
	// error in multi-file mode too, same as the single-file exit 2.
	if (*dotFunc != "" || *irFunc != "") && !dumped {
		name := *dotFunc
		if name == "" {
			name = *irFunc
		}
		fatal(fmt.Errorf("no function %q in any input", name))
	}
	if anyWarnings {
		os.Exit(1)
	}
}

// report prints one program's results; it returns whether a -dot/-ir
// dump matched this program.
func report(prog *parcoach.Program, multi, summary, timings bool, dotFunc, irFunc string, dumpInst bool) bool {
	if multi {
		fmt.Printf("== %s ==\n", prog.Name)
	}
	for _, d := range prog.Diagnostics() {
		fmt.Println(d)
	}

	if summary && prog.Analysis != nil {
		fmt.Printf("\nfunctions: %d, statements: %d, cfg nodes: %d, required level: %s\n",
			prog.Stats.Functions, prog.Stats.Statements, prog.Stats.CFGNodes, prog.Analysis.RequiredLevel)
		for _, f := range prog.Source.Funcs {
			fa := prog.Analysis.Funcs[f.Name]
			if fa == nil {
				continue
			}
			fmt.Printf("  %-24s multithreaded-entry=%-5v S=%d Sipw=%d Scc=%d cc=%v\n",
				f.Name, fa.Multithreaded, len(fa.MultithreadedColls), len(fa.Sipw), len(fa.Scc), fa.NeedsCC)
		}
		fmt.Printf("instrumentation: %+v\n", prog.Stats.Checks)
	}

	if timings {
		fmt.Println()
		for _, pt := range prog.Timing.Passes {
			fmt.Printf("  %-18s %v\n", pt.Name, pt.Duration)
		}
		fmt.Printf("  %-18s %v\n", "total", prog.Timing.Total)
	}

	dumped := false
	if dotFunc != "" {
		// The backend's cached graph (post-DCE, instrumented when codegen
		// rewrote the function); no ad-hoc rebuild. In a batch, programs
		// that simply lack the function are skipped with a note; main
		// exits 2 if no input had it.
		if g, ok := prog.Graphs[dotFunc]; ok {
			g.WriteDot(os.Stdout)
			dumped = true
		} else if multi {
			fmt.Fprintf(os.Stderr, "parcoach: %s: no function %q\n", prog.Name, dotFunc)
		}
	}

	if irFunc != "" {
		if ir, ok := prog.IR[irFunc]; ok {
			fmt.Print(ir.String())
			if alloc := prog.Allocations[irFunc]; alloc != nil {
				fmt.Printf("spills: %d, max live: %d\n", alloc.Spills, alloc.MaxLive)
			}
			dumped = true
		} else if multi {
			fmt.Fprintf(os.Stderr, "parcoach: %s: no IR for function %q\n", prog.Name, irFunc)
		}
	}

	if dumpInst {
		if prog.Instrumented == nil {
			fmt.Println("// no instrumentation required")
		} else {
			ast.Fprint(os.Stdout, prog.Instrumented)
		}
	}
	return dumped
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parcoach:", err)
	os.Exit(2)
}
