// Command hybridrun compiles a MiniHybrid program and executes it on the
// simulated MPI+threads runtime, optionally with the paper's verification
// instrumentation active. Erroneous programs terminate with a located
// verification error (instrumented) or with the runtime's own mismatch or
// deadlock report (uninstrumented) instead of hanging.
//
// Beyond the single default run, the schedule-exploration engine can
// sweep the interleaving space (-explore) and any failing schedule it
// prints can be reproduced exactly (-replay):
//
//	hybridrun -explore dfs -schedules 512 bug.mh
//	  ... first failure at schedule 33 (deadlock)
//	      replay with: -replay 'trace:0.0.1.2'
//	hybridrun -replay 'trace:0.0.1.2' bug.mh
//
// Usage:
//
//	hybridrun [flags] file.mh
//
//	-np N          number of MPI processes (default 2)
//	-threads N     default team size of parallel regions (default 2)
//	-instrument    run the statically instrumented program (default true)
//	-level L       single|funneled|serialized|multiple (default multiple)
//	-policy P      single election: first-arrival|round-robin
//	-max-steps N   statement budget before the run is aborted
//	-explore S     explore schedules with strategy rr|random|pct|dfs
//	-schedules N   exploration run budget (default 16)
//	-sched-seed N  base seed of the random/pct samplers
//	-dfs-frontier F  DFS frontier: steal (work-stealing, default) |
//	               wave (legacy reference) | dpor (partial-order
//	               reduction: explore only genuinely racing schedules)
//	-replay TOK    run the single schedule named by a replay token
//	-timeout D     wall-clock bound: a single run is abandoned by the
//	               watchdog after D; an exploration is canceled at the
//	               deadline and prints its partial report. Either way
//	               the exit code is 3 (0 = none)
//
// -replay and -explore are mutually exclusive, and -dfs-frontier is
// only meaningful with -explore dfs; contradictory combinations (and a
// negative -timeout) exit 2.
//
// Exit codes: 0 clean, 1 verification/run failure, 2 usage error,
// 3 timed out.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"parcoach"
	"parcoach/internal/explore"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/sched"
)

func main() {
	np := flag.Int("np", 2, "number of MPI processes")
	threads := flag.Int("threads", 2, "default team size")
	instrumented := flag.Bool("instrument", true, "run with verification instrumentation")
	level := flag.String("level", "multiple", "MPI thread level")
	policy := flag.String("policy", "first-arrival", "single election policy")
	maxSteps := flag.Int64("max-steps", 0, "statement budget (0 = default)")
	workers := flag.Int("workers", 0, "compile worker pool width (0 = all cores, 1 = serial)")
	exploreStrat := flag.String("explore", "", "explore the schedule space: rr|random|pct|dfs")
	schedules := flag.Int("schedules", 16, "exploration schedule budget")
	schedSeed := flag.Int64("sched-seed", 0, "base seed of the random/pct schedule samplers")
	dfsFrontier := flag.String("dfs-frontier", "steal", "DFS frontier: steal|wave|dpor")
	replay := flag.String("replay", "", "replay one schedule from its token (rr, rand:<seed>, pct:<seed>:<depth>, trace:...)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on the run/exploration; exceeding it exits 3 (0 = none)")
	flag.Parse()

	if *timeout < 0 {
		fatal(fmt.Errorf("-timeout must be non-negative, got %v", *timeout))
	}

	// Flags that are meaningless together are an error, not a silent
	// precedence pick: a user combining them always means something the
	// run would not do (pre-check: -replay was silently ignored whenever
	// -explore was set, and -dfs-frontier silently ignored outside
	// -explore dfs).
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *exploreStrat != "" && *replay != "" {
		fatal(fmt.Errorf("-replay and -explore are mutually exclusive: a replay runs the one schedule its token names, an exploration enumerates many"))
	}
	if explicit["dfs-frontier"] && *exploreStrat != "dfs" {
		if *exploreStrat == "" {
			fatal(fmt.Errorf("-dfs-frontier %s requires -explore dfs", *dfsFrontier))
		}
		fatal(fmt.Errorf("-dfs-frontier %s applies only to -explore dfs, not -explore %s", *dfsFrontier, *exploreStrat))
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hybridrun [flags] file.mh")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	// -instrument=false normally compiles baseline (no analysis at all),
	// but an exploration should still print the static warnings and
	// merely *run* the uninstrumented tree — so with -explore the compile
	// is always full and the flag selects which tree is explored below.
	mode := parcoach.ModeFull
	if !*instrumented && *exploreStrat == "" {
		mode = parcoach.ModeBaseline
	}
	prog, err := parcoach.Compile(file, string(src), parcoach.Options{Mode: mode, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	for _, d := range prog.Warnings() {
		fmt.Fprintln(os.Stderr, "warning:", d)
	}

	opts := parcoach.RunOptions{
		Procs:    *np,
		Threads:  *threads,
		Stdout:   os.Stdout,
		LevelSet: true,
		MaxSteps: *maxSteps,
	}
	switch *level {
	case "single":
		opts.Level = mpi.ThreadSingle
	case "funneled":
		opts.Level = mpi.ThreadFunneled
	case "serialized":
		opts.Level = mpi.ThreadSerialized
	case "multiple":
		opts.Level = mpi.ThreadMultiple
	default:
		fatal(fmt.Errorf("unknown thread level %q", *level))
	}
	switch *policy {
	case "first-arrival":
		opts.Policy = omp.FirstArrival
	case "round-robin":
		opts.Policy = omp.RoundRobin
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	if *exploreStrat != "" {
		strat, err := explore.ParseStrategy(*exploreStrat)
		if err != nil {
			fatal(err)
		}
		frontier, err := explore.ParseFrontier(*dfsFrontier)
		if err != nil {
			fatal(err)
		}
		explorer := prog.Explore
		if !*instrumented {
			// Explore the pristine source: the schedule space as a real
			// machine would see it, without the planted checks.
			explorer = prog.ExploreUninstrumented
		}
		eopts := parcoach.ExploreOptions{
			Strategy:  strat,
			Frontier:  frontier,
			Schedules: *schedules,
			Seed:      *schedSeed,
			Procs:     *np,
			Threads:   *threads,
			MaxSteps:  *maxSteps,
			Workers:   *workers,
			Policy:    opts.Policy,
			Level:     opts.Level,
			LevelSet:  opts.LevelSet,
		}
		if *timeout > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			defer cancel()
			eopts.Ctx = ctx
		}
		rep := explorer(eopts)
		fmt.Print(rep)
		if rep.Canceled {
			fmt.Fprintf(os.Stderr, "hybridrun: exploration timed out after %v; the report above is partial\n", *timeout)
			os.Exit(3)
		}
		if rep.FirstFailure != nil {
			os.Exit(1)
		}
		return
	}

	var replaying *sched.Replay
	if *replay != "" {
		s, err := sched.Parse(*replay)
		if err != nil {
			fatal(err)
		}
		replaying, _ = s.(*sched.Replay)
		opts.Scheduler = s
		if *maxSteps == 0 {
			// Match the exploration default so a printed schedule —
			// including a budget-exhausted one — reproduces under the
			// same statement bound it was found with.
			opts.MaxSteps = explore.DefaultMaxSteps
		}
	}

	opts.WallTimeout = *timeout
	res := prog.Run(opts)
	if res.Outcome() == parcoach.RunTimeout {
		fmt.Fprintf(os.Stderr, "hybridrun: run abandoned by the watchdog after %v\n", *timeout)
		os.Exit(3)
	}
	if replaying != nil && replaying.Diverged() {
		// The trace named a thread that was not enabled: the program (or
		// its flags) differ from the recording, so whatever just ran was
		// NOT the recorded schedule — never let that pass as a
		// reproduction.
		fmt.Fprintf(os.Stderr, "hybridrun: replay diverged — trace %q does not match this program/configuration\n", *replay)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "stats: collectives=%d p2p=%d barriers=%d steps=%d cc-checks=%d phase-checks=%d value-checks=%d\n",
		res.Stats.Collectives, res.Stats.P2PMessages, res.Stats.Barriers,
		res.Stats.Steps, res.Stats.CCChecks, res.Stats.PhaseChecks, res.Stats.ValueChecks)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", res.Err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridrun:", err)
	os.Exit(2)
}
