package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"parcoach"
)

// The test binary doubles as the CLI: when re-exec'd with
// HYBRIDRUN_BE_CLI=1 it runs main() on its arguments, so the table
// tests below exercise the real flag parsing, exit codes and output
// streams without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("HYBRIDRUN_BE_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "HYBRIDRUN_BE_CLI=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

const cliCleanSrc = `
func main() {
	MPI_Init()
	MPI_Barrier()
	MPI_Finalize()
}`

// cliBuggySrc is rank-dependently buggy: instrumented runs abort at the
// planted check, uninstrumented runs fail in the runtime itself — the
// two explore paths are observably different.
const cliBuggySrc = `
func main() {
	MPI_Init()
	var x = 0
	if rank() == 0 {
		MPI_Bcast(x)
	}
	parallel num_threads(2) {
		MPI_Barrier()
	}
	MPI_Finalize()
}`

func writeProgram(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFlagConflicts: contradictory flag combinations exit 2 with a
// message naming the conflict, instead of silently ignoring one flag.
func TestFlagConflicts(t *testing.T) {
	clean := writeProgram(t, "clean.mh", cliCleanSrc)
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr; "" means stderr not checked
	}{
		{"replay+explore", []string{"-replay", "rr", "-explore", "dfs"}, 2, "mutually exclusive"},
		{"replay+explore-random", []string{"-explore", "random", "-replay", "rand:7"}, 2, "mutually exclusive"},
		{"frontier-without-explore", []string{"-dfs-frontier", "wave"}, 2, "requires -explore dfs"},
		{"frontier-with-sampling", []string{"-explore", "random", "-dfs-frontier", "dpor"}, 2, "applies only to -explore dfs"},
		{"frontier-with-rr", []string{"-explore", "rr", "-dfs-frontier", "steal"}, 2, "applies only to -explore dfs"},
		{"negative-timeout", []string{"-timeout", "-1s"}, 2, "non-negative"},
		// Valid combinations stay valid.
		{"plain-run", nil, 0, ""},
		{"replay-alone", []string{"-replay", "rr"}, 0, ""},
		{"explore-dfs-frontier", []string{"-explore", "dfs", "-dfs-frontier", "wave", "-schedules", "8"}, 0, ""},
		{"frontier-default-untouched", []string{"-explore", "random", "-schedules", "4"}, 0, ""},
		// A generous -timeout composes with everything and never fires on a
		// fast clean program.
		{"timeout-with-run", []string{"-timeout", "1m"}, 0, ""},
		{"timeout-with-replay", []string{"-timeout", "1m", "-replay", "rr"}, 0, ""},
		{"timeout-with-explore", []string{"-timeout", "1m", "-explore", "rr"}, 0, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runCLI(t, append(tc.args, clean)...)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d; stderr:\n%s", code, tc.wantCode, stderr)
			}
			if tc.wantErr != "" && !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr)
			}
		})
	}
}

// cliSpinSrc loops far past any test's patience — the program -timeout
// has to interrupt.
const cliSpinSrc = `
func main() {
	MPI_Init()
	var i = 0
	while i < 2000000000 {
		i = i + 1
	}
	MPI_Finalize()
}`

// TestTimeoutExitCode: a run or exploration that exceeds -timeout exits
// 3 (distinct from verification failure's 1 and usage's 2), names the
// timeout on stderr, and — for explorations — still prints the partial
// report.
func TestTimeoutExitCode(t *testing.T) {
	spin := writeProgram(t, "spin.mh", cliSpinSrc)

	t.Run("run", func(t *testing.T) {
		_, stderr, code := runCLI(t, "-timeout", "100ms", spin)
		if code != 3 {
			t.Fatalf("timed-out run exited %d, want 3; stderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "watchdog") {
			t.Errorf("stderr does not name the watchdog:\n%s", stderr)
		}
	})
	t.Run("explore", func(t *testing.T) {
		stdout, stderr, code := runCLI(t, "-timeout", "100ms", "-explore", "rr", spin)
		if code != 3 {
			t.Fatalf("timed-out exploration exited %d, want 3; stderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "timed out") {
			t.Errorf("stderr does not report the timeout:\n%s", stderr)
		}
		if !strings.Contains(stdout, "canceled=true") {
			t.Errorf("partial report missing its canceled marker:\n%s", stdout)
		}
	})
}

// reportOutcomes extracts the verdict outcome names from the CLI's
// exploration report ("  <outcome>  ×<count>" lines).
func reportOutcomes(report string) []string {
	var outcomes []string
	for _, line := range strings.Split(report, "\n") {
		if !strings.HasPrefix(line, "  ") || !strings.Contains(line, "×") {
			continue
		}
		if f := strings.Fields(line); len(f) >= 2 {
			outcomes = append(outcomes, f[0])
		}
	}
	return outcomes
}

// TestExploreUninstrumented: -instrument=false -explore must (a) still
// print the static warnings — the compile stays full-analysis — and (b)
// explore the pristine tree, matching a direct ExploreUninstrumented
// call. Pre-fix, the flag compiled baseline: no warnings, and the
// "uninstrumented" exploration was an accident of the missing tree.
func TestExploreUninstrumented(t *testing.T) {
	buggy := writeProgram(t, "buggy.mh", cliBuggySrc)
	stdout, stderr, code := runCLI(t, "-instrument=false", "-explore", "rr", buggy)
	if code != 1 {
		t.Fatalf("buggy exploration exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "warning:") {
		t.Errorf("-instrument=false -explore lost the static warnings; stderr:\n%s", stderr)
	}

	prog, err := parcoach.Compile("buggy.mh", cliBuggySrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	want := prog.ExploreUninstrumented(parcoach.ExploreOptions{Strategy: parcoach.ExploreRoundRobin})
	var wantOutcomes []string
	for _, v := range want.Verdicts {
		wantOutcomes = append(wantOutcomes, v.Outcome.String())
	}
	got := reportOutcomes(stdout)
	if strings.Join(got, ",") != strings.Join(wantOutcomes, ",") {
		t.Errorf("CLI verdicts %v, direct ExploreUninstrumented %v", got, wantOutcomes)
	}

	// The instrumented exploration of the same program differs — the
	// planted check stops the run first — proving the flag genuinely
	// switches trees rather than both paths landing on the same one.
	wantInst := prog.Explore(parcoach.ExploreOptions{Strategy: parcoach.ExploreRoundRobin})
	instOutcomes := make([]string, 0, len(wantInst.Verdicts))
	for _, v := range wantInst.Verdicts {
		instOutcomes = append(instOutcomes, v.Outcome.String())
	}
	if strings.Join(got, ",") == strings.Join(instOutcomes, ",") {
		t.Skipf("instrumented and uninstrumented verdicts coincide (%v); tree switch not observable here", got)
	}
	stdoutInst, _, _ := runCLI(t, "-explore", "rr", buggy)
	if gotInst := reportOutcomes(stdoutInst); strings.Join(gotInst, ",") != strings.Join(instOutcomes, ",") {
		t.Errorf("instrumented CLI verdicts %v, direct Explore %v", gotInst, instOutcomes)
	}
}
