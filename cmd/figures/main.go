// Command figures regenerates the paper's experimental tables:
//
//	-fig1        Figure 1 — compile-time overhead (warnings / +codegen)
//	-warnings    warning inventory per benchmark and seeded bug class
//	-detect      error-detection matrix on the micro corpus
//	-overhead    runtime overhead of the selective instrumentation
//	-ablation    phase timings and the rank-dependence refinement
//	-all         everything above
//
//	-scale S|A|B benchmark scale (default B, the paper-like size)
//	-iters N     measurement repetitions (default 10)
//	-np N        processes for runtime experiments (default 2)
//	-threads N   team size for runtime experiments (default 2)
package main

import (
	"flag"
	"fmt"
	"os"

	"parcoach/internal/report"
	"parcoach/internal/workload"
)

func main() {
	fig1 := flag.Bool("fig1", false, "reproduce Figure 1")
	warns := flag.Bool("warnings", false, "warning inventory")
	detect := flag.Bool("detect", false, "detection matrix")
	overhead := flag.Bool("overhead", false, "runtime overhead")
	ablation := flag.Bool("ablation", false, "ablation tables")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.String("scale", "B", "benchmark scale: S, A or B")
	iters := flag.Int("iters", 10, "measurement repetitions")
	np := flag.Int("np", 2, "processes for runtime experiments")
	threads := flag.Int("threads", 2, "team size for runtime experiments")
	flag.Parse()

	var sc workload.Scale
	switch *scale {
	case "S":
		sc = workload.ScaleS
	case "A":
		sc = workload.ScaleA
	case "B":
		sc = workload.ScaleB
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *all {
		*fig1, *warns, *detect, *overhead, *ablation = true, true, true, true, true
	}
	if !*fig1 && !*warns && !*detect && !*overhead && !*ablation {
		flag.Usage()
		os.Exit(2)
	}

	show := func(name string, f func() (string, error)) {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *fig1 {
		show("fig1", func() (string, error) { return report.Figure1(sc, *iters) })
	}
	if *warns {
		show("warnings", func() (string, error) { return report.WarningInventory(sc) })
	}
	if *detect {
		show("detect", report.DetectionMatrix)
	}
	if *overhead {
		show("overhead", func() (string, error) {
			return report.RuntimeOverhead(sc, *np, *threads, *iters)
		})
	}
	if *ablation {
		show("ablation", func() (string, error) { return report.Ablation(sc, *iters) })
	}
}
