// Command benchdaemon measures parcoachd request throughput and emits a
// machine-readable BENCH_daemon.json — the daemon-side companion of
// BENCH_explore.json, seeding the requests/sec trajectory the roadmap's
// validation-as-a-service item asks for.
//
// It mounts internal/serve on a loopback listener (the same handler
// stack cmd/parcoachd serves, minus process startup) and drives it over
// real HTTP:
//
//   - compile/cold — distinct sources, every request a cache miss (the
//     full pipeline compile per request; sequential, it measures latency)
//   - compile/hit — one source, every request a content-address cache
//     hit, at 1/8/32 concurrent clients
//   - explore/warm — schedule exploration of a cached artifact on its
//     warm session, at 1/8/32 concurrent clients
//
// The cold/hit mean-latency ratio is reported as cold_hit_speedup: how
// much the content-addressed cache buys over recompiling per request.
//
// Usage:
//
//	benchdaemon [-o BENCH_daemon.json] [-requests 400] [-cold 32]
//	            [-erequests 120] [-schedules 8]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parcoach/internal/explore"
	"parcoach/internal/serve"
)

type result struct {
	Endpoint  string  `json:"endpoint"`
	Mode      string  `json:"mode"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	Seconds   float64 `json:"seconds"`
	ReqPerSec float64 `json:"req_per_sec"`
	MeanMS    float64 `json:"mean_ms"`
}

type report struct {
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// ColdHitSpeedup is mean cold-compile latency over mean cache-hit
	// latency (single client): the factor the artifact cache saves.
	ColdHitSpeedup float64  `json:"cold_hit_speedup"`
	Results        []result `json:"results"`
}

// compileSubject builds the compile-benchmark program: n hybrid
// functions (thread team + collective each), called from main. Sized so
// the cold cell measures the pipeline — frontend, analysis over every
// function, instrumentation, lowering — rather than HTTP overhead,
// which is all a cache hit pays.
func compileSubject(n int) string {
	var b strings.Builder
	b.WriteString("func main() {\n\tMPI_Init()\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\tphase%d()\n", i)
	}
	b.WriteString("\tMPI_Finalize()\n}\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `func phase%d() {
	var x = rank()
	parallel num_threads(2) {
		pfor i = 0 .. 8 {
			atomic x += i
		}
		single {
			MPI_Allreduce(x, x, sum)
		}
	}
}
`, i)
	}
	return b.String()
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "benchdaemon:", err)
	os.Exit(2)
}

func main() {
	out := flag.String("o", "BENCH_daemon.json", "output file")
	requests := flag.Int("requests", 400, "cache-hit compile requests per concurrency cell")
	cold := flag.Int("cold", 32, "distinct cold-compile requests")
	erequests := flag.Int("erequests", 120, "explore requests per concurrency cell")
	schedules := flag.Int("schedules", 8, "schedules per explore request")
	flag.Parse()

	srv := serve.New(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	post := func(path string, body any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return nil
	}

	rep := report{Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	cell := func(endpoint, mode string, clients, total int, do func(i int) error) result {
		var (
			next  atomic.Int64
			first atomic.Value // error
			wg    sync.WaitGroup
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= total {
						return
					}
					if err := do(i); err != nil {
						first.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err, _ := first.Load().(error); err != nil {
			die(err)
		}
		secs := time.Since(start).Seconds()
		r := result{
			Endpoint: endpoint, Mode: mode, Clients: clients, Requests: total,
			Seconds: secs, ReqPerSec: float64(total) / secs,
			MeanMS: secs / float64(total) * 1e3 * float64(clients),
		}
		fmt.Fprintf(os.Stderr, "%-8s %-5s clients=%-3d %8.0f req/s (%d requests, %.3fs)\n",
			endpoint, mode, clients, r.ReqPerSec, total, secs)
		rep.Results = append(rep.Results, r)
		return r
	}

	// Cold compiles: every source distinct, sequential — per-request
	// latency IS the pipeline compile.
	subject := compileSubject(48)
	coldCell := cell("compile", "cold", 1, *cold, func(i int) error {
		return post("/compile", map[string]any{
			"name":   "cold.mh",
			"source": fmt.Sprintf("%s// variant %d\n", subject, i),
		})
	})

	// Cache hits: one source, primed once.
	hitBody := map[string]any{"name": "hit.mh", "source": subject}
	if err := post("/compile", hitBody); err != nil {
		die(err)
	}
	var hit1 result
	for _, clients := range []int{1, 8, 32} {
		r := cell("compile", "hit", clients, *requests, func(int) error {
			return post("/compile", hitBody)
		})
		if clients == 1 {
			hit1 = r
		}
	}
	coldMean := coldCell.Seconds / float64(coldCell.Requests)
	hitMean := hit1.Seconds / float64(hit1.Requests)
	rep.ColdHitSpeedup = coldMean / hitMean
	fmt.Fprintf(os.Stderr, "cold %.3fms vs hit %.3fms per compile: %.0f× speedup\n",
		coldMean*1e3, hitMean*1e3, rep.ColdHitSpeedup)

	// Warm-session explorations of the cached racer. Each request runs
	// -schedules seeded-random schedules; per-request seeds vary so the
	// runs are not all literally identical.
	exploreBody := func(i int) map[string]any {
		return map[string]any{
			"name": "hit.mh", "source": explore.BenchRacerSrc,
			"strategy": "random", "schedules": *schedules, "seed": int64(i), "workers": 1,
		}
	}
	if err := post("/explore", exploreBody(0)); err != nil {
		die(err)
	}
	for _, clients := range []int{1, 8, 32} {
		cell("explore", "warm", clients, *erequests, func(i int) error {
			return post("/explore", exploreBody(i))
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "benchdaemon: wrote %s (%d cells)\n", *out, len(rep.Results))
}
