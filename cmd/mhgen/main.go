// Command mhgen emits, replays and evaluates seeded random MiniHybrid
// programs (internal/mhgen) against the differential static/dynamic
// validation harness (internal/mhgen/diff).
//
//	mhgen -seed 42                   # print the program for seed 42
//	mhgen -seed 42 -eval             # compile+run it, print the verdict row
//	mhgen -seed 0 -n 200 -eval       # sweep 200 seeds, print the matrix
//	mhgen -bug early-return -eval    # force a bug class (with -seed/-size)
//	mhgen -corpus testdata/fuzz      # (re)write the go-fuzz seed corpus
//	mhgen -n 200 -eval -shards 4 -shard 1   # CI matrix: shard 1 of 4
//
// Sharding partitions the seed range round-robin (every shards-th
// seed), so each shard still covers every bug class; the union of all
// shards' per-seed verdict lines is exactly the unsharded matrix.
//
// The campaign subcommand runs a coverage-guided exploration campaign
// (internal/campaign) over a corpus of consecutive seeds, spending the
// schedule budget where coverage still grows:
//
//	mhgen campaign -n 200 -budget 3200            # adaptive campaign
//	mhgen campaign -n 200 -budget 3200 -uniform   # even-spread baseline
//	mhgen campaign -n 50 -json                    # structured report
//
// A fixed -campaign-seed renders byte-identically at any -workers
// count. Campaigns checkpoint and resume: -checkpoint FILE writes the
// resumable state after every -checkpoint-every rounds (atomically, so
// a kill mid-write keeps the previous checkpoint), and -resume
// continues from it — the resumed report is byte-identical to an
// uninterrupted run of the same options. -halt-after-round N stops
// deterministically after round N (the kill switch the smoke scripts
// use to prove that identity).
//
// On a soundness violation the failing program is greedily reduced
// before printing, and the exit status is 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"parcoach"
	"parcoach/internal/mhgen"
	"parcoach/internal/mhgen/diff"
	"parcoach/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "campaign" {
		runCampaign(os.Args[2:])
		return
	}
	var (
		seed    = flag.Uint64("seed", 0, "generation seed")
		n       = flag.Uint64("n", 1, "number of consecutive seeds to process")
		bugName = flag.String("bug", "", "force a bug class (none, multithreaded-collective, ...); default derives from the seed")
		size    = flag.String("size", "", "force a size (small, medium); default derives from the seed")
		eval    = flag.Bool("eval", false, "compile and run under the differential harness")
		workers = flag.Int("workers", 0, "compile worker-pool width (0 = GOMAXPROCS)")
		corpus  = flag.String("corpus", "", "write the fuzz seed corpus under this directory and exit")
		shards  = flag.Int("shards", 1, "partition the seed range round-robin into this many shards (CI matrix jobs)")
		shard   = flag.Int("shard", 0, "process this shard of the partition (0-based)")
	)
	flag.Parse()

	if *shards < 1 || *shard < 0 || *shard >= *shards {
		fmt.Fprintf(os.Stderr, "mhgen: invalid -shard %d of -shards %d\n", *shard, *shards)
		os.Exit(2)
	}

	if *corpus != "" {
		if err := writeCorpus(*corpus); err != nil {
			fmt.Fprintln(os.Stderr, "mhgen:", err)
			os.Exit(1)
		}
		return
	}

	var m diff.Matrix
	failed := false
	for _, s := range mhgen.ShardSeeds(*seed, *n, *shards, *shard) {
		gp, err := generate(s, *bugName, *size)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mhgen:", err)
			os.Exit(2)
		}
		if !*eval {
			fmt.Printf("// %s (procs=%d threads=%d bugline=%d)\n%s", gp.Name, gp.Procs, gp.Threads, gp.BugLine, gp.Source)
			continue
		}
		row := diff.Evaluate(gp, diff.Options{Workers: *workers})
		m.Rows = append(m.Rows, row)
		if len(row.Violations) > 0 {
			failed = true
			fmt.Printf("%s\nreduced repro:\n%s\n", row, diff.ReduceFailure(gp, diff.Options{Workers: *workers}))
		}
	}
	if *eval {
		if *n > 1 {
			fmt.Print(m.Format())
		} else if len(m.Rows) == 1 && len(m.Rows[0].Violations) == 0 {
			// Violating rows were already printed with their reduced repro.
			fmt.Println(m.Rows[0])
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runCampaign is the campaign subcommand: a coverage-guided (or, with
// -uniform, evenly spread) exploration campaign over consecutive seeds.
func runCampaign(args []string) {
	fs := flag.NewFlagSet("mhgen campaign", flag.ExitOnError)
	var (
		start   = fs.Uint64("seed", 0, "first generation seed of the corpus")
		n       = fs.Uint64("n", 50, "number of consecutive seeds in the corpus")
		budget  = fs.Int("budget", 0, "total schedule budget (0 = 16 per seed)")
		cseed   = fs.Uint64("campaign-seed", 1, "campaign schedule and mutation seed")
		workers = fs.Int("workers", 0, "worker-pool width (0 = GOMAXPROCS)")
		uniform = fs.Bool("uniform", false, "spread the budget evenly instead of by coverage yield (the bench baseline; no mutation)")
		asJSON  = fs.Bool("json", false, "emit the structured report as JSON")

		checkpoint = fs.String("checkpoint", "", "write resumable campaign state to this file")
		ckEvery    = fs.Int("checkpoint-every", 0, "rounds between checkpoint writes (0 = every round)")
		resume     = fs.Bool("resume", false, "continue from the -checkpoint file instead of starting fresh")
		haltAfter  = fs.Int("halt-after-round", 0, "checkpoint and stop after this round (0 = run to completion; requires -checkpoint)")
		runTimeout = fs.Duration("timeout", 0, "per-run wall-clock watchdog (0 = none)")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mhgen campaign: unexpected argument %q\n", fs.Arg(0))
		os.Exit(2)
	}
	if *checkpoint == "" && (*resume || *haltAfter > 0 || *ckEvery > 0) {
		fmt.Fprintln(os.Stderr, "mhgen campaign: -resume/-halt-after-round/-checkpoint-every require -checkpoint")
		os.Exit(2)
	}
	seeds := make([]uint64, *n)
	for i := range seeds {
		seeds[i] = *start + uint64(i)
	}
	resumeFrom := ""
	if *resume {
		resumeFrom = *checkpoint
	}
	rep, err := parcoach.Campaign(parcoach.CampaignOptions{
		Seeds:           seeds,
		Budget:          *budget,
		Seed:            *cseed,
		Workers:         *workers,
		Uniform:         *uniform,
		RunTimeout:      *runTimeout,
		Checkpoint:      *checkpoint,
		CheckpointEvery: *ckEvery,
		Resume:          resumeFrom,
		HaltAfterRound:  *haltAfter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhgen campaign:", err)
		os.Exit(1)
	}
	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mhgen campaign:", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", out)
		return
	}
	fmt.Print(rep.Format())
}

func generate(seed uint64, bugName, size string) (*mhgen.Program, error) {
	if bugName == "" && size == "" {
		return mhgen.FromSeed(seed), nil
	}
	derived := mhgen.FromSeed(seed)
	cfg := mhgen.Config{Seed: seed, Bug: derived.Bug, Size: derived.Size}
	if bugName != "" {
		found := bugName == "none"
		if found {
			cfg.Bug = workload.BugNone
		}
		for _, b := range workload.AllBugs {
			if b.String() == bugName {
				cfg.Bug, found = b, true
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown bug class %q", bugName)
		}
	}
	switch size {
	case "":
	case "small":
		cfg.Size = mhgen.SizeSmall
	case "medium":
		cfg.Size = mhgen.SizeMedium
	default:
		return nil, fmt.Errorf("unknown size %q", size)
	}
	return mhgen.Generate(cfg), nil
}

// writeCorpus (re)generates the committed go-fuzz seed corpus: three
// generated programs per bug class (clean included) for the program-text
// targets, a few malformed inputs for the parser target, and a spread of
// generation seeds for the seed-driven value-oracle target.
func writeCorpus(dir string) error {
	bugs := append([]workload.Bug{workload.BugNone}, workload.AllBugs...)
	var entries []struct{ name, src string }
	for _, bug := range bugs {
		for seed := uint64(0); seed < 3; seed++ {
			sz := mhgen.SizeSmall
			if seed == 2 {
				sz = mhgen.SizeMedium
			}
			gp := mhgen.Generate(mhgen.Config{Seed: seed, Bug: bug, Size: sz})
			entries = append(entries, struct{ name, src string }{
				fmt.Sprintf("gen-%s-%d", bug, seed), gp.Source,
			})
		}
	}
	for _, target := range []string{"FuzzParse", "FuzzCompile", "FuzzExplore"} {
		for _, e := range entries {
			if err := writeSeed(dir, target, e.name, e.src); err != nil {
				return err
			}
		}
	}
	for seed := uint64(0); seed < 16; seed++ {
		name := fmt.Sprintf("seed-%d", seed)
		body := fmt.Sprintf("go test fuzz v1\nuint64(%d)\n", seed)
		if err := writeRaw(dir, "FuzzValueOracle", name, body); err != nil {
			return err
		}
	}
	malformed := []struct{ name, src string }{
		{"truncated", "func main() { MPI_Init()\nparallel { single {"},
		{"stray-else", "func main() { } else { barrier }"},
		{"bad-mpi", "func main() { MPI_Bcast() MPI_Reduce(x) }"},
		{"deep-parens", "func main() { var x = ((((((1)))))) }"},
		{"empty", ""},
	}
	for _, m := range malformed {
		if err := writeSeed(dir, "FuzzParse", "bad-"+m.name, m.src); err != nil {
			return err
		}
	}
	return nil
}

func writeSeed(dir, target, name, src string) error {
	return writeRaw(dir, target, name, "go test fuzz v1\nstring("+strconv.Quote(src)+")\n")
}

func writeRaw(dir, target, name, body string) error {
	path := filepath.Join(dir, target, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(body), 0o644)
}
