// NAS-MZ demo: generate the synthetic BT-MZ benchmark, show the
// correct-but-unprovable warnings its load-balancing guards produce, and
// demonstrate that the selectively instrumented run validates them at a
// cost of a handful of CC checks rather than aborting.
package main

import (
	"fmt"
	"log"

	"parcoach"
	"parcoach/internal/workload"
)

func main() {
	w := workload.BTMZ(workload.ScaleA, workload.BugNone)
	prog, err := parcoach.Compile("bt-mz.mh", w.Source, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BT-MZ: %d functions, %d statements, %d CFG nodes, %d IR instructions\n",
		prog.Stats.Functions, prog.Stats.Statements, prog.Stats.CFGNodes, prog.Stats.IRInsts)
	fmt.Printf("compile: frontend=%v backend=%v analysis=%v instrument=%v\n",
		prog.Timing.Frontend, prog.Timing.Backend, prog.Timing.Analysis, prog.Timing.Instrument)

	fmt.Println("\nwarnings (the statically unprovable load-balancing guards):")
	for _, d := range prog.Warnings() {
		fmt.Println(" ", d)
	}
	fmt.Printf("checks generated: %+v\n", prog.Stats.Checks)

	res := prog.Run(parcoach.RunOptions{Procs: 4, Threads: 4})
	if res.Err != nil {
		log.Fatalf("instrumented BT-MZ must pass: %v", res.Err)
	}
	fmt.Printf("\nrun: collectives=%d p2p=%d barriers=%d cc-checks=%d → all warnings validated\n",
		res.Stats.Collectives, res.Stats.P2PMessages, res.Stats.Barriers, res.Stats.CCChecks)

	// The same benchmark with a seeded early-return bug aborts instead.
	bad := workload.BTMZ(workload.ScaleA, workload.BugEarlyReturn)
	prog2, err := parcoach.Compile("bt-mz-bug.mh", bad.Source, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		log.Fatal(err)
	}
	res2 := prog2.Run(parcoach.RunOptions{Procs: 4, Threads: 4})
	fmt.Printf("\nseeded early-return variant: %v\n", res2.Err)
}
