// Quickstart: compile a hybrid MPI+threads program, read the compile-time
// verification warnings, and execute it on the simulated runtime — first a
// correct program, then one with a rank-dependent collective that the
// planted CC check stops before it can deadlock.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"parcoach"
)

// The sources live next to this file so the repo's golden tests compile
// and run every example program in all modes.

//go:embed clean.mh
var clean string

//go:embed buggy.mh
var buggy string

func main() {
	fmt.Println("=== correct program ===")
	prog, err := parcoach.Compile("clean.mh", clean, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warnings: %d\n", len(prog.Warnings()))
	res := prog.Run(parcoach.RunOptions{Procs: 2})
	fmt.Print(res.Output)
	fmt.Printf("collectives executed: %d, error: %v\n\n", res.Stats.Collectives, res.Err)

	fmt.Println("=== rank-dependent collective ===")
	prog2, err := parcoach.Compile("buggy.mh", buggy, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range prog2.Warnings() {
		fmt.Println("compile-time:", d)
	}
	res2 := prog2.Run(parcoach.RunOptions{Procs: 2})
	fmt.Println("run-time:", res2.Err)
}
