// Deadlock demo: the same erroneous program executed twice. Without
// instrumentation, rank 1 finalizes while rank 0 waits in MPI_Barrier
// forever — on a cluster the job would hang until the batch limit; the
// simulated runtime detects the quiescence and prints the full report.
// With the paper's instrumentation, the CC check catches the divergence
// at the moment it happens, naming both collectives and source lines.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"parcoach"
)

// The source lives next to this file so the repo's golden tests compile
// and run every example program in all modes.
//
//go:embed deadlock.mh
var src string

func main() {
	prog, err := parcoach.Compile("deadlock.mh", src, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== compile-time warnings ===")
	for _, d := range prog.Warnings() {
		fmt.Println(d)
	}

	fmt.Println("\n=== uninstrumented run (what a cluster job would do) ===")
	plain := prog.RunUninstrumented(parcoach.RunOptions{Procs: 2})
	fmt.Println(plain.Err)

	fmt.Println("\n=== instrumented run (the paper's tool) ===")
	inst := prog.Run(parcoach.RunOptions{Procs: 2})
	fmt.Println(inst.Err)
}
