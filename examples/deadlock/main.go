// Deadlock demo: the same erroneous program executed twice. Without
// instrumentation, rank 1 finalizes while rank 0 waits in MPI_Barrier
// forever — on a cluster the job would hang until the batch limit; the
// simulated runtime detects the quiescence and prints the full report.
// With the paper's instrumentation, the CC check catches the divergence
// at the moment it happens, naming both collectives and source lines.
package main

import (
	"fmt"
	"log"

	"parcoach"
)

const src = `
func compute(v) {
	if v % 2 == 0 {
		MPI_Barrier()
	}
	return v + 1
}

func main() {
	MPI_Init()
	var mine = rank()
	var out = compute(mine)
	print(out)
	MPI_Finalize()
}`

func main() {
	prog, err := parcoach.Compile("deadlock.mh", src, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== compile-time warnings ===")
	for _, d := range prog.Warnings() {
		fmt.Println(d)
	}

	fmt.Println("\n=== uninstrumented run (what a cluster job would do) ===")
	plain := prog.RunUninstrumented(parcoach.RunOptions{Procs: 2})
	fmt.Println(plain.Err)

	fmt.Println("\n=== instrumented run (the paper's tool) ===")
	inst := prog.Run(parcoach.RunOptions{Procs: 2})
	fmt.Println(inst.Err)
}
