// EPCC demo: run the synthetic mixed-mode micro-benchmark suite at
// several process/thread configurations (the suite's usual sweep) and
// show the MPI thread-level enforcement rejecting a funneled-level run
// whose kernels communicate from worker threads.
package main

import (
	"fmt"
	"log"

	"parcoach"
	"parcoach/internal/mpi"
	"parcoach/internal/workload"
)

func main() {
	w := workload.EPCC(workload.ScaleA, workload.BugNone)
	prog, err := parcoach.Compile("epcc.mh", w.Source, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EPCC suite: %d functions, %d warnings\n", prog.Stats.Functions, len(prog.Warnings()))

	for _, cfg := range []struct{ np, threads int }{{2, 1}, {2, 2}, {2, 4}} {
		res := prog.Run(parcoach.RunOptions{Procs: cfg.np, Threads: cfg.threads})
		status := "ok"
		if res.Err != nil {
			status = res.Err.Error()
		}
		fmt.Printf("np=%d threads=%d: collectives=%d p2p=%d [%s]\n",
			cfg.np, cfg.threads, res.Stats.Collectives, res.Stats.P2PMessages, status)
	}

	// The multiple-pingpong kernel sends from worker threads: running the
	// suite under MPI_THREAD_FUNNELED is a usage error the runtime reports.
	res := prog.Run(parcoach.RunOptions{
		Procs: 2, Threads: 4, Level: mpi.ThreadFunneled, LevelSet: true,
	})
	fmt.Printf("\nunder MPI_THREAD_FUNNELED: %v\n", res.Err)
}
