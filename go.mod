module parcoach

go 1.24
