package parcoach_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parcoach"
	"parcoach/internal/chaos"
	"parcoach/internal/leakcheck"
)

// robustOpts is the compact campaign every robustness test runs: small
// enough to finish in test time, large enough for several rounds (so a
// halt-after-round-1 resume genuinely continues work). Mutant reduction
// is off — it is a pure function of the committed corpus, so it adds
// only time here (TestCampaignSmoke covers it).
func robustOpts(workers int) parcoach.CampaignOptions {
	return parcoach.CampaignOptions{
		Seeds:    campaignSeeds(10),
		Budget:   70,
		Seed:     7,
		Workers:  workers,
		NoReduce: true,
	}
}

// TestCampaignCheckpointResumeByteIdentity pins the resume contract: a
// campaign halted after round 1 (the deterministic kill switch) and
// resumed from its checkpoint renders byte-identically to the same
// campaign run uninterrupted — at every worker count.
func TestCampaignCheckpointResumeByteIdentity(t *testing.T) {
	defer leakcheck.Check(t)
	for _, workers := range []int{1, 4, 8} {
		uninterrupted, err := parcoach.Campaign(robustOpts(workers))
		if err != nil {
			t.Fatalf("workers=%d uninterrupted: %v", workers, err)
		}
		if len(uninterrupted.Trajectory) < 2 {
			t.Fatalf("workers=%d: campaign finished in %d round(s); the halt/resume split needs at least 2",
				workers, len(uninterrupted.Trajectory))
		}

		ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
		halted := robustOpts(workers)
		halted.Checkpoint = ckpt
		halted.HaltAfterRound = 1
		if _, err := parcoach.Campaign(halted); err != nil {
			t.Fatalf("workers=%d halted: %v", workers, err)
		}

		resumed := robustOpts(workers)
		resumed.Checkpoint = ckpt
		resumed.Resume = ckpt
		got, err := parcoach.Campaign(resumed)
		if err != nil {
			t.Fatalf("workers=%d resumed: %v", workers, err)
		}
		if got.Format() != uninterrupted.Format() {
			t.Fatalf("workers=%d: resumed report differs from uninterrupted:\n--- uninterrupted\n%s\n--- resumed\n%s",
				workers, uninterrupted.Format(), got.Format())
		}
	}
}

// TestCampaignResumeRejectsDivergentOptions: resuming under options that
// would change the trajectory is a loud error, not a silent divergence.
func TestCampaignResumeRejectsDivergentOptions(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	halted := robustOpts(2)
	halted.Checkpoint = ckpt
	halted.HaltAfterRound = 1
	if _, err := parcoach.Campaign(halted); err != nil {
		t.Fatal(err)
	}
	diverged := robustOpts(2)
	diverged.Seed = 8 // different schedule derivation
	diverged.Checkpoint = ckpt
	diverged.Resume = ckpt
	if _, err := parcoach.Campaign(diverged); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("divergent resume error = %v, want a fingerprint mismatch", err)
	}
}

// TestCampaignCancelPartialReport: canceling the campaign context stops
// it between (or mid-) rounds with a well-formed partial report marked
// Canceled, and the dropped partial round never merges.
func TestCampaignCancelPartialReport(t *testing.T) {
	defer leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := chaos.Arm(chaos.Config{
		"campaign.execute": {First: 10, Action: chaos.ActCancel, Cancel: cancel},
	})
	defer disarm()

	opts := robustOpts(2)
	opts.Ctx = ctx
	rep, err := parcoach.Campaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Canceled {
		t.Fatal("canceled campaign did not mark its report Canceled")
	}
	if rep.Runs >= opts.Budget {
		t.Fatalf("canceled campaign still spent the full budget: %d/%d", rep.Runs, opts.Budget)
	}
	if !strings.Contains(rep.Format(), "robustness canceled=true") {
		t.Fatalf("rendered report lacks the robustness line:\n%s", rep.Format())
	}
}

// TestCampaignQuarantinesPanickingJob: a run job that panics is caught
// at the pool boundary, counted, its entry retired, and the campaign
// completes.
func TestCampaignQuarantinesPanickingJob(t *testing.T) {
	defer leakcheck.Check(t)
	disarm := chaos.Arm(chaos.Config{
		"campaign.execute": {First: 4, Action: chaos.ActPanic},
	})
	defer disarm()

	rep, err := parcoach.Campaign(robustOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", rep.Quarantined)
	}
	if rep.Canceled {
		t.Fatal("a quarantined panic canceled the campaign")
	}
	if !strings.Contains(rep.Format(), "quarantined=1") {
		t.Fatalf("rendered report lacks the quarantine count:\n%s", rep.Format())
	}
}

// TestChaosSoak is the deterministic fault-injection soak: the same
// small workload runs (a) fault-free, (b) under injected panics and
// injected slow runs, and (c) fault-free again. The harness must survive
// (b) with quarantined verdicts and zero goroutine leaks, and (c) must
// be byte-identical to (a) — faults leave no residue in pools, caches or
// counters that alters later results.
func TestChaosSoak(t *testing.T) {
	defer leakcheck.Check(t)

	const soakSrc = `
func main() {
	MPI_Init()
	var x = rank()
	parallel num_threads(2) {
		MPI_Barrier()
	}
	MPI_Allreduce(x, x, sum)
	MPI_Finalize()
	return x
}`
	prog, err := parcoach.Compile("soak.mh", soakSrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	explore := func() *parcoach.ExplorationReport {
		return prog.Explore(parcoach.ExploreOptions{
			Strategy:  parcoach.ExploreRandom,
			Schedules: 48,
			Seed:      11,
			Workers:   4,
			MaxSteps:  200_000,
		})
	}

	baseline := explore().String()

	// Faulted pass: every 7th run panics, every 5th run stalls briefly.
	disarm := chaos.Arm(chaos.Config{
		"explore.run": {First: 5, Every: 7, Action: chaos.ActPanic},
	})
	faulted := explore()
	disarm()
	if faulted.Quarantined == 0 {
		t.Fatal("faulted pass quarantined nothing: the injector never reached the run boundary")
	}

	disarm = chaos.Arm(chaos.Config{
		"explore.run": {First: 3, Every: 5, Action: chaos.ActSleep, Sleep: 2 * time.Millisecond},
	})
	slowed := explore()
	disarm()
	if slowed.Schedules != 48 {
		t.Fatalf("slowed pass lost schedules: %d/48", slowed.Schedules)
	}

	// Fault-free replay: byte-identical to the pristine baseline.
	if replay := explore().String(); replay != baseline {
		t.Fatalf("fault-free replay differs from baseline — faults left residue:\n--- baseline\n%s\n--- replay\n%s",
			baseline, replay)
	}
}
