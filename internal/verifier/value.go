package verifier

import (
	"fmt"
	"strings"
	"sync/atomic"

	"parcoach/internal/mpi"
)

// ValueCheck classifies value-oracle failures: the data-level verdicts
// the paper's ordering checks (CC, PhaseCount) cannot see — a round
// whose collective *sequence* matches on every process can still carry
// divergent roots, disagreeing reduction operators, or a source buffer
// torn by a concurrent write while the call was in flight.
type ValueCheck int

// Value-oracle failure classes.
const (
	// ValueWrongRoot: ranks named different roots for a rooted collective.
	ValueWrongRoot ValueCheck = iota
	// ValueWrongOp: ranks named different reduction operators.
	ValueWrongOp
	// ValueTornBuffer: a source buffer changed between the call and the
	// match — the collective read no consistent version of it.
	ValueTornBuffer
	// ValueResultMismatch: a delivered result differs from the oracle's
	// independent recomputation over the recorded contributions.
	ValueResultMismatch
)

func (k ValueCheck) String() string {
	switch k {
	case ValueWrongRoot:
		return "wrong-root"
	case ValueWrongOp:
		return "wrong-op"
	case ValueTornBuffer:
		return "torn-buffer"
	case ValueResultMismatch:
		return "result-mismatch"
	}
	return "value-error"
}

// ValueError is a value-oracle failure: a collective round whose data —
// roots, reduction operators, source buffers or delivered results — is
// inconsistent even though the collective sequence matched.
type ValueError struct {
	Check ValueCheck
	Round int
	Op    string
	Loc   string
	Msg   string
}

func (e *ValueError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "value verification error (%s) in %s round %d", e.Check, e.Op, e.Round)
	if e.Loc != "" {
		fmt.Fprintf(&b, " at %s", e.Loc)
	}
	fmt.Fprintf(&b, ": %s", e.Msg)
	return b.String()
}

// AttachWorld installs the value oracle as w's collective round
// observer: every matched round is audited — arguments cross-checked,
// source buffers re-read, results recomputed — before any participant
// resumes. The observer survives the world's Reset, so a pooled
// (world, verifier) pair stays wired across exploration runs.
func (v *Verifier) AttachWorld(w *mpi.World) {
	w.SetRoundObserver(v.checkRound)
}

// checkRound is the value oracle. It runs under the monitor's lock with
// every participant of the round still parked: calls carries each rank's
// arguments, its call-time source snapshot, the live buffer the snapshot
// was taken from, and the results the matcher computed. The matcher has
// already validated that the operation kinds agree.
func (v *Verifier) checkRound(round int, calls []mpi.CollCall) error {
	v.valueChecks++
	op := calls[0].Op

	// Divergent roots on a rooted collective: on a real MPI this delivers
	// different data to different ranks (or corrupts memory) instead of
	// failing fast.
	switch op {
	case mpi.OpBcast, mpi.OpReduce, mpi.OpGather, mpi.OpScatter:
		if c := disagree(calls, func(c mpi.CollCall) int64 { return int64(c.Root) }); c != nil {
			return &ValueError{
				Check: ValueWrongRoot, Round: round, Op: op.String(), Loc: c.Loc,
				Msg: fmt.Sprintf("ranks disagree on the root: %s", describeArgs(calls, func(c mpi.CollCall) string {
					return fmt.Sprintf("root %d", c.Root)
				})),
			}
		}
	}

	// Divergent reduction operators: each rank would combine with its own
	// operator — the results ranks observe depend on match order and can
	// silently disagree.
	switch op {
	case mpi.OpReduce, mpi.OpAllreduce, mpi.OpScan:
		if c := disagree(calls, func(c mpi.CollCall) int64 { return int64(c.Red) }); c != nil {
			return &ValueError{
				Check: ValueWrongOp, Round: round, Op: op.String(), Loc: c.Loc,
				Msg: fmt.Sprintf("ranks disagree on the reduction op: %s", describeArgs(calls, func(c mpi.CollCall) string {
					return c.Red.String()
				})),
			}
		}
	}

	// Torn source buffers: re-read each contributing live buffer and
	// compare against the call-time snapshot. A difference means the
	// buffer was written while its collective was in flight — the match
	// consumed no consistent read of the source. Only the buffers the
	// round actually consumed are audited (Scatter reads the root's).
	for i := range calls {
		c := &calls[i]
		if c.Live == nil || (op == mpi.OpScatter && c.Rank != c.Root) {
			continue
		}
		for j := range c.Vector {
			if j >= len(c.Live) {
				break
			}
			if now := atomic.LoadInt64(&c.Live[j]); now != c.Vector[j] {
				return &ValueError{
					Check: ValueTornBuffer, Round: round, Op: op.String(), Loc: c.Loc,
					Msg: fmt.Sprintf("rank %d's source buffer was written while the collective was in flight: element %d read %d at call time but holds %d at match time",
						c.Rank, j, c.Vector[j], now),
				}
			}
		}
	}

	// Result check: recompute what the round should have delivered from
	// the recorded contributions and compare against the matcher's
	// outputs (the CHECK_VALUE pattern — the delivered result must equal
	// a recomputation over consistently-read inputs).
	return v.checkResults(round, calls)
}

// checkResults recomputes the round's expected results independently of
// the matcher and flags any delivered value that differs.
func (v *Verifier) checkResults(round int, calls []mpi.CollCall) error {
	n := len(calls)
	op := calls[0].Op
	red := calls[0].Red
	root := calls[0].Root
	mismatch := func(c mpi.CollCall, got, want string) error {
		return &ValueError{
			Check: ValueResultMismatch, Round: round, Op: op.String(), Loc: c.Loc,
			Msg: fmt.Sprintf("rank %d received %s, oracle recomputed %s", c.Rank, got, want),
		}
	}
	checkValue := func(c mpi.CollCall, want int64) error {
		if c.OutValue != want {
			return mismatch(c, fmt.Sprint(c.OutValue), fmt.Sprint(want))
		}
		return nil
	}
	checkVector := func(c mpi.CollCall, want []int64) error {
		if len(c.OutVector) != len(want) {
			return mismatch(c, fmt.Sprint(c.OutVector), fmt.Sprint(want))
		}
		for i := range want {
			if c.OutVector[i] != want[i] {
				return mismatch(c, fmt.Sprint(c.OutVector), fmt.Sprint(want))
			}
		}
		return nil
	}

	switch op {
	case mpi.OpBarrier:
		// synchronization only: nothing delivered
	case mpi.OpBcast:
		for _, c := range calls {
			if err := checkValue(c, calls[root].Value); err != nil {
				return err
			}
		}
	case mpi.OpReduce, mpi.OpAllreduce:
		acc := calls[0].Value
		for r := 1; r < n; r++ {
			acc = red.Apply(acc, calls[r].Value)
		}
		for r, c := range calls {
			want := acc
			if op == mpi.OpReduce && r != root {
				want = c.Value
			}
			if err := checkValue(c, want); err != nil {
				return err
			}
		}
	case mpi.OpScan:
		acc := int64(0)
		for r, c := range calls {
			if r == 0 {
				acc = c.Value
			} else {
				acc = red.Apply(acc, c.Value)
			}
			if err := checkValue(c, acc); err != nil {
				return err
			}
		}
	case mpi.OpGather, mpi.OpAllgather:
		vec := make([]int64, n)
		for r, c := range calls {
			vec[r] = c.Value
		}
		for r, c := range calls {
			if op == mpi.OpGather && r != root {
				continue
			}
			if err := checkVector(c, vec); err != nil {
				return err
			}
		}
	case mpi.OpScatter:
		src := calls[root].Vector
		for r, c := range calls {
			want := int64(0)
			if r < len(src) {
				want = src[r]
			}
			if err := checkValue(c, want); err != nil {
				return err
			}
		}
	case mpi.OpAlltoall:
		for r, c := range calls {
			want := make([]int64, n)
			for s, other := range calls {
				if r < len(other.Vector) {
					want[s] = other.Vector[r]
				}
			}
			if err := checkVector(c, want); err != nil {
				return err
			}
		}
	}
	return nil
}

// disagree returns the first call whose projected argument differs from
// rank 0's, or nil when all ranks agree.
func disagree(calls []mpi.CollCall, proj func(mpi.CollCall) int64) *mpi.CollCall {
	for i := 1; i < len(calls); i++ {
		if proj(calls[i]) != proj(calls[0]) {
			return &calls[i]
		}
	}
	return nil
}

// describeArgs renders each rank's view of a divergent argument.
func describeArgs(calls []mpi.CollCall, show func(mpi.CollCall) string) string {
	parts := make([]string, len(calls))
	for i, c := range calls {
		s := fmt.Sprintf("rank %d: %s", c.Rank, show(c))
		if c.Loc != "" {
			s += " at " + c.Loc
		}
		parts[i] = s
	}
	return strings.Join(parts, ", ")
}
