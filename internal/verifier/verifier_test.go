package verifier

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/source"
)

// world spins up an initialized MPI world with n ranks and a verifier.
func world(t *testing.T, n int) (*mpi.World, *Verifier) {
	t.Helper()
	w, err := mpi.NewWorld(mpi.Config{Procs: n, Level: mpi.ThreadMultiple})
	if err != nil {
		t.Fatal(err)
	}
	return w, New(w.Monitor(), n)
}

func pos(line int) source.Pos { return source.Pos{File: "v.mh", Line: line, Col: 1} }

func TestCCAgreementCompletes(t *testing.T) {
	w, v := world(t, 3)
	err := w.Run(func(p *mpi.Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		for round := 0; round < 5; round++ {
			if err := v.CC(p, "MPI_Allreduce", pos(round)); err != nil {
				return err
			}
		}
		return p.Finalize(1)
	})
	if err != nil {
		t.Fatalf("agreeing CC rounds must pass: %v", err)
	}
	cc, _, _ := v.Stats()
	if cc != 15 {
		t.Errorf("ccChecks = %d, want 15", cc)
	}
}

func TestCCDisagreementAborts(t *testing.T) {
	w, v := world(t, 2)
	err := w.Run(func(p *mpi.Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		op := "MPI_Bcast"
		if p.Rank() == 1 {
			op = "MPI_Reduce"
		}
		return v.CC(p, op, pos(10+p.Rank()))
	})
	var ve *Error
	if !errors.As(err, &ve) || ve.Kind != ErrCollectiveMismatch {
		t.Fatalf("want collective-mismatch, got %v", err)
	}
	msg := ve.Error()
	for _, want := range []string{"MPI_Bcast", "MPI_Reduce", "v.mh:10", "v.mh:11"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message missing %q: %s", want, msg)
		}
	}
}

func TestCCSkipsFinalizedProcess(t *testing.T) {
	w, v := world(t, 1)
	err := w.Run(func(p *mpi.Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		if err := p.Finalize(1); err != nil {
			return err
		}
		// End-of-main check after finalize: must be a no-op.
		return v.CC(p, "return:main", pos(1))
	})
	if err != nil {
		t.Fatalf("post-finalize CC must be skipped: %v", err)
	}
	cc, _, _ := v.Stats()
	if cc != 0 {
		t.Errorf("skipped CC still counted: %d", cc)
	}
}

func TestCCDuplicateEntrySameRank(t *testing.T) {
	w, v := world(t, 2)
	err := w.Run(func(p *mpi.Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		if p.Rank() == 0 {
			// Two "threads" of rank 0 enter CC concurrently: the second
			// entry must be flagged (collectives issued concurrently).
			w.Monitor().ThreadStarted()
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer w.Monitor().ThreadExited()
				_ = v.CC(p, "MPI_Bcast", pos(2))
			}()
			err := v.CC(p, "MPI_Reduce", pos(3))
			wg.Wait()
			return err
		}
		// Rank 1 never participates so rank 0's first CC blocks.
		return nil
	})
	if err == nil {
		t.Fatal("want an error from duplicate CC entry or quiescence")
	}
}

// phaseEnv builds a single-process world with a thread team for phase
// counting tests.
func phaseEnv(t *testing.T) (*mpi.World, *Verifier, *omp.Runtime) {
	t.Helper()
	w, v := world(t, 1)
	rt := omp.New(w.Monitor(), 2, omp.RoundRobin)
	return w, v, rt
}

func TestPhaseCountSameThreadOrdered(t *testing.T) {
	w, v, rt := phaseEnv(t)
	err := w.Run(func(p *mpi.Proc) error {
		th := rt.InitialThread()
		// One thread executing two different collectives in one phase is
		// ordered by program order: no error.
		if err := v.PhaseCount(p, th, 1, "MPI_Bcast", pos(1)); err != nil {
			return err
		}
		return v.PhaseCount(p, th, 2, "MPI_Reduce", pos(2))
	})
	if err != nil {
		t.Fatalf("same-thread executions must pass: %v", err)
	}
}

func TestPhaseCountSameNodeTwoThreads(t *testing.T) {
	w, v, rt := phaseEnv(t)
	err := w.Run(func(p *mpi.Proc) error {
		return rt.Parallel(rt.InitialThread(), 2, func(th *omp.Thread) error {
			return v.PhaseCount(p, th, 7, "MPI_Barrier", pos(4))
		})
	})
	var ve *Error
	if !errors.As(err, &ve) || ve.Kind != ErrMultithreadedCollective {
		t.Fatalf("want multithreaded-collective, got %v", err)
	}
}

func TestPhaseCountDifferentNodesTwoThreads(t *testing.T) {
	w, v, rt := phaseEnv(t)
	err := w.Run(func(p *mpi.Proc) error {
		return rt.Parallel(rt.InitialThread(), 2, func(th *omp.Thread) error {
			node := 10 + th.TID() // different collective per thread
			return v.PhaseCount(p, th, node, "MPI_Bcast", pos(5+th.TID()))
		})
	})
	var ve *Error
	if !errors.As(err, &ve) || ve.Kind != ErrConcurrentCollectives {
		t.Fatalf("want concurrent-collectives, got %v", err)
	}
}

func TestPhaseCountSeparatedByBarrier(t *testing.T) {
	w, v, rt := phaseEnv(t)
	err := w.Run(func(p *mpi.Proc) error {
		return rt.Parallel(rt.InitialThread(), 2, func(th *omp.Thread) error {
			// Thread 0 counts in phase 0; thread 1 counts in phase 1:
			// different phases, no conflict.
			if th.TID() == 0 {
				if err := v.PhaseCount(p, th, 20, "MPI_Bcast", pos(6)); err != nil {
					return err
				}
			}
			if err := th.Barrier(); err != nil {
				return err
			}
			if th.TID() == 1 {
				return v.PhaseCount(p, th, 21, "MPI_Reduce", pos(7))
			}
			return nil
		})
	})
	if err != nil {
		t.Fatalf("barrier-separated executions must pass: %v", err)
	}
}

func TestMonoCheckRecordsTeamSize(t *testing.T) {
	w, v, rt := phaseEnv(t)
	err := w.Run(func(p *mpi.Proc) error {
		return rt.Parallel(rt.InitialThread(), 2, func(th *omp.Thread) error {
			v.MonoCheck(th, 42)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.TeamSize(42) != 2 {
		t.Errorf("TeamSize(42) = %d, want 2", v.TeamSize(42))
	}
	if v.TeamSize(99) != 0 {
		t.Error("unknown region must report 0")
	}
}

func TestConcNotesTrackRegions(t *testing.T) {
	w, v, rt := phaseEnv(t)
	err := w.Run(func(p *mpi.Proc) error {
		th := rt.InitialThread()
		v.ConcEnter(p, th, 5)
		if err := v.PhaseCount(p, th, 30, "MPI_Bcast", pos(9)); err != nil {
			return err
		}
		v.ConcExit(p, th, 5)
		// Mismatched exit is ignored, not a crash.
		v.ConcExit(p, th, 99)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorRendering(t *testing.T) {
	e := &Error{Kind: ErrConcurrentCollectives, Msg: "boom", Pos: pos(3)}
	s := e.Error()
	if !strings.Contains(s, "concurrent-collectives") || !strings.Contains(s, "v.mh:3") {
		t.Errorf("rendering = %q", s)
	}
	for _, k := range []ErrKind{ErrCollectiveMismatch, ErrMultithreadedCollective, ErrConcurrentCollectives} {
		if k.String() == "" || k.String() == "verifier-error" {
			t.Errorf("kind %d must have a name", k)
		}
	}
}
