// Package verifier implements the execution-time half of the paper: the
// checks that the static instrumentation (internal/instrument) plants in
// the program and that stop execution "as soon as this situation is
// unavoidable", with an error message naming the collectives and source
// lines involved.
//
//   - CC is PARCOACH's collective check: before each (possibly divergent)
//     collective and before leaving a flagged function, every process
//     announces the id of its next operation; the round completes only if
//     all ids agree, otherwise the run aborts with the per-rank ids —
//     before the real collective can deadlock.
//   - PhaseCount implements the dynamic validation of the paper's sets S
//     and Scc: collective executions are counted per (process, team,
//     barrier phase); two executions by different threads in the same
//     phase are unordered and abort the run (multithreaded execution of
//     one collective node, or concurrent monothreaded regions). Runs that
//     stay single-threaded — team of one, tid-guarded calls, master-only
//     sequences — pass, clearing the static phase-1/2 false positives.
//   - MonoCheck records the actual team size at a flagged parallel entry
//     (set Sipw) to enrich error messages.
//   - ConcEnter/ConcExit attribute executions to the Scc source regions.
package verifier

import (
	"fmt"
	"sort"
	"strings"

	"parcoach/internal/monitor"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/source"
)

// ErrKind classifies verification failures.
type ErrKind int

// Verification error kinds.
const (
	// ErrCollectiveMismatch: processes disagreed on the next collective.
	ErrCollectiveMismatch ErrKind = iota
	// ErrMultithreadedCollective: one collective node executed by several
	// threads of a process in the same barrier phase.
	ErrMultithreadedCollective
	// ErrConcurrentCollectives: collectives of concurrent monothreaded
	// regions executed by different threads in the same barrier phase.
	ErrConcurrentCollectives
)

func (k ErrKind) String() string {
	switch k {
	case ErrCollectiveMismatch:
		return "collective-mismatch"
	case ErrMultithreadedCollective:
		return "multithreaded-collective"
	case ErrConcurrentCollectives:
		return "concurrent-collectives"
	}
	return "verifier-error"
}

// Error is a verification failure.
type Error struct {
	Kind    ErrKind
	Msg     string
	Pos     source.Pos
	Related []source.Pos
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verification error (%s)", e.Kind)
	if e.Pos.IsValid() {
		fmt.Fprintf(&b, " at %s", e.Pos)
	}
	fmt.Fprintf(&b, ": %s", e.Msg)
	return b.String()
}

// Verifier holds the dynamic-check state of one run.
type Verifier struct {
	mon    *monitor.Monitor
	nprocs int

	// CC agreement state (guarded by the monitor's lock).
	ccArrived map[int]*ccEntry
	ccRound   int

	// Phase counting: executions per (process, team, phase).
	phases map[phaseKey][]*phaseEntry

	// Region attribution per thread (Scc bracketing); key is (proc, thread id).
	regions map[threadKey][]int

	// MonoCheck recordings: region id -> last observed team size.
	teamSizes map[int]int

	// Stats.
	ccChecks    int
	phaseChecks int
	valueChecks int
}

type ccEntry struct {
	op     string
	pos    source.Pos
	waiter *monitor.Waiter
}

type phaseKey struct {
	proc  int
	team  int64
	phase int
}

type phaseEntry struct {
	thread   int64
	tid      int
	nodeID   int
	kind     string
	pos      source.Pos
	regionID int // innermost Scc region at execution time, or -1
}

type threadKey struct {
	proc   int
	thread int64
}

// New creates a verifier for a world of nprocs processes sharing mon.
func New(mon *monitor.Monitor, nprocs int) *Verifier {
	v := &Verifier{
		mon:       mon,
		nprocs:    nprocs,
		ccArrived: make(map[int]*ccEntry),
		phases:    make(map[phaseKey][]*phaseEntry),
		regions:   make(map[threadKey][]int),
		teamSizes: make(map[int]int),
	}
	mon.AddAnalyzer(v.describeState)
	return v
}

// Reset clears all per-run state so the verifier can serve another run
// of the same world (its monitor registration survives — the monitor
// keeps analyzers across its own Reset). Only call between runs, after
// the previous run drained.
func (v *Verifier) Reset() {
	clear(v.ccArrived)
	v.ccRound = 0
	clear(v.phases)
	clear(v.regions)
	clear(v.teamSizes)
	v.ccChecks = 0
	v.phaseChecks = 0
	v.valueChecks = 0
}

// Stats reports how many checks executed (for the overhead experiments).
func (v *Verifier) Stats() (ccChecks, phaseChecks, valueChecks int) {
	v.mon.Lock()
	defer v.mon.Unlock()
	return v.ccChecks, v.phaseChecks, v.valueChecks
}

func (v *Verifier) describeState() []string {
	var lines []string
	if len(v.ccArrived) > 0 {
		var parts []string
		for r, e := range v.ccArrived {
			parts = append(parts, fmt.Sprintf("rank %d announced %s", r, e.op))
		}
		sort.Strings(parts)
		lines = append(lines, "CC round "+fmt.Sprint(v.ccRound)+": "+strings.Join(parts, ", "))
	}
	return lines
}

// CC performs the collective check: proc announces op (an MPI_* name,
// "call:<fn>", or "return:<fn>") and blocks until every non-finalized
// process has announced. Disagreement aborts the run.
func (v *Verifier) CC(p *mpi.Proc, op string, pos source.Pos) error {
	m := v.mon
	m.Lock()
	if m.Aborted() {
		err := m.ErrLocked()
		m.Unlock()
		return err
	}
	if p.FinalizedLocked() {
		// End-of-main check after MPI_Finalize: nothing to verify.
		m.Unlock()
		return nil
	}
	v.ccChecks++
	if prev, dup := v.ccArrived[p.Rank()]; dup {
		err := &Error{
			Kind: ErrConcurrentCollectives,
			Pos:  pos,
			Msg: fmt.Sprintf("rank %d entered CC for %s while its CC for %s is still pending: collectives issued concurrently",
				p.Rank(), op, prev.op),
			Related: []source.Pos{prev.pos},
		}
		m.AbortLocked(err)
		m.Unlock()
		return err
	}
	entry := &ccEntry{op: op, pos: pos}
	v.ccArrived[p.Rank()] = entry

	if len(v.ccArrived) == v.nprocs {
		err := v.completeCCLocked()
		m.Unlock()
		return err
	}
	entry.waiter = m.NewWaiterLocked("CC check", func() string {
		return fmt.Sprintf("rank %d announced %s%s", p.Rank(), op, posSuffix(pos))
	})
	m.Unlock()
	return entry.waiter.Await()
}

func posSuffix(pos source.Pos) string {
	if !pos.IsValid() {
		return ""
	}
	return " at " + pos.String()
}

// completeCCLocked validates the full round and wakes the waiters.
func (v *Verifier) completeCCLocked() error {
	first := ""
	agree := true
	for _, e := range v.ccArrived {
		if first == "" {
			first = e.op
		} else if e.op != first {
			agree = false
		}
	}
	if !agree {
		var parts []string
		var related []source.Pos
		var pos source.Pos
		for r := 0; r < v.nprocs; r++ {
			if e, ok := v.ccArrived[r]; ok {
				parts = append(parts, fmt.Sprintf("rank %d: %s%s", r, e.op, posSuffix(e.pos)))
				if !pos.IsValid() {
					pos = e.pos
				} else {
					related = append(related, e.pos)
				}
			}
		}
		err := &Error{
			Kind:    ErrCollectiveMismatch,
			Pos:     pos,
			Related: related,
			Msg: "processes are about to execute different collective sequences: " +
				strings.Join(parts, ", "),
		}
		v.mon.AbortLocked(err)
		return err
	}
	for _, e := range v.ccArrived {
		if e.waiter != nil {
			v.mon.WakeLocked(e.waiter)
		}
	}
	v.ccArrived = make(map[int]*ccEntry)
	v.ccRound++
	return nil
}

// PhaseCount records the execution of a flagged collective node by th in
// its current barrier phase and aborts when a second thread executes a
// counted collective in the same phase.
func (v *Verifier) PhaseCount(p *mpi.Proc, th *omp.Thread, nodeID int, kind string, pos source.Pos) error {
	m := v.mon
	m.Lock()
	defer m.Unlock()
	if m.Aborted() {
		return m.ErrLocked()
	}
	v.phaseChecks++
	team := th.Team()
	key := phaseKey{proc: p.Rank(), team: team.ID(), phase: teamPhaseLocked(team)}
	tk := threadKey{proc: p.Rank(), thread: th.ID()}
	regionID := -1
	if stack := v.regions[tk]; len(stack) > 0 {
		regionID = stack[len(stack)-1]
	}
	entry := &phaseEntry{thread: th.ID(), tid: th.TID(), nodeID: nodeID, kind: kind, pos: pos, regionID: regionID}
	for _, prev := range v.phases[key] {
		if prev.thread == entry.thread {
			continue // same thread: ordered by program order
		}
		kindErr := ErrConcurrentCollectives
		msg := fmt.Sprintf(
			"collectives %s and %s executed by different threads (t%d and t%d) of rank %d in the same barrier phase, with no ordering between them",
			prev.kind, entry.kind, prev.tid, entry.tid, p.Rank())
		if prev.nodeID == entry.nodeID {
			kindErr = ErrMultithreadedCollective
			size := team.Size()
			msg = fmt.Sprintf(
				"%s executed by multiple threads (t%d and t%d) of rank %d in the same barrier phase (team of %d)",
				entry.kind, prev.tid, entry.tid, p.Rank(), size)
		}
		err := &Error{Kind: kindErr, Pos: pos, Related: []source.Pos{prev.pos}, Msg: msg}
		m.AbortLocked(err)
		return err
	}
	v.phases[key] = append(v.phases[key], entry)
	return nil
}

// teamPhaseLocked reads the team phase; the caller already holds the
// monitor lock (Team.Phase would deadlock re-acquiring it).
func teamPhaseLocked(t *omp.Team) int { return t.PhaseLocked() }

// MonoCheck records the observed team size of a flagged parallel region
// (the paper's Sipw dynamic check).
func (v *Verifier) MonoCheck(th *omp.Thread, regionID int) {
	v.mon.Lock()
	defer v.mon.Unlock()
	v.teamSizes[regionID] = th.Team().Size()
}

// TeamSize returns the recorded team size of a region, or 0.
func (v *Verifier) TeamSize(regionID int) int {
	v.mon.Lock()
	defer v.mon.Unlock()
	return v.teamSizes[regionID]
}

// ConcEnter pushes an Scc region onto the thread's attribution stack.
func (v *Verifier) ConcEnter(p *mpi.Proc, th *omp.Thread, regionID int) {
	v.mon.Lock()
	defer v.mon.Unlock()
	tk := threadKey{proc: p.Rank(), thread: th.ID()}
	v.regions[tk] = append(v.regions[tk], regionID)
}

// ConcExit pops the thread's attribution stack.
func (v *Verifier) ConcExit(p *mpi.Proc, th *omp.Thread, regionID int) {
	v.mon.Lock()
	defer v.mon.Unlock()
	tk := threadKey{proc: p.Rank(), thread: th.ID()}
	if stack := v.regions[tk]; len(stack) > 0 && stack[len(stack)-1] == regionID {
		v.regions[tk] = stack[:len(stack)-1]
	}
}
