package interp

import (
	"context"
	"errors"
	"testing"
	"time"

	"parcoach/internal/parser"
	"parcoach/internal/sched"
)

// spinSrc loops far past any test's patience: the program every
// cancellation and watchdog test needs to interrupt. The bound keeps it
// a terminating program in principle (no special-casing in the
// interpreter), just one that never finishes before an abort.
const spinSrc = `
func main() {
	MPI_Init()
	var i = 0
	while i < 2000000000 {
		i = i + 1
	}
	MPI_Finalize()
	return i
}
`

// cancelLatencyBound is the asserted ceiling between cancel and the
// run's return. The real latency is one statement boundary (~µs); the
// bound is generous for loaded CI machines while still proving the run
// did not spin its remaining ~2e9 iterations.
const cancelLatencyBound = 5 * time.Second

// TestRunCtxCancelBoundedLatency: canceling the context aborts an
// in-flight run within a bounded interval, the result classifies as
// OutcomeCanceled carrying the cancellation cause, and the counters
// record it.
func TestRunCtxCancelBoundedLatency(t *testing.T) {
	prog := parser.MustParse("spin.mh", spinSrc)
	sess := NewSession(prog, Options{Procs: 2, Threads: 2})
	ctx, cancel := context.WithCancelCause(context.Background())

	done := make(chan *Result, 1)
	go func() { done <- sess.RunCtx(ctx, sched.NewRoundRobin()) }()
	time.Sleep(20 * time.Millisecond) // let the run get into the loop
	cause := errors.New("client disconnected")
	canceledAt := time.Now()
	cancel(cause)

	var res *Result
	select {
	case res = <-done:
	case <-time.After(cancelLatencyBound):
		t.Fatalf("run did not return within %v of cancellation", cancelLatencyBound)
	}
	if elapsed := time.Since(canceledAt); elapsed > cancelLatencyBound {
		t.Fatalf("cancellation latency %v exceeds bound %v", elapsed, cancelLatencyBound)
	}
	if got := res.Outcome(); got != OutcomeCanceled {
		t.Fatalf("canceled run classified %s (err %v), want %s", got, res.Err, OutcomeCanceled)
	}
	var ce *CancelError
	if !errors.As(res.Err, &ce) || !errors.Is(ce.Cause, cause) {
		t.Fatalf("canceled run error %v does not carry the cancellation cause", res.Err)
	}
	if got := sess.Canceled(); got != 1 {
		t.Fatalf("Canceled() = %d, want 1", got)
	}
	if got := sess.Watchdogs(); got != 0 {
		t.Fatalf("cancellation bumped Watchdogs() to %d", got)
	}
}

// TestRunCtxRefusesCanceledContext: a context canceled before the run
// starts is refused outright — no world is built, the result is
// OutcomeCanceled, and the counter still moves (a refused run is a
// canceled run for accounting).
func TestRunCtxRefusesCanceledContext(t *testing.T) {
	prog := parser.MustParse("spin.mh", spinSrc)
	sess := NewSession(prog, Options{Procs: 2, Threads: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	res := sess.RunCtx(ctx, sched.NewRoundRobin())
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-canceled run took %v: it executed instead of refusing", elapsed)
	}
	if got := res.Outcome(); got != OutcomeCanceled {
		t.Fatalf("pre-canceled run classified %s, want %s", got, OutcomeCanceled)
	}
	if res.Stats.Steps != 0 {
		t.Fatalf("pre-canceled run executed %d steps", res.Stats.Steps)
	}
	if got := sess.Canceled(); got != 1 {
		t.Fatalf("Canceled() = %d, want 1", got)
	}
}

// TestWallTimeoutWatchdog: Options.WallTimeout abandons a wedged run as
// OutcomeTimeout within a bounded interval, counts it, and leaves the
// session fully usable — the next run times out identically instead of
// inheriting poisoned state.
func TestWallTimeoutWatchdog(t *testing.T) {
	prog := parser.MustParse("spin.mh", spinSrc)
	sess := NewSession(prog, Options{Procs: 2, Threads: 2, WallTimeout: 50 * time.Millisecond})

	for i := 1; i <= 2; i++ {
		done := make(chan *Result, 1)
		go func() { done <- sess.Run(sched.NewRoundRobin()) }()
		var res *Result
		select {
		case res = <-done:
		case <-time.After(cancelLatencyBound):
			t.Fatalf("run %d did not return within %v of the watchdog deadline", i, cancelLatencyBound)
		}
		if got := res.Outcome(); got != OutcomeTimeout {
			t.Fatalf("run %d classified %s (err %v), want %s", i, got, res.Err, OutcomeTimeout)
		}
		var we *WatchdogError
		if !errors.As(res.Err, &we) || we.Timeout != 50*time.Millisecond {
			t.Fatalf("run %d error %v is not the watchdog's", i, res.Err)
		}
		if got := sess.Watchdogs(); got != int64(i) {
			t.Fatalf("after run %d: Watchdogs() = %d, want %d", i, got, i)
		}
	}
	if got := sess.Canceled(); got != 0 {
		t.Fatalf("watchdog aborts bumped Canceled() to %d", got)
	}
}

// TestGuardDisarmedBeforeRecycle: a context canceled AFTER its run
// completed must never abort a later run on the recycled environment —
// the disarm-before-recycle discipline. The clean program finishes fast;
// the late cancel then races nothing.
func TestGuardDisarmedBeforeRecycle(t *testing.T) {
	prog := parser.MustParse("clean.mh", sessionSrc)
	sess := NewSession(prog, Options{Procs: 2, Threads: 2})

	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if res := sess.RunCtx(ctx, sched.NewRoundRobin()); res.Err != nil {
			t.Fatalf("run %d under a live context failed: %v", i, res.Err)
		}
		cancel() // fires (if at all) against a disarmed guard
		if res := sess.Run(sched.NewRoundRobin()); res.Err != nil {
			t.Fatalf("run %d after a late cancel failed: %v — a stale guard aborted a recycled env", i, res.Err)
		}
	}
	if got := sess.Canceled(); got != 0 {
		t.Fatalf("completed runs counted as canceled: %d", got)
	}
}

// TestClassifyRobustOutcomes pins the error → outcome mapping of the
// three robustness classes, through both the fast path (the error
// itself) and the wrapped path (errors.As).
func TestClassifyRobustOutcomes(t *testing.T) {
	cases := []struct {
		err  error
		want Outcome
	}{
		{&CancelError{Cause: context.Canceled}, OutcomeCanceled},
		{&WatchdogError{Timeout: time.Second}, OutcomeTimeout},
		{NewQuarantineError("test", "boom", nil), OutcomeInternalError},
	}
	for _, tc := range cases {
		if got := ClassifyError(tc.err); got != tc.want {
			t.Errorf("ClassifyError(%T) = %s, want %s", tc.err, got, tc.want)
		}
	}
}
