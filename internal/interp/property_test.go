package interp

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"parcoach/internal/core"
	"parcoach/internal/instrument"
	"parcoach/internal/parser"
	"parcoach/internal/sem"
)

// genCleanHybrid deterministically generates a correct hybrid program from
// a seed: collectives appear only at sequential level or inside
// single/master regions, all control flow around collectives is
// process-invariant, so the program must run cleanly with and without
// instrumentation and produce identical results.
func genCleanHybrid(seed int64) string {
	rng := seed
	next := func(n int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := (rng >> 33) % n
		if v < 0 {
			v = -v
		}
		return v
	}
	var b strings.Builder
	b.WriteString("func main() {\nMPI_Init()\nvar x = rank() + 1\nvar acc = 0\n")
	blocks := 2 + next(3)
	for i := int64(0); i < blocks; i++ {
		switch next(5) {
		case 0:
			fmt.Fprintf(&b, "for i = 0 .. %d {\nacc += i * %d\n}\n", 2+next(5), 1+next(3))
		case 1:
			b.WriteString("parallel num_threads(2) {\n")
			b.WriteString(fmt.Sprintf("pfor i = 0 .. %d {\natomic acc += 1\n}\n", 4+next(8)))
			if next(2) == 0 {
				b.WriteString("single {\nMPI_Allreduce(x, x, sum)\n}\n")
			} else {
				b.WriteString("master {\nMPI_Bcast(x, 0)\n}\nbarrier\n")
			}
			b.WriteString("}\n")
		case 2:
			b.WriteString("MPI_Barrier()\n")
		case 3:
			fmt.Fprintf(&b, "var v%d = 0\nMPI_Allreduce(v%d, acc + %d, sum)\nacc += v%d %% 13\n", i, i, next(9), i)
		default:
			fmt.Fprintf(&b, "if acc %% 2 == 0 {\nacc += %d\n} else {\nacc -= %d\n}\n", 1+next(4), next(3))
		}
	}
	b.WriteString("var final = 0\nMPI_Reduce(final, acc + x, sum, 0)\n")
	b.WriteString("if rank() == 0 {\nprint(final)\n}\nMPI_Finalize()\n}\n")
	return b.String()
}

// Property: for random clean hybrid programs, (1) the analysis reports no
// threading warnings, (2) plain and instrumented execution both succeed,
// (3) their outputs agree.
func TestInstrumentationPreservesCleanPrograms(t *testing.T) {
	check := func(seed int64) bool {
		src := genCleanHybrid(seed)
		prog, err := parser.Parse("gen.mh", src)
		if err != nil {
			t.Logf("seed %d: parse error %v\n%s", seed, err, src)
			return false
		}
		if err := sem.Check(prog); err != nil {
			t.Logf("seed %d: sem error %v\n%s", seed, err, src)
			return false
		}
		res := core.Analyze(prog, core.Options{})
		counts := core.CountByKind(res.Errors())
		if counts[core.DiagMultithreadedCollective] != 0 || counts[core.DiagConcurrentCollectives] != 0 {
			t.Logf("seed %d: unexpected threading warnings: %v\n%s", seed, res.Errors(), src)
			return false
		}
		inst := instrument.Program(prog, res)
		plain := Run(prog, Options{Procs: 2, Threads: 2})
		wired := Run(inst, Options{Procs: 2, Threads: 2})
		if plain.Err != nil || wired.Err != nil {
			t.Logf("seed %d: run errors %v / %v\n%s", seed, plain.Err, wired.Err, src)
			return false
		}
		if plain.Output != wired.Output {
			t.Logf("seed %d: outputs differ %q vs %q", seed, plain.Output, wired.Output)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: seeding a rank-divergent exit into any generated program makes
// the instrumented run abort (never hang, never silently pass).
func TestInstrumentationCatchesSeededDivergence(t *testing.T) {
	check := func(seed int64) bool {
		base := genCleanHybrid(seed)
		// Inject an early return for odd ranks right after MPI_Init.
		src := strings.Replace(base, "var acc = 0\n",
			"var acc = 0\nif rank() % 2 == 1 {\nMPI_Finalize()\nreturn 1\n}\n", 1)
		prog, err := parser.Parse("gen.mh", src)
		if err != nil {
			return false
		}
		res := core.Analyze(prog, core.Options{})
		inst := instrument.Program(prog, res)
		out := Run(inst, Options{Procs: 2, Threads: 2})
		// The base program always has at least the final Reduce, so the
		// divergence must be caught.
		return out.Err != nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
