// Fault-tolerant execution: external cancellation, per-run wall-clock
// watchdogs, and panic quarantine.
//
// The cancellation lever is the monitor: Abort(err) wakes every parked
// waiter with the error, tells the scheduling controller to release
// everything, and flips the abort flag that every statement boundary
// polls — so once a guard fires, a serialized run stops within one
// statement and a free-running one at each thread's next boundary or
// blocking transition. RunCtx arms a guard from a context
// (context.AfterFunc) and Options.WallTimeout arms one from a timer;
// both go through the same mutex-disciplined runGuard so a late firing
// can never abort the *next* run on a recycled environment.
package interp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parcoach/internal/monitor"
)

// CancelError reports that a run was stopped by external cancellation
// (a canceled context: client disconnect, SIGTERM, job timeout). It
// classifies as OutcomeCanceled.
type CancelError struct {
	// Cause is the context's cancellation cause (context.Canceled,
	// context.DeadlineExceeded, or whatever CancelCause recorded).
	Cause error
}

func (e *CancelError) Error() string {
	if e.Cause == nil {
		return "run canceled"
	}
	return fmt.Sprintf("run canceled: %v", e.Cause)
}

func (e *CancelError) Unwrap() error { return e.Cause }

// WatchdogError reports that a run exceeded Options.WallTimeout and was
// aborted by the per-run watchdog. It classifies as OutcomeTimeout.
type WatchdogError struct {
	Timeout time.Duration
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("run exceeded wall-clock watchdog (%v)", e.Timeout)
}

// QuarantineError wraps a panic caught at a pool/job boundary: the
// panicking run or compile is classified OutcomeInternalError — a bug
// in the validator, not the validated program — and the pool, session
// and cache stay healthy instead of the process dying. Stack is the
// goroutine stack at recovery time.
type QuarantineError struct {
	// Op names the boundary that caught the panic ("explore.run",
	// "campaign.execute", "compile", ...).
	Op    string
	Value any
	Stack []byte
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("panic quarantined at %s: %v", e.Op, e.Value)
}

// NewQuarantineError builds the quarantined form of a recovered panic.
func NewQuarantineError(op string, value any, stack []byte) *QuarantineError {
	return &QuarantineError{Op: op, Value: value, Stack: stack}
}

// Process-wide robustness counters, mirroring abandonedWorlds: the
// daemon's /stats reads them, tests assert their deltas.
var (
	canceledRuns atomic.Int64
	watchdogRuns atomic.Int64
)

// CanceledRuns reports the process-wide count of runs stopped by
// context cancellation (before or during execution).
func CanceledRuns() int64 { return canceledRuns.Load() }

// WatchdogRuns reports the process-wide count of runs aborted by the
// wall-clock watchdog.
func WatchdogRuns() int64 { return watchdogRuns.Load() }

// runGuard aborts one run from outside: on context cancellation, on
// watchdog expiry, or both. The mutex is the recycling discipline —
// disarm() takes it after stopping both triggers, so once disarm
// returns no late callback can touch the (about to be recycled)
// monitor, and a callback that lost the race to disarm sees done and
// leaves.
type runGuard struct {
	mu       sync.Mutex
	mon      *monitor.Monitor
	done     bool
	canceled bool
	timedOut bool

	timer   *time.Timer
	stopCtx func() bool
}

// armGuard installs the run's external-abort triggers; nil when neither
// a cancelable context nor a wall timeout is configured (the zero-cost
// hot path of plain Run).
func (s *Session) armGuard(ctx context.Context, mon *monitor.Monitor) *runGuard {
	hasCtx := ctx != nil && ctx.Done() != nil
	wall := s.opts.WallTimeout
	if !hasCtx && wall <= 0 {
		return nil
	}
	g := &runGuard{mon: mon}
	if hasCtx {
		g.stopCtx = context.AfterFunc(ctx, func() {
			g.fire(true, &CancelError{Cause: context.Cause(ctx)})
		})
	}
	if wall > 0 {
		g.timer = time.AfterFunc(wall, func() {
			g.fire(false, &WatchdogError{Timeout: wall})
		})
	}
	return g
}

// fire aborts the run unless the guard was already disarmed.
func (g *runGuard) fire(isCancel bool, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.done {
		return
	}
	if isCancel {
		g.canceled = true
	} else {
		g.timedOut = true
	}
	// First error wins inside the monitor: a run that already failed on
	// its own keeps its error; the abort still wakes any stragglers.
	g.mon.Abort(err)
}

// disarm stops both triggers and waits out any in-flight firing. After
// it returns the monitor is safe to recycle. Reports which triggers
// fired during the run.
func (g *runGuard) disarm() (canceled, timedOut bool) {
	if g.timer != nil {
		g.timer.Stop()
	}
	if g.stopCtx != nil {
		g.stopCtx()
	}
	g.mu.Lock()
	g.done = true
	canceled, timedOut = g.canceled, g.timedOut
	g.mu.Unlock()
	return canceled, timedOut
}
