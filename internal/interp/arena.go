// Environment arenas: the per-thread free-lists that take scope and
// cell allocation off the interpreter's per-statement path.
//
// Every executed block used to allocate a fresh map-backed environment,
// and every declaration a fresh cell — the dominant allocation source of
// a run, and under schedule exploration the same program is run
// thousands of times. Instead, each simulated thread owns an arena of
// reusable env frames and cells, drawn from a process-wide sync.Pool so
// the frames survive across runs of one exploration session.
//
// Recycling discipline (the part that keeps this correct under the
// abort paths): a frame is returned to its arena only when its block
// exits cleanly (err == nil). Clean exits are join-synchronized — a
// parallel region's shared outer scopes cannot be exited by their owner
// before every team thread passed the region's join barrier — whereas
// error exits can leave straggler team goroutines (released free-running
// by an abort) still reading the scopes the owner just unwound. Erroring
// frames are simply leaked to the GC, exactly as every frame was before
// pooling; the run is over anyway.
package interp

import "sync"

// env is one lexical scope. Scopes are small (a handful of names), so
// they are plain parallel slices scanned linearly — cheaper than a map
// at this size and trivially reusable. Later declarations shadow
// earlier ones (reverse scan), preserving the map semantics where a
// redeclaration replaced the binding.
type env struct {
	parent *env
	names  []string
	cells  []*cell
}

func (e *env) lookup(name string) *cell {
	for sc := e; sc != nil; sc = sc.parent {
		for i := len(sc.names) - 1; i >= 0; i-- {
			if sc.names[i] == name {
				return sc.cells[i]
			}
		}
	}
	return nil
}

// arena is one thread's private free-list of env frames and cells, plus
// the append-only scratch stack for call-argument values. It is only
// ever touched by its owning goroutine; cross-run reuse goes through
// arenaPool, which provides the synchronization.
type arena struct {
	envs  []*env
	cells []*cell
	// ctxs recycles team-member execution contexts (one fork per
	// parallel region per member).
	ctxs []*thctx
	// vals is the call-argument scratch stack: evalCall appends the
	// evaluated arguments and truncates back after the call returns
	// (callFunction copies them into parameter cells, so nothing
	// retains the slice).
	vals []value
}

// newThctx takes a recycled team-member context from the arena.
func (a *arena) newThctx() *thctx {
	if n := len(a.ctxs); n > 0 {
		t := a.ctxs[n-1]
		a.ctxs = a.ctxs[:n-1]
		return t
	}
	return new(thctx)
}

// putThctx returns a context whose region body exited cleanly.
func (a *arena) putThctx(t *thctx) {
	*t = thctx{}
	a.ctxs = append(a.ctxs, t)
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

func getArena() *arena { return arenaPool.Get().(*arena) }

// putArena returns a thread's arena to the shared pool. Call only on
// clean completion; an aborted thread's arena may be reachable from
// frames that straggler goroutines still see.
func putArena(a *arena) {
	// Drop array references parked in the value scratch so the pool
	// does not pin program data.
	for i := range a.vals {
		a.vals[i] = value{}
	}
	a.vals = a.vals[:0]
	arenaPool.Put(a)
}

// newEnv takes a frame from the thread's arena (or allocates one) and
// chains it under parent.
func (c *thctx) newEnv(parent *env) *env {
	a := c.ar
	if n := len(a.envs); n > 0 {
		e := a.envs[n-1]
		a.envs = a.envs[:n-1]
		e.parent = parent
		return e
	}
	return &env{parent: parent}
}

// releaseEnv returns a cleanly-exited frame and its cells to the arena.
// The caller guarantees nothing holds the frame or its cells anymore —
// true exactly when the frame's block finished without an error (see
// the package comment above).
func (c *thctx) releaseEnv(e *env) {
	a := c.ar
	for i, cl := range e.cells {
		cl.v = value{} // drop array payloads; the pool must not pin them
		a.cells = append(a.cells, cl)
		e.cells[i] = nil
	}
	e.cells = e.cells[:0]
	for i := range e.names {
		e.names[i] = ""
	}
	e.names = e.names[:0]
	e.parent = nil
	a.envs = append(a.envs, e)
}

// declare binds name to a fresh (recycled) cell holding v. Traced runs
// stamp the cell with its schedule-ordered allocation id, the identity
// trace tags use in place of the (arena-dependent) machine address.
func (c *thctx) declare(e *env, name string, v value) {
	a := c.ar
	var cl *cell
	if n := len(a.cells); n > 0 {
		cl = a.cells[n-1]
		a.cells = a.cells[:n-1]
		cl.v = v
	} else {
		cl = &cell{v: v}
	}
	if c.trace {
		cl.id = c.r.tr.nextAlloc()
	}
	e.names = append(e.names, name)
	e.cells = append(e.cells, cl)
}
