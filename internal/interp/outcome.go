package interp

import (
	"errors"

	"parcoach/internal/monitor"
	"parcoach/internal/mpi"
	"parcoach/internal/verifier"
)

// Outcome classifies how a run ended, collapsing the error types of the
// runtime stack into the categories the differential validation harness
// (internal/mhgen/diff) and the report tables reason about: did a planted
// check stop the run, did the simulated MPI library object, did the
// monitor's deadlock oracle fire, or did plain execution fail.
type Outcome int

// Run outcome classes, ordered from best to worst for a validator: a
// check abort is the tool working as designed, a deadlock is the failure
// mode the tool exists to prevent.
const (
	// OutcomeClean: the run completed without error.
	OutcomeClean Outcome = iota
	// OutcomeCheckAbort: a planted runtime check (internal/verifier)
	// stopped the run with a located verification error.
	OutcomeCheckAbort
	// OutcomeMPIError: the simulated MPI library itself rejected the run
	// (collective mismatch, concurrent calls on one communicator, or an
	// init/finalize/thread-level usage error). On a real machine this
	// class may hang or corrupt instead of failing cleanly.
	OutcomeMPIError
	// OutcomeDeadlock: the monitor's quiescence oracle fired — every live
	// thread was blocked. This is the outcome the paper's tool must
	// prevent from being reached uncaught.
	OutcomeDeadlock
	// OutcomeRuntimeError: a plain execution error (bad index, division
	// by zero, missing function, ...).
	OutcomeRuntimeError
	// OutcomeBudget: the run exhausted Options.MaxSteps. Distinct from
	// OutcomeDeadlock (nothing was blocked — the schedule just never
	// terminated within budget) so bounded exploration of generated
	// programs cannot misread a spin as a hang.
	OutcomeBudget
	// OutcomeValueError: the value oracle (internal/verifier's collective
	// round observer) flagged data-level disagreement — divergent roots,
	// mismatched reduction ops, a torn source buffer, or a result that
	// differs from the oracle's recomputation — in a round whose
	// collective sequence matched.
	OutcomeValueError
	// OutcomeCanceled: the run was stopped from outside — a canceled
	// context (client disconnect, SIGTERM, -timeout on the whole job).
	// Says nothing about the program; exploration and campaigns exclude
	// these runs from verdict aggregation.
	OutcomeCanceled
	// OutcomeTimeout: the per-run wall-clock watchdog
	// (Options.WallTimeout) fired. Complements OutcomeBudget: a budget
	// overrun counts statements, a watchdog counts seconds — a run that
	// wedges without executing statements (outside the monitor's
	// control) only the watchdog can stop.
	OutcomeTimeout
	// OutcomeInternalError: the run (or its compile) panicked and was
	// quarantined at the pool boundary instead of taking the process
	// down — a bug in the validator, not in the validated program. The
	// error carries the panic value and stack (QuarantineError).
	OutcomeInternalError
)

var outcomeNames = [...]string{
	OutcomeClean:         "clean",
	OutcomeCheckAbort:    "check-abort",
	OutcomeMPIError:      "mpi-error",
	OutcomeDeadlock:      "deadlock",
	OutcomeRuntimeError:  "runtime-error",
	OutcomeBudget:        "budget-exhausted",
	OutcomeValueError:    "value-error",
	OutcomeCanceled:      "canceled",
	OutcomeTimeout:       "timeout",
	OutcomeInternalError: "internal-error",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "outcome(?)"
}

// ClassifyError maps a run error to its Outcome class (nil means clean).
func ClassifyError(err error) Outcome {
	if err == nil {
		return OutcomeClean
	}
	// Fast path: the runtime stack's errors arrive unwrapped, and a
	// direct type switch avoids the heap traffic of errors.As target
	// pointers on the exploration hot path. Wrapped errors fall through
	// to the errors.As chain below.
	switch err.(type) {
	case *verifier.Error:
		return OutcomeCheckAbort
	case *verifier.ValueError:
		return OutcomeValueError
	case *monitor.DeadlockError:
		return OutcomeDeadlock
	case *StepLimitError:
		return OutcomeBudget
	case *mpi.MismatchError, *mpi.ConcurrentCallError, *mpi.UsageError:
		return OutcomeMPIError
	case *RuntimeError:
		return OutcomeRuntimeError
	case *CancelError:
		return OutcomeCanceled
	case *WatchdogError:
		return OutcomeTimeout
	case *QuarantineError:
		return OutcomeInternalError
	}
	var verr *verifier.Error
	if errors.As(err, &verr) {
		return OutcomeCheckAbort
	}
	var valerr *verifier.ValueError
	if errors.As(err, &valerr) {
		return OutcomeValueError
	}
	if monitor.IsDeadlock(err) {
		return OutcomeDeadlock
	}
	var sl *StepLimitError
	if errors.As(err, &sl) {
		return OutcomeBudget
	}
	var mismatch *mpi.MismatchError
	var conc *mpi.ConcurrentCallError
	var usage *mpi.UsageError
	if errors.As(err, &mismatch) || errors.As(err, &conc) || errors.As(err, &usage) {
		return OutcomeMPIError
	}
	var cancel *CancelError
	if errors.As(err, &cancel) {
		return OutcomeCanceled
	}
	var wd *WatchdogError
	if errors.As(err, &wd) {
		return OutcomeTimeout
	}
	var quar *QuarantineError
	if errors.As(err, &quar) {
		return OutcomeInternalError
	}
	return OutcomeRuntimeError
}

// Outcome classifies the run's error.
func (r *Result) Outcome() Outcome { return ClassifyError(r.Err) }
