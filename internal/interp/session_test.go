package interp

import (
	"testing"
	"time"

	"parcoach/internal/mpi"
	"parcoach/internal/parser"
	"parcoach/internal/sched"
)

const sessionSrc = `
func main() {
	MPI_Init()
	var x = rank()
	MPI_Allreduce(x, x, sum)
	MPI_Finalize()
	return x
}
`

// TestSessionAbandonsWedgedRun: a run whose monitor never drains (here:
// a phantom live thread that never exits, standing in for a straggler
// goroutine wedged outside the monitor's control) must not block
// Session.Run forever — the pre-fix release waited on Drained()
// unconditionally, which in a daemon's warm pool permanently leaks the
// slot. The bounded wait must return the run's result, count the leak,
// and leave the session fully usable (fresh state, nothing recycled
// from the wedged run).
func TestSessionAbandonsWedgedRun(t *testing.T) {
	prog := parser.MustParse("wedge.mh", sessionSrc)
	sess := NewSession(prog, Options{Procs: 2, Threads: 2, DrainTimeout: 100 * time.Millisecond})

	testWedge = func(w *mpi.World) { w.Monitor().ThreadStarted() }
	defer func() { testWedge = nil }()

	done := make(chan *Result, 1)
	go func() { done <- sess.Run(nil) }()
	var res *Result
	select {
	case res = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Session.Run blocked past the drain timeout: wedged run not abandoned")
	}
	if res.Err != nil {
		t.Fatalf("wedged-drain run still completed its program; got err %v", res.Err)
	}
	if got := sess.Abandoned(); got != 1 {
		t.Fatalf("Abandoned() = %d, want 1", got)
	}

	// The abandoned world must never be reused: the next run builds
	// fresh state, completes, drains and recycles normally.
	testWedge = nil
	res2 := sess.Run(sched.NewRoundRobin())
	if res2.Err != nil {
		t.Fatalf("post-abandon run failed: %v", res2.Err)
	}
	if got := sess.Abandoned(); got != 1 {
		t.Fatalf("clean post-abandon run counted as a leak: Abandoned() = %d", got)
	}
}

// TestSessionDrainTimeoutDefault: normal runs never hit the bound — a
// session with the default timeout behaves exactly as before.
func TestSessionDrainTimeoutDefault(t *testing.T) {
	prog := parser.MustParse("clean.mh", sessionSrc)
	sess := NewSession(prog, Options{Procs: 2, Threads: 2})
	if sess.opts.DrainTimeout != DefaultDrainTimeout {
		t.Fatalf("DrainTimeout normalized to %v, want %v", sess.opts.DrainTimeout, DefaultDrainTimeout)
	}
	for i := 0; i < 4; i++ {
		if res := sess.Run(sched.NewRoundRobin()); res.Err != nil {
			t.Fatalf("run %d: %v", i, res.Err)
		}
	}
	if got := sess.Abandoned(); got != 0 {
		t.Fatalf("clean runs counted as leaks: Abandoned() = %d", got)
	}
}
