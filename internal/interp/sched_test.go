package interp

import (
	"testing"

	"parcoach/internal/ast"
	"parcoach/internal/parser"
	"parcoach/internal/sched"
)

// The scheduler conformance suite: every scheduler that can drive the
// serialized interpreter must (a) be deterministic — the same
// configuration reproduces a byte-identical run — and (b) honor its
// fairness contract: under the online schedulers no enabled thread is
// starved beyond the scheduler's bound, demonstrated by a spinner
// program that can only terminate if the non-spinning thread gets
// scheduled. The replay scheduler is the deliberate exception: its
// lowest-id default starves by design (it is the DFS exploration
// driver, which enumerates the starving schedule like any other), which
// the table locks in as a budget-exhausted outcome.

// spinnerSrc terminates only if thread 1 runs while thread 0 spins.
const spinnerSrc = `
func main() {
	MPI_Init()
	var done = 0
	parallel num_threads(2) {
		if tid() == 0 {
			while done == 0 {
			}
		} else {
			done = 1
		}
	}
	MPI_Finalize()
}
`

// electionSrc's output depends on the schedule (nowait-single election),
// making it the determinism subject: a deterministic scheduler must
// reproduce the same election, and thus the same bytes, every time.
const electionSrc = `
func main() {
	MPI_Init()
	var winner = 0
	parallel num_threads(2) {
		single nowait { winner = tid() }
	}
	print(winner)
	MPI_Allreduce(winner, winner, sum)
	MPI_Finalize()
	return winner
}
`

// guardedBarrierSrc deadlocks under every schedule (rank divergence).
const guardedBarrierSrc = `
func main() {
	MPI_Init()
	if rank() == 0 {
		MPI_Barrier()
	}
	MPI_Finalize()
}
`

var schedulerTable = []struct {
	name string
	mk   func() sched.Scheduler
	// fairSteps is the step budget within which the spinner must
	// terminate — the starvation bound. 0 marks a scheduler that is
	// allowed to starve (the replay driver), asserted as OutcomeBudget.
	fairSteps int64
}{
	// Round-robin's bound is one team rotation: the spinner completes in
	// a few dozen statements.
	{"round-robin", func() sched.Scheduler { return sched.NewRoundRobin() }, 500},
	// Random picks each enabled thread with probability 1/|enabled|;
	// the fixed seed makes the (tiny) completion time reproducible.
	{"random", func() sched.Scheduler { return sched.NewRandom(1) }, 10_000},
	// PCT may let the spinner's priority dominate until a priority
	// change point (sampled below seq 4096) demotes it; the bound is the
	// change-point horizon.
	{"pct", func() sched.Scheduler { return sched.NewPCT(1, 3, 0) }, 100_000},
	// Replay with an empty trace = the DFS default policy (lowest
	// enabled id): it runs the spinner forever — that schedule exists
	// and the exploration engine must be able to enumerate it.
	{"replay-default", func() sched.Scheduler { return &sched.Replay{} }, 0},
}

func mustParse(t *testing.T, name, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestSchedulerConformanceFairness(t *testing.T) {
	program := mustParse(t, "spinner.mh", spinnerSrc)
	for _, tc := range schedulerTable {
		t.Run(tc.name, func(t *testing.T) {
			limit := tc.fairSteps
			if limit == 0 {
				limit = 20_000
			}
			res := Run(program, Options{Procs: 1, Threads: 2, MaxSteps: limit, Scheduler: tc.mk()})
			if tc.fairSteps == 0 {
				if got := res.Outcome(); got != OutcomeBudget {
					t.Fatalf("starving scheduler: outcome %v, want %v", got, OutcomeBudget)
				}
				return
			}
			if res.Err != nil {
				t.Fatalf("spinner did not finish within the %d-step fairness bound: %v",
					tc.fairSteps, res.Err)
			}
		})
	}
}

func TestSchedulerConformanceDeterminism(t *testing.T) {
	program := mustParse(t, "election.mh", electionSrc)
	for _, tc := range schedulerTable {
		t.Run(tc.name, func(t *testing.T) {
			run := func() *Result {
				return Run(program, Options{Procs: 2, Threads: 2, MaxSteps: 100_000, Scheduler: tc.mk()})
			}
			a, b := run(), run()
			if a.Output != b.Output {
				t.Fatalf("output not reproducible:\n-- run 1 --\n%s-- run 2 --\n%s", a.Output, b.Output)
			}
			if a.Outcome() != b.Outcome() {
				t.Fatalf("outcome not reproducible: %v vs %v", a.Outcome(), b.Outcome())
			}
			if a.Stats.Steps != b.Stats.Steps {
				t.Fatalf("step count not reproducible: %d vs %d", a.Stats.Steps, b.Stats.Steps)
			}
			if a.Err == nil {
				for r, v := range a.ExitValues {
					if b.ExitValues[r] != v {
						t.Fatalf("exit value of rank %d not reproducible: %d vs %d", r, v, b.ExitValues[r])
					}
				}
			}
		})
	}
}

// TestSchedulerConformanceDeadlockOracle: serialization must not blind
// the quiescence oracle — the rank-divergent barrier deadlocks under
// every scheduler, with the full report.
func TestSchedulerConformanceDeadlockOracle(t *testing.T) {
	program := mustParse(t, "guarded.mh", guardedBarrierSrc)
	for _, tc := range schedulerTable {
		t.Run(tc.name, func(t *testing.T) {
			res := Run(program, Options{Procs: 2, Threads: 2, MaxSteps: 100_000, Scheduler: tc.mk()})
			if got := res.Outcome(); got != OutcomeDeadlock {
				t.Fatalf("outcome %v (err %v), want deadlock", got, res.Err)
			}
		})
	}
}

// TestSerializedCleanRunMatchesFreeRunning: on a deterministic clean
// program, the serialized round-robin schedule computes the same values
// and stats as the historical free-running execution.
func TestSerializedCleanRunMatchesFreeRunning(t *testing.T) {
	src := `
func main() {
	MPI_Init()
	var x = rank() + 1
	parallel num_threads(4) {
		pfor i = 0 .. 16 {
			atomic x += i
		}
		single {
			MPI_Allreduce(x, x, sum)
		}
	}
	print(x)
	MPI_Finalize()
	return x
}
`
	program := mustParse(t, "clean.mh", src)
	free := Run(program, Options{Procs: 2, Threads: 4})
	serial := Run(program, Options{Procs: 2, Threads: 4, Scheduler: sched.NewRoundRobin()})
	if free.Err != nil || serial.Err != nil {
		t.Fatalf("clean program failed: free=%v serial=%v", free.Err, serial.Err)
	}
	for r := range free.ExitValues {
		if free.ExitValues[r] != serial.ExitValues[r] {
			t.Errorf("rank %d: free %d vs serialized %d", r, free.ExitValues[r], serial.ExitValues[r])
		}
	}
	if free.Stats.Collectives != serial.Stats.Collectives ||
		free.Stats.Barriers != serial.Stats.Barriers {
		t.Errorf("stats diverge: free %+v vs serialized %+v", free.Stats, serial.Stats)
	}
}
