package interp

import (
	"testing"

	"parcoach/internal/parser"
	"parcoach/internal/sched"
)

// The allocation pins below keep the serialized round-robin hot path at
// its post-pooling budget. Two programs, two budgets:
//
//   - a statement-heavy loop, where the cost model is per executed
//     statement: environment arenas, the waiter/gate pools and the
//     incremental scheduler signature brought this from ~0.7 to under
//     0.01 objects per step;
//   - a region-heavy loop, where the residual cost is per parallel
//     region instance (fork/join closures, the worker-gate slice):
//     a handful of objects per region, invariant in the body size.
//
// Both run through a Session with warm-up runs first, the way schedule
// exploration uses the interpreter.

func measureAllocs(t *testing.T, src string) (perRun float64, steps int64) {
	t.Helper()
	prog := parser.MustParse("alloc.mh", src)
	sess := NewSession(prog, Options{Procs: 2, Threads: 2, MaxSteps: 1_000_000})
	for i := 0; i < 3; i++ { // warm the pools
		res := sess.Run(sched.NewRoundRobin())
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		steps = res.Stats.Steps
	}
	perRun = testing.AllocsPerRun(10, func() {
		if res := sess.Run(sched.NewRoundRobin()); res.Err != nil {
			t.Fatal(res.Err)
		}
	})
	return perRun, steps
}

// TestSerializedStepAllocations pins the per-statement budget on a
// statement-heavy program (no parallel regions in the loop).
func TestSerializedStepAllocations(t *testing.T) {
	perRun, steps := measureAllocs(t, `
func bump(v) {
	return v + 1
}

func main() {
	MPI_Init()
	var x = 0
	for i = 0 .. 2000 {
		x = bump(x)
		if x > 1000 {
			x = 0
		}
	}
	MPI_Allreduce(x, x, sum)
	MPI_Finalize()
}
`)
	perStep := perRun / float64(steps)
	t.Logf("allocs/run=%.0f steps=%d allocs/step=%.4f", perRun, steps, perStep)
	const ceiling = 0.05 // was ~0.7 before the arena/pool work
	if perStep > ceiling {
		t.Errorf("serialized round-robin path allocates %.4f objects/step (%.0f over %d steps); ceiling %.2f",
			perStep, perRun, steps, ceiling)
	}
}

// TestSerializedRegionAllocations pins the per-region-instance budget
// on a fork/join-heavy program (a team fork, nowait single and join
// barrier per iteration on every rank).
func TestSerializedRegionAllocations(t *testing.T) {
	const iters = 200
	const ranks = 2
	perRun, steps := measureAllocs(t, `
func main() {
	MPI_Init()
	var x = 0
	for i = 0 .. 200 {
		parallel num_threads(2) {
			single nowait { x = x + 1 }
		}
	}
	MPI_Allreduce(x, x, sum)
	MPI_Finalize()
}
`)
	perRegion := perRun / float64(iters*ranks)
	t.Logf("allocs/run=%.0f steps=%d allocs/region=%.2f", perRun, steps, perRegion)
	const ceiling = 12.0 // fork/join closures and the worker-gate slice; was ~3x higher pre-pooling
	if perRegion > ceiling {
		t.Errorf("serialized fork/join path allocates %.2f objects/region (%.0f over %d regions); ceiling %.0f",
			perRegion, perRun, iters*ranks, ceiling)
	}
}
