// Event-trace tagging for dynamic partial-order reduction.
//
// When the run is serialized under a DPOR-recording scheduler
// (sched.DPORRecorder), every thread context carries trace=true and tags
// the shared objects each statement touches onto its scheduling gate;
// the controller folds the tags into the run's event trace
// (monitor.EventTrace), which the exploration engine analyzes for race
// pairs after the run.
//
// The tagging discipline decides which schedules DPOR must explore, so
// it must over-approximate the true dependence relation (extra conflicts
// cost schedules; missing conflicts lose bugs):
//
//   - Shared-memory cells and array elements tag conflict-visible
//     reads/writes keyed by address (aliasing-exact).
//   - Every MPI call writes its rank's call slot: same-rank call order is
//     semantically visible (Init/Finalize sequencing, concurrent-call
//     detection, per-rank collective and p2p order), while *cross-rank*
//     arrival order into a collective round deliberately commutes — the
//     matcher's per-round state has one slot per rank and its mismatch
//     reports are arrival-order independent.
//   - Blocking rendezvous (collective rounds, p2p matches, CC agreement,
//     barriers, fork/join) add release/acquire happens-before edges keyed
//     by the matching round, so post-wait steps are ordered behind the
//     steps that caused the wake without manufacturing reversible races
//     (those orders are enforced by enabledness, not by scheduling luck).
//   - Schedule-sensitive elections tag writes on their decision slot:
//     single-construct first-arrival winners, critical-section
//     acquisition order, dynamic-for chunk claiming.
//
// Deliberately untagged (documented over-approximation *gaps*, all
// verdict-invisible): print output interleaving (Result.Output may
// differ across members of an interleaving class), the global step
// counter (OutcomeBudget on spinning programs can trigger at different
// points; such runs are not exhaustible anyway), and MonoCheck's
// region-size recording (all threads of a team record the same size).
package interp

import (
	"sync"

	"parcoach/internal/monitor"
)

// Composite object kinds.
const (
	objMPI     uint64 = 2  // per-rank MPI call slot (W)
	objCollHB  uint64 = 3  // collective round handoff (Rel/Acq)
	objChanTag uint64 = 4  // p2p per-endpoint order (W) and handoff base
	objChanHB  uint64 = 6  // p2p match handoff (Rel/Acq)
	objSingle  uint64 = 7  // single-construct election slot (W)
	objBarHB   uint64 = 8  // barrier arrival slots (Rel/Acq)
	objCritQ   uint64 = 9  // critical acquisition order (W)
	objCritHB  uint64 = 10 // critical handoff (Rel/Acq)
	objDyn     uint64 = 11 // dynamic-for chunk counter (W)
	objForkHB  uint64 = 12 // parallel-region fork edge (Rel/Acq)
	objJoinHB  uint64 = 13 // parallel-region join edge (Rel/Acq)
	objVer     uint64 = 14 // per-rank verifier state (W)
	objCCHB    uint64 = 15 // CC agreement round handoff (Rel/Acq)
	objCell    uint64 = 16 // scalar cell, keyed by allocation id (R/W)
	objElem    uint64 = 17 // array element, keyed by array id and index (R/W)
)

// traceRT is the runner's tracing scratch: matching-round counters that
// key the release/acquire handoff objects. Under serialization only one
// simulated thread runs at a time, but after an abort the released
// stragglers free-run, so the counters take a private mutex to stay free
// of Go-level races (straggler tags land in gate buffers that are never
// flushed; the lock is only for memory safety).
type traceRT struct {
	mu sync.Mutex
	// collSeq[rank] counts the rank's collective calls: legal runs enter
	// collectives in lockstep rounds, so each rank's k-th call is round k.
	collSeq []uint64
	// ccSeq[rank] counts CC agreements the same way.
	ccSeq []uint64
	// chanSeq counts sends and recvs per (src,dst,tag) endpoint; the
	// queues are FIFO on both sides, so the k-th recv matches the k-th
	// send.
	chanSeq map[monitor.Obj]uint64
	// regionSeq numbers parallel-region instances (fork/join/barrier
	// object keys must not collide across sequential regions).
	regionSeq uint64
	// allocSeq numbers cell and array allocations in schedule order.
	// Declarations only execute while their thread holds the run token,
	// so the sequence — and with it every cell/element object id in the
	// trace — is a pure function of the schedule, not of which pooled
	// arena (and hence machine addresses) this run happened to draw.
	allocSeq uint64
}

func newTraceRT(procs int) *traceRT {
	return &traceRT{
		collSeq: make([]uint64, procs),
		ccSeq:   make([]uint64, procs),
		chanSeq: make(map[monitor.Obj]uint64),
	}
}

func (tr *traceRT) reset() {
	for i := range tr.collSeq {
		tr.collSeq[i] = 0
	}
	for i := range tr.ccSeq {
		tr.ccSeq[i] = 0
	}
	clear(tr.chanSeq)
	tr.regionSeq = 0
	tr.allocSeq = 0
}

func (tr *traceRT) nextColl(rank int) uint64 {
	tr.mu.Lock()
	k := tr.collSeq[rank]
	tr.collSeq[rank]++
	tr.mu.Unlock()
	return k
}

func (tr *traceRT) nextCC(rank int) uint64 {
	tr.mu.Lock()
	k := tr.ccSeq[rank]
	tr.ccSeq[rank]++
	tr.mu.Unlock()
	return k
}

func (tr *traceRT) nextChan(endpoint monitor.Obj) uint64 {
	tr.mu.Lock()
	k := tr.chanSeq[endpoint]
	tr.chanSeq[endpoint] = k + 1
	tr.mu.Unlock()
	return k
}

func (tr *traceRT) nextRegion() uint64 {
	tr.mu.Lock()
	k := tr.regionSeq
	tr.regionSeq++
	tr.mu.Unlock()
	return k
}

// nextAlloc issues the next cell/array allocation id. Ids start at 1 so
// an unassigned (untraced) identity is distinguishable.
func (tr *traceRT) nextAlloc() uint64 {
	tr.mu.Lock()
	tr.allocSeq++
	k := tr.allocSeq
	tr.mu.Unlock()
	return k
}

// cellObj keys a scalar cell by its allocation id. Ids — not machine
// addresses — keep traces independent of arena recycling: a recycled
// cell is a fresh declaration and gets a fresh id, so aliasing across a
// cell's lifetimes cannot occur either.
func cellObj(cl *cell) monitor.Obj {
	return monitor.ObjID(objCell, cl.id, 0)
}

// elemObj keys an array element by the array's allocation id and the
// element index, which keeps element dependence exact under
// MiniHybrid's by-reference array aliasing (copies share arr and aid).
func elemObj(v value, idx int64) monitor.Obj {
	return monitor.ObjID(objElem, v.aid, uint64(idx))
}

func hashName(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// tag helpers: every call site guards with the plain c.trace bool so the
// untraced hot path pays one predictable branch and zero interface
// conversions.

func (c *thctx) tagRead(o monitor.Obj)  { c.gate.Access(o, monitor.AccRead) }
func (c *thctx) tagWrite(o monitor.Obj) { c.gate.Access(o, monitor.AccWrite) }
func (c *thctx) tagRel(o monitor.Obj)   { c.gate.Access(o, monitor.AccRelease) }
func (c *thctx) tagAcq(o monitor.Obj)   { c.gate.Access(o, monitor.AccAcquire) }

// tagMPIEntry marks a same-rank-ordered MPI call.
func (c *thctx) tagMPIEntry() {
	c.tagWrite(monitor.ObjID(objMPI, uint64(c.p.Rank()), 0))
}

// tagCollEntry releases this rank's slot of the collective round about
// to be joined and returns the round index for the post-return acquire.
func (c *thctx) tagCollEntry() uint64 {
	k := c.r.tr.nextColl(c.p.Rank())
	c.tagRel(monitor.ObjID(objCollHB, uint64(c.p.Rank()), k))
	return k
}

// tagCollDone acquires every rank's slot of round k: the completed
// rendezvous ordered this thread behind all contributing arrivals.
func (c *thctx) tagCollDone(k uint64) {
	for r := 0; r < c.p.Size(); r++ {
		c.tagAcq(monitor.ObjID(objCollHB, uint64(r), k))
	}
}

// chanEndpoint keys one directed p2p endpoint; dir 0 = send, 1 = recv.
func chanEndpoint(src, dst, tag int, dir uint64) monitor.Obj {
	return monitor.ObjID(objChanTag, uint64(src)<<20|uint64(dst), uint64(tag)<<1|dir)
}

// tagSend orders same-endpoint sends and releases the match slot the
// k-th receiver will acquire.
func (c *thctx) tagSend(dst, tag int) {
	ep := chanEndpoint(c.p.Rank(), dst, tag, 0)
	c.tagWrite(ep)
	k := c.r.tr.nextChan(ep)
	c.tagRel(monitor.ObjID(objChanHB, uint64(ep), k))
}

// tagRecvEntry orders same-endpoint recvs and returns the match index.
func (c *thctx) tagRecvEntry(src, tag int) (sendEP monitor.Obj, k uint64) {
	recvEP := chanEndpoint(src, c.p.Rank(), tag, 1)
	c.tagWrite(recvEP)
	sendEP = chanEndpoint(src, c.p.Rank(), tag, 0)
	return sendEP, c.r.tr.nextChan(recvEP)
}

// tagRecvDone acquires the matching send's slot.
func (c *thctx) tagRecvDone(sendEP monitor.Obj, k uint64) {
	c.tagAcq(monitor.ObjID(objChanHB, uint64(sendEP), k))
}

// tagCCEntry/tagCCDone bracket a CC agreement like a collective round.
func (c *thctx) tagCCEntry() uint64 {
	c.tagWrite(monitor.ObjID(objVer, uint64(c.p.Rank()), 0))
	k := c.r.tr.nextCC(c.p.Rank())
	c.tagRel(monitor.ObjID(objCCHB, uint64(c.p.Rank()), k))
	return k
}

func (c *thctx) tagCCDone(k uint64) {
	for r := 0; r < c.p.Size(); r++ {
		c.tagAcq(monitor.ObjID(objCCHB, uint64(r), k))
	}
}

// barSlot keys one thread's arrival slot of one team barrier phase.
func (c *thctx) barSlot(tid int, phase uint64) monitor.Obj {
	a := uint64(c.p.Rank())<<20 | uint64(tid)
	return monitor.ObjID(objBarHB, a, c.regionTag<<24|phase)
}

// barrier runs a team barrier with release/acquire bracketing: each
// arrival releases its own slot, each resume acquires every slot, so
// pre-barrier steps of all members happen-before post-barrier steps of
// all members — with no reversible conflicts among the (commuting)
// arrivals themselves.
func (c *thctx) barrier() error {
	if c.trace {
		c.tagRel(c.barSlot(c.th.TID(), c.barSeq))
	}
	err := c.th.Barrier()
	if err == nil && c.trace {
		n := c.th.Team().Size()
		for tid := 0; tid < n; tid++ {
			c.tagAcq(c.barSlot(tid, c.barSeq))
		}
		c.barSeq++
	}
	return err
}

// tagSingle marks a single-construct arrival: the first-arrival election
// is decided by arrival order, so arrivals conflict.
func (c *thctx) tagSingle(regionID int) {
	c.tagWrite(monitor.ObjID(objSingle, uint64(c.p.Rank())<<20|uint64(regionID), c.regionTag))
}

// tagDynNext marks a dynamic-for chunk claim (arrival-order dependent).
func (c *thctx) tagDynNext(regionID int) {
	c.tagWrite(monitor.ObjID(objDyn, uint64(c.p.Rank())<<20|uint64(regionID), c.regionTag))
}

func (c *thctx) critQObj(name string) monitor.Obj {
	return monitor.ObjID(objCritQ, uint64(c.p.Rank()), hashName(name))
}

func (c *thctx) critHObj(name string) monitor.Obj {
	return monitor.ObjID(objCritHB, uint64(c.p.Rank()), hashName(name))
}

// tagVerifier marks a same-rank-ordered verifier interaction
// (PhaseCount: entries of one phase conflict across threads).
func (c *thctx) tagVerifier() {
	c.tagWrite(monitor.ObjID(objVer, uint64(c.p.Rank()), 0))
}

func forkObj(rank int, region uint64) monitor.Obj {
	return monitor.ObjID(objForkHB, uint64(rank), region)
}

func joinObj(rank, tid int, region uint64) monitor.Obj {
	return monitor.ObjID(objJoinHB, uint64(rank)<<20|uint64(tid), region)
}
