// Session: amortized per-run setup for schedule exploration.
//
// A single Run is a one-shot: resolve main, build the simulated world,
// allocate per-rank runtime state, execute, tear down. Schedule
// exploration runs the same compiled artifact thousands of times, so
// Session hoists everything that depends only on (program, options) —
// option normalization, the main-function lookup — and recycles the
// per-run state (runner scratch, per-rank threading runtime and
// environment arenas, the scheduling controller's gates) through pools,
// bringing per-schedule setup close to zero.
//
// All pools recycle only once the run has drained: the monitor marks
// when the last straggler goroutine lets go of the run state. A wedged
// straggler would block that drain forever, so the wait is bounded
// (Options.DrainTimeout): past the deadline the run's world, monitor,
// controller and rank state are abandoned to the GC — never reused —
// and the leak is counted (Abandoned), keeping a long-lived warm pool
// (parcoachd) alive through a bad run instead of losing a slot forever.
package interp

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"parcoach/internal/ast"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/sched"
	"parcoach/internal/verifier"
)

// Session is a reusable harness for running one compiled program many
// times (typically under different schedulers — see internal/explore).
// It is safe for concurrent use: independent runs may execute on many
// goroutines at once.
type Session struct {
	prog   *ast.Program
	opts   Options
	mainFn *ast.FuncDecl
	// envs pools complete run environments — world, monitor (with its
	// waiter free list), verifier, runner scratch — across this
	// session's runs.
	envs sync.Pool
	// abandoned counts runs whose state never drained within
	// DrainTimeout and was leaked to the GC instead of recycled.
	abandoned atomic.Int64
	// watchdogs counts runs the wall-clock watchdog aborted; canceled
	// counts runs stopped by context cancellation.
	watchdogs atomic.Int64
	canceled  atomic.Int64
}

// Abandoned reports how many of this session's runs wedged past
// Options.DrainTimeout and had their run state abandoned instead of
// recycled. A nonzero count means some schedule left a straggler
// goroutine blocked outside the monitor's control; the session itself
// stays fully usable (fresh state is built on demand).
func (s *Session) Abandoned() int64 { return s.abandoned.Load() }

// Watchdogs reports how many of this session's runs were aborted by the
// wall-clock watchdog (Options.WallTimeout); Canceled how many were
// stopped by context cancellation (RunCtx). Both leave the session
// fully usable — aborted runs recycle (or, if wedged, are abandoned and
// counted by Abandoned as well).
func (s *Session) Watchdogs() int64 { return s.watchdogs.Load() }

// Canceled reports how many of this session's runs a canceled context
// stopped (including runs refused before starting).
func (s *Session) Canceled() int64 { return s.canceled.Load() }

// abandonedWorlds counts drain-timeout leaks process-wide, for the
// daemon's /stats endpoint.
var abandonedWorlds atomic.Int64

// AbandonedWorlds reports the process-wide count of runs abandoned on
// drain timeout across all sessions.
func AbandonedWorlds() int64 { return abandonedWorlds.Load() }

// runEnv bundles the per-run machinery that recycles as a unit: the
// simulated world (whose monitor keeps the world's and verifier's
// deadlock analyzers registered across resets), the verifier hanging
// off that monitor, and the runner scratch.
type runEnv struct {
	world *mpi.World
	r     *runner
}

// NewSession prepares prog for repeated runs under opts (normalized
// once here; the Scheduler field is ignored — each Run names its own).
func NewSession(prog *ast.Program, opts Options) *Session {
	if opts.Procs <= 0 {
		opts.Procs = 2
	}
	if opts.Threads <= 0 {
		opts.Threads = 2
	}
	if !opts.LevelSet {
		opts.Level = mpi.ThreadMultiple
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 50_000_000
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = DefaultDrainTimeout
	}
	opts.Scheduler = nil
	return &Session{prog: prog, opts: opts, mainFn: prog.Func("main")}
}

// testWedge, when set by a test, runs against the world's monitor just
// before the run starts — the regression hook that plants a phantom
// live thread so the drain can never complete.
var testWedge func(world *mpi.World)

// rankState is the per-rank run state — the thread-local environment
// arena and the per-process threading runtime — recycled across runs so
// each explored schedule reuses the previous one's allocations instead
// of rebuilding them.
type rankState struct {
	ar *arena
	rt *omp.Runtime
}

var rankPool = sync.Pool{New: func() any { return &rankState{ar: getArena()} }}

// Run executes the program once under the given scheduler (nil keeps
// the free-running goroutine execution).
func (s *Session) Run(scheduler sched.Scheduler) *Result {
	return s.RunCtx(nil, scheduler)
}

// RunCtx is Run under a context: when ctx is canceled the run is
// aborted (CancelError / OutcomeCanceled) within one statement boundary
// of a serialized run — the bounded-latency cancellation path streamed
// exploration and the daemon ride on. A nil (or never-canceled) ctx
// adds nothing to the hot path.
func (s *Session) RunCtx(ctx context.Context, scheduler sched.Scheduler) *Result {
	opts := s.opts
	if ctx != nil {
		if err := context.Cause(ctx); err != nil {
			// Refuse to start: a canceled caller wants its slot back, not
			// one more full run.
			s.canceled.Add(1)
			canceledRuns.Add(1)
			return &Result{Err: &CancelError{Cause: err}, ExitValues: make([]int64, opts.Procs)}
		}
	}
	res := &Result{ExitValues: make([]int64, opts.Procs)}
	if s.mainFn == nil {
		res.Err = &RuntimeError{Pos: s.prog.Pos(), Msg: "program has no main function"}
		return res
	}
	var env *runEnv
	if v := s.envs.Get(); v != nil {
		env = v.(*runEnv)
		env.world.Reset()
		env.r.ver.Reset()
	} else {
		world, err := mpi.NewWorld(mpi.Config{Procs: opts.Procs, Level: opts.Level})
		if err != nil {
			res.Err = err
			return res
		}
		env = &runEnv{world: world, r: new(runner)}
		env.r.ver = verifier.New(world.Monitor(), opts.Procs)
		if opts.ValueCheck {
			// The round observer survives World.Reset (like the monitor's
			// analyzers), so pooled envs stay armed across reuse.
			env.r.ver.AttachWorld(world)
		}
	}
	world := env.world
	r := env.r
	r.rebind(s.prog, opts, world)
	tracing := false
	if scheduler != nil {
		r.ctl = sched.NewController(scheduler, opts.Procs)
		if _, ok := scheduler.(sched.TraceSource); ok {
			tracing = true
			if r.tr == nil || len(r.tr.collSeq) != opts.Procs {
				r.tr = newTraceRT(opts.Procs)
			} else {
				r.tr.reset()
			}
		}
		world.Monitor().SetSched(r.ctl)
		r.ctl.Start()
	}
	if testWedge != nil {
		testWedge(world)
	}
	guard := s.armGuard(ctx, world.Monitor())
	ranks := make([]*rankState, opts.Procs)
	err := world.Run(func(p *mpi.Proc) error {
		var gate *sched.Gate
		if r.ctl != nil {
			gate = r.ctl.ProcGate(p.Rank())
			gate.Attach()
		}
		rs := rankPool.Get().(*rankState)
		ranks[p.Rank()] = rs // disjoint slot per rank
		if rs.rt == nil {
			rs.rt = omp.New(world.Monitor(), opts.Threads, opts.Policy)
		} else {
			rs.rt.Reset(world.Monitor(), opts.Threads, opts.Policy)
		}
		th := rs.rt.InitialThread()
		c := &thctx{r: r, p: p, rt: rs.rt, th: th, fn: s.mainFn.Name, gate: gate, ar: rs.ar, trace: tracing}
		ret, err := c.callFunction(s.mainFn, nil, s.mainFn.NamePos)
		if err != nil {
			return err
		}
		r.mu.Lock()
		res.ExitValues[p.Rank()] = ret
		r.mu.Unlock()
		return nil
	})
	res.Err = err
	if guard != nil {
		// Disarm before any recycling: after disarm returns, no late
		// guard callback can abort the monitor this env is about to
		// recycle into its next run.
		canceled, timedOut := guard.disarm()
		if canceled {
			s.canceled.Add(1)
			canceledRuns.Add(1)
		}
		if timedOut {
			s.watchdogs.Add(1)
			watchdogRuns.Add(1)
		}
	}
	// Wait for the last goroutine to deregister before reading results
	// or recycling. World.Run returning only joins the process mains —
	// a team worker released from its final join barrier (or, after an
	// abort, a free-running straggler that may still print or bump
	// counters) can still be between wake-up and ThreadExited, touching
	// the runner, its team, runtime and scheduling gate; once the
	// monitor drains, nothing can reach the run state anymore, so the
	// output/stats reads are race-free and clean and aborted runs alike
	// recycle everything. (Abort unwinding is bounded: every waiter is
	// woken with the abort error and every statement boundary checks
	// the abort flag.)
	//
	// The wait itself is bounded: a straggler wedged outside the
	// monitor's control (or a monitor whose live count never returns to
	// zero) would otherwise park this goroutine forever — in a daemon's
	// warm pool that is a permanently leaked slot per bad run. Past
	// DrainTimeout the run's whole state is abandoned, never reused.
	drained := world.Monitor().Drained()
	select {
	case <-drained:
	default:
		if s.opts.DrainTimeout < 0 {
			<-drained
		} else {
			timer := time.NewTimer(s.opts.DrainTimeout)
			select {
			case <-drained:
				timer.Stop()
			case <-timer.C:
				return s.abandon(res, r)
			}
		}
	}
	res.Output = r.output.String()
	res.Stats = Stats{
		Collectives: atomic.LoadInt64(&r.collectives),
		P2PMessages: atomic.LoadInt64(&r.p2p),
		Barriers:    atomic.LoadInt64(&r.barriers),
		Steps:       atomic.LoadInt64(&r.steps),
	}
	res.Stats.CCChecks, res.Stats.PhaseChecks, res.Stats.ValueChecks = r.ver.Stats()
	for _, rs := range ranks {
		if rs != nil {
			rankPool.Put(rs)
		}
	}
	if r.ctl != nil {
		r.ctl.Recycle()
		r.ctl = nil
	}
	s.envs.Put(env)
	return res
}

// abandon finishes a run whose state never drained: nothing is
// recycled — the world, monitor, verifier, controller, rank state and
// runner stay referenced by whatever goroutine wedged and go to the GC
// with it — and the leak is counted. Only straggler-safe fields are
// read: the output buffer under the runner's own lock, the counters
// with atomic loads, the check counts under the monitor lock. The
// session stays usable; the next Run builds fresh state on demand.
func (s *Session) abandon(res *Result, r *runner) *Result {
	s.abandoned.Add(1)
	abandonedWorlds.Add(1)
	r.mu.Lock()
	res.Output = r.output.String()
	r.mu.Unlock()
	res.Stats = Stats{
		Collectives: atomic.LoadInt64(&r.collectives),
		P2PMessages: atomic.LoadInt64(&r.p2p),
		Barriers:    atomic.LoadInt64(&r.barriers),
		Steps:       atomic.LoadInt64(&r.steps),
	}
	res.Stats.CCChecks, res.Stats.PhaseChecks, res.Stats.ValueChecks = r.ver.Stats()
	return res
}

// rebind points a (new or recycled) runner at the next run.
func (r *runner) rebind(prog *ast.Program, opts Options, world *mpi.World) {
	r.prog = prog
	r.opts = opts
	r.world = world
	r.ctl = nil
	r.output.Reset()
	r.steps = 0
	r.collectives = 0
	r.p2p = 0
	r.barriers = 0
}
