// Package interp executes MiniHybrid programs — pristine or instrumented —
// on the simulated MPI world (internal/mpi) and per-process fork/join
// threading runtime (internal/omp), dispatching the instrumentation
// statements to the runtime verifier (internal/verifier).
//
// Each MPI process is a goroutine; each parallel region forks further
// goroutines into a team. Variables declared outside a threading construct
// are shared between the threads of the region (as in the OpenMP default);
// declarations inside a construct are thread-private. Arrays pass to
// functions and MPI vector operations by reference.
package interp

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parcoach/internal/ast"
	"parcoach/internal/monitor"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/sched"
	"parcoach/internal/source"
	"parcoach/internal/token"
	"parcoach/internal/verifier"
)

// Options configures a run.
type Options struct {
	// Procs is the number of MPI processes (default 2).
	Procs int
	// Threads is the default team size of parallel regions (default 2).
	Threads int
	// Level is the MPI thread support to simulate (default MPI_THREAD_MULTIPLE,
	// so the verifier, not the usage police, reports hybrid bugs).
	Level mpi.ThreadLevel
	// LevelSet marks Level as explicitly chosen (so ThreadSingle is usable).
	LevelSet bool
	// Policy selects single-construct election (default FirstArrival;
	// RoundRobin makes concurrency bugs deterministic).
	Policy omp.Policy
	// Stdout, when non-nil, additionally receives program output.
	Stdout io.Writer
	// MaxSteps bounds the total statements executed across all threads
	// (default 50 million) so runaway loops terminate with a distinct
	// budget-exhausted outcome instead of spinning forever.
	MaxSteps int64
	// Scheduler, when non-nil, serializes the run: exactly one simulated
	// thread executes at a time and the scheduler picks, at every
	// statement boundary and blocking transition, which enabled thread
	// runs next (see internal/sched). nil keeps the historical
	// free-running goroutine execution.
	Scheduler sched.Scheduler
	// DrainTimeout bounds how long Session.Run waits for the run's last
	// straggler goroutine to deregister before giving up on recycling:
	// past the deadline the session abandons the run's world, monitor,
	// controller and rank state to the GC (they are never reused) and
	// returns, counting the leak (see Session.Abandoned). 0 means
	// DefaultDrainTimeout; negative waits forever (the pre-hardening
	// behavior). A wedged run therefore costs one warm-pool slot, not a
	// goroutine blocked forever — which is what keeps a long-lived
	// parcoachd worker pool alive through a bad run.
	DrainTimeout time.Duration
	// WallTimeout, when positive, arms a per-run wall-clock watchdog
	// complementing MaxSteps: past the deadline the run is aborted with
	// a WatchdogError (OutcomeTimeout) and counted (Session.Watchdogs,
	// WatchdogRuns). Where a step budget needs the run to keep executing
	// statements, the watchdog also stops runs wedged outside the
	// interpreter's control; a run the abort cannot unwedge is then
	// abandoned by the existing DrainTimeout machinery. 0 disables it.
	WallTimeout time.Duration
	// ValueCheck arms the verifier's value oracle: every matched
	// collective round is audited for divergent roots, mismatched
	// reduction ops, torn source buffers and mis-delivered results, and a
	// violation aborts the run with OutcomeValueError. Off by default —
	// uninstrumented ground-truth runs must keep the simulator's own
	// error classes.
	ValueCheck bool
}

// DefaultDrainTimeout is the drain bound when Options.DrainTimeout is
// zero. Normal runs drain in microseconds (abort unwinding is bounded:
// every waiter is woken with the abort error and every statement
// boundary checks the abort flag), so a run still undrained after this
// long is wedged for good.
const DefaultDrainTimeout = 10 * time.Second

// Stats summarizes a run.
type Stats struct {
	Collectives int64
	P2PMessages int64
	Barriers    int64
	Steps       int64
	CCChecks    int
	PhaseChecks int
	ValueChecks int
}

// Result is the outcome of a run.
type Result struct {
	// Err is nil for a clean run; otherwise the verification error,
	// runtime mismatch, deadlock report, or execution error.
	Err error
	// Output is the captured print output ("r<rank>: ..." lines).
	Output string
	// ExitValues holds each rank's return value from main.
	ExitValues []int64
	Stats      Stats
}

// RuntimeError is a located execution error (bad index, division by zero,
// missing function, step-limit overrun, ...).
type RuntimeError struct {
	Rank int
	Pos  source.Pos
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error on rank %d at %s: %s", e.Rank, e.Pos, e.Msg)
}

// StepLimitError reports that the run exhausted Options.MaxSteps. It is
// classified as OutcomeBudget, distinct from deadlocks and plain runtime
// errors, so bounded schedule exploration can tell "this interleaving
// spins" apart from "this interleaving hangs".
type StepLimitError struct {
	Rank  int
	Pos   source.Pos
	Limit int64
}

func (e *StepLimitError) Error() string {
	return fmt.Sprintf("step budget exhausted on rank %d at %s: %d statements executed (infinite loop?)",
		e.Rank, e.Pos, e.Limit)
}

// Run executes prog's main function on every rank. Repeated runs of one
// program should go through NewSession, which shares the per-run setup.
func Run(prog *ast.Program, opts Options) *Result {
	return NewSession(prog, opts).Run(opts.Scheduler)
}

type runner struct {
	prog  *ast.Program
	opts  Options
	world *mpi.World
	ver   *verifier.Verifier
	// ctl serializes the run when a Scheduler is configured (nil
	// otherwise: free-running goroutines).
	ctl *sched.Controller
	// tr holds the event-tracing round counters when the scheduler
	// records an event trace for DPOR (see trace.go); nil otherwise.
	tr *traceRT

	mu     sync.Mutex
	output bytes.Buffer

	steps       int64
	collectives int64
	p2p         int64
	barriers    int64
}

func (r *runner) printLine(rank int, line string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(&r.output, "r%d: %s\n", rank, line)
	if r.opts.Stdout != nil {
		fmt.Fprintf(r.opts.Stdout, "r%d: %s\n", rank, line)
	}
}

//
// Values and environments
//

type value struct {
	arr []int64 // non-nil means array
	i   int64
	// aid is the array's logical identity for trace tagging (set at
	// declaration when tracing; copies alias the array and share it).
	aid uint64
}

func scalar(i int64) value { return value{i: i} }

// cell is one shared-memory location. Team threads of a simulated
// process share cells by design — including deliberately racy benchmark
// programs — so the interpreter must stay free of *Go* data races while
// letting simulated races keep their relaxed semantics: scalar cells are
// guarded by the cell lock, and array elements are always accessed with
// atomic loads/stores (the array header itself is immutable once
// declared — whole-array assignment is rejected — so the aliasing that
// gives MiniHybrid its by-reference arrays stays intact).
type cell struct {
	mu sync.Mutex
	v  value
	// id is the cell's logical identity for trace tagging, assigned at
	// declaration from the run's allocation counter (see trace.go).
	// Cells are recycled through process-wide arenas, so their machine
	// address depends on what other sessions ran before — the logical
	// id is a pure function of the schedule and keeps traces (and
	// everything derived from them) reproducible.
	id uint64
}

// load returns the cell's value (the array payload stays aliased).
func (cl *cell) load() value {
	cl.mu.Lock()
	v := cl.v
	cl.mu.Unlock()
	return v
}

// store overwrites the cell's value.
func (cl *cell) store(v value) {
	cl.mu.Lock()
	cl.v = v
	cl.mu.Unlock()
}

// snapshotArr copies a (possibly concurrently written) array with atomic
// element loads.
func snapshotArr(arr []int64) []int64 {
	out := make([]int64, len(arr))
	for i := range arr {
		out[i] = atomic.LoadInt64(&arr[i])
	}
	return out
}

//
// Per-thread execution context
//

type thctx struct {
	r  *runner
	p  *mpi.Proc
	rt *omp.Runtime
	th *omp.Thread
	fn string // current function name (for return:<fn> CC ids)
	// gate is this thread's handle on the scheduling controller (nil in
	// free-running mode).
	gate *sched.Gate
	// ar is this thread's private frame arena (see arena.go). Team
	// workers get their own from the pool; the master shares its
	// forker's (it runs the region body on the same goroutine).
	ar *arena
	// trace enables event tagging (see trace.go): true iff gate is
	// non-nil and the controller records an event trace.
	trace bool
	// regionTag is the global instance number of the enclosing parallel
	// region (0 at top level) and barSeq counts this thread's barrier
	// phases within it; together they key barrier arrival slots.
	regionTag uint64
	barSeq    uint64
}

func (c *thctx) errf(pos source.Pos, format string, args ...any) error {
	return &RuntimeError{Rank: c.p.Rank(), Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// step counts one executed statement, polls the abort flag, and — under
// a scheduling controller — offers a context switch, making every
// statement boundary a scheduling point.
func (c *thctx) step(pos source.Pos) error {
	n := atomic.AddInt64(&c.r.steps, 1)
	if n > c.r.opts.MaxSteps {
		err := &StepLimitError{Rank: c.p.Rank(), Pos: pos, Limit: c.r.opts.MaxSteps}
		c.r.world.Monitor().Abort(err)
		return err
	}
	if c.r.world.Monitor().Aborted() {
		return c.r.world.Monitor().Err()
	}
	if c.gate != nil {
		c.gate.Yield(pos.Line)
		if c.r.world.Monitor().Aborted() {
			return c.r.world.Monitor().Err()
		}
	}
	return nil
}

func (c *thctx) callFunction(fn *ast.FuncDecl, args []value, at source.Pos) (int64, error) {
	if len(args) != len(fn.Params) {
		return 0, c.errf(at, "function %q expects %d argument(s), got %d", fn.Name, len(fn.Params), len(args))
	}
	e := c.newEnv(nil)
	for i, p := range fn.Params {
		c.declare(e, p, args[i])
	}
	saved := c.fn
	c.fn = fn.Name
	defer func() { c.fn = saved }()
	returned, ret, err := c.execBlock(fn.Body, e)
	if err != nil {
		return 0, err
	}
	c.releaseEnv(e)
	if !returned {
		ret = 0
	}
	return ret, nil
}

// execBlock runs a block in a fresh child scope. The scope frame is
// recycled on clean exit only; error exits leak it to the GC because
// abort unwinding can leave straggler team goroutines still reading
// scopes shared through the parallel-body closure (see arena.go).
func (c *thctx) execBlock(b *ast.Block, e *env) (returned bool, ret int64, err error) {
	inner := c.newEnv(e)
	returned, ret, err = c.execStmts(b.Stmts, inner)
	if err == nil {
		c.releaseEnv(inner)
	}
	return returned, ret, err
}

func (c *thctx) execStmts(stmts []ast.Stmt, e *env) (bool, int64, error) {
	for _, s := range stmts {
		returned, ret, err := c.execStmt(s, e)
		if err != nil || returned {
			return returned, ret, err
		}
	}
	return false, 0, nil
}

func (c *thctx) execStmt(s ast.Stmt, e *env) (bool, int64, error) {
	if err := c.step(s.Pos()); err != nil {
		return false, 0, err
	}
	switch s := s.(type) {
	case *ast.Block:
		return c.execBlock(s, e)

	case *ast.VarDecl:
		if s.ArraySize != nil {
			n, err := c.evalInt(s.ArraySize, e)
			if err != nil {
				return false, 0, err
			}
			if n < 0 || n > 1<<28 {
				return false, 0, c.errf(s.VarPos, "invalid array size %d for %q", n, s.Name)
			}
			av := value{arr: make([]int64, n)}
			if c.trace {
				av.aid = c.r.tr.nextAlloc()
			}
			c.declare(e, s.Name, av)
			return false, 0, nil
		}
		v := int64(0)
		if s.Init != nil {
			var err error
			v, err = c.evalInt(s.Init, e)
			if err != nil {
				return false, 0, err
			}
		}
		c.declare(e, s.Name, scalar(v))
		return false, 0, nil

	case *ast.Assign:
		v, err := c.evalInt(s.Value, e)
		if err != nil {
			return false, 0, err
		}
		return false, 0, c.assign(s.Target, s.Op, v, e)

	case *ast.CallStmt:
		_, err := c.evalExpr(s.Call, e)
		return false, 0, err

	case *ast.If:
		cond, err := c.evalInt(s.Cond, e)
		if err != nil {
			return false, 0, err
		}
		if cond != 0 {
			return c.execBlock(s.Then, e)
		}
		if s.Else != nil {
			return c.execStmt(s.Else, e)
		}
		return false, 0, nil

	case *ast.For:
		from, err := c.evalInt(s.From, e)
		if err != nil {
			return false, 0, err
		}
		to, err := c.evalInt(s.To, e)
		if err != nil {
			return false, 0, err
		}
		loopEnv := c.newEnv(e)
		c.declare(loopEnv, s.Var, scalar(from))
		cellVar := loopEnv.lookup(s.Var)
		for i := from; i < to; i++ {
			cellVar.store(scalar(i))
			returned, ret, err := c.execBlock(s.Body, loopEnv)
			if err != nil || returned {
				if err == nil {
					c.releaseEnv(loopEnv)
				}
				return returned, ret, err
			}
			if err := c.step(s.ForPos); err != nil {
				return false, 0, err
			}
		}
		c.releaseEnv(loopEnv)
		return false, 0, nil

	case *ast.While:
		for {
			cond, err := c.evalInt(s.Cond, e)
			if err != nil {
				return false, 0, err
			}
			if cond == 0 {
				return false, 0, nil
			}
			returned, ret, err := c.execBlock(s.Body, e)
			if err != nil || returned {
				return returned, ret, err
			}
			if err := c.step(s.WhilePos); err != nil {
				return false, 0, err
			}
		}

	case *ast.Return:
		if s.Value != nil {
			v, err := c.evalInt(s.Value, e)
			return true, v, err
		}
		return true, 0, nil

	case *ast.Print:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			v, err := c.evalExpr(a, e)
			if err != nil {
				return false, 0, err
			}
			if v.arr != nil {
				parts[i] = fmt.Sprint(snapshotArr(v.arr))
			} else {
				parts[i] = fmt.Sprint(v.i)
			}
		}
		c.r.printLine(c.p.Rank(), strings.Join(parts, " "))
		return false, 0, nil

	case *ast.MPIStmt:
		return false, 0, c.execMPI(s, e)

	case *ast.ParallelStmt:
		n := 0
		if s.NumThreads != nil {
			nv, err := c.evalInt(s.NumThreads, e)
			if err != nil {
				return false, 0, err
			}
			n = int(nv)
		}
		// Under a scheduling controller the fork is itself a
		// deterministic schedule event: worker gates are registered
		// here, by the token holder, before any worker goroutine exists,
		// so thread ids and the runnable set never depend on goroutine
		// spawn timing.
		teamSize := n
		if teamSize <= 0 {
			teamSize = c.rt.DefaultThreads()
		}
		var workerGates []*sched.Gate
		if c.gate != nil && teamSize > 1 {
			workerGates = c.r.ctl.Fork(teamSize - 1)
		}
		var regionTag uint64
		if c.trace {
			regionTag = c.r.tr.nextRegion()
			// The fork edge: the parent's pre-region history
			// happens-before every team member's first step.
			c.tagRel(forkObj(c.p.Rank(), regionTag))
		}
		// The function name is snapshotted rather than read from c inside
		// the body: after an abort, straggler team goroutines can outlive
		// the Parallel call and the enclosing callFunction, whose deferred
		// restore of c.fn would race with a read there.
		fnName := c.fn
		err := c.rt.Parallel(c.th, n, func(th *omp.Thread) error {
			// The master runs the body on the forking goroutine, so it
			// keeps using the forker's arena; workers draw their own.
			// Each member's context comes from (and returns to) the
			// arena that member uses — forked on the member's own
			// goroutine, so no two members touch one free list.
			ar := c.ar
			if th.TID() != 0 {
				ar = getArena()
			}
			child := ar.newThctx()
			child.r, child.p, child.rt, child.th = c.r, c.p, c.rt, th
			child.fn, child.ar = fnName, ar
			child.trace, child.regionTag = c.trace, regionTag
			if c.gate != nil {
				if th.TID() == 0 {
					child.gate = c.gate
				} else {
					child.gate = workerGates[th.TID()-1]
					child.gate.Attach()
				}
			}
			if child.trace && th.TID() != 0 {
				child.tagAcq(forkObj(c.p.Rank(), regionTag))
			}
			_, _, err := child.execBlock(s.Body, e)
			if child.trace && err == nil {
				// The join edge: each member's region history
				// happens-before the parent's post-region steps.
				child.tagRel(joinObj(c.p.Rank(), th.TID(), regionTag))
			}
			if err == nil {
				ar.putThctx(child)
				if th.TID() != 0 {
					putArena(ar)
				}
			}
			return err
		})
		if c.trace && err == nil {
			for tid := 0; tid < teamSize; tid++ {
				c.tagAcq(joinObj(c.p.Rank(), tid, regionTag))
			}
		}
		return false, 0, err

	case *ast.SingleStmt:
		if c.trace {
			// The first-arrival election is decided by arrival order, so
			// arrivals of one single region conflict.
			c.tagSingle(s.RegionID)
		}
		if c.th.Single(s.RegionID) {
			if _, _, err := c.execBlock(s.Body, e); err != nil {
				return false, 0, err
			}
		}
		if !s.Nowait {
			atomic.AddInt64(&c.r.barriers, 1)
			return false, 0, c.barrier()
		}
		return false, 0, nil

	case *ast.MasterStmt:
		if c.th.Master() {
			if _, _, err := c.execBlock(s.Body, e); err != nil {
				return false, 0, err
			}
		}
		return false, 0, nil

	case *ast.CriticalStmt:
		if c.trace {
			// Acquisition order is schedule-dependent: the queue write
			// conflicts across threads. The handoff acquire must wait
			// until entry *returns* — tagged at entry it would land in
			// the blocked event, before the previous holder's release.
			c.tagWrite(c.critQObj(s.Name))
		}
		if err := c.rt.CriticalEnter(c.th, s.Name); err != nil {
			return false, 0, err
		}
		if c.trace {
			c.tagAcq(c.critHObj(s.Name))
		}
		_, _, err := c.execBlock(s.Body, e)
		if c.trace {
			c.tagRel(c.critHObj(s.Name))
		}
		c.rt.CriticalExit(c.th, s.Name)
		return false, 0, err

	case *ast.BarrierStmt:
		atomic.AddInt64(&c.r.barriers, 1)
		return false, 0, c.barrier()

	case *ast.AtomicStmt:
		v, err := c.evalInt(s.Value, e)
		if err != nil {
			return false, 0, err
		}
		// The monitor lock serializes atomic updates process-wide; they
		// never block so this cannot deadlock.
		c.r.world.Monitor().Lock()
		err = c.assign(s.Target, s.Op, v, e)
		c.r.world.Monitor().Unlock()
		return false, 0, err

	case *ast.PforStmt:
		from, err := c.evalInt(s.From, e)
		if err != nil {
			return false, 0, err
		}
		to, err := c.evalInt(s.To, e)
		if err != nil {
			return false, 0, err
		}
		var loop *omp.ForLoop
		dynamic := s.Sched == ast.ScheduleDynamic
		if dynamic {
			loop = c.th.DynamicFor(s.RegionID, from, to)
		} else {
			loop = c.th.StaticFor(s.RegionID, from, to)
		}
		loopEnv := c.newEnv(e)
		c.declare(loopEnv, s.Var, scalar(0))
		cellVar := loopEnv.lookup(s.Var)
		for {
			if c.trace && dynamic {
				// Dynamic chunk claiming is arrival-order dependent;
				// static partitioning is a pure function of (tid, bounds).
				c.tagDynNext(s.RegionID)
			}
			i, ok := loop.Next()
			if !ok {
				break
			}
			cellVar.store(scalar(i))
			if _, _, err := c.execBlock(s.Body, loopEnv); err != nil {
				return false, 0, err
			}
			if err := c.step(s.PforPos); err != nil {
				return false, 0, err
			}
		}
		c.releaseEnv(loopEnv)
		if !s.Nowait {
			atomic.AddInt64(&c.r.barriers, 1)
			return false, 0, c.barrier()
		}
		return false, 0, nil

	case *ast.SectionsStmt:
		for _, idx := range c.th.Sections(s.RegionID, len(s.Bodies)) {
			if _, _, err := c.execBlock(s.Bodies[idx], e); err != nil {
				return false, 0, err
			}
		}
		if !s.Nowait {
			atomic.AddInt64(&c.r.barriers, 1)
			return false, 0, c.barrier()
		}
		return false, 0, nil

	case *ast.InstrCC:
		return false, 0, c.execCC(s.OpName(), s.At, s.Once)

	case *ast.InstrCCReturn:
		return false, 0, c.execCC("return:"+c.fn, s.At, s.Once)

	case *ast.InstrPhaseCount:
		if c.trace {
			c.tagVerifier()
		}
		return false, 0, c.r.ver.PhaseCount(c.p, c.th, s.NodeID, s.CollKind.String(), s.At)

	case *ast.InstrMonoCheck:
		c.r.ver.MonoCheck(c.th, s.RegionID)
		return false, 0, nil

	case *ast.InstrConcNote:
		if s.Enter {
			c.r.ver.ConcEnter(c.p, c.th, s.RegionID)
		} else {
			c.r.ver.ConcExit(c.p, c.th, s.RegionID)
		}
		return false, 0, nil
	}
	return false, 0, c.errf(s.Pos(), "unhandled statement %T", s)
}

// execCC runs a process-level CC agreement. At sites every team thread
// reaches (once == true) only the master announces — the execute-once
// semantics standing in for the paper's single-wrapped check. Sites inside
// single/master/section bodies are executed by exactly one thread already
// and must not be filtered (the elected thread need not be the master).
func (c *thctx) execCC(op string, at source.Pos, once bool) error {
	if once && c.th.Team().Size() > 1 && !c.th.Master() {
		return nil
	}
	var ccK uint64
	if c.trace {
		ccK = c.tagCCEntry()
	}
	err := c.r.ver.CC(c.p, op, at)
	if err != nil {
		return err
	}
	if c.trace {
		c.tagCCDone(ccK)
	}
	return nil
}

func (c *thctx) assign(lv ast.LValue, op ast.AssignOp, v int64, e *env) error {
	apply := func(old int64) int64 {
		switch op {
		case ast.AssignAdd:
			return old + v
		case ast.AssignSub:
			return old - v
		}
		return v
	}
	switch lv := lv.(type) {
	case *ast.VarRef:
		cl := e.lookup(lv.Name)
		if cl == nil {
			return c.errf(lv.NamePos, "undefined variable %q", lv.Name)
		}
		if c.trace {
			c.tagWrite(cellObj(cl))
		}
		cl.mu.Lock()
		if cl.v.arr != nil {
			cl.mu.Unlock()
			return c.errf(lv.NamePos, "array %q used as a scalar", lv.Name)
		}
		cl.v = scalar(apply(cl.v.i))
		cl.mu.Unlock()
		return nil
	case *ast.IndexExpr:
		cl := e.lookup(lv.Name)
		if cl == nil {
			return c.errf(lv.NamePos, "undefined variable %q", lv.Name)
		}
		idx, err := c.evalInt(lv.Index, e)
		if err != nil {
			return err
		}
		v := cl.load()
		if v.arr == nil {
			return c.errf(lv.NamePos, "scalar %q indexed like an array", lv.Name)
		}
		if idx < 0 || idx >= int64(len(v.arr)) {
			return c.errf(lv.NamePos, "index %d out of range for %q (len %d)", idx, lv.Name, len(v.arr))
		}
		if c.trace {
			c.tagWrite(elemObj(v, idx))
		}
		atomic.StoreInt64(&v.arr[idx], apply(atomic.LoadInt64(&v.arr[idx])))
		return nil
	}
	return c.errf(lv.Pos(), "bad assignment target")
}

//
// Expressions
//

func (c *thctx) evalInt(ex ast.Expr, e *env) (int64, error) {
	v, err := c.evalExpr(ex, e)
	if err != nil {
		return 0, err
	}
	if v.arr != nil {
		return 0, c.errf(ex.Pos(), "array used as a scalar value")
	}
	return v.i, nil
}

func (c *thctx) evalExpr(ex ast.Expr, e *env) (value, error) {
	switch ex := ex.(type) {
	case *ast.IntLit:
		return scalar(ex.Value), nil
	case *ast.BoolLit:
		if ex.Value {
			return scalar(1), nil
		}
		return scalar(0), nil
	case *ast.VarRef:
		cl := e.lookup(ex.Name)
		if cl == nil {
			return value{}, c.errf(ex.NamePos, "undefined variable %q", ex.Name)
		}
		if c.trace {
			c.tagRead(cellObj(cl))
		}
		return cl.load(), nil
	case *ast.IndexExpr:
		cl := e.lookup(ex.Name)
		if cl == nil {
			return value{}, c.errf(ex.NamePos, "undefined variable %q", ex.Name)
		}
		idx, err := c.evalInt(ex.Index, e)
		if err != nil {
			return value{}, err
		}
		v := cl.load()
		if v.arr == nil {
			return value{}, c.errf(ex.NamePos, "scalar %q indexed like an array", ex.Name)
		}
		if idx < 0 || idx >= int64(len(v.arr)) {
			return value{}, c.errf(ex.NamePos, "index %d out of range for %q (len %d)", idx, ex.Name, len(v.arr))
		}
		if c.trace {
			c.tagRead(elemObj(v, idx))
		}
		return scalar(atomic.LoadInt64(&v.arr[idx])), nil
	case *ast.UnaryExpr:
		v, err := c.evalInt(ex.X, e)
		if err != nil {
			return value{}, err
		}
		if ex.Op == token.Not {
			if v == 0 {
				return scalar(1), nil
			}
			return scalar(0), nil
		}
		return scalar(-v), nil
	case *ast.BinaryExpr:
		return c.evalBinary(ex, e)
	case *ast.CallExpr:
		return c.evalCall(ex, e)
	}
	return value{}, c.errf(ex.Pos(), "unhandled expression %T", ex)
}

func boolVal(b bool) value {
	if b {
		return scalar(1)
	}
	return scalar(0)
}

func (c *thctx) evalBinary(ex *ast.BinaryExpr, e *env) (value, error) {
	// Short-circuit logical operators.
	if ex.Op == token.AndAnd || ex.Op == token.OrOr {
		x, err := c.evalInt(ex.X, e)
		if err != nil {
			return value{}, err
		}
		if ex.Op == token.AndAnd && x == 0 {
			return scalar(0), nil
		}
		if ex.Op == token.OrOr && x != 0 {
			return scalar(1), nil
		}
		y, err := c.evalInt(ex.Y, e)
		if err != nil {
			return value{}, err
		}
		return boolVal(y != 0), nil
	}
	x, err := c.evalInt(ex.X, e)
	if err != nil {
		return value{}, err
	}
	y, err := c.evalInt(ex.Y, e)
	if err != nil {
		return value{}, err
	}
	switch ex.Op {
	case token.Plus:
		return scalar(x + y), nil
	case token.Minus:
		return scalar(x - y), nil
	case token.Star:
		return scalar(x * y), nil
	case token.Slash:
		if y == 0 {
			return value{}, c.errf(ex.OpPos, "division by zero")
		}
		return scalar(x / y), nil
	case token.Percent:
		if y == 0 {
			return value{}, c.errf(ex.OpPos, "modulo by zero")
		}
		return scalar(x % y), nil
	case token.Eq:
		return boolVal(x == y), nil
	case token.NotEq:
		return boolVal(x != y), nil
	case token.Lt:
		return boolVal(x < y), nil
	case token.LtEq:
		return boolVal(x <= y), nil
	case token.Gt:
		return boolVal(x > y), nil
	case token.GtEq:
		return boolVal(x >= y), nil
	}
	return value{}, c.errf(ex.OpPos, "unhandled operator %s", ex.Op)
}

func (c *thctx) evalCall(ex *ast.CallExpr, e *env) (value, error) {
	switch ex.Name {
	case "rank":
		return scalar(int64(c.p.Rank())), nil
	case "size":
		return scalar(int64(c.p.Size())), nil
	case "tid":
		return scalar(int64(c.th.TID())), nil
	case "nthreads":
		return scalar(int64(c.th.Team().Size())), nil
	case "len":
		if len(ex.Args) != 1 {
			return value{}, c.errf(ex.NamePos, "len expects 1 argument")
		}
		v, err := c.evalExpr(ex.Args[0], e)
		if err != nil {
			return value{}, err
		}
		if v.arr == nil {
			return value{}, c.errf(ex.NamePos, "len of a non-array")
		}
		return scalar(int64(len(v.arr))), nil
	case "abs":
		v, err := c.evalInt(ex.Args[0], e)
		if err != nil {
			return value{}, err
		}
		if v < 0 {
			v = -v
		}
		return scalar(v), nil
	case "min", "max":
		if len(ex.Args) != 2 {
			return value{}, c.errf(ex.NamePos, "%s expects 2 arguments", ex.Name)
		}
		a, err := c.evalInt(ex.Args[0], e)
		if err != nil {
			return value{}, err
		}
		b, err := c.evalInt(ex.Args[1], e)
		if err != nil {
			return value{}, err
		}
		if (ex.Name == "min") == (a < b) {
			return scalar(a), nil
		}
		return scalar(b), nil
	}
	fn := c.r.prog.Func(ex.Name)
	if fn == nil {
		return value{}, c.errf(ex.NamePos, "call to undefined function %q", ex.Name)
	}
	// Evaluate arguments onto the arena's scratch stack; callFunction
	// copies them into parameter cells, so the slice is dead after the
	// call and the stack truncates back for the caller's frame. Nested
	// calls inside argument expressions push and pop deeper segments —
	// a realloc by an inner call leaves this frame's earlier snapshot
	// intact, and the final args slice is taken only after the last
	// append.
	off := len(c.ar.vals)
	for _, a := range ex.Args {
		v, err := c.evalExpr(a, e)
		if err != nil {
			c.ar.vals = c.ar.vals[:off]
			return value{}, err
		}
		c.ar.vals = append(c.ar.vals, v)
	}
	args := c.ar.vals[off:]
	ret, err := c.callFunction(fn, args, ex.NamePos)
	c.ar.vals = c.ar.vals[:off]
	return scalar(ret), err
}

//
// MPI statement execution
//

func (c *thctx) execMPI(s *ast.MPIStmt, e *env) error {
	loc := s.KindPos.String()
	tid := c.th.ID()
	if c.trace {
		// Same-rank MPI call order is semantically visible (sequencing
		// rules, concurrent-call detection), so every call writes its
		// rank's call slot; cross-rank order stays free to commute.
		c.tagMPIEntry()
	}

	evalOr := func(ex ast.Expr, def int64) (int64, error) {
		if ex == nil {
			return def, nil
		}
		return c.evalInt(ex, e)
	}

	switch s.Kind {
	case ast.MPIInit:
		return c.p.Init(tid)
	case ast.MPIFinalize:
		return c.p.Finalize(tid)
	case ast.MPISend:
		v, err := c.evalInt(s.Src, e)
		if err != nil {
			return err
		}
		dest, err := c.evalInt(s.Dest, e)
		if err != nil {
			return err
		}
		tag, err := evalOr(s.Tag, 0)
		if err != nil {
			return err
		}
		if c.trace {
			c.tagSend(int(dest), int(tag))
		}
		atomic.AddInt64(&c.r.p2p, 1)
		return c.p.Send(tid, v, int(dest), int(tag), loc)
	case ast.MPIRecv:
		src, err := c.evalInt(s.Dest, e)
		if err != nil {
			return err
		}
		tag, err := evalOr(s.Tag, 0)
		if err != nil {
			return err
		}
		var sendEP monitor.Obj
		var matchK uint64
		if c.trace {
			sendEP, matchK = c.tagRecvEntry(int(src), int(tag))
		}
		atomic.AddInt64(&c.r.p2p, 1)
		v, err := c.p.Recv(tid, int(src), int(tag), loc)
		if err != nil {
			return err
		}
		if c.trace {
			// The acquire lands in the post-return event, after the
			// matching send's release in trace order.
			c.tagRecvDone(sendEP, matchK)
		}
		return c.assign(s.Dst, ast.AssignSet, v, e)
	}

	// Collectives.
	op, err := collOp(s.Kind)
	if err != nil {
		return c.errf(s.KindPos, "%v", err)
	}
	red, err := mpi.ParseRedOp(s.OpName)
	if err != nil {
		return c.errf(s.KindPos, "%v", err)
	}
	root64, err := evalOr(s.Root, 0)
	if err != nil {
		return err
	}
	root := int(root64)

	var contribValue int64
	var contribVector, liveVector []int64
	switch s.Kind {
	case ast.MPIBarrier:
	case ast.MPIBcast:
		v, err := c.lvalueValue(s.Dst, e)
		if err != nil {
			return err
		}
		contribValue = v
	case ast.MPIReduce, ast.MPIAllreduce, ast.MPIScan, ast.MPIGather, ast.MPIAllgather:
		v, err := c.evalInt(s.Src, e)
		if err != nil {
			return err
		}
		contribValue = v
	case ast.MPIScatter, ast.MPIAlltoall:
		arr, live, err := c.arrayValue(s.Src, e)
		if err != nil {
			return err
		}
		contribVector, liveVector = arr, live
	}

	var collK uint64
	if c.trace {
		collK = c.tagCollEntry()
	}
	atomic.AddInt64(&c.r.collectives, 1)
	outV, outVec, err := c.p.CollectiveLive(tid, op, red, root, contribValue, contribVector, liveVector, loc)
	if err != nil {
		return err
	}
	if c.trace {
		// The completed rendezvous ordered this thread behind every
		// rank's arrival of round collK.
		c.tagCollDone(collK)
	}

	switch s.Kind {
	case ast.MPIBarrier:
		return nil
	case ast.MPIBcast, ast.MPIAllreduce, ast.MPIScan, ast.MPIScatter:
		return c.assign(s.Dst, ast.AssignSet, outV, e)
	case ast.MPIReduce:
		if c.p.Rank() == root {
			return c.assign(s.Dst, ast.AssignSet, outV, e)
		}
		return nil
	case ast.MPIGather:
		if c.p.Rank() == root {
			return c.storeVector(s.Dst, outVec, e)
		}
		return nil
	case ast.MPIAllgather, ast.MPIAlltoall:
		return c.storeVector(s.Dst, outVec, e)
	}
	return nil
}

func collOp(k ast.MPIKind) (mpi.Op, error) {
	switch k {
	case ast.MPIBarrier:
		return mpi.OpBarrier, nil
	case ast.MPIBcast:
		return mpi.OpBcast, nil
	case ast.MPIReduce:
		return mpi.OpReduce, nil
	case ast.MPIAllreduce:
		return mpi.OpAllreduce, nil
	case ast.MPIGather:
		return mpi.OpGather, nil
	case ast.MPIAllgather:
		return mpi.OpAllgather, nil
	case ast.MPIScatter:
		return mpi.OpScatter, nil
	case ast.MPIAlltoall:
		return mpi.OpAlltoall, nil
	case ast.MPIScan:
		return mpi.OpScan, nil
	}
	return 0, fmt.Errorf("not a collective: %v", k)
}

// lvalueValue reads the current scalar value of an lvalue (Bcast source).
func (c *thctx) lvalueValue(lv ast.LValue, e *env) (int64, error) {
	v, err := c.evalExpr(lv, e)
	if err != nil {
		return 0, err
	}
	if v.arr != nil {
		return 0, c.errf(lv.Pos(), "array used where a scalar is needed")
	}
	return v.i, nil
}

// arrayValue snapshots the named array (Scatter/Alltoall contribution)
// and also returns the live backing array, which the value oracle
// re-reads at match time to detect a source torn by a concurrent write.
func (c *thctx) arrayValue(ex ast.Expr, e *env) (snapshot, live []int64, err error) {
	v, err := c.evalExpr(ex, e)
	if err != nil {
		return nil, nil, err
	}
	if v.arr == nil {
		return nil, nil, c.errf(ex.Pos(), "array expected")
	}
	if c.trace {
		// The snapshot feeds a collective result, so every element read
		// is verdict-visible and must participate in conflict detection.
		for i := range v.arr {
			c.tagRead(elemObj(v, int64(i)))
		}
	}
	// Snapshot: the MPI layer reads the vector outside any cell lock,
	// possibly while another simulated thread writes elements.
	return snapshotArr(v.arr), v.arr, nil
}

// storeVector copies a collective's vector result into the destination
// array (up to its length).
func (c *thctx) storeVector(lv ast.LValue, vec []int64, e *env) error {
	ref, ok := lv.(*ast.VarRef)
	if !ok {
		return c.errf(lv.Pos(), "vector destination must be an array variable")
	}
	cl := e.lookup(ref.Name)
	if cl == nil {
		return c.errf(ref.NamePos, "undefined variable %q", ref.Name)
	}
	v := cl.load()
	if v.arr == nil {
		return c.errf(ref.NamePos, "vector destination %q must be an array", ref.Name)
	}
	for i := 0; i < len(v.arr) && i < len(vec); i++ {
		if c.trace {
			c.tagWrite(elemObj(v, int64(i)))
		}
		atomic.StoreInt64(&v.arr[i], vec[i])
	}
	return nil
}
