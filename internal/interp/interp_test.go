package interp

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"parcoach/internal/ast"
	"parcoach/internal/core"
	"parcoach/internal/instrument"
	"parcoach/internal/monitor"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/parser"
	"parcoach/internal/sem"
	"parcoach/internal/verifier"
)

// compile parses and checks.
func compile(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("t.mh", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sem.Check(prog); err != nil {
		t.Fatalf("sem: %v", err)
	}
	return prog
}

// instrumented compiles, analyses and instruments.
func instrumented(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog := compile(t, src)
	res := core.Analyze(prog, core.Options{})
	return instrument.Program(prog, res)
}

func runSrc(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	return Run(compile(t, src), opts)
}

func sortedLines(out string) []string {
	lines := strings.Split(strings.TrimSpace(out), "\n")
	sort.Strings(lines)
	return lines
}

func TestHelloRanks(t *testing.T) {
	res := runSrc(t, `
func main() {
	MPI_Init()
	print(rank(), size())
	MPI_Finalize()
}`, Options{Procs: 3})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	got := sortedLines(res.Output)
	want := []string{"r0: 0 3", "r1: 1 3", "r2: 2 3"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	res := runSrc(t, `
func fib(n) {
	if n < 2 { return n }
	return fib(n - 1) + fib(n - 2)
}
func main() {
	var total = 0
	for i = 0 .. 10 {
		total += fib(i)
	}
	var j = 0
	while j < 3 {
		total -= 1
		j += 1
	}
	print(total, fib(10), max(3, 7), min(3, 7), abs(-4), 17 % 5, 17 / 5)
	print(1 < 2, 2 <= 2, 3 > 4, 3 >= 4, 1 == 1, 1 != 1, !true, -(-5))
	print(true && false, true || false, false || false)
}`, Options{Procs: 1})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	want := "r0: 85 55 7 3 4 2 3\nr0: 1 1 0 0 1 0 0 5\nr0: 0 1 0\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestArraysAndIntrinsics(t *testing.T) {
	res := runSrc(t, `
func fill(a, n) {
	for i = 0 .. n {
		a[i] = i * i
	}
	return 0
}
func main() {
	var a[5]
	fill(a, len(a))
	print(a[0], a[2], a[4], len(a))
	a[1] += 10
	a[1] -= 3
	print(a)
}`, Options{Procs: 1})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	want := "r0: 0 4 16 5\nr0: [0 8 4 9 16]\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestCollectivesEndToEnd(t *testing.T) {
	res := runSrc(t, `
func main() {
	MPI_Init()
	var x = rank() + 1
	var total = 0
	MPI_Allreduce(total, x, sum)
	var m = 0
	MPI_Reduce(m, x, max, 0)
	var b = 0
	if rank() == 0 { b = 42 }
	MPI_Bcast(b, 0)
	var pre = 0
	MPI_Scan(pre, x, sum)
	var g[4]
	MPI_Gather(g, x * 10, 0)
	var ag[4]
	MPI_Allgather(ag, rank())
	var sc = 0
	var parts[4]
	if rank() == 0 {
		for i = 0 .. 4 { parts[i] = 100 + i }
	}
	MPI_Scatter(sc, parts, 0)
	if rank() == 0 {
		print(total, m, b, g)
	}
	print(pre, sc, ag[3])
	MPI_Barrier()
	MPI_Finalize()
}`, Options{Procs: 4})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	out := res.Output
	if !strings.Contains(out, "r0: 10 4 42 [10 20 30 40]") {
		t.Errorf("root results wrong:\n%s", out)
	}
	for _, want := range []string{"r0: 1 100 3", "r1: 3 101 3", "r2: 6 102 3", "r3: 10 103 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// 8 collectives per rank (allreduce, reduce, bcast, scan, gather,
	// allgather, scatter, barrier) across 4 ranks.
	if res.Stats.Collectives != 4*8 {
		t.Errorf("collective count = %d, want 32", res.Stats.Collectives)
	}
}

func TestAlltoall(t *testing.T) {
	res := runSrc(t, `
func main() {
	MPI_Init()
	var src[3]
	for i = 0 .. 3 {
		src[i] = rank() * 10 + i
	}
	var dst[3]
	MPI_Alltoall(dst, src)
	print(dst)
	MPI_Finalize()
}`, Options{Procs: 3})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	for _, want := range []string{"r0: [0 10 20]", "r1: [1 11 21]", "r2: [2 12 22]"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("missing %q:\n%s", want, res.Output)
		}
	}
}

func TestSendRecvHalo(t *testing.T) {
	res := runSrc(t, `
func main() {
	MPI_Init()
	var left = rank() - 1
	var right = rank() + 1
	var v = 0
	if rank() % 2 == 0 {
		if right < size() {
			MPI_Send(rank() * 100, right, 1)
		}
		if left >= 0 {
			MPI_Recv(v, left, 1)
		}
	} else {
		if left >= 0 {
			MPI_Recv(v, left, 1)
		}
		if right < size() {
			MPI_Send(rank() * 100, right, 1)
		}
	}
	print(v)
	MPI_Finalize()
}`, Options{Procs: 4})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	for _, want := range []string{"r0: 0", "r1: 0", "r2: 100", "r3: 200"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("missing %q:\n%s", want, res.Output)
		}
	}
	if res.Stats.P2PMessages == 0 {
		t.Error("p2p stats not counted")
	}
}

func TestParallelSharedAndPrivate(t *testing.T) {
	res := runSrc(t, `
func main() {
	var shared = 0
	parallel num_threads(4) {
		var private = tid()
		atomic shared += private + 1
	}
	print(shared)
}`, Options{Procs: 1})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !strings.Contains(res.Output, "r0: 10") {
		t.Errorf("shared sum wrong: %s", res.Output)
	}
}

func TestPforStaticAndDynamic(t *testing.T) {
	res := runSrc(t, `
func main() {
	var a[64]
	var b[64]
	parallel num_threads(4) {
		pfor i = 0 .. 64 {
			a[i] = i * 2
		}
		pfor schedule(dynamic) i = 0 .. 64 {
			b[i] = a[i] + 1
		}
	}
	var sa = 0
	var sb = 0
	for i = 0 .. 64 {
		sa += a[i]
		sb += b[i]
	}
	print(sa, sb)
}`, Options{Procs: 1})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !strings.Contains(res.Output, "r0: 4032 4096") {
		t.Errorf("worksharing results wrong: %s", res.Output)
	}
}

func TestSingleMasterSections(t *testing.T) {
	res := runSrc(t, `
func main() {
	var s = 0
	var m = 0
	var sec = 0
	parallel num_threads(4) {
		single {
			s += 1
		}
		master {
			m += 1
		}
		barrier
		sections {
			section { atomic sec += 10 }
			section { atomic sec += 100 }
		}
	}
	print(s, m, sec)
}`, Options{Procs: 1})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !strings.Contains(res.Output, "r0: 1 1 110") {
		t.Errorf("construct semantics wrong: %s", res.Output)
	}
	if res.Stats.Barriers == 0 {
		t.Error("barrier stats missing")
	}
}

func TestCriticalProtectsUpdates(t *testing.T) {
	res := runSrc(t, `
func main() {
	var c = 0
	parallel num_threads(8) {
		for i = 0 .. 20 {
			critical {
				c += 1
			}
		}
	}
	print(c)
}`, Options{Procs: 1})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !strings.Contains(res.Output, "r0: 160") {
		t.Errorf("critical lost updates: %s", res.Output)
	}
}

func TestNestedParallelTeams(t *testing.T) {
	res := runSrc(t, `
func main() {
	var c = 0
	parallel num_threads(2) {
		parallel num_threads(3) {
			atomic c += 1
		}
	}
	print(c)
}`, Options{Procs: 1})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !strings.Contains(res.Output, "r0: 6") {
		t.Errorf("nested teams wrong: %s", res.Output)
	}
}

func TestHybridCleanProgram(t *testing.T) {
	res := runSrc(t, `
func main() {
	MPI_Init()
	var local = 0
	parallel num_threads(4) {
		pfor i = 0 .. 32 {
			atomic local += i
		}
		single {
			MPI_Allreduce(local, local, sum)
		}
	}
	print(local)
	MPI_Finalize()
}`, Options{Procs: 3})
	if res.Err != nil {
		t.Fatalf("hybrid run failed: %v", res.Err)
	}
	// sum 0..31 = 496 per rank; allreduce over 3 ranks = 1488.
	for _, want := range []string{"r0: 1488", "r1: 1488", "r2: 1488"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("missing %q:\n%s", want, res.Output)
		}
	}
}

//
// Error programs: runtime ground truth (uninstrumented)
//

func TestMismatchedCollectivesDetected(t *testing.T) {
	res := runSrc(t, `
func main() {
	MPI_Init()
	var x = 0
	if rank() == 0 {
		MPI_Bcast(x)
	} else {
		MPI_Reduce(x, x)
	}
	MPI_Finalize()
}`, Options{Procs: 2})
	var mm *mpi.MismatchError
	if !errors.As(res.Err, &mm) {
		t.Fatalf("want MismatchError, got %v", res.Err)
	}
}

func TestMissingCollectiveDeadlocks(t *testing.T) {
	res := runSrc(t, `
func main() {
	MPI_Init()
	if rank() == 0 {
		MPI_Barrier()
	}
	MPI_Finalize()
}`, Options{Procs: 2})
	// Rank 1 reaches Finalize (or exits) while rank 0 waits: deadlock.
	var d *monitor.DeadlockError
	if !errors.As(res.Err, &d) {
		t.Fatalf("want DeadlockError, got %v", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "MPI_Barrier") {
		t.Errorf("report must name the pending collective: %v", res.Err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"div-zero", "func main() { var x = 1 / (rank() * 0) }", "division by zero"},
		{"mod-zero", "func main() { var x = 1 % (rank() * 0) }", "modulo by zero"},
		{"index-oob", "func main() { var a[3]\na[5] = 1 }", "out of range"},
		{"neg-size", "func main() { var a[0 - 2] }", "invalid array size"},
		{"no-main", "func other() { }", "no main function"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			prog, err := parser.Parse("t.mh", tt.src)
			if err != nil {
				t.Fatal(err)
			}
			res := Run(prog, Options{Procs: 1})
			if res.Err == nil || !strings.Contains(res.Err.Error(), tt.want) {
				t.Errorf("want %q error, got %v", tt.want, res.Err)
			}
		})
	}
}

func TestStepLimitStopsRunaway(t *testing.T) {
	res := runSrc(t, `
func main() {
	var x = 1
	while x > 0 {
		x += 1
	}
}`, Options{Procs: 1, MaxSteps: 10_000})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "step budget exhausted") {
		t.Fatalf("want step-budget error, got %v", res.Err)
	}
	var sl *StepLimitError
	if !errors.As(res.Err, &sl) || sl.Limit != 10_000 {
		t.Fatalf("want *StepLimitError with limit 10000, got %#v", res.Err)
	}
	// The budget overrun is its own outcome class: bounded schedule
	// exploration must not confuse a spinning interleaving with a
	// deadlock or a plain runtime error.
	if got := res.Outcome(); got != OutcomeBudget {
		t.Fatalf("outcome = %v, want %v", got, OutcomeBudget)
	}
}

func TestExitValues(t *testing.T) {
	res := runSrc(t, "func main() { return rank() * 10 }", Options{Procs: 3})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for r, v := range res.ExitValues {
		if v != int64(r*10) {
			t.Errorf("rank %d exit = %d", r, v)
		}
	}
}

//
// Instrumented runs: the paper's dynamic validation
//

func TestCCCatchesMismatchBeforeDeadlock(t *testing.T) {
	prog := instrumented(t, `
func main() {
	MPI_Init()
	var x = 0
	if rank() == 0 {
		MPI_Bcast(x)
	} else {
		MPI_Reduce(x, x)
	}
	MPI_Finalize()
}`)
	res := Run(prog, Options{Procs: 2})
	var ve *verifier.Error
	if !errors.As(res.Err, &ve) {
		t.Fatalf("want verifier.Error, got %v", res.Err)
	}
	if ve.Kind != verifier.ErrCollectiveMismatch {
		t.Errorf("kind = %v", ve.Kind)
	}
	if !strings.Contains(ve.Error(), "MPI_Bcast") || !strings.Contains(ve.Error(), "MPI_Reduce") {
		t.Errorf("message must name both collectives: %v", ve)
	}
	// The real collectives never executed: CC stopped the run first.
	if res.Stats.Collectives != 0 {
		t.Errorf("CC must fire before the collective executes, saw %d collectives", res.Stats.Collectives)
	}
}

func TestCCCatchesMissingCollective(t *testing.T) {
	prog := instrumented(t, `
func main() {
	MPI_Init()
	if rank() == 0 {
		MPI_Barrier()
	}
	MPI_Finalize()
}`)
	res := Run(prog, Options{Procs: 2})
	var ve *verifier.Error
	if !errors.As(res.Err, &ve) {
		t.Fatalf("want verifier.Error (CC), got %v", res.Err)
	}
	// Rank 0 announces the barrier while rank 1 announces MPI_Finalize.
	if !strings.Contains(ve.Error(), "MPI_Barrier") || !strings.Contains(ve.Error(), "MPI_Finalize") {
		t.Errorf("message must show the divergent announcements: %v", ve)
	}
}

func TestCCCatchesEarlyReturn(t *testing.T) {
	prog := instrumented(t, `
func main() {
	MPI_Init()
	var x = 0
	if rank() % 2 == 1 {
		return 1
	}
	MPI_Allreduce(x, x, sum)
	MPI_Finalize()
}`)
	res := Run(prog, Options{Procs: 2})
	var ve *verifier.Error
	if !errors.As(res.Err, &ve) || ve.Kind != verifier.ErrCollectiveMismatch {
		t.Fatalf("want CC mismatch on early return, got %v", res.Err)
	}
}

func TestPhaseCountCatchesMultithreadedCollective(t *testing.T) {
	prog := instrumented(t, `
func main() {
	MPI_Init()
	parallel num_threads(4) {
		MPI_Barrier()
	}
	MPI_Finalize()
}`)
	res := Run(prog, Options{Procs: 2})
	var ve *verifier.Error
	if !errors.As(res.Err, &ve) {
		t.Fatalf("want verifier.Error, got %v", res.Err)
	}
	if ve.Kind != verifier.ErrMultithreadedCollective {
		t.Errorf("kind = %v, want multithreaded-collective", ve.Kind)
	}
}

func TestConcurrentSinglesCaughtDeterministically(t *testing.T) {
	// RoundRobin election forces different winners for the two nowait
	// singles, so the concurrent execution is guaranteed to manifest.
	prog := instrumented(t, `
func main() {
	MPI_Init()
	var x = 0
	var y = 0
	parallel num_threads(2) {
		single nowait {
			MPI_Bcast(x)
		}
		single {
			MPI_Reduce(y, y)
		}
	}
	MPI_Finalize()
}`)
	res := Run(prog, Options{Procs: 2, Threads: 2, Policy: omp.RoundRobin})
	var ve *verifier.Error
	if !errors.As(res.Err, &ve) {
		t.Fatalf("want verifier.Error, got %v", res.Err)
	}
	if ve.Kind != verifier.ErrConcurrentCollectives {
		t.Errorf("kind = %v, want concurrent-collectives", ve.Kind)
	}
}

func TestFalsePositiveClearedSingleThreadRegion(t *testing.T) {
	// Statically flagged (collective directly in parallel), but the region
	// runs with one thread: the dynamic check must stay quiet.
	prog := instrumented(t, `
func main() {
	MPI_Init()
	var x = 0
	parallel num_threads(1) {
		MPI_Allreduce(x, x, sum)
	}
	MPI_Finalize()
}`)
	res := Run(prog, Options{Procs: 2})
	if res.Err != nil {
		t.Fatalf("single-thread region must pass: %v", res.Err)
	}
	if res.Stats.PhaseChecks == 0 {
		t.Error("phase checks must have run")
	}
}

func TestFalsePositiveClearedTidGuard(t *testing.T) {
	// Statically multithreaded, dynamically only thread 0 executes.
	prog := instrumented(t, `
func main() {
	MPI_Init()
	var x = 0
	parallel num_threads(4) {
		if tid() == 0 {
			MPI_Allreduce(x, x, sum)
		}
	}
	MPI_Finalize()
}`)
	res := Run(prog, Options{Procs: 2})
	if res.Err != nil {
		t.Fatalf("tid-guarded collective must pass dynamically: %v", res.Err)
	}
}

func TestMasterMasterFalsePositiveCleared(t *testing.T) {
	// Static phase 2 flags master;master, but thread 0 runs both in
	// program order: clean at run time.
	prog := instrumented(t, `
func main() {
	MPI_Init()
	var x = 0
	parallel num_threads(4) {
		master { MPI_Bcast(x) }
		master { MPI_Allreduce(x, x, sum) }
	}
	MPI_Finalize()
}`)
	res := Run(prog, Options{Procs: 2})
	if res.Err != nil {
		t.Fatalf("master/master must pass dynamically: %v", res.Err)
	}
}

func TestBarrierSeparatedSinglesPass(t *testing.T) {
	prog := instrumented(t, `
func main() {
	MPI_Init()
	var x = 0
	var y = 0
	parallel num_threads(4) {
		single { MPI_Bcast(x) }
		single { MPI_Reduce(y, y) }
	}
	MPI_Finalize()
}`)
	res := Run(prog, Options{Procs: 2, Policy: omp.RoundRobin})
	if res.Err != nil {
		t.Fatalf("barrier-separated singles must pass: %v", res.Err)
	}
}

func TestInstrumentedCleanRunMatchesUninstrumented(t *testing.T) {
	src := `
func main() {
	MPI_Init()
	var x = rank()
	for step = 0 .. 5 {
		parallel num_threads(3) {
			pfor i = 0 .. 12 {
				atomic x += 1
			}
			single {
				MPI_Allreduce(x, x, sum)
			}
		}
	}
	print(x)
	MPI_Finalize()
}`
	plain := Run(compile(t, src), Options{Procs: 2})
	inst := Run(instrumented(t, src), Options{Procs: 2})
	if plain.Err != nil || inst.Err != nil {
		t.Fatalf("runs failed: %v / %v", plain.Err, inst.Err)
	}
	// Line order across ranks is scheduling-dependent; compare sorted.
	a, b := sortedLines(plain.Output), sortedLines(inst.Output)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("instrumentation changed program results:\n%s\nvs\n%s", plain.Output, inst.Output)
	}
}

func TestThreadLevelEnforcement(t *testing.T) {
	// Under SERIALIZED, two threads in simultaneous MPI calls is a usage
	// error. A self-rendezvous forces the overlap deterministically:
	// whichever thread enters first blocks inside MPI until the other
	// thread makes its (violating) call.
	src := `
func main() {
	MPI_Init()
	var v = 0
	parallel num_threads(2) {
		if tid() == 0 {
			MPI_Recv(v, 0, 5)
		} else {
			MPI_Send(9, 0, 5)
		}
	}
	MPI_Finalize()
}`
	res := Run(compile(t, src), Options{Procs: 1, Level: mpi.ThreadSerialized, LevelSet: true})
	var ue *mpi.UsageError
	if !errors.As(res.Err, &ue) {
		t.Fatalf("want UsageError under SERIALIZED, got %v", res.Err)
	}
	// The same program is legal under MULTIPLE.
	res2 := Run(compile(t, src), Options{Procs: 1, Level: mpi.ThreadMultiple, LevelSet: true})
	if res2.Err != nil {
		t.Fatalf("MULTIPLE must allow the overlap: %v", res2.Err)
	}
}

func TestStatsPopulated(t *testing.T) {
	res := runSrc(t, `
func main() {
	MPI_Init()
	MPI_Barrier()
	parallel num_threads(2) {
		barrier
	}
	MPI_Finalize()
}`, Options{Procs: 2})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.Collectives != 2 || res.Stats.Barriers == 0 || res.Stats.Steps == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}
