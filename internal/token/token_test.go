package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	tests := map[string]Kind{
		"func": Func, "var": Var, "if": If, "else": Else, "for": For,
		"while": While, "return": Return, "print": Print,
		"parallel": Parallel, "single": Single, "master": Master,
		"critical": Critical, "barrier": Barrier, "atomic": Atomic,
		"pfor": Pfor, "sections": Sections, "section": Section,
		"nowait": Nowait, "num_threads": NumThreads, "schedule": Schedule,
		"true": True, "false": False,
		"x": Ident, "MPI_Barrier": Ident, "funcs": Ident, "Parallel": Ident,
	}
	for lit, want := range tests {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	for _, k := range []Kind{Func, Var, Parallel, Schedule} {
		if !k.IsKeyword() {
			t.Errorf("%v.IsKeyword() = false", k)
		}
	}
	for _, k := range []Kind{Ident, Int, Plus, EOF, Illegal} {
		if k.IsKeyword() {
			t.Errorf("%v.IsKeyword() = true", k)
		}
	}
}

func TestKindString(t *testing.T) {
	if Plus.String() != "+" || Func.String() != "func" || EOF.String() != "eof" {
		t.Error("Kind.String mismatches")
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestTokenString(t *testing.T) {
	if got := (Token{Kind: Ident, Lit: "abc"}).String(); got != `identifier "abc"` {
		t.Errorf("Token.String = %q", got)
	}
	if got := (Token{Kind: Plus}).String(); got != "+" {
		t.Errorf("Token.String = %q", got)
	}
}

func TestPrecedence(t *testing.T) {
	ordered := [][]Kind{
		{OrOr}, {AndAnd}, {Eq, NotEq, Lt, LtEq, Gt, GtEq}, {Plus, Minus}, {Star, Slash, Percent},
	}
	for level, ks := range ordered {
		for _, k := range ks {
			if got := k.Precedence(); got != level+1 {
				t.Errorf("%v.Precedence() = %d, want %d", k, got, level+1)
			}
		}
	}
	for _, k := range []Kind{Assign, LParen, Ident, Not} {
		if k.Precedence() != 0 {
			t.Errorf("%v.Precedence() must be 0", k)
		}
	}
}
