// Package token defines the lexical tokens of the MiniHybrid language, the
// small MPI+OpenMP-shaped language this repository analyses. MiniHybrid
// stands in for the C/Fortran + pragma input of the original PARCOACH tool:
// it has functions, structured control flow, MPI collective and
// point-to-point statements, and fork/join threading constructs with
// perfectly nested regions, which is exactly the model the paper assumes.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds. Keyword kinds occupy the range (keywordBeg, keywordEnd).
const (
	Illegal Kind = iota
	EOF
	Comment

	// Literals and identifiers.
	Ident // x, compute_rhs
	Int   // 12345

	// Operators and delimiters.
	Assign   // =
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	Eq       // ==
	NotEq    // !=
	Lt       // <
	LtEq     // <=
	Gt       // >
	GtEq     // >=
	AndAnd   // &&
	OrOr     // ||
	Not      // !
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Comma    // ,
	Semi     // ;
	DotDot   // ..
	PlusEq   // +=
	MinusEq  // -=

	keywordBeg
	// Declarations and control flow.
	Func
	Var
	If
	Else
	For
	While
	Return
	Print
	True
	False

	// OpenMP-like constructs (explicit fork/join, perfectly nested).
	Parallel
	Single
	Master
	Critical
	Barrier
	Atomic
	Pfor
	Sections
	Section
	Nowait
	NumThreads
	Schedule
	keywordEnd
)

var kindNames = map[Kind]string{
	Illegal:    "illegal",
	EOF:        "eof",
	Comment:    "comment",
	Ident:      "identifier",
	Int:        "int literal",
	Assign:     "=",
	Plus:       "+",
	Minus:      "-",
	Star:       "*",
	Slash:      "/",
	Percent:    "%",
	Eq:         "==",
	NotEq:      "!=",
	Lt:         "<",
	LtEq:       "<=",
	Gt:         ">",
	GtEq:       ">=",
	AndAnd:     "&&",
	OrOr:       "||",
	Not:        "!",
	LParen:     "(",
	RParen:     ")",
	LBrace:     "{",
	RBrace:     "}",
	LBracket:   "[",
	RBracket:   "]",
	Comma:      ",",
	Semi:       ";",
	DotDot:     "..",
	PlusEq:     "+=",
	MinusEq:    "-=",
	Func:       "func",
	Var:        "var",
	If:         "if",
	Else:       "else",
	For:        "for",
	While:      "while",
	Return:     "return",
	Print:      "print",
	True:       "true",
	False:      "false",
	Parallel:   "parallel",
	Single:     "single",
	Master:     "master",
	Critical:   "critical",
	Barrier:    "barrier",
	Atomic:     "atomic",
	Pfor:       "pfor",
	Sections:   "sections",
	Section:    "section",
	Nowait:     "nowait",
	NumThreads: "num_threads",
	Schedule:   "schedule",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup maps an identifier to its keyword kind, or Ident.
func Lookup(name string) Kind {
	if k, ok := keywords[name]; ok {
		return k
	}
	return Ident
}

// Token is one lexical token with its source offset (resolved to a position
// by the enclosing source.File).
type Token struct {
	Kind   Kind
	Lit    string // literal text for Ident, Int, Comment and Illegal
	Offset int    // byte offset of the first character
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Int, Illegal:
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// Precedence returns the binary operator precedence for the kind
// (higher binds tighter), or 0 if the kind is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Eq, NotEq, Lt, LtEq, Gt, GtEq:
		return 3
	case Plus, Minus:
		return 4
	case Star, Slash, Percent:
		return 5
	}
	return 0
}
