package cfg

import (
	"strings"
	"testing"

	"parcoach/internal/ast"
	"parcoach/internal/parser"
)

func buildMain(t *testing.T, body string) *Graph {
	t.Helper()
	prog, err := parser.Parse("t.mh", "func main() {\n"+body+"\n}")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(prog.Func("main"))
}

func countKind(g *Graph, k NodeKind) int {
	n := 0
	for _, node := range g.Nodes {
		if node.Kind == k {
			n++
		}
	}
	return n
}

// reachable collects ids reachable from entry.
func reachable(g *Graph) map[int]bool {
	seen := map[int]bool{}
	var dfs func(*Node)
	dfs = func(n *Node) {
		if seen[n.ID] {
			return
		}
		seen[n.ID] = true
		for _, s := range n.Succs {
			dfs(s)
		}
	}
	dfs(g.Entry)
	return seen
}

func TestStraightLineMerging(t *testing.T) {
	g := buildMain(t, "var x = 1\nx = 2\nx += 3\nprint(x)")
	if n := countKind(g, KindNormal); n != 1 {
		t.Errorf("straight-line statements must merge into one node, got %d", n)
	}
	if g.Entry.Kind != KindEntry || g.Exit.Kind != KindExit {
		t.Error("entry/exit kinds wrong")
	}
	// Entry -> normal -> exit.
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0].Kind != KindNormal {
		t.Error("entry must link to the merged normal node")
	}
}

func TestCollectiveGetsOwnNode(t *testing.T) {
	g := buildMain(t, "var x = 0\nMPI_Barrier()\nMPI_Bcast(x)\nx = 1")
	colls := g.Collectives()
	if len(colls) != 2 {
		t.Fatalf("want 2 collective nodes, got %d", len(colls))
	}
	if colls[0].Coll.Kind != ast.MPIBarrier || colls[1].Coll.Kind != ast.MPIBcast {
		t.Error("collective kinds wrong")
	}
	for _, c := range colls {
		if len(c.Stmts) != 1 {
			t.Error("collective node must hold exactly its statement")
		}
	}
}

func TestNonCollectiveMPIMerges(t *testing.T) {
	g := buildMain(t, "var x = 0\nMPI_Init()\nMPI_Send(x, 0)\nMPI_Finalize()")
	if n := countKind(g, KindCollective); n != 0 {
		t.Errorf("init/send/finalize are not collective nodes, got %d", n)
	}
}

func TestIfElseShape(t *testing.T) {
	g := buildMain(t, "var x = 0\nif x > 0 { x = 1 } else { x = 2 }\nx = 3")
	if n := countKind(g, KindBranch); n != 1 {
		t.Fatalf("want 1 branch, got %d", n)
	}
	var branch *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			branch = n
		}
	}
	if len(branch.Succs) != 2 {
		t.Errorf("branch must have 2 successors, got %d", len(branch.Succs))
	}
	if branch.Cond == nil {
		t.Error("branch must carry its condition")
	}
}

func TestIfWithoutElseHasFallthrough(t *testing.T) {
	g := buildMain(t, "var x = 0\nif x > 0 { x = 1 }\nx = 3")
	var branch *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			branch = n
		}
	}
	if len(branch.Succs) != 2 {
		t.Errorf("if-without-else branch needs then+merge successors, got %d", len(branch.Succs))
	}
}

func TestLoopBackEdge(t *testing.T) {
	g := buildMain(t, "var x = 0\nfor i = 0 .. 10 { x += i }\nwhile x > 0 { x -= 1 }")
	if n := countKind(g, KindBranch); n != 2 {
		t.Fatalf("want 2 loop headers, got %d", n)
	}
	// Each header must be its own predecessor transitively (back edge).
	for _, n := range g.Nodes {
		if n.Kind != KindBranch {
			continue
		}
		hasBack := false
		for _, p := range n.Preds {
			for _, pp := range p.Preds {
				_ = pp
			}
		}
		// Simpler: one of the header's transitive successors links back.
		seen := map[int]bool{}
		var dfs func(*Node) bool
		dfs = func(m *Node) bool {
			if seen[m.ID] {
				return false
			}
			seen[m.ID] = true
			for _, s := range m.Succs {
				if s == n || dfs(s) {
					return true
				}
			}
			return false
		}
		for _, s := range n.Succs {
			if dfs(s) {
				hasBack = true
			}
		}
		if !hasBack {
			t.Errorf("loop header %s has no back edge", n)
		}
	}
}

func TestReturnLinksToExit(t *testing.T) {
	g := buildMain(t, "var x = 0\nif x > 0 { return }\nx = 1")
	found := false
	for _, p := range g.Exit.Preds {
		for _, s := range p.Stmts {
			if _, ok := s.(*ast.Return); ok {
				found = true
			}
		}
	}
	if !found {
		t.Error("return node must be a predecessor of exit")
	}
}

func TestUnreachableAfterReturnStillBuilt(t *testing.T) {
	g := buildMain(t, "return\nMPI_Barrier()")
	if countKind(g, KindCollective) != 1 {
		t.Error("dead collective must still have a node (for diagnostics)")
	}
	r := reachable(g)
	for _, n := range g.Nodes {
		if n.Kind == KindCollective && r[n.ID] {
			t.Error("dead collective must be unreachable from entry")
		}
	}
}

func TestParallelRegionShape(t *testing.T) {
	g := buildMain(t, "parallel { var x = 1 }")
	if countKind(g, KindParallelBegin) != 1 || countKind(g, KindParallelEnd) != 1 {
		t.Fatal("parallel begin/end missing")
	}
	// Implicit join barrier inside the region.
	if countKind(g, KindBarrier) != 1 {
		t.Fatal("parallel join barrier missing")
	}
	var end *Node
	for _, n := range g.Nodes {
		if n.Kind == KindParallelEnd {
			end = n
		}
	}
	if len(end.Preds) != 1 || end.Preds[0].Kind != KindBarrier || !end.Preds[0].Implicit {
		t.Error("parallel end must be preceded by the implicit join barrier")
	}
}

func TestSingleSkipEdgeAndBarrier(t *testing.T) {
	g := buildMain(t, "parallel { single { var x = 1 } }")
	var begin, end *Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindSingleBegin:
			begin = n
		case KindSingleEnd:
			end = n
		}
	}
	if begin == nil || end == nil {
		t.Fatal("single begin/end missing")
	}
	skip := false
	for _, s := range begin.Succs {
		if s == end {
			skip = true
		}
	}
	if !skip {
		t.Error("single must have a skip edge for non-elected threads")
	}
	// single (not nowait) is followed by an implicit barrier.
	if len(end.Succs) != 1 || end.Succs[0].Kind != KindBarrier || !end.Succs[0].Implicit {
		t.Error("single end must flow into an implicit barrier")
	}
}

func TestSingleNowaitHasNoBarrier(t *testing.T) {
	g := buildMain(t, "parallel { single nowait { var x = 1 } }")
	// Only the parallel join barrier remains.
	if n := countKind(g, KindBarrier); n != 1 {
		t.Errorf("nowait single must not add a barrier, got %d barriers", n)
	}
	for _, n := range g.Nodes {
		if n.Kind == KindSingleEnd && !n.Nowait {
			t.Error("single end must record nowait")
		}
	}
}

func TestMasterNoBarrier(t *testing.T) {
	g := buildMain(t, "parallel { master { var x = 1 } }")
	if n := countKind(g, KindBarrier); n != 1 {
		t.Errorf("master must not add a barrier, got %d", n)
	}
	for _, n := range g.Nodes {
		if n.Kind == KindMasterBegin && !n.IsMaster {
			t.Error("master begin must be flagged IsMaster")
		}
	}
}

func TestSectionsShape(t *testing.T) {
	g := buildMain(t, "parallel { sections { section { var x = 1 } section { var y = 2 } } }")
	if countKind(g, KindSectionBegin) != 2 || countKind(g, KindSectionEnd) != 2 {
		t.Fatal("per-section begin/end nodes missing")
	}
	var begin, end *Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindSectionsBegin:
			begin = n
		case KindSectionsEnd:
			end = n
		}
	}
	// begin fans out to both sections plus the skip edge.
	if len(begin.Succs) != 3 {
		t.Errorf("sections begin must have 3 successors (2 sections + skip), got %d", len(begin.Succs))
	}
	if len(end.Succs) != 1 || end.Succs[0].Kind != KindBarrier {
		t.Error("sections end must flow into the implicit barrier")
	}
	// Section region ids differ.
	ids := map[int]bool{}
	for _, n := range g.Nodes {
		if n.Kind == KindSectionBegin {
			ids[n.RegionID] = true
		}
	}
	if len(ids) != 2 {
		t.Error("section region ids must be distinct")
	}
}

func TestPforShape(t *testing.T) {
	g := buildMain(t, "parallel { pfor i = 0 .. 10 { var x = i } }")
	var begin *Node
	for _, n := range g.Nodes {
		if n.Kind == KindPforBegin {
			begin = n
		}
	}
	if begin == nil {
		t.Fatal("pfor begin missing")
	}
	if len(begin.Stmts) != 1 {
		t.Error("pfor begin must carry its statement for bound analysis")
	}
	// pfor (not nowait): barrier follows the end node.
	var end *Node
	for _, n := range g.Nodes {
		if n.Kind == KindPforEnd {
			end = n
		}
	}
	if len(end.Succs) != 1 || end.Succs[0].Kind != KindBarrier {
		t.Error("pfor end must flow into implicit barrier")
	}
	// Loop back edge to begin.
	back := false
	for _, p := range begin.Preds {
		if p != g.Entry && p.Kind != KindParallelBegin {
			back = true
		}
	}
	if !back {
		t.Error("pfor body must loop back to begin")
	}
}

func TestCallNodes(t *testing.T) {
	prog, err := parser.Parse("t.mh", `
func helper() { MPI_Barrier() }
func main() {
	var x = 0
	helper()
	if helper() > 0 { x = 1 }
}`)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(prog.Func("main"))
	callNodes := 0
	for _, n := range g.Nodes {
		if len(n.Calls) > 0 {
			callNodes++
			if n.Calls[0] != "helper" {
				t.Errorf("call name = %q", n.Calls[0])
			}
		}
	}
	if callNodes != 2 {
		t.Errorf("want 2 nodes with calls (stmt + branch cond), got %d", callNodes)
	}
}

func TestBuildAll(t *testing.T) {
	prog, err := parser.Parse("t.mh", "func a() { }\nfunc b() { }")
	if err != nil {
		t.Fatal(err)
	}
	gs := BuildAll(prog)
	if len(gs) != 2 || gs["a"] == nil || gs["b"] == nil {
		t.Error("BuildAll must build each function")
	}
}

func TestNodeIDsAreDense(t *testing.T) {
	g := buildMain(t, "var x = 0\nif x > 0 { MPI_Barrier() }\nparallel { single { x = 1 } }")
	for i, n := range g.Nodes {
		if n.ID != i {
			t.Fatalf("node ids must be dense and ordered: Nodes[%d].ID = %d", i, n.ID)
		}
		if g.NodeByID(i) != n {
			t.Fatalf("NodeByID(%d) mismatch", i)
		}
	}
	if g.NodeByID(-1) != nil || g.NodeByID(len(g.Nodes)) != nil {
		t.Error("NodeByID out of range must be nil")
	}
}

func TestSizeAndString(t *testing.T) {
	g := buildMain(t, "var x = 0\nMPI_Barrier()")
	nodes, edges := g.Size()
	if nodes != len(g.Nodes) || edges <= 0 {
		t.Errorf("Size() = %d,%d", nodes, edges)
	}
	for _, n := range g.Nodes {
		if n.String() == "" {
			t.Error("empty node String()")
		}
	}
	if !strings.Contains(g.Collectives()[0].String(), "MPI_Barrier") {
		t.Error("collective String must name the operation")
	}
}

func TestWriteDot(t *testing.T) {
	g := buildMain(t, "parallel { single { MPI_Barrier() } }")
	var b strings.Builder
	g.WriteDot(&b)
	out := b.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
		t.Errorf("dot output malformed:\n%s", out)
	}
	if !strings.Contains(out, "lightsalmon") {
		t.Error("collective nodes must be highlighted in dot output")
	}
}

func TestEdgeSymmetry(t *testing.T) {
	g := buildMain(t, `
var x = 0
if x > 0 { MPI_Barrier() } else { x = 2 }
parallel {
	pfor i = 0 .. 4 { x += i }
	sections { section { x = 1 } section { x = 2 } }
	single nowait { x = 3 }
	master { x = 4 }
}
while x > 0 { x -= 1 }`)
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			found := false
			for _, p := range s.Preds {
				if p == n {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %s->%s missing from Preds", n, s)
			}
		}
		for _, p := range n.Preds {
			found := false
			for _, s := range p.Succs {
				if s == n {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %s->%s missing from Succs", p, n)
			}
		}
	}
}
