package cfg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot emits the graph in Graphviz DOT syntax; cmd/parcoach exposes it
// behind -dot for visual debugging of the analysed CFGs.
func (g *Graph) WriteDot(w io.Writer) {
	fmt.Fprintf(w, "digraph %q {\n", g.Func.Name)
	fmt.Fprintf(w, "  node [shape=box, fontname=monospace];\n")
	for _, n := range g.Nodes {
		label := n.String()
		var attrs []string
		switch n.Kind {
		case KindCollective:
			attrs = append(attrs, "style=filled", "fillcolor=lightsalmon")
		case KindBarrier:
			attrs = append(attrs, "style=filled", "fillcolor=lightblue")
		case KindParallelBegin, KindParallelEnd:
			attrs = append(attrs, "style=filled", "fillcolor=palegreen")
		case KindSingleBegin, KindSingleEnd, KindMasterBegin, KindMasterEnd,
			KindSectionBegin, KindSectionEnd:
			attrs = append(attrs, "style=filled", "fillcolor=khaki")
		case KindEntry, KindExit:
			attrs = append(attrs, "shape=ellipse")
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		fmt.Fprintf(w, "  n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
	}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			fmt.Fprintf(w, "  n%d -> n%d;\n", n.ID, s.ID)
		}
	}
	fmt.Fprintf(w, "}\n")
}
