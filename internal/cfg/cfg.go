// Package cfg builds per-function control-flow graphs from MiniHybrid ASTs.
//
// Following the paper, the CFG is the representation the static analyses
// consume: nodes containing an MPI collective operation are flagged, the
// threading directives are put into dedicated begin/end nodes, and new
// nodes are added for the implicit thread barriers at the ends of
// single/sections/worksharing constructs and before the join of a parallel
// region. Single/master/sections constructs also carry "skip" edges for
// the threads that do not execute the body.
package cfg

import (
	"fmt"

	"parcoach/internal/ast"
	"parcoach/internal/source"
	"parcoach/internal/token"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	KindEntry NodeKind = iota
	KindExit
	KindNormal     // straight-line statements
	KindCall       // a statement containing user function calls
	KindBranch     // if/while/for condition
	KindCollective // exactly one MPI collective statement
	KindBarrier    // explicit or implicit team barrier
	KindParallelBegin
	KindParallelEnd
	KindSingleBegin
	KindSingleEnd
	KindMasterBegin
	KindMasterEnd
	KindCriticalBegin
	KindCriticalEnd
	KindSectionsBegin
	KindSectionBegin
	KindSectionEnd
	KindSectionsEnd
	KindPforBegin
	KindPforEnd
)

var kindNames = map[NodeKind]string{
	KindEntry: "entry", KindExit: "exit", KindNormal: "normal",
	KindCall: "call", KindBranch: "branch", KindCollective: "collective",
	KindBarrier: "barrier", KindParallelBegin: "parallel.begin",
	KindParallelEnd: "parallel.end", KindSingleBegin: "single.begin",
	KindSingleEnd: "single.end", KindMasterBegin: "master.begin",
	KindMasterEnd: "master.end", KindCriticalBegin: "critical.begin",
	KindCriticalEnd: "critical.end", KindSectionsBegin: "sections.begin",
	KindSectionBegin: "section.begin", KindSectionEnd: "section.end",
	KindSectionsEnd: "sections.end", KindPforBegin: "pfor.begin",
	KindPforEnd: "pfor.end",
}

func (k NodeKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one CFG node.
type Node struct {
	ID    int
	Kind  NodeKind
	Pos   source.Pos
	Stmts []ast.Stmt // statements of Normal/Call nodes; the Return, if any, is last

	Succs []*Node
	Preds []*Node

	// Coll is the collective statement of a KindCollective node.
	Coll *ast.MPIStmt
	// Calls lists user functions invoked from this node (Call and Branch
	// nodes); the inter-procedural analysis treats calls to
	// collective-bearing functions like collective nodes.
	Calls []string
	// Cond is the controlling expression of a Branch node.
	Cond ast.Expr
	// RegionID identifies the threading construct of region begin/end
	// nodes (the subscript of the paper's P_i / S_i letters).
	RegionID int
	// Nowait is set on SingleEnd/SectionsEnd/PforEnd nodes without an
	// implicit barrier.
	Nowait bool
	// Implicit marks barrier nodes inserted for construct-end barriers.
	Implicit bool
	// IsMaster marks the begin/end nodes of a master construct (an S
	// letter executed by thread 0, with no implicit end barrier).
	IsMaster bool
	// NumThreads is the clause expression of a ParallelBegin, if any.
	NumThreads ast.Expr
}

// String renders a short description for diagnostics and tests.
func (n *Node) String() string {
	switch n.Kind {
	case KindCollective:
		return fmt.Sprintf("n%d:%s(%s)", n.ID, n.Kind, n.Coll.Kind)
	case KindParallelBegin, KindParallelEnd, KindSingleBegin, KindSingleEnd,
		KindMasterBegin, KindMasterEnd, KindSectionBegin, KindSectionEnd,
		KindSectionsBegin, KindSectionsEnd, KindPforBegin, KindPforEnd:
		return fmt.Sprintf("n%d:%s[r%d]", n.ID, n.Kind, n.RegionID)
	}
	return fmt.Sprintf("n%d:%s", n.ID, n.Kind)
}

// IsRegionBegin reports whether the node opens a threading region that
// contributes a parallelism-word letter.
func (n *Node) IsRegionBegin() bool {
	switch n.Kind {
	case KindParallelBegin, KindSingleBegin, KindMasterBegin, KindSectionBegin:
		return true
	}
	return false
}

// Graph is the CFG of one function.
type Graph struct {
	Func  *ast.FuncDecl
	Entry *Node
	Exit  *Node
	Nodes []*Node
}

// NodeByID returns the node with the given id, or nil.
func (g *Graph) NodeByID(id int) *Node {
	if id >= 0 && id < len(g.Nodes) {
		return g.Nodes[id]
	}
	return nil
}

// Collectives returns all collective nodes in id order.
func (g *Graph) Collectives() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindCollective {
			out = append(out, n)
		}
	}
	return out
}

// Size returns the number of nodes and edges.
func (g *Graph) Size() (nodes, edges int) {
	nodes = len(g.Nodes)
	for _, n := range g.Nodes {
		edges += len(n.Succs)
	}
	return nodes, edges
}

// Build constructs the CFG of one function.
func Build(f *ast.FuncDecl) *Graph {
	b := &builder{g: &Graph{Func: f}}
	b.g.Entry = b.newNode(KindEntry, f.NamePos)
	b.g.Exit = b.newNode(KindExit, f.NamePos)
	last := b.buildBlock(f.Body, b.g.Entry)
	if last != nil {
		b.link(last, b.g.Exit)
	}
	return b.g
}

// BuildAll builds CFGs for every function of the program, keyed by name.
func BuildAll(prog *ast.Program) map[string]*Graph {
	out := make(map[string]*Graph, len(prog.Funcs))
	for _, f := range prog.Funcs {
		out[f.Name] = Build(f)
	}
	return out
}

type builder struct {
	g *Graph
}

func (b *builder) newNode(kind NodeKind, pos source.Pos) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: kind, Pos: pos}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) link(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// buildBlock threads the statements of blk starting from prev and returns
// the node control falls out of, or nil if all paths return.
func (b *builder) buildBlock(blk *ast.Block, prev *Node) *Node {
	cur := prev
	for _, s := range blk.Stmts {
		if cur == nil {
			// Unreachable code after a return: keep building so analyses
			// and diagnostics still see it, anchored to a fresh island.
			cur = b.newNode(KindNormal, s.Pos())
		}
		cur = b.buildStmt(s, cur)
	}
	return cur
}

// appendSimple adds a straight-line statement, merging into the current
// node when possible.
func (b *builder) appendSimple(s ast.Stmt, prev *Node, calls []string) *Node {
	kind := KindNormal
	if len(calls) > 0 {
		kind = KindCall
	}
	if kind == KindNormal && prev.Kind == KindNormal && len(prev.Succs) == 0 && prev != b.g.Entry {
		prev.Stmts = append(prev.Stmts, s)
		return prev
	}
	n := b.newNode(kind, s.Pos())
	n.Stmts = []ast.Stmt{s}
	n.Calls = calls
	b.link(prev, n)
	return n
}

func (b *builder) buildStmt(s ast.Stmt, prev *Node) *Node {
	switch s := s.(type) {
	case *ast.Block:
		return b.buildBlock(s, prev)

	case *ast.VarDecl, *ast.Assign, *ast.Print, *ast.AtomicStmt:
		return b.appendSimple(s, prev, stmtCalls(s))

	case *ast.CallStmt:
		return b.appendSimple(s, prev, stmtCalls(s))

	case *ast.Return:
		n := b.appendSimple(s, prev, stmtCalls(s))
		b.link(n, b.g.Exit)
		return nil

	case *ast.MPIStmt:
		if s.Kind.IsCollective() {
			n := b.newNode(KindCollective, s.KindPos)
			n.Coll = s
			n.Stmts = []ast.Stmt{s}
			b.link(prev, n)
			return n
		}
		return b.appendSimple(s, prev, stmtCalls(s))

	case *ast.If:
		cond := b.newNode(KindBranch, s.IfPos)
		cond.Cond = s.Cond
		cond.Calls = exprCalls(s.Cond)
		b.link(prev, cond)
		merge := b.newNode(KindNormal, s.IfPos)
		thenEnd := b.buildBlock(s.Then, cond)
		if thenEnd != nil {
			b.link(thenEnd, merge)
		}
		if s.Else != nil {
			elseEnd := b.buildStmt(s.Else, cond)
			if elseEnd != nil {
				b.link(elseEnd, merge)
			}
		} else {
			b.link(cond, merge)
		}
		if len(merge.Preds) == 0 {
			// Both arms return; everything after is unreachable.
			return nil
		}
		return merge

	case *ast.For:
		init := b.appendSimple(&ast.Assign{
			Target: &ast.VarRef{NamePos: s.ForPos, Name: s.Var},
			Value:  s.From,
		}, prev, exprCalls(s.From))
		header := b.newNode(KindBranch, s.ForPos)
		header.Cond = &ast.BinaryExpr{OpPos: s.ForPos, Op: token.Lt, X: &ast.VarRef{NamePos: s.ForPos, Name: s.Var}, Y: s.To}
		header.Calls = exprCalls(s.To)
		b.link(init, header)
		bodyEnd := b.buildBlock(s.Body, header)
		if bodyEnd != nil {
			b.link(bodyEnd, header)
		}
		after := b.newNode(KindNormal, s.ForPos)
		b.link(header, after)
		return after

	case *ast.While:
		header := b.newNode(KindBranch, s.WhilePos)
		header.Cond = s.Cond
		header.Calls = exprCalls(s.Cond)
		b.link(prev, header)
		bodyEnd := b.buildBlock(s.Body, header)
		if bodyEnd != nil {
			b.link(bodyEnd, header)
		}
		after := b.newNode(KindNormal, s.WhilePos)
		b.link(header, after)
		return after

	case *ast.BarrierStmt:
		n := b.newNode(KindBarrier, s.BarPos)
		b.link(prev, n)
		return n

	case *ast.ParallelStmt:
		begin := b.newNode(KindParallelBegin, s.ParPos)
		begin.RegionID = s.RegionID
		begin.NumThreads = s.NumThreads
		b.link(prev, begin)
		bodyEnd := b.buildBlock(s.Body, begin)
		// Implicit join barrier, inside the region.
		join := b.newNode(KindBarrier, s.ParPos)
		join.Implicit = true
		if bodyEnd != nil {
			b.link(bodyEnd, join)
		}
		end := b.newNode(KindParallelEnd, s.ParPos)
		end.RegionID = s.RegionID
		b.link(join, end)
		return end

	case *ast.SingleStmt:
		begin := b.newNode(KindSingleBegin, s.SingPos)
		begin.RegionID = s.RegionID
		b.link(prev, begin)
		bodyEnd := b.buildBlock(s.Body, begin)
		end := b.newNode(KindSingleEnd, s.SingPos)
		end.RegionID = s.RegionID
		end.Nowait = s.Nowait
		if bodyEnd != nil {
			b.link(bodyEnd, end)
		}
		b.link(begin, end) // threads that do not win the single skip the body
		if s.Nowait {
			return end
		}
		bar := b.newNode(KindBarrier, s.SingPos)
		bar.Implicit = true
		b.link(end, bar)
		return bar

	case *ast.MasterStmt:
		begin := b.newNode(KindMasterBegin, s.MastPos)
		begin.RegionID = s.RegionID
		begin.IsMaster = true
		b.link(prev, begin)
		bodyEnd := b.buildBlock(s.Body, begin)
		end := b.newNode(KindMasterEnd, s.MastPos)
		end.RegionID = s.RegionID
		end.IsMaster = true
		if bodyEnd != nil {
			b.link(bodyEnd, end)
		}
		b.link(begin, end) // non-master threads skip; no implicit barrier
		return end

	case *ast.CriticalStmt:
		begin := b.newNode(KindCriticalBegin, s.CritPos)
		b.link(prev, begin)
		bodyEnd := b.buildBlock(s.Body, begin)
		end := b.newNode(KindCriticalEnd, s.CritPos)
		if bodyEnd != nil {
			b.link(bodyEnd, end)
		}
		return end

	case *ast.PforStmt:
		begin := b.newNode(KindPforBegin, s.PforPos)
		begin.RegionID = s.RegionID
		begin.Stmts = []ast.Stmt{s} // analyses read the loop bounds from here
		begin.Calls = append(exprCalls(s.From), exprCalls(s.To)...)
		b.link(prev, begin)
		bodyEnd := b.buildBlock(s.Body, begin)
		if bodyEnd != nil {
			b.link(bodyEnd, begin) // next chunk of iterations
		}
		end := b.newNode(KindPforEnd, s.PforPos)
		end.RegionID = s.RegionID
		end.Nowait = s.Nowait
		b.link(begin, end)
		if s.Nowait {
			return end
		}
		bar := b.newNode(KindBarrier, s.PforPos)
		bar.Implicit = true
		b.link(end, bar)
		return bar

	case *ast.SectionsStmt:
		begin := b.newNode(KindSectionsBegin, s.SecsPos)
		begin.RegionID = s.RegionID
		b.link(prev, begin)
		end := b.newNode(KindSectionsEnd, s.SecsPos)
		end.RegionID = s.RegionID
		end.Nowait = s.Nowait
		for i, body := range s.Bodies {
			sb := b.newNode(KindSectionBegin, body.Lbrace)
			sb.RegionID = s.SectionIDs[i]
			b.link(begin, sb)
			bodyEnd := b.buildBlock(body, sb)
			se := b.newNode(KindSectionEnd, body.Lbrace)
			se.RegionID = s.SectionIDs[i]
			if bodyEnd != nil {
				b.link(bodyEnd, se)
			}
			b.link(se, end)
		}
		b.link(begin, end) // threads with no section assigned
		if s.Nowait {
			return end
		}
		bar := b.newNode(KindBarrier, s.SecsPos)
		bar.Implicit = true
		b.link(end, bar)
		return bar

	case *ast.InstrCC, *ast.InstrCCReturn, *ast.InstrMonoCheck,
		*ast.InstrPhaseCount, *ast.InstrConcNote:
		// Instrumentation nodes are transparent to the CFG: they are
		// executed where they stand but do not alter control flow.
		return b.appendSimple(s, prev, nil)
	}
	panic(fmt.Sprintf("cfg: unhandled statement %T", s))
}

func stmtCalls(s ast.Stmt) []string { return ast.Calls(s) }

func exprCalls(e ast.Expr) []string {
	if e == nil {
		return nil
	}
	return ast.Calls(e)
}
