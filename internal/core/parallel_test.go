package core

import (
	"fmt"
	"testing"

	"parcoach/internal/parser"
	"parcoach/internal/pipeline"
	"parcoach/internal/workload"
)

// renderDiags flattens a result's diagnostics for comparison.
func renderDiags(r *Result) string {
	out := ""
	for _, d := range r.Diags {
		out += d.String() + "\n"
	}
	return out
}

// TestAnalyzeParallelRunnerMatchesSerial drives the staged analyzer with
// a real worker pool and asserts the result is identical to the serial
// analysis: same diagnostics bytes, same summaries, same per-function
// finding counts.
func TestAnalyzeParallelRunnerMatchesSerial(t *testing.T) {
	subjects := []workload.Workload{
		workload.HERA(workload.ScaleS, workload.BugNone),
		workload.HERA(workload.ScaleS, workload.BugRankDependentCollective),
		workload.BTMZ(workload.ScaleS, workload.BugEarlyReturn),
		workload.EPCC(workload.ScaleS, workload.BugMultithreadedCollective),
		workload.Micro(workload.BugConcurrentSingles),
	}
	for _, w := range subjects {
		prog, err := parser.Parse(w.Name, w.Source)
		if err != nil {
			t.Fatal(err)
		}
		serial := Analyze(prog, Options{})
		for _, workers := range []int{2, 8} {
			par := Analyze(prog, Options{Runner: pipeline.NewPool(workers)})
			if got, want := renderDiags(par), renderDiags(serial); got != want {
				t.Errorf("%s workers=%d: diagnostics differ\n--- parallel ---\n%s--- serial ---\n%s",
					w.Name, workers, got, want)
			}
			if par.RequiredLevel != serial.RequiredLevel {
				t.Errorf("%s workers=%d: required level %v != %v",
					w.Name, workers, par.RequiredLevel, serial.RequiredLevel)
			}
			if len(par.Summaries) != len(serial.Summaries) {
				t.Fatalf("%s: summary count differs", w.Name)
			}
			for name, ss := range serial.Summaries {
				ps := par.Summaries[name]
				if fmt.Sprint(ps) != fmt.Sprint(ss) {
					t.Errorf("%s workers=%d: summary of %s differs: %v != %v",
						w.Name, workers, name, ps, ss)
				}
			}
			for name, sf := range serial.Funcs {
				pf := par.Funcs[name]
				if pf == nil {
					t.Fatalf("%s: missing func analysis %s", w.Name, name)
				}
				if pf.Multithreaded != sf.Multithreaded ||
					len(pf.MultithreadedColls) != len(sf.MultithreadedColls) ||
					len(pf.ConcPairs) != len(sf.ConcPairs) ||
					len(pf.Scc) != len(sf.Scc) ||
					pf.NeedsCC != sf.NeedsCC ||
					pf.NeedsInstrumentation != sf.NeedsInstrumentation {
					t.Errorf("%s workers=%d: func %s findings differ", w.Name, workers, name)
				}
			}
		}
	}
}

// TestStagedAnalysisSCCOrder sanity-checks the condensation the summary
// waves run over: a callee's summary must be final before any caller's
// wave starts.
func TestStagedAnalysisSCCOrder(t *testing.T) {
	src := `
func leaf() { MPI_Barrier() }
func mid() { leaf() }
func recur(n) { if n > 0 { recur(n - 1) } mid() return 0 }
func main() { MPI_Init() recur(3) MPI_Finalize() }
`
	prog, err := parser.Parse("scc.mh", src)
	if err != nil {
		t.Fatal(err)
	}
	an := Begin(prog, Options{})
	an.Prepare()
	an.ComputeTaint()
	an.ComputeContexts()
	seen := make(map[string]bool)
	for _, wave := range an.SummaryWaves() {
		// Every function may only call functions of earlier waves or of
		// its own SCC — a caller sharing a wave with its callee's SCC is
		// exactly the ordering violation the summaries pass cannot survive.
		for _, scc := range wave {
			own := make(map[string]bool, len(an.a.sccs[scc]))
			for _, name := range an.a.sccs[scc] {
				own[name] = true
			}
			for _, name := range an.a.sccs[scc] {
				for _, n := range an.a.graphs[name].Nodes {
					for _, callee := range n.Calls {
						if _, ok := an.a.index[callee]; !ok {
							continue
						}
						if !seen[callee] && !own[callee] {
							t.Errorf("wave order broken: %s calls %s before its summary wave ran", name, callee)
						}
					}
				}
			}
			an.ComputeSummarySCC(scc)
		}
		for _, scc := range wave {
			for _, name := range an.a.sccs[scc] {
				seen[name] = true
			}
		}
	}
	an.Check()
	res := an.Finish()
	if !res.Summaries["main"].HasCollective() {
		t.Error("main must transitively summarize collectives through recur → mid → leaf")
	}
	if len(res.Summaries["recur"].Kinds) == 0 {
		t.Error("recursive function summary missing callee collectives")
	}
}
