package core

import (
	"fmt"
	"sort"
	"strings"

	"parcoach/internal/source"
)

// DiagKind classifies the warnings the compile-time verification emits,
// mirroring the error types the paper reports to the programmer
// ("collective mismatch, concurrent collective calls, ...").
type DiagKind int

// Diagnostic kinds.
const (
	// DiagMultithreadedCollective: phase 1 — a collective whose parallelism
	// word is not in L, i.e. it may execute on several threads of one
	// process at once.
	DiagMultithreadedCollective DiagKind = iota
	// DiagConcurrentCollectives: phase 2 — two collectives in concurrent
	// monothreaded regions (same prefix, different single regions) may
	// execute simultaneously.
	DiagConcurrentCollectives
	// DiagCollectiveMismatch: phase 3 (PARCOACH Algorithm 1) — a
	// control-flow divergence point on which the execution of a collective
	// depends; processes taking different sides desynchronize.
	DiagCollectiveMismatch
	// DiagAmbiguousWord: the parallelism word of a node differs between
	// incoming paths (non-conforming barrier placement); the analysis
	// proceeds conservatively.
	DiagAmbiguousWord
	// DiagThreadLevel: informational — the minimum MPI thread support
	// level the program requires given where its collectives sit.
	DiagThreadLevel
)

var diagNames = map[DiagKind]string{
	DiagMultithreadedCollective: "multithreaded-collective",
	DiagConcurrentCollectives:   "concurrent-collectives",
	DiagCollectiveMismatch:      "collective-mismatch",
	DiagAmbiguousWord:           "ambiguous-parallelism-word",
	DiagThreadLevel:             "thread-level",
}

func (k DiagKind) String() string {
	if s, ok := diagNames[k]; ok {
		return s
	}
	return fmt.Sprintf("diag(%d)", int(k))
}

// IsError reports whether the kind denotes a potential correctness problem
// (as opposed to informational output).
func (k DiagKind) IsError() bool { return k != DiagThreadLevel }

// Diagnostic is one located warning with the collective names and source
// lines involved, as the paper requires.
type Diagnostic struct {
	Kind       DiagKind
	Pos        source.Pos
	Func       string
	Collective string // MPI_* name, or "call:<fn>" for summarized calls
	Message    string
	// Related lists the positions of the other constructs involved
	// (e.g. both collectives of a concurrent pair, or the collective a
	// divergence warning refers to).
	Related []source.Pos
}

// String renders "pos: kind: message [related: ...]".
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s: %s", d.Pos, d.Kind, d.Message)
	if len(d.Related) > 0 {
		parts := make([]string, len(d.Related))
		for i, p := range d.Related {
			parts[i] = p.String()
		}
		fmt.Fprintf(&b, " (see %s)", strings.Join(parts, ", "))
	}
	return b.String()
}

// SortDiagnostics orders diagnostics by file, line, column, then kind,
// function, collective and message. The ordering is total over distinct
// diagnostics, so the sorted output is byte-identical no matter how the
// parallel analysis stages were scheduled.
func SortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line || a.Pos.Col != b.Pos.Col {
			return a.Pos.Before(b.Pos)
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Collective != b.Collective {
			return a.Collective < b.Collective
		}
		return a.Message < b.Message
	})
}

// CountByKind tallies diagnostics per kind; the experiment harness uses it
// to reproduce the per-benchmark warning inventory.
func CountByKind(diags []Diagnostic) map[DiagKind]int {
	out := make(map[DiagKind]int)
	for _, d := range diags {
		out[d.Kind]++
	}
	return out
}

// ThreadLevel is the MPI threading support level a program requires.
type ThreadLevel int

// MPI thread levels in increasing order of permissiveness.
const (
	ThreadSingle ThreadLevel = iota
	ThreadFunneled
	ThreadSerialized
	ThreadMultiple
)

var levelNames = [...]string{
	ThreadSingle:     "MPI_THREAD_SINGLE",
	ThreadFunneled:   "MPI_THREAD_FUNNELED",
	ThreadSerialized: "MPI_THREAD_SERIALIZED",
	ThreadMultiple:   "MPI_THREAD_MULTIPLE",
}

func (l ThreadLevel) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "MPI_THREAD_?"
}
