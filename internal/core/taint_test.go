package core

import (
	"testing"

	"parcoach/internal/parser"
)

// taintOf computes the program taint and returns the named function's set.
func taintOf(t *testing.T, src, fn string) *rankTaint {
	t.Helper()
	prog, err := parser.Parse("t.mh", src)
	if err != nil {
		t.Fatal(err)
	}
	taints := computeProgramTaint(prog)
	if taints[fn] == nil {
		t.Fatalf("no taint for %q", fn)
	}
	return taints[fn]
}

func TestTaintSources(t *testing.T) {
	rt := taintOf(t, `
func main() {
	var r = rank()
	var s = size()
	var lit = 42
	var recvd = 0
	MPI_Recv(recvd, 0)
	var red = 0
	MPI_Reduce(red, lit, sum, 0)
	var all = 0
	MPI_Allreduce(all, r, sum)
	var bc = r
	MPI_Bcast(bc, 0)
	var sc = 0
	MPI_Scan(sc, lit, sum)
}`, "main")
	want := map[string]bool{
		"r": true, "recvd": true, "red": true, "sc": true,
		"s": false, "lit": false, "all": false,
	}
	for name, tainted := range want {
		if rt.vars[name] != tainted {
			t.Errorf("taint(%s) = %v, want %v", name, rt.vars[name], tainted)
		}
	}
	// bc was assigned from r before the bcast; flow-insensitively it stays
	// tainted (conservative).
	if !rt.vars["bc"] {
		t.Error("bc must stay tainted (flow-insensitive)")
	}
}

func TestTaintPropagatesThroughExpressions(t *testing.T) {
	rt := taintOf(t, `
func main() {
	var r = rank()
	var a = r * 2 + 1
	var b = a % 7
	var c = 5 + 3
	var loop = 0
	for i = 0 .. r {
		loop = i
	}
}`, "main")
	for _, name := range []string{"a", "b", "loop", "i"} {
		_ = name
	}
	if !rt.vars["a"] || !rt.vars["b"] {
		t.Error("arithmetic over tainted values must taint")
	}
	if rt.vars["c"] {
		t.Error("pure literals must stay clean")
	}
	if !rt.vars["loop"] {
		t.Error("loop variable with tainted bound taints its uses")
	}
}

func TestTaintThreadIntrinsicsClean(t *testing.T) {
	rt := taintOf(t, `
func main() {
	var t = tid()
	var n = nthreads()
	var s = size()
}`, "main")
	for _, name := range []string{"t", "n", "s"} {
		if rt.vars[name] {
			t.Errorf("%s varies across threads, not processes; must be clean", name)
		}
	}
}

func TestInterproceduralArgumentTaint(t *testing.T) {
	src := `
func helper(n) {
	var x = n + 1
	return x
}
func cleanCaller() {
	var v = helper(10)
	return v
}
func dirtyCaller() {
	var v = helper(rank())
	return v
}
func main() {
	var a = cleanCaller()
	var b = dirtyCaller()
}`
	rt := taintOf(t, src, "helper")
	// dirtyCaller passes rank(): the parameter is tainted program-wide.
	if !rt.vars["n"] || !rt.vars["x"] {
		t.Error("parameter bound to a tainted argument at any call site must taint")
	}
}

func TestParameterCleanWhenAllCallSitesClean(t *testing.T) {
	src := `
func kernel(reps) {
	var acc = 0
	for r = 0 .. reps {
		acc += r
	}
	return acc
}
func main() {
	var total = kernel(100)
}`
	rt := taintOf(t, src, "kernel")
	if rt.vars["reps"] || rt.vars["r"] {
		t.Error("literal arguments must leave the parameter clean (the EPCC bench_barrier case)")
	}
	// But the call RESULT is conservatively tainted in the caller.
	mt := taintOf(t, src, "main")
	if !mt.vars["total"] {
		t.Error("user-call results stay conservatively tainted")
	}
}

func TestTaintChainsThroughCallGraph(t *testing.T) {
	src := `
func level2(v) { return v }
func level1(v) { return level2(v) }
func main() {
	var x = level1(rank())
}`
	rt := taintOf(t, src, "level2")
	if !rt.vars["v"] {
		t.Error("argument taint must chain caller → callee → callee")
	}
}

func TestRecursiveTaintTerminates(t *testing.T) {
	src := `
func rec(n) {
	if n > 0 {
		return rec(n - 1)
	}
	return 0
}
func main() {
	var x = rec(rank())
}`
	rt := taintOf(t, src, "rec")
	if !rt.vars["n"] {
		t.Error("recursive argument taint must converge and mark the parameter")
	}
}
