package core

import (
	"parcoach/internal/ast"
)

// rankTaint holds, for one function, the set of variables whose value may
// differ between MPI processes (flow-insensitive fixpoint). Phase 3 uses
// it to separate genuine divergence conditionals (rank-dependent branches,
// receive-dependent loop bounds, ...) from process-invariant control flow
// such as literal-bound time-step loops, which every process executes
// identically. The RawPDF ablation disables the filter to expose the
// unrefined Algorithm 1 output.
//
// Sources of process variance:
//   - the rank() intrinsic (size() is identical everywhere and stays clean)
//   - user-call results (unknown, conservative)
//   - parameters bound to tainted arguments at some call site — resolved
//     by the interprocedural fixpoint in computeProgramTaint, so passing a
//     literal repetition count around does not poison every callee
//   - MPI_Recv destinations and per-rank collective outputs
//     (Reduce at non-root is undefined, Scatter/Alltoall/Scan differ by
//     construction; Bcast/Allreduce/Allgather produce identical values and
//     add no taint)
//
// tid() and nthreads() vary between threads, not processes, and stay clean
// here: phase 3 reasons about inter-process divergence only. Taint through
// control dependence (x assigned a literal under a rank branch) is not
// modelled; the dynamic CC checks cover that residue.
type rankTaint struct {
	vars map[string]bool
}

// computeProgramTaint resolves parameter taint across the call graph and
// returns the per-function taint sets. The fixpoint is demand-driven: a
// function is re-analysed only when one of its parameter assumptions was
// widened by a caller, so large call graphs (HERA-sized) settle in a
// handful of per-function passes instead of whole-program sweeps.
func computeProgramTaint(prog *ast.Program) map[string]*rankTaint {
	paramTaint := make(map[string][]bool, len(prog.Funcs))
	for _, f := range prog.Funcs {
		paramTaint[f.Name] = make([]bool, len(f.Params))
	}
	taints := make(map[string]*rankTaint, len(prog.Funcs))
	work := make([]*ast.FuncDecl, len(prog.Funcs))
	copy(work, prog.Funcs)
	queued := make(map[string]bool, len(prog.Funcs))
	for _, f := range prog.Funcs {
		queued[f.Name] = true
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		queued[f.Name] = false
		t := computeRankTaint(f, paramTaint[f.Name])
		taints[f.Name] = t
		ast.Inspect(f.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pt, known := paramTaint[c.Name]
			if !known {
				return true // intrinsic or undefined
			}
			for i, a := range c.Args {
				if i < len(pt) && !pt[i] && t.exprTainted(a) {
					pt[i] = true
					if callee := prog.Func(c.Name); callee != nil && !queued[c.Name] {
						queued[c.Name] = true
						work = append(work, callee)
					}
				}
			}
			return true
		})
	}
	return taints
}

// computeRankTaint runs the intraprocedural fixpoint with the given
// parameter assumptions (nil means all parameters clean).
func computeRankTaint(f *ast.FuncDecl, params []bool) *rankTaint {
	t := &rankTaint{vars: make(map[string]bool)}
	for i, p := range f.Params {
		if i < len(params) && params[i] {
			t.vars[p] = true
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(f.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.VarDecl:
				if n.Init != nil && t.exprTainted(n.Init) {
					changed = t.mark(n.Name) || changed
				}
			case *ast.Assign:
				if t.exprTainted(n.Value) {
					changed = t.mark(lvalueName(n.Target)) || changed
				}
			case *ast.AtomicStmt:
				if t.exprTainted(n.Value) {
					changed = t.mark(lvalueName(n.Target)) || changed
				}
			case *ast.For:
				if t.exprTainted(n.From) || t.exprTainted(n.To) {
					changed = t.mark(n.Var) || changed
				}
			case *ast.MPIStmt:
				if dst := n.Dst; dst != nil {
					switch n.Kind {
					case ast.MPIRecv, ast.MPIReduce, ast.MPIGather,
						ast.MPIScatter, ast.MPIAlltoall, ast.MPIScan:
						changed = t.mark(lvalueName(dst)) || changed
					}
				}
			}
			return true
		})
	}
	return t
}

func (t *rankTaint) mark(name string) bool {
	if name == "" || t.vars[name] {
		return false
	}
	t.vars[name] = true
	return true
}

func lvalueName(lv ast.LValue) string {
	switch lv := lv.(type) {
	case *ast.VarRef:
		return lv.Name
	case *ast.IndexExpr:
		return lv.Name
	}
	return ""
}

// exprTainted reports whether e may evaluate differently on different
// processes.
func (t *rankTaint) exprTainted(e ast.Expr) bool {
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.VarRef:
			if t.vars[n.Name] {
				tainted = true
			}
		case *ast.IndexExpr:
			if t.vars[n.Name] {
				tainted = true
			}
		case *ast.CallExpr:
			switch n.Name {
			case "rank":
				tainted = true
			case "size", "tid", "nthreads", "len", "abs", "min", "max":
				// process-invariant by themselves; arguments are still
				// traversed by Inspect
			default:
				// User call: unknown result, conservative.
				tainted = true
			}
		}
		return !tainted
	})
	return tainted
}
