// Package core implements the paper's compile-time verification: the
// decomposition into three phases that together prove a hybrid program
// executes the same, totally ordered sequence of MPI collectives on every
// process.
//
//  1. Every collective executes in a monothreaded context — checked by
//     membership of its parallelism word in L = (S|PB*S)* (internal/pword).
//     Violating nodes form the set S (MultithreadedColls) and their
//     dominating region entries form Sipw, both instrumented for dynamic
//     confirmation.
//  2. Any two collective executions are ordered sequentially — collectives
//     in concurrent monothreaded regions (words w·S_j·u / w·S_k·v, j≠k)
//     form concurrent pairs, and the region entries form Scc, instrumented
//     with dynamic thread counters.
//  3. All processes execute the same sequence — PARCOACH Algorithm 1: for
//     each collective kind c, every conditional in the iterated
//     postdominance frontier PDF+(O_c) of the nodes calling c is a
//     divergence point and gets a warning plus CC instrumentation.
//
// The analysis is interprocedural through per-function summaries: a call
// to a function that (transitively) performs collectives is treated like a
// collective node in its caller, and the multithreading context propagates
// along the call graph.
//
// The analysis is staged so the compile pipeline can schedule it across a
// worker pool: Begin sets up the call-graph condensation, Prepare computes
// the per-function artifacts (dominators, parallelism words, postdominance
// frontiers — embarrassingly parallel), ComputeTaint/ComputeContexts/
// ComputeSummaries run the interprocedural fixpoints in SCC order
// (callees before callers, independent components of one wave in
// parallel), Check runs the three per-function verification phases in
// parallel, and Finish merges everything into a deterministic Result.
// Analyze drives all stages in order and is equivalent to the serial
// analysis regardless of the runner's parallelism.
package core

import (
	"fmt"
	"sort"

	"parcoach/internal/ast"
	"parcoach/internal/cfg"
	"parcoach/internal/dom"
	"parcoach/internal/pipeline"
	"parcoach/internal/pword"
	"parcoach/internal/source"
)

// Context is the assumed threading context at program start (the paper's
// compile-time option for the initial thread level: the initial
// parallelism word of a function is an unknown prefix).
type Context int

// Initial contexts.
const (
	// ContextMonothreaded assumes main starts outside any parallel region.
	ContextMonothreaded Context = iota
	// ContextMultithreaded assumes main may already run inside a parallel
	// region (unknown prefix P).
	ContextMultithreaded
)

// Options configures the analysis.
type Options struct {
	// Initial is the context assumed for main (default monothreaded).
	Initial Context
	// EntryFunc is the root of the call-graph context propagation;
	// defaults to "main". Functions unreachable from it are analysed in
	// the context their own callers imply, or monothreaded if uncalled.
	EntryFunc string
	// RawPDF disables the rank-dependence refinement of phase 3 and
	// reports every conditional in PDF+(O_c), including process-invariant
	// ones (ablation mode; more warnings, more instrumentation).
	RawPDF bool
	// Graphs supplies pre-built CFGs keyed by function name. The compile
	// pipeline passes the backend's graphs here so the analysis rides on
	// the compiler's existing CFG, as PARCOACH does inside GCC; when nil
	// the analysis builds its own.
	Graphs map[string]*cfg.Graph
	// Doms supplies pre-built dominator trees keyed by function name
	// (cached artifacts from the pipeline's dominator pass); missing
	// entries are computed on demand during Prepare.
	Doms map[string]*dom.Tree
	// Runner schedules the parallel stages (artifact preparation, summary
	// waves, per-function checking). Nil means a serial pool. The
	// analysis result is identical for any pool width.
	Runner *pipeline.Pool
}

// Summary is the interprocedural collective signature of one function.
type Summary struct {
	// Kinds are the collective kinds the function may (transitively)
	// execute, in sorted order.
	Kinds []ast.MPIKind
	// Exposed are the kinds that may execute in a multithreaded context
	// when the function itself is entered multithreaded (i.e. collectives
	// not protected by a single/master region inside the function or its
	// callees).
	Exposed []ast.MPIKind
}

// HasCollective reports whether the function performs any collective.
func (s Summary) HasCollective() bool { return len(s.Kinds) > 0 }

// ConcPair is a phase-2 finding: two collective-bearing nodes that may
// execute simultaneously in concurrent monothreaded regions.
type ConcPair struct {
	A, B    *cfg.Node
	RegionA int
	RegionB int
}

// FuncAnalysis holds the per-function results.
type FuncAnalysis struct {
	Name  string
	Graph *cfg.Graph
	// Words are the parallelism words in the context the function is
	// actually analysed under (multithreaded if any caller may call it
	// from a multithreaded context).
	Words *pword.Result
	// Multithreaded is true when the function was analysed with the
	// unknown multithreaded prefix.
	Multithreaded bool

	// MultithreadedColls is the paper's set S for phase 1.
	MultithreadedColls []*cfg.Node
	// Sipw holds the nodes dominating the phase-1 findings where the
	// threading context is established (region begins, or entry).
	Sipw []*cfg.Node
	// ConcPairs are the phase-2 findings.
	ConcPairs []ConcPair
	// Scc holds the region-begin nodes of concurrent monothreaded regions.
	Scc []*cfg.Node
	// SeqWarn maps a collective name to the divergence conditionals of
	// phase 3 (PDF+ of its call sites).
	SeqWarn map[string][]*cfg.Node
	// NeedsCC is true when phase 3 found divergence points, so CC checks
	// must be generated for this function.
	NeedsCC bool
	// NeedsInstrumentation is true when any phase produced findings.
	NeedsInstrumentation bool

	// diags buffers this function's diagnostics so Check can run for many
	// functions in parallel without contending on the Result; Finish
	// merges the buffers in declaration order and sorts.
	diags []Diagnostic
}

func (fa *FuncAnalysis) diag(d Diagnostic) { fa.diags = append(fa.diags, d) }

// Result is the whole-program analysis output.
type Result struct {
	Prog      *ast.Program
	Graphs    map[string]*cfg.Graph
	Summaries map[string]Summary
	Funcs     map[string]*FuncAnalysis
	Diags     []Diagnostic
	// RequiredLevel is the minimum MPI thread level the program needs.
	RequiredLevel ThreadLevel
}

// Errors returns the diagnostics that denote potential errors.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Kind.IsError() {
			out = append(out, d)
		}
	}
	return out
}

// NeedsInstrumentation reports whether any function requires verification
// code generation.
func (r *Result) NeedsInstrumentation() bool {
	for _, f := range r.Funcs {
		if f.NeedsInstrumentation {
			return true
		}
	}
	return false
}

// Analyze runs the full compile-time verification on a parsed and
// semantically valid program, driving every stage of the staged analyzer
// on opts.Runner (serial when nil).
func Analyze(prog *ast.Program, opts Options) *Result {
	an := Begin(prog, opts)
	an.Prepare()
	an.ComputeTaint()
	an.ComputeContexts()
	an.ComputeSummaries()
	an.Check()
	return an.Finish()
}

// Analysis is the staged analyzer. Stages must run in order — Prepare,
// ComputeTaint, ComputeContexts, ComputeSummaries, Check, Finish — but
// each stage's per-item entry points (PrepareFunc, ComputeSummarySCC,
// CheckFunc) are safe to call concurrently for distinct items, which is
// what the compile pipeline's pass manager does.
type Analysis struct {
	a *analyzer
}

type analyzer struct {
	prog   *ast.Program
	opts   Options
	run    *pipeline.Pool
	graphs map[string]*cfg.Graph
	res    *Result

	// funcs/index give every function a dense id; all per-function
	// artifact caches below are slices indexed by it, so parallel stages
	// write disjoint slots and never touch a shared map.
	funcs []*ast.FuncDecl
	index map[string]int

	// multiCtx[f] is true when f may be entered in a multithreaded context.
	multiCtx map[string]bool
	// words caches the per-function parallelism words, always computed
	// from the monothreaded entry word: the unknown-prefix variant is
	// derived per query via MonoUnderParallelPrefix, since the prefix
	// region can never be closed inside the function.
	words []*pword.Result
	// taints holds the interprocedural rank-taint sets.
	taints map[string]*rankTaint
	// pdfs caches per-function postdominance frontiers — one per function
	// regardless of context. (Dominator trees are consumed inside
	// PrepareFunc by the parallelism-word computation and not retained.)
	pdfs []map[*cfg.Node][]*cfg.Node

	// kinds/exposed are the summary fixpoint state; summaries holds the
	// finished per-function summaries.
	kinds     []map[ast.MPIKind]bool
	exposed   []map[ast.MPIKind]bool
	summaries []Summary

	// fas holds the per-function check results until Finish builds the
	// Result maps.
	fas []*FuncAnalysis

	// sccs is the call-graph condensation in reverse topological order
	// (callees first); waves groups mutually independent SCC indices.
	sccs  [][]string
	waves [][]int
}

// Begin sets up the analysis: defaults, CFGs (built in parallel when not
// supplied), and the call-graph condensation that orders the
// interprocedural stages.
func Begin(prog *ast.Program, opts Options) *Analysis {
	if opts.EntryFunc == "" {
		opts.EntryFunc = "main"
	}
	run := opts.Runner
	if run == nil {
		run = pipeline.NewPool(1) // inline-serial
	}
	n := len(prog.Funcs)
	a := &analyzer{
		prog:  prog,
		opts:  opts,
		run:   run,
		funcs: prog.Funcs,
		index: make(map[string]int, n),
		res: &Result{
			Prog:      prog,
			Summaries: make(map[string]Summary, n),
			Funcs:     make(map[string]*FuncAnalysis, n),
		},
		multiCtx:  make(map[string]bool, n),
		words:     make([]*pword.Result, n),
		pdfs:      make([]map[*cfg.Node][]*cfg.Node, n),
		kinds:     make([]map[ast.MPIKind]bool, n),
		exposed:   make([]map[ast.MPIKind]bool, n),
		summaries: make([]Summary, n),
		fas:       make([]*FuncAnalysis, n),
	}
	for i, f := range prog.Funcs {
		a.index[f.Name] = i
		a.kinds[i] = make(map[ast.MPIKind]bool)
		a.exposed[i] = make(map[ast.MPIKind]bool)
	}
	a.graphs = opts.Graphs
	if a.graphs == nil {
		built := make([]*cfg.Graph, n)
		run.Map(n, func(i int) { built[i] = cfg.Build(prog.Funcs[i]) })
		a.graphs = make(map[string]*cfg.Graph, n)
		for i, f := range prog.Funcs {
			a.graphs[f.Name] = built[i]
		}
	}
	a.res.Graphs = a.graphs

	// Condense the call graph. Edges go caller→callee, so the reverse
	// topological SCC order yields callees before callers.
	adj := make(map[string][]string, n)
	order := make([]string, 0, n)
	for _, f := range prog.Funcs {
		order = append(order, f.Name)
		var callees []string
		for _, node := range a.graphs[f.Name].Nodes {
			callees = append(callees, node.Calls...)
		}
		adj[f.Name] = callees
	}
	a.sccs = pipeline.SCCs(adj, order)
	// Re-express the string waves as indices into a.sccs.
	at := make(map[string]int, len(a.sccs))
	for i, c := range a.sccs {
		at[c[0]] = i
	}
	for _, wave := range pipeline.Waves(adj, a.sccs) {
		var idx []int
		for _, comp := range wave {
			idx = append(idx, at[comp[0]])
		}
		a.waves = append(a.waves, idx)
	}
	return &Analysis{a: a}
}

// NumFuncs returns the number of functions (the item count of the
// per-function parallel stages).
func (an *Analysis) NumFuncs() int { return len(an.a.funcs) }

// Prepare computes every function's artifacts on the runner.
func (an *Analysis) Prepare() { an.a.run.Map(an.NumFuncs(), an.PrepareFunc) }

// PrepareFunc computes the per-function artifacts of function i:
// dominator tree, parallelism words and postdominance frontier. Safe to
// call concurrently for distinct i.
func (an *Analysis) PrepareFunc(i int) {
	a := an.a
	name := a.funcs[i].Name
	g := a.graphs[name]
	t := a.opts.Doms[name]
	if t == nil {
		t = dom.Dominators(g)
	}
	a.words[i] = pword.ComputeWithDom(g, pword.Empty, t)
	a.pdfs[i] = dom.PostDominanceFrontier(g)
}

// ComputeTaint runs the interprocedural rank-taint fixpoint (phase 3's
// divergence refinement reads it).
func (an *Analysis) ComputeTaint() { an.a.taints = computeProgramTaint(an.a.prog) }

func (a *analyzer) pdfFor(name string) map[*cfg.Node][]*cfg.Node {
	return a.pdfs[a.index[name]]
}

// taintFor returns the function's rank-taint set. ComputeTaint must have
// run; afterwards this is a read-only lookup safe for parallel phases.
func (a *analyzer) taintFor(name string) *rankTaint {
	if t, ok := a.taints[name]; ok {
		return t
	}
	return &rankTaint{vars: map[string]bool{}}
}

func (a *analyzer) wordsOf(name string) *pword.Result {
	return a.words[a.index[name]]
}

func (a *analyzer) summaryOf(name string) (Summary, bool) {
	i, ok := a.index[name]
	if !ok {
		return Summary{}, false
	}
	return a.summaries[i], true
}

// monoAt is the phase-1 test for a node under the function's entry
// context: plain L-membership when entered monothreaded, membership of
// P·w when the entry context is (possibly) multithreaded.
func monoAt(words *pword.Result, n *cfg.Node, multi bool) bool {
	if words.IsAmbiguous(n) {
		return false
	}
	w := words.Word(n)
	if multi {
		return w.MonoUnderParallelPrefix()
	}
	return w.Monothreaded()
}

// displayWord renders a node's word including the unknown prefix.
func displayWord(w pword.Word, multi bool) string {
	if multi {
		return "P? " + w.String()
	}
	return w.String()
}

// ComputeContexts propagates the threading context along the call graph:
// a callee is multithreaded-entered if any call site sits at a
// non-monothreaded word in a caller (given the caller's own context).
// Context flows caller→callee, so one walk of the condensation in forward
// topological order (callers first) suffices, with a local fixpoint
// inside each SCC for recursion.
func (an *Analysis) ComputeContexts() {
	a := an.a
	if a.opts.Initial == ContextMultithreaded {
		a.multiCtx[a.opts.EntryFunc] = true
	}
	// propagate marks name's callees and reports whether it marked a
	// member of the current component (which then needs re-iteration).
	propagate := func(name string, inComp map[string]bool) bool {
		g := a.graphs[name]
		words := a.wordsOf(name)
		markedInComp := false
		for _, n := range g.Nodes {
			if len(n.Calls) == 0 {
				continue
			}
			calleeMulti := !monoAt(words, n, a.multiCtx[name])
			if !calleeMulti {
				continue
			}
			for _, callee := range n.Calls {
				if _, ok := a.graphs[callee]; ok && !a.multiCtx[callee] {
					a.multiCtx[callee] = true
					if inComp[callee] {
						markedInComp = true
					}
				}
			}
		}
		return markedInComp
	}
	// a.sccs is callees-first; walk it backwards for callers-first. A
	// component re-iterates until its own members' contexts are stable
	// (recursion, including self-loops); marks on functions outside the
	// component land in later components and need no re-iteration here.
	for i := len(a.sccs) - 1; i >= 0; i-- {
		comp := a.sccs[i]
		inComp := make(map[string]bool, len(comp))
		for _, name := range comp {
			inComp[name] = true
		}
		for changed := true; changed; {
			changed = false
			for _, name := range comp {
				if propagate(name, inComp) {
					changed = true
				}
			}
		}
	}
}

// ComputeSummaries runs the interprocedural fixpoint for collective
// signatures (Kinds and Exposed) wave by wave over the call-graph
// condensation: each wave's SCCs only call into finished waves, so the
// runner fans the SCCs of one wave across workers.
func (an *Analysis) ComputeSummaries() {
	for _, wave := range an.SummaryWaves() {
		an.a.run.Map(len(wave), func(i int) { an.ComputeSummarySCC(wave[i]) })
	}
}

// SummaryWaves returns ordered groups of SCC indices for
// ComputeSummarySCC: groups must run in order, members of one group may
// run concurrently.
func (an *Analysis) SummaryWaves() [][]int { return an.a.waves }

// ComputeSummarySCC computes the collective summaries of the functions in
// SCC scc (a local fixpoint for recursion); the summaries of every
// function the SCC calls must already be final. Safe to call concurrently
// for the SCCs of one wave.
func (an *Analysis) ComputeSummarySCC(scc int) {
	a := an.a
	comp := a.sccs[scc]
	for changed := true; changed; {
		changed = false
		for _, name := range comp {
			fi := a.index[name]
			g := a.graphs[name]
			// Exposure is judged with the pessimistic multithreaded prefix:
			// "would a collective run multithreaded if this function were
			// entered inside a parallel region".
			words := a.wordsOf(name)
			for _, n := range g.Nodes {
				unsafe := !monoAt(words, n, true)
				if n.Kind == cfg.KindCollective {
					k := n.Coll.Kind
					if !a.kinds[fi][k] {
						a.kinds[fi][k] = true
						changed = true
					}
					if unsafe && !a.exposed[fi][k] {
						a.exposed[fi][k] = true
						changed = true
					}
					continue
				}
				for _, callee := range n.Calls {
					ci, ok := a.index[callee]
					if !ok {
						continue
					}
					for k := range a.kinds[ci] {
						if !a.kinds[fi][k] {
							a.kinds[fi][k] = true
							changed = true
						}
					}
					// If the call site is unsafe, everything the callee can
					// expose when entered multithreaded is exposed here too.
					if unsafe {
						for k := range a.exposed[ci] {
							if !a.exposed[fi][k] {
								a.exposed[fi][k] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}
	for _, name := range comp {
		fi := a.index[name]
		a.summaries[fi] = Summary{
			Kinds:   sortedKinds(a.kinds[fi]),
			Exposed: sortedKinds(a.exposed[fi]),
		}
	}
}

func sortedKinds(set map[ast.MPIKind]bool) []ast.MPIKind {
	out := make([]ast.MPIKind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// collNodes returns the nodes of g that perform collectives, directly or
// through calls: for call nodes the relevant kinds come from the callee
// summary. The exposedOnly flag restricts call contributions to exposed
// kinds (used by phase 1, where an internally-protected callee is safe).
func (a *analyzer) collNodes(g *cfg.Graph, exposedOnly bool) map[*cfg.Node][]ast.MPIKind {
	out := make(map[*cfg.Node][]ast.MPIKind)
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindCollective {
			out[n] = []ast.MPIKind{n.Coll.Kind}
			continue
		}
		var ks []ast.MPIKind
		for _, callee := range n.Calls {
			sum, ok := a.summaryOf(callee)
			if !ok {
				continue
			}
			if exposedOnly {
				ks = append(ks, sum.Exposed...)
			} else {
				ks = append(ks, sum.Kinds...)
			}
		}
		if len(ks) > 0 {
			out[n] = ks
		}
	}
	return out
}

// Check runs the three verification phases for every function on the
// runner.
func (an *Analysis) Check() { an.a.run.Map(an.NumFuncs(), an.CheckFunc) }

// CheckFunc runs phases 1–3 for function i. All interprocedural stages
// must be finished; the per-function state it writes (the FuncAnalysis
// and its diagnostic buffer) is private to i, so distinct functions check
// concurrently.
func (an *Analysis) CheckFunc(i int) {
	a := an.a
	f := a.funcs[i]
	g := a.graphs[f.Name]
	multi := a.multiCtx[f.Name]
	words := a.wordsOf(f.Name)
	fa := &FuncAnalysis{
		Name:          f.Name,
		Graph:         g,
		Words:         words,
		Multithreaded: multi,
		SeqWarn:       make(map[string][]*cfg.Node),
	}
	a.fas[i] = fa

	// Report word conflicts (non-conforming barrier placement) once per node.
	for _, c := range words.Conflicts {
		fa.diag(Diagnostic{
			Kind: DiagAmbiguousWord,
			Pos:  c.Pos,
			Func: f.Name,
			Message: fmt.Sprintf(
				"parallelism word differs between paths (%s vs %s); barrier or region placement depends on control flow",
				c.A, c.B),
		})
	}

	a.phase1(f, fa)
	a.phase2(f, fa)
	a.phase3(f, fa)
	fa.NeedsInstrumentation = len(fa.MultithreadedColls) > 0 || len(fa.ConcPairs) > 0 || fa.NeedsCC
}

// Finish assembles the deterministic Result: per-function results and
// summaries keyed by name, diagnostics merged in declaration order plus
// the thread-level note, sorted into a canonical order independent of how
// the parallel stages were scheduled.
func (an *Analysis) Finish() *Result {
	a := an.a
	for i, f := range a.funcs {
		a.res.Summaries[f.Name] = a.summaries[i]
		if fa := a.fas[i]; fa != nil {
			a.res.Funcs[f.Name] = fa
			a.res.Diags = append(a.res.Diags, fa.diags...)
			fa.diags = nil
		}
	}
	a.res.RequiredLevel = a.requiredLevel()
	a.res.Diags = append(a.res.Diags, Diagnostic{
		Kind:    DiagThreadLevel,
		Pos:     a.prog.Pos(),
		Func:    a.opts.EntryFunc,
		Message: fmt.Sprintf("program requires at least %s", a.res.RequiredLevel),
	})
	SortDiagnostics(a.res.Diags)
	return a.res
}

// phase1 checks that every collective (or exposed callee collective) sits
// at a monothreaded parallelism word.
func (a *analyzer) phase1(f *ast.FuncDecl, fa *FuncAnalysis) {
	colls := a.collNodes(fa.Graph, true)
	ids := sortedNodeKeys(colls)
	for _, n := range ids {
		if monoAt(fa.Words, n, fa.Multithreaded) {
			continue
		}
		w := fa.Words.Word(n)
		fa.MultithreadedColls = append(fa.MultithreadedColls, n)
		dominator := a.contextNode(fa.Graph, w, fa.Multithreaded)
		if dominator != nil {
			fa.Sipw = appendUnique(fa.Sipw, dominator)
		}
		for _, name := range nodeCollNames(n, colls[n]) {
			d := Diagnostic{
				Kind:       DiagMultithreadedCollective,
				Pos:        n.Pos,
				Func:       f.Name,
				Collective: name,
				Message: fmt.Sprintf(
					"%s may be executed by multiple threads of an MPI process (parallelism word %s, initial context %s); requires %s and at most one executing thread",
					name, displayWord(w, fa.Multithreaded), contextName(fa.Multithreaded), ThreadMultiple),
			}
			if dominator != nil && dominator.Pos.IsValid() {
				d.Related = append(d.Related, dominator.Pos)
			}
			fa.diag(d)
		}
	}
}

// contextNode locates the Sipw node for a multithreaded word: the begin
// node of the innermost open parallel region, or the entry node when the
// multithreading comes from the unknown initial prefix.
func (a *analyzer) contextNode(g *cfg.Graph, w pword.Word, multi bool) *cfg.Node {
	for i := w.Len() - 1; i >= 0; i-- {
		l := w.At(i)
		if l.Kind == pword.P {
			for _, n := range g.Nodes {
				if n.Kind == cfg.KindParallelBegin && n.RegionID == l.ID {
					return n
				}
			}
		}
	}
	// No open parallel region in the function itself: the threading comes
	// from the caller's (unknown) context.
	_ = multi
	return g.Entry
}

// phase2 finds pairs of collectives in concurrent monothreaded regions.
func (a *analyzer) phase2(f *ast.FuncDecl, fa *FuncAnalysis) {
	colls := a.collNodes(fa.Graph, false)
	nodes := sortedNodeKeys(colls)
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			n1, n2 := nodes[i], nodes[j]
			w1, w2 := fa.Words.Word(n1), fa.Words.Word(n2)
			if !monoAt(fa.Words, n1, fa.Multithreaded) || !monoAt(fa.Words, n2, fa.Multithreaded) {
				continue // phase 1 already covers multithreaded nodes
			}
			if !pword.Concurrent(w1, w2) {
				continue
			}
			ra, rb := divergingRegions(w1, w2)
			pair := ConcPair{A: n1, B: n2, RegionA: ra, RegionB: rb}
			fa.ConcPairs = append(fa.ConcPairs, pair)
			for _, rid := range []int{ra, rb} {
				if begin := regionBegin(fa.Graph, rid); begin != nil {
					fa.Scc = appendUnique(fa.Scc, begin)
				}
			}
			fa.diag(Diagnostic{
				Kind:       DiagConcurrentCollectives,
				Pos:        n1.Pos,
				Func:       f.Name,
				Collective: nodeCollNames(n1, colls[n1])[0],
				Message: fmt.Sprintf(
					"%s and %s are in concurrent monothreaded regions (words %s / %s) and may execute simultaneously",
					nodeCollNames(n1, colls[n1])[0], nodeCollNames(n2, colls[n2])[0], w1, w2),
				Related: []source.Pos{n2.Pos},
			})
		}
	}
}

// divergingRegions returns the region ids of the first differing S letters.
func divergingRegions(w1, w2 pword.Word) (int, int) {
	i := 0
	for i < w1.Len() && i < w2.Len() {
		a, b := w1.At(i), w2.At(i)
		if a.Kind != b.Kind || (a.Kind != pword.B && a.ID != b.ID) {
			break
		}
		i++
	}
	return w1.At(i).ID, w2.At(i).ID
}

func regionBegin(g *cfg.Graph, id int) *cfg.Node {
	for _, n := range g.Nodes {
		if n.IsRegionBegin() && n.RegionID == id {
			return n
		}
	}
	return nil
}

// phase3 is PARCOACH Algorithm 1: for each collective kind, warn at every
// conditional in the iterated postdominance frontier of its call sites.
func (a *analyzer) phase3(f *ast.FuncDecl, fa *FuncAnalysis) {
	g := fa.Graph
	pdf := a.pdfFor(f.Name)
	colls := a.collNodes(g, false)
	taint := a.taintFor(f.Name)
	// Group nodes by collective name so warnings carry the MPI_* name.
	byName := make(map[string][]*cfg.Node)
	for n, ks := range colls {
		for _, name := range nodeCollNames(n, ks) {
			byName[name] = appendUnique(byName[name], n)
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		set := byName[name]
		sort.Slice(set, func(i, j int) bool { return set[i].ID < set[j].ID })
		divergers := filterDivergers(dom.Iterated(pdf, set), taint, a.opts.RawPDF)
		if len(divergers) == 0 {
			continue
		}
		fa.SeqWarn[name] = divergers
		fa.NeedsCC = true
		for _, d := range divergers {
			var rel []source.Pos
			for _, n := range set {
				rel = append(rel, n.Pos)
			}
			fa.diag(Diagnostic{
				Kind:       DiagCollectiveMismatch,
				Pos:        d.Pos,
				Func:       f.Name,
				Collective: name,
				Message: fmt.Sprintf(
					"control-flow divergence here decides whether/how often %s executes; processes taking different branches will not call the same collective sequence",
					name),
				Related: rel,
			})
		}
	}
}

// filterDivergers keeps the PDF+ members that can actually desynchronize
// processes. Construct-begin nodes with skip edges (single, master,
// sections) execute their bodies a deterministic number of times per
// process and are never inter-process divergence points. Branch nodes and
// worksharing loop headers diverge only when their controlling expressions
// are rank-dependent — unless raw mode keeps the unrefined set.
func filterDivergers(nodes []*cfg.Node, taint *rankTaint, raw bool) []*cfg.Node {
	var out []*cfg.Node
	for _, n := range nodes {
		switch n.Kind {
		case cfg.KindBranch:
			if raw || taint.exprTainted(n.Cond) {
				out = append(out, n)
			}
		case cfg.KindPforBegin:
			if raw {
				out = append(out, n)
				continue
			}
			if len(n.Stmts) == 1 {
				if pf, ok := n.Stmts[0].(*ast.PforStmt); ok {
					if taint.exprTainted(pf.From) || taint.exprTainted(pf.To) {
						out = append(out, n)
					}
				}
			}
		}
	}
	return out
}

// requiredLevel derives the minimum MPI thread level over all collectives.
func (a *analyzer) requiredLevel() ThreadLevel {
	level := ThreadSingle
	hasParallel := false
	for _, f := range a.prog.Funcs {
		g := a.graphs[f.Name]
		words := a.wordsOf(f.Name)
		for _, n := range g.Nodes {
			if n.Kind == cfg.KindParallelBegin {
				hasParallel = true
			}
			if n.Kind != cfg.KindCollective {
				continue
			}
			w := words.Word(n)
			var need ThreadLevel
			switch {
			case !monoAt(words, n, a.multiCtx[f.Name]):
				need = ThreadMultiple
			default:
				if s, ok := w.InnermostS(); ok {
					if s.Master {
						need = ThreadFunneled
					} else {
						need = ThreadSerialized
					}
				} else if w.Len() == 0 {
					need = ThreadSingle
				} else {
					// Word like "B…" at top level: still the initial thread.
					need = ThreadSingle
				}
			}
			if need > level {
				level = need
			}
		}
	}
	if level == ThreadSingle && hasParallel {
		level = ThreadFunneled
	}
	return level
}

func nodeCollNames(n *cfg.Node, ks []ast.MPIKind) []string {
	if n.Kind == cfg.KindCollective {
		return []string{n.Coll.Kind.String()}
	}
	// A call node: attribute to the call site.
	seen := make(map[string]bool)
	var out []string
	for _, callee := range n.Calls {
		name := "call:" + callee
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		out = []string{"collective"}
	}
	return out
}

func appendUnique(list []*cfg.Node, n *cfg.Node) []*cfg.Node {
	for _, m := range list {
		if m == n {
			return list
		}
	}
	return append(list, n)
}

func sortedNodeKeys(m map[*cfg.Node][]ast.MPIKind) []*cfg.Node {
	out := make([]*cfg.Node, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func contextName(multi bool) string {
	if multi {
		return "multithreaded"
	}
	return "monothreaded"
}
