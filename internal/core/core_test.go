package core

import (
	"strings"
	"testing"

	"parcoach/internal/ast"
	"parcoach/internal/parser"
)

func analyze(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog, err := parser.Parse("t.mh", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(prog, opts)
}

func analyzeMain(t *testing.T, body string) *Result {
	t.Helper()
	return analyze(t, "func main() {\n"+body+"\n}", Options{})
}

func kinds(r *Result) map[DiagKind]int { return CountByKind(r.Diags) }

func hasDiag(r *Result, k DiagKind, substr string) bool {
	for _, d := range r.Diags {
		if d.Kind == k && strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}

//
// Phase 1: monothreaded context
//

func TestCleanProgramNoErrors(t *testing.T) {
	r := analyzeMain(t, `
MPI_Init()
var x = 0
parallel {
	pfor i = 0 .. 8 { atomic x += i }
	single { MPI_Allreduce(x, x, sum) }
}
MPI_Barrier()
MPI_Finalize()`)
	if errs := r.Errors(); len(errs) != 0 {
		t.Errorf("clean program produced errors: %v", errs)
	}
	main := r.Funcs["main"]
	if main.NeedsInstrumentation {
		t.Error("clean program must not need instrumentation")
	}
}

func TestCollectiveInParallelFlagged(t *testing.T) {
	r := analyzeMain(t, "parallel { MPI_Barrier() }")
	if kinds(r)[DiagMultithreadedCollective] != 1 {
		t.Fatalf("want 1 multithreaded-collective warning, got %v", r.Diags)
	}
	main := r.Funcs["main"]
	if len(main.MultithreadedColls) != 1 {
		t.Error("set S must contain the collective node")
	}
	if len(main.Sipw) != 1 {
		t.Error("Sipw must contain the parallel begin")
	}
	if !main.NeedsInstrumentation {
		t.Error("phase-1 finding must trigger instrumentation")
	}
}

func TestCollectiveInPforFlagged(t *testing.T) {
	r := analyzeMain(t, "parallel { pfor i = 0 .. 4 { MPI_Barrier() } }")
	if kinds(r)[DiagMultithreadedCollective] != 1 {
		t.Errorf("collective in worksharing loop must be flagged: %v", r.Diags)
	}
}

func TestCollectiveInCriticalFlagged(t *testing.T) {
	r := analyzeMain(t, "parallel { critical { MPI_Barrier() } }")
	if kinds(r)[DiagMultithreadedCollective] != 1 {
		t.Error("critical does not make a region monothreaded")
	}
}

func TestCollectiveInSingleClean(t *testing.T) {
	r := analyzeMain(t, "var x = 0\nparallel { single { MPI_Bcast(x) } }")
	if kinds(r)[DiagMultithreadedCollective] != 0 {
		t.Errorf("single-protected collective flagged: %v", r.Diags)
	}
}

func TestCollectiveInMasterClean(t *testing.T) {
	r := analyzeMain(t, "var x = 0\nparallel { master { MPI_Bcast(x) } }")
	if kinds(r)[DiagMultithreadedCollective] != 0 {
		t.Errorf("master-protected collective flagged: %v", r.Diags)
	}
}

func TestNestedParallelFlagged(t *testing.T) {
	r := analyzeMain(t, "parallel { parallel { single { MPI_Barrier() } } }")
	if kinds(r)[DiagMultithreadedCollective] != 1 {
		t.Error("single under nested parallel must be flagged (one thread per team)")
	}
}

func TestMultithreadedInitialContext(t *testing.T) {
	r := analyze(t, "func main() { MPI_Barrier() }", Options{Initial: ContextMultithreaded})
	if kinds(r)[DiagMultithreadedCollective] != 1 {
		t.Error("bare collective under unknown multithreaded prefix must be flagged")
	}
	r2 := analyze(t, "func main() { single { MPI_Barrier() } }", Options{Initial: ContextMultithreaded})
	if kinds(r2)[DiagMultithreadedCollective] != 0 {
		t.Error("orphaned single protects the collective")
	}
}

//
// Phase 2: concurrent monothreaded regions
//

func TestConcurrentSinglesNowait(t *testing.T) {
	r := analyzeMain(t, `
var x = 0
var y = 0
parallel {
	single nowait { MPI_Bcast(x) }
	single { MPI_Reduce(y, y) }
}`)
	if kinds(r)[DiagConcurrentCollectives] != 1 {
		t.Fatalf("want 1 concurrent-collectives warning, got %v", r.Diags)
	}
	main := r.Funcs["main"]
	if len(main.ConcPairs) != 1 {
		t.Fatal("ConcPairs must record the pair")
	}
	if len(main.Scc) != 2 {
		t.Errorf("Scc must hold both region begins, got %d", len(main.Scc))
	}
}

func TestBarrierSeparatedSinglesClean(t *testing.T) {
	r := analyzeMain(t, `
var x = 0
var y = 0
parallel {
	single { MPI_Bcast(x) }
	single { MPI_Reduce(y, y) }
}`)
	if kinds(r)[DiagConcurrentCollectives] != 0 {
		t.Errorf("implicit barrier orders the singles: %v", r.Diags)
	}
}

func TestSectionsConcurrentCollectives(t *testing.T) {
	r := analyzeMain(t, `
var x = 0
var y = 0
parallel {
	sections {
		section { MPI_Bcast(x) }
		section { MPI_Reduce(y, y) }
	}
}`)
	if kinds(r)[DiagConcurrentCollectives] != 1 {
		t.Errorf("collectives in two sections must be flagged: %v", r.Diags)
	}
}

func TestMasterMasterStaticallyFlagged(t *testing.T) {
	// Statically concurrent (different S ids); the dynamic check clears it
	// because thread 0 runs both in order. The paper accepts this static
	// false positive.
	r := analyzeMain(t, `
var x = 0
parallel {
	master { MPI_Bcast(x) }
	master { MPI_Reduce(x, x) }
}`)
	if kinds(r)[DiagConcurrentCollectives] != 1 {
		t.Errorf("master/master is a static concurrent candidate: %v", r.Diags)
	}
}

//
// Phase 3: inter-process sequence (Algorithm 1)
//

func TestRankDependentBranchFlagged(t *testing.T) {
	r := analyzeMain(t, "if rank() == 0 { MPI_Barrier() }")
	if kinds(r)[DiagCollectiveMismatch] != 1 {
		t.Fatalf("want 1 collective-mismatch warning, got %v", r.Diags)
	}
	main := r.Funcs["main"]
	if !main.NeedsCC {
		t.Error("phase-3 finding must require CC instrumentation")
	}
	if len(main.SeqWarn["MPI_Barrier"]) != 1 {
		t.Error("SeqWarn must record the divergence branch")
	}
}

func TestProcessInvariantBranchClean(t *testing.T) {
	r := analyzeMain(t, "var n = 10\nif n > 5 { MPI_Barrier() }")
	if kinds(r)[DiagCollectiveMismatch] != 0 {
		t.Errorf("literal-bound branch is process-invariant: %v", r.Diags)
	}
	if r.Funcs["main"].NeedsCC {
		t.Error("no CC needed for invariant control flow")
	}
}

func TestRawPDFKeepsInvariantBranches(t *testing.T) {
	src := "func main() {\nvar n = 10\nif n > 5 { MPI_Barrier() }\n}"
	r := analyze(t, src, Options{RawPDF: true})
	if kinds(r)[DiagCollectiveMismatch] != 1 {
		t.Errorf("raw mode must keep the unrefined PDF+ output: %v", r.Diags)
	}
}

func TestTimeStepLoopClean(t *testing.T) {
	r := analyzeMain(t, `
var x = 0
for step = 0 .. 100 {
	MPI_Allreduce(x, x, sum)
}`)
	if kinds(r)[DiagCollectiveMismatch] != 0 {
		t.Errorf("literal time-step loop must not warn: %v", r.Diags)
	}
}

func TestRankDependentLoopFlagged(t *testing.T) {
	r := analyzeMain(t, `
var x = 0
var n = rank() + 2
for step = 0 .. n {
	MPI_Allreduce(x, x, sum)
}`)
	if kinds(r)[DiagCollectiveMismatch] != 1 {
		t.Errorf("rank-dependent trip count must warn: %v", r.Diags)
	}
}

func TestRecvDependentBranchFlagged(t *testing.T) {
	r := analyzeMain(t, `
var v = 0
MPI_Recv(v, 0)
if v > 0 { MPI_Barrier() }`)
	if kinds(r)[DiagCollectiveMismatch] != 1 {
		t.Errorf("received values are process-variant: %v", r.Diags)
	}
}

func TestAllreduceResultInvariant(t *testing.T) {
	r := analyzeMain(t, `
var v = 0
MPI_Allreduce(v, v, max)
if v > 0 { MPI_Barrier() }`)
	if kinds(r)[DiagCollectiveMismatch] != 0 {
		t.Errorf("allreduce produces identical values on every process: %v", r.Diags)
	}
}

func TestBothArmsSameCollectiveStillFlagged(t *testing.T) {
	// Algorithm 1 treats each collective kind separately: Barrier on one
	// side, Bcast on the other — both PDF+ sets contain the branch.
	r := analyzeMain(t, `
var x = 0
if rank() == 0 { MPI_Barrier() } else { MPI_Bcast(x) }`)
	if got := kinds(r)[DiagCollectiveMismatch]; got != 2 {
		t.Errorf("want 2 mismatch warnings (one per collective), got %d: %v", got, r.Diags)
	}
}

func TestEarlyReturnBeforeCollective(t *testing.T) {
	r := analyzeMain(t, `
if rank() % 2 == 0 {
	return
}
MPI_Barrier()`)
	if kinds(r)[DiagCollectiveMismatch] == 0 {
		t.Errorf("early return desynchronizes the collective: %v", r.Diags)
	}
}

//
// Interprocedural analysis
//

func TestSummaryKinds(t *testing.T) {
	r := analyze(t, `
func leaf() { MPI_Barrier() }
func mid() { leaf() }
func main() { mid() }`, Options{})
	for _, fn := range []string{"leaf", "mid", "main"} {
		sum := r.Summaries[fn]
		if !sum.HasCollective() {
			t.Errorf("%s summary must include the transitive barrier", fn)
		}
		if len(sum.Kinds) != 1 || sum.Kinds[0] != ast.MPIBarrier {
			t.Errorf("%s kinds = %v", fn, sum.Kinds)
		}
	}
}

func TestCallInParallelFlagged(t *testing.T) {
	r := analyze(t, `
func compute() { MPI_Barrier() }
func main() { parallel { compute() } }`, Options{})
	if kinds(r)[DiagMultithreadedCollective] == 0 {
		t.Errorf("call to collective-bearing function in parallel must warn: %v", r.Diags)
	}
}

func TestInternallyProtectedCalleeClean(t *testing.T) {
	// The callee wraps its collective in single: safe to call from a
	// parallel region (exposure analysis).
	r := analyze(t, `
func safe() { single { MPI_Barrier() } }
func main() { parallel { safe() } }`, Options{})
	if got := kinds(r)[DiagMultithreadedCollective]; got != 0 {
		t.Errorf("internally protected callee must not warn, got %d: %v", got, r.Diags)
	}
}

func TestContextPropagatesToCallee(t *testing.T) {
	// f is only ever called from inside a parallel region, so its bare
	// collective is multithreaded even though f itself has no parallel.
	r := analyze(t, `
func f() { MPI_Barrier() }
func main() { parallel { f() } }`, Options{})
	if !r.Funcs["f"].Multithreaded {
		t.Error("callee must inherit the multithreaded context")
	}
}

func TestMonoCalleeNotMultithreaded(t *testing.T) {
	r := analyze(t, `
func f() { MPI_Barrier() }
func main() { f() }`, Options{})
	if r.Funcs["f"].Multithreaded {
		t.Error("callee called from sequential context must stay monothreaded")
	}
	if len(r.Errors()) != 0 {
		t.Errorf("clean: %v", r.Errors())
	}
}

func TestRecursiveSummaryTerminates(t *testing.T) {
	r := analyze(t, `
func rec(n) {
	if n > 0 {
		MPI_Barrier()
		rec(n - 1)
	}
	return 0
}
func main() { rec(4) }`, Options{})
	if !r.Summaries["rec"].HasCollective() {
		t.Error("recursive summary must converge and include the barrier")
	}
}

func TestCallUnderRankBranchFlagged(t *testing.T) {
	r := analyze(t, `
func doColl() { MPI_Allreduce(x, x, sum) }
func main() {
	if rank() == 0 { doColl() }
}`, Options{})
	if kinds(r)[DiagCollectiveMismatch] == 0 {
		t.Errorf("summarized call under rank branch must warn: %v", r.Diags)
	}
}

//
// Thread level inference
//

func TestRequiredThreadLevels(t *testing.T) {
	tests := []struct {
		src  string
		want ThreadLevel
	}{
		{"func main() { MPI_Barrier() }", ThreadSingle},
		{"func main() { parallel { var x = 1 }\nMPI_Barrier() }", ThreadFunneled},
		{"func main() { var x = 0\nparallel { master { MPI_Bcast(x) } } }", ThreadFunneled},
		{"func main() { var x = 0\nparallel { single { MPI_Bcast(x) } } }", ThreadSerialized},
		{"func main() { parallel { MPI_Barrier() } }", ThreadMultiple},
	}
	for _, tt := range tests {
		r := analyze(t, tt.src, Options{})
		if r.RequiredLevel != tt.want {
			t.Errorf("RequiredLevel(%q) = %v, want %v", tt.src, r.RequiredLevel, tt.want)
		}
	}
}

func TestThreadLevelDiagEmitted(t *testing.T) {
	r := analyzeMain(t, "MPI_Barrier()")
	found := false
	for _, d := range r.Diags {
		if d.Kind == DiagThreadLevel {
			found = true
			if d.Kind.IsError() {
				t.Error("thread-level diag must be informational")
			}
		}
	}
	if !found {
		t.Error("thread-level diagnostic missing")
	}
}

//
// Ambiguity and diagnostics plumbing
//

func TestAmbiguousWordReported(t *testing.T) {
	r := analyzeMain(t, `
parallel {
	if tid() == 0 {
		barrier
	}
	single { MPI_Bcast(x) }
}`)
	if kinds(r)[DiagAmbiguousWord] == 0 {
		t.Errorf("path-dependent word must be reported: %v", r.Diags)
	}
}

func TestDiagnosticsSortedAndLocated(t *testing.T) {
	r := analyzeMain(t, `
if rank() == 0 { MPI_Barrier() }
parallel { MPI_Bcast(x) }`)
	var last Diagnostic
	for i, d := range r.Diags {
		if !d.Pos.IsValid() {
			t.Errorf("diag %d has no position: %v", i, d)
		}
		if i > 0 && d.Pos.File == last.Pos.File && d.Pos.Before(last.Pos) && last.Pos.Before(d.Pos) {
			t.Error("diags must be sorted")
		}
		last = d
	}
	// String rendering includes kind and position.
	s := r.Diags[0].String()
	if !strings.Contains(s, "t.mh:") {
		t.Errorf("diag String = %q", s)
	}
}

func TestConcurrentDiagCarriesRelatedPos(t *testing.T) {
	r := analyzeMain(t, `
var x = 0
var y = 0
parallel {
	single nowait { MPI_Bcast(x) }
	single { MPI_Reduce(y, y) }
}`)
	for _, d := range r.Diags {
		if d.Kind == DiagConcurrentCollectives && len(d.Related) == 0 {
			t.Error("concurrent warning must reference the partner collective")
		}
	}
}

func TestNeedsInstrumentationAggregation(t *testing.T) {
	r := analyze(t, `
func clean() { MPI_Barrier() }
func dirty() { if rank() == 0 { MPI_Barrier() } }
func main() {
	clean()
	dirty()
}`, Options{})
	if r.Funcs["clean"].NeedsInstrumentation {
		t.Error("clean function flagged")
	}
	if !r.Funcs["dirty"].NeedsInstrumentation {
		t.Error("dirty function not flagged")
	}
	if !r.NeedsInstrumentation() {
		t.Error("program-level aggregation wrong")
	}
}

func TestDiagKindStringAndIsError(t *testing.T) {
	for _, k := range []DiagKind{DiagMultithreadedCollective, DiagConcurrentCollectives, DiagCollectiveMismatch, DiagAmbiguousWord} {
		if k.String() == "" || !k.IsError() {
			t.Errorf("kind %d misbehaves", k)
		}
	}
	if DiagThreadLevel.IsError() {
		t.Error("thread-level is informational")
	}
	if ThreadMultiple.String() != "MPI_THREAD_MULTIPLE" {
		t.Error("thread level name wrong")
	}
}
