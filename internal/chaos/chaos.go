// Package chaos is the deterministic fault-injection harness behind the
// robustness test suite. Production code marks interesting boundaries
// with chaos.Here("tag"); in normal operation the mark is a single
// atomic pointer load of nil — no allocation, no branch taken. A test
// arms an injector with a seeded plan mapping tags to faults (panic,
// sleep, cancel), and the tagged sites start misbehaving on an exact,
// reproducible cadence: the Nth arrival at a tag panics, every arrival
// at another tag sleeps, and so on.
//
// Determinism is the point. Faults trigger by per-tag arrival count,
// not by time or randomness, so a failing chaos run replays exactly
// under -race and in CI, and a fault-free replay of the same workload
// is byte-identical to a run with no injector armed at all.
package chaos

import (
	"sync"
	"sync/atomic"
	"time"
)

// Action is what an armed rule does when it triggers.
type Action int

const (
	// ActPanic panics at the site with a chaos-identifiable value, to be
	// caught by the quarantine boundary under test.
	ActPanic Action = iota
	// ActSleep blocks the site for Rule.Sleep, simulating a wedged or
	// slow run for watchdog and drain-timeout tests.
	ActSleep
	// ActCancel invokes Rule.Cancel, typically a context.CancelFunc, so
	// a test can cancel exactly at a tagged point mid-flight.
	ActCancel
)

// PanicValue is the value chaos panics with, so quarantine tests can
// assert the caught panic really came from the injector.
type PanicValue struct {
	Tag string
	N   uint64 // which arrival triggered (1-based)
}

// Rule describes one tag's fault plan.
type Rule struct {
	// Every triggers on arrivals where count%Every == 0 (1 = every
	// arrival). Zero or negative means only the arrival numbered First.
	Every int
	// First is the earliest arrival (1-based) that may trigger; earlier
	// arrivals pass through untouched. Zero means 1.
	First int
	// Action selects the fault.
	Action Action
	// Sleep is ActSleep's duration.
	Sleep time.Duration
	// Cancel is ActCancel's target; nil makes ActCancel a no-op.
	Cancel func()
}

// Config maps site tags to rules. Tags with no rule are unaffected.
type Config map[string]Rule

// injector is the armed state; reached via one atomic pointer so the
// disarmed fast path costs a single nil check.
type injector struct {
	rules  Config
	mu     sync.Mutex
	counts map[string]uint64
	fired  map[string]uint64
}

var current atomic.Pointer[injector]

// Arm installs cfg and returns the disarm function. Tests must disarm
// (defer the returned func) before the next test arms its own plan;
// arming while armed replaces the previous plan.
func Arm(cfg Config) func() {
	inj := &injector{
		rules:  cfg,
		counts: make(map[string]uint64),
		fired:  make(map[string]uint64),
	}
	current.Store(inj)
	return func() { current.CompareAndSwap(inj, nil) }
}

// Fired reports how many times the rule for tag has triggered since its
// injector was armed. Zero when disarmed or the tag never fired.
func Fired(tag string) uint64 {
	inj := current.Load()
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired[tag]
}

// Here marks a fault-injection site. Disarmed (the production state) it
// is a single atomic load. Armed, it counts the arrival and triggers the
// tag's rule on the configured cadence — which may panic, so callers sit
// inside the quarantine boundary they are exercising.
func Here(tag string) {
	inj := current.Load()
	if inj == nil {
		return
	}
	inj.arrive(tag)
}

func (inj *injector) arrive(tag string) {
	rule, ok := inj.rules[tag]
	if !ok {
		return
	}
	inj.mu.Lock()
	inj.counts[tag]++
	n := inj.counts[tag]
	first := uint64(1)
	if rule.First > 0 {
		first = uint64(rule.First)
	}
	trigger := false
	if n >= first {
		if rule.Every > 0 {
			trigger = (n-first)%uint64(rule.Every) == 0
		} else {
			trigger = n == first
		}
	}
	if trigger {
		inj.fired[tag]++
	}
	inj.mu.Unlock()
	if !trigger {
		return
	}
	switch rule.Action {
	case ActPanic:
		panic(PanicValue{Tag: tag, N: n})
	case ActSleep:
		time.Sleep(rule.Sleep)
	case ActCancel:
		if rule.Cancel != nil {
			rule.Cancel()
		}
	}
}
