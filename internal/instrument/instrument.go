// Package instrument implements the paper's static instrumentation for
// execution-time verification. It transforms a deep copy of the analysed
// program, inserting runtime checks only where the compile-time phases
// left doubt (selective instrumentation, the source of the paper's low
// overhead):
//
//   - In functions flagged by phase 3, the check function CC is inserted
//     before each MPI collective operation, before each statement calling a
//     collective-bearing function, and before return statements / at the
//     function end (the paper wraps the return check in a single construct;
//     here the verifier runs it with execute-once team semantics).
//   - Collectives in the phase-1 set S get a per-barrier-phase execution
//     counter (InstrPhaseCount); their dominating parallel entries in Sipw
//     get a team-size probe (InstrMonoCheck) that clears false positives
//     when the region actually runs with one thread.
//   - Monothreaded regions in the phase-2 set Scc are bracketed with
//     InstrConcNote so the verifier can attribute concurrent collective
//     executions to their source regions; the collectives of each
//     concurrent pair are phase-counted as well.
package instrument

import (
	"parcoach/internal/ast"
	"parcoach/internal/cfg"
	"parcoach/internal/core"
	"parcoach/internal/source"
)

// Program returns an instrumented deep copy of prog. Functions without
// findings are copied verbatim. The analysis result must come from the
// same program value.
func Program(prog *ast.Program, res *core.Result) *ast.Program {
	clone := ast.CloneProgram(prog)
	for _, f := range clone.Funcs {
		Func(f, res.Funcs[f.Name], res)
	}
	return clone
}

// Func rewrites one already-cloned function in place according to its
// analysis (no-op when the function has no findings). It touches only f
// and reads res, so the compile pipeline instruments distinct functions
// concurrently.
func Func(f *ast.FuncDecl, fa *core.FuncAnalysis, res *core.Result) {
	if fa == nil || !fa.NeedsInstrumentation {
		return
	}
	ins := newInserter(fa, res)
	ins.rewriteBlock(f.Body)
	if fa.NeedsCC {
		// Check at function end for processes that fall off the end
		// while others still expect collectives.
		if n := len(f.Body.Stmts); n == 0 || !isReturn(f.Body.Stmts[n-1]) {
			f.Body.Stmts = append(f.Body.Stmts, &ast.InstrCCReturn{At: f.NamePos})
		}
	}
}

// Stats summarizes what was inserted; the benchmark harness reports it.
type Stats struct {
	CCChecks     int
	ReturnChecks int
	PhaseCounts  int
	MonoChecks   int
	ConcNotes    int
}

// Count tallies instrumentation statements in a (transformed) program.
func Count(prog *ast.Program) Stats {
	var st Stats
	ast.Inspect(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.InstrCC:
			st.CCChecks++
		case *ast.InstrCCReturn:
			st.ReturnChecks++
		case *ast.InstrPhaseCount:
			st.PhaseCounts++
		case *ast.InstrMonoCheck:
			st.MonoChecks++
		case *ast.InstrConcNote:
			st.ConcNotes++
		}
		return true
	})
	return st
}

type inserter struct {
	fa  *core.FuncAnalysis
	res *core.Result

	// phaseCount maps a statement position to the CFG node id whose
	// execution must be counted per barrier phase.
	phaseCount map[source.Pos]int
	// monoRegions are parallel-region ids needing a team-size probe.
	monoRegions map[int]bool
	// concRegions are single/master/section region ids in Scc.
	concRegions map[int]bool
	// needCC mirrors fa.NeedsCC.
	needCC bool
	// ctx tracks the lexical threading constructs around the rewrite
	// position: true entries are constructs every team thread executes
	// (parallel, pfor, critical), false entries are single-threaded bodies
	// (single, master, section).
	ctx []bool
}

// onceNow reports whether a check inserted here is reached by every thread
// of a team and therefore needs execute-once semantics.
func (ins *inserter) onceNow() bool {
	if len(ins.ctx) == 0 {
		return ins.fa.Multithreaded
	}
	return ins.ctx[len(ins.ctx)-1]
}

func (ins *inserter) pushCtx(multi bool) { ins.ctx = append(ins.ctx, multi) }
func (ins *inserter) popCtx()            { ins.ctx = ins.ctx[:len(ins.ctx)-1] }

func newInserter(fa *core.FuncAnalysis, res *core.Result) *inserter {
	ins := &inserter{
		fa:          fa,
		res:         res,
		phaseCount:  make(map[source.Pos]int),
		monoRegions: make(map[int]bool),
		concRegions: make(map[int]bool),
		needCC:      fa.NeedsCC,
	}
	for _, n := range fa.MultithreadedColls {
		ins.notePhaseCount(n)
	}
	for _, pair := range fa.ConcPairs {
		ins.notePhaseCount(pair.A)
		ins.notePhaseCount(pair.B)
	}
	for _, n := range fa.Sipw {
		if n.Kind == cfg.KindParallelBegin {
			ins.monoRegions[n.RegionID] = true
		}
	}
	for _, n := range fa.Scc {
		ins.concRegions[n.RegionID] = true
	}
	return ins
}

// notePhaseCount registers the first statement of a flagged node. Branch
// nodes (calls inside conditions) have no statement slot to prepend to and
// are covered by the CC checks instead.
func (ins *inserter) notePhaseCount(n *cfg.Node) {
	if len(n.Stmts) == 0 {
		return
	}
	ins.phaseCount[n.Stmts[0].Pos()] = n.ID
}

func isReturn(s ast.Stmt) bool {
	_, ok := s.(*ast.Return)
	return ok
}

// collectiveCallees returns the collective-bearing functions invoked from
// the statement's own expressions (not nested blocks).
func (ins *inserter) collectiveCallees(s ast.Stmt) []string {
	var exprs []ast.Expr
	switch s := s.(type) {
	case *ast.VarDecl:
		exprs = []ast.Expr{s.ArraySize, s.Init}
	case *ast.Assign:
		exprs = []ast.Expr{s.Target, s.Value}
	case *ast.CallStmt:
		exprs = []ast.Expr{s.Call}
	case *ast.If:
		exprs = []ast.Expr{s.Cond}
	case *ast.While:
		exprs = []ast.Expr{s.Cond}
	case *ast.For:
		exprs = []ast.Expr{s.From, s.To}
	case *ast.Print:
		exprs = s.Args
	case *ast.MPIStmt:
		exprs = []ast.Expr{s.Dst, s.Src, s.Root, s.Dest, s.Tag}
	case *ast.AtomicStmt:
		exprs = []ast.Expr{s.Target, s.Value}
	case *ast.PforStmt:
		exprs = []ast.Expr{s.From, s.To}
	case *ast.ParallelStmt:
		exprs = []ast.Expr{s.NumThreads}
	}
	var out []string
	seen := make(map[string]bool)
	for _, e := range exprs {
		if e == nil {
			continue
		}
		for _, name := range ast.Calls(e) {
			if seen[name] {
				continue
			}
			seen[name] = true
			if sum, ok := ins.res.Summaries[name]; ok && sum.HasCollective() {
				out = append(out, name)
			}
		}
	}
	return out
}

// rewriteBlock rewrites a block in place, prepending checks to flagged
// statements and recursing into nested constructs.
func (ins *inserter) rewriteBlock(b *ast.Block) {
	if b == nil {
		return
	}
	var out []ast.Stmt
	for _, s := range b.Stmts {
		out = append(out, ins.checksFor(s)...)
		ins.rewriteNested(s)
		out = append(out, s)
	}
	b.Stmts = out
}

// checksFor returns the instrumentation statements to insert immediately
// before s, in order: phase count, then CC.
func (ins *inserter) checksFor(s ast.Stmt) []ast.Stmt {
	var checks []ast.Stmt
	pos := s.Pos()
	if nodeID, ok := ins.phaseCount[pos]; ok {
		kind := ast.MPIBarrier
		if m, isMPI := s.(*ast.MPIStmt); isMPI {
			kind = m.Kind
		}
		checks = append(checks, &ast.InstrPhaseCount{At: pos, NodeID: nodeID, CollKind: kind})
	}
	if ins.needCC {
		once := ins.onceNow()
		switch st := s.(type) {
		case *ast.MPIStmt:
			// MPI_Finalize is collective over the world too: checking it
			// catches processes finalizing while peers still expect
			// collectives.
			if st.Kind.IsCollective() || st.Kind == ast.MPIFinalize {
				checks = append(checks, &ast.InstrCC{At: pos, CollKind: st.Kind, CollPos: pos, Once: once})
			}
		case *ast.Return:
			checks = append(checks, &ast.InstrCCReturn{At: pos, Once: once})
		}
		for _, callee := range ins.collectiveCallees(s) {
			checks = append(checks, &ast.InstrCC{At: pos, Callee: callee, CollPos: pos, Once: once})
		}
	}
	return checks
}

// rewriteNested recurses into compound statements, adding region-level
// instrumentation where the analysis flagged the region.
func (ins *inserter) rewriteNested(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.If:
		ins.rewriteBlock(s.Then)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.Block:
				ins.rewriteBlock(e)
			case *ast.If:
				ins.rewriteNested(e)
			}
		}
	case *ast.For:
		ins.rewriteBlock(s.Body)
	case *ast.While:
		ins.rewriteBlock(s.Body)
	case *ast.CriticalStmt:
		ins.pushCtx(true)
		ins.rewriteBlock(s.Body)
		ins.popCtx()
	case *ast.ParallelStmt:
		ins.pushCtx(true)
		ins.rewriteBlock(s.Body)
		ins.popCtx()
		if ins.monoRegions[s.RegionID] {
			s.Body.Stmts = append([]ast.Stmt{
				&ast.InstrMonoCheck{At: s.ParPos, RegionID: s.RegionID},
			}, s.Body.Stmts...)
		}
	case *ast.SingleStmt:
		ins.pushCtx(false)
		ins.rewriteBlock(s.Body)
		ins.popCtx()
		if ins.concRegions[s.RegionID] {
			ins.bracket(s.Body, s.SingPos, s.RegionID)
		}
	case *ast.MasterStmt:
		ins.pushCtx(false)
		ins.rewriteBlock(s.Body)
		ins.popCtx()
		if ins.concRegions[s.RegionID] {
			ins.bracket(s.Body, s.MastPos, s.RegionID)
		}
	case *ast.PforStmt:
		ins.pushCtx(true)
		ins.rewriteBlock(s.Body)
		ins.popCtx()
	case *ast.SectionsStmt:
		for i, body := range s.Bodies {
			ins.pushCtx(false)
			ins.rewriteBlock(body)
			ins.popCtx()
			if ins.concRegions[s.SectionIDs[i]] {
				ins.bracket(body, body.Lbrace, s.SectionIDs[i])
			}
		}
	}
}

// bracket wraps a region body in InstrConcNote enter/exit markers.
func (ins *inserter) bracket(b *ast.Block, pos source.Pos, regionID int) {
	stmts := make([]ast.Stmt, 0, len(b.Stmts)+2)
	stmts = append(stmts, &ast.InstrConcNote{At: pos, RegionID: regionID, Enter: true})
	stmts = append(stmts, b.Stmts...)
	stmts = append(stmts, &ast.InstrConcNote{At: pos, RegionID: regionID, Enter: false})
	b.Stmts = stmts
}
