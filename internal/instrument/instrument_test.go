package instrument

import (
	"strings"
	"testing"

	"parcoach/internal/ast"
	"parcoach/internal/core"
	"parcoach/internal/parser"
)

func run(t *testing.T, src string, opts core.Options) (*ast.Program, *ast.Program, *core.Result) {
	t.Helper()
	prog, err := parser.Parse("t.mh", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res := core.Analyze(prog, opts)
	inst := Program(prog, res)
	return prog, inst, res
}

func TestCleanProgramUntouched(t *testing.T) {
	src := `
func main() {
	MPI_Init()
	var x = 0
	parallel { single { MPI_Allreduce(x, x, sum) } }
	MPI_Finalize()
}`
	prog, inst, _ := run(t, src, core.Options{})
	if ast.String(prog) != ast.String(inst) {
		t.Error("clean program must be instrumented to an identical copy")
	}
	if st := Count(inst); st != (Stats{}) {
		t.Errorf("clean program got instrumentation: %+v", st)
	}
}

func TestCCInsertedBeforeCollectivesAndReturns(t *testing.T) {
	src := `
func main() {
	var x = 0
	if rank() == 0 {
		MPI_Bcast(x)
	}
	MPI_Barrier()
}`
	_, inst, res := run(t, src, core.Options{})
	if !res.Funcs["main"].NeedsCC {
		t.Fatal("phase 3 must fire")
	}
	st := Count(inst)
	if st.CCChecks != 2 {
		t.Errorf("want CC before both collectives, got %d", st.CCChecks)
	}
	if st.ReturnChecks != 1 {
		t.Errorf("want 1 end-of-function check, got %d", st.ReturnChecks)
	}
	// The CC for Bcast must precede the Bcast statement.
	text := ast.String(inst)
	ccIdx := strings.Index(text, "__cc(MPI_Bcast)")
	bcastIdx := strings.Index(text, "MPI_Bcast(x)")
	if ccIdx == -1 || bcastIdx == -1 || ccIdx > bcastIdx {
		t.Errorf("CC must precede the collective:\n%s", text)
	}
}

func TestCCBeforeExplicitReturn(t *testing.T) {
	src := `
func main() {
	if rank() % 2 == 0 {
		return
	}
	MPI_Barrier()
}`
	_, inst, _ := run(t, src, core.Options{})
	st := Count(inst)
	// One before the early return, one at the function end.
	if st.ReturnChecks != 2 {
		t.Errorf("want 2 return checks, got %d", st.ReturnChecks)
	}
}

func TestNoDuplicateEndCheckAfterTrailingReturn(t *testing.T) {
	src := `
func f() {
	if rank() == 0 { MPI_Barrier() }
	return 1
}
func main() { var x = f() }`
	_, inst, _ := run(t, src, core.Options{})
	f := inst.Func("f")
	last := f.Body.Stmts[len(f.Body.Stmts)-1]
	if _, ok := last.(*ast.Return); !ok {
		t.Error("trailing return must stay last (no dead end-check after it)")
	}
}

func TestPhaseCountForMultithreadedCollective(t *testing.T) {
	src := "func main() { parallel { MPI_Barrier() } }"
	_, inst, res := run(t, src, core.Options{})
	st := Count(inst)
	if st.PhaseCounts != 1 {
		t.Errorf("want 1 phase count, got %d", st.PhaseCounts)
	}
	if st.MonoChecks != 1 {
		t.Errorf("want 1 mono check at the parallel begin, got %d", st.MonoChecks)
	}
	if len(res.Funcs["main"].Sipw) != 1 {
		t.Error("Sipw must be recorded")
	}
	text := ast.String(inst)
	if !strings.Contains(text, "__phase_count") || !strings.Contains(text, "__mono_check") {
		t.Errorf("missing markers:\n%s", text)
	}
	// Mono check must be the first statement of the parallel body.
	idxMono := strings.Index(text, "__mono_check")
	idxPar := strings.Index(text, "parallel {")
	if idxPar == -1 || idxMono < idxPar {
		t.Error("mono check must sit inside the parallel body")
	}
}

func TestConcurrentRegionsBracketed(t *testing.T) {
	src := `
func main() {
	var x = 0
	var y = 0
	parallel {
		single nowait { MPI_Bcast(x) }
		single { MPI_Reduce(y, y) }
	}
}`
	_, inst, _ := run(t, src, core.Options{})
	st := Count(inst)
	if st.ConcNotes != 4 {
		t.Errorf("want enter/exit notes on both singles, got %d", st.ConcNotes)
	}
	if st.PhaseCounts != 2 {
		t.Errorf("both collectives of the pair must be counted, got %d", st.PhaseCounts)
	}
}

func TestSectionsBracketed(t *testing.T) {
	src := `
func main() {
	var x = 0
	var y = 0
	parallel {
		sections {
			section { MPI_Bcast(x) }
			section { MPI_Reduce(y, y) }
		}
	}
}`
	_, inst, _ := run(t, src, core.Options{})
	st := Count(inst)
	if st.ConcNotes != 4 {
		t.Errorf("want both sections bracketed, got %d notes", st.ConcNotes)
	}
}

func TestCallToCollectiveBearingFunctionGetsCC(t *testing.T) {
	src := `
func doColl() { MPI_Allreduce(x, x, sum) }
func main() {
	if rank() == 0 { doColl() }
}`
	_, inst, _ := run(t, src, core.Options{})
	text := ast.String(inst)
	if !strings.Contains(text, "__cc(call:doColl)") {
		t.Errorf("call site must get a CC with the callee id:\n%s", text)
	}
}

func TestOriginalProgramUnchanged(t *testing.T) {
	src := `
func main() {
	var x = 0
	if rank() == 0 { MPI_Bcast(x) }
}`
	prog, _, res := run(t, src, core.Options{})
	_ = res
	before := ast.String(prog)
	// Instrument again to be sure repeated use is safe.
	_ = Program(prog, res)
	if ast.String(prog) != before {
		t.Error("instrumentation must not mutate the analysed program")
	}
}

func TestSelectiveInstrumentationSkipsCleanFunctions(t *testing.T) {
	src := `
func cleanWork() {
	var x = 0
	MPI_Allreduce(x, x, sum)
}
func dirty() {
	if rank() == 0 { MPI_Barrier() }
}
func main() {
	cleanWork()
	dirty()
}`
	prog, inst, _ := run(t, src, core.Options{})
	// cleanWork carries no checks...
	cleanBefore := ast.String(prog.Func("cleanWork"))
	cleanAfter := ast.String(inst.Func("cleanWork"))
	if cleanBefore != cleanAfter {
		t.Error("selective instrumentation must leave clean functions alone")
	}
	// ...while dirty does.
	if !strings.Contains(ast.String(inst.Func("dirty")), "__cc(") {
		t.Error("flagged function must be instrumented")
	}
}

func TestInstrumentedProgramStillAnalyzable(t *testing.T) {
	// The instrumented tree must survive CFG building and re-analysis
	// (instr nodes are CFG-transparent).
	src := `
func main() {
	var x = 0
	parallel { MPI_Barrier() }
	if rank() == 0 { MPI_Bcast(x) }
}`
	_, inst, _ := run(t, src, core.Options{})
	res2 := core.Analyze(inst, core.Options{})
	if len(res2.Errors()) == 0 {
		t.Error("re-analysis of the instrumented tree must still see the bugs")
	}
}
