package workload

// BTMZ generates the Block-Tridiagonal multi-zone benchmark skeleton:
// zones distributed over MPI ranks, OpenMP parallelism within each zone,
// per-time-step boundary exchange (exch_qbc), x/y/z sweep solves, and a
// periodic convergence allreduce — the structure of NPB-MZ BT-MZ.
func BTMZ(sc Scale, bug Bug) Workload {
	e := &Emitter{}
	e.Line("// BT-MZ (synthetic): block-tridiagonal multi-zone, %d zones, %d steps", sc.Zones, sc.Steps)
	emitZoneHelpers(e, sc)
	emitSweeps(e, "bt", sc, 3) // x, y, z sweeps with three-point stencils
	emitExchQBC(e, sc)
	emitConvergence(e)
	emitVerify(e, "bt")

	e.Open("func timestep_zone(u, rhs, n, step) {")
	e.Open("parallel {")
	e.Open("pfor i = 0 .. n {")
	e.Line("rhs[i] = u[i] * 2 - step")
	e.Close()
	e.Line("var dummy = bt_sweep_x(u, rhs, n)")
	e.Line("dummy = bt_sweep_y(u, rhs, n)")
	e.Line("dummy = bt_sweep_z(u, rhs, n)")
	e.Open("pfor schedule(dynamic) i = 0 .. n {")
	e.Line("u[i] = u[i] + rhs[i] / 4")
	e.Close()
	if e.SeedThreadingBug(bug, "dummy") {
		// threading bug seeded inside the parallel region
	}
	e.Close()
	e.Line("return 0")
	e.Close()

	e.Open("func main() {")
	e.Line("MPI_Init()")
	e.Line("var myzones = zones_of(rank())")
	e.Line("var n = %d", sc.Points)
	e.Line("var u[%d]", sc.Points)
	e.Line("var rhs[%d]", sc.Points)
	e.Line("var z = 0")
	e.Open("for z = 0 .. %d {", sc.Zones)
	e.Line("var init = init_zone(u, n, z)")
	e.Close()
	e.Line("var residual = 0")
	e.Open("for step = 0 .. %d {", sc.Steps)
	e.Line("var ex = exch_qbc(u, n)")
	e.Open("for z = 0 .. %d {", sc.Zones)
	e.Line("var ts = timestep_zone(u, rhs, n, step)")
	e.Close()
	e.Open("if step %% 5 == 0 && myzones > 0 {")
	e.Line("residual = convergence(u, n)")
	e.Close()
	e.Close()
	if !e.SeedProcessBug(bug, "residual") && !e.SeedValueBug(bug, "residual") && bug == BugEarlyReturn {
		e.BugComment(bug)
		e.Open("if rank() %% 2 == 1 {")
		e.Line("MPI_Finalize()")
		e.Line("return 1")
		e.Close()
	}
	e.Line("var ok = verify_bt(u, n, residual)")
	e.Line("print(ok)")
	e.Line("MPI_Finalize()")
	e.Close()

	return Workload{Name: "BT-MZ", Source: e.String(), Procs: 4, Threads: 4, Bug: bug}
}

// SPMZ generates the Scalar-Pentadiagonal multi-zone benchmark: same
// multi-zone skeleton as BT-MZ but with diagonal ADI sweeps (more, smaller
// parallel loops) and a txinvr/ninvr factorization step.
func SPMZ(sc Scale, bug Bug) Workload {
	e := &Emitter{}
	e.Line("// SP-MZ (synthetic): scalar-pentadiagonal multi-zone, %d zones, %d steps", sc.Zones, sc.Steps)
	emitZoneHelpers(e, sc)
	emitSweeps(e, "sp", sc, 5) // pentadiagonal: wider stencil
	emitExchQBC(e, sc)
	emitConvergence(e)
	emitVerify(e, "sp")

	e.Open("func txinvr(u, rhs, n) {")
	e.Open("pfor i = 0 .. n {")
	e.Line("rhs[i] = rhs[i] - u[i] / 3")
	e.Close()
	e.Line("return 0")
	e.Close()

	e.Open("func adi(u, rhs, n, step) {")
	e.Open("parallel {")
	e.Line("var t = txinvr(u, rhs, n)")
	e.Line("t = sp_sweep_x(u, rhs, n)")
	e.Line("t = sp_sweep_y(u, rhs, n)")
	e.Line("t = sp_sweep_z(u, rhs, n)")
	e.Open("pfor i = 0 .. n {")
	e.Line("u[i] = u[i] + rhs[i] / 8 - step %% 3")
	e.Close()
	if e.SeedThreadingBug(bug, "t") {
	}
	e.Close()
	e.Line("return 0")
	e.Close()

	e.Open("func main() {")
	e.Line("MPI_Init()")
	e.Line("var myzones = zones_of(rank())")
	e.Line("var n = %d", sc.Points)
	e.Line("var u[%d]", sc.Points)
	e.Line("var rhs[%d]", sc.Points)
	e.Open("for z = 0 .. %d {", sc.Zones)
	e.Line("var init = init_zone(u, n, z)")
	e.Close()
	e.Line("var residual = 0")
	e.Open("for step = 0 .. %d {", sc.Steps)
	e.Line("var ex = exch_qbc(u, n)")
	e.Open("for z = 0 .. %d {", sc.Zones)
	e.Line("var a = adi(u, rhs, n, step)")
	e.Close()
	e.Open("if step %% 4 == 0 && myzones > 0 {")
	e.Line("residual = convergence(u, n)")
	e.Close()
	e.Close()
	if !e.SeedProcessBug(bug, "residual") && !e.SeedValueBug(bug, "residual") && bug == BugEarlyReturn {
		e.BugComment(bug)
		e.Open("if rank() %% 2 == 1 {")
		e.Line("MPI_Finalize()")
		e.Line("return 1")
		e.Close()
	}
	e.Line("var ok = verify_sp(u, n, residual)")
	e.Line("print(ok)")
	e.Line("MPI_Finalize()")
	e.Close()

	return Workload{Name: "SP-MZ", Source: e.String(), Procs: 4, Threads: 4, Bug: bug}
}

// LUMZ generates the Lower-Upper multi-zone benchmark: SSOR iterations
// with pipelined lower/upper sweeps (threads synchronize with explicit
// barriers between wavefronts) — the deepest threading structure of the
// three MZ codes.
func LUMZ(sc Scale, bug Bug) Workload {
	e := &Emitter{}
	e.Line("// LU-MZ (synthetic): lower-upper SSOR multi-zone, %d zones, %d steps", sc.Zones, sc.Steps)
	emitZoneHelpers(e, sc)
	emitExchQBC(e, sc)
	emitConvergence(e)
	emitVerify(e, "lu")

	// jacld/jacu: local factorizations.
	for _, nm := range []string{"jacld", "jacu"} {
		e.Open("func %s(u, rhs, n) {", nm)
		e.Open("pfor i = 0 .. n {")
		e.Line("rhs[i] = rhs[i] + u[i] %% 7")
		e.Close()
		e.Line("return 0")
		e.Close()
	}
	// blts/buts: pipelined wavefront sweeps with barriers between fronts.
	for _, nm := range []string{"blts", "buts"} {
		e.Open("func %s(u, rhs, n, fronts) {", nm)
		e.Open("for f = 0 .. fronts {")
		e.Open("pfor i = 0 .. n {")
		e.Line("u[i] = u[i] + (rhs[i] - f) / 5")
		e.Close()
		e.Close()
		e.Line("return 0")
		e.Close()
	}

	e.Open("func ssor(u, rhs, n, step) {")
	e.Open("parallel {")
	e.Line("var j = jacld(u, rhs, n)")
	e.Line("j = blts(u, rhs, n, 4)")
	e.Line("barrier")
	e.Line("j = jacu(u, rhs, n)")
	e.Line("j = buts(u, rhs, n, 4)")
	if e.SeedThreadingBug(bug, "j") {
	}
	e.Close()
	e.Line("return 0")
	e.Close()

	e.Open("func main() {")
	e.Line("MPI_Init()")
	e.Line("var myzones = zones_of(rank())")
	e.Line("var n = %d", sc.Points)
	e.Line("var u[%d]", sc.Points)
	e.Line("var rhs[%d]", sc.Points)
	e.Open("for z = 0 .. %d {", sc.Zones)
	e.Line("var init = init_zone(u, n, z)")
	e.Close()
	e.Line("var residual = 0")
	e.Open("for step = 0 .. %d {", sc.Steps)
	e.Line("var ex = exch_qbc(u, n)")
	e.Open("for z = 0 .. %d {", sc.Zones)
	e.Line("var s = ssor(u, rhs, n, step)")
	e.Close()
	e.Open("if step %% 3 == 0 && myzones > 0 {")
	e.Line("residual = convergence(u, n)")
	e.Close()
	e.Close()
	if !e.SeedProcessBug(bug, "residual") && !e.SeedValueBug(bug, "residual") && bug == BugEarlyReturn {
		e.BugComment(bug)
		e.Open("if rank() %% 2 == 1 {")
		e.Line("MPI_Finalize()")
		e.Line("return 1")
		e.Close()
	}
	e.Line("var ok = verify_lu(u, n, residual)")
	e.Line("print(ok)")
	e.Line("MPI_Finalize()")
	e.Close()

	return Workload{Name: "LU-MZ", Source: e.String(), Procs: 4, Threads: 4, Bug: bug}
}

//
// Shared multi-zone helpers
//

func emitZoneHelpers(e *Emitter, sc Scale) {
	// zones_of computes the per-rank zone count of the multi-zone
	// distribution. Every rank owns at least one zone, but the analysis
	// cannot prove that: collectives guarded by "myzones > 0" are exactly
	// the correct-but-statically-unprovable pattern PARCOACH's selective
	// instrumentation exists to validate at run time.
	e.Open("func zones_of(r) {")
	e.Line("return r %% size() + 1")
	e.Close()

	e.Open("func init_zone(u, n, z) {")
	e.Open("for i = 0 .. n {")
	e.Line("u[i] = (i + z) %% 11 + 1")
	e.Close()
	e.Line("return 0")
	e.Close()

	e.Open("func zone_energy(u, n) {")
	e.Line("var acc = 0")
	e.Open("for i = 0 .. n {")
	e.Line("acc += u[i]")
	e.Close()
	e.Line("return acc")
	e.Close()
}

// emitSweeps generates per-direction solver sweeps with a stencil width.
func emitSweeps(e *Emitter, prefix string, sc Scale, width int) {
	for _, dir := range []string{"x", "y", "z"} {
		e.Open("func %s_sweep_%s(u, rhs, n) {", prefix, dir)
		e.Open("pfor i = 0 .. n {")
		e.Line("var acc = rhs[i]")
		e.Open("for k = 0 .. %d {", width)
		e.Line("acc += (u[i] + k) %% 9")
		e.Close()
		e.Line("rhs[i] = acc / %d", width)
		e.Close()
		e.Line("return 0")
		e.Close()
	}
}

// emitExchQBC generates the inter-zone boundary exchange: neighbor
// send/recv in a deadlock-free even/odd order.
func emitExchQBC(e *Emitter, sc Scale) {
	e.Open("func exch_qbc(u, n) {")
	e.Line("var left = rank() - 1")
	e.Line("var right = rank() + 1")
	e.Line("var inbound = 0")
	e.Open("if rank() %% 2 == 0 {")
	e.Open("if right < size() {")
	e.Line("MPI_Send(u[n - 1], right, 10)")
	e.Line("MPI_Recv(inbound, right, 11)")
	e.Close()
	e.Open("if left >= 0 {")
	e.Line("MPI_Recv(inbound, left, 10)")
	e.Line("MPI_Send(u[0], left, 11)")
	e.Close()
	e.ElseOpen()
	e.Open("if left >= 0 {")
	e.Line("MPI_Recv(inbound, left, 10)")
	e.Line("MPI_Send(u[0], left, 11)")
	e.Close()
	e.Open("if right < size() {")
	e.Line("MPI_Send(u[n - 1], right, 10)")
	e.Line("MPI_Recv(inbound, right, 11)")
	e.Close()
	e.Close()
	e.Line("u[0] = u[0] + inbound %% 5")
	e.Line("return 0")
	e.Close()
}

// emitConvergence generates the periodic residual allreduce.
func emitConvergence(e *Emitter) {
	e.Open("func convergence(u, n) {")
	e.Line("var local = zone_energy(u, n)")
	e.Line("var global = 0")
	e.Line("MPI_Allreduce(global, local, sum)")
	e.Line("return global")
	e.Close()
}

// emitVerify generates the end-of-run verification: a reduce of the
// checksum to rank 0 and a broadcast of the verdict.
func emitVerify(e *Emitter, prefix string) {
	e.Open("func verify_%s(u, n, residual) {", prefix)
	e.Line("var chk = zone_energy(u, n) + residual")
	e.Line("var total = 0")
	e.Line("MPI_Reduce(total, chk, sum, 0)")
	e.Line("var verdict = 0")
	e.Open("if rank() == 0 {")
	e.Open("if total > 0 {")
	e.Line("verdict = 1")
	e.Close()
	e.Close()
	e.Line("MPI_Bcast(verdict, 0)")
	e.Line("return verdict")
	e.Close()
}
