package workload

// BTMZ generates the Block-Tridiagonal multi-zone benchmark skeleton:
// zones distributed over MPI ranks, OpenMP parallelism within each zone,
// per-time-step boundary exchange (exch_qbc), x/y/z sweep solves, and a
// periodic convergence allreduce — the structure of NPB-MZ BT-MZ.
func BTMZ(sc Scale, bug Bug) Workload {
	e := &emitter{}
	e.line("// BT-MZ (synthetic): block-tridiagonal multi-zone, %d zones, %d steps", sc.Zones, sc.Steps)
	emitZoneHelpers(e, sc)
	emitSweeps(e, "bt", sc, 3) // x, y, z sweeps with three-point stencils
	emitExchQBC(e, sc)
	emitConvergence(e)
	emitVerify(e, "bt")

	e.open("func timestep_zone(u, rhs, n, step) {")
	e.open("parallel {")
	e.open("pfor i = 0 .. n {")
	e.line("rhs[i] = u[i] * 2 - step")
	e.close()
	e.line("var dummy = bt_sweep_x(u, rhs, n)")
	e.line("dummy = bt_sweep_y(u, rhs, n)")
	e.line("dummy = bt_sweep_z(u, rhs, n)")
	e.open("pfor schedule(dynamic) i = 0 .. n {")
	e.line("u[i] = u[i] + rhs[i] / 4")
	e.close()
	if e.seedThreadingBug(bug, "dummy") {
		// threading bug seeded inside the parallel region
	}
	e.close()
	e.line("return 0")
	e.close()

	e.open("func main() {")
	e.line("MPI_Init()")
	e.line("var myzones = zones_of(rank())")
	e.line("var n = %d", sc.Points)
	e.line("var u[%d]", sc.Points)
	e.line("var rhs[%d]", sc.Points)
	e.line("var z = 0")
	e.open("for z = 0 .. %d {", sc.Zones)
	e.line("var init = init_zone(u, n, z)")
	e.close()
	e.line("var residual = 0")
	e.open("for step = 0 .. %d {", sc.Steps)
	e.line("var ex = exch_qbc(u, n)")
	e.open("for z = 0 .. %d {", sc.Zones)
	e.line("var ts = timestep_zone(u, rhs, n, step)")
	e.close()
	e.open("if step %% 5 == 0 && myzones > 0 {")
	e.line("residual = convergence(u, n)")
	e.close()
	e.close()
	if !e.seedProcessBug(bug, "residual") && bug == BugEarlyReturn {
		e.bugComment(bug)
		e.open("if rank() %% 2 == 1 {")
		e.line("MPI_Finalize()")
		e.line("return 1")
		e.close()
	}
	e.line("var ok = verify_bt(u, n, residual)")
	e.line("print(ok)")
	e.line("MPI_Finalize()")
	e.close()

	return Workload{Name: "BT-MZ", Source: e.String(), Procs: 4, Threads: 4, Bug: bug}
}

// SPMZ generates the Scalar-Pentadiagonal multi-zone benchmark: same
// multi-zone skeleton as BT-MZ but with diagonal ADI sweeps (more, smaller
// parallel loops) and a txinvr/ninvr factorization step.
func SPMZ(sc Scale, bug Bug) Workload {
	e := &emitter{}
	e.line("// SP-MZ (synthetic): scalar-pentadiagonal multi-zone, %d zones, %d steps", sc.Zones, sc.Steps)
	emitZoneHelpers(e, sc)
	emitSweeps(e, "sp", sc, 5) // pentadiagonal: wider stencil
	emitExchQBC(e, sc)
	emitConvergence(e)
	emitVerify(e, "sp")

	e.open("func txinvr(u, rhs, n) {")
	e.open("pfor i = 0 .. n {")
	e.line("rhs[i] = rhs[i] - u[i] / 3")
	e.close()
	e.line("return 0")
	e.close()

	e.open("func adi(u, rhs, n, step) {")
	e.open("parallel {")
	e.line("var t = txinvr(u, rhs, n)")
	e.line("t = sp_sweep_x(u, rhs, n)")
	e.line("t = sp_sweep_y(u, rhs, n)")
	e.line("t = sp_sweep_z(u, rhs, n)")
	e.open("pfor i = 0 .. n {")
	e.line("u[i] = u[i] + rhs[i] / 8 - step %% 3")
	e.close()
	if e.seedThreadingBug(bug, "t") {
	}
	e.close()
	e.line("return 0")
	e.close()

	e.open("func main() {")
	e.line("MPI_Init()")
	e.line("var myzones = zones_of(rank())")
	e.line("var n = %d", sc.Points)
	e.line("var u[%d]", sc.Points)
	e.line("var rhs[%d]", sc.Points)
	e.open("for z = 0 .. %d {", sc.Zones)
	e.line("var init = init_zone(u, n, z)")
	e.close()
	e.line("var residual = 0")
	e.open("for step = 0 .. %d {", sc.Steps)
	e.line("var ex = exch_qbc(u, n)")
	e.open("for z = 0 .. %d {", sc.Zones)
	e.line("var a = adi(u, rhs, n, step)")
	e.close()
	e.open("if step %% 4 == 0 && myzones > 0 {")
	e.line("residual = convergence(u, n)")
	e.close()
	e.close()
	if !e.seedProcessBug(bug, "residual") && bug == BugEarlyReturn {
		e.bugComment(bug)
		e.open("if rank() %% 2 == 1 {")
		e.line("MPI_Finalize()")
		e.line("return 1")
		e.close()
	}
	e.line("var ok = verify_sp(u, n, residual)")
	e.line("print(ok)")
	e.line("MPI_Finalize()")
	e.close()

	return Workload{Name: "SP-MZ", Source: e.String(), Procs: 4, Threads: 4, Bug: bug}
}

// LUMZ generates the Lower-Upper multi-zone benchmark: SSOR iterations
// with pipelined lower/upper sweeps (threads synchronize with explicit
// barriers between wavefronts) — the deepest threading structure of the
// three MZ codes.
func LUMZ(sc Scale, bug Bug) Workload {
	e := &emitter{}
	e.line("// LU-MZ (synthetic): lower-upper SSOR multi-zone, %d zones, %d steps", sc.Zones, sc.Steps)
	emitZoneHelpers(e, sc)
	emitExchQBC(e, sc)
	emitConvergence(e)
	emitVerify(e, "lu")

	// jacld/jacu: local factorizations.
	for _, nm := range []string{"jacld", "jacu"} {
		e.open("func %s(u, rhs, n) {", nm)
		e.open("pfor i = 0 .. n {")
		e.line("rhs[i] = rhs[i] + u[i] %% 7")
		e.close()
		e.line("return 0")
		e.close()
	}
	// blts/buts: pipelined wavefront sweeps with barriers between fronts.
	for _, nm := range []string{"blts", "buts"} {
		e.open("func %s(u, rhs, n, fronts) {", nm)
		e.open("for f = 0 .. fronts {")
		e.open("pfor i = 0 .. n {")
		e.line("u[i] = u[i] + (rhs[i] - f) / 5")
		e.close()
		e.close()
		e.line("return 0")
		e.close()
	}

	e.open("func ssor(u, rhs, n, step) {")
	e.open("parallel {")
	e.line("var j = jacld(u, rhs, n)")
	e.line("j = blts(u, rhs, n, 4)")
	e.line("barrier")
	e.line("j = jacu(u, rhs, n)")
	e.line("j = buts(u, rhs, n, 4)")
	if e.seedThreadingBug(bug, "j") {
	}
	e.close()
	e.line("return 0")
	e.close()

	e.open("func main() {")
	e.line("MPI_Init()")
	e.line("var myzones = zones_of(rank())")
	e.line("var n = %d", sc.Points)
	e.line("var u[%d]", sc.Points)
	e.line("var rhs[%d]", sc.Points)
	e.open("for z = 0 .. %d {", sc.Zones)
	e.line("var init = init_zone(u, n, z)")
	e.close()
	e.line("var residual = 0")
	e.open("for step = 0 .. %d {", sc.Steps)
	e.line("var ex = exch_qbc(u, n)")
	e.open("for z = 0 .. %d {", sc.Zones)
	e.line("var s = ssor(u, rhs, n, step)")
	e.close()
	e.open("if step %% 3 == 0 && myzones > 0 {")
	e.line("residual = convergence(u, n)")
	e.close()
	e.close()
	if !e.seedProcessBug(bug, "residual") && bug == BugEarlyReturn {
		e.bugComment(bug)
		e.open("if rank() %% 2 == 1 {")
		e.line("MPI_Finalize()")
		e.line("return 1")
		e.close()
	}
	e.line("var ok = verify_lu(u, n, residual)")
	e.line("print(ok)")
	e.line("MPI_Finalize()")
	e.close()

	return Workload{Name: "LU-MZ", Source: e.String(), Procs: 4, Threads: 4, Bug: bug}
}

//
// Shared multi-zone helpers
//

func emitZoneHelpers(e *emitter, sc Scale) {
	// zones_of computes the per-rank zone count of the multi-zone
	// distribution. Every rank owns at least one zone, but the analysis
	// cannot prove that: collectives guarded by "myzones > 0" are exactly
	// the correct-but-statically-unprovable pattern PARCOACH's selective
	// instrumentation exists to validate at run time.
	e.open("func zones_of(r) {")
	e.line("return r %% size() + 1")
	e.close()

	e.open("func init_zone(u, n, z) {")
	e.open("for i = 0 .. n {")
	e.line("u[i] = (i + z) %% 11 + 1")
	e.close()
	e.line("return 0")
	e.close()

	e.open("func zone_energy(u, n) {")
	e.line("var acc = 0")
	e.open("for i = 0 .. n {")
	e.line("acc += u[i]")
	e.close()
	e.line("return acc")
	e.close()
}

// emitSweeps generates per-direction solver sweeps with a stencil width.
func emitSweeps(e *emitter, prefix string, sc Scale, width int) {
	for _, dir := range []string{"x", "y", "z"} {
		e.open("func %s_sweep_%s(u, rhs, n) {", prefix, dir)
		e.open("pfor i = 0 .. n {")
		e.line("var acc = rhs[i]")
		e.open("for k = 0 .. %d {", width)
		e.line("acc += (u[i] + k) %% 9")
		e.close()
		e.line("rhs[i] = acc / %d", width)
		e.close()
		e.line("return 0")
		e.close()
	}
}

// emitExchQBC generates the inter-zone boundary exchange: neighbor
// send/recv in a deadlock-free even/odd order.
func emitExchQBC(e *emitter, sc Scale) {
	e.open("func exch_qbc(u, n) {")
	e.line("var left = rank() - 1")
	e.line("var right = rank() + 1")
	e.line("var inbound = 0")
	e.open("if rank() %% 2 == 0 {")
	e.open("if right < size() {")
	e.line("MPI_Send(u[n - 1], right, 10)")
	e.line("MPI_Recv(inbound, right, 11)")
	e.close()
	e.open("if left >= 0 {")
	e.line("MPI_Recv(inbound, left, 10)")
	e.line("MPI_Send(u[0], left, 11)")
	e.close()
	e.elseOpen()
	e.open("if left >= 0 {")
	e.line("MPI_Recv(inbound, left, 10)")
	e.line("MPI_Send(u[0], left, 11)")
	e.close()
	e.open("if right < size() {")
	e.line("MPI_Send(u[n - 1], right, 10)")
	e.line("MPI_Recv(inbound, right, 11)")
	e.close()
	e.close()
	e.line("u[0] = u[0] + inbound %% 5")
	e.line("return 0")
	e.close()
}

// emitConvergence generates the periodic residual allreduce.
func emitConvergence(e *emitter) {
	e.open("func convergence(u, n) {")
	e.line("var local = zone_energy(u, n)")
	e.line("var global = 0")
	e.line("MPI_Allreduce(global, local, sum)")
	e.line("return global")
	e.close()
}

// emitVerify generates the end-of-run verification: a reduce of the
// checksum to rank 0 and a broadcast of the verdict.
func emitVerify(e *emitter, prefix string) {
	e.open("func verify_%s(u, n, residual) {", prefix)
	e.line("var chk = zone_energy(u, n) + residual")
	e.line("var total = 0")
	e.line("MPI_Reduce(total, chk, sum, 0)")
	e.line("var verdict = 0")
	e.open("if rank() == 0 {")
	e.open("if total > 0 {")
	e.line("verdict = 1")
	e.close()
	e.close()
	e.line("MPI_Bcast(verdict, 0)")
	e.line("return verdict")
	e.close()
}
