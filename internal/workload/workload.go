// Package workload generates the synthetic MiniHybrid equivalents of the
// benchmarks the paper evaluates on: the NAS multi-zone benchmarks BT-MZ,
// SP-MZ and LU-MZ (NPB-MZ v3.2 class B in the paper), the EPCC
// mixed-mode OpenMP/MPI micro-benchmark suite, and HERA, a large
// multi-physics AMR hydrocode platform.
//
// What matters for reproducing the paper's experiments is the structural
// signature of each code — function counts, call depth, branching around
// collectives, threading constructs, halo exchanges — not its numerics:
// Figure 1 measures compile-time overhead, which scales with code shape,
// and the runtime experiments measure check overhead, which scales with
// collective and region counts. Each generator is deterministic in its
// Scale and can optionally seed one of the paper's bug classes to produce
// the detection-matrix corpus.
package workload

import (
	"fmt"
	"strings"
)

// Scale sizes a generated benchmark, loosely playing the role of the NPB
// class (S, W, A, B ...).
type Scale struct {
	// Zones is the number of zones (multi-zone benchmarks).
	Zones int
	// Steps is the number of time steps the main loop runs.
	Steps int
	// Points is the per-zone working-array length.
	Points int
	// Modules is the number of physics modules (HERA).
	Modules int
	// Reps is the repetition count of micro-kernels (EPCC).
	Reps int
}

// ScaleS is a tiny smoke-test scale (fast runs in unit tests).
var ScaleS = Scale{Zones: 2, Steps: 3, Points: 8, Modules: 4, Reps: 3}

// ScaleA is a small benchmarking scale.
var ScaleA = Scale{Zones: 4, Steps: 10, Points: 32, Modules: 16, Reps: 10}

// ScaleB approximates the paper's class-B-sized inputs (large code for
// HERA, longer loops for the MZ codes).
var ScaleB = Scale{Zones: 8, Steps: 20, Points: 64, Modules: 40, Reps: 20}

// Bug enumerates the error classes seeded into benchmarks for the
// detection-matrix experiment; they are the bug patterns from the paper's
// problem statement.
type Bug int

// Bug classes.
const (
	// BugNone generates the correct benchmark.
	BugNone Bug = iota
	// BugMultithreadedCollective places a collective directly in a
	// parallel region (phase-1 error: executed by every thread).
	BugMultithreadedCollective
	// BugConcurrentSingles puts two collectives in nowait-single regions
	// of the same barrier phase (phase-2 error).
	BugConcurrentSingles
	// BugSectionsCollectives puts collectives in two sections of one
	// sections construct (phase-2 error).
	BugSectionsCollectives
	// BugRankDependentCollective guards a collective by rank (phase-3
	// error: not all processes call it).
	BugRankDependentCollective
	// BugEarlyReturn returns from the compute routine on odd ranks before
	// a collective (phase-3 error).
	BugEarlyReturn
	// BugMismatchedKinds makes rank 0 call a different collective than
	// the others (phase-3 error).
	BugMismatchedKinds
	// BugWrongRoot makes ranks disagree on a rooted collective's root
	// argument (value error: structurally matched, wrong arguments).
	BugWrongRoot
	// BugWrongOp makes ranks reduce under different operators via
	// rank-divergent branches that call the same collective kind (value
	// error: the kind check passes, the result is wrong).
	BugWrongOp
	// BugTornBuffer races a concurrent write against a collective's
	// source buffer so the matched round can read a torn mix of old and
	// new elements (value error: schedule-dependent).
	BugTornBuffer
)

var bugNames = map[Bug]string{
	BugNone:                    "none",
	BugMultithreadedCollective: "multithreaded-collective",
	BugConcurrentSingles:       "concurrent-singles",
	BugSectionsCollectives:     "sections-collectives",
	BugRankDependentCollective: "rank-dependent-collective",
	BugEarlyReturn:             "early-return",
	BugMismatchedKinds:         "mismatched-kinds",
	BugWrongRoot:               "wrong-root",
	BugWrongOp:                 "wrong-op",
	BugTornBuffer:              "torn-buffer",
}

func (b Bug) String() string {
	if s, ok := bugNames[b]; ok {
		return s
	}
	return fmt.Sprintf("bug(%d)", int(b))
}

// AllBugs lists the seedable error classes (excluding BugNone).
var AllBugs = []Bug{
	BugMultithreadedCollective, BugConcurrentSingles, BugSectionsCollectives,
	BugRankDependentCollective, BugEarlyReturn, BugMismatchedKinds,
	BugWrongRoot, BugWrongOp, BugTornBuffer,
}

// Workload is one generated benchmark program.
type Workload struct {
	Name   string
	Source string
	// Procs/Threads are the recommended run parameters.
	Procs   int
	Threads int
	// Bug records the seeded error class (BugNone for correct programs).
	Bug Bug
}

// Figure1Set returns the five benchmarks of the paper's Figure 1 at the
// given scale: BT-MZ, SP-MZ, LU-MZ, the EPCC suite and HERA.
func Figure1Set(sc Scale) []Workload {
	return []Workload{
		BTMZ(sc, BugNone),
		SPMZ(sc, BugNone),
		LUMZ(sc, BugNone),
		EPCC(sc, BugNone),
		HERA(sc, BugNone),
	}
}

// Emitter builds MiniHybrid source with indentation tracking. It is the
// shared emission and bug-planting vocabulary of the structured benchmark
// generators in this package and of the randomized program generator in
// internal/mhgen: the Seed*Bug methods plant the paper's error classes at
// the current emission point, marked with a greppable comment.
type Emitter struct {
	b      strings.Builder
	indent int
}

// Line emits one indented source line (printf-style).
func (e *Emitter) Line(format string, args ...any) {
	e.b.WriteString(strings.Repeat("\t", e.indent))
	fmt.Fprintf(&e.b, format, args...)
	e.b.WriteByte('\n')
}

// Open emits a line and indents the following ones (a block opener).
func (e *Emitter) Open(format string, args ...any) {
	e.Line(format, args...)
	e.indent++
}

// Close dedents and emits the closing brace of the innermost open block.
func (e *Emitter) Close() {
	e.indent--
	e.Line("}")
}

// ElseOpen closes the current branch and opens its else block.
func (e *Emitter) ElseOpen() {
	e.indent--
	e.Line("} else {")
	e.indent++
}

// String returns the source emitted so far.
func (e *Emitter) String() string { return e.b.String() }

// BugComment renders a marker comment so seeded sources are greppable.
func (e *Emitter) BugComment(b Bug) {
	if b != BugNone {
		e.Line("// seeded bug: %s", b)
	}
}

// SeedThreadingBug emits the threading-level (phase 1/2) bug patterns
// inside a parallel region body; returns true if it handled the bug.
func (e *Emitter) SeedThreadingBug(b Bug, varName string) bool {
	switch b {
	case BugMultithreadedCollective:
		e.BugComment(b)
		e.Line("MPI_Allreduce(%s, %s, sum)", varName, varName)
		return true
	case BugConcurrentSingles:
		e.BugComment(b)
		e.Open("single nowait {")
		e.Line("MPI_Bcast(%s)", varName)
		e.Close()
		e.Open("single {")
		e.Line("MPI_Reduce(%s, %s, sum)", varName, varName)
		e.Close()
		return true
	case BugSectionsCollectives:
		e.BugComment(b)
		e.Open("sections {")
		e.Open("section {")
		e.Line("MPI_Bcast(%s)", varName)
		e.Close()
		e.Open("section {")
		e.Line("MPI_Reduce(%s, %s, sum)", varName, varName)
		e.Close()
		e.Close()
		return true
	}
	return false
}

// SeedEarlyReturnBug emits the early-return bug pattern at the sequential
// level of main: odd ranks finalize and leave before a collective the even
// ranks still execute. Returns true if it handled the bug.
func (e *Emitter) SeedEarlyReturnBug(b Bug, varName string) bool {
	if b != BugEarlyReturn {
		return false
	}
	e.BugComment(b)
	e.Open("if rank() %% 2 == 1 {")
	e.Line("MPI_Finalize()")
	e.Line("return 1")
	e.Close()
	e.Line("MPI_Allreduce(%s, %s, sum)", varName, varName)
	return true
}

// SeedValueBug emits the value-level bug patterns at sequential level:
// every rank calls the same collective kinds in the same order — the
// structural checks all pass — yet the computed result is wrong. The
// wrong-root and wrong-op variants diverge on collective arguments; the
// torn-buffer variant races a concurrent write against the collective's
// source array, so only schedules that land the write mid-round corrupt
// the result. Returns true if it handled the bug.
func (e *Emitter) SeedValueBug(b Bug, varName string) bool {
	switch b {
	case BugWrongRoot:
		e.BugComment(b)
		e.Line("MPI_Bcast(%s, rank() %% size())", varName)
		return true
	case BugWrongOp:
		e.BugComment(b)
		e.Open("if rank() == 0 {")
		e.Line("MPI_Allreduce(%s, %s, max)", varName, varName)
		e.ElseOpen()
		e.Line("MPI_Allreduce(%s, %s, sum)", varName, varName)
		e.Close()
		return true
	case BugTornBuffer:
		e.BugComment(b)
		e.Line("var tornsrc[4]")
		e.Line("var torndst[4]")
		e.Open("for ti = 0 .. 4 {")
		e.Line("tornsrc[ti] = %s + ti", varName)
		e.Close()
		e.Open("parallel num_threads(2) {")
		e.Open("single nowait {")
		e.Open("for tj = 0 .. 4 {")
		e.Line("tornsrc[tj] = tornsrc[tj] + 100")
		e.Close()
		e.Close()
		e.Open("single {")
		e.Line("MPI_Alltoall(torndst, tornsrc)")
		e.Close()
		e.Close()
		e.Line("%s = %s + torndst[0]", varName, varName)
		return true
	}
	return false
}

// SeedProcessBug emits the inter-process (phase 3) bug patterns at
// sequential level; returns true if it handled the bug.
func (e *Emitter) SeedProcessBug(b Bug, varName string) bool {
	switch b {
	case BugRankDependentCollective:
		e.BugComment(b)
		e.Open("if rank() == 0 {")
		e.Line("MPI_Barrier()")
		e.Close()
		return true
	case BugMismatchedKinds:
		e.BugComment(b)
		e.Open("if rank() == 0 {")
		e.Line("MPI_Bcast(%s)", varName)
		e.ElseOpen()
		e.Line("MPI_Reduce(%s, %s, sum)", varName, varName)
		e.Close()
		return true
	}
	return false
}
