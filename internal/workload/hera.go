package workload

// HERA generates the shape of HERA, the CEA multi-physics 2D/3D AMR
// hydrocode platform the paper evaluates on: a large codebase of physics
// modules (Modules of them), each contributing flux computation, zone
// update, boundary application and refinement-criterion functions, plus a
// platform layer with AMR regridding, load balancing and I/O-style
// checkpointing built on collectives. The point of this generator is code
// *scale*: HERA is by far the largest input in the paper's Figure 1, so
// its synthetic stand-in grows linearly with Scale.Modules.
func HERA(sc Scale, bug Bug) Workload {
	e := &Emitter{}
	e.Line("// HERA (synthetic): AMR multi-physics platform, %d modules, %d steps", sc.Modules, sc.Steps)

	// Platform helpers.
	e.Open("func mesh_init(cells, n) {")
	e.Open("for i = 0 .. n {")
	e.Line("cells[i] = (i * 7) %% 13 + 1")
	e.Close()
	e.Line("return 0")
	e.Close()

	e.Open("func mesh_norm(cells, n) {")
	e.Line("var acc = 0")
	e.Open("for i = 0 .. n {")
	e.Line("acc += abs(cells[i])")
	e.Close()
	e.Line("return acc")
	e.Close()

	// AMR regrid: refinement criterion agreed by allreduce, then a
	// redistribution step built on gather/bcast at the platform level.
	e.Open("func amr_regrid(cells, n, step) {")
	e.Line("var local = mesh_norm(cells, n) + step")
	e.Line("var crit = 0")
	e.Line("MPI_Allreduce(crit, local, max)")
	e.Open("if crit > 10 {")
	e.Open("parallel {")
	e.Open("pfor i = 0 .. n {")
	e.Line("cells[i] = cells[i] / 2 + 1")
	e.Close()
	e.Close()
	e.Close()
	e.Line("return crit")
	e.Close()

	e.Open("func load_balance(cells, n) {")
	e.Line("var local = mesh_norm(cells, n)")
	e.Line("var loads[32]")
	e.Line("MPI_Gather(loads, local, 0)")
	e.Line("var target = 0")
	e.Open("if rank() == 0 {")
	e.Line("var sum = 0")
	e.Open("for i = 0 .. size() {")
	e.Line("sum += loads[i]")
	e.Close()
	e.Line("target = sum / size()")
	e.Close()
	e.Line("MPI_Bcast(target, 0)")
	e.Line("return target")
	e.Close()

	e.Open("func checkpoint(cells, n, step) {")
	e.Line("var chk = mesh_norm(cells, n)")
	e.Line("var total = 0")
	e.Line("MPI_Reduce(total, chk, sum, 0)")
	e.Open("if rank() == 0 {")
	e.Line("print(step, total)")
	e.Close()
	e.Line("return 0")
	e.Close()

	// Physics modules.
	for m := 0; m < sc.Modules; m++ {
		e.Open("func flux_m%d(cells, n) {", m)
		e.Open("parallel {")
		e.Open("pfor i = 0 .. n {")
		e.Line("var f = (cells[i] * %d) %% 17", m+2)
		e.Line("cells[i] = cells[i] + f / 3")
		e.Close()
		e.Close()
		e.Line("return 0")
		e.Close()

		e.Open("func update_m%d(cells, n, dt) {", m)
		e.Open("parallel {")
		e.Open("pfor schedule(dynamic) i = 0 .. n {")
		e.Line("cells[i] = cells[i] + dt %% %d", m+3)
		e.Close()
		e.Close()
		e.Line("return 0")
		e.Close()

		e.Open("func bc_m%d(cells, n) {", m)
		e.Line("var left = rank() - 1")
		e.Line("var right = rank() + 1")
		e.Line("var ghost = 0")
		e.Open("if rank() %% 2 == 0 {")
		e.Open("if right < size() {")
		e.Line("MPI_Send(cells[n - 1], right, %d)", 500+m)
		e.Line("MPI_Recv(ghost, right, %d)", 600+m)
		e.Close()
		e.Open("if left >= 0 {")
		e.Line("MPI_Recv(ghost, left, %d)", 500+m)
		e.Line("MPI_Send(cells[0], left, %d)", 600+m)
		e.Close()
		e.ElseOpen()
		e.Open("if left >= 0 {")
		e.Line("MPI_Recv(ghost, left, %d)", 500+m)
		e.Line("MPI_Send(cells[0], left, %d)", 600+m)
		e.Close()
		e.Open("if right < size() {")
		e.Line("MPI_Send(cells[n - 1], right, %d)", 500+m)
		e.Line("MPI_Recv(ghost, right, %d)", 600+m)
		e.Close()
		e.Close()
		e.Line("cells[0] = cells[0] + ghost %% 3")
		e.Line("return 0")
		e.Close()

		e.Open("func criterion_m%d(cells, n) {", m)
		e.Line("var c = 0")
		e.Open("for i = 0 .. n {")
		e.Open("if cells[i] %% %d == 0 {", m+2)
		e.Line("c += 1")
		e.Close()
		e.Close()
		e.Line("return c")
		e.Close()

		// Module driver: one physics step.
		e.Open("func drive_m%d(cells, n, dt) {", m)
		e.Line("var b = bc_m%d(cells, n)", m)
		e.Line("b = flux_m%d(cells, n)", m)
		e.Line("b = update_m%d(cells, n, dt)", m)
		e.Line("return criterion_m%d(cells, n)", m)
		e.Close()
	}

	// Main driver.
	e.Open("func main() {")
	e.Line("MPI_Init()")
	e.Line("var n = %d", sc.Points)
	e.Line("var cells[%d]", sc.Points)
	e.Line("var mi = mesh_init(cells, n)")
	e.Open("for step = 0 .. %d {", sc.Steps)
	e.Line("var dt = step + 1")
	for m := 0; m < sc.Modules; m++ {
		e.Line("var c%d = drive_m%d(cells, n, dt)", m, m)
	}
	e.Open("if step %% 4 == 0 {")
	e.Line("var crit = amr_regrid(cells, n, step)")
	e.Close()
	// mesh_norm is a sum of absolute values, so every rank passes this
	// guard — but the analysis cannot prove it (the norm is rank-variant
	// data), so the load-balance collectives below get CC checks that
	// validate the run. This is the correct-but-unprovable idiom real AMR
	// codes are full of.
	e.Open("if step %% 8 == 0 && mesh_norm(cells, n) >= 0 {")
	e.Line("var tgt = load_balance(cells, n)")
	e.Close()
	e.Close()
	if bug == BugEarlyReturn {
		e.BugComment(bug)
		e.Open("if rank() %% 2 == 1 {")
		e.Line("MPI_Finalize()")
		e.Line("return 1")
		e.Close()
	}
	if !e.SeedProcessBug(bug, "mi") && !e.SeedValueBug(bug, "mi") && bug != BugNone && bug != BugEarlyReturn {
		e.Open("parallel {")
		e.SeedThreadingBug(bug, "mi")
		e.Close()
	}
	e.Line("var cp = checkpoint(cells, n, %d)", sc.Steps)
	e.Line("MPI_Finalize()")
	e.Close()

	return Workload{Name: "HERA", Source: e.String(), Procs: 4, Threads: 4, Bug: bug}
}
