package workload

// HERA generates the shape of HERA, the CEA multi-physics 2D/3D AMR
// hydrocode platform the paper evaluates on: a large codebase of physics
// modules (Modules of them), each contributing flux computation, zone
// update, boundary application and refinement-criterion functions, plus a
// platform layer with AMR regridding, load balancing and I/O-style
// checkpointing built on collectives. The point of this generator is code
// *scale*: HERA is by far the largest input in the paper's Figure 1, so
// its synthetic stand-in grows linearly with Scale.Modules.
func HERA(sc Scale, bug Bug) Workload {
	e := &emitter{}
	e.line("// HERA (synthetic): AMR multi-physics platform, %d modules, %d steps", sc.Modules, sc.Steps)

	// Platform helpers.
	e.open("func mesh_init(cells, n) {")
	e.open("for i = 0 .. n {")
	e.line("cells[i] = (i * 7) %% 13 + 1")
	e.close()
	e.line("return 0")
	e.close()

	e.open("func mesh_norm(cells, n) {")
	e.line("var acc = 0")
	e.open("for i = 0 .. n {")
	e.line("acc += abs(cells[i])")
	e.close()
	e.line("return acc")
	e.close()

	// AMR regrid: refinement criterion agreed by allreduce, then a
	// redistribution step built on gather/bcast at the platform level.
	e.open("func amr_regrid(cells, n, step) {")
	e.line("var local = mesh_norm(cells, n) + step")
	e.line("var crit = 0")
	e.line("MPI_Allreduce(crit, local, max)")
	e.open("if crit > 10 {")
	e.open("parallel {")
	e.open("pfor i = 0 .. n {")
	e.line("cells[i] = cells[i] / 2 + 1")
	e.close()
	e.close()
	e.close()
	e.line("return crit")
	e.close()

	e.open("func load_balance(cells, n) {")
	e.line("var local = mesh_norm(cells, n)")
	e.line("var loads[32]")
	e.line("MPI_Gather(loads, local, 0)")
	e.line("var target = 0")
	e.open("if rank() == 0 {")
	e.line("var sum = 0")
	e.open("for i = 0 .. size() {")
	e.line("sum += loads[i]")
	e.close()
	e.line("target = sum / size()")
	e.close()
	e.line("MPI_Bcast(target, 0)")
	e.line("return target")
	e.close()

	e.open("func checkpoint(cells, n, step) {")
	e.line("var chk = mesh_norm(cells, n)")
	e.line("var total = 0")
	e.line("MPI_Reduce(total, chk, sum, 0)")
	e.open("if rank() == 0 {")
	e.line("print(step, total)")
	e.close()
	e.line("return 0")
	e.close()

	// Physics modules.
	for m := 0; m < sc.Modules; m++ {
		e.open("func flux_m%d(cells, n) {", m)
		e.open("parallel {")
		e.open("pfor i = 0 .. n {")
		e.line("var f = (cells[i] * %d) %% 17", m+2)
		e.line("cells[i] = cells[i] + f / 3")
		e.close()
		e.close()
		e.line("return 0")
		e.close()

		e.open("func update_m%d(cells, n, dt) {", m)
		e.open("parallel {")
		e.open("pfor schedule(dynamic) i = 0 .. n {")
		e.line("cells[i] = cells[i] + dt %% %d", m+3)
		e.close()
		e.close()
		e.line("return 0")
		e.close()

		e.open("func bc_m%d(cells, n) {", m)
		e.line("var left = rank() - 1")
		e.line("var right = rank() + 1")
		e.line("var ghost = 0")
		e.open("if rank() %% 2 == 0 {")
		e.open("if right < size() {")
		e.line("MPI_Send(cells[n - 1], right, %d)", 500+m)
		e.line("MPI_Recv(ghost, right, %d)", 600+m)
		e.close()
		e.open("if left >= 0 {")
		e.line("MPI_Recv(ghost, left, %d)", 500+m)
		e.line("MPI_Send(cells[0], left, %d)", 600+m)
		e.close()
		e.elseOpen()
		e.open("if left >= 0 {")
		e.line("MPI_Recv(ghost, left, %d)", 500+m)
		e.line("MPI_Send(cells[0], left, %d)", 600+m)
		e.close()
		e.open("if right < size() {")
		e.line("MPI_Send(cells[n - 1], right, %d)", 500+m)
		e.line("MPI_Recv(ghost, right, %d)", 600+m)
		e.close()
		e.close()
		e.line("cells[0] = cells[0] + ghost %% 3")
		e.line("return 0")
		e.close()

		e.open("func criterion_m%d(cells, n) {", m)
		e.line("var c = 0")
		e.open("for i = 0 .. n {")
		e.open("if cells[i] %% %d == 0 {", m+2)
		e.line("c += 1")
		e.close()
		e.close()
		e.line("return c")
		e.close()

		// Module driver: one physics step.
		e.open("func drive_m%d(cells, n, dt) {", m)
		e.line("var b = bc_m%d(cells, n)", m)
		e.line("b = flux_m%d(cells, n)", m)
		e.line("b = update_m%d(cells, n, dt)", m)
		e.line("return criterion_m%d(cells, n)", m)
		e.close()
	}

	// Main driver.
	e.open("func main() {")
	e.line("MPI_Init()")
	e.line("var n = %d", sc.Points)
	e.line("var cells[%d]", sc.Points)
	e.line("var mi = mesh_init(cells, n)")
	e.open("for step = 0 .. %d {", sc.Steps)
	e.line("var dt = step + 1")
	for m := 0; m < sc.Modules; m++ {
		e.line("var c%d = drive_m%d(cells, n, dt)", m, m)
	}
	e.open("if step %% 4 == 0 {")
	e.line("var crit = amr_regrid(cells, n, step)")
	e.close()
	// mesh_norm is a sum of absolute values, so every rank passes this
	// guard — but the analysis cannot prove it (the norm is rank-variant
	// data), so the load-balance collectives below get CC checks that
	// validate the run. This is the correct-but-unprovable idiom real AMR
	// codes are full of.
	e.open("if step %% 8 == 0 && mesh_norm(cells, n) >= 0 {")
	e.line("var tgt = load_balance(cells, n)")
	e.close()
	e.close()
	if bug == BugEarlyReturn {
		e.bugComment(bug)
		e.open("if rank() %% 2 == 1 {")
		e.line("MPI_Finalize()")
		e.line("return 1")
		e.close()
	}
	if !e.seedProcessBug(bug, "mi") && bug != BugNone && bug != BugEarlyReturn {
		e.open("parallel {")
		e.seedThreadingBug(bug, "mi")
		e.close()
	}
	e.line("var cp = checkpoint(cells, n, %d)", sc.Steps)
	e.line("MPI_Finalize()")
	e.close()

	return Workload{Name: "HERA", Source: e.String(), Procs: 4, Threads: 4, Bug: bug}
}
