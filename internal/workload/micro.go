package workload

// Micro returns the minimal program exhibiting one bug class — the
// textbook examples from the paper's problem statement, used by the
// examples, the detection-matrix experiment and the test suite. BugNone
// yields a minimal correct hybrid program.
func Micro(bug Bug) Workload {
	e := &emitter{}
	e.line("// micro: %s", bug)
	e.open("func main() {")
	e.line("MPI_Init()")
	e.line("var x = rank() + 1")
	switch bug {
	case BugNone:
		e.open("parallel {")
		e.open("single {")
		e.line("MPI_Allreduce(x, x, sum)")
		e.close()
		e.close()
	case BugMultithreadedCollective:
		e.bugComment(bug)
		e.open("parallel {")
		e.line("MPI_Allreduce(x, x, sum)")
		e.close()
	case BugConcurrentSingles:
		e.bugComment(bug)
		e.open("parallel {")
		e.open("single nowait {")
		e.line("MPI_Bcast(x)")
		e.close()
		e.open("single {")
		e.line("MPI_Reduce(x, x, sum)")
		e.close()
		e.close()
	case BugSectionsCollectives:
		e.bugComment(bug)
		e.open("parallel {")
		e.open("sections {")
		e.open("section {")
		e.line("MPI_Bcast(x)")
		e.close()
		e.open("section {")
		e.line("MPI_Reduce(x, x, sum)")
		e.close()
		e.close()
		e.close()
	case BugRankDependentCollective:
		e.bugComment(bug)
		e.open("if rank() == 0 {")
		e.line("MPI_Barrier()")
		e.close()
	case BugEarlyReturn:
		e.bugComment(bug)
		e.open("if rank() %% 2 == 1 {")
		e.line("MPI_Finalize()")
		e.line("return 1")
		e.close()
		e.line("MPI_Allreduce(x, x, sum)")
	case BugMismatchedKinds:
		e.bugComment(bug)
		e.open("if rank() == 0 {")
		e.line("MPI_Bcast(x)")
		e.elseOpen()
		e.line("MPI_Reduce(x, x, sum)")
		e.close()
	}
	e.line("print(x)")
	e.line("MPI_Finalize()")
	e.close()
	return Workload{Name: "micro-" + bug.String(), Source: e.String(), Procs: 2, Threads: 2, Bug: bug}
}
