package workload

// Micro returns the minimal program exhibiting one bug class — the
// textbook examples from the paper's problem statement, used by the
// examples, the detection-matrix experiment and the test suite. BugNone
// yields a minimal correct hybrid program.
func Micro(bug Bug) Workload {
	e := &Emitter{}
	e.Line("// micro: %s", bug)
	e.Open("func main() {")
	e.Line("MPI_Init()")
	e.Line("var x = rank() + 1")
	switch bug {
	case BugNone:
		e.Open("parallel {")
		e.Open("single {")
		e.Line("MPI_Allreduce(x, x, sum)")
		e.Close()
		e.Close()
	case BugMultithreadedCollective:
		e.BugComment(bug)
		e.Open("parallel {")
		e.Line("MPI_Allreduce(x, x, sum)")
		e.Close()
	case BugConcurrentSingles:
		e.BugComment(bug)
		e.Open("parallel {")
		e.Open("single nowait {")
		e.Line("MPI_Bcast(x)")
		e.Close()
		e.Open("single {")
		e.Line("MPI_Reduce(x, x, sum)")
		e.Close()
		e.Close()
	case BugSectionsCollectives:
		e.BugComment(bug)
		e.Open("parallel {")
		e.Open("sections {")
		e.Open("section {")
		e.Line("MPI_Bcast(x)")
		e.Close()
		e.Open("section {")
		e.Line("MPI_Reduce(x, x, sum)")
		e.Close()
		e.Close()
		e.Close()
	case BugRankDependentCollective:
		e.BugComment(bug)
		e.Open("if rank() == 0 {")
		e.Line("MPI_Barrier()")
		e.Close()
	case BugEarlyReturn:
		e.SeedEarlyReturnBug(bug, "x")
	case BugMismatchedKinds:
		e.BugComment(bug)
		e.Open("if rank() == 0 {")
		e.Line("MPI_Bcast(x)")
		e.ElseOpen()
		e.Line("MPI_Reduce(x, x, sum)")
		e.Close()
	case BugWrongRoot, BugWrongOp, BugTornBuffer:
		e.SeedValueBug(bug, "x")
	}
	e.Line("print(x)")
	e.Line("MPI_Finalize()")
	e.Close()
	return Workload{Name: "micro-" + bug.String(), Source: e.String(), Procs: 2, Threads: 2, Bug: bug}
}
