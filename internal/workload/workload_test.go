package workload

import (
	"strings"
	"testing"

	"parcoach/internal/core"
	"parcoach/internal/explore"
	"parcoach/internal/instrument"
	"parcoach/internal/interp"
	"parcoach/internal/omp"
	"parcoach/internal/parser"
	"parcoach/internal/sem"
	"parcoach/internal/verifier"
)

// compileWorkload parses and checks a generated source.
func compileWorkload(t *testing.T, w Workload) *core.Result {
	t.Helper()
	prog, err := parser.Parse(w.Name+".mh", w.Source)
	if err != nil {
		t.Fatalf("%s does not parse: %v\n%s", w.Name, err, numbered(w.Source))
	}
	if err := sem.Check(prog); err != nil {
		t.Fatalf("%s fails sem: %v", w.Name, err)
	}
	return core.Analyze(prog, core.Options{})
}

func numbered(src string) string {
	lines := strings.Split(src, "\n")
	var b strings.Builder
	for i, l := range lines {
		b.WriteString(strings.TrimRight(strings.Join([]string{itoa(i + 1), l}, "\t"), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(n int) string {
	return strings.TrimLeft(strings.Repeat(" ", 4)+string(rune('0'+n%10)), " ")
}

// The base benchmarks are correct programs, but — like the paper's real
// benchmarks — they contain correct-yet-statically-unprovable collective
// guards (load-balancing idioms), so the static phase issues a few
// collective-mismatch warnings and generates checks that must then pass at
// run time. Phase-1/2 (threading) warnings must not appear.
func TestFigure1SetBaseWarnings(t *testing.T) {
	for _, sc := range []Scale{ScaleS, ScaleA} {
		for _, w := range Figure1Set(sc) {
			res := compileWorkload(t, w)
			counts := core.CountByKind(res.Errors())
			if counts[core.DiagMultithreadedCollective] != 0 || counts[core.DiagConcurrentCollectives] != 0 {
				t.Errorf("%s (base) must have no threading warnings: %v", w.Name, res.Errors())
			}
			if counts[core.DiagAmbiguousWord] != 0 {
				t.Errorf("%s (base) must have no word conflicts: %v", w.Name, res.Errors())
			}
			if counts[core.DiagCollectiveMismatch] == 0 {
				t.Errorf("%s (base) should carry its designed unprovable-guard warnings", w.Name)
			}
		}
	}
}

func TestFigure1SetRunsClean(t *testing.T) {
	for _, w := range Figure1Set(ScaleS) {
		prog, err := parser.Parse(w.Name+".mh", w.Source)
		if err != nil {
			t.Fatal(err)
		}
		// Uninstrumented: the programs are correct.
		res := interp.Run(prog, interp.Options{Procs: w.Procs, Threads: 2})
		if res.Err != nil {
			t.Errorf("%s run failed: %v", w.Name, res.Err)
		}
		if res.Stats.Collectives == 0 {
			t.Errorf("%s executed no collectives", w.Name)
		}
		// Instrumented: the static false positives must be validated, not
		// aborted — and some CC checks must actually execute.
		ares := core.Analyze(prog, core.Options{})
		inst := instrument.Program(prog, ares)
		ires := interp.Run(inst, interp.Options{Procs: w.Procs, Threads: 2})
		if ires.Err != nil {
			t.Errorf("%s instrumented run must clear its false positives: %v", w.Name, ires.Err)
		}
		if ires.Stats.CCChecks == 0 {
			t.Errorf("%s instrumented run executed no CC checks", w.Name)
		}
	}
}

func TestHeraScalesWithModules(t *testing.T) {
	small := HERA(Scale{Zones: 1, Steps: 2, Points: 8, Modules: 4, Reps: 1}, BugNone)
	big := HERA(Scale{Zones: 1, Steps: 2, Points: 8, Modules: 24, Reps: 1}, BugNone)
	if len(big.Source) < 3*len(small.Source) {
		t.Errorf("HERA must grow with Modules: %d vs %d bytes", len(small.Source), len(big.Source))
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := BTMZ(ScaleA, BugNone)
	b := BTMZ(ScaleA, BugNone)
	if a.Source != b.Source {
		t.Error("generator output must be deterministic")
	}
}

// Detection matrix, static side: every seeded bug must produce at least
// one warning of the expected class in every workload that hosts it.
func TestSeededBugsAreFlaggedStatically(t *testing.T) {
	type gen struct {
		name string
		make func(Scale, Bug) Workload
	}
	gens := []gen{
		{"BT-MZ", BTMZ}, {"SP-MZ", SPMZ}, {"LU-MZ", LUMZ}, {"EPCC", EPCC}, {"HERA", HERA},
	}
	wantKind := map[Bug]core.DiagKind{
		BugMultithreadedCollective: core.DiagMultithreadedCollective,
		BugConcurrentSingles:       core.DiagConcurrentCollectives,
		BugSectionsCollectives:     core.DiagConcurrentCollectives,
		BugRankDependentCollective: core.DiagCollectiveMismatch,
		BugEarlyReturn:             core.DiagCollectiveMismatch,
		// The wrong-op value bug diverges control flow by rank around
		// same-kind collectives: statically indistinguishable from a real
		// sequence mismatch, so it still draws a mismatch warning.
		BugMismatchedKinds: core.DiagCollectiveMismatch,
		BugWrongOp:         core.DiagCollectiveMismatch,
	}
	for _, g := range gens {
		for _, bug := range AllBugs {
			want, ok := wantKind[bug]
			if !ok {
				// wrong-root and torn-buffer are value bugs with no static
				// signature by design: every rank calls the same collective
				// sequence. Their detection is the value oracle's job
				// (TestMicroDetectionMatrix, TestTornBufferScheduleDependence).
				continue
			}
			w := g.make(ScaleS, bug)
			res := compileWorkload(t, w)
			counts := core.CountByKind(res.Errors())
			if counts[want] == 0 {
				t.Errorf("%s + %s: expected a %s warning, got %v",
					g.name, bug, want, res.Errors())
			}
		}
	}
}

// Detection matrix, dynamic side (micro corpus): instrumented runs abort
// with a verifier error of the right class; the clean micro passes.
func TestMicroDetectionMatrix(t *testing.T) {
	wantKind := map[Bug]verifier.ErrKind{
		BugMultithreadedCollective: verifier.ErrMultithreadedCollective,
		BugConcurrentSingles:       verifier.ErrConcurrentCollectives,
		BugSectionsCollectives:     verifier.ErrConcurrentCollectives,
		BugRankDependentCollective: verifier.ErrCollectiveMismatch,
		BugEarlyReturn:             verifier.ErrCollectiveMismatch,
		BugMismatchedKinds:         verifier.ErrCollectiveMismatch,
	}
	// The value bug classes are caught by the oracle, not the planted
	// checks: they produce a *verifier.ValueError of the given class.
	wantValue := map[Bug]verifier.ValueCheck{
		BugWrongRoot: verifier.ValueWrongRoot,
		BugWrongOp:   verifier.ValueWrongOp,
	}
	for _, bug := range AllBugs {
		if bug == BugTornBuffer {
			// Schedule-dependent: a free-running run may legitimately miss
			// it. Covered by TestTornBufferScheduleDependence.
			continue
		}
		w := Micro(bug)
		prog, err := parser.Parse(w.Name+".mh", w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := sem.Check(prog); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		res := core.Analyze(prog, core.Options{})
		inst := instrument.Program(prog, res)
		// The concurrency bug classes race two detectors on multi-process
		// runs: the verifier's phase counter on one rank versus the MPI
		// matcher observing the cross-rank mismatch. Run them on a single
		// process so the verifier detection is the only (deterministic)
		// outcome; the multi-process behaviour is covered by
		// TestSeededBenchmarksAbortAtRuntime.
		procs := 2
		if bug == BugConcurrentSingles || bug == BugSectionsCollectives {
			procs = 1
		}
		wantCheck, isValue := wantValue[bug]
		out := interp.Run(inst, interp.Options{Procs: procs, Threads: 2, Policy: omp.RoundRobin, ValueCheck: isValue})
		if out.Err == nil {
			t.Errorf("%s: instrumented run must abort", w.Name)
			continue
		}
		if isValue {
			ve, ok := out.Err.(*verifier.ValueError)
			if !ok {
				t.Errorf("%s: want value error, got %T: %v", w.Name, out.Err, out.Err)
			} else if ve.Check != wantCheck {
				t.Errorf("%s: check = %v, want %v", w.Name, ve.Check, wantCheck)
			}
			continue
		}
		ve, ok := out.Err.(*verifier.Error)
		if !ok {
			t.Errorf("%s: want verifier error, got %T: %v", w.Name, out.Err, out.Err)
			continue
		}
		if ve.Kind != wantKind[bug] {
			t.Errorf("%s: kind = %v, want %v", w.Name, ve.Kind, wantKind[bug])
		}
	}

	// The clean micro must pass instrumented execution untouched.
	w := Micro(BugNone)
	prog, err := parser.Parse(w.Name+".mh", w.Source)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Analyze(prog, core.Options{})
	if len(res.Errors()) != 0 {
		t.Fatalf("clean micro has warnings: %v", res.Errors())
	}
	inst := instrument.Program(prog, res)
	out := interp.Run(inst, interp.Options{Procs: 2, Threads: 2})
	if out.Err != nil {
		t.Errorf("clean micro failed: %v", out.Err)
	}
}

// The torn-buffer value bug is schedule-dependent: the round-robin
// scheduler provably misses it (the writer thread always drains before
// the collective matches), while schedule exploration with the oracle
// armed reaches a torn-buffer verdict.
func TestTornBufferScheduleDependence(t *testing.T) {
	w := Micro(BugTornBuffer)
	prog, err := parser.Parse(w.Name+".mh", w.Source)
	if err != nil {
		t.Fatal(err)
	}
	if err := sem.Check(prog); err != nil {
		t.Fatal(err)
	}
	res := core.Analyze(prog, core.Options{})
	inst := instrument.Program(prog, res)

	rr := explore.Explore(inst, explore.Options{
		Strategy: explore.StrategyRoundRobin,
		Procs:    w.Procs, Threads: w.Threads,
		ValueCheck: true,
	})
	if rr.FirstFailure != nil {
		t.Errorf("round-robin schedule must miss the torn buffer, got %v", rr.FirstFailure.Err)
	}

	rnd := explore.Explore(inst, explore.Options{
		Strategy:  explore.StrategyRandom,
		Schedules: 16,
		Procs:     w.Procs, Threads: w.Threads,
		ValueCheck: true,
	})
	if rnd.FirstFailure == nil {
		t.Fatal("random exploration found no failing schedule for the torn buffer")
	}
	if rnd.FirstFailure.Outcome != interp.OutcomeValueError ||
		!strings.Contains(rnd.FirstFailure.Err, "torn-buffer") {
		t.Fatalf("want a torn-buffer value error, got %s: %s",
			rnd.FirstFailure.Outcome, rnd.FirstFailure.Err)
	}
}

// Seeded full benchmarks, dynamic side: deterministic bug classes must
// abort instrumented runs on every workload.
func TestSeededBenchmarksAbortAtRuntime(t *testing.T) {
	deterministic := []Bug{BugMultithreadedCollective, BugRankDependentCollective, BugMismatchedKinds, BugEarlyReturn}
	type gen struct {
		name string
		make func(Scale, Bug) Workload
	}
	gens := []gen{{"BT-MZ", BTMZ}, {"EPCC", EPCC}, {"HERA", HERA}}
	for _, g := range gens {
		for _, bug := range deterministic {
			w := g.make(ScaleS, bug)
			prog, err := parser.Parse(w.Name+".mh", w.Source)
			if err != nil {
				t.Fatal(err)
			}
			res := core.Analyze(prog, core.Options{})
			inst := instrument.Program(prog, res)
			out := interp.Run(inst, interp.Options{Procs: 2, Threads: 2, Policy: omp.RoundRobin})
			if out.Err == nil {
				t.Errorf("%s + %s: instrumented run must abort", g.name, bug)
			}
		}
	}
}

func TestBugString(t *testing.T) {
	if BugNone.String() != "none" || BugEarlyReturn.String() != "early-return" {
		t.Error("bug names wrong")
	}
	if Micro(BugConcurrentSingles).Name != "micro-concurrent-singles" {
		t.Error("micro name wrong")
	}
}
