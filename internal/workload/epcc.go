package workload

// EPCC generates the mixed-mode OpenMP/MPI micro-benchmark suite v1.0
// shape: point-to-point kernels at the funneled / serialized / multiple
// thread disciplines (masteronly pingpong, funnelled pingpong, multiple
// pingpong with per-thread tags), a multi-threaded halo exchange, and
// collective kernels (barrier, reduce, bcast, alltoall) driven from a
// single main, each repeated Reps times.
func EPCC(sc Scale, bug Bug) Workload {
	e := &Emitter{}
	e.Line("// EPCC mixed-mode micro-benchmark suite (synthetic), reps=%d", sc.Reps)

	// masteronly pingpong: communication outside the parallel region.
	e.Open("func pingpong_masteronly(reps) {")
	e.Line("var v = 0")
	e.Open("for r = 0 .. reps {")
	e.Line("var work = 0")
	e.Open("parallel {")
	e.Open("pfor i = 0 .. 16 {")
	e.Line("atomic work += i")
	e.Close()
	e.Close()
	e.Open("if size() > 1 {")
	e.Open("if rank() == 0 {")
	e.Line("MPI_Send(work, 1, 20)")
	e.Line("MPI_Recv(v, 1, 21)")
	e.Close()
	e.Open("if rank() == 1 {")
	e.Line("MPI_Recv(v, 0, 20)")
	e.Line("MPI_Send(v, 0, 21)")
	e.Close()
	e.Close()
	e.Close()
	e.Line("return v")
	e.Close()

	// funnelled pingpong: master thread communicates inside the region.
	e.Open("func pingpong_funnelled(reps) {")
	e.Line("var v = 0")
	e.Open("parallel {")
	e.Open("for r = 0 .. reps {")
	e.Open("pfor i = 0 .. 16 {")
	e.Line("atomic v += 1")
	e.Close()
	e.Open("master {")
	e.Open("if size() > 1 {")
	e.Open("if rank() == 0 {")
	e.Line("MPI_Send(v, 1, 30)")
	e.Line("MPI_Recv(v, 1, 31)")
	e.Close()
	e.Open("if rank() == 1 {")
	e.Line("MPI_Recv(v, 0, 30)")
	e.Line("MPI_Send(v, 0, 31)")
	e.Close()
	e.Close()
	e.Close()
	e.Line("barrier")
	e.Close()
	e.Close()
	e.Line("return v")
	e.Close()

	// multiple pingpong: every thread communicates with its own tag.
	e.Open("func pingpong_multiple(reps) {")
	e.Line("var total = 0")
	e.Open("parallel {")
	e.Line("var mine = 0")
	e.Open("for r = 0 .. reps {")
	e.Open("if size() > 1 {")
	e.Open("if rank() == 0 {")
	e.Line("MPI_Send(r, 1, 100 + tid())")
	e.Line("MPI_Recv(mine, 1, 200 + tid())")
	e.Close()
	e.Open("if rank() == 1 {")
	e.Line("MPI_Recv(mine, 0, 100 + tid())")
	e.Line("MPI_Send(mine, 0, 200 + tid())")
	e.Close()
	e.Close()
	e.Close()
	e.Line("atomic total += mine")
	e.Close()
	e.Line("return total")
	e.Close()

	// halo exchange across all ranks, threads pack/unpack.
	e.Open("func haloexchange(n, reps) {")
	e.Line("var buf[64]")
	e.Line("var inbound = 0")
	e.Open("for r = 0 .. reps {")
	e.Open("parallel {")
	e.Open("pfor i = 0 .. n {")
	e.Line("buf[i] = i + r")
	e.Close()
	e.Close()
	e.Line("var left = rank() - 1")
	e.Line("var right = rank() + 1")
	e.Open("if rank() %% 2 == 0 {")
	e.Open("if right < size() {")
	e.Line("MPI_Send(buf[n - 1], right, 40)")
	e.Line("MPI_Recv(inbound, right, 41)")
	e.Close()
	e.Open("if left >= 0 {")
	e.Line("MPI_Recv(inbound, left, 40)")
	e.Line("MPI_Send(buf[0], left, 41)")
	e.Close()
	e.ElseOpen()
	e.Open("if left >= 0 {")
	e.Line("MPI_Recv(inbound, left, 40)")
	e.Line("MPI_Send(buf[0], left, 41)")
	e.Close()
	e.Open("if right < size() {")
	e.Line("MPI_Send(buf[n - 1], right, 40)")
	e.Line("MPI_Recv(inbound, right, 41)")
	e.Close()
	e.Close()
	e.Close()
	e.Line("return inbound")
	e.Close()

	// collective kernels: barrier, reduce, bcast, alltoall.
	e.Open("func bench_barrier(reps) {")
	e.Open("for r = 0 .. reps {")
	e.Line("MPI_Barrier()")
	e.Close()
	e.Line("return 0")
	e.Close()

	e.Open("func bench_reduce(reps) {")
	e.Line("var acc = 0")
	e.Open("for r = 0 .. reps {")
	e.Line("var g = 0")
	e.Open("parallel {")
	e.Open("pfor i = 0 .. 32 {")
	e.Line("atomic acc += 1")
	e.Close()
	e.Open("single {")
	e.Line("MPI_Allreduce(g, acc, sum)")
	e.Close()
	e.Close()
	e.Line("acc = g %% 1000")
	e.Close()
	e.Line("return acc")
	e.Close()

	e.Open("func bench_bcast(reps) {")
	e.Line("var v = rank()")
	e.Open("for r = 0 .. reps {")
	e.Line("MPI_Bcast(v, 0)")
	e.Line("v = v + 1")
	e.Close()
	e.Line("return v")
	e.Close()

	e.Open("func bench_alltoall(reps) {")
	e.Line("var src[16]")
	e.Line("var dst[16]")
	e.Open("for r = 0 .. reps {")
	e.Open("for i = 0 .. size() {")
	e.Line("src[i] = rank() * 100 + i + r")
	e.Close()
	e.Line("MPI_Alltoall(dst, src)")
	e.Close()
	e.Line("return dst[0]")
	e.Close()

	e.Open("func main() {")
	e.Line("MPI_Init()")
	e.Line("var reps = %d", sc.Reps)
	e.Line("var r1 = pingpong_masteronly(reps)")
	e.Line("var r2 = pingpong_funnelled(reps)")
	e.Line("var r3 = pingpong_multiple(reps)")
	e.Line("var r4 = haloexchange(%d, reps)", min(sc.Points, 64))
	if bug == BugEarlyReturn {
		e.BugComment(bug)
		e.Open("if rank() %% 2 == 1 {")
		e.Line("MPI_Finalize()")
		e.Line("return 1")
		e.Close()
	}
	e.Line("var r5 = bench_barrier(reps)")
	e.Line("var r6 = bench_reduce(reps)")
	// Every rank is "active" (rank() < size() always holds), but the
	// analysis cannot prove it: the guarded collective kernels below are
	// the correct-but-unprovable pattern the runtime CC checks validate.
	e.Line("var r7 = 0")
	e.Line("var r8 = 0")
	e.Open("if rank() < size() {")
	e.Line("r7 = bench_bcast(reps)")
	e.Line("r8 = bench_alltoall(reps)")
	e.Close()
	if e.SeedProcessBug(bug, "r7") {
		// inter-process bug at suite level
	} else if e.SeedValueBug(bug, "r7") {
		// value bug at suite level
	} else if bug != BugNone && bug != BugEarlyReturn {
		e.Open("parallel {")
		e.SeedThreadingBug(bug, "r6")
		e.Close()
	}
	e.Line("print(r1 + r2 + r3 + r4 + r5 + r6 %% 97 + r7 + r8)")
	e.Line("MPI_Finalize()")
	e.Close()

	return Workload{Name: "EPCC", Source: e.String(), Procs: 2, Threads: 4, Bug: bug}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
