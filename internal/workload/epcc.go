package workload

// EPCC generates the mixed-mode OpenMP/MPI micro-benchmark suite v1.0
// shape: point-to-point kernels at the funneled / serialized / multiple
// thread disciplines (masteronly pingpong, funnelled pingpong, multiple
// pingpong with per-thread tags), a multi-threaded halo exchange, and
// collective kernels (barrier, reduce, bcast, alltoall) driven from a
// single main, each repeated Reps times.
func EPCC(sc Scale, bug Bug) Workload {
	e := &emitter{}
	e.line("// EPCC mixed-mode micro-benchmark suite (synthetic), reps=%d", sc.Reps)

	// masteronly pingpong: communication outside the parallel region.
	e.open("func pingpong_masteronly(reps) {")
	e.line("var v = 0")
	e.open("for r = 0 .. reps {")
	e.line("var work = 0")
	e.open("parallel {")
	e.open("pfor i = 0 .. 16 {")
	e.line("atomic work += i")
	e.close()
	e.close()
	e.open("if size() > 1 {")
	e.open("if rank() == 0 {")
	e.line("MPI_Send(work, 1, 20)")
	e.line("MPI_Recv(v, 1, 21)")
	e.close()
	e.open("if rank() == 1 {")
	e.line("MPI_Recv(v, 0, 20)")
	e.line("MPI_Send(v, 0, 21)")
	e.close()
	e.close()
	e.close()
	e.line("return v")
	e.close()

	// funnelled pingpong: master thread communicates inside the region.
	e.open("func pingpong_funnelled(reps) {")
	e.line("var v = 0")
	e.open("parallel {")
	e.open("for r = 0 .. reps {")
	e.open("pfor i = 0 .. 16 {")
	e.line("atomic v += 1")
	e.close()
	e.open("master {")
	e.open("if size() > 1 {")
	e.open("if rank() == 0 {")
	e.line("MPI_Send(v, 1, 30)")
	e.line("MPI_Recv(v, 1, 31)")
	e.close()
	e.open("if rank() == 1 {")
	e.line("MPI_Recv(v, 0, 30)")
	e.line("MPI_Send(v, 0, 31)")
	e.close()
	e.close()
	e.close()
	e.line("barrier")
	e.close()
	e.close()
	e.line("return v")
	e.close()

	// multiple pingpong: every thread communicates with its own tag.
	e.open("func pingpong_multiple(reps) {")
	e.line("var total = 0")
	e.open("parallel {")
	e.line("var mine = 0")
	e.open("for r = 0 .. reps {")
	e.open("if size() > 1 {")
	e.open("if rank() == 0 {")
	e.line("MPI_Send(r, 1, 100 + tid())")
	e.line("MPI_Recv(mine, 1, 200 + tid())")
	e.close()
	e.open("if rank() == 1 {")
	e.line("MPI_Recv(mine, 0, 100 + tid())")
	e.line("MPI_Send(mine, 0, 200 + tid())")
	e.close()
	e.close()
	e.close()
	e.line("atomic total += mine")
	e.close()
	e.line("return total")
	e.close()

	// halo exchange across all ranks, threads pack/unpack.
	e.open("func haloexchange(n, reps) {")
	e.line("var buf[64]")
	e.line("var inbound = 0")
	e.open("for r = 0 .. reps {")
	e.open("parallel {")
	e.open("pfor i = 0 .. n {")
	e.line("buf[i] = i + r")
	e.close()
	e.close()
	e.line("var left = rank() - 1")
	e.line("var right = rank() + 1")
	e.open("if rank() %% 2 == 0 {")
	e.open("if right < size() {")
	e.line("MPI_Send(buf[n - 1], right, 40)")
	e.line("MPI_Recv(inbound, right, 41)")
	e.close()
	e.open("if left >= 0 {")
	e.line("MPI_Recv(inbound, left, 40)")
	e.line("MPI_Send(buf[0], left, 41)")
	e.close()
	e.elseOpen()
	e.open("if left >= 0 {")
	e.line("MPI_Recv(inbound, left, 40)")
	e.line("MPI_Send(buf[0], left, 41)")
	e.close()
	e.open("if right < size() {")
	e.line("MPI_Send(buf[n - 1], right, 40)")
	e.line("MPI_Recv(inbound, right, 41)")
	e.close()
	e.close()
	e.close()
	e.line("return inbound")
	e.close()

	// collective kernels: barrier, reduce, bcast, alltoall.
	e.open("func bench_barrier(reps) {")
	e.open("for r = 0 .. reps {")
	e.line("MPI_Barrier()")
	e.close()
	e.line("return 0")
	e.close()

	e.open("func bench_reduce(reps) {")
	e.line("var acc = 0")
	e.open("for r = 0 .. reps {")
	e.line("var g = 0")
	e.open("parallel {")
	e.open("pfor i = 0 .. 32 {")
	e.line("atomic acc += 1")
	e.close()
	e.open("single {")
	e.line("MPI_Allreduce(g, acc, sum)")
	e.close()
	e.close()
	e.line("acc = g %% 1000")
	e.close()
	e.line("return acc")
	e.close()

	e.open("func bench_bcast(reps) {")
	e.line("var v = rank()")
	e.open("for r = 0 .. reps {")
	e.line("MPI_Bcast(v, 0)")
	e.line("v = v + 1")
	e.close()
	e.line("return v")
	e.close()

	e.open("func bench_alltoall(reps) {")
	e.line("var src[16]")
	e.line("var dst[16]")
	e.open("for r = 0 .. reps {")
	e.open("for i = 0 .. size() {")
	e.line("src[i] = rank() * 100 + i + r")
	e.close()
	e.line("MPI_Alltoall(dst, src)")
	e.close()
	e.line("return dst[0]")
	e.close()

	e.open("func main() {")
	e.line("MPI_Init()")
	e.line("var reps = %d", sc.Reps)
	e.line("var r1 = pingpong_masteronly(reps)")
	e.line("var r2 = pingpong_funnelled(reps)")
	e.line("var r3 = pingpong_multiple(reps)")
	e.line("var r4 = haloexchange(%d, reps)", min(sc.Points, 64))
	if bug == BugEarlyReturn {
		e.bugComment(bug)
		e.open("if rank() %% 2 == 1 {")
		e.line("MPI_Finalize()")
		e.line("return 1")
		e.close()
	}
	e.line("var r5 = bench_barrier(reps)")
	e.line("var r6 = bench_reduce(reps)")
	// Every rank is "active" (rank() < size() always holds), but the
	// analysis cannot prove it: the guarded collective kernels below are
	// the correct-but-unprovable pattern the runtime CC checks validate.
	e.line("var r7 = 0")
	e.line("var r8 = 0")
	e.open("if rank() < size() {")
	e.line("r7 = bench_bcast(reps)")
	e.line("r8 = bench_alltoall(reps)")
	e.close()
	if e.seedProcessBug(bug, "r7") {
		// inter-process bug at suite level
	} else if bug != BugNone && bug != BugEarlyReturn {
		e.open("parallel {")
		e.seedThreadingBug(bug, "r6")
		e.close()
	}
	e.line("print(r1 + r2 + r3 + r4 + r5 + r6 %% 97 + r7 + r8)")
	e.line("MPI_Finalize()")
	e.close()

	return Workload{Name: "EPCC", Source: e.String(), Procs: 2, Threads: 4, Bug: bug}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
