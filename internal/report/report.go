// Package report regenerates the paper's experimental results as text
// tables: Figure 1 (compile-time overhead of warnings and of warnings +
// verification-code generation), the warning inventory the static phase
// prints for each benchmark, the error-detection matrix, the runtime
// overhead of the selective instrumentation, and the ablation of the
// design choices. cmd/figures is a thin shell over this package, and the
// root bench suite exercises the same paths under testing.B.
package report

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"parcoach"
	"parcoach/internal/core"
	"parcoach/internal/interp"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/sched"
	"parcoach/internal/verifier"
	"parcoach/internal/workload"
)

// CompileTimes holds the per-mode compile time of one benchmark.
type CompileTimes struct {
	Name     string
	Baseline time.Duration
	Analyze  time.Duration
	Full     time.Duration
}

// OverheadAnalyze returns the Figure 1 "warnings only" percentage.
func (c CompileTimes) OverheadAnalyze() float64 {
	return pct(c.Analyze, c.Baseline)
}

// OverheadFull returns the Figure 1 "warnings + verification code
// generation" percentage.
func (c CompileTimes) OverheadFull() float64 {
	return pct(c.Full, c.Baseline)
}

func pct(mode, base time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return (float64(mode)/float64(base) - 1) * 100
}

// MeasureCompile derives the three Figure 1 bars from the per-phase
// timings of full-mode compiles: within one compile, front end, backend,
// analysis and instrumentation run under identical machine conditions, so
// their ratio is immune to the run-to-run noise (GC scheduling, frequency
// drift) that dominates when separate baseline/analyze/full runs are
// compared on sub-millisecond compiles. The baseline bar is frontend +
// backend — exactly what ModeBaseline executes — and the fastest of iters
// compiles is kept.
func MeasureCompile(w workload.Workload, iters int) (CompileTimes, error) {
	if iters < 1 {
		iters = 1
	}
	out := CompileTimes{Name: w.Name}
	var bestTotal time.Duration
	for i := 0; i < iters; i++ {
		runtime.GC()
		p, err := parcoach.Compile(w.Name+".mh", w.Source, parcoach.Options{Mode: parcoach.ModeFull})
		if err != nil {
			return out, err
		}
		total := p.Timing.Frontend + p.Timing.Backend + p.Timing.Analysis + p.Timing.Instrument
		if bestTotal != 0 && total >= bestTotal {
			continue
		}
		bestTotal = total
		out.Baseline = p.Timing.Frontend + p.Timing.Backend
		out.Analyze = out.Baseline + p.Timing.Analysis
		out.Full = out.Analyze + p.Timing.Instrument
	}
	return out, nil
}

// Figure1 reproduces the paper's Figure 1: average compilation overhead
// with and without verification code generation for BT-MZ, SP-MZ, LU-MZ,
// the EPCC suite and HERA.
func Figure1(sc workload.Scale, iters int) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 1 — compile-time overhead of the verification (vs baseline compile)\n\n")
	fmt.Fprintf(&b, "%-10s %12s %14s %14s %12s %12s\n",
		"benchmark", "baseline", "warnings", "warn+codegen", "ovh-warn%", "ovh-code%")
	for _, w := range workload.Figure1Set(sc) {
		ct, err := MeasureCompile(w, iters)
		if err != nil {
			return "", fmt.Errorf("%s: %w", w.Name, err)
		}
		fmt.Fprintf(&b, "%-10s %12s %14s %14s %11.2f%% %11.2f%%\n",
			ct.Name, fmtDur(ct.Baseline), fmtDur(ct.Analyze), fmtDur(ct.Full),
			ct.OverheadAnalyze(), ct.OverheadFull())
	}
	b.WriteString("\npaper's shape: both overheads small (≤6%), codegen ≥ warnings-only\n")
	return b.String(), nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	}
}

// WarningInventory reproduces the static phase's output claim: for each
// benchmark and each seeded bug class, the number and kinds of warnings
// issued (the base versions are warning-free).
func WarningInventory(sc workload.Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Warning inventory — compile-time warnings per benchmark and seeded bug class\n\n")
	fmt.Fprintf(&b, "%-10s %-26s %6s %-s\n", "benchmark", "seeded bug", "warns", "kinds")
	gens := []struct {
		name string
		make func(workload.Scale, workload.Bug) workload.Workload
	}{
		{"BT-MZ", workload.BTMZ}, {"SP-MZ", workload.SPMZ}, {"LU-MZ", workload.LUMZ},
		{"EPCC", workload.EPCC}, {"HERA", workload.HERA},
	}
	bugs := append([]workload.Bug{workload.BugNone}, workload.AllBugs...)
	for _, g := range gens {
		for _, bug := range bugs {
			w := g.make(sc, bug)
			p, err := parcoach.Compile(w.Name+".mh", w.Source, parcoach.Options{Mode: parcoach.ModeAnalyze})
			if err != nil {
				return "", fmt.Errorf("%s+%s: %w", g.name, bug, err)
			}
			warns := p.Warnings()
			fmt.Fprintf(&b, "%-10s %-26s %6d %s\n", g.name, bug.String(), len(warns), kindSummary(warns))
		}
	}
	return b.String(), nil
}

func kindSummary(diags []parcoach.Diagnostic) string {
	counts := core.CountByKind(diags)
	if len(counts) == 0 {
		return "-"
	}
	type kv struct {
		k core.DiagKind
		n int
	}
	var list []kv
	for k, n := range counts {
		list = append(list, kv{k, n})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].k < list[j].k })
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = fmt.Sprintf("%s×%d", e.k, e.n)
	}
	return strings.Join(parts, ", ")
}

// DetectionMatrix reproduces the tool's end-to-end claim: every bug class
// is (a) warned about statically and (b) stopped at run time by the
// instrumentation with a located error, before the runtime deadlocks.
func DetectionMatrix() (string, error) {
	var b strings.Builder
	b.WriteString("Detection matrix — micro error corpus, np=2 (np=1 for intra-process races), threads=2\n\n")
	fmt.Fprintf(&b, "%-26s %-28s %-28s %s\n", "bug class", "static warning", "instrumented run", "uninstrumented run")
	for _, bug := range append([]workload.Bug{workload.BugNone}, workload.AllBugs...) {
		w := workload.Micro(bug)
		p, err := parcoach.Compile(w.Name+".mh", w.Source, parcoach.Options{Mode: parcoach.ModeFull})
		if err != nil {
			return "", err
		}
		static := "-"
		if warns := p.Warnings(); len(warns) > 0 {
			static = warns[0].Kind.String()
		}
		procs := 2
		if bug == workload.BugConcurrentSingles || bug == workload.BugSectionsCollectives {
			procs = 1
		}
		runOpts := parcoach.RunOptions{Procs: procs, Threads: 2, Policy: omp.RoundRobin}
		var dynamic, ground string
		if bug == workload.BugTornBuffer {
			// The torn source buffer only manifests under particular
			// interleavings — a single free-running run is a coin flip, so
			// the matrix judges it the way the tool does (schedule
			// exploration) and pins the uninstrumented ground-truth run to
			// the deterministic round-robin scheduler, which provably
			// misses the race: on a real machine it is silent corruption.
			rep := p.Explore(parcoach.ExploreOptions{
				Strategy:  parcoach.ExploreRandom,
				Schedules: 8,
				Procs:     procs,
				Threads:   2,
			})
			dynamic = "explored: completes"
			if v := rep.Verdict(parcoach.RunValueError); v != nil {
				dynamic = "explored: value oracle @ " + v.Schedule
			}
			if rr, err := sched.Parse("rr"); err == nil {
				runOpts.Scheduler = rr
			}
			ground = describeRunError(p.RunUninstrumented(runOpts).Err)
		} else {
			dynamic = describeRunError(p.Run(runOpts).Err)
			ground = describeRunError(p.RunUninstrumented(runOpts).Err)
		}
		fmt.Fprintf(&b, "%-26s %-28s %-28s %s\n", bug.String(), static, dynamic, ground)
	}
	b.WriteString("\n(instrumented runs abort with located verification errors; uninstrumented\n")
	b.WriteString(" runs show what would happen on a real machine: mismatch, hang, or silence)\n")
	return b.String(), nil
}

func describeRunError(err error) string {
	switch parcoach.ClassifyRun(err) {
	case parcoach.RunClean:
		return "completes"
	case parcoach.RunCheckAbort:
		var e *verifier.Error
		errors.As(err, &e)
		return "verifier: " + e.Kind.String()
	case parcoach.RunMPIError:
		var mm *mpi.MismatchError
		var cc *mpi.ConcurrentCallError
		switch {
		case errors.As(err, &mm):
			return "runtime mismatch"
		case errors.As(err, &cc):
			return "runtime concurrent calls"
		default:
			return "runtime usage error"
		}
	case parcoach.RunDeadlock:
		return "deadlock (detected)"
	case parcoach.RunBudget:
		return "step budget exhausted"
	case parcoach.RunValueError:
		var ve *verifier.ValueError
		if errors.As(err, &ve) {
			return "value oracle: " + ve.Check.String()
		}
		return "value oracle"
	default:
		return "error"
	}
}

// OverheadRow is one line of the runtime-overhead experiment.
type OverheadRow struct {
	Name          string
	PlainTime     time.Duration
	SelectiveTime time.Duration
	FullTime      time.Duration
	SelChecks     int
	FullChecks    int
}

// MeasureRuntime compares execution time of a correct benchmark without
// instrumentation, with the paper's selective instrumentation, and with
// the unrefined (RawPDF) instrumentation that checks every collective —
// quantifying the claim that selectivity keeps runtime cost low.
func MeasureRuntime(w workload.Workload, procs, threads, iters int) (OverheadRow, error) {
	row := OverheadRow{Name: w.Name}
	sel, err := parcoach.Compile(w.Name+".mh", w.Source, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		return row, err
	}
	full, err := parcoach.Compile(w.Name+".mh", w.Source, parcoach.Options{Mode: parcoach.ModeFull, RawPDF: true})
	if err != nil {
		return row, err
	}
	run := func(p *parcoach.Program, instrumented bool) (time.Duration, int, error) {
		best := time.Duration(0)
		checks := 0
		for i := 0; i < iters; i++ {
			var res *parcoach.RunResult
			start := time.Now()
			if instrumented {
				res = p.Run(parcoach.RunOptions{Procs: procs, Threads: threads})
			} else {
				res = p.RunUninstrumented(parcoach.RunOptions{Procs: procs, Threads: threads})
			}
			d := time.Since(start)
			if res.Err != nil {
				return 0, 0, fmt.Errorf("%s run failed: %w", w.Name, res.Err)
			}
			if best == 0 || d < best {
				best = d
			}
			checks = res.Stats.CCChecks + res.Stats.PhaseChecks
		}
		return best, checks, nil
	}
	if row.PlainTime, _, err = run(sel, false); err != nil {
		return row, err
	}
	if row.SelectiveTime, row.SelChecks, err = run(sel, true); err != nil {
		return row, err
	}
	if row.FullTime, row.FullChecks, err = run(full, true); err != nil {
		return row, err
	}
	return row, nil
}

// RuntimeOverhead renders the runtime-overhead table for the Figure 1
// benchmark set.
func RuntimeOverhead(sc workload.Scale, procs, threads, iters int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Runtime overhead — correct benchmarks, np=%d, threads=%d\n\n", procs, threads)
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %8s %12s %10s %8s\n",
		"benchmark", "plain", "selective", "ovh%", "checks", "full-instr", "ovh%", "checks")
	for _, w := range workload.Figure1Set(sc) {
		row, err := MeasureRuntime(w, procs, threads, iters)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %12s %12s %9.2f%% %8d %12s %9.2f%% %8d\n",
			row.Name, fmtDur(row.PlainTime), fmtDur(row.SelectiveTime),
			pct(row.SelectiveTime, row.PlainTime), row.SelChecks,
			fmtDur(row.FullTime), pct(row.FullTime, row.PlainTime), row.FullChecks)
	}
	b.WriteString("\nselective instrumentation of clean code inserts no checks (the paper's point);\n")
	b.WriteString("full instrumentation (raw PDF+, no rank-dependence filter) shows the avoided cost\n")
	return b.String(), nil
}

// Ablation reports where compile time goes per phase and what the
// rank-dependence refinement saves in warnings and checks.
func Ablation(sc workload.Scale, iters int) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation — phase timing and the rank-dependence refinement of Algorithm 1\n\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s | %14s %14s\n",
		"benchmark", "frontend", "backend", "analysis", "instr", "warns sel/raw", "checks sel/raw")
	for _, w := range workload.Figure1Set(sc) {
		var sel, raw *parcoach.Program
		var err error
		for i := 0; i < iters; i++ {
			sel, err = parcoach.Compile(w.Name+".mh", w.Source, parcoach.Options{Mode: parcoach.ModeFull})
			if err != nil {
				return "", err
			}
		}
		raw, err = parcoach.Compile(w.Name+".mh", w.Source, parcoach.Options{Mode: parcoach.ModeFull, RawPDF: true})
		if err != nil {
			return "", err
		}
		selChecks := sel.Stats.Checks.CCChecks + sel.Stats.Checks.PhaseCounts + sel.Stats.Checks.ReturnChecks
		rawChecks := raw.Stats.Checks.CCChecks + raw.Stats.Checks.PhaseCounts + raw.Stats.Checks.ReturnChecks
		fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s | %7d/%-6d %7d/%-6d\n",
			w.Name, fmtDur(sel.Timing.Frontend), fmtDur(sel.Timing.Backend),
			fmtDur(sel.Timing.Analysis), fmtDur(sel.Timing.Instrument),
			len(sel.Warnings()), len(raw.Warnings()), selChecks, rawChecks)
	}
	return b.String(), nil
}

// Run smoke-executes one benchmark and returns a human summary; used by
// cmd/figures -run and the examples.
func Run(w workload.Workload, procs, threads int) (string, error) {
	p, err := parcoach.Compile(w.Name+".mh", w.Source, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		return "", err
	}
	res := p.Run(parcoach.RunOptions{Procs: procs, Threads: threads})
	var b strings.Builder
	fmt.Fprintf(&b, "%s: funcs=%d stmts=%d cfg-nodes=%d warnings=%d\n",
		w.Name, p.Stats.Functions, p.Stats.Statements, p.Stats.CFGNodes, len(p.Warnings()))
	fmt.Fprintf(&b, "run: collectives=%d p2p=%d barriers=%d steps=%d checks=%d err=%v\n",
		res.Stats.Collectives, res.Stats.P2PMessages, res.Stats.Barriers,
		res.Stats.Steps, res.Stats.CCChecks+res.Stats.PhaseChecks, res.Err)
	return b.String(), nil
}

// Interp re-exports the interpreter option type for callers that need it.
type Interp = interp.Options
