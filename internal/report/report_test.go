package report

import (
	"errors"
	"time"

	"parcoach"
	"parcoach/internal/core"
	"parcoach/internal/interp"
	"parcoach/internal/monitor"
	"parcoach/internal/mpi"
	"parcoach/internal/verifier"
	"strings"
	"testing"

	"parcoach/internal/workload"
)

func TestFigure1Table(t *testing.T) {
	out, err := Figure1(workload.ScaleS, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BT-MZ", "SP-MZ", "LU-MZ", "EPCC", "HERA", "ovh-warn%", "ovh-code%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 output missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureCompileOrdering(t *testing.T) {
	ct, err := MeasureCompile(workload.BTMZ(workload.ScaleS, workload.BugNone), 3)
	if err != nil {
		t.Fatal(err)
	}
	// By construction the modes nest: baseline ⊆ analyze ⊆ full.
	if ct.Baseline <= 0 || ct.Analyze < ct.Baseline || ct.Full < ct.Analyze {
		t.Errorf("mode times must nest: %+v", ct)
	}
	if ct.OverheadAnalyze() < 0 || ct.OverheadFull() < ct.OverheadAnalyze() {
		t.Errorf("overheads must be ordered: %f %f", ct.OverheadAnalyze(), ct.OverheadFull())
	}
}

func TestWarningInventoryTable(t *testing.T) {
	out, err := WarningInventory(workload.ScaleS)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rank-dependent-collective") || !strings.Contains(out, "HERA") {
		t.Errorf("inventory incomplete:\n%s", out)
	}
	// Seeded threading bugs must show their kinds.
	if !strings.Contains(out, "multithreaded-collective") {
		t.Errorf("inventory missing threading kinds:\n%s", out)
	}
}

func TestDetectionMatrixTable(t *testing.T) {
	out, err := DetectionMatrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"none", "completes",
		"verifier: multithreaded-collective",
		"verifier: concurrent-collectives",
		"verifier: collective-mismatch",
		"value oracle: wrong-root",
		"value oracle: wrong-op",
		"explored: value oracle @ rand:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("detection matrix missing %q:\n%s", want, out)
		}
	}
}

func TestRuntimeOverheadTable(t *testing.T) {
	out, err := RuntimeOverhead(workload.ScaleS, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "selective") || !strings.Contains(out, "full-instr") {
		t.Errorf("overhead table incomplete:\n%s", out)
	}
}

func TestAblationTable(t *testing.T) {
	out, err := Ablation(workload.ScaleS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "warns sel/raw") {
		t.Errorf("ablation table incomplete:\n%s", out)
	}
}

func TestRunSummary(t *testing.T) {
	out, err := Run(workload.Micro(workload.BugNone), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "err=<nil>") {
		t.Errorf("clean micro summary: %s", out)
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0.0µs"},
		{500 * time.Nanosecond, "0.5µs"},
		{time.Microsecond, "1.0µs"},
		{999 * time.Microsecond, "999.0µs"},
		{time.Millisecond, "1.00ms"},
		{1500 * time.Microsecond, "1.50ms"},
		{2 * time.Second, "2000.00ms"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestPct(t *testing.T) {
	cases := []struct {
		mode, base time.Duration
		want       float64
	}{
		{110, 100, 10},
		{100, 100, 0},
		{50, 100, -50},
		{300, 100, 200},
		{100, 0, 0},  // zero baseline must not divide
		{100, -5, 0}, // negative baseline likewise
	}
	for _, c := range cases {
		if got := pct(c.mode, c.base); !close(got, c.want) {
			t.Errorf("pct(%d, %d) = %f, want %f", c.mode, c.base, got, c.want)
		}
	}
}

// close compares percentages with a float tolerance.
func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestKindSummaryOrderingAndCounts(t *testing.T) {
	mk := func(k core.DiagKind) parcoach.Diagnostic { return parcoach.Diagnostic{Kind: k} }
	cases := []struct {
		name  string
		diags []parcoach.Diagnostic
		want  string
	}{
		{"empty", nil, "-"},
		{"single", []parcoach.Diagnostic{mk(core.DiagCollectiveMismatch)}, "collective-mismatch×1"},
		{
			// Kinds must come out in DiagKind order however they arrive.
			"sorted-by-kind",
			[]parcoach.Diagnostic{
				mk(core.DiagCollectiveMismatch), mk(core.DiagMultithreadedCollective),
				mk(core.DiagCollectiveMismatch), mk(core.DiagConcurrentCollectives),
			},
			"multithreaded-collective×1, concurrent-collectives×1, collective-mismatch×2",
		},
		{
			"info-kind-included",
			[]parcoach.Diagnostic{mk(core.DiagThreadLevel), mk(core.DiagThreadLevel)},
			"thread-level×2",
		},
	}
	for _, c := range cases {
		if got := kindSummary(c.diags); got != c.want {
			t.Errorf("%s: kindSummary = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestDescribeRunError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"nil", nil, "completes"},
		{"verifier", &verifier.Error{Kind: verifier.ErrCollectiveMismatch}, "verifier: collective-mismatch"},
		{"verifier-mt", &verifier.Error{Kind: verifier.ErrMultithreadedCollective}, "verifier: multithreaded-collective"},
		{"mismatch", &mpi.MismatchError{Calls: map[int]string{}}, "runtime mismatch"},
		{"concurrent", &mpi.ConcurrentCallError{OpA: "a", OpB: "b"}, "runtime concurrent calls"},
		{"usage", &mpi.UsageError{Msg: "x"}, "runtime usage error"},
		{"deadlock", &monitor.DeadlockError{}, "deadlock (detected)"},
		{"budget", &interp.StepLimitError{Limit: 100}, "step budget exhausted"},
		{"other", errors.New("boom"), "error"},
	}
	for _, c := range cases {
		if got := describeRunError(c.err); got != c.want {
			t.Errorf("%s: describeRunError = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestCompileTimesOverheadEdgeCases(t *testing.T) {
	cases := []struct {
		name                  string
		ct                    CompileTimes
		wantAnalyze, wantFull float64
	}{
		{"zero-baseline", CompileTimes{Baseline: 0, Analyze: 10, Full: 20}, 0, 0},
		{"no-overhead", CompileTimes{Baseline: 100, Analyze: 100, Full: 100}, 0, 0},
		{"ordered", CompileTimes{Baseline: 100, Analyze: 110, Full: 121}, 10, 21},
	}
	for _, c := range cases {
		if got := c.ct.OverheadAnalyze(); !close(got, c.wantAnalyze) {
			t.Errorf("%s: OverheadAnalyze = %f, want %f", c.name, got, c.wantAnalyze)
		}
		if got := c.ct.OverheadFull(); !close(got, c.wantFull) {
			t.Errorf("%s: OverheadFull = %f, want %f", c.name, got, c.wantFull)
		}
	}
}

// TestDetectionMatrixMicroProcs locks the per-class run parameters the
// matrix text advertises: the intra-process race classes run on one
// process and still get caught by the planted checks.
func TestDetectionMatrixMicroProcs(t *testing.T) {
	out, err := DetectionMatrix()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	found := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "concurrent-singles") || strings.HasPrefix(line, "sections-collectives") {
			found++
			if !strings.Contains(line, "verifier: concurrent-collectives") {
				t.Errorf("intra-process race line lost its dynamic catch: %q", line)
			}
		}
	}
	if found != 2 {
		t.Errorf("expected 2 intra-process race rows, found %d:\n%s", found, out)
	}
}
