package report

import (
	"strings"
	"testing"

	"parcoach/internal/workload"
)

func TestFigure1Table(t *testing.T) {
	out, err := Figure1(workload.ScaleS, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BT-MZ", "SP-MZ", "LU-MZ", "EPCC", "HERA", "ovh-warn%", "ovh-code%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 output missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureCompileOrdering(t *testing.T) {
	ct, err := MeasureCompile(workload.BTMZ(workload.ScaleS, workload.BugNone), 3)
	if err != nil {
		t.Fatal(err)
	}
	// By construction the modes nest: baseline ⊆ analyze ⊆ full.
	if ct.Baseline <= 0 || ct.Analyze < ct.Baseline || ct.Full < ct.Analyze {
		t.Errorf("mode times must nest: %+v", ct)
	}
	if ct.OverheadAnalyze() < 0 || ct.OverheadFull() < ct.OverheadAnalyze() {
		t.Errorf("overheads must be ordered: %f %f", ct.OverheadAnalyze(), ct.OverheadFull())
	}
}

func TestWarningInventoryTable(t *testing.T) {
	out, err := WarningInventory(workload.ScaleS)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rank-dependent-collective") || !strings.Contains(out, "HERA") {
		t.Errorf("inventory incomplete:\n%s", out)
	}
	// Seeded threading bugs must show their kinds.
	if !strings.Contains(out, "multithreaded-collective") {
		t.Errorf("inventory missing threading kinds:\n%s", out)
	}
}

func TestDetectionMatrixTable(t *testing.T) {
	out, err := DetectionMatrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"none", "completes",
		"verifier: multithreaded-collective",
		"verifier: concurrent-collectives",
		"verifier: collective-mismatch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("detection matrix missing %q:\n%s", want, out)
		}
	}
}

func TestRuntimeOverheadTable(t *testing.T) {
	out, err := RuntimeOverhead(workload.ScaleS, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "selective") || !strings.Contains(out, "full-instr") {
		t.Errorf("overhead table incomplete:\n%s", out)
	}
}

func TestAblationTable(t *testing.T) {
	out, err := Ablation(workload.ScaleS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "warns sel/raw") {
		t.Errorf("ablation table incomplete:\n%s", out)
	}
}

func TestRunSummary(t *testing.T) {
	out, err := Run(workload.Micro(workload.BugNone), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "err=<nil>") {
		t.Errorf("clean micro summary: %s", out)
	}
}
