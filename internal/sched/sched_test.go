package sched

import (
	"reflect"
	"testing"
)

// synth builds a Choice over the given enabled ids.
func synth(cur ThreadID, seq int64, ids ...ThreadID) Choice {
	return Choice{Enabled: ids, Cur: cur, Seq: seq}
}

// TestRoundRobinRotation: the reference scheduler rotates through the
// enabled set in id order, skipping disabled threads.
func TestRoundRobinRotation(t *testing.T) {
	s := NewRoundRobin()
	var got []ThreadID
	for i := int64(0); i < 6; i++ {
		got = append(got, s.Next(synth(-1, i, 0, 1, 2)))
	}
	want := []ThreadID{0, 1, 2, 0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotation = %v, want %v", got, want)
	}
	// Thread 1 drops out: the rotation continues over the remainder.
	if id := s.Next(synth(-1, 6, 0, 2)); id != 0 {
		t.Fatalf("after wrap with {0,2}: got %v, want 0", id)
	}
	if id := s.Next(synth(-1, 7, 0, 2)); id != 2 {
		t.Fatalf("next with {0,2}: got %v, want 2", id)
	}
}

// TestRoundRobinFairnessBound: over any run of decisions, an enabled
// thread waits at most len(enabled) decisions before running — the
// no-starvation bound the conformance suite pins.
func TestRoundRobinFairnessBound(t *testing.T) {
	s := NewRoundRobin()
	enabled := []ThreadID{0, 1, 2, 3}
	lastRun := map[ThreadID]int{}
	for i := 0; i < 100; i++ {
		id := s.Next(synth(-1, int64(i), enabled...))
		for _, e := range enabled {
			if e != id && i-lastRun[e] > len(enabled) {
				t.Fatalf("thread %v starved for %d decisions", e, i-lastRun[e])
			}
		}
		lastRun[id] = i
	}
}

// TestRandomSeedDeterminism: the same seed yields the same decision
// sequence; different seeds are allowed to differ (and do, for this
// sequence length).
func TestRandomSeedDeterminism(t *testing.T) {
	seq := func(seed int64) []ThreadID {
		s := NewRandom(seed)
		var out []ThreadID
		for i := int64(0); i < 64; i++ {
			out = append(out, s.Next(synth(-1, i, 0, 1, 2, 3)))
		}
		return out
	}
	if !reflect.DeepEqual(seq(7), seq(7)) {
		t.Fatal("same seed produced different schedules")
	}
	if reflect.DeepEqual(seq(7), seq(8)) {
		t.Fatal("different seeds produced identical 64-step schedules")
	}
}

// TestPCTPriorities: with depth 1 there are no priority change points,
// so PCT degenerates to strict priority scheduling — the same thread
// runs as long as the same set is enabled, and when it blocks the next
// priority takes over (and keeps running after the first returns,
// having been demoted never — priorities are static at depth 1).
func TestPCTPriorities(t *testing.T) {
	s := NewPCT(1, 1, 0)
	first := s.Next(synth(-1, 0, 0, 1, 2))
	for i := int64(1); i < 10; i++ {
		if got := s.Next(synth(first, i, 0, 1, 2)); got != first {
			t.Fatalf("decision %d: depth-1 PCT switched from %v to %v without a change point", i, first, got)
		}
	}
	// first blocks: a different thread must run.
	var rest []ThreadID
	for _, id := range []ThreadID{0, 1, 2} {
		if id != first {
			rest = append(rest, id)
		}
	}
	second := s.Next(synth(-1, 10, rest...))
	if second == first {
		t.Fatalf("blocked thread %v picked", first)
	}
	// first returns: it preempts again (it still has top priority).
	if got := s.Next(synth(second, 11, 0, 1, 2)); got != first {
		t.Fatalf("after unblock: got %v, want %v", got, first)
	}
}

// TestPCTDeterminism: same seed/depth, same schedule.
func TestPCTDeterminism(t *testing.T) {
	run := func() []ThreadID {
		s := NewPCT(42, 4, 0)
		var out []ThreadID
		for i := int64(0); i < 64; i++ {
			out = append(out, s.Next(synth(-1, i, 0, 1, 2, 3)))
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("same PCT configuration produced different schedules")
	}
}

// TestReplayFollowsTrace: replay takes the recorded pick at branch
// points, passes through singleton choices without consuming trace, and
// flags divergence when the recorded pick is not enabled.
func TestReplayFollowsTrace(t *testing.T) {
	s := &Replay{Trace: []ThreadID{2, 1}}
	if got := s.Next(synth(-1, 0, 0, 1, 2)); got != 2 {
		t.Fatalf("branch 0: got %v, want 2", got)
	}
	if got := s.Next(synth(-1, 1, 1)); got != 1 {
		t.Fatalf("singleton choice: got %v, want 1", got)
	}
	if got := s.Next(synth(-1, 2, 0, 1)); got != 1 {
		t.Fatalf("branch 1: got %v, want 1", got)
	}
	// Past the trace: lowest enabled.
	if got := s.Next(synth(-1, 3, 0, 3)); got != 0 {
		t.Fatalf("past trace: got %v, want 0", got)
	}
	if s.Diverged() {
		t.Fatal("spurious divergence")
	}
	d := &Replay{Trace: []ThreadID{9}}
	d.Next(synth(-1, 0, 0, 1))
	if !d.Diverged() {
		t.Fatal("replay of a disabled thread must flag divergence")
	}
	// A run with fewer branch points than the trace has entries is also
	// a divergence: the recorded schedule never ran to completion, so a
	// "clean" result must not pass as a reproduction.
	short := &Replay{Trace: []ThreadID{0, 1, 0}}
	short.Next(synth(-1, 0, 0, 1))
	short.Next(synth(-1, 1, 0))
	if !short.Diverged() {
		t.Fatal("unconsumed trace entries must flag divergence")
	}
	exact := &Replay{Trace: []ThreadID{0}}
	exact.Next(synth(-1, 0, 0, 1))
	if exact.Diverged() {
		t.Fatal("fully consumed trace must not flag divergence")
	}
}

// TestRecorderBranches: the recorder logs exactly the multi-choice
// decisions, with enabled sets and picks, and its trace replays.
func TestRecorderBranches(t *testing.T) {
	r := &Recorder{Prefix: []ThreadID{1}}
	r.Next(synth(-1, 0, 0))       // singleton: not a branch
	r.Next(synth(-1, 1, 0, 1))    // branch 0: prefix says 1
	r.Next(synth(-1, 2, 0, 1, 2)) // branch 1: past prefix, default 0
	if len(r.Branches) != 2 {
		t.Fatalf("recorded %d branches, want 2", len(r.Branches))
	}
	if !reflect.DeepEqual(r.Trace(), []ThreadID{1, 0}) {
		t.Fatalf("trace = %v, want [1 0]", r.Trace())
	}
	if r.Branches[1].Enabled[2] != 2 {
		t.Fatalf("branch enabled set not recorded: %+v", r.Branches[1])
	}
}

// TestTokenRoundTrip: every token form parses back into a scheduler of
// the right shape, and malformed tokens are rejected.
func TestTokenRoundTrip(t *testing.T) {
	cases := []struct {
		token string
		want  any
	}{
		{RoundRobinToken, &RoundRobin{}},
		{RandomToken(123), &Random{}},
		{PCTToken(5, 3), &PCT{}},
		{FormatTrace([]ThreadID{0, 2, 1}), &Replay{}},
		{FormatTrace(nil), &Replay{}},
	}
	for _, tc := range cases {
		s, err := Parse(tc.token)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.token, err)
			continue
		}
		if reflect.TypeOf(s) != reflect.TypeOf(tc.want) {
			t.Errorf("Parse(%q) = %T, want %T", tc.token, s, tc.want)
		}
	}
	if s, err := Parse("trace:0.2.1"); err != nil {
		t.Errorf("trace token: %v", err)
	} else if !reflect.DeepEqual(s.(*Replay).Trace, []ThreadID{0, 2, 1}) {
		t.Errorf("trace payload = %v", s.(*Replay).Trace)
	}
	for _, bad := range []string{"", "nope", "rand:x", "pct:1", "pct:a:b", "trace:1.x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed token", bad)
		}
	}
}

// TestTokenReplayEquivalence: a random schedule and its parsed token
// produce identical decision sequences — the substance of "the printed
// seed replays exactly".
func TestTokenReplayEquivalence(t *testing.T) {
	orig := NewRandom(99)
	parsed, err := Parse(RandomToken(99))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 128; i++ {
		a := orig.Next(synth(-1, i, 0, 1, 2, 3, 4))
		b := parsed.Next(synth(-1, i, 0, 1, 2, 3, 4))
		if a != b {
			t.Fatalf("decision %d: original %v, replayed %v", i, a, b)
		}
	}
}
