// Package sched turns the free-running goroutine execution of the
// interpreter (internal/interp) into a controlled, serialized schedule:
// exactly one simulated thread runs at a time, and a pluggable Scheduler
// decides, at every statement boundary and every blocking transition,
// which enabled thread runs next.
//
// The Controller piggybacks on the blocking kernel (internal/monitor):
// every wait in the simulated runtimes already funnels through
// monitor.NewWaiterLocked / Waiter.Await, so the monitor's scheduler
// hooks tell the controller precisely when the running thread parks,
// when a parked thread becomes runnable again, and when a thread's
// goroutine exits. Between those transitions the interpreter calls
// Gate.Yield at each statement, giving the Scheduler statement-level
// interleaving control. Because only the token holder ever touches
// simulation state, a run is a deterministic function of the scheduler's
// decisions — which is what makes recorded schedules replayable and
// exhaustive enumeration (internal/explore) possible.
package sched

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"parcoach/internal/monitor"
)

// ThreadID identifies one simulated thread, assigned in creation order:
// the MPI process mains get 0..procs-1, forked team workers get ids in
// fork order. Under serialization creation order is deterministic, so
// ids are stable across runs of the same schedule.
type ThreadID int

// Choice is one scheduling decision: the sorted set of runnable threads
// and the context the scheduler may use to pick among them.
type Choice struct {
	// Enabled is the sorted, non-empty set of runnable threads. It is
	// only valid for the duration of the Next call (the controller
	// reuses its backing array); schedulers that retain it must copy,
	// as the DFS Recorder does.
	Enabled []ThreadID
	// Cur is the thread that just yielded, or -1 when the previous
	// holder parked or exited (it is then absent from Enabled).
	Cur ThreadID
	// Seq counts decisions since the run started.
	Seq int64
	// Sig is a positional state signature: a hash over every thread's
	// (id, liveness, last source line, executed-statement count). Two
	// interleavings that drove all threads to the same positions collide,
	// which is what lets the DFS exploration prune commuting schedules.
	// Only branch points (more than one enabled thread) carry a
	// signature; singleton decisions leave it 0 — no scheduler branches
	// there, so the per-statement fast path skips the hash.
	Sig uint64
}

// Scheduler picks the next thread to run. Implementations must be
// deterministic functions of their own state and the Choice sequence —
// that is the whole replayability contract.
type Scheduler interface {
	Next(c Choice) ThreadID
}

// TraceSource is implemented by schedulers (the DPORRecorder) that want
// the controller to record the run's event trace: one monitor.Event per
// scheduling decision, tagged with the object accesses the chosen thread
// performed until the next decision. NewController detects it and turns
// on per-gate access buffering.
type TraceSource interface {
	Scheduler
	EventTrace() *monitor.EventTrace
}

//
// Controller: the serialization token machine.
//

type gateState int

const (
	gateReady  gateState = iota // runnable, waiting for (or holding) the token
	gateParked                  // blocked in the monitor
	gateDone                    // goroutine exited
)

// Gate is the controller-side handle of one simulated thread. The
// interpreter threads carry their gate and call Yield on every statement.
type Gate struct {
	ctl   *Controller
	id    ThreadID
	grant chan struct{}

	// Guarded by ctl.mu.
	state gateState
	line  int   // last yielded source line
	steps int64 // statements executed
	// sig caches this gate's contribution to the controller's
	// incremental positional-state signature; dirty marks it stale
	// (fields above changed since it was computed).
	sig   uint64
	dirty bool

	// tracing mirrors "the controller records an event trace"; the
	// interpreter reads it once per thread context so the per-access
	// fast path is a plain bool test.
	tracing bool
	// acc buffers the object accesses of the current event. Only the
	// owning thread appends (it is the only one running), and every
	// flush into the controller's trace happens on that same goroutine
	// (Yield, park, exit and abort all run on the thread itself), so the
	// buffer needs no lock. Post-abort stragglers keep appending
	// harmlessly; the buffer is reset when the gate is recycled.
	acc []monitor.Access
}

// ID returns the thread id.
func (g *Gate) ID() ThreadID { return g.id }

// Tracing reports whether the controller records an event trace; when
// false, Access calls are wasted work and callers should skip tagging.
func (g *Gate) Tracing() bool { return g.tracing }

// Access tags the current event with one object access. Call only from
// the gate's own thread (the token holder).
func (g *Gate) Access(o monitor.Obj, kind monitor.AccessKind) {
	g.acc = append(g.acc, monitor.Access{Obj: o, Kind: kind})
}

// Controller serializes one run. It implements the monitor's scheduler
// hook interface; hook methods are called with the monitor lock held and
// only ever take the controller lock inside (lock order: monitor → ctl).
type Controller struct {
	mu       sync.Mutex
	sched    Scheduler
	gates    []*Gate
	holder   ThreadID // token holder, -1 when none
	seq      int64
	released chan struct{}
	isOff    bool
	owner    map[interface{}]*Gate // monitor waiter → parked gate

	// ready is the sorted id set of runnable gates, maintained
	// incrementally on every state transition. Decisions are then
	// O(enabled) instead of O(every gate ever forked) — a run that
	// keeps entering parallel regions forks a fresh team each time, and
	// scanning the accumulated dead gates once per statement turns such
	// runs quadratic (the step-limit abort of a reduced looping program
	// would take hours instead of seconds).
	ready []ThreadID

	enabledScratch []ThreadID

	// Incremental positional-state signature: xsig is the XOR of every
	// gate's cached per-gate FNV contribution. Gates whose position
	// changed since their contribution was computed sit on the dirty
	// list; sigLocked folds them in lazily, so long single-threaded
	// stretches (one dirty gate, many statements) never pay a
	// whole-gate-set rehash and nothing on the per-statement path
	// allocates.
	xsig  uint64
	dirty []*Gate

	// trace, when non-nil, is the run's event trace (the scheduler
	// implements TraceSource): chooseLocked closes the previous event by
	// flushing the holder's access buffer and opens one for its pick.
	// branchN counts multi-enabled decisions, aligning Event.Branch with
	// the Recorder's branch-point indices.
	trace   *monitor.EventTrace
	branchN int

	// freeGates recycles gate structs (and their grant channels) across
	// runs when the controller itself is recycled.
	freeGates []*Gate
}

// ctlPool recycles controllers across runs of an exploration; see
// Recycle for the safety rule.
var ctlPool = sync.Pool{New: func() any { return new(Controller) }}

// NewController creates (or recycles) a controller with one
// pre-registered gate per MPI process (ids 0..procs-1), driven by s.
func NewController(s Scheduler, procs int) *Controller {
	c := ctlPool.Get().(*Controller)
	c.sched = s
	c.holder = -1
	c.seq = 0
	c.isOff = false
	if c.released == nil {
		// Fresh controller, or recycled from an aborted run (whose
		// closed channel Recycle dropped).
		c.released = make(chan struct{})
	}
	if c.owner == nil {
		c.owner = make(map[interface{}]*Gate)
	} else {
		clear(c.owner)
	}
	c.xsig = 0
	c.dirty = c.dirty[:0]
	c.ready = c.ready[:0]
	c.trace = nil
	c.branchN = 0
	if ts, ok := s.(TraceSource); ok {
		c.trace = ts.EventTrace()
	}
	for i := 0; i < procs; i++ {
		c.newGateLocked()
	}
	return c
}

func (c *Controller) newGateLocked() *Gate {
	var g *Gate
	if n := len(c.freeGates); n > 0 {
		g = c.freeGates[n-1]
		c.freeGates = c.freeGates[:n-1]
		select { // defensive: a recycled gate must start with no token
		case <-g.grant:
		default:
		}
	} else {
		g = &Gate{grant: make(chan struct{}, 1)}
	}
	g.ctl = c
	g.id = ThreadID(len(c.gates))
	g.state = gateReady
	g.line = 0
	g.steps = 0
	g.dirty = false
	g.tracing = c.trace != nil
	g.acc = g.acc[:0]
	g.sig = g.contribution()
	c.xsig ^= g.sig
	c.gates = append(c.gates, g)
	c.readyAddLocked(g.id)
	return g
}

// readyAddLocked inserts id into the sorted ready set. Freshly forked
// gates carry the highest id so far, so forks take the append fast
// path; only wakes of low-id threads pay the insertion walk.
func (c *Controller) readyAddLocked(id ThreadID) {
	n := len(c.ready)
	if n == 0 || c.ready[n-1] < id {
		c.ready = append(c.ready, id)
		return
	}
	i := sort.Search(n, func(k int) bool { return c.ready[k] >= id })
	if i < n && c.ready[i] == id {
		return
	}
	c.ready = append(c.ready, 0)
	copy(c.ready[i+1:], c.ready[i:])
	c.ready[i] = id
}

// readyRemoveLocked deletes id from the sorted ready set.
func (c *Controller) readyRemoveLocked(id ThreadID) {
	i := sort.Search(len(c.ready), func(k int) bool { return c.ready[k] >= id })
	if i < len(c.ready) && c.ready[i] == id {
		c.ready = append(c.ready[:i], c.ready[i+1:]...)
	}
}

// Recycle returns the controller and its gates to the pool. Only call
// once the run has fully drained (monitor.Drained): until then, a
// goroutine released by an abort may still be parked on — or about to
// touch — its gate. After the drain nothing can reach the controller,
// so clean and aborted runs alike recycle here (an aborted run's closed
// release channel is dropped and remade on reuse).
func (c *Controller) Recycle() {
	c.mu.Lock()
	if c.isOff {
		c.released = nil
	}
	c.freeGates = append(c.freeGates, c.gates...)
	c.gates = c.gates[:0]
	c.sched = nil
	clear(c.owner)
	c.dirty = c.dirty[:0]
	c.ready = c.ready[:0]
	c.xsig = 0
	c.trace = nil
	c.mu.Unlock()
	ctlPool.Put(c)
}

// ProcGate returns the pre-registered gate of the given rank's main
// thread. Proc goroutines call this concurrently with the already
// granted thread (which may be forking new gates), so it locks.
func (c *Controller) ProcGate(rank int) *Gate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gates[rank]
}

// Fork registers n new team-worker threads at a deterministic point of
// the schedule (the forking thread holds the token). The returned gates
// are enabled immediately; their goroutines bind to them with Attach.
func (c *Controller) Fork(n int) []*Gate {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Gate, n)
	for i := range out {
		out[i] = c.newGateLocked()
	}
	return out
}

// Start hands the token to the scheduler's first pick. Call once, after
// binding the controller to the monitor and before launching the run.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pickLocked(-1)
}

// Attach blocks the calling goroutine until its gate is granted the
// token for the first time.
func (g *Gate) Attach() { g.await() }

func (g *Gate) await() {
	select {
	case <-g.grant:
	case <-g.ctl.released:
	}
}

// Yield offers a context switch at a statement boundary on the given
// source line. The calling thread must hold the token (it is the only
// one running). If the scheduler picks another thread, the caller parks
// until re-granted.
func (g *Gate) Yield(line int) {
	c := g.ctl
	c.mu.Lock()
	if c.isOff {
		c.mu.Unlock()
		return
	}
	g.line = line
	g.steps++
	c.markDirtyLocked(g)
	next := c.chooseLocked(g.id)
	if next == g.id {
		c.mu.Unlock()
		return
	}
	c.grantLocked(next)
	c.mu.Unlock()
	g.await()
}

// enabledLocked returns the sorted runnable set in the controller's
// scratch slice — one scheduling decision per statement makes this the
// hottest allocation site, so the backing array is reused; Next
// implementations must not retain it. The set is a copy of the
// incrementally maintained ready list, so the cost is O(enabled), not
// O(every gate ever forked).
func (c *Controller) enabledLocked() []ThreadID {
	out := append(c.enabledScratch[:0], c.ready...)
	c.enabledScratch = out
	return out
}

// contribution hashes the gate's position — (id, liveness, last line,
// executed-statement count) — with FNV-1a over a fixed stack buffer: no
// hasher object, no fmt, no string building. The id inside the hash
// keeps XOR combination safe against two gates swapping positions.
func (g *Gate) contribution() uint64 {
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(g.id))
	binary.LittleEndian.PutUint64(buf[8:], uint64(g.state))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(g.line)))
	binary.LittleEndian.PutUint64(buf[24:], uint64(g.steps))
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// markDirtyLocked queues the gate for a lazy signature update.
func (c *Controller) markDirtyLocked(g *Gate) {
	if !g.dirty {
		g.dirty = true
		c.dirty = append(c.dirty, g)
	}
}

// sigLocked returns the incremental positional signature, folding in
// the gates whose position changed since the last decision point.
func (c *Controller) sigLocked() uint64 {
	if len(c.dirty) > 0 {
		for _, g := range c.dirty {
			c.xsig ^= g.sig
			g.sig = g.contribution()
			c.xsig ^= g.sig
			g.dirty = false
		}
		c.dirty = c.dirty[:0]
	}
	return c.xsig
}

// flushEventLocked closes the current event: the holder's buffered
// accesses are appended to the trace. Every call site runs on the
// holder's own goroutine (Yield, the park/exit hooks, and the abort all
// execute on the thread itself), so reading g.acc here never races the
// owner-side appends.
func (c *Controller) flushEventLocked() {
	if c.holder < 0 {
		return
	}
	g := c.gates[c.holder]
	if len(g.acc) > 0 {
		c.trace.Append(g.acc)
		g.acc = g.acc[:0]
	}
}

// chooseLocked asks the scheduler to pick among the enabled threads
// (which must include cur when cur yielded rather than parked). Invalid
// picks fall back to the lowest enabled id so a buggy scheduler cannot
// wedge the run.
func (c *Controller) chooseLocked(cur ThreadID) ThreadID {
	if c.trace != nil {
		c.flushEventLocked()
	}
	enabled := c.enabledLocked()
	if len(enabled) == 0 {
		c.holder = -1
		return -1
	}
	ch := Choice{Enabled: enabled, Cur: cur, Seq: c.seq}
	branch := -1
	if len(enabled) > 1 {
		// The signature only matters where a schedule can branch; the
		// singleton fast path (one decision per executed statement in
		// mostly-sequential phases) skips the hash entirely.
		ch.Sig = c.sigLocked()
		branch = c.branchN
		c.branchN++
	}
	c.seq++
	id := c.sched.Next(ch)
	valid := false
	for _, e := range enabled {
		if e == id {
			valid = true
			break
		}
	}
	if !valid {
		id = enabled[0]
	}
	c.holder = id
	if c.trace != nil {
		c.trace.Open(int(id), branch)
	}
	return id
}

func (c *Controller) grantLocked(id ThreadID) {
	if id < 0 {
		return
	}
	c.gates[id].grant <- struct{}{}
}

// pickLocked chooses and grants the next thread after the previous
// holder stopped being runnable (cur == -1) or at run start.
func (c *Controller) pickLocked(cur ThreadID) {
	next := c.chooseLocked(cur)
	if next >= 0 {
		c.grantLocked(next)
	}
}

//
// Monitor hook implementation. All four Locked-suffixed semantics hold:
// the monitor calls these with its own lock held.
//

// HolderParked records that the token holder blocked on w and hands the
// token to the scheduler's next pick.
func (c *Controller) HolderParked(w interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.isOff || c.holder < 0 {
		return
	}
	g := c.gates[c.holder]
	g.state = gateParked
	c.readyRemoveLocked(g.id)
	c.markDirtyLocked(g)
	c.owner[w] = g
	c.pickLocked(-1)
}

// WaiterWoken marks w's thread runnable again. The waker keeps the
// token; the woken thread re-acquires it in Resume.
func (c *Controller) WaiterWoken(w interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.owner[w]
	if g == nil || c.isOff {
		return
	}
	g.state = gateReady
	c.readyAddLocked(g.id)
	c.markDirtyLocked(g)
}

// Resume blocks the woken thread (just returned from its monitor wait)
// until the scheduler grants it the token again. Called without locks.
func (c *Controller) Resume(w interface{}) {
	c.mu.Lock()
	g := c.owner[w]
	delete(c.owner, w)
	off := c.isOff
	c.mu.Unlock()
	if g == nil || off {
		return
	}
	g.await()
}

// HolderExited records that the token holder's goroutine is done (its
// last monitor interaction) and schedules the next thread.
func (c *Controller) HolderExited() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.isOff || c.holder < 0 {
		return
	}
	g := c.gates[c.holder]
	g.state = gateDone
	c.readyRemoveLocked(g.id)
	c.markDirtyLocked(g)
	c.pickLocked(-1)
}

// ReleaseAll switches to free-running mode: the run aborted, every
// parked-on-the-token goroutine is released and all future scheduling
// calls become no-ops, so abort unwinding never waits on the scheduler.
func (c *Controller) ReleaseAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.isOff {
		return
	}
	if c.trace != nil {
		// The aborting thread is the holder (only the token holder runs)
		// and this call is on its goroutine, so its final accesses — e.g.
		// the MPI call that completed a deadlock — flush safely here.
		// Post-abort straggler accesses stay in their gate buffers and
		// are dropped at recycle.
		c.flushEventLocked()
	}
	c.isOff = true
	close(c.released)
}

//
// Scheduler implementations.
//

// RoundRobin rotates the token through the enabled threads in id order —
// the serialized analogue of the interpreter's historical deterministic
// schedule, and the reference the conformance suite pins against the
// golden files.
type RoundRobin struct {
	last ThreadID
}

// NewRoundRobin returns a fresh round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Next picks the smallest enabled id strictly greater than the previous
// pick, wrapping around.
func (s *RoundRobin) Next(c Choice) ThreadID {
	pick := c.Enabled[0]
	for _, id := range c.Enabled {
		if id > s.last {
			pick = id
			break
		}
	}
	s.last = pick
	return pick
}

// Random picks uniformly among the enabled threads with a seeded PRNG;
// the same seed reproduces the same schedule.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) *Random { return &Random{rng: rand.New(rand.NewSource(seed))} }

// Next picks uniformly among the enabled threads.
func (s *Random) Next(c Choice) ThreadID {
	return c.Enabled[s.rng.Intn(len(c.Enabled))]
}

// PCT is a probabilistic-concurrency-testing scheduler (Burckhardt et
// al.): every thread gets a random priority on first sight, the highest
// priority enabled thread runs, and at depth-1 randomly chosen decision
// points the running thread's priority drops below everyone else's. With
// depth d it finds any bug of preemption depth d with probability ≥
// 1/(n·k^(d-1)).
type PCT struct {
	rng     *rand.Rand
	depth   int
	horizon int64

	prio    map[ThreadID]int
	nextLow int
	changes map[int64]bool
}

// NewPCT returns a PCT scheduler with the given seed, priority-change
// depth (minimum 1) and decision horizon (the k in the probability
// bound; decision points beyond it never host a priority change).
func NewPCT(seed int64, depth int, horizon int64) *PCT {
	if depth < 1 {
		depth = 1
	}
	if horizon < 1 {
		horizon = 4096
	}
	rng := rand.New(rand.NewSource(seed))
	changes := make(map[int64]bool)
	for i := 0; i < depth-1; i++ {
		changes[rng.Int63n(horizon)] = true
	}
	return &PCT{rng: rng, depth: depth, horizon: horizon, prio: make(map[ThreadID]int), changes: changes}
}

// Next runs the highest-priority enabled thread, demoting the current
// one at the sampled change points.
func (s *PCT) Next(c Choice) ThreadID {
	for _, id := range c.Enabled {
		if _, ok := s.prio[id]; !ok {
			// Fresh threads draw a priority above all previous ones so
			// newly forked workers preempt (runs are short; the classic
			// formulation is equivalent up to the initial permutation).
			s.prio[id] = len(s.prio)*2 + s.rng.Intn(2)
		}
	}
	if s.changes[c.Seq] && c.Cur >= 0 {
		s.nextLow--
		s.prio[c.Cur] = s.nextLow
	}
	best := c.Enabled[0]
	for _, id := range c.Enabled[1:] {
		if s.prio[id] > s.prio[best] {
			best = id
		}
	}
	return best
}

// Replay follows a recorded branch-point trace: wherever more than one
// thread is enabled it takes the recorded pick, and past the end of the
// trace (or if the recorded pick is not enabled — a divergence) it falls
// back to the lowest enabled id. A run is a deterministic function of
// its branch decisions, so replaying a trace reproduces the run exactly.
type Replay struct {
	Trace []ThreadID

	pos      int
	diverged bool
}

// Next follows the trace at branch points.
func (s *Replay) Next(c Choice) ThreadID {
	if len(c.Enabled) == 1 {
		return c.Enabled[0]
	}
	pick := c.Enabled[0]
	if s.pos < len(s.Trace) {
		rec := s.Trace[s.pos]
		found := false
		for _, id := range c.Enabled {
			if id == rec {
				found = true
				break
			}
		}
		if found {
			pick = rec
		} else {
			s.diverged = true
		}
	}
	s.pos++
	return pick
}

// Diverged reports whether the replay failed to reproduce the recorded
// schedule: either the trace named a thread that was not enabled at some
// branch point, or (checked after the run) the run had fewer branch
// points than the trace has entries — both mean the program or its
// configuration differ from the recording.
func (s *Replay) Diverged() bool { return s.diverged || s.pos < len(s.Trace) }

// Branch is one observed decision point where the schedule genuinely
// branched (more than one thread enabled).
type Branch struct {
	// Sig is the positional state signature at the decision.
	Sig uint64
	// Enabled is the sorted runnable set.
	Enabled []ThreadID
	// Chosen is the thread the recorder picked.
	Chosen ThreadID
}

// Recorder drives a DFS exploration run: it follows Prefix at branch
// points, then defaults to the lowest enabled id, and records every
// branch point it passes so the exploration engine can enumerate the
// untaken alternatives.
type Recorder struct {
	Prefix []ThreadID

	Branches []Branch
	diverged bool
	// enabledBuf backs the Branch.Enabled copies: one growing buffer
	// per run instead of one allocation per branch point. Earlier
	// branches keep pointing into superseded backing arrays after a
	// growth — they are never written again, so the aliasing is safe.
	enabledBuf []ThreadID
}

// Reset rearms the recorder for a new run following prefix, keeping its
// branch and enabled-set buffers so one recorder serves a whole
// exploration worker without reallocating.
func (s *Recorder) Reset(prefix []ThreadID) {
	s.Prefix = prefix
	s.Branches = s.Branches[:0]
	s.enabledBuf = s.enabledBuf[:0]
	s.diverged = false
}

// Next follows the prefix, records the branch, and defaults to the
// lowest enabled thread beyond the prefix.
func (s *Recorder) Next(c Choice) ThreadID {
	if len(c.Enabled) == 1 {
		return c.Enabled[0]
	}
	pos := len(s.Branches)
	pick := c.Enabled[0]
	if pos < len(s.Prefix) {
		rec := s.Prefix[pos]
		found := false
		for _, id := range c.Enabled {
			if id == rec {
				found = true
				break
			}
		}
		if found {
			pick = rec
		} else {
			s.diverged = true
		}
	}
	off := len(s.enabledBuf)
	s.enabledBuf = append(s.enabledBuf, c.Enabled...)
	s.Branches = append(s.Branches, Branch{
		Sig:     c.Sig,
		Enabled: s.enabledBuf[off:len(s.enabledBuf):len(s.enabledBuf)],
		Chosen:  pick,
	})
	return pick
}

// Diverged reports whether the prefix named a thread that was not
// enabled when its branch point was reached.
func (s *Recorder) Diverged() bool { return s.diverged }

// Trace returns the chosen thread at every branch point passed so far —
// the replay token payload of this run.
func (s *Recorder) Trace() []ThreadID {
	out := make([]ThreadID, len(s.Branches))
	for i, b := range s.Branches {
		out[i] = b.Chosen
	}
	return out
}

// DPORRecorder is a Recorder that additionally makes the controller
// record the run's event trace (it implements TraceSource): each
// scheduling decision becomes one monitor.Event carrying the object
// accesses of the chosen thread's step. The exploration engine analyzes
// the trace after the run (monitor.Analysis) and asks Candidates which
// reversals dynamic partial-order reduction requires.
type DPORRecorder struct {
	Recorder
	Events monitor.EventTrace
}

// EventTrace implements TraceSource.
func (s *DPORRecorder) EventTrace() *monitor.EventTrace { return &s.Events }

// Reset rearms the recorder and its event trace for a new run.
func (s *DPORRecorder) Reset(prefix []ThreadID) {
	s.Recorder.Reset(prefix)
	s.Events.Reset()
}

// Candidates answers the DPOR backtracking question for one race pair:
// which threads must be tried instead of the chosen one at the decision
// that started race event A, so that the reversal (B's side first) is
// reached. It combines the decision's enabled set with the per-thread
// next-access summaries the trace provides (each enabled thread's first
// recorded event after A) following the classic dynamic partial-order
// reduction rule:
//
//   - if B's thread p was enabled at the decision, {p} suffices;
//   - otherwise any enabled thread whose next step is in the causal past
//     of B reaches the reversal (one suffices; if the chosen thread
//     itself qualifies, the requirement is already met and nothing new
//     is needed);
//   - if no summary qualifies, every enabled alternate must be tried.
//
// The result appends into buf (reused by callers); an empty result means
// the decision already satisfies the race's backtracking requirement. A
// race whose decision was forced (Branch < 0) has no alternatives and
// always returns empty.
func (s *DPORRecorder) Candidates(an *monitor.Analysis, rc monitor.Race, buf []ThreadID) []ThreadID {
	out := buf[:0]
	_, d := s.Events.At(rc.A)
	if d < 0 || d >= len(s.Branches) {
		return out
	}
	br := &s.Branches[d]
	bt, _ := s.Events.At(rc.B)
	p := ThreadID(bt)
	for _, q := range br.Enabled {
		if q == p {
			if p == br.Chosen {
				return out
			}
			return append(out, p)
		}
	}
	// p was not enabled (blocked, or not yet forked). Check the chosen
	// thread's summary first: if its next step is already in B's causal
	// past, the explored branch covers the requirement.
	if k := an.NextEventOf(int(br.Chosen), rc.A); k >= 0 && k <= rc.B && an.HappensBefore(k, rc.B, &s.Events) {
		return out
	}
	for _, q := range br.Enabled {
		if q == br.Chosen {
			continue
		}
		if k := an.NextEventOf(int(q), rc.A); k >= 0 && k <= rc.B && an.HappensBefore(k, rc.B, &s.Events) {
			return append(out, q) // one element of the set suffices
		}
	}
	for _, q := range br.Enabled {
		if q != br.Chosen {
			out = append(out, q)
		}
	}
	return out
}

//
// Replay tokens: the printable, replayable name of a schedule.
//

// FormatTrace renders a branch trace as a replay token ("trace:0.2.1").
func FormatTrace(trace []ThreadID) string {
	parts := make([]string, len(trace))
	for i, id := range trace {
		parts[i] = strconv.Itoa(int(id))
	}
	return "trace:" + strings.Join(parts, ".")
}

// RandomToken renders the replay token of a seeded random schedule.
func RandomToken(seed int64) string { return fmt.Sprintf("rand:%d", seed) }

// PCTToken renders the replay token of a PCT schedule.
func PCTToken(seed int64, depth int) string { return fmt.Sprintf("pct:%d:%d", seed, depth) }

// RoundRobinToken is the replay token of the deterministic round-robin
// schedule.
const RoundRobinToken = "rr"

// Parse limits. Replay tokens arrive over trust boundaries (the
// parcoachd HTTP API forwards client-supplied tokens straight here), so
// Parse enforces hard caps instead of letting a hostile token allocate
// or loop proportionally to its content: tokens longer than
// MaxTokenLen are rejected before any splitting, trace ids must lie in
// [0, MaxTraceID] (thread ids are creation-ordered and a run can never
// have more threads than it has scheduling decisions), and PCT depths
// must lie in [1, MaxPCTDepth].
const (
	// MaxTokenLen bounds the accepted token length (1 MiB): a trace
	// token of that size already names a schedule with ~500k branch
	// points, far beyond anything the exploration engine emits.
	MaxTokenLen = 1 << 20
	// MaxTraceID bounds a single thread id inside a trace token.
	MaxTraceID = 1 << 20
	// MaxPCTDepth bounds the pct token's priority-change depth.
	MaxPCTDepth = 1 << 10
)

// quote truncates hostile-length tokens for error messages, so the
// error for a multi-MB token is not itself multi-MB.
func quote(token string) string {
	const max = 64
	if len(token) > max {
		return fmt.Sprintf("%q... (%d bytes)", token[:max], len(token))
	}
	return fmt.Sprintf("%q", token)
}

// numErr names a strconv failure without echoing the offending field:
// strconv errors quote the full input, which for a hostile token would
// make the error message itself unbounded.
func numErr(err error) string {
	if errors.Is(err, strconv.ErrRange) {
		return "integer out of range"
	}
	return "not an integer"
}

// Parse turns a replay token back into the scheduler that produced the
// run: "rr", "rand:<seed>", "pct:<seed>:<depth>", or "trace:0.2.1".
// Hostile input — oversized tokens, out-of-range ids, malformed numbers
// — is rejected with an error, never a panic or unbounded allocation.
func Parse(token string) (Scheduler, error) {
	if len(token) > MaxTokenLen {
		return nil, fmt.Errorf("sched: token too long (%d bytes, max %d)", len(token), MaxTokenLen)
	}
	switch {
	case token == RoundRobinToken:
		return NewRoundRobin(), nil
	case strings.HasPrefix(token, "rand:"):
		seed, err := strconv.ParseInt(token[len("rand:"):], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sched: bad random token %s: %s", quote(token), numErr(err))
		}
		return NewRandom(seed), nil
	case strings.HasPrefix(token, "pct:"):
		parts := strings.Split(token[len("pct:"):], ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("sched: bad pct token %s (want pct:<seed>:<depth>)", quote(token))
		}
		seed, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sched: bad pct seed in %s: %s", quote(token), numErr(err))
		}
		depth, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("sched: bad pct depth in %s: %s", quote(token), numErr(err))
		}
		if depth < 1 || depth > MaxPCTDepth {
			return nil, fmt.Errorf("sched: pct depth %d out of range [1, %d] in %s", depth, MaxPCTDepth, quote(token))
		}
		return NewPCT(seed, depth, 0), nil
	case strings.HasPrefix(token, "trace:"):
		body := token[len("trace:"):]
		var trace []ThreadID
		if body != "" {
			for _, part := range strings.Split(body, ".") {
				id, err := strconv.Atoi(part)
				if err != nil {
					return nil, fmt.Errorf("sched: bad trace token %s: %s", quote(token), numErr(err))
				}
				if id < 0 || id > MaxTraceID {
					return nil, fmt.Errorf("sched: trace id %d out of range [0, %d] in %s", id, MaxTraceID, quote(token))
				}
				trace = append(trace, ThreadID(id))
			}
		}
		return &Replay{Trace: trace}, nil
	}
	return nil, fmt.Errorf("sched: unknown schedule token %s", quote(token))
}
