package sched

import (
	"strings"
	"testing"
)

// TestParseHostileTokens: replay tokens cross a trust boundary (the
// parcoachd HTTP API hands client bytes straight to Parse), so hostile
// shapes must come back as errors — bounded ones — never panics,
// unbounded allocation, or silently-wrong schedulers.
func TestParseHostileTokens(t *testing.T) {
	huge := "trace:" + strings.Repeat("0.", MaxTokenLen)
	cases := []struct {
		name    string
		token   string
		ok      bool
		errWant string // substring of the error when !ok
	}{
		{"empty token", "", false, "unknown schedule token"},
		{"empty trace", "trace:", true, ""}, // replays the default schedule
		{"single id", "trace:0", true, ""},
		{"negative id", "trace:-1", false, "out of range"},
		{"negative id deep", "trace:0.1.-3", false, "out of range"},
		{"id over cap", "trace:2097152", false, "out of range"},
		{"id at cap", "trace:1048576", true, ""},
		{"overflowing id", "trace:99999999999999999999999999", false, "bad trace token"},
		{"empty part", "trace:1..2", false, "bad trace token"},
		{"trailing dot", "trace:1.2.", false, "bad trace token"},
		{"non-numeric", "trace:1.x.2", false, "bad trace token"},
		{"multi-MB token", huge, false, "token too long"},
		{"rand ok", "rand:42", true, ""},
		{"rand negative seed", "rand:-7", true, ""}, // seeds may be negative
		{"rand garbage", "rand:0x10", false, "bad random token"},
		{"rand overflow", "rand:92233720368547758080", false, "bad random token"},
		{"pct ok", "pct:1:3", true, ""},
		{"pct missing depth", "pct:1", false, "bad pct token"},
		{"pct extra field", "pct:1:2:3", false, "bad pct token"},
		{"pct zero depth", "pct:1:0", false, "out of range"},
		{"pct negative depth", "pct:1:-4", false, "out of range"},
		{"pct huge depth", "pct:1:1000000", false, "out of range"},
		{"rr", "rr", true, ""},
		{"rr with suffix", "rrx", false, "unknown schedule token"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse(tc.token)
			if tc.ok {
				if err != nil {
					t.Fatalf("Parse(%.40q) = %v, want ok", tc.token, err)
				}
				if s == nil {
					t.Fatalf("Parse(%.40q) returned nil scheduler without error", tc.token)
				}
				return
			}
			if err == nil {
				t.Fatalf("Parse(%.40q) accepted hostile token", tc.token)
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Fatalf("Parse(%.40q) error %q, want substring %q", tc.token, err, tc.errWant)
			}
			if len(err.Error()) > 256 {
				t.Fatalf("error message echoes hostile token: %d bytes", len(err.Error()))
			}
		})
	}
}

// FuzzSchedParse: Parse must never panic, must bound its error text even
// for multi-MB inputs, and accepted trace tokens must round-trip through
// FormatTrace.
func FuzzSchedParse(f *testing.F) {
	for _, seed := range []string{
		"rr", "rand:42", "pct:1:3", "trace:", "trace:0.2.1",
		"trace:-1", "trace:1..2", "pct:1:0", "rand:0x10",
		"trace:99999999999999999999999999", "trace:" + strings.Repeat("7.", 64),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, token string) {
		s, err := Parse(token)
		if err != nil {
			if len(err.Error()) > 512 {
				t.Fatalf("unbounded error text: %d bytes", len(err.Error()))
			}
			return
		}
		if s == nil {
			t.Fatalf("Parse(%.60q): nil scheduler without error", token)
		}
		if r, ok := s.(*Replay); ok {
			re, err := Parse(FormatTrace(r.Trace))
			if err != nil {
				t.Fatalf("accepted trace failed to round-trip: %v", err)
			}
			r2 := re.(*Replay)
			if len(r2.Trace) != len(r.Trace) {
				t.Fatalf("round-trip length %d != %d", len(r2.Trace), len(r.Trace))
			}
			for i := range r.Trace {
				if r.Trace[i] != r2.Trace[i] {
					t.Fatalf("round-trip mismatch at %d", i)
				}
			}
		}
	})
}
