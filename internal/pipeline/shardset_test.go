package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedSetTryAdd: exactly one concurrent claimant wins each key,
// and the final cardinality is exact.
func TestShardedSetTryAdd(t *testing.T) {
	s := NewShardedSet()
	const keys = 1000
	const claimants = 8
	wins := make([]int64, keys)
	var wg sync.WaitGroup
	for c := 0; c < claimants; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				// Spread keys over the whole 64-bit space so every shard
				// participates.
				key := uint64(k) * 0x9e3779b97f4a7c15
				if s.TryAdd(key) {
					atomic.AddInt64(&wins[k], 1)
				}
			}
		}()
	}
	wg.Wait()
	for k, w := range wins {
		if w != 1 {
			t.Fatalf("key %d claimed %d times, want exactly 1", k, w)
		}
	}
	if got := s.Len(); got != keys {
		t.Fatalf("Len() = %d, want %d", got, keys)
	}
	if s.TryAdd(0x9e3779b97f4a7c15) {
		t.Fatal("re-adding an existing key reported absent")
	}
}

// TestSpawnRunsAndReuses: Spawn executes every task exactly once (with
// the usual happens-before edge), and parked executors are reused
// rather than respawned.
func TestSpawnRunsAndReuses(t *testing.T) {
	const tasks = 64
	var done sync.WaitGroup
	var ran int64
	done.Add(tasks)
	for i := 0; i < tasks; i++ {
		Spawn(func() {
			atomic.AddInt64(&ran, 1)
			done.Done()
		})
	}
	done.Wait()
	if ran != tasks {
		t.Fatalf("ran %d tasks, want %d", ran, tasks)
	}
	// Sequential spawns after the burst must find idle executors. The
	// pool is global and other tests may race it, so only assert it is
	// non-empty between sequential uses — the strong property (LIFO
	// reuse) is visible in the allocation pins of internal/interp.
	for i := 0; i < 8; i++ {
		var wg sync.WaitGroup
		wg.Add(1)
		Spawn(func() { wg.Done() })
		wg.Wait()
	}
	spawnMu.Lock()
	idle := len(spawnIdle)
	spawnMu.Unlock()
	if idle == 0 {
		t.Fatal("no idle executors after sequential spawns — pooling is not happening")
	}
}
