// Package pipeline provides the concurrent pass-manager machinery the
// compile path runs on: a work-stealing worker pool sized to the machine,
// call-graph SCC condensation for interprocedural scheduling, and a pass
// manager in which every pass declares the per-function artifacts it
// produces and consumes (folded AST, CFG, dominators, parallelism words,
// analysis summaries, instrumented bodies, IR, allocations).
//
// The package is deliberately domain-free: it knows nothing about MPI or
// MiniHybrid. The concrete passes are registered by package parcoach,
// which closes over internal/core, internal/instrument and
// internal/passes; internal/core uses only the Pool and SCC pieces, so no
// import cycle arises.
package pipeline

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool shared across compilations. Map fans a
// batch of independent work items across the pool; the calling goroutine
// always participates in the work, so nested Map calls (a batch compile
// whose per-file compiles each fan per-function work out again) can never
// deadlock: at worst a nested call finds no free workers and degrades to
// running inline on its caller.
type Pool struct {
	workers int
	// sem bounds the number of borrowed helper goroutines across all
	// concurrent Map calls (callers run for free on their own goroutine).
	sem chan struct{}
}

// NewPool returns a pool of the given width. Zero or negative means
// runtime.GOMAXPROCS(0); one means fully serial (Map runs inline, which
// is the deterministic reference the batch benchmarks compare against).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.sem = make(chan struct{}, workers-1)
	}
	return p
}

// Workers returns the configured pool width.
func (p *Pool) Workers() int { return p.workers }

// Serial reports whether the pool runs everything inline.
func (p *Pool) Serial() bool { return p.workers <= 1 }

// Map runs fn(0) … fn(n-1) across the pool and returns when all calls
// have finished. The caller's goroutine works too; helper goroutines are
// recruited only while free slots exist, so total concurrency stays
// bounded near the pool width even under nesting.
//
// A panic in any item is captured and re-raised on the caller's
// goroutine once the batch has drained, so Map panics the same way
// regardless of which worker hit it — a recover() around a pooled
// compile behaves exactly like one around a serial compile.
func (p *Pool) Map(n int, fn func(i int)) {
	switch {
	case n <= 0:
		return
	case n == 1 || p.Serial():
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var panicOnce sync.Once
	var panicked any
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicked = r })
			}
		}()
		for {
			i := int(atomic.AddInt64(&next, 1))
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
recruit:
	for h := 0; h < p.workers-1 && h < n-1; h++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-p.sem; wg.Done() }()
				work()
			}()
		default:
			break recruit // pool exhausted; caller still progresses
		}
	}
	work()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// MapCtx is Map with cooperative cancellation: once ctx is done, items
// not yet started are skipped (items already running finish — the
// per-run abort is the session's job, not the pool's). Returns ctx.Err()
// when the batch was cut short, nil when every item ran. Callers that
// need to distinguish skipped items must mark completion themselves;
// the pool does not report which indices ran.
//
// Panic semantics are Map's: a panicking item is re-raised on the
// caller after the drain. Quarantine, where wanted, wraps fn.
func (p *Pool) MapCtx(ctx context.Context, n int, fn func(i int)) error {
	if ctx == nil || ctx.Done() == nil {
		p.Map(n, fn)
		return nil
	}
	done := ctx.Done()
	p.Map(n, func(i int) {
		select {
		case <-done:
		default:
			fn(i)
		}
	})
	return ctx.Err()
}
