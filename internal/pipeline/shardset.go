package pipeline

import "sync"

// shardCount is a power of two so shard selection is a mask. 64 shards
// keep lock contention negligible for pools up to the widths NewPool
// allows while costing a few kilobytes when idle.
const shardCount = 64

// ShardedSet is a concurrency-safe set of uint64 keys, sharded by key
// bits so concurrent workers rarely contend on the same lock. It backs
// the exploration engine's seen-state deduplication (every DFS worker
// tests-and-inserts candidate states while its peers do the same), but
// like the rest of this package it is domain-free: any fan-out that
// needs a "first writer wins" membership test over hashed keys can use
// it.
//
// Keys are expected to already be hashes (uniformly distributed); the
// set applies no further mixing.
type ShardedSet struct {
	shards [shardCount]setShard
}

type setShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
	_  [40]byte // pad to a cache line so neighboring shard locks don't false-share
}

// NewShardedSet returns an empty set.
func NewShardedSet() *ShardedSet {
	s := &ShardedSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

// TryAdd inserts key and reports whether it was absent — true means the
// caller is the first to claim it. Safe for concurrent use.
func (s *ShardedSet) TryAdd(key uint64) bool {
	// High bits pick the shard; the map re-hashes the full key anyway.
	sh := &s.shards[key>>(64-6)]
	sh.mu.Lock()
	if _, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.m[key] = struct{}{}
	sh.mu.Unlock()
	return true
}

// Len returns the current number of keys (a snapshot; concurrent adds
// may be missed).
func (s *ShardedSet) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
