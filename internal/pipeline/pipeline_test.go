package pipeline

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolMapRunsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		const n = 1000
		counts := make([]int32, n)
		p.Map(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestPoolDefaultsAndSerial(t *testing.T) {
	if NewPool(0).Workers() <= 0 {
		t.Error("default pool must have positive width")
	}
	if !NewPool(1).Serial() || NewPool(4).Serial() {
		t.Error("Serial() wrong")
	}
	// Serial pool preserves order.
	var order []int
	NewPool(1).Map(5, func(i int) { order = append(order, i) })
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("serial order wrong: %v", order)
	}
}

// Nested Map calls must not deadlock even when the outer fan-out saturates
// the pool: callers always participate in their own batch.
func TestPoolNestedMapNoDeadlock(t *testing.T) {
	p := NewPool(4)
	var total int64
	p.Map(16, func(i int) {
		p.Map(16, func(j int) {
			atomic.AddInt64(&total, 1)
		})
	})
	if total != 16*16 {
		t.Fatalf("nested map ran %d of %d items", total, 16*16)
	}
}

// A panic on a recruited helper must surface on the caller's goroutine —
// recover() around Map works identically for any pool width.
func TestPoolMapPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var got any
		func() {
			defer func() { got = recover() }()
			p.Map(64, func(i int) {
				if i == 17 {
					panic("boom-17")
				}
			})
		}()
		if got != "boom-17" {
			t.Errorf("workers=%d: recovered %v, want boom-17", workers, got)
		}
	}
}

func TestSCCsOrderAndGrouping(t *testing.T) {
	// main -> a -> b <-> c, a -> d, d -> d (self loop).
	adj := map[string][]string{
		"main": {"a"},
		"a":    {"b", "d"},
		"b":    {"c"},
		"c":    {"b"},
		"d":    {"d"},
	}
	order := []string{"main", "a", "b", "c", "d"}
	comps := SCCs(adj, order)
	pos := make(map[string]int)
	for i, c := range comps {
		sort.Strings(c)
		pos[c[0]] = i
	}
	if len(comps) != 4 {
		t.Fatalf("want 4 components, got %v", comps)
	}
	// Callees before callers.
	if !(pos["b"] < pos["a"] && pos["d"] < pos["a"] && pos["a"] < pos["main"]) {
		t.Errorf("components not in reverse topological order: %v", comps)
	}
	for _, c := range comps {
		if c[0] == "b" && !reflect.DeepEqual(c, []string{"b", "c"}) {
			t.Errorf("b and c must form one SCC: %v", c)
		}
	}

	waves := Waves(adj, comps)
	level := make(map[string]int)
	for l, wave := range waves {
		for _, comp := range wave {
			for _, v := range comp {
				level[v] = l
			}
		}
	}
	if !(level["b"] < level["a"] && level["d"] < level["a"] && level["a"] < level["main"]) {
		t.Errorf("waves out of order: %v", waves)
	}
}

func TestSCCsIgnoresUnknownVertices(t *testing.T) {
	adj := map[string][]string{"f": {"rank", "g"}, "g": nil}
	comps := SCCs(adj, []string{"f", "g"})
	if len(comps) != 2 {
		t.Fatalf("want 2 components, got %v", comps)
	}
}

func TestSCCsDeterministic(t *testing.T) {
	adj := map[string][]string{}
	var order []string
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("f%02d", i)
		order = append(order, name)
		if i > 0 {
			adj[name] = []string{fmt.Sprintf("f%02d", i-1)}
		} else {
			adj[name] = nil
		}
	}
	first := SCCs(adj, order)
	for rep := 0; rep < 10; rep++ {
		if !reflect.DeepEqual(SCCs(adj, order), first) {
			t.Fatal("SCC order varies between runs")
		}
	}
}

func TestManagerValidatesWiring(t *testing.T) {
	m := New(NewPool(1))
	m.Add(Pass{Name: "front", Produces: []Artifact{ArtAST}, Run: func() error { return nil }})
	mustPanic := func(name string, p Pass) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Add must panic", name)
			}
		}()
		m.Add(p)
	}
	mustPanic("missing producer", Pass{
		Name: "bad", Consumes: []Artifact{ArtIR}, Run: func() error { return nil }})
	mustPanic("duplicate producer", Pass{
		Name: "dup", Produces: []Artifact{ArtAST}, Run: func() error { return nil }})
	mustPanic("both run modes", Pass{
		Name: "both", Run: func() error { return nil }, RunItem: func(int) error { return nil },
		Items: func() int { return 0 }})
	mustPanic("no items", Pass{Name: "noitems", RunItem: func(int) error { return nil }})
}

func TestManagerRunsPassesInOrderWithTimings(t *testing.T) {
	m := New(NewPool(4))
	var mu sync.Mutex
	var trace []string
	note := func(s string) {
		mu.Lock()
		trace = append(trace, s)
		mu.Unlock()
	}
	m.Add(Pass{Name: "a", Produces: []Artifact{ArtAST}, Run: func() error { note("a"); return nil }})
	m.Add(Pass{
		Name: "b", Consumes: []Artifact{ArtAST}, Produces: []Artifact{ArtCFG},
		Items:   func() int { return 8 },
		RunItem: func(i int) error { note("b"); return nil },
	})
	m.Add(Pass{Name: "c", Consumes: []Artifact{ArtCFG}, Run: func() error { note("c"); return nil }})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 10 || trace[0] != "a" || trace[len(trace)-1] != "c" {
		t.Errorf("trace wrong: %v", trace)
	}
	timings := m.Timings()
	if len(timings) != 3 || timings[0].Name != "a" || timings[1].Name != "b" || timings[2].Name != "c" {
		t.Errorf("timings wrong: %+v", timings)
	}
}

func TestManagerWavesRunInOrder(t *testing.T) {
	m := New(NewPool(4))
	var mu sync.Mutex
	var got []int
	m.Add(Pass{
		Name:  "waves",
		Waves: func() [][]int { return [][]int{{0, 1, 2}, {3}, {4, 5}} },
		RunItem: func(i int) error {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			return nil
		},
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("ran %d items", len(got))
	}
	idx := make(map[int]int)
	for pos, v := range got {
		idx[v] = pos
	}
	// Wave barriers: everything in wave 0 before item 3, item 3 before wave 2.
	for _, v := range []int{0, 1, 2} {
		if idx[v] > idx[3] {
			t.Errorf("item %d ran after later wave: %v", v, got)
		}
	}
	for _, v := range []int{4, 5} {
		if idx[v] < idx[3] {
			t.Errorf("item %d ran before earlier wave: %v", v, got)
		}
	}
}

func TestManagerReportsDeterministicError(t *testing.T) {
	m := New(NewPool(8))
	boom := errors.New("boom")
	m.Add(Pass{
		Name:  "fail",
		Items: func() int { return 64 },
		RunItem: func(i int) error {
			if i%10 == 3 {
				return fmt.Errorf("item %d: %w", i, boom)
			}
			return nil
		},
	})
	for rep := 0; rep < 5; rep++ {
		err := m.Run()
		if err == nil || err.Error() != "item 3: boom" {
			t.Fatalf("want lowest-index error, got %v", err)
		}
	}
}
