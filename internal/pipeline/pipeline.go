package pipeline

import (
	"context"
	"fmt"
	"time"
)

// Artifact names a per-function product flowing between passes. The pass
// manager uses these declarations to validate the pipeline wiring: a pass
// may only consume artifacts some earlier pass produces.
type Artifact string

// The artifacts of the MiniHybrid compile path.
const (
	ArtAST          Artifact = "ast"          // parsed, semantically checked tree
	ArtFoldedAST    Artifact = "folded-ast"   // constant-folded clone
	ArtCFG          Artifact = "cfg"          // per-function control-flow graph
	ArtDominators   Artifact = "dominators"   // per-function dominator tree
	ArtCallGraph    Artifact = "callgraph"    // call-graph SCC condensation
	ArtPWords       Artifact = "pwords"       // per-function parallelism words
	ArtTaint        Artifact = "taint"        // interprocedural rank-taint sets
	ArtContexts     Artifact = "contexts"     // per-function entry threading context
	ArtSummary      Artifact = "summary"      // interprocedural collective summaries
	ArtAnalysis     Artifact = "analysis"     // phase 1-3 findings + diagnostics
	ArtInstrumented Artifact = "instrumented" // verification-instrumented bodies
	ArtIR           Artifact = "ir"           // lowered linear IR
	ArtAllocation   Artifact = "allocation"   // register allocation
)

// Pass is one stage of the pipeline. Exactly one of Run and RunItem must
// be set:
//
//   - Run executes the whole pass on the calling goroutine (sequential
//     passes: parsing, whole-program fixpoints, stat assembly).
//   - RunItem(i) executes one unit of function-level work; the scheduler
//     fans indices 0..Items()-1 across the worker pool. When Waves is
//     also set, the scheduler instead runs the waves in order and fans
//     only the items inside one wave out concurrently — the mechanism the
//     summary pass uses to walk the call graph in SCC order.
//
// Items and Waves are functions, not values, because a pass's work list
// usually depends on artifacts produced earlier in the same run (e.g. the
// instrumenter only rewrites the functions the analysis flagged).
//
// Setup and After bracket a fan-out on the calling goroutine: Setup
// allocates the shared skeleton the items write disjoint slots of (a
// cloned program's function slice, a result array), After assembles what
// the fan produced into shared maps and aggregate stats. Both are
// included in the pass's recorded time.
type Pass struct {
	Name     string
	Produces []Artifact
	Consumes []Artifact

	Run     func() error
	RunItem func(i int) error
	Items   func() int
	// Waves returns ordered groups of item indices; nil means one flat
	// fan-out of Items() indices.
	Waves func() [][]int
	// Setup/After run sequentially before/after a RunItem fan-out.
	Setup func() error
	After func() error
}

// PassTime records where one pass's wall-clock time went.
type PassTime struct {
	Name     string
	Duration time.Duration
}

// Manager validates and executes a pipeline of passes on a shared pool.
type Manager struct {
	pool     *Pool
	passes   []Pass
	produced map[Artifact]string
	timings  []PassTime
}

// New returns a Manager executing on pool (nil means a fresh serial pool).
func New(pool *Pool) *Manager {
	if pool == nil {
		pool = NewPool(1)
	}
	return &Manager{pool: pool, produced: make(map[Artifact]string)}
}

// Pool returns the pool the manager schedules on.
func (m *Manager) Pool() *Pool { return m.pool }

// Add appends a pass, validating its declared dependencies: every
// consumed artifact must have been declared Produced by an earlier pass.
// Wiring errors are programming mistakes, so Add panics.
func (m *Manager) Add(p Pass) {
	if (p.Run == nil) == (p.RunItem == nil) {
		panic(fmt.Sprintf("pipeline: pass %q must set exactly one of Run and RunItem", p.Name))
	}
	if p.RunItem != nil && p.Items == nil && p.Waves == nil {
		panic(fmt.Sprintf("pipeline: per-function pass %q needs Items or Waves", p.Name))
	}
	if p.Run != nil && (p.Setup != nil || p.After != nil) {
		panic(fmt.Sprintf("pipeline: sequential pass %q cannot have Setup/After hooks", p.Name))
	}
	for _, a := range p.Consumes {
		if _, ok := m.produced[a]; !ok {
			panic(fmt.Sprintf("pipeline: pass %q consumes %q which no earlier pass produces", p.Name, a))
		}
	}
	for _, a := range p.Produces {
		if prev, ok := m.produced[a]; ok {
			panic(fmt.Sprintf("pipeline: pass %q re-produces %q (already produced by %q)", p.Name, a, prev))
		}
		m.produced[a] = p.Name
	}
	m.passes = append(m.passes, p)
}

// Run executes the passes in order, timing each; the first error aborts
// the pipeline. Per-function passes fan across the pool; the first error
// of a fan-out (by item order) is reported.
func (m *Manager) Run() error {
	return m.RunCtx(nil)
}

// RunCtx is Run with cooperative cancellation: the context is checked
// between passes, so a canceled compile stops at the next pass boundary
// (individual passes run to completion — they are short). The returned
// error is the context's cause, so callers can distinguish "compile
// failed" from "compile abandoned".
func (m *Manager) RunCtx(ctx context.Context) error {
	m.timings = m.timings[:0]
	for _, p := range m.passes {
		if ctx != nil {
			if err := context.Cause(ctx); err != nil {
				return err
			}
		}
		start := time.Now()
		err := m.runPass(p)
		m.timings = append(m.timings, PassTime{Name: p.Name, Duration: time.Since(start)})
		if err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) runPass(p Pass) error {
	if p.Run != nil {
		return p.Run()
	}
	if p.Setup != nil {
		if err := p.Setup(); err != nil {
			return err
		}
	}
	if p.Waves != nil {
		for _, wave := range p.Waves() {
			if err := m.fan(len(wave), func(i int) error { return p.RunItem(wave[i]) }); err != nil {
				return err
			}
		}
	} else if err := m.fan(p.Items(), p.RunItem); err != nil {
		return err
	}
	if p.After != nil {
		return p.After()
	}
	return nil
}

// fan runs fn over n items on the pool and returns the error of the
// lowest-indexed failing item (deterministic regardless of scheduling).
func (m *Manager) fan(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	errs := make([]error, n)
	m.pool.Map(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Timings returns the per-pass wall-clock times of the last Run.
func (m *Manager) Timings() []PassTime {
	out := make([]PassTime, len(m.timings))
	copy(out, m.timings)
	return out
}
