package pipeline

// SCCs computes the strongly connected components of a directed graph
// given as an adjacency map (edges to unknown vertices are ignored) and
// returns them in reverse topological order of the condensation: every
// component appears before any component that has an edge into it. For a
// call graph with edges caller→callee this means callees come first, so a
// left-to-right walk sees each function's (transitive) callees — and
// hence their interprocedural summaries — before the function itself.
//
// Keys are iterated in the order given by order (any vertices missing
// from order are appended in map order), so the result is deterministic
// when order covers the graph.
func SCCs(adj map[string][]string, order []string) [][]string {
	verts := make([]string, 0, len(adj))
	seenV := make(map[string]bool, len(adj))
	for _, v := range order {
		if _, ok := adj[v]; ok && !seenV[v] {
			seenV[v] = true
			verts = append(verts, v)
		}
	}
	for v := range adj {
		if !seenV[v] {
			verts = append(verts, v)
		}
	}

	// Tarjan's algorithm, iterative to survive deep call chains.
	index := make(map[string]int, len(verts))
	low := make(map[string]int, len(verts))
	onStack := make(map[string]bool, len(verts))
	var stack []string
	var comps [][]string
	next := 0

	type frame struct {
		v  string
		ei int
	}
	for _, root := range verts {
		if _, visited := index[root]; visited {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			edges := adj[f.v]
			advanced := false
			for f.ei < len(edges) {
				w := edges[f.ei]
				f.ei++
				if _, ok := adj[w]; !ok {
					continue // edge out of the graph (intrinsic, undefined)
				}
				if _, visited := index[w]; !visited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			if low[f.v] == index[f.v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.v] < low[parent.v] {
					low[parent.v] = low[f.v]
				}
			}
		}
	}
	return comps
}

// Waves groups components (as returned by SCCs, reverse topological
// order) into dependency levels: every component in wave k only has edges
// into waves < k. Components within one wave are mutually independent, so
// a scheduler may fan them across workers while still honoring SCC order
// wave by wave — this is how the interprocedural summary pass guarantees
// callee summaries exist before a caller is summarized.
func Waves(adj map[string][]string, comps [][]string) [][][]string {
	compOf := make(map[string]int, len(adj))
	for i, c := range comps {
		for _, v := range c {
			compOf[v] = i
		}
	}
	level := make([]int, len(comps))
	for i, c := range comps {
		// comps is in reverse topological order, so every dependency of
		// component i has an index < i and its level is already final.
		for _, v := range c {
			for _, w := range adj[v] {
				j, ok := compOf[w]
				if !ok || j == i {
					continue
				}
				if level[j]+1 > level[i] {
					level[i] = level[j] + 1
				}
			}
		}
	}
	maxLevel := -1
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	waves := make([][][]string, maxLevel+1)
	for i, c := range comps {
		waves[level[i]] = append(waves[level[i]], c)
	}
	return waves
}
