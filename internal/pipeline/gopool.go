package pipeline

import "sync"

// Spawn runs fn on a pooled executor goroutine, parking the goroutine
// for reuse when fn returns. It exists because goroutine *stacks* are
// the hidden cost of simulation-heavy workloads: the interpreter's
// recursive statement walk grows every fresh goroutine's small initial
// stack through repeated runtime.newstack/copystack cycles, and
// schedule exploration launches thousands of short-lived simulated
// threads (one per rank and team worker per run) that each pay that
// growth again. A pooled goroutine keeps its grown stack hot, so the
// second and every later simulated thread of that size runs without
// copying a single frame.
//
// The pool is unbounded but self-sizing: it holds exactly as many
// goroutines as the peak number of concurrently live fn's, idle ones
// park on a channel receive (the Go runtime shrinks long-parked stacks
// during GC, so idle memory is reclaimed), and reuse is LIFO so the
// most recently used — hottest — stack is handed out first.
//
// fn runs exactly as `go fn()` would, with no ordering guarantees
// beyond the happens-before edge from Spawn to fn's start.
func Spawn(fn func()) {
	spawnMu.Lock()
	var w *spawnWorker
	if n := len(spawnIdle); n > 0 {
		w = spawnIdle[n-1]
		spawnIdle[n-1] = nil
		spawnIdle = spawnIdle[:n-1]
	}
	spawnMu.Unlock()
	if w == nil {
		w = &spawnWorker{task: make(chan func(), 1)}
		go w.loop()
	}
	w.task <- fn
}

var (
	spawnMu   sync.Mutex
	spawnIdle []*spawnWorker
)

type spawnWorker struct {
	task chan func()
}

func (w *spawnWorker) loop() {
	for fn := range w.task {
		fn()
		spawnMu.Lock()
		spawnIdle = append(spawnIdle, w)
		spawnMu.Unlock()
	}
}
