// Package leakcheck asserts that a test leaves no goroutines behind. It
// snapshots the running goroutines at registration and diffs against a
// fresh snapshot at cleanup, retrying with backoff to let legitimately
// finishing goroutines drain first. Built on runtime.Stack only — no
// dependencies — and tolerant of the process-lifetime goroutines the
// runtime, the testing harness, and this repo's own pooled machinery
// (pipeline.Spawn workers park forever by design) keep around.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// allowlist matches goroutines that are allowed to outlive a test:
// runtime and testing infrastructure, signal handling, and the repo's
// own deliberately process-lifetime pools.
var allowlist = []string{
	"testing.(*T).Run",
	"testing.Main(",
	"testing.tRunner(",
	"testing.runTests",
	"testing.(*M).",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"signal.signal_recv",
	"signal.loop",
	"runtime.ensureSigM",
	"created by runtime",
	"interestingGoroutines",
	"os/signal.NotifyContext",
	// pipeline.Spawn's pooled workers park forever between borrows — a
	// process-lifetime free list, not a leak.
	"parcoach/internal/pipeline.(*spawnWorker)",
	"parcoach/internal/pipeline.spawnLoop",
}

func interestingGoroutines() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	gs := make(map[string]string)
next:
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		for _, allow := range allowlist {
			if strings.Contains(g, allow) {
				continue next
			}
		}
		// Key by the header line ("goroutine N [state]:") stripped of the
		// volatile state word plus the creation site, so the same goroutine
		// moving between states doesn't read as a new one.
		head, _, _ := strings.Cut(g, "\n")
		id, _, _ := strings.Cut(head, " ")
		gs[id] = g
	}
	return gs
}

// Check registers a cleanup on t that fails the test if goroutines
// started during the test are still alive at teardown. Call it first
// thing in the test (cleanups run LIFO, so it snapshots before the
// test's own setup and diffs after the test's own cleanups ran).
func Check(t testing.TB) {
	t.Helper()
	before := interestingGoroutines()
	t.Cleanup(func() {
		if t.Failed() {
			return // don't pile a leak report onto a real failure
		}
		var leaked []string
		// Legitimate goroutines may still be winding down when the test
		// body returns; retry with backoff before declaring a leak.
		deadline := time.Now().Add(2 * time.Second)
		for {
			leaked = leaked[:0]
			after := interestingGoroutines()
			for id, g := range after {
				if _, ok := before[id]; !ok {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if len(leaked) > 0 {
			t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}

// CheckMain is Check for TestMain-style use: returns an error instead of
// failing a testing.TB, for scripts and soak drivers.
func CheckMain(before map[string]string) error {
	deadline := time.Now().Add(2 * time.Second)
	for {
		var leaked []string
		after := interestingGoroutines()
		for id, g := range after {
			if _, ok := before[id]; !ok {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Snapshot captures the current goroutine set for a later CheckMain.
func Snapshot() map[string]string { return interestingGoroutines() }
