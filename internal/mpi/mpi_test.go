package mpi

import (
	"errors"
	"strings"
	"testing"

	"parcoach/internal/monitor"
)

func newWorld(t *testing.T, n int, level ThreadLevel) *World {
	t.Helper()
	w, err := NewWorld(Config{Procs: n, Level: level})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// initAll runs body with Init/Finalize bracketing on every rank.
func runAll(t *testing.T, n int, body func(p *Proc) error) error {
	t.Helper()
	w := newWorld(t, n, ThreadMultiple)
	return w.Run(func(p *Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		if err := body(p); err != nil {
			return err
		}
		return p.Finalize(1)
	})
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{Procs: 0}); err == nil {
		t.Error("0 procs must be rejected")
	}
}

func TestBarrierCompletes(t *testing.T) {
	err := runAll(t, 4, func(p *Proc) error {
		for i := 0; i < 10; i++ {
			if _, _, err := p.Collective(1, OpBarrier, RedSum, 0, 0, nil, ""); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("barriers failed: %v", err)
	}
}

func TestBcast(t *testing.T) {
	err := runAll(t, 4, func(p *Proc) error {
		contrib := int64(0)
		if p.Rank() == 2 {
			contrib = 99
		}
		v, _, err := p.Collective(1, OpBcast, RedSum, 2, contrib, nil, "")
		if err != nil {
			return err
		}
		if v != 99 {
			return errors.New("bcast value wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	err := runAll(t, 4, func(p *Proc) error {
		v, _, err := p.Collective(1, OpReduce, RedSum, 0, int64(p.Rank()+1), nil, "")
		if err != nil {
			return err
		}
		if p.Rank() == 0 && v != 10 {
			return errors.New("reduce sum wrong")
		}
		v, _, err = p.Collective(1, OpAllreduce, RedMax, 0, int64(p.Rank()), nil, "")
		if err != nil {
			return err
		}
		if v != 3 {
			return errors.New("allreduce max wrong")
		}
		v, _, err = p.Collective(1, OpAllreduce, RedProd, 0, int64(p.Rank()+1), nil, "")
		if err != nil {
			return err
		}
		if v != 24 {
			return errors.New("allreduce prod wrong")
		}
		v, _, err = p.Collective(1, OpAllreduce, RedMin, 0, int64(p.Rank()+5), nil, "")
		if err != nil {
			return err
		}
		if v != 5 {
			return errors.New("allreduce min wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	err := runAll(t, 4, func(p *Proc) error {
		v, _, err := p.Collective(1, OpScan, RedSum, 0, 1, nil, "")
		if err != nil {
			return err
		}
		if v != int64(p.Rank()+1) {
			return errors.New("scan prefix wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterAllgatherAlltoall(t *testing.T) {
	err := runAll(t, 3, func(p *Proc) error {
		r := int64(p.Rank())
		// Gather at root 1.
		_, vec, err := p.Collective(1, OpGather, RedSum, 1, r*10, nil, "")
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			if len(vec) != 3 || vec[0] != 0 || vec[1] != 10 || vec[2] != 20 {
				return errors.New("gather vector wrong")
			}
		} else if vec != nil {
			return errors.New("non-root got a gather vector")
		}
		// Allgather.
		_, vec, err = p.Collective(1, OpAllgather, RedSum, 0, r+1, nil, "")
		if err != nil {
			return err
		}
		if len(vec) != 3 || vec[0] != 1 || vec[1] != 2 || vec[2] != 3 {
			return errors.New("allgather wrong")
		}
		// Scatter from root 0.
		var src []int64
		if p.Rank() == 0 {
			src = []int64{7, 8, 9}
		}
		v, _, err := p.Collective(1, OpScatter, RedSum, 0, 0, src, "")
		if err != nil {
			return err
		}
		if v != 7+r {
			return errors.New("scatter value wrong")
		}
		// Alltoall: rank r sends r*10+j to rank j.
		contrib := []int64{r * 10, r*10 + 1, r*10 + 2}
		_, vec, err = p.Collective(1, OpAlltoall, RedSum, 0, 0, contrib, "")
		if err != nil {
			return err
		}
		for s := int64(0); s < 3; s++ {
			if vec[s] != s*10+r {
				return errors.New("alltoall wrong")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMismatchDetected(t *testing.T) {
	err := runAll(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			_, _, err := p.Collective(1, OpBcast, RedSum, 0, 0, nil, "a.mh:3")
			return err
		}
		_, _, err := p.Collective(1, OpReduce, RedSum, 0, 0, nil, "a.mh:5")
		return err
	})
	var mm *MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("want MismatchError, got %v", err)
	}
	msg := mm.Error()
	if !strings.Contains(msg, "MPI_Bcast") || !strings.Contains(msg, "MPI_Reduce") || !strings.Contains(msg, "a.mh:3") {
		t.Errorf("mismatch message incomplete: %s", msg)
	}
}

func TestRootMismatchDetected(t *testing.T) {
	err := runAll(t, 2, func(p *Proc) error {
		_, _, err := p.Collective(1, OpBcast, RedSum, p.Rank(), 0, nil, "")
		return err
	})
	var mm *MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("want MismatchError for differing roots, got %v", err)
	}
}

func TestMissingCollectiveIsDeadlock(t *testing.T) {
	err := runAll(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			_, _, err := p.Collective(1, OpBarrier, RedSum, 0, 0, nil, "x.mh:9")
			return err
		}
		return nil // rank 1 leaves without the barrier
	})
	var d *monitor.DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "MPI_Barrier") || !strings.Contains(msg, "finalized") {
		t.Errorf("deadlock report incomplete:\n%s", msg)
	}
}

func TestSendRecvRendezvous(t *testing.T) {
	err := runAll(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			return p.Send(1, 42, 1, 7, "")
		}
		v, err := p.Recv(1, 0, 7, "")
		if err != nil {
			return err
		}
		if v != 42 {
			return errors.New("recv value wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvTagMismatchDeadlocks(t *testing.T) {
	err := runAll(t, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			return p.Send(1, 1, 1, 3, "")
		}
		_, err := p.Recv(1, 0, 4, "") // wrong tag
		return err
	})
	var d *monitor.DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("want DeadlockError on tag mismatch, got %v", err)
	}
}

func TestPingPong(t *testing.T) {
	const rounds = 50
	err := runAll(t, 2, func(p *Proc) error {
		for i := 0; i < rounds; i++ {
			if p.Rank() == 0 {
				if err := p.Send(1, int64(i), 1, 0, ""); err != nil {
					return err
				}
				v, err := p.Recv(1, 1, 0, "")
				if err != nil {
					return err
				}
				if v != int64(i) {
					return errors.New("pingpong payload wrong")
				}
			} else {
				v, err := p.Recv(1, 0, 0, "")
				if err != nil {
					return err
				}
				if err := p.Send(1, v, 0, 0, ""); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveBeforeInit(t *testing.T) {
	w := newWorld(t, 2, ThreadMultiple)
	err := w.Run(func(p *Proc) error {
		_, _, err := p.Collective(1, OpBarrier, RedSum, 0, 0, nil, "")
		return err
	})
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("want UsageError, got %v", err)
	}
	if !strings.Contains(ue.Error(), "before MPI_Init") {
		t.Errorf("message = %v", ue)
	}
}

func TestCollectiveAfterFinalize(t *testing.T) {
	w := newWorld(t, 1, ThreadMultiple)
	err := w.Run(func(p *Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		if err := p.Finalize(1); err != nil {
			return err
		}
		_, _, err := p.Collective(1, OpBarrier, RedSum, 0, 0, nil, "")
		return err
	})
	var ue *UsageError
	if !errors.As(err, &ue) || !strings.Contains(ue.Error(), "after MPI_Finalize") {
		t.Fatalf("want after-finalize UsageError, got %v", err)
	}
}

func TestDoubleInit(t *testing.T) {
	w := newWorld(t, 1, ThreadMultiple)
	err := w.Run(func(p *Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		return p.Init(1)
	})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("want double-init error, got %v", err)
	}
}

func TestFunneledRejectsNonMainThread(t *testing.T) {
	w := newWorld(t, 1, ThreadFunneled)
	err := w.Run(func(p *Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		_, _, err := p.Collective(2, OpBarrier, RedSum, 0, 0, nil, "") // thread 2 != main
		return err
	})
	var ue *UsageError
	if !errors.As(err, &ue) || !strings.Contains(ue.Error(), "non-main thread") {
		t.Fatalf("want funneled violation, got %v", err)
	}
}

func TestConcurrentCollectiveCallsSameRank(t *testing.T) {
	// Two goroutines of rank 0 both enter collectives while rank 1 never
	// arrives: the second call from rank 0 must be flagged.
	w := newWorld(t, 2, ThreadMultiple)
	err := w.Run(func(p *Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		if p.Rank() == 0 {
			w.Monitor().ThreadStarted()
			done := make(chan error, 1)
			go func() {
				defer w.Monitor().ThreadExited()
				_, _, err := p.Collective(2, OpBcast, RedSum, 0, 0, nil, "")
				done <- err
			}()
			_, _, err := p.Collective(3, OpReduce, RedSum, 0, 0, nil, "")
			<-done
			return err
		}
		// rank 1 blocks on a barrier that can never complete cleanly.
		_, _, err := p.Collective(1, OpBarrier, RedSum, 0, 0, nil, "")
		return err
	})
	// Depending on arrival order the runtime sees either the overlapping
	// call from rank 0 (ConcurrentCallError) or a round where rank 0's
	// second op meets rank 1's barrier (MismatchError). Both are correct
	// detections of this nondeterministic bug — which is exactly why the
	// paper validates it statically.
	var cc *ConcurrentCallError
	var mm *MismatchError
	if !errors.As(err, &cc) && !errors.As(err, &mm) {
		t.Fatalf("want ConcurrentCallError or MismatchError, got %v", err)
	}
}

func TestInvalidRootAborts(t *testing.T) {
	err := runAll(t, 2, func(p *Proc) error {
		_, _, err := p.Collective(1, OpBcast, RedSum, 5, 0, nil, "")
		return err
	})
	var ue *UsageError
	if !errors.As(err, &ue) || !strings.Contains(ue.Error(), "out of range") {
		t.Fatalf("want root range error, got %v", err)
	}
}

func TestInvalidRedOpAborts(t *testing.T) {
	// Regression: an out-of-range reduction op used to fall through
	// RedOp.apply and silently reduce as sum; it must abort the world with
	// a diagnostic at collective entry instead.
	err := runAll(t, 2, func(p *Proc) error {
		_, _, err := p.Collective(1, OpAllreduce, RedOp(99), 0, int64(p.Rank()+1), nil, "")
		return err
	})
	var ue *UsageError
	if !errors.As(err, &ue) || !strings.Contains(ue.Error(), "out of range") {
		t.Fatalf("want reduction-op range error, got %v", err)
	}
}

func TestRedOpApplyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Apply on an unvalidated op must panic, not silently sum")
		}
	}()
	RedOp(99).Apply(1, 2)
}

func TestRoundObserverSeesCallsAndResults(t *testing.T) {
	w := newWorld(t, 3, ThreadMultiple)
	type seen struct {
		round int
		calls []CollCall
	}
	var rounds []seen
	w.SetRoundObserver(func(round int, calls []CollCall) error {
		rounds = append(rounds, seen{round, calls})
		return nil
	})
	err := w.Run(func(p *Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		if _, _, err := p.Collective(1, OpAllreduce, RedSum, 0, int64(p.Rank()+1), nil, "here"); err != nil {
			return err
		}
		return p.Finalize(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	var red *seen
	for i := range rounds {
		if len(rounds[i].calls) > 0 && rounds[i].calls[0].Op == OpAllreduce {
			red = &rounds[i]
		}
	}
	if red == nil {
		t.Fatal("observer never saw the allreduce round")
	}
	for r, c := range red.calls {
		if c.Rank != r || c.Value != int64(r+1) || c.OutValue != 6 || c.Loc != "here" {
			t.Fatalf("call %d observed wrong: %+v", r, c)
		}
	}
}

func TestRoundObserverErrorAbortsWorld(t *testing.T) {
	w := newWorld(t, 2, ThreadMultiple)
	boom := errors.New("oracle says no")
	w.SetRoundObserver(func(round int, calls []CollCall) error {
		if len(calls) > 0 && calls[0].Op == OpAllreduce {
			return boom
		}
		return nil
	})
	err := w.Run(func(p *Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		_, _, err := p.Collective(1, OpAllreduce, RedSum, 0, 1, nil, "")
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("observer error must abort the world, got %v", err)
	}
}

func TestRoundObserverSurvivesReset(t *testing.T) {
	w := newWorld(t, 2, ThreadMultiple)
	var fired int
	w.SetRoundObserver(func(round int, calls []CollCall) error {
		fired++
		return nil
	})
	body := func(p *Proc) error {
		if err := p.Init(1); err != nil {
			return err
		}
		if _, _, err := p.Collective(1, OpBarrier, RedSum, 0, 0, nil, ""); err != nil {
			return err
		}
		return p.Finalize(1)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	first := fired
	if first == 0 {
		t.Fatal("observer never fired")
	}
	w.Reset()
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	if fired <= first {
		t.Error("observer must survive Reset for pooled session reuse")
	}
}

func TestParseRedOp(t *testing.T) {
	for name, want := range map[string]RedOp{"": RedSum, "sum": RedSum, "min": RedMin, "max": RedMax, "prod": RedProd} {
		got, err := ParseRedOp(name)
		if err != nil || got != want {
			t.Errorf("ParseRedOp(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseRedOp("xor"); err == nil {
		t.Error("unknown op must error")
	}
}

func TestOpAndLevelStrings(t *testing.T) {
	if OpAllreduce.String() != "MPI_Allreduce" || ThreadSerialized.String() != "MPI_THREAD_SERIALIZED" {
		t.Error("string names wrong")
	}
	if RedMax.String() != "max" {
		t.Error("redop name wrong")
	}
}

func TestManyRanksStress(t *testing.T) {
	err := runAll(t, 16, func(p *Proc) error {
		total := int64(0)
		for i := 0; i < 20; i++ {
			v, _, err := p.Collective(1, OpAllreduce, RedSum, 0, 1, nil, "")
			if err != nil {
				return err
			}
			total += v
		}
		if total != 16*20 {
			return errors.New("stress total wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
