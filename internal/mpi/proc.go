package mpi

import (
	"fmt"

	"parcoach/internal/monitor"
)

// Proc is one MPI process. Its methods are called by the interpreter (or
// directly by Go code using the library); collectives block until the
// whole world participates.
type Proc struct {
	world *World
	rank  int

	// All fields below are guarded by the world monitor's lock.
	initialized bool
	finalized   bool
	exited      bool
	// inMPI counts threads currently inside an MPI call (thread-level
	// enforcement); mainThread remembers which thread called MPI_Init.
	inMPI      int
	mainThread int64
	callSeq    int
}

// Rank returns the process rank in the world.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.cfg.Procs }

// World returns the owning world.
func (p *Proc) World() *World { return p.world }

// Finalized reports whether MPI_Finalize was called (used by the verifier
// to skip end-of-function checks after finalization).
func (p *Proc) Finalized() bool {
	p.world.mon.Lock()
	defer p.world.mon.Unlock()
	return p.finalized
}

// FinalizedLocked is Finalized for callers already holding the world
// monitor's lock (it is not reentrant).
func (p *Proc) FinalizedLocked() bool { return p.finalized }

// UsageError is a violation of MPI calling rules (init/finalize ordering
// or thread-level discipline) — the class of error tools like Marmot
// report.
type UsageError struct {
	Rank int
	Msg  string
}

func (e *UsageError) Error() string {
	return fmt.Sprintf("mpi usage error on rank %d: %s", e.Rank, e.Msg)
}

// MismatchError reports that the ranks of a communicator disagreed on the
// collective operation of a round — the error class the paper's tool must
// catch before it becomes a deadlock.
type MismatchError struct {
	Round int
	// Calls maps rank to the operation it attempted.
	Calls map[int]string
}

func (e *MismatchError) Error() string {
	parts := make([]string, 0, len(e.Calls))
	for r := 0; r < len(e.Calls); r++ {
		if c, ok := e.Calls[r]; ok {
			parts = append(parts, fmt.Sprintf("rank %d: %s", r, c))
		}
	}
	return fmt.Sprintf("collective mismatch in round %d: %s", e.Round, joinComma(parts))
}

// ConcurrentCallError reports two threads of one process inside
// simultaneous collective calls on the same communicator.
type ConcurrentCallError struct {
	Rank int
	OpA  string
	OpB  string
}

func (e *ConcurrentCallError) Error() string {
	return fmt.Sprintf("rank %d issued concurrent collective calls (%s and %s) on the same communicator",
		e.Rank, e.OpA, e.OpB)
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// Init records MPI_Init; threadID identifies the calling thread for
// thread-level enforcement (the interpreter passes its thread handle id).
func (p *Proc) Init(threadID int64) error {
	m := p.world.mon
	m.Lock()
	defer m.Unlock()
	if p.initialized {
		return &UsageError{Rank: p.rank, Msg: "MPI_Init called twice"}
	}
	p.initialized = true
	p.mainThread = threadID
	return nil
}

// Finalize records MPI_Finalize.
func (p *Proc) Finalize(threadID int64) error {
	m := p.world.mon
	m.Lock()
	defer m.Unlock()
	if err := p.checkCallLocked(threadID, "MPI_Finalize"); err != nil {
		return err
	}
	p.finalized = true
	return nil
}

// checkCallLocked validates init/finalize ordering and the thread level
// for a call made by threadID.
func (p *Proc) checkCallLocked(threadID int64, what string) error {
	if !p.initialized {
		return &UsageError{Rank: p.rank, Msg: what + " before MPI_Init"}
	}
	if p.finalized {
		return &UsageError{Rank: p.rank, Msg: what + " after MPI_Finalize"}
	}
	switch p.world.cfg.Level {
	case ThreadSingle, ThreadFunneled:
		if threadID != p.mainThread {
			return &UsageError{Rank: p.rank, Msg: fmt.Sprintf(
				"%s called from a non-main thread under %s", what, p.world.cfg.Level)}
		}
	case ThreadSerialized:
		if p.inMPI > 0 {
			return &UsageError{Rank: p.rank, Msg: fmt.Sprintf(
				"%s overlaps another MPI call under %s", what, p.world.cfg.Level)}
		}
	}
	return nil
}

// pendingCall is one rank's contribution to the current collective round.
type pendingCall struct {
	op     Op
	red    RedOp
	root   int
	value  int64
	vector []int64
	// live is the caller's live source buffer the vector snapshot was
	// taken from; the round observer re-reads it to detect torn reads.
	live []int64
	loc  string

	waiter *monitor.Waiter
	// result slots filled by the completing rank
	outValue  int64
	outVector []int64
}

// Collective performs op with this process's contribution and returns the
// process's result. Value/vector use depends on the operation (see the
// package comment of internal/interp for the mapping). loc is a source
// location for error messages.
func (p *Proc) Collective(threadID int64, op Op, red RedOp, root int, value int64, vector []int64, loc string) (int64, []int64, error) {
	return p.CollectiveLive(threadID, op, red, root, value, vector, nil, loc)
}

// CollectiveLive is Collective with the live source buffer the vector
// snapshot was read from, exposed to the round observer so the value
// oracle can detect a source torn by a concurrent write while the call
// was in flight. live may be nil (value-only collectives, or no oracle).
func (p *Proc) CollectiveLive(threadID int64, op Op, red RedOp, root int, value int64, vector, live []int64, loc string) (int64, []int64, error) {
	w := p.world
	m := w.mon
	m.Lock()
	if m.Aborted() {
		err := m.ErrLocked()
		m.Unlock()
		return 0, nil, err
	}
	if err := p.checkCallLocked(threadID, op.String()); err != nil {
		m.AbortLocked(err)
		m.Unlock()
		return 0, nil, err
	}
	if root < 0 || root >= w.cfg.Procs {
		err := &UsageError{Rank: p.rank, Msg: fmt.Sprintf("%s root %d out of range", op, root)}
		m.AbortLocked(err)
		m.Unlock()
		return 0, nil, err
	}
	if !red.Valid() {
		err := &UsageError{Rank: p.rank, Msg: fmt.Sprintf("%s reduction op %d out of range", op, int(red))}
		m.AbortLocked(err)
		m.Unlock()
		return 0, nil, err
	}
	if prev, dup := w.arrived[p.rank]; dup {
		err := &ConcurrentCallError{Rank: p.rank, OpA: prev.op.String(), OpB: op.String()}
		m.AbortLocked(err)
		m.Unlock()
		return 0, nil, err
	}
	p.inMPI++
	p.callSeq++
	pc := &pendingCall{
		op: op, red: red, root: root,
		value: value, vector: append([]int64(nil), vector...),
		live: live, loc: loc,
	}
	w.arrived[p.rank] = pc

	if len(w.arrived) == w.cfg.Procs {
		// Last arrival: validate, compute, let the observer audit the
		// round, then release the waiters.
		if err := w.validateRoundLocked(); err != nil {
			p.inMPI--
			m.AbortLocked(err)
			m.Unlock()
			return 0, nil, err
		}
		w.computeRoundLocked()
		if w.observer != nil {
			if err := w.observer(w.round, w.observedRoundLocked()); err != nil {
				p.inMPI--
				m.AbortLocked(err)
				m.Unlock()
				return 0, nil, err
			}
		}
		w.finishRoundLocked()
		p.inMPI--
		out := pc.outValue
		outV := pc.outVector
		m.Unlock()
		return out, outV, nil
	}

	callSeq := p.callSeq
	pc.waiter = m.NewWaiterLocked("MPI collective", func() string {
		return fmt.Sprintf("rank %d: %s (call #%d)%s", p.rank, op, callSeq, locSuffix(loc))
	})
	m.Unlock()
	if err := pc.waiter.Await(); err != nil {
		m.Lock()
		p.inMPI--
		m.Unlock()
		return 0, nil, err
	}
	m.Lock()
	p.inMPI--
	out := pc.outValue
	outV := pc.outVector
	m.Unlock()
	return out, outV, nil
}

func locSuffix(loc string) string {
	if loc == "" {
		return ""
	}
	return " at " + loc
}

// validateRoundLocked checks that all arrived calls agree on op — and on
// root when no round observer is installed. With an observer present,
// root divergence is deliberately left to it: the value oracle reports a
// wrong-root as its own verdict class instead of the matcher's generic
// mismatch, while uninstrumented runs keep the ground-truth MismatchError.
func (w *World) validateRoundLocked() error {
	var first *pendingCall
	agree := true
	checkRoot := w.observer == nil
	for _, pc := range w.arrived {
		if first == nil {
			first = pc
			continue
		}
		if pc.op != first.op || (checkRoot && pc.root != first.root) {
			agree = false
		}
	}
	if agree {
		return nil
	}
	calls := make(map[int]string, len(w.arrived))
	for r, pc := range w.arrived {
		s := pc.op.String()
		if pc.loc != "" {
			s += " at " + pc.loc
		}
		if opHasRoot(pc.op) {
			s += fmt.Sprintf(" (root %d)", pc.root)
		}
		calls[r] = s
	}
	return &MismatchError{Round: w.round, Calls: calls}
}

func opHasRoot(op Op) bool {
	switch op {
	case OpBcast, OpReduce, OpGather, OpScatter:
		return true
	}
	return false
}

// computeRoundLocked computes every rank's result into the pending
// calls' out slots; finishRoundLocked then wakes the waiters. The round
// observer runs between the two, seeing contributions and results while
// every participant is still parked.
func (w *World) computeRoundLocked() {
	n := w.cfg.Procs
	calls := make([]*pendingCall, n)
	for r, pc := range w.arrived {
		calls[r] = pc
	}
	op := calls[0].op
	red := calls[0].red
	root := calls[0].root

	switch op {
	case OpBarrier:
		// synchronization only
	case OpBcast:
		v := calls[root].value
		for _, pc := range calls {
			pc.outValue = v
		}
	case OpReduce:
		acc := calls[0].value
		for r := 1; r < n; r++ {
			acc = red.apply(acc, calls[r].value)
		}
		for r, pc := range calls {
			if r == root {
				pc.outValue = acc
			} else {
				pc.outValue = pc.value
			}
		}
	case OpAllreduce:
		acc := calls[0].value
		for r := 1; r < n; r++ {
			acc = red.apply(acc, calls[r].value)
		}
		for _, pc := range calls {
			pc.outValue = acc
		}
	case OpScan:
		acc := int64(0)
		for r, pc := range calls {
			if r == 0 {
				acc = pc.value
			} else {
				acc = red.apply(acc, pc.value)
			}
			pc.outValue = acc
		}
	case OpGather:
		vec := make([]int64, n)
		for r, pc := range calls {
			vec[r] = pc.value
		}
		calls[root].outVector = vec
	case OpAllgather:
		vec := make([]int64, n)
		for r, pc := range calls {
			vec[r] = pc.value
		}
		for _, pc := range calls {
			pc.outVector = append([]int64(nil), vec...)
		}
	case OpScatter:
		src := calls[root].vector
		for r, pc := range calls {
			if r < len(src) {
				pc.outValue = src[r]
			}
		}
	case OpAlltoall:
		for r, pc := range calls {
			out := make([]int64, n)
			for s, other := range calls {
				if r < len(other.vector) {
					out[s] = other.vector[r]
				}
			}
			pc.outVector = out
		}
	}
}

// observedRoundLocked snapshots the completed round for the observer.
func (w *World) observedRoundLocked() []CollCall {
	calls := make([]CollCall, 0, len(w.arrived))
	for r := 0; r < w.cfg.Procs; r++ {
		pc := w.arrived[r]
		calls = append(calls, CollCall{
			Rank: r, Op: pc.op, Red: pc.red, Root: pc.root,
			Value: pc.value, Vector: pc.vector, Live: pc.live, Loc: pc.loc,
			OutValue: pc.outValue, OutVector: pc.outVector,
		})
	}
	return calls
}

// finishRoundLocked wakes the round's waiters and rearms the matcher.
func (w *World) finishRoundLocked() {
	for _, pc := range w.arrived {
		if pc.waiter != nil {
			w.mon.WakeLocked(pc.waiter)
		}
	}
	w.arrived = make(map[int]*pendingCall)
	w.round++
}

//
// Point-to-point (synchronous rendezvous)
//

type p2pKey struct {
	src, dst, tag int
}

type pendingSend struct {
	value  int64
	waiter *monitor.Waiter
}

type pendingRecv struct {
	value  int64
	waiter *monitor.Waiter
	filled bool
}

// Send delivers value to dest with the given tag, blocking until the
// receiver arrives (synchronous-mode semantics, like MPI_Ssend).
func (p *Proc) Send(threadID int64, value int64, dest, tag int, loc string) error {
	w := p.world
	m := w.mon
	m.Lock()
	if m.Aborted() {
		err := m.ErrLocked()
		m.Unlock()
		return err
	}
	if err := p.checkCallLocked(threadID, "MPI_Send"); err != nil {
		m.AbortLocked(err)
		m.Unlock()
		return err
	}
	if dest < 0 || dest >= w.cfg.Procs {
		err := &UsageError{Rank: p.rank, Msg: fmt.Sprintf("MPI_Send destination %d out of range", dest)}
		m.AbortLocked(err)
		m.Unlock()
		return err
	}
	key := p2pKey{src: p.rank, dst: dest, tag: tag}
	if q := w.recvs[key]; len(q) > 0 {
		r := q[0]
		w.recvs[key] = q[1:]
		r.value = value
		r.filled = true
		m.WakeLocked(r.waiter)
		m.Unlock()
		return nil
	}
	p.inMPI++
	ps := &pendingSend{value: value}
	ps.waiter = m.NewWaiterLocked("MPI send", func() string {
		return fmt.Sprintf("rank %d: MPI_Send to %d tag %d%s", p.rank, dest, tag, locSuffix(loc))
	})
	w.sends[key] = append(w.sends[key], ps)
	m.Unlock()
	err := ps.waiter.Await()
	m.Lock()
	p.inMPI--
	m.Unlock()
	return err
}

// Recv blocks until a matching message from src with the given tag
// arrives and returns its payload.
func (p *Proc) Recv(threadID int64, src, tag int, loc string) (int64, error) {
	w := p.world
	m := w.mon
	m.Lock()
	if m.Aborted() {
		err := m.ErrLocked()
		m.Unlock()
		return 0, err
	}
	if err := p.checkCallLocked(threadID, "MPI_Recv"); err != nil {
		m.AbortLocked(err)
		m.Unlock()
		return 0, err
	}
	if src < 0 || src >= w.cfg.Procs {
		err := &UsageError{Rank: p.rank, Msg: fmt.Sprintf("MPI_Recv source %d out of range", src)}
		m.AbortLocked(err)
		m.Unlock()
		return 0, err
	}
	key := p2pKey{src: src, dst: p.rank, tag: tag}
	if q := w.sends[key]; len(q) > 0 {
		s := q[0]
		w.sends[key] = q[1:]
		v := s.value
		m.WakeLocked(s.waiter)
		m.Unlock()
		return v, nil
	}
	p.inMPI++
	pr := &pendingRecv{}
	pr.waiter = m.NewWaiterLocked("MPI recv", func() string {
		return fmt.Sprintf("rank %d: MPI_Recv from %d tag %d%s", p.rank, src, tag, locSuffix(loc))
	})
	w.recvs[key] = append(w.recvs[key], pr)
	m.Unlock()
	err := pr.waiter.Await()
	m.Lock()
	p.inMPI--
	m.Unlock()
	if err != nil {
		return 0, err
	}
	return pr.value, nil
}
