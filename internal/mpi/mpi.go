// Package mpi simulates the MPI substrate the paper's tool runs against:
// a fixed set of processes (goroutines) joined by a world communicator
// with matched blocking collectives, synchronous point-to-point messages,
// and the four MPI threading-support levels.
//
// Unlike a production MPI, the simulator is also an oracle: the central
// matcher observes every call, so a run that would deadlock or corrupt on
// a cluster instead terminates deterministically with a precise error —
// mismatched collective kinds once all ranks arrive, concurrent collective
// calls from one process, or a quiescence deadlock report from the shared
// monitor when some ranks exit while others wait. The validator
// (internal/verifier) is expected to abort *earlier* with a better
// message; these runtime errors are the ground truth the test suite and
// the detection-matrix experiment compare against.
package mpi

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"parcoach/internal/monitor"
	"parcoach/internal/pipeline"
)

// Op identifies a collective operation.
type Op int

// Collective operations.
const (
	OpBarrier Op = iota
	OpBcast
	OpReduce
	OpAllreduce
	OpGather
	OpAllgather
	OpScatter
	OpAlltoall
	OpScan
)

var opNames = [...]string{
	OpBarrier: "MPI_Barrier", OpBcast: "MPI_Bcast", OpReduce: "MPI_Reduce",
	OpAllreduce: "MPI_Allreduce", OpGather: "MPI_Gather",
	OpAllgather: "MPI_Allgather", OpScatter: "MPI_Scatter",
	OpAlltoall: "MPI_Alltoall", OpScan: "MPI_Scan",
}

// String returns the MPI_* name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "MPI_?"
}

// RedOp is a reduction operator.
type RedOp int

// Reduction operators.
const (
	RedSum RedOp = iota
	RedMin
	RedMax
	RedProd
)

// ParseRedOp maps the surface names; the empty string defaults to sum.
func ParseRedOp(name string) (RedOp, error) {
	switch name {
	case "", "sum":
		return RedSum, nil
	case "min":
		return RedMin, nil
	case "max":
		return RedMax, nil
	case "prod":
		return RedProd, nil
	}
	return RedSum, fmt.Errorf("mpi: unknown reduction op %q", name)
}

// Valid reports whether r is one of the defined reduction operators.
// Collective entry validates with this instead of letting an out-of-range
// op reach apply.
func (r RedOp) Valid() bool { return r >= RedSum && r <= RedProd }

// Apply folds b into a under the operator. Out-of-range operators panic:
// every collective validates its op on entry, so an invalid op here is a
// matcher bug, not a user error — it must never silently reduce as sum.
func (r RedOp) Apply(a, b int64) int64 {
	switch r {
	case RedSum:
		return a + b
	case RedMin:
		if b < a {
			return b
		}
		return a
	case RedMax:
		if b > a {
			return b
		}
		return a
	case RedProd:
		return a * b
	}
	panic(fmt.Sprintf("mpi: RedOp(%d).Apply on unvalidated op", int(r)))
}

func (r RedOp) apply(a, b int64) int64 { return r.Apply(a, b) }

func (r RedOp) String() string {
	switch r {
	case RedMin:
		return "min"
	case RedMax:
		return "max"
	case RedProd:
		return "prod"
	}
	return "sum"
}

// ThreadLevel is the MPI threading support level.
type ThreadLevel int

// Thread levels, in increasing permissiveness.
const (
	ThreadSingle ThreadLevel = iota
	ThreadFunneled
	ThreadSerialized
	ThreadMultiple
)

var levelNames = [...]string{
	ThreadSingle:     "MPI_THREAD_SINGLE",
	ThreadFunneled:   "MPI_THREAD_FUNNELED",
	ThreadSerialized: "MPI_THREAD_SERIALIZED",
	ThreadMultiple:   "MPI_THREAD_MULTIPLE",
}

func (l ThreadLevel) String() string {
	if int(l) >= 0 && int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "MPI_THREAD_?"
}

// Config configures a world.
type Config struct {
	// Procs is the number of MPI processes (ranks); must be >= 1.
	Procs int
	// Level is the threading support the "implementation" was asked for;
	// stricter levels enforce the standard's calling rules.
	Level ThreadLevel
}

// World is one simulated MPI job.
type World struct {
	cfg   Config
	mon   *monitor.Monitor
	procs []*Proc

	// collective matcher state, guarded by mon's lock
	arrived map[int]*pendingCall
	round   int

	// observer, if set, sees every completed collective round (all
	// contributions plus computed results) before the waiters wake; a
	// non-nil error aborts the run. Installed once (SetRoundObserver) and
	// deliberately NOT cleared by Reset, like the monitor's analyzers.
	observer func(round int, calls []CollCall) error

	// point-to-point state, guarded by mon's lock
	sends map[p2pKey][]*pendingSend
	recvs map[p2pKey][]*pendingRecv
}

// CollCall is an observer's read-only view of one rank's contribution to
// a completed collective round: the call's arguments, the source vector
// snapshot taken at call time, the live source buffer it was taken from
// (nil for value-only collectives), and the computed results.
type CollCall struct {
	Rank   int
	Op     Op
	Red    RedOp
	Root   int
	Value  int64
	Vector []int64 // snapshot of the source buffer at call time
	Live   []int64 // the caller's live source buffer, if any
	Loc    string

	OutValue  int64
	OutVector []int64
}

// SetRoundObserver installs the per-round collective observer (the
// verifier's value oracle). The hook runs under the monitor's lock after
// the round's results are computed but before any participant resumes;
// returning an error aborts the run with it. The observer survives Reset
// so pooled worlds stay instrumented across schedule-exploration runs.
func (w *World) SetRoundObserver(fn func(round int, calls []CollCall) error) {
	w.mon.Lock()
	w.observer = fn
	w.mon.Unlock()
}

// NewWorld creates a world with its own monitor.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("mpi: world needs at least 1 process, got %d", cfg.Procs)
	}
	w := &World{
		cfg:     cfg,
		mon:     monitor.New(),
		arrived: make(map[int]*pendingCall),
		sends:   make(map[p2pKey][]*pendingSend),
		recvs:   make(map[p2pKey][]*pendingRecv),
	}
	for r := 0; r < cfg.Procs; r++ {
		w.procs = append(w.procs, &Proc{world: w, rank: r})
	}
	w.mon.AddAnalyzer(w.describeState)
	return w, nil
}

// Monitor exposes the shared blocking kernel so the threading runtime and
// the verifier integrate with the same deadlock detection.
func (w *World) Monitor() *monitor.Monitor { return w.mon }

// Reset rearms the world (and its monitor) for a fresh run with the
// same configuration, so repeated runs of one program — schedule
// exploration — reuse the world, its processes and the monitor's waiter
// pool instead of rebuilding them per schedule. Registered deadlock
// analyzers survive the reset. Only call once the previous run has
// fully drained (monitor.Drained): stragglers from the old run touching
// a reset world would corrupt both runs.
func (w *World) Reset() {
	w.mon.Reset()
	clear(w.arrived)
	clear(w.sends)
	clear(w.recvs)
	w.round = 0
	for _, p := range w.procs {
		p.initialized = false
		p.finalized = false
		p.exited = false
		p.inMPI = 0
		p.mainThread = 0
		p.callSeq = 0
	}
}

// Size returns the number of processes.
func (w *World) Size() int { return w.cfg.Procs }

// Level returns the configured thread level.
func (w *World) Level() ThreadLevel { return w.cfg.Level }

// Proc returns the process with the given rank.
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// Run executes body once per rank, each on its own goroutine registered
// with the monitor, and returns the first error (abort, deadlock, or a
// body error). A nil return means every process completed.
func (w *World) Run(body func(p *Proc) error) error {
	var wg sync.WaitGroup
	// Register every rank as live before launching any: otherwise the
	// first process to block could trip the quiescence check while its
	// peers have not started yet.
	for range w.procs {
		w.mon.ThreadStarted()
	}
	for _, p := range w.procs {
		wg.Add(1)
		p := p
		// Pooled executor goroutines keep their interpreter-deep stacks
		// warm across the thousands of runs a schedule exploration makes.
		pipeline.Spawn(func() {
			defer wg.Done()
			err := body(p)
			if err != nil && !w.mon.Aborted() {
				w.mon.Abort(err)
			}
			w.mon.Lock()
			p.exited = true
			w.mon.Unlock()
			w.mon.ThreadExited()
		})
	}
	wg.Wait()
	return w.mon.Err()
}

// describeState contributes matcher context to deadlock reports.
func (w *World) describeState() []string {
	var lines []string
	for _, p := range w.procs {
		switch {
		case p.finalized:
			lines = append(lines, fmt.Sprintf("rank %d: finalized", p.rank))
		case p.exited:
			lines = append(lines, fmt.Sprintf("rank %d: exited without MPI_Finalize", p.rank))
		}
	}
	if len(w.arrived) > 0 {
		var parts []string
		for r, pc := range w.arrived {
			parts = append(parts, fmt.Sprintf("rank %d in %s", r, pc.op))
		}
		sort.Strings(parts)
		lines = append(lines, "collective round "+fmt.Sprint(w.round)+": "+strings.Join(parts, ", "))
	}
	return lines
}
