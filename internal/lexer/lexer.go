// Package lexer turns MiniHybrid source text into a token stream. The lexer
// is byte-oriented (MiniHybrid is ASCII-only by construction) with `//`
// line comments, and never stops at the first problem: illegal characters
// become Illegal tokens and are also recorded in the error list so the
// parser can keep producing diagnostics for the rest of the file.
package lexer

import (
	"parcoach/internal/source"
	"parcoach/internal/token"
)

// Lexer scans one file.
type Lexer struct {
	file *source.File
	src  string
	off  int
	errs source.ErrorList
}

// New returns a lexer over the given file.
func New(file *source.File) *Lexer {
	return &Lexer{file: file, src: file.Content}
}

// Errors returns the accumulated lexical errors.
func (l *Lexer) Errors() source.ErrorList { return l.errs }

// Scan returns all tokens of the file, ending with an EOF token. Comments
// are skipped.
func (l *Lexer) Scan() []token.Token {
	var toks []token.Token
	for {
		t := l.next()
		if t.Kind == token.Comment {
			continue
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) errorf(offset int, format string, args ...any) {
	l.errs.Add(l.file.Pos(offset), "lex", format, args...)
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n < len(l.src) {
		return l.src[l.off+n]
	}
	return 0
}

// next scans a single token.
func (l *Lexer) next() token.Token {
	for l.off < len(l.src) && isSpace(l.src[l.off]) {
		l.off++
	}
	start := l.off
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Offset: start}
	}
	c := l.src[l.off]
	switch {
	case isLetter(c):
		for l.off < len(l.src) && (isLetter(l.src[l.off]) || isDigit(l.src[l.off])) {
			l.off++
		}
		lit := l.src[start:l.off]
		kind := token.Lookup(lit)
		if kind == token.Ident {
			return token.Token{Kind: token.Ident, Lit: lit, Offset: start}
		}
		return token.Token{Kind: kind, Lit: lit, Offset: start}
	case isDigit(c):
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.off++
		}
		// Reject "12ab" style runs as a single illegal token rather than
		// silently splitting into number + identifier.
		if l.off < len(l.src) && isLetter(l.src[l.off]) {
			for l.off < len(l.src) && (isLetter(l.src[l.off]) || isDigit(l.src[l.off])) {
				l.off++
			}
			lit := l.src[start:l.off]
			l.errorf(start, "malformed number %q", lit)
			return token.Token{Kind: token.Illegal, Lit: lit, Offset: start}
		}
		return token.Token{Kind: token.Int, Lit: l.src[start:l.off], Offset: start}
	}

	two := func(k token.Kind) token.Token {
		l.off += 2
		return token.Token{Kind: k, Offset: start}
	}
	one := func(k token.Kind) token.Token {
		l.off++
		return token.Token{Kind: k, Offset: start}
	}

	switch c {
	case '/':
		if l.peekAt(1) == '/' {
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
			return token.Token{Kind: token.Comment, Lit: l.src[start:l.off], Offset: start}
		}
		return one(token.Slash)
	case '=':
		if l.peekAt(1) == '=' {
			return two(token.Eq)
		}
		return one(token.Assign)
	case '!':
		if l.peekAt(1) == '=' {
			return two(token.NotEq)
		}
		return one(token.Not)
	case '<':
		if l.peekAt(1) == '=' {
			return two(token.LtEq)
		}
		return one(token.Lt)
	case '>':
		if l.peekAt(1) == '=' {
			return two(token.GtEq)
		}
		return one(token.Gt)
	case '&':
		if l.peekAt(1) == '&' {
			return two(token.AndAnd)
		}
		l.off++
		l.errorf(start, "unexpected character %q (did you mean &&?)", string(c))
		return token.Token{Kind: token.Illegal, Lit: string(c), Offset: start}
	case '|':
		if l.peekAt(1) == '|' {
			return two(token.OrOr)
		}
		l.off++
		l.errorf(start, "unexpected character %q (did you mean ||?)", string(c))
		return token.Token{Kind: token.Illegal, Lit: string(c), Offset: start}
	case '+':
		if l.peekAt(1) == '=' {
			return two(token.PlusEq)
		}
		return one(token.Plus)
	case '-':
		if l.peekAt(1) == '=' {
			return two(token.MinusEq)
		}
		return one(token.Minus)
	case '*':
		return one(token.Star)
	case '%':
		return one(token.Percent)
	case '(':
		return one(token.LParen)
	case ')':
		return one(token.RParen)
	case '{':
		return one(token.LBrace)
	case '}':
		return one(token.RBrace)
	case '[':
		return one(token.LBracket)
	case ']':
		return one(token.RBracket)
	case ',':
		return one(token.Comma)
	case ';':
		return one(token.Semi)
	case '.':
		if l.peekAt(1) == '.' {
			return two(token.DotDot)
		}
		l.off++
		l.errorf(start, "unexpected character %q", string(c))
		return token.Token{Kind: token.Illegal, Lit: string(c), Offset: start}
	}
	l.off++
	l.errorf(start, "unexpected character %q", string(c))
	return token.Token{Kind: token.Illegal, Lit: string(c), Offset: start}
}
