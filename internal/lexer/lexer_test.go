package lexer

import (
	"testing"

	"parcoach/internal/source"
	"parcoach/internal/token"
)

func scan(t *testing.T, src string) ([]token.Token, source.ErrorList) {
	t.Helper()
	l := New(source.NewFile("t.mh", src))
	return l.Scan(), l.Errors()
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	toks, errs := scan(t, src)
	if len(errs) > 0 {
		t.Fatalf("scan(%q) errors: %v", src, errs)
	}
	want = append(want, token.EOF)
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("scan(%q) = %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan(%q)[%d] = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "= == ! != < <= > >= && || + += - -= * / % .. ; ,",
		token.Assign, token.Eq, token.Not, token.NotEq, token.Lt, token.LtEq,
		token.Gt, token.GtEq, token.AndAnd, token.OrOr, token.Plus, token.PlusEq,
		token.Minus, token.MinusEq, token.Star, token.Slash, token.Percent,
		token.DotDot, token.Semi, token.Comma)
}

func TestDelimiters(t *testing.T) {
	expectKinds(t, "( ) { } [ ]",
		token.LParen, token.RParen, token.LBrace, token.RBrace,
		token.LBracket, token.RBracket)
}

func TestKeywordsAndIdents(t *testing.T) {
	expectKinds(t, "func foo parallel single MPI_Barrier x_1",
		token.Func, token.Ident, token.Parallel, token.Single, token.Ident, token.Ident)
}

func TestNumbers(t *testing.T) {
	toks, errs := scan(t, "0 7 12345")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantLits := []string{"0", "7", "12345"}
	for i, want := range wantLits {
		if toks[i].Kind != token.Int || toks[i].Lit != want {
			t.Errorf("token %d = %v, want Int %q", i, toks[i], want)
		}
	}
}

func TestMalformedNumber(t *testing.T) {
	toks, errs := scan(t, "12abc")
	if len(errs) != 1 {
		t.Fatalf("want 1 error, got %v", errs)
	}
	if toks[0].Kind != token.Illegal || toks[0].Lit != "12abc" {
		t.Errorf("token = %v, want Illegal \"12abc\"", toks[0])
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "x // trailing comment with symbols +-*/\ny",
		token.Ident, token.Ident)
	// A whole-file comment yields only EOF.
	expectKinds(t, "// whole file is comment")
}

func TestCommentAtEOFWithoutNewline(t *testing.T) {
	expectKinds(t, "a // no newline", token.Ident)
}

func TestIllegalCharacters(t *testing.T) {
	for _, src := range []string{"@", "#", "$", "^", "~", "?", "`", "\"", "'"} {
		toks, errs := scan(t, src)
		if len(errs) != 1 {
			t.Errorf("scan(%q): want 1 error, got %v", src, errs)
		}
		if toks[0].Kind != token.Illegal {
			t.Errorf("scan(%q)[0] = %v, want Illegal", src, toks[0])
		}
	}
}

func TestSingleAmpersandAndPipe(t *testing.T) {
	for _, src := range []string{"&", "|"} {
		toks, errs := scan(t, src)
		if len(errs) != 1 || toks[0].Kind != token.Illegal {
			t.Errorf("scan(%q) = %v errs=%v, want Illegal with hint", src, toks, errs)
		}
	}
}

func TestLoneDot(t *testing.T) {
	toks, errs := scan(t, ".")
	if len(errs) != 1 || toks[0].Kind != token.Illegal {
		t.Errorf("lone dot: toks=%v errs=%v", toks, errs)
	}
}

func TestOffsetsResolveToPositions(t *testing.T) {
	file := source.NewFile("pos.mh", "func f() {\n  x = 1\n}\n")
	l := New(file)
	toks := l.Scan()
	// Token "x" should be at line 2 col 3.
	var xTok *token.Token
	for i := range toks {
		if toks[i].Kind == token.Ident && toks[i].Lit == "x" {
			xTok = &toks[i]
		}
	}
	if xTok == nil {
		t.Fatal("x token not found")
	}
	pos := file.Pos(xTok.Offset)
	if pos.Line != 2 || pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", pos)
	}
}

func TestScanAlwaysEndsWithEOF(t *testing.T) {
	for _, src := range []string{"", "   ", "\n\n", "x", "@@@@", "// c"} {
		toks, _ := scan(t, src)
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			t.Errorf("scan(%q) must end with EOF, got %v", src, toks)
		}
	}
}

func TestRealisticSnippet(t *testing.T) {
	src := `
func main() {
	MPI_Init()
	var x = 0
	parallel num_threads(4) {
		pfor schedule(dynamic) i = 0 .. 10 {
			atomic x += i
		}
		single {
			MPI_Allreduce(x, x, sum)
		}
	}
	MPI_Finalize()
}`
	toks, errs := scan(t, src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	// Spot-check a few structural tokens.
	var sawPfor, sawSchedule, sawAtomic, sawSingle bool
	for _, tok := range toks {
		switch tok.Kind {
		case token.Pfor:
			sawPfor = true
		case token.Schedule:
			sawSchedule = true
		case token.Atomic:
			sawAtomic = true
		case token.Single:
			sawSingle = true
		}
	}
	if !sawPfor || !sawSchedule || !sawAtomic || !sawSingle {
		t.Error("missing construct keywords in realistic snippet")
	}
}
