// Package sem performs the semantic checks a conforming MiniHybrid program
// must pass before the paper's analyses run: lexical scoping, call arity,
// scalar/array shape checks on MPI buffers, and the OpenMP-style nesting
// restrictions the paper's model assumes (perfectly nested regions, no
// branching out of a structured block, no barrier closely nested inside a
// worksharing or single-threaded construct).
package sem

import (
	"parcoach/internal/ast"
	"parcoach/internal/mpi"
	"parcoach/internal/source"
)

// VarKind classifies a name in scope.
type VarKind int

// Variable kinds. Parameters are Unknown because MiniHybrid parameters are
// untyped: they accept scalars or arrays and are refined by use.
const (
	Unknown VarKind = iota
	Scalar
	Array
)

func (k VarKind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Array:
		return "array"
	}
	return "unknown"
}

// Check validates the program and returns the accumulated errors, or nil.
func Check(prog *ast.Program) error {
	c := &checker{prog: prog}
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	c.errs.Sort()
	return c.errs.Err()
}

type scope struct {
	parent *scope
	vars   map[string]VarKind
}

func (s *scope) lookup(name string) (VarKind, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if k, ok := sc.vars[name]; ok {
			return k, ok
		}
	}
	return Unknown, false
}

func (s *scope) declare(name string, k VarKind) { s.vars[name] = k }

func (s *scope) child() *scope { return &scope{parent: s, vars: make(map[string]VarKind)} }

// construct identifies the innermost enclosing threading construct for
// nesting checks.
type construct int

const (
	ctxNone construct = iota
	ctxParallel
	ctxSingle
	ctxMaster
	ctxCritical
	ctxPfor
	ctxSections
)

func (c construct) String() string {
	switch c {
	case ctxParallel:
		return "parallel"
	case ctxSingle:
		return "single"
	case ctxMaster:
		return "master"
	case ctxCritical:
		return "critical"
	case ctxPfor:
		return "pfor"
	case ctxSections:
		return "sections"
	}
	return "function body"
}

type checker struct {
	prog *ast.Program
	errs source.ErrorList
	// nesting is the stack of enclosing threading constructs within the
	// current function (innermost last).
	nesting []construct
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.errs.Add(pos, "sem", format, args...)
}

func (c *checker) inConstruct() bool { return len(c.nesting) > 0 }

func (c *checker) innermost() construct {
	if len(c.nesting) == 0 {
		return ctxNone
	}
	return c.nesting[len(c.nesting)-1]
}

// worksharingBarred reports whether a worksharing or single-threaded
// construct may not appear here (closely nested inside another worksharing,
// single, master or critical construct).
func (c *checker) worksharingBarred() bool {
	switch c.innermost() {
	case ctxSingle, ctxMaster, ctxCritical, ctxPfor, ctxSections:
		return true
	}
	return false
}

func (c *checker) checkFunc(f *ast.FuncDecl) {
	sc := &scope{vars: make(map[string]VarKind)}
	seen := make(map[string]bool)
	for _, p := range f.Params {
		if seen[p] {
			c.errorf(f.NamePos, "duplicate parameter %q in function %q", p, f.Name)
		}
		seen[p] = true
		sc.declare(p, Unknown)
	}
	c.nesting = c.nesting[:0]
	c.checkBlock(f.Body, sc)
}

func (c *checker) checkBlock(b *ast.Block, sc *scope) {
	inner := sc.child()
	for _, s := range b.Stmts {
		c.checkStmt(s, inner)
	}
}

func (c *checker) push(k construct) { c.nesting = append(c.nesting, k) }
func (c *checker) pop()             { c.nesting = c.nesting[:len(c.nesting)-1] }

func (c *checker) checkStmt(s ast.Stmt, sc *scope) {
	switch s := s.(type) {
	case *ast.Block:
		c.checkBlock(s, sc)
	case *ast.VarDecl:
		kind := Scalar
		if s.ArraySize != nil {
			kind = Array
			c.checkExpr(s.ArraySize, sc, Scalar)
		}
		if s.Init != nil {
			c.checkExpr(s.Init, sc, Scalar)
		}
		if _, exists := sc.vars[s.Name]; exists {
			c.errorf(s.VarPos, "variable %q redeclared in this block", s.Name)
		}
		sc.declare(s.Name, kind)
	case *ast.Assign:
		c.checkLValue(s.Target, sc)
		c.checkExpr(s.Value, sc, Scalar)
	case *ast.CallStmt:
		c.checkCall(s.Call, sc)
	case *ast.If:
		c.checkExpr(s.Cond, sc, Scalar)
		c.checkBlock(s.Then, sc)
		if s.Else != nil {
			c.checkStmt(s.Else, sc)
		}
	case *ast.For:
		c.checkExpr(s.From, sc, Scalar)
		c.checkExpr(s.To, sc, Scalar)
		body := sc.child()
		body.declare(s.Var, Scalar)
		c.checkBlock(s.Body, body)
	case *ast.While:
		c.checkExpr(s.Cond, sc, Scalar)
		c.checkBlock(s.Body, sc)
	case *ast.Return:
		if s.Value != nil {
			c.checkExpr(s.Value, sc, Scalar)
		}
		if c.inConstruct() {
			c.errorf(s.RetPos, "return may not branch out of a %s construct", c.innermost())
		}
	case *ast.Print:
		for _, a := range s.Args {
			c.checkExpr(a, sc, Unknown)
		}
	case *ast.MPIStmt:
		c.checkMPI(s, sc)
	case *ast.ParallelStmt:
		if s.NumThreads != nil {
			c.checkExpr(s.NumThreads, sc, Scalar)
		}
		c.push(ctxParallel)
		c.checkBlock(s.Body, sc)
		c.pop()
	case *ast.SingleStmt:
		if c.worksharingBarred() {
			c.errorf(s.SingPos, "single may not be closely nested inside a %s construct", c.innermost())
		}
		c.push(ctxSingle)
		c.checkBlock(s.Body, sc)
		c.pop()
	case *ast.MasterStmt:
		c.push(ctxMaster)
		c.checkBlock(s.Body, sc)
		c.pop()
	case *ast.CriticalStmt:
		c.push(ctxCritical)
		c.checkBlock(s.Body, sc)
		c.pop()
	case *ast.BarrierStmt:
		switch c.innermost() {
		case ctxNone, ctxParallel:
			// fine: binds to the innermost team
		default:
			c.errorf(s.BarPos, "barrier may not be closely nested inside a %s construct", c.innermost())
		}
	case *ast.AtomicStmt:
		c.checkLValue(s.Target, sc)
		c.checkExpr(s.Value, sc, Scalar)
	case *ast.PforStmt:
		if c.worksharingBarred() {
			c.errorf(s.PforPos, "pfor may not be closely nested inside a %s construct", c.innermost())
		}
		c.checkExpr(s.From, sc, Scalar)
		c.checkExpr(s.To, sc, Scalar)
		body := sc.child()
		body.declare(s.Var, Scalar)
		c.push(ctxPfor)
		c.checkBlock(s.Body, body)
		c.pop()
	case *ast.SectionsStmt:
		if c.worksharingBarred() {
			c.errorf(s.SecsPos, "sections may not be closely nested inside a %s construct", c.innermost())
		}
		c.push(ctxSections)
		for _, b := range s.Bodies {
			c.checkBlock(b, sc)
		}
		c.pop()
	case *ast.InstrCC, *ast.InstrCCReturn, *ast.InstrMonoCheck,
		*ast.InstrPhaseCount, *ast.InstrConcNote:
		// Instrumentation nodes are inserted after checking.
	}
}

func (c *checker) checkLValue(lv ast.LValue, sc *scope) {
	switch lv := lv.(type) {
	case *ast.VarRef:
		kind, ok := sc.lookup(lv.Name)
		if !ok {
			c.errorf(lv.NamePos, "undefined variable %q", lv.Name)
			return
		}
		if kind == Array {
			c.errorf(lv.NamePos, "array %q used as a scalar", lv.Name)
		}
	case *ast.IndexExpr:
		kind, ok := sc.lookup(lv.Name)
		if !ok {
			c.errorf(lv.NamePos, "undefined variable %q", lv.Name)
			return
		}
		if kind == Scalar {
			c.errorf(lv.NamePos, "scalar %q indexed like an array", lv.Name)
		}
		c.checkExpr(lv.Index, sc, Scalar)
	}
}

// checkBuffer validates an MPI buffer operand that must be an array.
func (c *checker) checkArrayOperand(e ast.Expr, what string, sc *scope) {
	ref, ok := e.(*ast.VarRef)
	if !ok {
		c.errorf(e.Pos(), "%s must be an array variable", what)
		return
	}
	kind, declared := sc.lookup(ref.Name)
	if !declared {
		c.errorf(ref.NamePos, "undefined variable %q", ref.Name)
		return
	}
	if kind == Scalar {
		c.errorf(ref.NamePos, "%s must be an array, but %q is a scalar", what, ref.Name)
	}
}

func (c *checker) checkMPI(s *ast.MPIStmt, sc *scope) {
	scalarLV := func(lv ast.LValue) {
		if lv != nil {
			c.checkLValue(lv, sc)
		}
	}
	scalar := func(e ast.Expr) {
		if e != nil {
			c.checkExpr(e, sc, Scalar)
		}
	}
	switch s.Kind {
	case ast.MPIInit, ast.MPIFinalize, ast.MPIBarrier:
	case ast.MPIBcast:
		scalarLV(s.Dst)
		scalar(s.Root)
	case ast.MPIReduce, ast.MPIAllreduce, ast.MPIScan:
		scalarLV(s.Dst)
		scalar(s.Src)
		scalar(s.Root)
		// Reject unknown reduction-op names here, with a position, rather
		// than letting them surface as a runtime error mid-execution. The
		// empty string is the documented sum default.
		if _, err := mpi.ParseRedOp(s.OpName); err != nil {
			c.errorf(s.KindPos, "%s: unknown reduction op %q (want sum, min, max, or prod)", s.Kind, s.OpName)
		}
	case ast.MPIGather, ast.MPIAllgather:
		if ref, ok := s.Dst.(*ast.VarRef); ok {
			c.checkArrayOperand(ref, s.Kind.String()+" destination", sc)
		} else {
			c.errorf(s.Dst.Pos(), "%s destination must be an array variable", s.Kind)
		}
		scalar(s.Src)
	case ast.MPIScatter:
		scalarLV(s.Dst)
		c.checkArrayOperand(s.Src, "MPI_Scatter source", sc)
	case ast.MPIAlltoall:
		if ref, ok := s.Dst.(*ast.VarRef); ok {
			c.checkArrayOperand(ref, "MPI_Alltoall destination", sc)
		} else {
			c.errorf(s.Dst.Pos(), "MPI_Alltoall destination must be an array variable")
		}
		c.checkArrayOperand(s.Src, "MPI_Alltoall source", sc)
	case ast.MPISend:
		scalar(s.Src)
		scalar(s.Dest)
		scalar(s.Tag)
	case ast.MPIRecv:
		scalarLV(s.Dst)
		scalar(s.Dest)
		scalar(s.Tag)
	}
}

// checkExpr validates e; want is the kind required by the context (Unknown
// accepts anything, used by print).
func (c *checker) checkExpr(e ast.Expr, sc *scope, want VarKind) {
	switch e := e.(type) {
	case nil:
	case *ast.IntLit, *ast.BoolLit:
	case *ast.VarRef:
		kind, ok := sc.lookup(e.Name)
		if !ok {
			c.errorf(e.NamePos, "undefined variable %q", e.Name)
			return
		}
		if want == Scalar && kind == Array {
			c.errorf(e.NamePos, "array %q used as a scalar", e.Name)
		}
	case *ast.IndexExpr:
		kind, ok := sc.lookup(e.Name)
		if !ok {
			c.errorf(e.NamePos, "undefined variable %q", e.Name)
			return
		}
		if kind == Scalar {
			c.errorf(e.NamePos, "scalar %q indexed like an array", e.Name)
		}
		c.checkExpr(e.Index, sc, Scalar)
	case *ast.BinaryExpr:
		c.checkExpr(e.X, sc, Scalar)
		c.checkExpr(e.Y, sc, Scalar)
	case *ast.UnaryExpr:
		c.checkExpr(e.X, sc, Scalar)
	case *ast.CallExpr:
		c.checkCall(e, sc)
	}
}

func (c *checker) checkCall(e *ast.CallExpr, sc *scope) {
	if arity, ok := ast.Intrinsics[e.Name]; ok {
		if len(e.Args) != arity {
			c.errorf(e.NamePos, "intrinsic %s expects %d argument(s), got %d", e.Name, arity, len(e.Args))
		}
		for i, a := range e.Args {
			// len(a) takes an array; other intrinsic args are scalars.
			if e.Name == "len" && i == 0 {
				c.checkArrayOperand(a, "len argument", sc)
				continue
			}
			c.checkExpr(a, sc, Scalar)
		}
		return
	}
	callee := c.prog.Func(e.Name)
	if callee == nil {
		c.errorf(e.NamePos, "call to undefined function %q", e.Name)
		return
	}
	if len(e.Args) != len(callee.Params) {
		c.errorf(e.NamePos, "function %q expects %d argument(s), got %d",
			e.Name, len(callee.Params), len(e.Args))
	}
	for _, a := range e.Args {
		// Arguments may be scalars or arrays (arrays pass by reference);
		// only resolve names and index shapes here.
		c.checkExpr(a, sc, Unknown)
	}
}
