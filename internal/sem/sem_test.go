package sem

import (
	"strings"
	"testing"

	"parcoach/internal/ast"
	"parcoach/internal/parser"
)

// checkSrc parses and checks a full program.
func checkSrc(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Parse("t.mh", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

// checkMain wraps src in func main.
func checkMain(t *testing.T, src string) error {
	t.Helper()
	return checkSrc(t, "func main() {\n"+src+"\n}")
}

func wantErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("want error containing %q, got %v", substr, err)
	}
}

func TestValidProgram(t *testing.T) {
	err := checkSrc(t, `
func compute(n, buf) {
	var acc = 0
	for i = 0 .. n {
		acc += buf[i]
	}
	return acc
}
func main() {
	MPI_Init()
	var data[16]
	var total = 0
	parallel num_threads(4) {
		pfor i = 0 .. 16 {
			data[i] = i * rank()
		}
		single {
			total = compute(16, data)
			MPI_Allreduce(total, total, sum)
		}
	}
	print(total)
	MPI_Finalize()
}`)
	if err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestUndefinedVariable(t *testing.T) {
	wantErr(t, checkMain(t, "x = 1"), `undefined variable "x"`)
}

func TestUseBeforeDeclaration(t *testing.T) {
	wantErr(t, checkMain(t, "var y\ny = x\nvar x = 1"), `undefined variable "x"`)
}

func TestRedeclarationInSameBlock(t *testing.T) {
	wantErr(t, checkMain(t, "var x\nvar x"), "redeclared")
}

func TestShadowingInNestedBlockAllowed(t *testing.T) {
	err := checkMain(t, "var x = 1\nif x > 0 {\n var x = 2\n x = 3\n}")
	if err != nil {
		t.Errorf("shadowing must be allowed: %v", err)
	}
}

func TestLoopVariableScope(t *testing.T) {
	// Loop variable is visible in the body...
	if err := checkMain(t, "for i = 0 .. 3 { var y = i }"); err != nil {
		t.Errorf("loop var must be in scope: %v", err)
	}
	// ...but not after the loop.
	wantErr(t, checkMain(t, "for i = 0 .. 3 { }\nvar y = i"), `undefined variable "i"`)
}

func TestArrayScalarMismatch(t *testing.T) {
	wantErr(t, checkMain(t, "var a[4]\na = 3"), "array \"a\" used as a scalar")
	wantErr(t, checkMain(t, "var x = 0\nx[2] = 3"), "scalar \"x\" indexed")
	wantErr(t, checkMain(t, "var a[4]\nvar y = a + 1"), "used as a scalar")
}

func TestParamsAcceptBothShapes(t *testing.T) {
	err := checkSrc(t, `
func f(p) {
	p = p + 1
	return p[0]
}
func main() { var z = f(1) }`)
	if err != nil {
		t.Errorf("untyped params must accept both uses: %v", err)
	}
}

func TestCallChecks(t *testing.T) {
	wantErr(t, checkMain(t, "missing()"), `undefined function "missing"`)
	wantErr(t, checkSrc(t, "func f(a, b) { return 0 }\nfunc main() { f(1) }"), "expects 2 argument(s), got 1")
}

func TestIntrinsicArity(t *testing.T) {
	wantErr(t, checkMain(t, "var x = rank(3)"), "expects 0 argument(s)")
	wantErr(t, checkMain(t, "var x = max(1)"), "expects 2 argument(s)")
	if err := checkMain(t, "var a[4]\nvar n = len(a)\nvar m = min(n, abs(-2))"); err != nil {
		t.Errorf("intrinsics rejected: %v", err)
	}
	wantErr(t, checkMain(t, "var x = 1\nvar n = len(x)"), "must be an array")
}

func TestMPIBufferShapes(t *testing.T) {
	wantErr(t, checkMain(t, "var d = 0\nvar s = 0\nMPI_Gather(d, s)"), "must be an array")
	wantErr(t, checkMain(t, "var d = 0\nvar s = 0\nMPI_Scatter(d, s)"), "must be an array")
	wantErr(t, checkMain(t, "var d[4]\nvar s = 0\nMPI_Alltoall(d, s)"), "must be an array")
	if err := checkMain(t, "var d[4]\nvar s = 0\nMPI_Gather(d, s, 0)\nMPI_Scatter(s, d)\nMPI_Allgather(d, s)"); err != nil {
		t.Errorf("valid buffer shapes rejected: %v", err)
	}
}

func TestMPIUndefinedOperands(t *testing.T) {
	wantErr(t, checkMain(t, "MPI_Bcast(x)"), `undefined variable "x"`)
	wantErr(t, checkMain(t, "var x = 0\nMPI_Reduce(x, y)"), `undefined variable "y"`)
}

func TestUnknownReductionOpRejected(t *testing.T) {
	// The parser only admits the known op names from surface syntax, but the
	// AST contract is enforced here: an MPIStmt carrying an op name the
	// runtime does not know (front-end drift, programmatic construction)
	// must be rejected with a position instead of erroring mid-execution.
	prog, err := parser.Parse("t.mh", "func main() {\nvar x = 0\nMPI_Allreduce(x, x, sum)\n}")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var mutated bool
	for _, st := range prog.Funcs[0].Body.Stmts {
		if m, ok := st.(*ast.MPIStmt); ok {
			m.OpName = "avg"
			mutated = true
		}
	}
	if !mutated {
		t.Fatal("no MPIStmt found to mutate")
	}
	err = Check(prog)
	wantErr(t, err, `unknown reduction op "avg"`)
	if !strings.Contains(err.Error(), "t.mh:3") {
		t.Errorf("op error must carry the collective's position, got %v", err)
	}
}

func TestReturnInsideConstructRejected(t *testing.T) {
	wantErr(t, checkMain(t, "parallel { return }"), "branch out of a parallel")
	wantErr(t, checkMain(t, "parallel { single { return } }"), "branch out of a single")
	wantErr(t, checkMain(t, "parallel { pfor i = 0 .. 3 { return } }"), "branch out of a pfor")
}

func TestBarrierNesting(t *testing.T) {
	// Legal: directly inside parallel, or orphaned at function level.
	if err := checkMain(t, "barrier\nparallel { barrier }"); err != nil {
		t.Errorf("legal barrier rejected: %v", err)
	}
	// Illegal: closely nested in single/master/critical/pfor/sections.
	wantErr(t, checkMain(t, "parallel { single { barrier } }"), "barrier may not be closely nested inside a single")
	wantErr(t, checkMain(t, "parallel { master { barrier } }"), "inside a master")
	wantErr(t, checkMain(t, "parallel { critical { barrier } }"), "inside a critical")
	wantErr(t, checkMain(t, "parallel { pfor i = 0 .. 2 { barrier } }"), "inside a pfor")
	wantErr(t, checkMain(t, "parallel { sections { section { barrier } } }"), "inside a sections")
	// Barrier in an if directly inside parallel is still "closely nested" in
	// parallel for our purposes (the if is not a threading construct).
	if err := checkMain(t, "parallel { if rank() == 0 { barrier } }"); err != nil {
		t.Errorf("barrier under if must pass nesting check (flagged later by pword consistency): %v", err)
	}
}

func TestWorksharingNesting(t *testing.T) {
	wantErr(t, checkMain(t, "parallel { single { single { } } }"), "single may not be closely nested inside a single")
	wantErr(t, checkMain(t, "parallel { pfor i = 0 .. 2 { single { } } }"), "single may not be closely nested inside a pfor")
	wantErr(t, checkMain(t, "parallel { master { pfor i = 0 .. 2 { } } }"), "pfor may not be closely nested inside a master")
	wantErr(t, checkMain(t, "parallel { critical { sections { section { } } } }"), "sections may not be closely nested inside a critical")
	// Nested parallel resets the context: a single inside a nested parallel
	// inside a single is legal.
	if err := checkMain(t, "parallel { single { parallel { single { } } } }"); err != nil {
		t.Errorf("nested parallel must reset nesting context: %v", err)
	}
}

func TestDuplicateParams(t *testing.T) {
	wantErr(t, checkSrc(t, "func f(a, a) { return 0 }\nfunc main() { }"), "duplicate parameter")
}

func TestNestingStateResetsBetweenFunctions(t *testing.T) {
	// If the construct stack leaked across functions, the return in g would
	// be rejected.
	err := checkSrc(t, `
func f() { parallel { var x = 1 } }
func g() { return 3 }
func main() { }`)
	if err != nil {
		t.Errorf("construct nesting leaked across functions: %v", err)
	}
}

func TestErrorsAreLocated(t *testing.T) {
	err := checkMain(t, "x = 1")
	if err == nil || !strings.Contains(err.Error(), "t.mh:2") {
		t.Errorf("error must carry position, got %v", err)
	}
}
