package mhgen

import (
	"strings"
	"testing"

	"parcoach/internal/parser"
	"parcoach/internal/sem"
	"parcoach/internal/workload"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		a, b := FromSeed(seed), FromSeed(seed)
		if a.Source != b.Source {
			t.Fatalf("seed %d: sources differ", seed)
		}
		if a.Name != b.Name || a.BugLine != b.BugLine || a.Bug != b.Bug {
			t.Fatalf("seed %d: metadata differs: %+v vs %+v", seed, a, b)
		}
	}
}

func TestGeneratedProgramsAreWellFormed(t *testing.T) {
	for seed := uint64(0); seed < 120; seed++ {
		gp := FromSeed(seed)
		prog, err := parser.Parse(gp.Name+".mh", gp.Source)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if err := sem.Check(prog); err != nil {
			t.Fatalf("seed %d: sem: %v\n%s", seed, err, gp.Source)
		}
	}
}

func TestBugSiteIsLabeled(t *testing.T) {
	for _, bug := range workload.AllBugs {
		for seed := uint64(0); seed < 8; seed++ {
			gp := Generate(Config{Seed: seed, Bug: bug, Size: SizeSmall})
			if gp.BugLine == 0 {
				t.Fatalf("%s seed %d: no bug line recorded", bug, seed)
			}
			lines := strings.Split(gp.Source, "\n")
			marker := lines[gp.BugLine-1]
			if !strings.Contains(marker, "// seeded bug: "+bug.String()) {
				t.Fatalf("%s seed %d: line %d is %q, not the bug marker",
					bug, seed, gp.BugLine, marker)
			}
		}
	}
	clean := Generate(Config{Seed: 3, Bug: workload.BugNone})
	if clean.BugLine != 0 {
		t.Fatalf("clean program has BugLine %d", clean.BugLine)
	}
}

// TestFeatureCoverage locks in that the generated corpus actually spans
// the language: a generator regression that silently stops emitting a
// construct class would otherwise shrink the test surface unnoticed.
func TestFeatureCoverage(t *testing.T) {
	var all strings.Builder
	for seed := uint64(0); seed < 150; seed++ {
		all.WriteString(FromSeed(seed).Source)
	}
	corpus := all.String()
	for _, want := range []string{
		"parallel {", "parallel num_threads(", "single {", "single nowait {",
		"master {", "critical", "barrier", "atomic ", "pfor", "schedule(dynamic)",
		"sections", "section {", "while ", "for ", "else",
		"MPI_Barrier()", "MPI_Bcast(", "MPI_Reduce(", "MPI_Allreduce(",
		"MPI_Scan(", "MPI_Gather(", "MPI_Allgather(", "MPI_Scatter(",
		"MPI_Alltoall(", "MPI_Send(", "MPI_Recv(",
		"stepA", "stepB", // the mutually recursive SCC pair
	} {
		if !strings.Contains(corpus, want) {
			t.Errorf("150-seed corpus never contains %q", want)
		}
	}
}

func TestRecommendedProcs(t *testing.T) {
	if RecommendedProcs(workload.BugConcurrentSingles) != 1 ||
		RecommendedProcs(workload.BugSectionsCollectives) != 1 {
		t.Error("intra-process race classes must run on one process")
	}
	if RecommendedProcs(workload.BugNone) != 2 || RecommendedProcs(workload.BugEarlyReturn) != 2 {
		t.Error("inter-process classes must run on two processes")
	}
}

func TestReduceShrinksToKernel(t *testing.T) {
	gp := Generate(Config{Seed: 7, Bug: workload.BugRankDependentCollective})
	keep := func(src string) bool {
		prog, err := parser.Parse("r.mh", src)
		if err != nil || sem.Check(prog) != nil {
			return false
		}
		return strings.Contains(src, "MPI_Barrier()") && strings.Contains(src, "rank() == 0")
	}
	red := Reduce(gp.Source, keep)
	if !keep(red) {
		t.Fatalf("reduced program lost the property:\n%s", red)
	}
	if got, orig := strings.Count(red, "\n"), strings.Count(gp.Source, "\n"); got >= orig {
		t.Fatalf("no shrink: %d -> %d lines", orig, got)
	}
}

func TestReduceKeepsUninterestingInputUntouched(t *testing.T) {
	src := "func main() { MPI_Init()\nMPI_Finalize() }"
	if got := Reduce(src, func(string) bool { return false }); got != src {
		t.Fatalf("Reduce changed an uninteresting input: %q", got)
	}
	if got := Reduce("not a program {{{", func(string) bool { return true }); got != "not a program {{{" {
		t.Fatalf("Reduce changed an unparsable input: %q", got)
	}
}

// TestReduceMemoizesKeepOnCandidateSource pins the reduction-cost fix:
// the fixpoint loop re-offers rejected deletions verbatim on every later
// round (here, deleting print(a) out of the already-shrunk program is
// attempted in round 1 and again in round 2), and keep predicates
// typically recompile and re-run the candidate, so each distinct
// rendered source must reach the caller's predicate exactly once.
func TestReduceMemoizesKeepOnCandidateSource(t *testing.T) {
	src := "func main() {\n\tvar a = 1\n\tvar b = 2\n\tprint(a)\n}"
	calls := map[string]int{}
	keep := func(cand string) bool {
		calls[cand]++
		if _, err := parser.Parse("r.mh", cand); err != nil {
			return false
		}
		return strings.Contains(cand, "var a") && strings.Contains(cand, "print(a)")
	}
	red := Reduce(src, keep)
	if !strings.Contains(red, "var a") || !strings.Contains(red, "print(a)") || strings.Contains(red, "var b") {
		t.Fatalf("unexpected reduction:\n%s", red)
	}
	for cand, n := range calls {
		if n > 1 {
			t.Fatalf("keep evaluated %d times for a byte-identical candidate:\n%s", n, cand)
		}
	}
}

// TestShardSeedsPartition: the shards are pairwise disjoint, their
// union is exactly the unsharded range, and round-robin assignment
// keeps every bug class in every shard (FromSeed cycles the class with
// the seed).
func TestShardSeedsPartition(t *testing.T) {
	const start, n = 5, 200
	for _, shards := range []int{1, 3, 4, 7} {
		seen := make(map[uint64]int)
		for shard := 0; shard < shards; shard++ {
			classes := make(map[workload.Bug]bool)
			for _, s := range ShardSeeds(start, n, shards, shard) {
				if prev, dup := seen[s]; dup {
					t.Fatalf("shards %d: seed %d in both shard %d and %d", shards, s, prev, shard)
				}
				seen[s] = shard
				classes[FromSeed(s).Bug] = true
			}
			// Full class coverage per shard needs the stride coprime to
			// FromSeed's 10-class cycle (shards 4 sees only half the
			// residues per shard).
			coprime := shards%2 != 0 && shards%5 != 0
			if coprime && len(classes) != len(workload.AllBugs)+1 {
				t.Errorf("shards %d shard %d: covers %d of %d bug classes",
					shards, shard, len(classes), len(workload.AllBugs)+1)
			}
		}
		if len(seen) != n {
			t.Fatalf("shards %d: union has %d seeds, want %d", shards, len(seen), n)
		}
		for s := uint64(start); s < start+n; s++ {
			if _, ok := seen[s]; !ok {
				t.Fatalf("shards %d: seed %d missing from every shard", shards, s)
			}
		}
	}
}
