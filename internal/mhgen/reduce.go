package mhgen

import (
	"parcoach/internal/ast"
	"parcoach/internal/parser"
)

// Reduce greedily shrinks a MiniHybrid program while the keep predicate
// stays true, and returns the smallest version found (in the canonical
// ast rendering). It is the harness's failure-reporting aid: a 150-line
// generated program with a soundness violation shrinks to the few
// statements that actually reproduce it.
//
// The reduction alternates two greedy passes until a fixpoint: deleting
// whole functions (main is kept), and deleting individual statements
// anywhere in the tree (compound statements — ifs, loops, regions — go
// wholesale, taking their bodies with them). Every candidate is
// re-rendered and re-offered to keep, so a predicate that compiles the
// source automatically rejects candidates that no longer parse,
// scope-check, or reproduce the failure.
//
// keep must be true for src itself (otherwise src is returned unchanged)
// and should be deterministic; the reducer calls it O(statements²) times
// in the worst case. Calls are memoized on the candidate's rendered
// source: the greedy passes re-offer byte-identical candidates through
// different deletion paths (most commonly, a rejected deletion is
// retried verbatim on every subsequent fixpoint round), and keep
// predicates typically recompile and re-execute the program — by far the
// dominant cost — so each distinct candidate is evaluated exactly once.
func Reduce(src string, keep func(string) bool) string {
	prog, err := parser.Parse("reduce.mh", src)
	if err != nil || prog == nil {
		return src
	}
	memo := make(map[string]bool)
	inner := keep
	keep = func(candidate string) bool {
		if v, ok := memo[candidate]; ok {
			return v
		}
		v := inner(candidate)
		memo[candidate] = v
		return v
	}
	if base := ast.String(prog); !keep(base) {
		// The canonical rendering already behaves differently (or src was
		// not interesting to begin with): nothing safe to do.
		return src
	}

	for changed := true; changed; {
		changed = false

		// Pass 1: drop whole functions.
		for i := 0; i < len(prog.Funcs); {
			if prog.Funcs[i].Name == "main" {
				i++
				continue
			}
			saved := prog.Funcs[i]
			prog.Funcs = append(prog.Funcs[:i], prog.Funcs[i+1:]...)
			if keep(ast.String(prog)) {
				changed = true
				continue // i now indexes the next function
			}
			prog.Funcs = append(prog.Funcs[:i], append([]*ast.FuncDecl{saved}, prog.Funcs[i:]...)...)
			i++
		}

		// Pass 2: drop individual statements, innermost blocks included.
		for _, f := range prog.Funcs {
			changed = reduceBlock(prog, f.Body, keep) || changed
		}
	}
	return ast.String(prog)
}

// reduceBlock tries to delete each statement of b (recursing into nested
// blocks first, so inner deletions don't mask outer ones); reports
// whether anything was deleted.
func reduceBlock(prog *ast.Program, b *ast.Block, keep func(string) bool) bool {
	if b == nil {
		return false
	}
	changed := false
	for _, s := range b.Stmts {
		for _, nested := range nestedBlocks(s) {
			changed = reduceBlock(prog, nested, keep) || changed
		}
	}
	for i := 0; i < len(b.Stmts); {
		saved := b.Stmts[i]
		b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
		if keep(ast.String(prog)) {
			changed = true
			continue
		}
		b.Stmts = append(b.Stmts[:i], append([]ast.Stmt{saved}, b.Stmts[i:]...)...)
		i++
	}
	return changed
}

// nestedBlocks lists the blocks directly contained in s.
func nestedBlocks(s ast.Stmt) []*ast.Block {
	switch s := s.(type) {
	case *ast.Block:
		return []*ast.Block{s}
	case *ast.If:
		out := []*ast.Block{s.Then}
		switch e := s.Else.(type) {
		case *ast.Block:
			out = append(out, e)
		case *ast.If:
			out = append(out, nestedBlocks(e)...)
		}
		return out
	case *ast.For:
		return []*ast.Block{s.Body}
	case *ast.While:
		return []*ast.Block{s.Body}
	case *ast.ParallelStmt:
		return []*ast.Block{s.Body}
	case *ast.SingleStmt:
		return []*ast.Block{s.Body}
	case *ast.MasterStmt:
		return []*ast.Block{s.Body}
	case *ast.CriticalStmt:
		return []*ast.Block{s.Body}
	case *ast.PforStmt:
		return []*ast.Block{s.Body}
	case *ast.SectionsStmt:
		return s.Bodies
	}
	return nil
}
