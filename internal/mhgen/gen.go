package mhgen

import (
	"fmt"

	"parcoach/internal/workload"
)

// The generator's correctness argument for clean programs rests on a
// per-variable "uniform" flag: a variable is uniform when its value is
// guaranteed identical on every process (and, inside a parallel region,
// on every team thread reading it). The invariants that keep a clean
// program clean are:
//
//   - conditions guarding any collective or team-synchronizing construct
//     are built only from uniform variables, literals and size();
//   - inside a parallel region, shared (sequential-level) variables are
//     never written except the "mutable" set chosen at region entry,
//     which is permanently demoted to non-uniform — so uniform shared
//     variables are read-only and race-free for the whole region;
//   - collectives inside parallel regions appear only in non-nowait
//     single bodies, with destinations that are either body-local or
//     mutable shared (a private region variable written by the elected
//     thread only would silently diverge across the team);
//   - returns appear only at the sequential tail of a function, and
//     recursion decreases a uniform counter guarded by `n > 0`.
//
// Everything outside those paths — rank-dependent branches, racy shared
// updates, worksharing loops — is free to be arbitrarily non-uniform,
// which is what gives the static phase realistic work to filter.

// varInfo is one scalar in scope.
type varInfo struct {
	name    string
	uniform bool
	locked  bool // loop counters: never picked as a write target
	idx     int  // owning scope index (stable while in scope)
}

// arrInfo is one array in scope.
type arrInfo struct {
	name    string
	size    int
	uniform bool
	idx     int
}

type scope struct {
	scalars []*varInfo
	arrays  []*arrInfo
}

// helperSpec describes a generated helper function.
type helperSpec struct {
	name   string
	params int
	coll   bool // contains collectives (transitively)
	det    bool // no rank()/tid(): uniform args give a uniform result
	flat   bool // no omp constructs or barriers: callable from single bodies
}

type gen struct {
	*rng
	e   *workload.Emitter
	cfg Config

	nv, na, nl, nh int // name counters: scalars, arrays, loop counters, halo bufs

	scopes  []*scope
	base    int // lookups see scopes[base:] (raised for self-contained bodies)
	parBase int // scope index where the current parallel region begins; -1 at sequential level
	inPar   int
	mutable map[*varInfo]bool // shared scalars writable inside the current region
	mutArr  map[*arrInfo]bool
	noRank  bool // emitting a det helper body: no rank()/tid() atoms
	noOmp   bool // emitting a flat helper: no parallel regions (they are
	// callable from single bodies, where team constructs would bind to the
	// caller's team and deadlock it)

	budget   int
	maxDepth int
	// condDepth counts enclosing if arms. Loop bodies always execute (all
	// generated bounds are >= 1 iteration), but an if arm may not, so a
	// uniform-flag *promotion* inside one would leak out even when the arm
	// was dynamically skipped and the variable is still divergent.
	// Promotions are therefore gated on condDepth == 0; demotions are
	// always safe.
	condDepth int

	pures []*helperSpec
	colls []*helperSpec

	planted bool
}

func newGen(cfg Config) *gen {
	g := &gen{
		rng:     newRng(cfg.Seed),
		e:       &workload.Emitter{},
		cfg:     cfg,
		parBase: -1,
	}
	if cfg.Size == SizeMedium {
		g.budget, g.maxDepth = 150, 3
	} else {
		g.budget, g.maxDepth = 80, 2
	}
	return g
}

//
// Scopes and variable pools
//

func (g *gen) push() { g.scopes = append(g.scopes, &scope{}) }
func (g *gen) pop()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *gen) top() *scope { return g.scopes[len(g.scopes)-1] }

func (g *gen) newScalar(uniform bool) *varInfo {
	v := &varInfo{name: fmt.Sprintf("v%d", g.nv), uniform: uniform, idx: len(g.scopes) - 1}
	g.nv++
	g.top().scalars = append(g.top().scalars, v)
	return v
}

func (g *gen) newArray(size int, uniform bool) *arrInfo {
	a := &arrInfo{name: fmt.Sprintf("a%d", g.na), size: size, uniform: uniform, idx: len(g.scopes) - 1}
	g.na++
	g.top().arrays = append(g.top().arrays, a)
	return a
}

// scalars returns the visible scalars matching pred.
func (g *gen) scalars(pred func(*varInfo) bool) []*varInfo {
	var out []*varInfo
	for _, sc := range g.scopes[g.base:] {
		for _, v := range sc.scalars {
			if pred(v) {
				out = append(out, v)
			}
		}
	}
	return out
}

func (g *gen) arrays(pred func(*arrInfo) bool) []*arrInfo {
	var out []*arrInfo
	for _, sc := range g.scopes[g.base:] {
		for _, a := range sc.arrays {
			if pred(a) {
				out = append(out, a)
			}
		}
	}
	return out
}

// writableScalars are valid assignment targets here: outside parallel any
// unlocked visible scalar; inside, region-locals and the mutable set.
func (g *gen) writableScalars() []*varInfo {
	return g.scalars(func(v *varInfo) bool {
		if v.locked {
			return false
		}
		if g.inPar == 0 || v.idx >= g.parBase {
			return true
		}
		return g.mutable[v]
	})
}

func (g *gen) writableArrays() []*arrInfo {
	return g.arrays(func(a *arrInfo) bool {
		if g.inPar == 0 || a.idx >= g.parBase {
			return true
		}
		return g.mutArr[a]
	})
}

//
// Expressions (emitted as strings)
//

func (g *gen) lit() string { return fmt.Sprint(g.n(10)) }

// uniformAtom yields a process+team-uniform atom.
func (g *gen) uniformAtom() string {
	pool := g.scalars(func(v *varInfo) bool { return v.uniform })
	switch c := g.n(4 + min(len(pool), 4)); {
	case c == 0:
		return "size()"
	case c < 4 || len(pool) == 0:
		return g.lit()
	default:
		return pick(g.rng, pool).name
	}
}

// uniformExpr builds a uniform arithmetic expression.
func (g *gen) uniformExpr(depth int) string {
	if depth <= 0 || g.chance(40) {
		return g.uniformAtom()
	}
	x, y := g.uniformExpr(depth-1), g.uniformAtom()
	switch g.n(5) {
	case 0:
		return x + " + " + y
	case 1:
		return x + " - " + y
	case 2:
		return x + " * " + fmt.Sprint(g.rangeIn(1, 3))
	case 3:
		return x + " % " + fmt.Sprint(g.rangeIn(2, 8))
	default:
		return fmt.Sprintf("min(%s, %s)", x, y)
	}
}

// uniformCond builds a uniform comparison for branches that may guard
// collectives or team synchronization.
func (g *gen) uniformCond() string {
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	return fmt.Sprintf("%s %s %s", g.uniformExpr(1), pick(g.rng, ops), g.uniformAtom())
}

// anyAtom yields an arbitrary (possibly rank- or thread-dependent) atom.
func (g *gen) anyAtom() string {
	pool := g.scalars(func(v *varInfo) bool { return true })
	c := g.n(8)
	switch {
	case c == 0 && !g.noRank:
		return "rank()"
	case c == 1 && !g.noRank && g.inPar > 0:
		return "tid()"
	case c == 2:
		return "size()"
	case c <= 4 || len(pool) == 0:
		return g.lit()
	default:
		return pick(g.rng, pool).name
	}
}

// anyExpr builds an arbitrary scalar expression; the returned flag is a
// conservative "this is uniform" judgement (false unless every atom was).
func (g *gen) anyExpr(depth int) string {
	if depth <= 0 || g.chance(35) {
		return g.anyAtom()
	}
	x, y := g.anyExpr(depth-1), g.anyAtom()
	switch g.n(6) {
	case 0:
		return x + " + " + y
	case 1:
		return x + " - " + y
	case 2:
		return x + " * " + fmt.Sprint(g.rangeIn(1, 3))
	case 3:
		return x + " / " + fmt.Sprint(g.rangeIn(2, 5))
	case 4:
		return x + " % " + fmt.Sprint(g.rangeIn(2, 8))
	default:
		if arrs := g.arrays(func(*arrInfo) bool { return true }); len(arrs) > 0 && g.chance(50) {
			a := pick(g.rng, arrs)
			return fmt.Sprintf("%s[%s]", a.name, g.indexExpr(a))
		}
		return fmt.Sprintf("max(%s, %s)", x, y)
	}
}

// nonUniformCond builds a condition that genuinely varies by rank or
// thread (for branches that must stay free of sync and collectives).
func (g *gen) nonUniformCond() string {
	base := "rank()"
	if g.noRank {
		base = g.anyAtom()
	} else if g.inPar > 0 && g.chance(40) {
		base = "tid()"
	}
	switch g.n(3) {
	case 0:
		return fmt.Sprintf("%s %% %d == %d", base, g.rangeIn(2, 3), g.n(2))
	case 1:
		return fmt.Sprintf("%s > %s", base, g.uniformAtom())
	default:
		return fmt.Sprintf("%s + %s < %s", base, g.anyAtom(), g.uniformAtom())
	}
}

// indexExpr yields an always-in-bounds index for a.
func (g *gen) indexExpr(a *arrInfo) string {
	switch g.n(3) {
	case 0:
		return fmt.Sprint(g.n(a.size))
	case 1:
		return fmt.Sprintf("abs(%s) %% %d", g.anyAtom(), a.size)
	default:
		return fmt.Sprintf("abs(%s + %s) %% %d", g.anyAtom(), g.lit(), a.size)
	}
}

//
// Program structure
//

// program emits helpers then main, planting cfg.Bug at a labeled site.
func (g *gen) program() {
	nPure, nColl := g.rangeIn(1, 2), g.rangeIn(1, 2)
	wantSCC := g.chance(40)
	if g.cfg.Size == SizeMedium {
		nPure, nColl = g.rangeIn(2, 3), g.rangeIn(2, 3)
		wantSCC = true
	}
	for i := 0; i < nPure; i++ {
		g.emitPureHelper(i)
	}
	if wantSCC {
		g.emitSCCPair()
	}
	// The planted bug lives in main, or (for the inter-process classes)
	// sometimes in a dedicated helper main calls unconditionally.
	bugInHelper := false
	switch g.cfg.Bug {
	case workload.BugRankDependentCollective, workload.BugMismatchedKinds,
		workload.BugMultithreadedCollective, workload.BugConcurrentSingles,
		workload.BugSectionsCollectives:
		bugInHelper = g.chance(35)
	}
	for i := 0; i < nColl; i++ {
		g.emitCollHelper(i, bugInHelper && i == nColl-1)
	}
	g.emitMain(!bugInHelper && g.cfg.Bug != workload.BugNone)
}

// emitPureHelper emits a scalar compute helper (no MPI, no omp), possibly
// deterministic (no rank/tid) and possibly self-recursive.
func (g *gen) emitPureHelper(i int) {
	det := i == 0 || g.chance(40)
	spec := &helperSpec{name: fmt.Sprintf("calc%d", i), params: 2, det: det, flat: true}
	g.e.Open("func %s(n, x) {", spec.name)
	g.push()
	g.noRank = det
	n := &varInfo{name: "n", uniform: true, locked: true, idx: len(g.scopes) - 1}
	x := &varInfo{name: "x", idx: len(g.scopes) - 1}
	g.top().scalars = append(g.top().scalars, n, x)
	acc := g.newScalar(false)
	g.e.Line("var %s = x * %d + n", acc.name, g.rangeIn(1, 3))
	for k := g.rangeIn(1, 2); k > 0; k-- {
		g.computeStmt(true)
	}
	if g.chance(55) {
		// Bounded self-recursion on the uniform counter.
		g.e.Open("if n > 0 {")
		g.push()
		g.e.Line("%s = %s + %s(n - 1, %s)", acc.name, acc.name, spec.name, g.anyExpr(1))
		g.pop()
		g.e.Close()
	}
	g.e.Line("return %s + n", acc.name)
	g.noRank = false
	g.pop()
	g.e.Close()
	g.e.Line("")
	g.pures = append(g.pures, spec)
}

// emitSCCPair emits two mutually recursive collective-bearing helpers, so
// summary computation walks a non-trivial SCC.
func (g *gen) emitSCCPair() {
	a := &helperSpec{name: "stepA", params: 1, coll: true, flat: true}
	b := &helperSpec{name: "stepB", params: 1, coll: true, flat: true}
	emit := func(self, other *helperSpec, kind string) {
		g.e.Open("func %s(n) {", self.name)
		g.push()
		g.top().scalars = append(g.top().scalars,
			&varInfo{name: "n", uniform: true, locked: true, idx: len(g.scopes) - 1})
		atom := g.anyAtom()
		acc := g.newScalar(false)
		g.e.Line("var %s = n * %d + %s", acc.name, g.rangeIn(1, 4), atom)
		g.e.Open("if n > 0 {")
		g.push()
		switch kind {
		case "allreduce":
			g.e.Line("MPI_Allreduce(%s, %s + n, sum)", acc.name, acc.name)
		case "barrier":
			g.e.Line("MPI_Barrier()")
		default:
			g.e.Line("MPI_Bcast(%s)", acc.name)
		}
		g.e.Line("%s = %s + %s(n - 1)", acc.name, acc.name, other.name)
		g.pop()
		g.e.Close()
		g.e.Line("return %s", acc.name)
		g.pop()
		g.e.Close()
		g.e.Line("")
	}
	kinds := []string{"allreduce", "barrier", "bcast"}
	emit(a, b, pick(g.rng, kinds))
	emit(b, a, pick(g.rng, kinds))
	g.colls = append(g.colls, a) // main calls stepA; stepB is reached through it
}

// emitCollHelper emits a collective-bearing helper called from main's
// sequential level; withBug plants the configured bug in its body.
func (g *gen) emitCollHelper(i int, withBug bool) {
	spec := &helperSpec{name: fmt.Sprintf("phase%d", i), params: 1, coll: true, flat: true}
	g.noOmp = true
	defer func() { g.noOmp = false }()
	g.e.Open("func %s(n) {", spec.name)
	g.push()
	g.top().scalars = append(g.top().scalars,
		&varInfo{name: "n", uniform: true, locked: true, idx: len(g.scopes) - 1})
	u := g.newScalar(true)
	g.e.Line("var %s = n + %d", u.name, g.rangeIn(1, 5))
	wInit := g.anyExpr(1)
	w := g.newScalar(false)
	g.e.Line("var %s = %s", w.name, wInit)
	segs := g.rangeIn(2, 3)
	bugAt := -1
	if withBug {
		bugAt = g.n(segs + 1)
	}
	for s := 0; s <= segs; s++ {
		if s == bugAt {
			g.plantBug()
			continue
		}
		if s == segs {
			break
		}
		g.seqSegment(1, true)
	}
	g.e.Line("return %s + %s", u.name, w.name)
	g.pop()
	g.e.Close()
	g.e.Line("")
	if g.planted && withBug {
		switch g.cfg.Bug {
		case workload.BugMultithreadedCollective, workload.BugConcurrentSingles,
			workload.BugSectionsCollectives:
			spec.flat = false // the wrapped parallel region makes it non-flat
		}
	}
	g.colls = append(g.colls, spec)
}

// emitMain emits main: MPI_Init, a preamble, the segment sequence with
// one unconditional call to every collective helper, the planted bug (if
// hosted here), and the MPI_Finalize tail.
func (g *gen) emitMain(withBug bool) {
	g.e.Open("func main() {")
	g.push()
	g.e.Line("MPI_Init()")
	r := g.newScalar(false)
	g.e.Line("var %s = rank() + 1", r.name)
	u := g.newScalar(true)
	g.e.Line("var %s = size() + %d", u.name, g.rangeIn(1, 4))
	a := g.newArray(pick(g.rng, []int{4, 8}), true)
	g.e.Line("var %s[%d]", a.name, a.size)

	segs := g.rangeIn(4, 6)
	if g.cfg.Size == SizeMedium {
		segs = g.rangeIn(6, 9)
	}
	// Reserve one slot per collective helper for its guaranteed call.
	calls := make([]int, len(g.colls))
	for i := range calls {
		calls[i] = g.n(segs)
	}
	bugAt := -1
	if withBug {
		bugAt = g.n(segs + 1)
	}
	for s := 0; s <= segs; s++ {
		if s == bugAt {
			g.plantBug()
		}
		if s == segs {
			break
		}
		for i, at := range calls {
			if at == s {
				g.emitHelperCall(g.colls[i])
			}
		}
		g.seqSegment(g.maxDepth, true)
	}
	if g.chance(60) {
		g.e.Line("print(%s, %s)", r.name, u.name)
	}
	g.e.Line("MPI_Finalize()")
	g.e.Line("return 0")
	g.pop()
	g.e.Close()
}

// emitHelperCall emits the unconditional sequential-level call of a
// collective helper with a uniform argument.
func (g *gen) emitHelperCall(h *helperSpec) {
	v := g.newScalar(false)
	g.e.Line("var %s = %s(%d)", v.name, h.name, g.rangeIn(1, 3))
}

// plantBug emits the configured bug class at the current sequential
// emission point, using the shared workload vocabulary. Threading bugs
// are wrapped in their own parallel region.
func (g *gen) plantBug() {
	bug := g.cfg.Bug
	v := g.bugVar()
	switch bug {
	case workload.BugMultithreadedCollective, workload.BugConcurrentSingles,
		workload.BugSectionsCollectives:
		g.e.Open("parallel {")
		g.e.SeedThreadingBug(bug, v.name)
		g.e.Close()
	case workload.BugEarlyReturn:
		g.e.SeedEarlyReturnBug(bug, v.name)
	case workload.BugWrongRoot, workload.BugWrongOp, workload.BugTornBuffer:
		// Value bugs: structurally matched collectives with wrong
		// arguments or a racy source buffer (the torn-buffer pattern
		// brings its own parallel region).
		g.e.SeedValueBug(bug, v.name)
	default:
		g.e.SeedProcessBug(bug, v.name)
	}
	v.uniform = false // the buggy collectives write it divergently
	g.planted = true
}

// bugVar picks (or declares) a sequential-level scalar for the bug
// pattern to use.
func (g *gen) bugVar() *varInfo {
	if pool := g.writableScalars(); len(pool) > 0 {
		return pick(g.rng, pool)
	}
	v := g.newScalar(false)
	g.e.Line("var %s = %s", v.name, g.lit())
	return v
}

// promote marks v uniform if the current emission point executes
// unconditionally; an already-uniform variable stays uniform (an if arm
// with a uniform guard rewrites it on all processes or none).
func (g *gen) promote(v *varInfo) {
	v.uniform = v.uniform || g.condDepth == 0
}

// inArm runs body as a conditionally-executed arm.
func (g *gen) inArm(body func()) {
	g.condDepth++
	g.push()
	body()
	g.pop()
	g.condDepth--
}

//
// Sequential-level segments
//

// seqSegment emits one program segment at sequential (non-parallel)
// level. collOK gates collectives and parallel regions: it is true only
// on the uniform unconditional path.
func (g *gen) seqSegment(depth int, collOK bool) {
	if g.budget <= 0 {
		return
	}
	g.budget--
	type choice struct {
		weight int
		emit   func()
	}
	choices := []choice{
		{30, func() { g.computeStmt(true) }},
		{8, func() { g.emitPrint() }},
	}
	if collOK {
		choices = append(choices,
			choice{22, func() { g.emitCollective(false) }},
			choice{10, func() { g.emitHalo() }},
		)
		if g.inPar == 0 && !g.noOmp {
			choices = append(choices, choice{16, func() { g.emitParallel(depth) }})
		}
		if depth > 0 {
			choices = append(choices,
				choice{10, func() { g.emitSeqUniformIf(depth, collOK) }},
				choice{9, func() { g.emitSeqFor(depth, collOK) }},
				choice{5, func() { g.emitSeqWhile(depth, collOK) }},
			)
		}
		if g.chance(12) {
			choices = append(choices, choice{8, func() { g.emitFPPattern() }})
		}
	}
	if depth > 0 {
		choices = append(choices, choice{8, func() { g.emitSeqNonUniformIf() }})
	}
	total := 0
	for _, c := range choices {
		total += c.weight
	}
	roll := g.n(total)
	for _, c := range choices {
		if roll < c.weight {
			c.emit()
			return
		}
		roll -= c.weight
	}
}

// emitSeqUniformIf branches on a uniform condition; both arms may hold
// collectives.
func (g *gen) emitSeqUniformIf(depth int, collOK bool) {
	g.e.Open("if %s {", g.uniformCond())
	g.inArm(func() {
		for k := g.rangeIn(1, 2); k > 0; k-- {
			g.seqSegment(depth-1, collOK)
		}
	})
	if g.chance(45) {
		g.e.ElseOpen()
		g.inArm(func() { g.seqSegment(depth-1, collOK) })
	}
	g.e.Close()
}

// emitSeqNonUniformIf branches on a rank-dependent condition; the arms
// stay free of collectives and synchronization.
func (g *gen) emitSeqNonUniformIf() {
	g.e.Open("if %s {", g.nonUniformCond())
	g.inArm(func() {
		for k := g.rangeIn(1, 2); k > 0; k-- {
			g.computeStmt(false)
		}
	})
	if g.chance(35) {
		g.e.ElseOpen()
		g.inArm(func() { g.computeStmt(false) })
	}
	g.e.Close()
}

func (g *gen) emitSeqFor(depth int, collOK bool) {
	g.e.Open("for i%d = 0 .. %d {", g.nl, g.rangeIn(2, 4))
	iv := &varInfo{name: fmt.Sprintf("i%d", g.nl), uniform: true, locked: true}
	g.nl++
	g.push()
	iv.idx = len(g.scopes) - 1
	g.top().scalars = append(g.top().scalars, iv)
	for k := g.rangeIn(1, 2); k > 0; k-- {
		g.seqSegment(depth-1, collOK)
	}
	g.pop()
	g.e.Close()
}

func (g *gen) emitSeqWhile(depth int, collOK bool) {
	w := &varInfo{name: fmt.Sprintf("w%d", g.nl), uniform: true, locked: true}
	g.nl++
	g.e.Line("var %s = %d", w.name, g.rangeIn(1, 3))
	w.idx = len(g.scopes) - 1
	g.top().scalars = append(g.top().scalars, w)
	g.e.Open("while %s > 0 {", w.name)
	g.push()
	g.seqSegment(depth-1, collOK)
	g.e.Line("%s = %s - 1", w.name, w.name)
	g.pop()
	g.e.Close()
}

// emitFPPattern guards a collective by a deterministic helper result:
// statically tainted (call results are conservative), dynamically
// uniform — the false positive the planted CC checks clear at run time.
func (g *gen) emitFPPattern() {
	det := g.detPure()
	if det == nil {
		g.computeStmt(true)
		return
	}
	v := g.newScalar(true) // dynamically uniform: det helper, uniform args
	g.e.Line("var %s = %s(%d, %d)", v.name, det.name, g.rangeIn(1, 2), g.n(5))
	g.e.Open("if %s %% 2 == 0 {", v.name)
	g.inArm(func() { g.emitCollective(false) })
	g.e.Close()
}

func (g *gen) detPure() *helperSpec {
	for _, h := range g.pures {
		if h.det {
			return h
		}
	}
	return nil
}

// emitHalo emits a matched point-to-point exchange between ranks 0 and 1.
func (g *gen) emitHalo() {
	h := g.newScalar(false)
	g.e.Line("var %s = %s", h.name, g.lit())
	tag := g.n(9)
	g.e.Open("if size() >= 2 {")
	g.push()
	g.e.Open("if rank() == 0 {")
	g.e.Line("MPI_Send(%s, 1, %d)", g.anyExpr(1), tag)
	g.e.Close()
	g.e.Open("if rank() == 1 {")
	g.e.Line("MPI_Recv(%s, 0, %d)", h.name, tag)
	g.e.Close()
	g.pop()
	g.e.Close()
}

//
// Parallel regions (clean)
//

// emitParallel opens a parallel region and fills it with team segments.
// Shared scalars/arrays selected into the mutable set become writable
// inside and permanently non-uniform.
func (g *gen) emitParallel(depth int) {
	clause := ""
	if g.chance(30) {
		clause = fmt.Sprintf(" num_threads(%d)", g.rangeIn(2, 3))
	}
	g.e.Open("parallel%s {", clause)
	savedPar, savedMut, savedMutArr := g.parBase, g.mutable, g.mutArr
	g.parBase = len(g.scopes)
	g.inPar++
	g.mutable = make(map[*varInfo]bool)
	g.mutArr = make(map[*arrInfo]bool)
	for _, v := range g.scalars(func(v *varInfo) bool { return !v.locked }) {
		if g.chance(35) {
			g.mutable[v] = true
			v.uniform = false
		}
	}
	for _, a := range g.arrays(func(*arrInfo) bool { return true }) {
		if g.chance(35) {
			g.mutArr[a] = true
			a.uniform = false
		}
	}
	g.push()
	for k := g.rangeIn(2, 4); k > 0 && g.budget > 0; k-- {
		g.parSegment(depth - 1)
	}
	g.pop()
	g.inPar--
	g.parBase, g.mutable, g.mutArr = savedPar, savedMut, savedMutArr
	g.e.Close()
}

// parSegment emits one construct inside a parallel region on the
// team-uniform path.
func (g *gen) parSegment(depth int) {
	if g.budget <= 0 {
		return
	}
	g.budget--
	type choice struct {
		weight int
		emit   func()
	}
	choices := []choice{
		{20, func() { g.emitSingleColl() }},
		{8, func() { g.emitSingleNowait() }},
		{7, func() { g.emitMaster() }},
		{10, func() { g.e.Line("barrier") }},
		{10, func() { g.emitPfor() }},
		{7, func() { g.emitSections() }},
		{8, func() { g.emitCritical() }},
		{6, func() { g.emitAtomic() }},
		{14, func() { g.computeStmt(true) }},
	}
	if depth > 0 {
		choices = append(choices,
			choice{7, func() { g.emitParUniformIf(depth) }},
			choice{6, func() { g.emitParFor(depth) }},
			choice{4, func() { g.emitParNonUniformIf() }},
		)
		if g.inPar == 1 && g.chance(25) {
			choices = append(choices, choice{4, func() { g.emitNestedParallel() }})
		}
	}
	total := 0
	for _, c := range choices {
		total += c.weight
	}
	roll := g.n(total)
	for _, c := range choices {
		if roll < c.weight {
			c.emit()
			return
		}
		roll -= c.weight
	}
}

// emitSingleColl emits a non-nowait single whose elected thread runs
// collectives (and optionally a flat collective helper).
func (g *gen) emitSingleColl() {
	g.e.Open("single {")
	g.push()
	if g.inPar == 1 {
		for k := g.rangeIn(1, 2); k > 0; k-- {
			g.emitCollective(true)
		}
		if g.chance(25) {
			if h := g.flatColl(); h != nil {
				v := g.newScalar(false)
				g.e.Line("var %s = %s(%d)", v.name, h.name, g.rangeIn(1, 2))
			}
		}
	} else {
		// Collectives stay out of nested teams (a single per inner team
		// would execute once per team, i.e. several times per process).
		g.computeStmt(true)
	}
	if g.chance(30) {
		g.computeStmt(true)
	}
	g.pop()
	g.e.Close()
}

func (g *gen) flatColl() *helperSpec {
	var pool []*helperSpec
	for _, h := range g.colls {
		if h.flat {
			pool = append(pool, h)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	return pick(g.rng, pool)
}

// emitSingleNowait emits a nowait single with a self-contained compute
// body (fresh locals only — stragglers must not race uniform state).
func (g *gen) emitSingleNowait() {
	g.e.Open("single nowait {")
	g.selfContained(func() {
		init := g.anyExpr(1)
		v := g.newScalar(false)
		g.e.Line("var %s = %s", v.name, init)
		g.computeStmt(true)
	})
	g.e.Close()
}

// emitMaster emits a master block (no implied barrier): plain compute.
func (g *gen) emitMaster() {
	g.e.Open("master {")
	g.push()
	g.computeStmt(true)
	g.pop()
	g.e.Close()
}

// emitPfor emits a worksharing loop; bodies compute on fresh locals and
// may scatter into a mutable shared array.
func (g *gen) emitPfor() {
	sched := ""
	if g.chance(35) {
		sched = " schedule(dynamic)"
	}
	nowait := ""
	if g.chance(25) {
		nowait = " nowait"
	}
	iv := &varInfo{name: fmt.Sprintf("i%d", g.nl)}
	g.nl++
	// Pick a mutable shared target before the body scope closes over the
	// self-contained view (frozen shared state stays untouchable).
	var target *arrInfo
	if arrs := g.arrays(func(a *arrInfo) bool { return g.mutArr[a] }); len(arrs) > 0 && g.chance(60) {
		target = pick(g.rng, arrs)
	}
	g.e.Open("pfor%s%s %s = 0 .. %d {", sched, nowait, iv.name, g.rangeIn(2, 6))
	g.selfContained(func() {
		iv.idx = len(g.scopes) - 1
		iv.locked = true
		g.top().scalars = append(g.top().scalars, iv)
		atom := g.anyAtom()
		v := g.newScalar(false)
		g.e.Line("var %s = %s * %d + %s", v.name, iv.name, g.rangeIn(1, 3), atom)
		if target != nil {
			g.e.Line("%s[%s %% %d] = %s", target.name, iv.name, target.size, v.name)
		}
	})
	g.e.Close()
}

// emitSections distributes compute sections across the team.
func (g *gen) emitSections() {
	nowait := ""
	if g.chance(25) {
		nowait = " nowait"
	}
	g.e.Open("sections%s {", nowait)
	for k := g.rangeIn(2, 3); k > 0; k-- {
		g.e.Open("section {")
		g.selfContained(func() {
			init := g.anyExpr(1)
			v := g.newScalar(false)
			g.e.Line("var %s = %s", v.name, init)
			g.computeStmt(true)
		})
		g.e.Close()
	}
	g.e.Close()
}

// emitCritical emits the classic guarded shared update.
func (g *gen) emitCritical() {
	name := ""
	if g.chance(40) {
		name = fmt.Sprintf("(c%d)", g.n(2))
	}
	g.e.Open("critical%s {", name)
	g.push()
	if pool := g.writableScalars(); len(pool) > 0 {
		v := pick(g.rng, pool)
		g.e.Line("%s = %s + %s", v.name, v.name, g.anyExpr(1))
		v.uniform = false
	} else {
		g.computeStmt(true)
	}
	g.pop()
	g.e.Close()
}

func (g *gen) emitAtomic() {
	pool := g.scalars(func(v *varInfo) bool { return g.mutable[v] })
	if len(pool) == 0 {
		g.computeStmt(true)
		return
	}
	op := "+="
	if g.chance(30) {
		op = "-="
	}
	g.e.Line("atomic %s %s %s", pick(g.rng, pool).name, op, g.anyExpr(1))
}

// emitParUniformIf branches the whole team together (uniform condition
// over frozen state), so singles and barriers inside stay safe.
func (g *gen) emitParUniformIf(depth int) {
	g.e.Open("if %s {", g.uniformCond())
	g.inArm(func() {
		for k := g.rangeIn(1, 2); k > 0; k-- {
			g.parSegment(depth - 1)
		}
	})
	if g.chance(35) {
		g.e.ElseOpen()
		g.inArm(func() { g.parSegment(depth - 1) })
	}
	g.e.Close()
}

// emitParNonUniformIf: threads diverge, so the body is pure compute.
func (g *gen) emitParNonUniformIf() {
	g.e.Open("if %s {", g.nonUniformCond())
	g.inArm(func() { g.computeStmt(false) })
	g.e.Close()
}

func (g *gen) emitParFor(depth int) {
	iv := &varInfo{name: fmt.Sprintf("i%d", g.nl), uniform: true, locked: true}
	g.nl++
	g.e.Open("for %s = 0 .. %d {", iv.name, g.rangeIn(2, 3))
	g.push()
	iv.idx = len(g.scopes) - 1
	g.top().scalars = append(g.top().scalars, iv)
	for k := g.rangeIn(1, 2); k > 0; k-- {
		g.parSegment(depth - 1)
	}
	g.pop()
	g.e.Close()
}

// emitNestedParallel forks inner teams with self-contained bodies (no
// collectives: a single per inner team would run once per team).
func (g *gen) emitNestedParallel() {
	g.e.Open("parallel num_threads(2) {")
	savedPar := g.parBase
	g.parBase = len(g.scopes)
	g.inPar++
	g.selfContained(func() {
		v := g.newScalar(false)
		g.e.Line("var %s = tid() + %s", v.name, g.lit())
		g.computeStmt(true)
		if g.chance(50) {
			g.e.Line("barrier")
			g.computeStmt(true)
		}
	})
	g.inPar--
	g.parBase = savedPar
	g.e.Close()
}

// selfContained runs body in a scope that can only see (and write)
// variables declared inside it — used for nowait, worksharing and
// nested-team bodies whose execution overlaps other constructs.
func (g *gen) selfContained(body func()) {
	savedBase := g.base
	g.base = len(g.scopes)
	g.push()
	body()
	g.pop()
	g.base = savedBase
}

//
// Compute statements and collectives
//

// computeStmt emits one non-synchronizing statement. pathUniform is
// false under rank- or thread-divergent control flow, where every write
// target loses its uniform flag regardless of the value written.
func (g *gen) computeStmt(pathUniform bool) {
	switch g.n(10) {
	case 0, 1: // fresh scalar
		expr := g.anyExpr(2)
		v := g.newScalar(false)
		g.e.Line("var %s = %s", v.name, expr)
	case 2: // fresh array
		if g.inPar == 0 {
			a := g.newArray(pick(g.rng, []int{4, 8, 16}), true)
			g.e.Line("var %s[%d]", a.name, a.size)
			return
		}
		g.emitAssign(pathUniform)
	case 3: // uniform refresh of a sequential scalar
		if g.inPar == 0 {
			if pool := g.writableScalars(); len(pool) > 0 && pathUniform {
				v := pick(g.rng, pool)
				g.e.Line("%s = %s", v.name, g.uniformExpr(1))
				g.promote(v)
				return
			}
		}
		g.emitAssign(pathUniform)
	case 4: // array element write
		if pool := g.writableArrays(); len(pool) > 0 {
			a := pick(g.rng, pool)
			g.e.Line("%s[%s] = %s", a.name, g.indexExpr(a), g.anyExpr(1))
			a.uniform = false
			return
		}
		g.emitAssign(pathUniform)
	case 5: // pure helper call
		if len(g.pures) > 0 {
			h := pick(g.rng, g.pures)
			if g.noRank && !h.det {
				g.emitAssign(pathUniform)
				return
			}
			arg := g.anyExpr(1)
			v := g.newScalar(false)
			g.e.Line("var %s = %s(%d, %s)", v.name, h.name, g.rangeIn(1, 2), arg)
			return
		}
		g.emitAssign(pathUniform)
	default:
		g.emitAssign(pathUniform)
	}
}

func (g *gen) emitAssign(pathUniform bool) {
	pool := g.writableScalars()
	if len(pool) == 0 {
		init := g.anyExpr(1)
		v := g.newScalar(false)
		g.e.Line("var %s = %s", v.name, init)
		return
	}
	v := pick(g.rng, pool)
	op := pick(g.rng, []string{"=", "+=", "-="})
	g.e.Line("%s %s %s", v.name, op, g.anyExpr(2))
	v.uniform = false
	_ = pathUniform
}

func (g *gen) emitPrint() {
	g.e.Line("print(%s)", g.anyExpr(1))
}

// collDst picks a destination scalar for a collective. Inside a single
// body only body-locals and mutable shared scalars qualify (a private
// region variable written by the elected thread alone would diverge
// across the team); a fresh local is declared when nothing fits.
func (g *gen) collDst(inSingle bool) *varInfo {
	var pool []*varInfo
	if inSingle {
		singleBase := len(g.scopes) - 1
		pool = g.scalars(func(v *varInfo) bool {
			if v.locked {
				return false
			}
			return v.idx >= singleBase || g.mutable[v]
		})
	} else {
		pool = g.writableScalars()
	}
	if len(pool) == 0 {
		v := g.newScalar(true)
		g.e.Line("var %s = %s", v.name, g.lit())
		return v
	}
	return pick(g.rng, pool)
}

// collArr picks (or declares) an array operand the same way. Read-only
// source operands inside a parallel region are restricted to arrays the
// region cannot write (frozen shared state, or fresh single-body locals):
// a concurrently-writable source would race the collective's buffer read —
// exactly the torn-buffer bug — and trip the value oracle on a program
// that is supposed to be correct by construction.
func (g *gen) collArr(inSingle bool, writable bool) *arrInfo {
	var pool []*arrInfo
	if inSingle && writable {
		singleBase := len(g.scopes) - 1
		pool = g.arrays(func(a *arrInfo) bool { return a.idx >= singleBase || g.mutArr[a] })
	} else if writable {
		pool = g.writableArrays()
	} else if g.inPar > 0 {
		pool = g.arrays(func(a *arrInfo) bool { return a.idx < g.parBase && !g.mutArr[a] })
	} else {
		pool = g.arrays(func(*arrInfo) bool { return true })
	}
	if len(pool) == 0 {
		a := g.newArray(pick(g.rng, []int{4, 8}), true)
		g.e.Line("var %s[%d]", a.name, a.size)
		return a
	}
	return pick(g.rng, pool)
}

var redOps = []string{"sum", "min", "max", "prod"}

// emitCollective emits one MPI collective on the uniform path (at
// sequential level, or on the elected thread of a single when inSingle).
func (g *gen) emitCollective(inSingle bool) {
	root := "0"
	if g.chance(25) {
		root = "size() - 1"
	}
	op := pick(g.rng, redOps)
	switch g.n(12) {
	case 0, 1:
		g.e.Line("MPI_Barrier()")
	case 2, 3:
		v := g.collDst(inSingle)
		if g.chance(30) {
			g.e.Line("MPI_Bcast(%s, %s)", v.name, root)
		} else {
			g.e.Line("MPI_Bcast(%s)", v.name)
		}
		if !g.mutable[v] {
			g.promote(v)
		}
	case 4, 5, 6:
		v := g.collDst(inSingle)
		g.e.Line("MPI_Allreduce(%s, %s, %s)", v.name, g.anyExpr(1), op)
		if !g.mutable[v] {
			g.promote(v)
		}
	case 7:
		v := g.collDst(inSingle)
		if g.chance(40) {
			g.e.Line("MPI_Reduce(%s, %s, %s, %s)", v.name, g.anyExpr(1), op, root)
		} else {
			g.e.Line("MPI_Reduce(%s, %s, %s)", v.name, g.anyExpr(1), op)
		}
		v.uniform = false
	case 8:
		v := g.collDst(inSingle)
		g.e.Line("MPI_Scan(%s, %s, %s)", v.name, g.anyExpr(1), op)
		v.uniform = false
	case 9:
		a := g.collArr(inSingle, true)
		if g.chance(50) {
			g.e.Line("MPI_Allgather(%s, %s)", a.name, g.anyExpr(1))
		} else {
			g.e.Line("MPI_Gather(%s, %s, %s)", a.name, g.anyExpr(1), root)
			a.uniform = false
		}
	case 10:
		v := g.collDst(inSingle)
		src := g.collArr(inSingle, false)
		g.e.Line("MPI_Scatter(%s, %s, %s)", v.name, src.name, root)
		v.uniform = false
	default:
		dst := g.collArr(inSingle, true)
		src := g.collArr(inSingle, false)
		if dst == src {
			g.e.Line("MPI_Barrier()")
			return
		}
		g.e.Line("MPI_Alltoall(%s, %s)", dst.name, src.name)
		dst.uniform = false
	}
}
