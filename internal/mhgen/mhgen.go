// Package mhgen generates random MiniHybrid programs from a seed — the
// systematic test surface behind the differential static/dynamic
// validation harness (internal/mhgen/diff, fuzz_test.go at the module
// root).
//
// The generator composes the language's full feature space — nested
// if/for/while control flow around collectives, call chains and mutual
// recursion (so summary computation walks non-trivial SCCs), parallel /
// single / master / critical / pfor / sections regions, and mixes of
// barrier, bcast, reduce, allreduce, gather/scatter and friends — in two
// flavors:
//
//   - correct-by-construction programs: every process executes the same
//     collective sequence, collectives inside parallel regions sit in
//     non-nowait single constructs, and every condition on a path to a
//     collective or team-synchronizing construct is built only from
//     dynamically process- and team-uniform values;
//   - programs with exactly one bug from the paper's detection matrix
//     (workload.Bug) planted at a known, labeled source line, using the
//     shared bug-planting vocabulary of internal/workload.
//
// Generation is deterministic: the same Config yields byte-identical
// source. The correctness argument for clean programs is tracked per
// variable (a "uniform" flag mirroring dynamic process/team agreement)
// and is exercised empirically by the differential harness, which fails
// on any clean program that trips a runtime check or the deadlock
// oracle.
package mhgen

import (
	"fmt"
	"math/rand"
	"strings"

	"parcoach/internal/parser"
	"parcoach/internal/workload"
)

// Size selects how much program the generator emits.
type Size int

// Program sizes.
const (
	// SizeSmall: a handful of functions and main segments (unit-test speed).
	SizeSmall Size = iota
	// SizeMedium: more helpers, deeper nesting, longer main.
	SizeMedium
)

func (s Size) String() string {
	if s == SizeMedium {
		return "medium"
	}
	return "small"
}

// Config parameterizes one generated program.
type Config struct {
	// Seed drives every random choice; equal seeds give byte-identical
	// programs.
	Seed uint64
	// Bug is the planted error class (workload.BugNone for a
	// correct-by-construction program).
	Bug workload.Bug
	// Size scales the program.
	Size Size
}

// Program is one generated MiniHybrid program with its ground truth.
type Program struct {
	// Name identifies the program ("mhgen-s42-early-return").
	Name string
	// Seed and Bug echo the config; Bug is the ground-truth label the
	// differential harness checks the tool's verdicts against.
	Seed uint64
	Bug  workload.Bug
	Size Size
	// Source is the program text.
	Source string
	// BugLine is the 1-based line of the "// seeded bug:" marker (0 for
	// clean programs).
	BugLine int
	// Procs and Threads are the run parameters under which the planted
	// bug (if any) deterministically manifests: the intra-process race
	// classes run on one process, everything else on two.
	Procs   int
	Threads int
}

// FromSeed derives a full Config from a bare seed — bug class and size
// cycle with the seed so any contiguous seed range covers every planted
// bug class plus clean programs at both sizes — and generates the
// program. Seeds ≡ 0 (mod 10) are clean.
func FromSeed(seed uint64) *Program {
	cfg := Config{Seed: seed, Size: SizeSmall}
	if n := seed % 10; n != 0 {
		cfg.Bug = workload.AllBugs[n-1]
	}
	if seed%3 == 0 {
		cfg.Size = SizeMedium
	}
	return Generate(cfg)
}

// ShardSeeds partitions the seed interval [start, start+n) round-robin
// into shards and returns shard's slice (every shards-th seed starting
// at start+shard), in increasing order. Round-robin rather than
// contiguous blocks because FromSeed cycles the bug class with the
// seed: with a shard count coprime to that 10-class cycle every shard
// of a matrix sweep covers every bug class (and any shard count still
// spreads classes far more evenly than contiguous blocks would). The
// union of all shards is exactly the unsharded range and
// shards are pairwise disjoint. Panics on an invalid (shards, shard)
// pair — a CLI misconfiguration, not a recoverable state.
func ShardSeeds(start, n uint64, shards, shard int) []uint64 {
	if shards < 1 || shard < 0 || shard >= shards {
		panic(fmt.Sprintf("mhgen.ShardSeeds: invalid shard %d of %d", shard, shards))
	}
	var out []uint64
	for s := start + uint64(shard); s < start+n; s += uint64(shards) {
		out = append(out, s)
	}
	return out
}

// Generate emits the program for cfg. The result always parses and
// passes semantic checking (validated here with MustParse, so a
// generator regression fails loudly at the source).
func Generate(cfg Config) *Program {
	g := newGen(cfg)
	g.program()
	src := g.e.String()
	p := &Program{
		Name:    fmt.Sprintf("mhgen-s%d-%s", cfg.Seed, cfg.Bug),
		Seed:    cfg.Seed,
		Bug:     cfg.Bug,
		Size:    cfg.Size,
		Source:  src,
		Procs:   RecommendedProcs(cfg.Bug),
		Threads: 2,
	}
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "// seeded bug:") {
			p.BugLine = i + 1
			break
		}
	}
	parser.MustParse(p.Name+".mh", src)
	return p
}

// RecommendedProcs returns the world size under which a planted bug
// class manifests deterministically: the intra-process concurrency races
// run on a single process (the collective completes trivially, so only
// the thread-level race remains and the round-robin single election
// exposes it); the inter-process divergence classes need two.
func RecommendedProcs(b workload.Bug) int {
	switch b {
	case workload.BugConcurrentSingles, workload.BugSectionsCollectives:
		return 1
	}
	return 2
}

// rng wraps math/rand with the small helpers the generator uses. The
// rand.NewSource sequence is covered by the Go 1 compatibility promise,
// so seeds reproduce across Go releases and platforms.
type rng struct{ r *rand.Rand }

func newRng(seed uint64) *rng { return &rng{r: rand.New(rand.NewSource(int64(seed)))} }

// n returns a value in [0, max).
func (r *rng) n(max int) int { return r.r.Intn(max) }

// rangeIn returns a value in [lo, hi] inclusive.
func (r *rng) rangeIn(lo, hi int) int { return lo + r.r.Intn(hi-lo+1) }

// chance is true with probability pct/100.
func (r *rng) chance(pct int) bool { return r.r.Intn(100) < pct }

// pick returns a random element of list.
func pick[T any](r *rng, list []T) T { return list[r.n(len(list))] }
