package diff

import (
	"strings"
	"testing"

	"parcoach"
	"parcoach/internal/mhgen"
	"parcoach/internal/workload"
)

// TestDifferentialSound runs a compact seed sweep and enforces the
// soundness contract (the big 200-seed sweep with the golden matrix
// lives in the module root's fuzz_test.go).
func TestDifferentialSound(t *testing.T) {
	seen := make(map[Label]int)
	byBug := make(map[workload.Bug]int)
	for seed := uint64(0); seed < 70; seed++ {
		gp := mhgen.FromSeed(seed)
		row := Evaluate(gp, Options{Workers: 2})
		if len(row.Violations) > 0 {
			t.Fatalf("seed %d: %v\nreduced repro:\n%s",
				seed, row.Violations, ReduceFailure(gp, Options{Workers: 2}))
		}
		if row.Label == LabelFalseNegative {
			t.Fatalf("seed %d (%s): planted bug escaped both layers\n%s",
				seed, gp.Bug, gp.Source)
		}
		seen[row.Label]++
		byBug[gp.Bug]++
	}
	if seen[LabelTrueNegative] == 0 {
		t.Error("no clean program evaluated")
	}
	if seen[LabelBoth]+seen[LabelStatic]+seen[LabelDynamic] == 0 {
		t.Error("no planted bug evaluated")
	}
	for _, bug := range workload.AllBugs {
		if byBug[bug] == 0 {
			t.Errorf("bug class %s never generated in the sweep", bug)
		}
	}
}

// TestEvaluateWorkerIndependence: the full differential verdict — not
// just the compile — is identical at any worker-pool width.
func TestEvaluateWorkerIndependence(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2, 9, 33, 60} {
		gp := mhgen.FromSeed(seed)
		r1 := Evaluate(gp, Options{Workers: 1})
		r8 := Evaluate(gp, Options{Workers: 8})
		if r1.String() != r8.String() {
			t.Errorf("seed %d: verdict differs by worker count:\n  %s\n  %s", seed, r1, r8)
		}
	}
}

func TestEvaluateCleanProgramOutcomes(t *testing.T) {
	gp := mhgen.Generate(mhgen.Config{Seed: 14, Bug: workload.BugNone})
	row := Evaluate(gp, Options{})
	if row.Full != parcoach.RunClean {
		t.Errorf("clean program full outcome = %s", row.Full)
	}
	if row.Baseline != "clean" {
		t.Errorf("clean program baseline outcome = %s", row.Baseline)
	}
}

func TestEvaluateBuggyBaselineNotRecorded(t *testing.T) {
	gp := mhgen.Generate(mhgen.Config{Seed: 5, Bug: workload.BugMismatchedKinds})
	row := Evaluate(gp, Options{})
	if row.Baseline != "-" {
		t.Errorf("buggy baseline outcome must be masked for golden stability, got %q", row.Baseline)
	}
}

func TestReduceFailurePreservesSignature(t *testing.T) {
	gp := mhgen.Generate(mhgen.Config{Seed: 11, Bug: workload.BugEarlyReturn})
	opts := Options{Workers: 2}
	orig := Evaluate(gp, opts)
	red := ReduceFailure(gp, opts)
	if lr, lo := strings.Count(red, "\n"), strings.Count(gp.Source, "\n"); lr >= lo {
		t.Fatalf("no shrink: %d -> %d lines", lo, lr)
	}
	probe := *gp
	probe.Source = red
	got := Evaluate(&probe, opts)
	if signature(got) != signature(orig) {
		t.Fatalf("reduced signature %q != original %q\n%s", signature(got), signature(orig), red)
	}
}

// TestReduceFailurePreservesSchedule: reducing a schedule-only failure
// must keep the reduced reproducer failing under the SAME schedule
// token. The previous keep predicate re-judged candidates only by
// verdict signature, and for this exact seed it shrank the torn-buffer
// program into one whose exploration first fails under a different
// schedule — the published (source, token) pair no longer reproduced.
func TestReduceFailurePreservesSchedule(t *testing.T) {
	gp := mhgen.Generate(mhgen.Config{Seed: 2, Bug: workload.BugTornBuffer})
	opts := Options{Workers: 4}
	ref := Evaluate(gp, opts)
	if ref.FailSchedule == "" {
		t.Fatalf("torn-buffer program has no failing schedule: %s", ref)
	}
	red := ReduceFailure(gp, opts)
	if len(red) >= len(gp.Source) {
		t.Fatalf("no shrink: %d -> %d bytes", len(gp.Source), len(red))
	}
	probe := *gp
	probe.Source = red
	if got := Evaluate(&probe, opts); signature(got) != signature(ref) {
		t.Fatalf("reduced signature %q != original %q\n%s", signature(got), signature(ref), red)
	}
	if !replayFails(&probe, ref.FailSchedule, opts) {
		t.Fatalf("reduced reproducer no longer fails under the original schedule %s:\n%s",
			ref.FailSchedule, red)
	}
}

// TestEvaluateValueBugRows: the value-bug classes land on the dynamic
// side of the matrix. The root and op mismatches are schedule-independent
// — the oracle stops the reference run itself — while the torn source
// buffer needs the exploration pass and records which schedule failed.
func TestEvaluateValueBugRows(t *testing.T) {
	opts := Options{Workers: 4}
	for _, bug := range []workload.Bug{workload.BugWrongRoot, workload.BugWrongOp} {
		row := Evaluate(mhgen.Generate(mhgen.Config{Seed: 1, Bug: bug}), opts)
		if row.Full != parcoach.RunValueError {
			t.Errorf("%s: reference run outcome = %s, want value-error: %s", bug, row.Full, row)
		}
		if row.Label != LabelDynamic && row.Label != LabelBoth {
			t.Errorf("%s: label = %s, want a dynamic detection: %s", bug, row.Label, row)
		}
	}
	torn := Evaluate(mhgen.Generate(mhgen.Config{Seed: 1, Bug: workload.BugTornBuffer}), opts)
	if torn.Explored == "-" || torn.FirstDetect == "-" {
		t.Errorf("torn-buffer not judged by exploration: %s", torn)
	}
	if torn.FailSchedule == "" {
		t.Errorf("torn-buffer detection did not record its failing schedule: %s", torn)
	}
	if torn.Label != LabelDynamic && torn.Label != LabelBoth {
		t.Errorf("torn-buffer label = %s, want a dynamic detection: %s", torn.Label, torn)
	}
}

func TestMatrixFormat(t *testing.T) {
	var m Matrix
	for seed := uint64(0); seed < 21; seed++ { // three full bug cycles
		m.Rows = append(m.Rows, Evaluate(mhgen.FromSeed(seed), Options{Workers: 2}))
	}
	out := m.Format()
	for _, want := range []string{
		"bug class", "none", "early-return", "mismatched-kinds", "per-seed verdicts:",
		"seed=0", "TN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
	if vs := m.Violations(); len(vs) != 0 {
		t.Errorf("unexpected violations: %v", vs)
	}
	if fn := m.FalseNegatives(); len(fn) != 0 {
		t.Errorf("unexpected false negatives: %+v", fn)
	}
}

// TestEvaluateExplorationColumns: schedule-dependent bug classes get an
// exploration verdict — the schedules-run and first-detection columns —
// while the rank-divergence classes (schedule-independent) skip the
// extra runs.
func TestEvaluateExplorationColumns(t *testing.T) {
	cs := Evaluate(mhgen.Generate(mhgen.Config{Seed: 2, Bug: workload.BugConcurrentSingles}), Options{Workers: 2})
	if cs.Explored == "-" {
		t.Errorf("concurrent-singles not explored: %s", cs)
	}
	if cs.FirstDetect == "-" {
		t.Errorf("concurrent-singles: exploration never hit the planted check: %s", cs)
	}
	er := Evaluate(mhgen.Generate(mhgen.Config{Seed: 2, Bug: workload.BugEarlyReturn}), Options{Workers: 2})
	if er.Explored != "-" || er.FirstDetect != "-" {
		t.Errorf("schedule-independent class explored: %s", er)
	}
	clean := Evaluate(mhgen.Generate(mhgen.Config{Seed: 2, Bug: workload.BugNone}), Options{Workers: 2})
	if clean.Explored == "-" {
		t.Errorf("clean program skipped the all-schedules-clean check: %s", clean)
	}
	if clean.FirstDetect != "-" || len(clean.Violations) > 0 {
		t.Errorf("clean program failed under exploration: %s", clean)
	}
}

// TestEvaluateExplorationDisabled: a negative budget turns the
// exploration pass off entirely.
func TestEvaluateExplorationDisabled(t *testing.T) {
	row := Evaluate(mhgen.Generate(mhgen.Config{Seed: 2, Bug: workload.BugConcurrentSingles}),
		Options{Workers: 2, ExploreSchedules: -1})
	if row.Explored != "-" || row.FirstDetect != "-" {
		t.Errorf("exploration ran despite being disabled: %s", row)
	}
}

// TestEvaluateSharedCompilerIdenticalVerdicts: routing the harness
// through a shared artifact cache must not change a single rendered
// row, and the replay-heavy reduction path must actually hit the cache
// (Evaluate and replayFails compile the same ModeFull source for every
// reduction candidate).
func TestEvaluateSharedCompilerIdenticalVerdicts(t *testing.T) {
	c := parcoach.NewCompiler(2)
	cached := Options{Compiler: c}
	plain := Options{Workers: 2}
	for _, seed := range []uint64{0, 1, 2, 9, 33, 60} {
		gp := mhgen.FromSeed(seed)
		if a, b := Evaluate(gp, plain), Evaluate(gp, cached); a.String() != b.String() {
			t.Errorf("seed %d: shared-compiler verdict differs:\n  %s\n  %s", seed, a, b)
		}
	}
	if st := c.CacheStats(); st.Misses == 0 {
		t.Fatalf("sweep compiled nothing through the cache: %+v", st)
	}
	before := c.CacheStats()
	gp := mhgen.Generate(mhgen.Config{Seed: 2, Bug: workload.BugTornBuffer})
	red := ReduceFailure(gp, cached)
	probe := *gp
	probe.Source = red
	if a, b := Evaluate(&probe, Options{Workers: 2}), Evaluate(&probe, cached); a.String() != b.String() {
		t.Errorf("reduced program: shared-compiler verdict differs:\n  %s\n  %s", a, b)
	}
	if st := c.CacheStats(); st.Hits <= before.Hits {
		t.Fatalf("reduction replay never hit the artifact cache: before %+v after %+v", before, st)
	}
}

// TestShardedSweepEqualsUnsharded: evaluating the shards of a seed
// range and merging their rows renders the exact matrix of the
// unsharded sweep — the contract that lets CI partition the 200-seed
// matrix across jobs.
func TestShardedSweepEqualsUnsharded(t *testing.T) {
	const start, n = 0, 30
	c := parcoach.NewCompiler(2)
	opts := Options{Compiler: c}
	var whole Matrix
	for s := uint64(start); s < start+n; s++ {
		whole.Rows = append(whole.Rows, Evaluate(mhgen.FromSeed(s), opts))
	}
	var merged Matrix
	for shard := 0; shard < 3; shard++ {
		for _, s := range mhgen.ShardSeeds(start, n, 3, shard) {
			merged.Rows = append(merged.Rows, Evaluate(mhgen.FromSeed(s), opts))
		}
	}
	if a, b := whole.Format(), merged.Format(); a != b {
		t.Fatalf("sharded union diverges from the unsharded matrix:\n--- unsharded\n%s--- sharded union\n%s", a, b)
	}
}
