// Package diff is the differential static/dynamic validation harness
// over generated MiniHybrid programs (internal/mhgen): each program is
// compiled in all three modes, executed instrumented and uninstrumented
// under the monitor's deadlock oracle, and the three verdicts — static
// diagnostics, runtime check aborts, deadlock reports — are cross-checked
// against the generator's ground-truth bug label.
//
// The harness enforces the paper's soundness contract and turns the rest
// into a detection matrix like the paper's table:
//
//   - a correct-by-construction program must never fail a run, in any
//     mode (static false positives are fine — the planted checks must
//     clear them at run time);
//   - a planted bug must be caught by a static warning or stopped by a
//     runtime check; reaching the deadlock oracle in ModeFull is a
//     soundness violation, and escaping undetected is a labeled false
//     negative that must be acknowledged in the golden matrix;
//   - ModeAnalyze and ModeFull must agree diagnostic-for-diagnostic, at
//     any worker count.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"parcoach"
	"parcoach/internal/mhgen"
	"parcoach/internal/omp"
	"parcoach/internal/sched"
	"parcoach/internal/workload"
)

// Options configures an evaluation.
type Options struct {
	// Workers is the compile worker-pool width (0 = GOMAXPROCS).
	// Ignored when Compiler is set — the shared pool is the width.
	Workers int
	// Compiler, when non-nil, routes every compilation through the
	// shared artifact cache (parcoach.Compiler.Cached). The sweep and
	// especially ReduceFailure resubmit identical (source, mode) pairs —
	// Evaluate and the replay path compile the same ModeFull source per
	// reduction candidate — so a shared compiler removes the duplicate
	// pipeline runs. Verdicts are identical with or without it.
	Compiler *parcoach.Compiler
	// MaxSteps bounds each run (default 2 million).
	MaxSteps int64
	// ExploreSchedules is the per-program schedule budget for the
	// exploration pass over schedule-dependent programs (default 8;
	// negative disables exploration). The concurrency bug classes are
	// judged against the exploration verdict — any schedule whose
	// planted check aborts counts as a dynamic detection — and clean
	// programs must stay clean under every explored schedule.
	ExploreSchedules int
}

// compile builds (name, src) in the given mode, through the shared
// artifact cache when one is configured.
func (o Options) compile(name, src string, mode parcoach.Mode) (*parcoach.Program, error) {
	copts := parcoach.Options{Mode: mode, Workers: o.Workers}
	if o.Compiler != nil {
		return o.Compiler.Cached(name, src, copts)
	}
	return parcoach.Compile(name, src, copts)
}

// exploreBudget resolves the schedule budget.
func (o Options) exploreBudget() int {
	if o.ExploreSchedules < 0 {
		return 0
	}
	if o.ExploreSchedules == 0 {
		return 8
	}
	return o.ExploreSchedules
}

// scheduleDependent reports whether a bug class needs a particular
// thread interleaving to manifest dynamically — the classes whose
// detection a single deterministic schedule systematically under- or
// over-states, and which the harness therefore judges by exploration.
// The rank-divergence classes (rank-dependent, early-return,
// mismatched-kinds) manifest on every schedule and skip the extra runs.
func scheduleDependent(bug workload.Bug) bool {
	switch bug {
	case workload.BugMultithreadedCollective, workload.BugConcurrentSingles,
		workload.BugSectionsCollectives,
		// The torn source buffer only manifests when the racing writer is
		// interleaved between the snapshot and the match point — the value
		// oracle needs exploration to reach such a schedule (round-robin
		// provably misses it).
		workload.BugTornBuffer:
		return true
	}
	return false
}

// Label classifies one program's differential verdict.
type Label string

// Verdict labels, detection-matrix style.
const (
	// LabelTrueNegative: clean program, no static warning, clean runs.
	LabelTrueNegative Label = "TN"
	// LabelFalsePositive: clean program with a static warning that the
	// planted checks cleared at run time (the paper's CC story).
	LabelFalsePositive Label = "FP"
	// LabelStatic: planted bug flagged at compile time only.
	LabelStatic Label = "TP-static"
	// LabelDynamic: planted bug stopped by a runtime check only.
	LabelDynamic Label = "TP-dynamic"
	// LabelBoth: flagged at compile time and stopped by a runtime check.
	LabelBoth Label = "TP-both"
	// LabelFalseNegative: planted bug escaped both layers (no warning, no
	// check abort); it must be acknowledged in the golden matrix.
	LabelFalseNegative Label = "FN"
)

// Row is the differential verdict of one generated program.
type Row struct {
	Seed uint64
	Bug  workload.Bug
	Size mhgen.Size
	// StaticKinds are the deduplicated error-class warning kinds ("-" if
	// none).
	StaticKinds string
	// Full is the outcome of running the ModeFull (instrumented) program.
	Full parcoach.RunOutcome
	// Baseline is the outcome of running the uninstrumented program —
	// what would happen on a real machine. Recorded for clean programs
	// only ("-" otherwise): racy bug classes resolve differently run to
	// run without instrumentation, and golden files must be stable.
	Baseline string
	// Explored is the number of interleavings the exploration pass ran
	// ("-" when the program's verdict is schedule-independent or
	// exploration is disabled).
	Explored string
	// FirstDetect is the 0-based index of the first explored schedule
	// stopped by a planted check or the value oracle — the
	// schedules-to-first-detection metric ("-" when not explored or never
	// detected).
	FirstDetect string
	// FailSchedule is the replayable token of that first failing explored
	// schedule ("" when none). ReduceFailure replays it on every
	// reduction candidate, so reduced reproducers of schedule-only
	// failures keep failing on the same schedule. Not part of the rendered
	// row: the token is an exploration-order artifact, not a verdict.
	FailSchedule string
	Label        Label
	// Violations lists soundness-contract breaches (empty = sound).
	Violations []string
}

// String renders the row as one stable line of the detection matrix.
func (r Row) String() string {
	line := fmt.Sprintf("seed=%-4d %-9s bug=%-26s static=%-47s full=%-11s base=%-6s expl=%-3s det=%-3s %s",
		r.Seed, r.Size, r.Bug, r.StaticKinds, r.Full, r.Baseline, r.Explored, r.FirstDetect, r.Label)
	if len(r.Violations) > 0 {
		line += " VIOLATION: " + strings.Join(r.Violations, "; ")
	}
	return line
}

// Evaluate compiles gp in all three modes, runs it with and without
// instrumentation, and classifies the combined verdict.
func Evaluate(gp *mhgen.Program, opts Options) Row {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 2_000_000
	}
	row := Row{Seed: gp.Seed, Bug: gp.Bug, Size: gp.Size,
		StaticKinds: "-", Baseline: "-", Explored: "-", FirstDetect: "-"}
	name := gp.Name + ".mh"

	var progs [3]*parcoach.Program
	for i, mode := range []parcoach.Mode{parcoach.ModeBaseline, parcoach.ModeAnalyze, parcoach.ModeFull} {
		p, err := opts.compile(name, gp.Source, mode)
		if err != nil {
			row.Violations = append(row.Violations,
				fmt.Sprintf("compile (%s) failed: %v", mode, err))
			row.Label = labelFor(gp.Bug, false, false)
			return row
		}
		progs[i] = p
	}
	base, analyze, full := progs[0], progs[1], progs[2]

	// The analyze and full modes must agree on the diagnostics.
	if a, f := diagString(analyze), diagString(full); a != f {
		row.Violations = append(row.Violations,
			fmt.Sprintf("mode verdict divergence: analyze %q vs full %q", a, f))
	}

	staticCaught := len(full.Warnings()) > 0
	if kinds := full.WarningKinds(); len(kinds) > 0 {
		row.StaticKinds = strings.Join(kinds, ",")
	}

	runOpts := parcoach.RunOptions{
		Procs:    gp.Procs,
		Threads:  gp.Threads,
		Policy:   omp.RoundRobin,
		MaxSteps: opts.MaxSteps,
	}
	if gp.Bug == workload.BugTornBuffer {
		// The torn source buffer is the one class whose *instrumented*
		// outcome is schedule-dependent: a free-running reference run
		// resolves differently run to run, and golden files must be
		// stable. Serialize it under the deterministic round-robin virtual
		// scheduler — which provably misses the race, exactly the paper's
		// point about single-schedule testing — and judge detection by the
		// exploration pass below.
		if rr, err := sched.Parse("rr"); err == nil {
			runOpts.Scheduler = rr
		}
	}
	fullRes := full.Run(runOpts)
	row.Full = fullRes.Outcome()
	if runOpts.Scheduler != nil && (row.Full == parcoach.RunCheckAbort || row.Full == parcoach.RunValueError) {
		row.FailSchedule = "rr"
	}

	dynamicCaught := row.Full == parcoach.RunCheckAbort || row.Full == parcoach.RunValueError

	// Exploration pass: the schedule-dependent programs are judged
	// against the whole explored interleaving space, not the one
	// deterministic schedule. Any schedule stopped by a planted check is
	// a dynamic detection; clean programs must survive every schedule.
	if budget := opts.exploreBudget(); budget > 0 &&
		(gp.Bug == workload.BugNone || scheduleDependent(gp.Bug)) {
		// Random sampling rather than DFS: on generator-sized programs a
		// small DFS budget drains into permutations of the first few
		// statements, while seeded uniform schedules diversify the whole
		// run — empirically 8 random schedules reach every planted
		// concurrency bug that hundreds of DFS prefixes reach. DFS's
		// exhaustion guarantee is exercised on the hand-written programs
		// of internal/explore's property suite instead.
		rep := full.Explore(parcoach.ExploreOptions{
			Strategy:  parcoach.ExploreRandom,
			Schedules: budget,
			Procs:     gp.Procs,
			Threads:   gp.Threads,
			MaxSteps:  opts.MaxSteps,
			Workers:   opts.Workers,
		})
		row.Explored = fmt.Sprint(rep.Schedules)
		detect := rep.Verdict(parcoach.RunCheckAbort)
		if v := rep.Verdict(parcoach.RunValueError); v != nil && (detect == nil || v.First < detect.First) {
			detect = v
		}
		if detect != nil {
			row.FirstDetect = fmt.Sprint(detect.First)
			row.FailSchedule = detect.Schedule
			if gp.Bug != workload.BugNone {
				dynamicCaught = true
			}
		}
		for _, v := range rep.Verdicts {
			switch {
			case gp.Bug == workload.BugNone && v.Outcome != parcoach.RunClean:
				row.Violations = append(row.Violations, fmt.Sprintf(
					"clean program failed under explored schedule %s: %s", v.Schedule, v.Sample))
			case gp.Bug != workload.BugNone && v.Outcome == parcoach.RunDeadlock && !staticCaught:
				row.Violations = append(row.Violations, fmt.Sprintf(
					"planted bug reached the deadlock oracle uncaught under explored schedule %s", v.Schedule))
			case gp.Bug != workload.BugNone &&
				(v.Outcome == parcoach.RunRuntimeError || v.Outcome == parcoach.RunBudget):
				row.Violations = append(row.Violations, fmt.Sprintf(
					"planted bug caused a %s under explored schedule %s: %s", v.Outcome, v.Schedule, v.Sample))
			}
		}
	}

	if gp.Bug == workload.BugNone {
		// The uninstrumented ground-truth run only informs the clean-side
		// contract; buggy programs skip it (its racy outcome would be
		// discarded anyway, and the reducer re-evaluates many times).
		baseRes := base.Run(runOpts)
		baseOutcome := baseRes.Outcome()
		row.Baseline = baseOutcome.String()
		if row.Full != parcoach.RunClean {
			row.Violations = append(row.Violations,
				fmt.Sprintf("clean program failed instrumented run: %v", fullRes.Err))
		}
		if baseOutcome != parcoach.RunClean {
			row.Violations = append(row.Violations,
				fmt.Sprintf("clean program failed uninstrumented run: %v", baseRes.Err))
		}
	} else {
		switch row.Full {
		case parcoach.RunDeadlock:
			// A deadlock report is acceptable only when the compile phase
			// already flagged the bug: the checks cannot preempt a rank
			// blocking in point-to-point traffic while its peers sit in a
			// CC round (the announcements cover collectives, not P2P).
			if !staticCaught {
				row.Violations = append(row.Violations,
					"planted bug reached the deadlock oracle uncaught in ModeFull")
			}
		case parcoach.RunRuntimeError:
			row.Violations = append(row.Violations,
				fmt.Sprintf("planted bug caused a plain runtime error in ModeFull: %v", fullRes.Err))
		case parcoach.RunBudget:
			// Pre-OutcomeBudget this was a RuntimeError and hence a
			// violation; the reclassification must not soften the
			// contract — a planted bug may never spin out the reference
			// run either.
			row.Violations = append(row.Violations,
				fmt.Sprintf("planted bug exhausted the step budget in ModeFull: %v", fullRes.Err))
		}
	}
	row.Label = labelFor(gp.Bug, staticCaught, dynamicCaught)
	return row
}

func labelFor(bug workload.Bug, staticCaught, dynamicCaught bool) Label {
	if bug == workload.BugNone {
		if staticCaught {
			return LabelFalsePositive
		}
		return LabelTrueNegative
	}
	switch {
	case staticCaught && dynamicCaught:
		return LabelBoth
	case staticCaught:
		return LabelStatic
	case dynamicCaught:
		return LabelDynamic
	}
	return LabelFalseNegative
}

func diagString(p *parcoach.Program) string {
	var parts []string
	for _, d := range p.Diagnostics() {
		parts = append(parts, d.String())
	}
	return strings.Join(parts, "\n")
}

// signature is the coarse behavior the reducer must preserve: the
// verdict label, the instrumented outcome, and whether the soundness
// contract was breached (violation texts carry positions that shift as
// statements are deleted, so they are not compared verbatim).
func signature(r Row) string {
	return fmt.Sprintf("%s|%s|%t", r.Label, r.Full, len(r.Violations) > 0)
}

// ReduceFailure greedily shrinks gp's source to the smallest program
// that still evaluates to the same verdict signature — the form in which
// the harness reports a failing seed. When the original verdict hinges
// on a particular explored schedule (FailSchedule non-empty), every
// candidate is additionally replayed under that exact schedule and must
// still fail there: re-judging with fresh exploration alone preserves
// the signature but can silently shift WHICH schedule fails, publishing
// a reproducer whose recorded schedule token no longer reproduces.
func ReduceFailure(gp *mhgen.Program, opts Options) string {
	ref := Evaluate(gp, opts)
	want := signature(ref)
	return mhgen.Reduce(gp.Source, func(src string) bool {
		probe := *gp
		probe.Source = src
		if signature(Evaluate(&probe, opts)) != want {
			return false
		}
		if ref.FailSchedule == "" {
			return true
		}
		return replayFails(&probe, ref.FailSchedule, opts)
	})
}

// replayFails compiles gp in ModeFull and runs it under the exact
// schedule token, reporting whether a planted check or the value oracle
// still stops that schedule. Trace tokens must additionally replay
// without diverging — a shrunk program that consumes the trace
// differently is not reproducing the original failure, merely failing
// somewhere nearby.
func replayFails(gp *mhgen.Program, token string, opts Options) bool {
	p, err := opts.compile(gp.Name+".mh", gp.Source, parcoach.ModeFull)
	if err != nil {
		return false
	}
	s, err := sched.Parse(token)
	if err != nil {
		return false
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 2_000_000
	}
	res := p.Run(parcoach.RunOptions{
		Procs:     gp.Procs,
		Threads:   gp.Threads,
		MaxSteps:  maxSteps,
		Scheduler: s,
	})
	if out := res.Outcome(); out != parcoach.RunCheckAbort && out != parcoach.RunValueError {
		return false
	}
	if r, ok := s.(*sched.Replay); ok && r.Diverged() {
		return false
	}
	return true
}

// Matrix aggregates rows into the per-bug-class detection counts of the
// paper's table.
type Matrix struct {
	Rows []Row
}

// Violations returns every soundness violation across the rows.
func (m *Matrix) Violations() []string {
	var out []string
	for _, r := range m.Rows {
		for _, v := range r.Violations {
			out = append(out, fmt.Sprintf("seed %d (%s): %s", r.Seed, r.Bug, v))
		}
	}
	return out
}

// FalseNegatives returns the rows whose planted bug escaped both layers.
func (m *Matrix) FalseNegatives() []Row {
	var out []Row
	for _, r := range m.Rows {
		if r.Label == LabelFalseNegative {
			out = append(out, r)
		}
	}
	return out
}

// Format renders the aggregate table followed by one line per program,
// sorted by seed — a stable, golden-file-friendly rendering.
func (m *Matrix) Format() string {
	rows := append([]Row(nil), m.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Seed < rows[j].Seed })

	type agg struct {
		total, static, dynamic, both, fn, tn, fp int
	}
	perBug := make(map[workload.Bug]*agg)
	bugs := append([]workload.Bug{workload.BugNone}, workload.AllBugs...)
	for _, b := range bugs {
		perBug[b] = &agg{}
	}
	for _, r := range rows {
		a := perBug[r.Bug]
		if a == nil {
			a = &agg{}
			perBug[r.Bug] = a
		}
		a.total++
		switch r.Label {
		case LabelStatic:
			a.static++
		case LabelDynamic:
			a.dynamic++
		case LabelBoth:
			a.both++
			a.static++
			a.dynamic++
		case LabelFalseNegative:
			a.fn++
		case LabelTrueNegative:
			a.tn++
		case LabelFalsePositive:
			a.fp++
		}
	}

	var b strings.Builder
	b.WriteString("Differential detection matrix — generated MiniHybrid corpus\n\n")
	fmt.Fprintf(&b, "%-26s %6s %7s %8s %6s %4s %4s %4s\n",
		"bug class", "progs", "static", "dynamic", "both", "FN", "TN", "FP")
	for _, bug := range bugs {
		a := perBug[bug]
		if a.total == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-26s %6d %7d %8d %6d %4d %4d %4d\n",
			bug.String(), a.total, a.static, a.dynamic, a.both, a.fn, a.tn, a.fp)
	}
	b.WriteString("\nper-seed verdicts:\n")
	for _, r := range rows {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}
