// Package dom computes dominator and postdominator trees, dominance
// frontiers and iterated postdominance frontiers over internal/cfg graphs.
//
// PARCOACH's Algorithm 1 (inherited by this paper as its third compile-time
// phase) rests on the iterated postdominance frontier PDF+: for the set O_c
// of nodes calling collective c, PDF+(O_c) is exactly the set of
// conditionals whose outcome decides whether a process executes c — the
// places where control flow can desynchronize the collective sequence
// across MPI processes.
//
// The implementation is the Cooper–Harvey–Kennedy iterative algorithm on a
// reverse-postorder numbering, run forward for dominators and on the edge-
// reversed graph for postdominators, with Cytron-style frontiers.
package dom

import (
	"sort"

	"parcoach/internal/cfg"
)

// Tree is a (post)dominator tree over one CFG.
type Tree struct {
	root *cfg.Node
	// idom[n.ID] is the immediate (post)dominator; the root maps to itself.
	// Nodes unreachable from the root map to nil.
	idom []*cfg.Node
	// order[n.ID] is the reverse-postorder number used for Dominates.
	order []int
	post  bool
}

// Root returns the tree root (entry for dominators, exit for postdominators).
func (t *Tree) Root() *cfg.Node { return t.root }

// IDom returns the immediate (post)dominator of n, or nil for the root and
// for nodes unreachable from the root.
func (t *Tree) IDom(n *cfg.Node) *cfg.Node {
	if n == t.root {
		return nil
	}
	return t.idom[n.ID]
}

// Reachable reports whether n participates in the tree.
func (t *Tree) Reachable(n *cfg.Node) bool { return n == t.root || t.idom[n.ID] != nil }

// Dominates reports whether a (post)dominates b (reflexively).
func (t *Tree) Dominates(a, b *cfg.Node) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	for b != nil {
		if a == b {
			return true
		}
		if b == t.root {
			return false
		}
		b = t.idom[b.ID]
	}
	return false
}

// graphView abstracts edge direction so one algorithm serves both trees.
type graphView struct {
	root  *cfg.Node
	succs func(*cfg.Node) []*cfg.Node
	preds func(*cfg.Node) []*cfg.Node
}

func forward(g *cfg.Graph) graphView {
	return graphView{
		root:  g.Entry,
		succs: func(n *cfg.Node) []*cfg.Node { return n.Succs },
		preds: func(n *cfg.Node) []*cfg.Node { return n.Preds },
	}
}

func backward(g *cfg.Graph) graphView {
	return graphView{
		root:  g.Exit,
		succs: func(n *cfg.Node) []*cfg.Node { return n.Preds },
		preds: func(n *cfg.Node) []*cfg.Node { return n.Succs },
	}
}

// Dominators computes the dominator tree rooted at the entry node.
func Dominators(g *cfg.Graph) *Tree { return build(g, forward(g), false) }

// PostDominators computes the postdominator tree rooted at the exit node.
func PostDominators(g *cfg.Graph) *Tree { return build(g, backward(g), true) }

func build(g *cfg.Graph, view graphView, post bool) *Tree {
	n := len(g.Nodes)
	t := &Tree{root: view.root, idom: make([]*cfg.Node, n), order: make([]int, n), post: post}

	// Reverse postorder over the view.
	rpo := make([]*cfg.Node, 0, n)
	visited := make([]bool, n)
	var dfs func(u *cfg.Node)
	dfs = func(u *cfg.Node) {
		visited[u.ID] = true
		for _, v := range view.succs(u) {
			if !visited[v.ID] {
				dfs(v)
			}
		}
		rpo = append(rpo, u)
	}
	dfs(view.root)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	for i, u := range rpo {
		t.order[u.ID] = i
	}

	intersect := func(a, b *cfg.Node) *cfg.Node {
		for a != b {
			for t.order[a.ID] > t.order[b.ID] {
				a = t.idom[a.ID]
			}
			for t.order[b.ID] > t.order[a.ID] {
				b = t.idom[b.ID]
			}
		}
		return a
	}

	t.idom[view.root.ID] = view.root
	for changed := true; changed; {
		changed = false
		for _, u := range rpo {
			if u == view.root {
				continue
			}
			var newIdom *cfg.Node
			for _, p := range view.preds(u) {
				if !visited[p.ID] || t.idom[p.ID] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[u.ID] != newIdom {
				t.idom[u.ID] = newIdom
				changed = true
			}
		}
	}
	// The root's conventional self-idom is cleared in the accessor; keep the
	// array self-referential for intersect correctness, but report nil.
	return t
}

// Frontier computes the (post)dominance frontier of every node under t.
// For a dominator tree this is Cytron's DF; for a postdominator tree it is
// the postdominance frontier (control dependence).
func Frontier(g *cfg.Graph, t *Tree) map[*cfg.Node][]*cfg.Node {
	df := make(map[*cfg.Node]map[*cfg.Node]bool)
	preds := func(n *cfg.Node) []*cfg.Node { return n.Preds }
	if t.post {
		preds = func(n *cfg.Node) []*cfg.Node { return n.Succs }
	}
	for _, n := range g.Nodes {
		if !t.Reachable(n) {
			continue
		}
		ps := preds(n)
		if len(ps) < 2 {
			continue
		}
		for _, p := range ps {
			if !t.Reachable(p) {
				continue
			}
			runner := p
			for runner != nil && runner != t.IDom(n) && runner != n {
				set := df[runner]
				if set == nil {
					set = make(map[*cfg.Node]bool)
					df[runner] = set
				}
				set[n] = true
				next := t.IDom(runner)
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
	out := make(map[*cfg.Node][]*cfg.Node, len(df))
	for n, set := range df {
		out[n] = sortedNodes(set)
	}
	return out
}

// PostDominanceFrontier is a convenience wrapper computing PDF directly
// from the graph.
func PostDominanceFrontier(g *cfg.Graph) map[*cfg.Node][]*cfg.Node {
	return Frontier(g, PostDominators(g))
}

// Iterated computes the iterated frontier DF+/PDF+ of a node set: the
// least fixed point of repeatedly applying the frontier map.
func Iterated(frontier map[*cfg.Node][]*cfg.Node, set []*cfg.Node) []*cfg.Node {
	inResult := make(map[*cfg.Node]bool)
	work := append([]*cfg.Node(nil), set...)
	onWork := make(map[*cfg.Node]bool, len(set))
	for _, n := range set {
		onWork[n] = true
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range frontier[n] {
			if !inResult[m] {
				inResult[m] = true
				if !onWork[m] {
					onWork[m] = true
					work = append(work, m)
				}
			}
		}
	}
	return sortedNodes(inResult)
}

func sortedNodes(set map[*cfg.Node]bool) []*cfg.Node {
	out := make([]*cfg.Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
