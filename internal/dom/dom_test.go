package dom

import (
	"testing"
	"testing/quick"

	"parcoach/internal/cfg"
	"parcoach/internal/parser"
)

func buildMain(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	prog, err := parser.Parse("t.mh", "func main() {\n"+body+"\n}")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.Build(prog.Func("main"))
}

func findBranch(g *cfg.Graph) *cfg.Node {
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindBranch {
			return n
		}
	}
	return nil
}

func TestDominatorsLinear(t *testing.T) {
	g := buildMain(t, "var x = 0\nMPI_Barrier()\nx = 1")
	d := Dominators(g)
	if d.Root() != g.Entry {
		t.Fatal("dominator root must be entry")
	}
	// Entry dominates everything reachable.
	for _, n := range g.Nodes {
		if d.Reachable(n) && !d.Dominates(g.Entry, n) {
			t.Errorf("entry must dominate %s", n)
		}
	}
	// Every node dominates itself.
	for _, n := range g.Nodes {
		if d.Reachable(n) && !d.Dominates(n, n) {
			t.Errorf("%s must dominate itself", n)
		}
	}
	if d.IDom(g.Entry) != nil {
		t.Error("IDom(root) must be nil")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := buildMain(t, "var x = 0\nif x > 0 { x = 1 } else { x = 2 }\nMPI_Barrier()")
	d := Dominators(g)
	branch := findBranch(g)
	coll := g.Collectives()[0]
	if !d.Dominates(branch, coll) {
		t.Error("branch must dominate the post-merge collective")
	}
	// Neither arm dominates the collective.
	for _, arm := range branch.Succs {
		if d.Dominates(arm, coll) {
			t.Errorf("branch arm %s must not dominate the merge collective", arm)
		}
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	g := buildMain(t, "var x = 0\nif x > 0 { x = 1 } else { x = 2 }\nMPI_Barrier()")
	pd := PostDominators(g)
	if pd.Root() != g.Exit {
		t.Fatal("postdominator root must be exit")
	}
	branch := findBranch(g)
	coll := g.Collectives()[0]
	if !pd.Dominates(coll, branch) {
		t.Error("the collective after the merge must postdominate the branch")
	}
	if !pd.Dominates(g.Exit, branch) {
		t.Error("exit must postdominate everything reachable")
	}
	// An arm does not postdominate the branch.
	for _, arm := range branch.Succs {
		if pd.Dominates(arm, branch) {
			t.Errorf("arm %s must not postdominate the branch", arm)
		}
	}
}

func TestPostDominanceFrontierIfCollective(t *testing.T) {
	// Collective only in the then-branch: the branch node must be in the
	// PDF of the collective — that is exactly PARCOACH's divergence point.
	g := buildMain(t, "var x = 0\nif rank() == 0 { MPI_Barrier() }\nx = 1")
	pdf := PostDominanceFrontier(g)
	branch := findBranch(g)
	coll := g.Collectives()[0]
	found := false
	for _, n := range pdf[coll] {
		if n == branch {
			found = true
		}
	}
	if !found {
		t.Errorf("PDF(collective) must contain the branch; got %v", pdf[coll])
	}
}

func TestPDFCollectiveOnBothArms(t *testing.T) {
	// A collective called on both sides does not make the *merge* diverge,
	// but each occurrence is still control-dependent on the branch.
	g := buildMain(t, "if rank() == 0 { MPI_Barrier() } else { MPI_Barrier() }")
	pdf := PostDominanceFrontier(g)
	branch := findBranch(g)
	for _, coll := range g.Collectives() {
		found := false
		for _, n := range pdf[coll] {
			if n == branch {
				found = true
			}
		}
		if !found {
			t.Errorf("each arm's collective is control-dependent on the branch")
		}
	}
}

func TestIteratedPDFNestedIf(t *testing.T) {
	g := buildMain(t, `
var x = 0
if rank() > 0 {
	if rank() > 1 {
		MPI_Barrier()
	}
}
x = 1`)
	pdf := PostDominanceFrontier(g)
	coll := g.Collectives()[0]
	iter := Iterated(pdf, []*cfg.Node{coll})
	branches := 0
	for _, n := range iter {
		if n.Kind == cfg.KindBranch {
			branches++
		}
	}
	if branches != 2 {
		t.Errorf("iterated PDF must reach both nesting branches, got %d (%v)", branches, iter)
	}
}

func TestIteratedEmptySet(t *testing.T) {
	g := buildMain(t, "var x = 0")
	pdf := PostDominanceFrontier(g)
	if out := Iterated(pdf, nil); len(out) != 0 {
		t.Errorf("Iterated(∅) = %v", out)
	}
}

func TestLoopHeaderInPDF(t *testing.T) {
	// A collective inside a loop is control-dependent on the loop header.
	g := buildMain(t, "var n = rank()\nfor i = 0 .. n { MPI_Barrier() }")
	pdf := PostDominanceFrontier(g)
	coll := g.Collectives()[0]
	header := findBranch(g)
	found := false
	for _, n := range Iterated(pdf, []*cfg.Node{coll}) {
		if n == header {
			found = true
		}
	}
	if !found {
		t.Error("loop header must be in PDF+ of the loop-body collective")
	}
}

func TestUnreachableNodesHandled(t *testing.T) {
	g := buildMain(t, "return\nMPI_Barrier()")
	d := Dominators(g)
	pd := PostDominators(g)
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindCollective {
			if d.Reachable(n) {
				t.Error("dead node must be unreachable in dominator tree")
			}
			if d.Dominates(g.Entry, n) || pd.Dominates(g.Exit, n) && pd.Reachable(n) && false {
				t.Error("dominance over dead nodes must be false")
			}
		}
	}
	// Frontier computation must not panic with unreachable nodes present.
	_ = PostDominanceFrontier(g)
	_ = Frontier(g, d)
}

func TestDominatesAntisymmetry(t *testing.T) {
	g := buildMain(t, `
var x = 0
if x > 0 { x = 1 } else { x = 2 }
while x > 0 { x -= 1 }
parallel { single { MPI_Barrier() } }`)
	d := Dominators(g)
	for _, a := range g.Nodes {
		for _, b := range g.Nodes {
			if a == b || !d.Reachable(a) || !d.Reachable(b) {
				continue
			}
			if d.Dominates(a, b) && d.Dominates(b, a) {
				t.Errorf("dominance must be antisymmetric: %s <-> %s", a, b)
			}
		}
	}
}

// Property: for random structured programs, (1) entry dominates all
// reachable nodes, (2) exit postdominates all nodes that reach it, (3) the
// idom of every non-root reachable node strictly dominates it.
func TestDominatorPropertiesRandomPrograms(t *testing.T) {
	gen := func(seed int64) string {
		// Build a random structured body from a small grammar.
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := (rng >> 33) % n
			if v < 0 {
				v = -v
			}
			return v
		}
		var build func(depth int) string
		build = func(depth int) string {
			if depth > 3 {
				return "x += 1\n"
			}
			switch next(6) {
			case 0:
				return "x += 1\n"
			case 1:
				return "MPI_Barrier()\n"
			case 2:
				return "if x > 0 {\n" + build(depth+1) + "}\n"
			case 3:
				return "if x > 0 {\n" + build(depth+1) + "} else {\n" + build(depth+1) + "}\n"
			case 4:
				return "while x > 3 {\n" + build(depth+1) + "x -= 1\n}\n"
			default:
				return "for i = 0 .. 3 {\n" + build(depth+1) + "}\n"
			}
		}
		return "var x = 1\n" + build(0) + build(0) + build(0)
	}
	check := func(seed int64) bool {
		src := gen(seed)
		prog, err := parser.Parse("r.mh", "func main() {\n"+src+"\n}")
		if err != nil {
			return false
		}
		g := cfg.Build(prog.Func("main"))
		d := Dominators(g)
		pd := PostDominators(g)
		for _, n := range g.Nodes {
			if d.Reachable(n) && !d.Dominates(g.Entry, n) {
				return false
			}
			if pd.Reachable(n) && !pd.Dominates(g.Exit, n) {
				return false
			}
			if d.Reachable(n) && n != g.Entry {
				id := d.IDom(n)
				if id == nil || !d.Dominates(id, n) || d.Dominates(n, id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
