package omp

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"parcoach/internal/monitor"
)

// start creates a runtime with a registered initial thread.
func start(t *testing.T, threads int, policy Policy) (*Runtime, *Thread) {
	t.Helper()
	mon := monitor.New()
	rt := New(mon, threads, policy)
	mon.ThreadStarted()
	return rt, rt.InitialThread()
}

func TestParallelRunsAllThreads(t *testing.T) {
	rt, th0 := start(t, 4, FirstArrival)
	var mu sync.Mutex
	tids := map[int]bool{}
	err := rt.Parallel(th0, 0, func(th *Thread) error {
		mu.Lock()
		tids[th.TID()] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 4 {
		t.Errorf("want 4 distinct tids, got %v", tids)
	}
}

func TestParallelExplicitSize(t *testing.T) {
	rt, th0 := start(t, 2, FirstArrival)
	var n int32
	if err := rt.Parallel(th0, 7, func(th *Thread) error {
		atomic.AddInt32(&n, 1)
		if th.Team().Size() != 7 {
			return errors.New("team size wrong")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("ran %d threads, want 7", n)
	}
}

func TestMasterKeepsThreadID(t *testing.T) {
	rt, th0 := start(t, 3, FirstArrival)
	mainID := th0.ID()
	err := rt.Parallel(th0, 3, func(th *Thread) error {
		if th.TID() == 0 && th.ID() != mainID {
			return errors.New("master lost the main thread id")
		}
		if th.TID() != 0 && th.ID() == mainID {
			return errors.New("worker got the main thread id")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAdvancesPhase(t *testing.T) {
	rt, th0 := start(t, 4, FirstArrival)
	err := rt.Parallel(th0, 4, func(th *Thread) error {
		for i := 0; i < 5; i++ {
			if err := th.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	rt, th0 := start(t, 4, FirstArrival)
	var before, after int32
	err := rt.Parallel(th0, 4, func(th *Thread) error {
		atomic.AddInt32(&before, 1)
		if err := th.Barrier(); err != nil {
			return err
		}
		// After the barrier every thread must observe all 4 increments.
		if atomic.LoadInt32(&before) != 4 {
			return errors.New("barrier did not synchronize")
		}
		atomic.AddInt32(&after, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != 4 {
		t.Errorf("after = %d", after)
	}
}

func TestSingleElectsExactlyOne(t *testing.T) {
	for _, policy := range []Policy{FirstArrival, RoundRobin} {
		rt, th0 := start(t, 4, policy)
		var execs int32
		err := rt.Parallel(th0, 4, func(th *Thread) error {
			for i := 0; i < 10; i++ {
				if th.Single(42) {
					atomic.AddInt32(&execs, 1)
				}
				if err := th.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if execs != 10 {
			t.Errorf("policy %v: single executed %d times, want 10", policy, execs)
		}
	}
}

func TestRoundRobinRotatesWinner(t *testing.T) {
	rt, th0 := start(t, 3, RoundRobin)
	var mu sync.Mutex
	var winners []int
	err := rt.Parallel(th0, 3, func(th *Thread) error {
		for i := 0; i < 6; i++ {
			if th.Single(7) {
				mu.Lock()
				winners = append(winners, th.TID())
				mu.Unlock()
			}
			if err := th.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(winners)
	// Encounters 0..5 rotate over tids 0,1,2 twice.
	want := []int{0, 0, 1, 1, 2, 2}
	if len(winners) != len(want) {
		t.Fatalf("winners = %v", winners)
	}
	for i := range want {
		if winners[i] != want[i] {
			t.Fatalf("winners = %v, want rotation %v", winners, want)
		}
	}
}

func TestSingleOnTeamOfOne(t *testing.T) {
	_, th0 := start(t, 1, FirstArrival)
	if !th0.Single(3) {
		t.Error("single on a team of one must always execute")
	}
}

func TestSectionsDistribution(t *testing.T) {
	rt, th0 := start(t, 2, FirstArrival)
	var mu sync.Mutex
	ran := map[int]int{}
	err := rt.Parallel(th0, 2, func(th *Thread) error {
		for _, idx := range th.Sections(9, 5) {
			mu.Lock()
			ran[idx]++
			mu.Unlock()
		}
		return th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 5 {
		t.Fatalf("sections ran = %v, want all 5", ran)
	}
	for idx, n := range ran {
		if n != 1 {
			t.Errorf("section %d ran %d times", idx, n)
		}
	}
}

func TestStaticForCoversRangeOnce(t *testing.T) {
	rt, th0 := start(t, 4, FirstArrival)
	counts := make([]int32, 100)
	err := rt.Parallel(th0, 4, func(th *Thread) error {
		loop := th.StaticFor(11, 0, 100)
		for {
			i, ok := loop.Next()
			if !ok {
				return nil
			}
			atomic.AddInt32(&counts[i], 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 1 {
			t.Errorf("iteration %d executed %d times", i, n)
		}
	}
}

func TestDynamicForCoversRangeOnce(t *testing.T) {
	rt, th0 := start(t, 4, FirstArrival)
	counts := make([]int32, 100)
	err := rt.Parallel(th0, 4, func(th *Thread) error {
		loop := th.DynamicFor(12, 0, 100)
		for {
			i, ok := loop.Next()
			if !ok {
				return th.Barrier()
			}
			atomic.AddInt32(&counts[i], 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 1 {
			t.Errorf("iteration %d executed %d times", i, n)
		}
	}
}

func TestDynamicForRepeatedEncounters(t *testing.T) {
	rt, th0 := start(t, 3, FirstArrival)
	var total int32
	err := rt.Parallel(th0, 3, func(th *Thread) error {
		for rep := 0; rep < 4; rep++ {
			loop := th.DynamicFor(13, 0, 10)
			for {
				_, ok := loop.Next()
				if !ok {
					break
				}
				atomic.AddInt32(&total, 1)
			}
			if err := th.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 40 {
		t.Errorf("total iterations = %d, want 40", total)
	}
}

func TestEmptyStaticFor(t *testing.T) {
	_, th0 := start(t, 1, FirstArrival)
	loop := th0.StaticFor(14, 5, 5)
	if _, ok := loop.Next(); ok {
		t.Error("empty range must yield nothing")
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	rt, th0 := start(t, 8, FirstArrival)
	var inside, maxInside int32
	var counter int64
	err := rt.Parallel(th0, 8, func(th *Thread) error {
		for i := 0; i < 50; i++ {
			if err := rt.CriticalEnter(th, "lock"); err != nil {
				return err
			}
			v := atomic.AddInt32(&inside, 1)
			if v > atomic.LoadInt32(&maxInside) {
				atomic.StoreInt32(&maxInside, v)
			}
			counter++ // protected by the critical section
			atomic.AddInt32(&inside, -1)
			rt.CriticalExit(th, "lock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Errorf("critical admitted %d threads at once", maxInside)
	}
	if counter != 400 {
		t.Errorf("counter = %d, want 400 (lost updates)", counter)
	}
}

func TestDifferentCriticalNamesDoNotExclude(t *testing.T) {
	rt, th0 := start(t, 2, FirstArrival)
	err := rt.Parallel(th0, 2, func(th *Thread) error {
		name := "a"
		if th.TID() == 1 {
			name = "b"
		}
		if err := rt.CriticalEnter(th, name); err != nil {
			return err
		}
		// Both threads hold their (different) locks across a barrier: if
		// the names aliased, this would deadlock.
		if err := th.Barrier(); err != nil {
			return err
		}
		rt.CriticalExit(th, name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedParallel(t *testing.T) {
	rt, th0 := start(t, 2, FirstArrival)
	var count int32
	err := rt.Parallel(th0, 2, func(outer *Thread) error {
		return rt.Parallel(outer, 2, func(inner *Thread) error {
			atomic.AddInt32(&count, 1)
			if inner.Team().Level() != 2 {
				return errors.New("nesting level wrong")
			}
			return inner.Barrier()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("nested parallel ran %d bodies, want 4", count)
	}
}

func TestBodyErrorAbortsTeam(t *testing.T) {
	rt, th0 := start(t, 4, FirstArrival)
	boom := errors.New("boom")
	err := rt.Parallel(th0, 4, func(th *Thread) error {
		if th.TID() == 2 {
			return boom
		}
		// Everyone else parks at a barrier that thread 2 never reaches;
		// the abort must wake them.
		return th.Barrier()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestMismatchedBarriersDeadlockDetected(t *testing.T) {
	rt, th0 := start(t, 2, FirstArrival)
	err := rt.Parallel(th0, 2, func(th *Thread) error {
		if th.TID() == 0 {
			return th.Barrier() // thread 1 never joins this barrier
		}
		return nil
	})
	var d *monitor.DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if FirstArrival.String() != "first-arrival" || RoundRobin.String() != "round-robin" {
		t.Error("policy names wrong")
	}
}

func TestThreadString(t *testing.T) {
	_, th0 := start(t, 1, FirstArrival)
	if th0.String() == "" || th0.Team().ID() == 0 {
		t.Error("thread/team identity missing")
	}
}
