// Package omp simulates the explicit fork/join threading model the paper
// assumes ("perfectly nested regions"; OpenMP is the reference model): a
// per-process runtime that forks thread teams for parallel regions —
// nested regions fork nested teams — and provides team barriers, single
// and master constructs, sections, static/dynamic worksharing loops and
// named critical sections.
//
// All blocking goes through the shared monitor (internal/monitor), so a
// thread stuck on a team barrier while a sibling waits in an MPI
// collective is detected as a deadlock with a full report, and the team
// barrier phase counter gives the runtime verifier the exact "barrier
// phase" notion the paper's dynamic checks count in.
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"parcoach/internal/monitor"
	"parcoach/internal/pipeline"
)

// Policy selects how single constructs elect their executing thread.
type Policy int

// Election policies.
const (
	// FirstArrival mimics real runtimes: the first thread to reach the
	// construct executes it. Bug manifestation is schedule-dependent.
	FirstArrival Policy = iota
	// RoundRobin deterministically rotates the winner with the encounter
	// index, making concurrency bugs reproducible in tests.
	RoundRobin
)

func (p Policy) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "first-arrival"
}

// Runtime is the threading runtime of one process.
type Runtime struct {
	mon            *monitor.Monitor
	defaultThreads int
	policy         Policy

	nextThreadID int64
	nextTeamID   int64

	// crit maps critical-section names to process-wide locks
	// (guarded by the monitor's lock).
	crit map[string]*critLock

	// mu guards the team/thread recycling lists below. Teams and
	// threads are handed out per parallel region and reclaimed in bulk
	// by Reset once the run has drained, so a schedule exploration
	// re-runs region-heavy programs without reallocating a single team
	// or thread after warm-up.
	mu          sync.Mutex
	teams       []*Team   // handed out during the current run
	threads     []*Thread // handed out during the current run
	freeTeams   []*Team
	freeThreads []*Thread
}

// New creates a runtime whose parallel regions default to defaultThreads
// threads (minimum 1).
func New(mon *monitor.Monitor, defaultThreads int, policy Policy) *Runtime {
	if defaultThreads < 1 {
		defaultThreads = 1
	}
	return &Runtime{
		mon:            mon,
		defaultThreads: defaultThreads,
		policy:         policy,
		crit:           make(map[string]*critLock),
	}
}

// Monitor returns the shared blocking kernel.
func (rt *Runtime) Monitor() *monitor.Monitor { return rt.mon }

// Reset rebinds a runtime to a fresh run — new monitor, default team
// size and policy, counters and critical-section table cleared — so a
// schedule-exploration session can reuse one runtime per rank across
// thousands of runs instead of reallocating it. Only safe once the
// previous run has fully completed (no goroutine of that run still
// holds the runtime).
func (rt *Runtime) Reset(mon *monitor.Monitor, defaultThreads int, policy Policy) {
	if defaultThreads < 1 {
		defaultThreads = 1
	}
	rt.mon = mon
	rt.defaultThreads = defaultThreads
	rt.policy = policy
	rt.nextThreadID = 0
	rt.nextTeamID = 0
	clear(rt.crit)
	rt.mu.Lock()
	rt.freeTeams = append(rt.freeTeams, rt.teams...)
	rt.teams = rt.teams[:0]
	rt.freeThreads = append(rt.freeThreads, rt.threads...)
	rt.threads = rt.threads[:0]
	rt.mu.Unlock()
}

// DefaultThreads returns the default team size.
func (rt *Runtime) DefaultThreads() int { return rt.defaultThreads }

// Team is one thread team.
type Team struct {
	rt    *Runtime
	id    int64
	size  int
	level int

	// Barrier state, guarded by the monitor's lock.
	arrived int
	phase   int
	waiters []*monitor.Waiter

	// claimed tracks single elections under FirstArrival (lazily
	// allocated on first use, guarded by the monitor's lock).
	claimed map[encKey]bool
	// dyn holds the shared iteration counters of dynamic worksharing
	// loops (lazily allocated, guarded by the monitor's lock).
	dyn map[encKey]*int64
}

// ID returns a runtime-unique team id.
func (t *Team) ID() int64 { return t.id }

// Size returns the team size.
func (t *Team) Size() int { return t.size }

// Level returns the nesting depth (0 for the initial implicit team).
func (t *Team) Level() int { return t.level }

// Phase returns the team's barrier phase: the number of completed team
// barriers (implicit or explicit). The verifier counts collective
// executions per phase.
func (t *Team) Phase() int {
	t.rt.mon.Lock()
	defer t.rt.mon.Unlock()
	return t.phase
}

// PhaseLocked returns the barrier phase; the caller must already hold the
// monitor lock (non-reentrant).
func (t *Team) PhaseLocked() int { return t.phase }

// encKey identifies the k-th encounter of a threading construct by a team.
type encKey struct {
	region    int
	encounter int
}

// Thread is one thread of a team.
type Thread struct {
	team *Team
	tid  int
	id   int64
	// encounters counts how many times this thread has reached each
	// construct, aligning construct instances across the team. Region
	// ids are dense ([0, Program.Regions)), so a slice grown on demand
	// replaces the per-thread map.
	encounters []int
}

// Team returns the innermost team.
func (th *Thread) Team() *Team { return th.team }

// TID returns the thread number within its team (0 = master).
func (th *Thread) TID() int { return th.tid }

// ID returns the process-wide unique thread id.
func (th *Thread) ID() int64 { return th.id }

// String renders "team#T.thread#N".
func (th *Thread) String() string {
	return fmt.Sprintf("team%d.t%d", th.team.id, th.tid)
}

func (rt *Runtime) newTeam(size, level int) *Team {
	rt.mu.Lock()
	var t *Team
	if n := len(rt.freeTeams); n > 0 {
		t = rt.freeTeams[n-1]
		rt.freeTeams = rt.freeTeams[:n-1]
	} else {
		t = &Team{}
	}
	rt.teams = append(rt.teams, t)
	rt.mu.Unlock()
	t.rt = rt
	t.id = atomic.AddInt64(&rt.nextTeamID, 1)
	t.size = size
	t.level = level
	t.arrived = 0
	t.phase = 0
	for i := range t.waiters {
		t.waiters[i] = nil
	}
	t.waiters = t.waiters[:0]
	if t.claimed != nil {
		clear(t.claimed)
	}
	if t.dyn != nil {
		clear(t.dyn)
	}
	return t
}

func (rt *Runtime) newThread(team *Team, tid int, reuseID int64) *Thread {
	id := reuseID
	if id == 0 {
		id = atomic.AddInt64(&rt.nextThreadID, 1)
	}
	rt.mu.Lock()
	var th *Thread
	if n := len(rt.freeThreads); n > 0 {
		th = rt.freeThreads[n-1]
		rt.freeThreads = rt.freeThreads[:n-1]
	} else {
		th = &Thread{}
	}
	rt.threads = append(rt.threads, th)
	rt.mu.Unlock()
	th.team = team
	th.tid = tid
	th.id = id
	for i := range th.encounters {
		th.encounters[i] = 0
	}
	return th
}

// InitialThread returns the process's implicit initial team of size 1 and
// its single thread (the thread that calls MPI_Init).
func (rt *Runtime) InitialThread() *Thread {
	team := rt.newTeam(1, 0)
	return rt.newThread(team, 0, 0)
}

// Parallel forks a team of n threads (rt default if n <= 0) that each run
// body, then joins them with the implicit end-of-region barrier. The
// encountering thread becomes thread 0 of the new team, keeping its
// process-wide id (so MPI_THREAD_FUNNELED still recognizes the main
// thread inside a region). The first body error aborts the whole run.
func (rt *Runtime) Parallel(cur *Thread, n int, body func(*Thread) error) error {
	if n <= 0 {
		n = rt.defaultThreads
	}
	team := rt.newTeam(n, cur.team.level+1)
	master := rt.newThread(team, 0, cur.id)

	// Register workers as live before starting any so the quiescence
	// check cannot fire spuriously during spawn.
	for i := 1; i < n; i++ {
		rt.mon.ThreadStarted()
	}
	for i := 1; i < n; i++ {
		worker := rt.newThread(team, i, 0)
		mon := rt.mon // pin: a session may rebind rt after this run aborts
		pipeline.Spawn(func() {
			defer mon.ThreadExited()
			rt.runMember(worker, body)
		})
	}
	rt.runMember(master, body)
	if rt.mon.Aborted() {
		return rt.mon.Err()
	}
	return nil
}

// runMember executes body then the join barrier.
func (rt *Runtime) runMember(th *Thread, body func(*Thread) error) {
	if err := body(th); err != nil && !rt.mon.Aborted() {
		rt.mon.Abort(err)
	}
	// Implicit join barrier; returns immediately (with the abort error)
	// when the run has failed, so no thread hangs on a dead team.
	_ = th.Barrier()
}

// Barrier blocks until all team threads arrive, then advances the team's
// barrier phase. Returns the abort error if the run failed.
func (th *Thread) Barrier() error {
	t := th.team
	m := t.rt.mon
	m.Lock()
	if m.Aborted() {
		err := m.ErrLocked()
		m.Unlock()
		return err
	}
	t.arrived++
	if t.arrived == t.size {
		t.arrived = 0
		t.phase++
		for i, w := range t.waiters {
			m.WakeLocked(w)
			t.waiters[i] = nil
		}
		t.waiters = t.waiters[:0] // keep capacity for the next round
		m.Unlock()
		return nil
	}
	w := m.NewWaiterLocked("team barrier", func() string {
		return fmt.Sprintf("%s waiting at barrier (phase %d, %d/%d arrived)", th, t.phase, t.arrived, t.size)
	})
	t.waiters = append(t.waiters, w)
	m.Unlock()
	return w.Await()
}

// encounter advances this thread's per-construct encounter counter and
// returns the instance index.
func (th *Thread) encounter(regionID int) int {
	for len(th.encounters) <= regionID {
		th.encounters = append(th.encounters, 0)
	}
	k := th.encounters[regionID]
	th.encounters[regionID] = k + 1
	return k
}

// Single reports whether this thread executes the single construct
// instance. The caller runs the body if true, then calls Barrier unless
// the construct is nowait.
func (th *Thread) Single(regionID int) bool {
	idx := th.encounter(regionID)
	t := th.team
	if t.size == 1 {
		return true
	}
	if t.rt.policy == RoundRobin {
		// Rotate with both the region and the encounter so two different
		// single constructs in the same phase get different winners —
		// the schedule that makes concurrent-single bugs manifest.
		return th.tid == (regionID+idx)%t.size
	}
	m := t.rt.mon
	m.Lock()
	defer m.Unlock()
	if t.claimed == nil {
		t.claimed = make(map[encKey]bool)
	}
	key := encKey{region: regionID, encounter: idx}
	if t.claimed[key] {
		return false
	}
	t.claimed[key] = true
	return true
}

// Master reports whether this thread is the team master.
func (th *Thread) Master() bool { return th.tid == 0 }

// Sections returns the indices of the construct's section bodies this
// thread executes (deterministic round-robin distribution). The caller
// runs them in order, then calls Barrier unless nowait.
func (th *Thread) Sections(regionID, count int) []int {
	th.encounter(regionID)
	var mine []int
	for i := 0; i < count; i++ {
		if i%th.team.size == th.tid {
			mine = append(mine, i)
		}
	}
	return mine
}

// ForLoop describes this thread's share of a worksharing loop.
type ForLoop struct {
	th       *Thread
	from, to int64
	static   bool
	next     int64 // static: next index for this thread
	counter  *int64
}

// StaticFor returns a round-robin (cyclic) static schedule over [from,to).
func (th *Thread) StaticFor(regionID int, from, to int64) *ForLoop {
	th.encounter(regionID)
	return &ForLoop{th: th, from: from, to: to, static: true, next: from + int64(th.tid)}
}

// DynamicFor returns a dynamic schedule with chunk size 1 over [from,to):
// threads race on a shared counter, so iteration ownership is
// schedule-dependent (as in real OpenMP).
func (th *Thread) DynamicFor(regionID int, from, to int64) *ForLoop {
	idx := th.encounter(regionID)
	t := th.team
	m := t.rt.mon
	m.Lock()
	if t.dyn == nil {
		t.dyn = make(map[encKey]*int64)
	}
	key := encKey{region: regionID, encounter: idx}
	c, ok := t.dyn[key]
	if !ok {
		v := from
		c = &v
		t.dyn[key] = c
	}
	m.Unlock()
	return &ForLoop{th: th, from: from, to: to, counter: c}
}

// Next returns the next iteration index owned by this thread, or false
// when its share is exhausted.
func (l *ForLoop) Next() (int64, bool) {
	if l.static {
		i := l.next
		if i >= l.to {
			return 0, false
		}
		l.next += int64(l.th.team.size)
		return i, true
	}
	i := atomic.AddInt64(l.counter, 1) - 1
	if i >= l.to {
		return 0, false
	}
	return i, true
}

//
// Critical sections
//

type critLock struct {
	held  bool
	queue []*monitor.Waiter
}

// CriticalEnter acquires the process-wide named critical lock ("" is the
// anonymous one), blocking through the monitor so a stuck holder is
// visible in deadlock reports.
func (rt *Runtime) CriticalEnter(th *Thread, name string) error {
	m := rt.mon
	m.Lock()
	if m.Aborted() {
		err := m.ErrLocked()
		m.Unlock()
		return err
	}
	l := rt.crit[name]
	if l == nil {
		l = &critLock{}
		rt.crit[name] = l
	}
	if !l.held {
		l.held = true
		m.Unlock()
		return nil
	}
	w := m.NewWaiterLocked("critical section", func() string {
		return fmt.Sprintf("%s waiting for critical(%s)", th, critName(name))
	})
	l.queue = append(l.queue, w)
	m.Unlock()
	return w.Await()
}

// CriticalExit releases the lock, handing it to the first queued waiter.
func (rt *Runtime) CriticalExit(th *Thread, name string) {
	m := rt.mon
	m.Lock()
	defer m.Unlock()
	l := rt.crit[name]
	if l == nil {
		return
	}
	if len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		// Ownership transfers directly to the woken waiter.
		m.WakeLocked(w)
		return
	}
	l.held = false
}

func critName(name string) string {
	if name == "" {
		return "<anonymous>"
	}
	return name
}
