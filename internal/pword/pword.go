// Package pword implements the paper's parallelism words.
//
// A parallelism word pw[n] for a CFG node n is the sequence of threading
// constructs and barriers traversed from the beginning of the function to
// n: parallel regions contribute P_i, single-threaded regions (single,
// master, one section of a sections construct) contribute S_i, and
// barriers — explicit or implicit — contribute B. When a region ends, the
// word is simplified: the region's letter and everything after it are
// removed (the paper's simplification for perfectly nested parallelism).
//
// A node is in a monothreaded context iff its word belongs to
//
//	L = (S | P B* S)*
//
// with B letters transparent elsewhere ("Bs are ignored as barriers do not
// influence the level of thread parallelism"): every open P must be
// covered by an immediately-nested S, and two P with no S in between mean
// nested parallelism, which the paper conservatively treats as
// multithreaded even if the word ends with S.
//
// Two nodes in monothreaded regions may still execute simultaneously: the
// paper calls n1, n2 concurrent monothreaded regions when
// pw[n1] = w·S_j·u and pw[n2] = w·S_k·v with j ≠ k — same prefix
// (in particular the same number of barriers, hence the same barrier
// phase) but different single regions.
package pword

import (
	"fmt"
	"strings"

	"parcoach/internal/cfg"
	"parcoach/internal/dom"
	"parcoach/internal/source"
)

// LetterKind is P, S, B, or B* (an indeterminate number of barriers,
// produced when a loop body contains implicit or explicit barriers: the
// barrier count after the loop depends on the trip count, which the
// analysis does not track — all such counts join to B*).
type LetterKind byte

// Letter kinds.
const (
	P     LetterKind = 'P'
	S     LetterKind = 'S'
	B     LetterKind = 'B'
	BStar LetterKind = '*'
)

// isBarrier reports whether the kind denotes barrier letters.
func isBarrier(k LetterKind) bool { return k == B || k == BStar }

// Letter is one element of a parallelism word. ID is the region id for
// P/S letters and is ignored for B. Master marks S letters coming from a
// master construct (always executed by thread 0, no single election).
type Letter struct {
	Kind   LetterKind
	ID     int
	Master bool
}

// Word is an immutable parallelism word; operations return new words.
type Word struct {
	letters []Letter
}

// MakeWord builds a word from letters; used for initial prefixes and tests.
func MakeWord(letters ...Letter) Word {
	return Word{letters: append([]Letter(nil), letters...)}
}

// Empty is the initial word at a function entry in a monothreaded context.
var Empty = Word{}

// Unknown multithreaded prefix used when the analysis is told the function
// may be entered inside a parallel region (the paper's compile-time option
// for the initial thread level). The region id -1 never collides with real
// regions.
var MultithreadedPrefix = MakeWord(Letter{Kind: P, ID: -1})

// Len returns the number of letters.
func (w Word) Len() int { return len(w.letters) }

// At returns the i-th letter.
func (w Word) At(i int) Letter { return w.letters[i] }

// Append returns w with l appended.
func (w Word) Append(l Letter) Word {
	out := make([]Letter, len(w.letters)+1)
	copy(out, w.letters)
	out[len(w.letters)] = l
	return Word{letters: out}
}

// AppendBarrier appends a B, absorbing into a trailing B* (an unknown
// number of barriers plus one more is still unknown).
func (w Word) AppendBarrier() Word {
	if n := len(w.letters); n > 0 && w.letters[n-1].Kind == BStar {
		return w
	}
	return w.Append(Letter{Kind: B})
}

// PopRegion returns w truncated at the last occurrence of the region
// letter with the given id (the paper's simplification at region end).
// Popping a region that is not open returns w unchanged.
func (w Word) PopRegion(id int) Word {
	for i := len(w.letters) - 1; i >= 0; i-- {
		l := w.letters[i]
		if (l.Kind == P || l.Kind == S) && l.ID == id {
			out := make([]Letter, i)
			copy(out, w.letters[:i])
			return Word{letters: out}
		}
	}
	return w
}

// Equal reports letter-wise equality. B letters compare equal to each
// other regardless of origin; P/S letters compare by kind and id; B* only
// equals B*.
func (w Word) Equal(v Word) bool {
	if len(w.letters) != len(v.letters) {
		return false
	}
	for i := range w.letters {
		if !sameLetter(w.letters[i], v.letters[i]) {
			return false
		}
	}
	return true
}

func sameLetter(a, b Letter) bool {
	if a.Kind != b.Kind {
		return false
	}
	if isBarrier(a.Kind) {
		return true
	}
	return a.ID == b.ID
}

// String renders the word compactly, e.g. "P0 B S3"; the empty word is ε.
func (w Word) String() string {
	if len(w.letters) == 0 {
		return "ε"
	}
	parts := make([]string, len(w.letters))
	for i, l := range w.letters {
		switch l.Kind {
		case B:
			parts[i] = "B"
		case BStar:
			parts[i] = "B*"
		default:
			parts[i] = fmt.Sprintf("%c%d", l.Kind, l.ID)
		}
	}
	return strings.Join(parts, " ")
}

// InL reports membership in L = (S|PB*S)*, with B transparent: after
// stripping barriers, every P must be immediately followed by an S and the
// word must not end in an uncovered P.
func (w Word) InL() bool {
	stripped := make([]LetterKind, 0, len(w.letters))
	for _, l := range w.letters {
		if !isBarrier(l.Kind) {
			stripped = append(stripped, l.Kind)
		}
	}
	for i := 0; i < len(stripped); {
		switch {
		case stripped[i] == S:
			i++
		case stripped[i] == P && i+1 < len(stripped) && stripped[i+1] == S:
			i += 2
		default:
			return false
		}
	}
	return true
}

// Monothreaded is the paper's phase-1 test: the node executes on at most
// one thread per process for any team sizes and schedules.
func (w Word) Monothreaded() bool { return w.InL() }

// MonoUnderParallelPrefix reports whether P·w ∈ L, i.e. whether the node
// stays monothreaded when the function is entered from an unknown
// multithreaded context. Because the unknown prefix region is never
// closed inside the function, the word under that context is exactly the
// mono-context word with a P prepended — so the analysis never needs a
// second fixpoint per function.
func (w Word) MonoUnderParallelPrefix() bool {
	stripped := make([]LetterKind, 0, len(w.letters))
	for _, l := range w.letters {
		if !isBarrier(l.Kind) {
			stripped = append(stripped, l.Kind)
		}
	}
	// The leading virtual P must be covered by an S...
	if len(stripped) == 0 || stripped[0] != S {
		return false
	}
	// ...and the rest must be in L on its own.
	for i := 1; i < len(stripped); {
		switch {
		case stripped[i] == S:
			i++
		case stripped[i] == P && i+1 < len(stripped) && stripped[i+1] == S:
			i += 2
		default:
			return false
		}
	}
	return true
}

// InnermostS returns the last S letter of the word and true when the word
// ends in a single-threaded region (ignoring trailing barriers cannot
// occur: a barrier may not be closely nested in a single region).
func (w Word) InnermostS() (Letter, bool) {
	if n := len(w.letters); n > 0 && w.letters[n-1].Kind == S {
		return w.letters[n-1], true
	}
	return Letter{}, false
}

// Concurrent implements the paper's phase-2 relation: it reports whether
// two monothreaded nodes with words w and v can execute simultaneously,
// i.e. w = x·S_j·u, v = x·S_k·v' with j ≠ k for the longest common prefix
// x. Both words must individually be monothreaded for the relation to be
// meaningful; callers check that first.
func Concurrent(w, v Word) bool {
	ws, vs := segments(w), segments(v)
	for i := 0; i < len(ws) && i < len(vs); i++ {
		if !gapCompatible(ws[i], vs[i]) {
			return false // provably different barrier phases
		}
		if !sameLetter(ws[i].letter, vs[i].letter) {
			a, b := ws[i].letter, vs[i].letter
			return a.Kind == S && b.Kind == S && a.ID != b.ID
		}
	}
	return false // one word prefixes the other: same thread, ordered
}

// seg is a non-barrier letter together with the barrier gap preceding it:
// bCount barriers, or an indeterminate count when star is set.
type seg struct {
	bCount int
	star   bool
	letter Letter
}

func segments(w Word) []seg {
	var out []seg
	cur := seg{}
	for _, l := range w.letters {
		switch l.Kind {
		case B:
			cur.bCount++
		case BStar:
			cur.star = true
		default:
			cur.letter = l
			out = append(out, cur)
			cur = seg{}
		}
	}
	return out
}

// gapCompatible reports whether two barrier gaps may denote the same
// phase: indeterminate counts (B*) match anything.
func gapCompatible(a, b seg) bool {
	return a.star || b.star || a.bCount == b.bCount
}

// Result is the outcome of computing parallelism words over a CFG.
type Result struct {
	// Words maps node id to the word at node entry.
	Words []Word
	// Ambiguous marks nodes whose word differs between two incoming paths
	// (non-conforming barrier/region placement, e.g. a barrier under a
	// branch or in a loop body). The paper's model assumes this cannot
	// happen; we detect it, keep the first word, and let callers treat
	// such nodes conservatively.
	Ambiguous []bool
	// Conflicts records one located message per ambiguous node.
	Conflicts []Conflict
}

// Conflict describes an inconsistent-word detection.
type Conflict struct {
	Node *cfg.Node
	Pos  source.Pos
	A, B Word
}

// Word returns the word of node n.
func (r *Result) Word(n *cfg.Node) Word { return r.Words[n.ID] }

// IsAmbiguous reports whether n had conflicting incoming words.
func (r *Result) IsAmbiguous(n *cfg.Node) bool { return r.Ambiguous[n.ID] }

// Compute propagates parallelism words over g to a fixpoint, starting
// from the initial word at the entry node (Empty for a monothreaded
// start, or MultithreadedPrefix when the surrounding context is unknown).
//
// The word attached to a node is the word *at* the node (used to judge its
// collectives); the node's effect (region push/pop, barrier append) applies
// to its out-edges. When two paths reach a node with words that differ
// only in barrier letters, the words join to a common prefix plus B*: on
// loop back edges this is the normal loop-carried-barrier case (a single
// or worksharing construct inside a sequential loop) and is silent; on
// forward edges it means barrier counts diverge between branch arms —
// non-conforming placement, reported as a Conflict but still joined so
// the analysis can continue conservatively. Structurally different words
// (different open regions) are reported and the first word is kept.
func Compute(g *cfg.Graph, initial Word) *Result {
	return ComputeWithDom(g, initial, nil)
}

// ComputeWithDom is Compute with a pre-built dominator tree of g (used by
// the analyzer to share one tree across both initial contexts and the
// other passes); a nil tree is computed on the spot.
func ComputeWithDom(g *cfg.Graph, initial Word, domTree *dom.Tree) *Result {
	res := &Result{
		Words:     make([]Word, len(g.Nodes)),
		Ambiguous: make([]bool, len(g.Nodes)),
	}
	// The dominator tree is only consulted to classify joins as
	// back-edge (loop-carried) or forward (conditional barrier); most
	// functions never join at all, so build it lazily.
	domOf := func() *dom.Tree {
		if domTree == nil {
			domTree = dom.Dominators(g)
		}
		return domTree
	}
	has := make([]bool, len(g.Nodes))
	type item struct {
		from *cfg.Node // nil for the entry seed
		n    *cfg.Node
		w    Word
	}
	work := []item{{nil, g.Entry, initial}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		n, w := it.n, it.w
		if has[n.ID] {
			old := res.Words[n.ID]
			if old.Equal(w) {
				continue
			}
			joined, certain, ok := join(old, w)
			if !ok {
				if !res.Ambiguous[n.ID] {
					res.Ambiguous[n.ID] = true
					res.Conflicts = append(res.Conflicts, Conflict{Node: n, Pos: n.Pos, A: old, B: w})
				}
				continue
			}
			backEdge := it.from != nil && domOf().Dominates(n, it.from)
			if certain && !backEdge && !res.Ambiguous[n.ID] {
				// Two certain barrier counts differ between forward
				// paths: a barrier conditionally executed by some
				// threads — non-conforming placement. Loop-carried
				// indeterminacy (a B* in either word) is the normal
				// "single/pfor inside a sequential loop" case and stays
				// silent, as do back-edge joins.
				res.Ambiguous[n.ID] = true
				res.Conflicts = append(res.Conflicts, Conflict{Node: n, Pos: n.Pos, A: old, B: w})
			}
			if joined.Equal(old) {
				continue
			}
			res.Words[n.ID] = joined
			w = joined
		} else {
			has[n.ID] = true
			res.Words[n.ID] = w
		}
		out := transfer(n, w)
		for _, s := range n.Succs {
			work = append(work, item{n, s, out})
		}
	}
	return res
}

// gap is a run of barrier letters between two region letters.
type gap struct {
	count int
	star  bool
}

// split decomposes a word into its region letters and the barrier gaps
// around them; len(gaps) == len(letters)+1.
func split(w Word) (gaps []gap, letters []Letter) {
	g := gap{}
	for _, l := range w.letters {
		switch l.Kind {
		case B:
			g.count++
		case BStar:
			g.star = true
		default:
			gaps = append(gaps, g)
			g = gap{}
			letters = append(letters, l)
		}
	}
	gaps = append(gaps, g)
	return gaps, letters
}

// join merges two words whose region-letter structure agrees, widening
// every disagreeing barrier gap to B*. ok is false when the open regions
// themselves disagree (a structural conflict). certain reports whether
// some disagreeing gap had exact counts on both sides — that is a
// conditionally executed barrier (non-conforming placement), as opposed
// to loop-carried indeterminacy where a B* is already involved.
func join(a, b Word) (joined Word, certain, ok bool) {
	ga, la := split(a)
	gb, lb := split(b)
	if len(la) != len(lb) {
		return Word{}, false, false
	}
	for i := range la {
		if !sameLetter(la[i], lb[i]) {
			return Word{}, false, false
		}
	}
	var out []Letter
	emitGap := func(x, y gap) {
		if x == y && !x.star {
			for k := 0; k < x.count; k++ {
				out = append(out, Letter{Kind: B})
			}
			return
		}
		if !x.star && !y.star {
			// Both counts are exact yet different: a barrier executed on
			// one path but not the other — certain divergence.
			certain = true
		}
		out = append(out, Letter{Kind: BStar})
	}
	for i := range la {
		emitGap(ga[i], gb[i])
		out = append(out, la[i])
	}
	emitGap(ga[len(la)], gb[len(lb)])
	return Word{letters: out}, certain, true
}

// transfer applies a node's effect to the incoming word.
func transfer(n *cfg.Node, w Word) Word {
	switch n.Kind {
	case cfg.KindParallelBegin:
		return w.Append(Letter{Kind: P, ID: n.RegionID})
	case cfg.KindParallelEnd:
		return w.PopRegion(n.RegionID)
	case cfg.KindSingleBegin, cfg.KindSectionBegin:
		return w.Append(Letter{Kind: S, ID: n.RegionID})
	case cfg.KindMasterBegin:
		return w.Append(Letter{Kind: S, ID: n.RegionID, Master: true})
	case cfg.KindSingleEnd, cfg.KindMasterEnd, cfg.KindSectionEnd:
		return w.PopRegion(n.RegionID)
	case cfg.KindBarrier:
		return w.AppendBarrier()
	}
	return w
}
