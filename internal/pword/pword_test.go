package pword

import (
	"testing"
	"testing/quick"

	"parcoach/internal/cfg"
	"parcoach/internal/parser"
)

func w(kinds ...Letter) Word { return MakeWord(kinds...) }

func p(id int) Letter { return Letter{Kind: P, ID: id} }
func s(id int) Letter { return Letter{Kind: S, ID: id} }
func bb() Letter      { return Letter{Kind: B} }

func TestInL(t *testing.T) {
	tests := []struct {
		word Word
		want bool
	}{
		{Empty, true},                     // function top level, monothreaded start
		{w(s(1)), true},                   // inside single at top level
		{w(p(0)), false},                  // inside parallel, no single
		{w(p(0), s(1)), true},             // paper: PS
		{w(p(0), bb(), s(1)), true},       // paper: PBS
		{w(p(0), bb(), bb(), s(1)), true}, // PB*S
		{w(p(0), p(1)), false},            // nested parallel
		{w(p(0), p(1), s(2)), false},      // paper: PP…S still rejected
		{w(p(0), s(1), s(2)), true},       // master inside single
		{w(s(0), p(1), s(2)), true},       // single{parallel{single{}}}
		{w(p(0), s(1), p(2)), false},      // parallel inside single: multithreaded again
		{w(p(0), s(1), p(2), s(3)), true}, // …covered by inner single
		{w(bb()), true},                   // barrier at top level: still initial thread
		{w(bb(), s(1)), true},             // B then single
		{w(p(0), bb()), false},            // still inside parallel
	}
	for _, tt := range tests {
		if got := tt.word.InL(); got != tt.want {
			t.Errorf("InL(%s) = %v, want %v", tt.word, got, tt.want)
		}
		if tt.word.Monothreaded() != tt.want {
			t.Errorf("Monothreaded(%s) mismatch", tt.word)
		}
	}
}

func TestPopRegion(t *testing.T) {
	word := w(p(0), bb(), s(1))
	popped := word.PopRegion(1)
	if !popped.Equal(w(p(0), bb())) {
		t.Errorf("PopRegion(1) = %s", popped)
	}
	// Popping the parallel region drops everything after it too.
	deep := w(p(0), bb(), s(1))
	if got := deep.PopRegion(0); got.Len() != 0 {
		t.Errorf("PopRegion(0) = %s, want ε", got)
	}
	// Popping an unopened region is a no-op.
	if got := word.PopRegion(42); !got.Equal(word) {
		t.Errorf("PopRegion(42) changed the word: %s", got)
	}
	// Original word must be unchanged (immutability).
	if !word.Equal(w(p(0), bb(), s(1))) {
		t.Error("PopRegion mutated its receiver")
	}
}

func TestAppendImmutable(t *testing.T) {
	base := w(p(0))
	w1 := base.Append(s(1))
	w2 := base.Append(s(2))
	if !w1.Equal(w(p(0), s(1))) || !w2.Equal(w(p(0), s(2))) {
		t.Error("Append results wrong")
	}
	if !base.Equal(w(p(0))) {
		t.Error("Append mutated the base word")
	}
}

func TestEqualTreatsBarriersAlike(t *testing.T) {
	a := w(p(0), Letter{Kind: B, ID: 7}, s(1))
	b := w(p(0), Letter{Kind: B, ID: 9}, s(1))
	if !a.Equal(b) {
		t.Error("B letters must compare equal regardless of id")
	}
	if a.Equal(w(p(0), s(1))) {
		t.Error("words of different length must differ")
	}
	if a.Equal(w(p(1), bb(), s(1))) {
		t.Error("P ids must be compared")
	}
}

func TestConcurrent(t *testing.T) {
	tests := []struct {
		a, b Word
		want bool
	}{
		// Two singles, no barrier between: concurrent.
		{w(p(0), s(1)), w(p(0), s(2)), true},
		// Barrier separates the phases: not concurrent.
		{w(p(0), s(1)), w(p(0), bb(), s(2)), false},
		// Same region: ordered by the single thread.
		{w(p(0), s(1)), w(p(0), s(1)), false},
		// One word prefixes the other (nested region): same thread.
		{w(p(0), s(1)), w(p(0), s(1), s(2)), false},
		// Two sections of a sections construct: concurrent.
		{w(p(0), s(3)), w(p(0), s(4)), true},
		// Divergence at a P letter, not S: not a phase-2 case.
		{w(p(0)), w(p(1)), false},
		// Same prefix with equal barrier counts then different singles.
		{w(p(0), bb(), s(1)), w(p(0), bb(), s(2)), true},
		// Different barrier counts: different phases.
		{w(p(0), bb(), bb(), s(1)), w(p(0), bb(), s(2)), false},
		// Master vs single with different ids: still concurrent statically
		// (dynamic check clears it when the same thread runs both).
		{w(p(0), Letter{Kind: S, ID: 1, Master: true}), w(p(0), s(2)), true},
	}
	for _, tt := range tests {
		if got := Concurrent(tt.a, tt.b); got != tt.want {
			t.Errorf("Concurrent(%s, %s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		// Symmetry.
		if got := Concurrent(tt.b, tt.a); got != tt.want {
			t.Errorf("Concurrent(%s, %s) not symmetric", tt.b, tt.a)
		}
	}
}

func TestInnermostS(t *testing.T) {
	if _, ok := Empty.InnermostS(); ok {
		t.Error("empty word has no S")
	}
	if _, ok := w(p(0)).InnermostS(); ok {
		t.Error("P word has no trailing S")
	}
	l, ok := w(p(0), Letter{Kind: S, ID: 5, Master: true}).InnermostS()
	if !ok || l.ID != 5 || !l.Master {
		t.Errorf("InnermostS = %+v, %v", l, ok)
	}
}

func TestStringRendering(t *testing.T) {
	if Empty.String() != "ε" {
		t.Errorf("empty word renders %q", Empty.String())
	}
	if got := w(p(0), bb(), s(3)).String(); got != "P0 B S3" {
		t.Errorf("String = %q", got)
	}
}

//
// Compute over real CFGs
//

func computeMain(t *testing.T, body string, initial Word) (*cfg.Graph, *Result) {
	t.Helper()
	prog, err := parser.Parse("t.mh", "func main() {\n"+body+"\n}")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.Build(prog.Func("main"))
	return g, Compute(g, initial)
}

func collWords(g *cfg.Graph, r *Result) []Word {
	var out []Word
	for _, n := range g.Collectives() {
		out = append(out, r.Word(n))
	}
	return out
}

func TestComputeTopLevelCollective(t *testing.T) {
	g, r := computeMain(t, "MPI_Barrier()", Empty)
	ws := collWords(g, r)
	if len(ws) != 1 || !ws[0].Equal(Empty) {
		t.Errorf("top-level collective word = %v", ws)
	}
	if !ws[0].Monothreaded() {
		t.Error("top-level collective must be monothreaded")
	}
}

func TestComputeParallelCollective(t *testing.T) {
	g, r := computeMain(t, "parallel { MPI_Barrier() }", Empty)
	ws := collWords(g, r)
	if len(ws) != 1 || ws[0].Monothreaded() {
		t.Errorf("collective in parallel must be multithreaded, word %v", ws)
	}
	if ws[0].Len() != 1 || ws[0].At(0).Kind != P {
		t.Errorf("word must be a single P, got %s", ws[0])
	}
}

func TestComputeSingleProtects(t *testing.T) {
	g, r := computeMain(t, "parallel { single { MPI_Bcast(x) } }", Empty)
	ws := collWords(g, r)
	if len(ws) != 1 || !ws[0].Monothreaded() {
		t.Errorf("collective in single must be monothreaded, got %s", ws[0])
	}
}

func TestComputeWordAfterRegionSimplifies(t *testing.T) {
	g, r := computeMain(t, "parallel { single { var x = 1 } }\nMPI_Barrier()", Empty)
	ws := collWords(g, r)
	if len(ws) != 1 || !ws[0].Equal(Empty) {
		t.Errorf("after the parallel region the word must simplify to ε, got %s", ws[0])
	}
}

func TestComputeBarrierPhases(t *testing.T) {
	// Two singles separated by the first single's implicit barrier.
	g, r := computeMain(t, `
parallel {
	single { MPI_Bcast(x) }
	single { MPI_Reduce(y, y) }
}`, Empty)
	ws := collWords(g, r)
	if len(ws) != 2 {
		t.Fatalf("want 2 collectives, got %d", len(ws))
	}
	if Concurrent(ws[0], ws[1]) {
		t.Errorf("implicit barrier separates the singles: %s vs %s", ws[0], ws[1])
	}
	// With nowait they become concurrent.
	g2, r2 := computeMain(t, `
parallel {
	single nowait { MPI_Bcast(x) }
	single { MPI_Reduce(y, y) }
}`, Empty)
	ws2 := collWords(g2, r2)
	if !Concurrent(ws2[0], ws2[1]) {
		t.Errorf("nowait singles must be concurrent: %s vs %s", ws2[0], ws2[1])
	}
}

func TestComputeSectionsConcurrent(t *testing.T) {
	g, r := computeMain(t, `
parallel {
	sections {
		section { MPI_Bcast(x) }
		section { MPI_Reduce(y, y) }
	}
}`, Empty)
	ws := collWords(g, r)
	if len(ws) != 2 {
		t.Fatalf("want 2 collectives, got %d", len(ws))
	}
	for _, word := range ws {
		if !word.Monothreaded() {
			t.Errorf("section body must be monothreaded: %s", word)
		}
	}
	if !Concurrent(ws[0], ws[1]) {
		t.Errorf("two sections must be concurrent monothreaded regions: %s vs %s", ws[0], ws[1])
	}
}

func TestComputeNestedParallel(t *testing.T) {
	g, r := computeMain(t, "parallel { parallel { single { MPI_Barrier() } } }", Empty)
	ws := collWords(g, r)
	if ws[0].Monothreaded() {
		t.Errorf("single under nested parallel is still multithreaded (one per team): %s", ws[0])
	}
}

func TestComputeMasterWord(t *testing.T) {
	g, r := computeMain(t, "parallel { master { MPI_Bcast(x) } }", Empty)
	ws := collWords(g, r)
	if !ws[0].Monothreaded() {
		t.Errorf("master must be monothreaded: %s", ws[0])
	}
	l, ok := ws[0].InnermostS()
	if !ok || !l.Master {
		t.Error("master letter must be flagged")
	}
}

func TestComputeCriticalIsNotMonothreaded(t *testing.T) {
	g, r := computeMain(t, "parallel { critical { MPI_Barrier() } }", Empty)
	ws := collWords(g, r)
	if ws[0].Monothreaded() {
		t.Errorf("critical serializes but does not single-thread: %s", ws[0])
	}
}

func TestComputePforBodyMultithreaded(t *testing.T) {
	g, r := computeMain(t, "parallel { pfor i = 0 .. 4 { MPI_Barrier() } }", Empty)
	ws := collWords(g, r)
	if ws[0].Monothreaded() {
		t.Errorf("pfor body is multithreaded: %s", ws[0])
	}
}

func TestComputeInitialPrefix(t *testing.T) {
	g, r := computeMain(t, "MPI_Barrier()", MultithreadedPrefix)
	ws := collWords(g, r)
	if ws[0].Monothreaded() {
		t.Error("with unknown multithreaded prefix a bare collective is unsafe")
	}
	g2, r2 := computeMain(t, "single { MPI_Barrier() }", MultithreadedPrefix)
	ws2 := collWords(g2, r2)
	if !ws2[0].Monothreaded() {
		t.Error("orphaned single protects the collective under the unknown prefix")
	}
}

func TestComputeAmbiguousBarrierInBranch(t *testing.T) {
	// A barrier under a rank-dependent branch inside parallel makes the
	// word of the merge node path-dependent: flagged, not silently wrong.
	_, r := computeMain(t, `
parallel {
	if tid() == 0 {
		barrier
	}
	single { MPI_Bcast(x) }
}`, Empty)
	if len(r.Conflicts) == 0 {
		t.Error("conflicting words must be reported")
	}
	amb := false
	for _, flag := range r.Ambiguous {
		if flag {
			amb = true
		}
	}
	if !amb {
		t.Error("ambiguous nodes must be marked")
	}
}

func TestComputeLoopKeepsWordStable(t *testing.T) {
	_, r := computeMain(t, `
parallel {
	pfor i = 0 .. 8 { var x = i }
	single { MPI_Bcast(y) }
}
for it = 0 .. 10 {
	MPI_Allreduce(z, z)
}`, Empty)
	if len(r.Conflicts) != 0 {
		t.Errorf("balanced loops must not create conflicts: %+v", r.Conflicts)
	}
}

func TestComputeBarrierInLoopJoinsToStar(t *testing.T) {
	// A barrier in a sequential loop inside parallel is conforming (all
	// threads iterate alike); the barrier count is loop-carried, so the
	// word after the loop joins to P B* without a conflict.
	g, r := computeMain(t, `
parallel {
	for i = 0 .. 4 {
		barrier
	}
	single { MPI_Bcast(x) }
}`, Empty)
	if len(r.Conflicts) != 0 {
		t.Errorf("loop-carried barriers must join silently: %+v", r.Conflicts)
	}
	ws := collWords(g, r)
	if len(ws) != 1 || !ws[0].Monothreaded() {
		t.Fatalf("collective after loop must stay monothreaded: %v", ws)
	}
	star := false
	for i := 0; i < ws[0].Len(); i++ {
		if ws[0].At(i).Kind == BStar {
			star = true
		}
	}
	if !star {
		t.Errorf("word after barrier loop must contain B*: %s", ws[0])
	}
}

func TestConcurrentWithStar(t *testing.T) {
	// P B* S1 may share a phase with P B B S2: concurrent candidate.
	a := MakeWord(p(0), Letter{Kind: BStar}, s(1))
	b := MakeWord(p(0), bb(), bb(), s(2))
	if !Concurrent(a, b) {
		t.Error("B* must match any barrier count in the concurrency relation")
	}
	// Same region after stars: not concurrent.
	c := MakeWord(p(0), Letter{Kind: BStar}, s(1))
	if Concurrent(a, c) {
		t.Error("identical starred words are not concurrent")
	}
}

// Property: InL is invariant under inserting B letters anywhere.
func TestInLBarrierInsensitive(t *testing.T) {
	check := func(raw []byte, positions []uint8) bool {
		base := make([]Letter, 0, len(raw))
		id := 0
		for _, r := range raw {
			switch r % 3 {
			case 0:
				base = append(base, Letter{Kind: P, ID: id})
			case 1:
				base = append(base, Letter{Kind: S, ID: id})
			case 2:
				base = append(base, Letter{Kind: B})
			}
			id++
			if len(base) > 12 {
				break
			}
		}
		word := MakeWord(base...)
		want := word.InL()
		for _, pos := range positions {
			if len(base) == 0 {
				break
			}
			i := int(pos) % (len(base) + 1)
			withB := append(append(append([]Letter{}, base[:i]...), Letter{Kind: B}), base[i:]...)
			if MakeWord(withB...).InL() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Concurrent is irreflexive and symmetric for random words.
func TestConcurrentProperties(t *testing.T) {
	mk := func(raw []byte) Word {
		letters := make([]Letter, 0, len(raw))
		for _, r := range raw {
			switch r % 3 {
			case 0:
				letters = append(letters, Letter{Kind: P, ID: int(r % 5)})
			case 1:
				letters = append(letters, Letter{Kind: S, ID: int(r % 7)})
			default:
				letters = append(letters, Letter{Kind: B})
			}
			if len(letters) > 10 {
				break
			}
		}
		return MakeWord(letters...)
	}
	check := func(a, b []byte) bool {
		wa, wb := mk(a), mk(b)
		if Concurrent(wa, wa) || Concurrent(wb, wb) {
			return false
		}
		return Concurrent(wa, wb) == Concurrent(wb, wa)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
