// The work-stealing DFS frontier.
//
// The wave-batched frontier (explore.go, kept as FrontierWave) fans
// each wave of prefixes across the pool and then barriers: on skewed
// prefix trees — where one subtree keeps producing work long after its
// siblings drained — most workers idle at every barrier while the wave's
// straggler finishes. This file removes the barrier entirely: every
// worker owns a private LIFO deque of prefixes, pushes the children of
// the run it just completed, and pops the deepest child next, so
// consecutive runs on one worker share the longest possible common
// prefix (warm replay: the interpreter retraces a prefix it just
// executed). A worker whose deque drains steals from the *shallow* end
// of a peer's deque — the oldest entry, rooting the largest remaining
// subtree — which is the classic owner-LIFO/thief-FIFO split that keeps
// steal traffic rare and steals chunky.
//
// Budget accounting is per-run: a worker reserves a slot with one
// atomic increment before starting a run, so the run count can never
// overshoot Options.Schedules no matter how many workers race at the
// boundary (the wave frontier bounded this with batch truncation; here
// the reservation is the single source of truth). Dedupe goes through
// the shared pipeline.ShardedSet, safe under concurrent enumeration.
package explore

import (
	"sync"
	"sync/atomic"

	"parcoach/internal/interp"
	"parcoach/internal/pipeline"
	"parcoach/internal/sched"
)

// prefixDeque is one worker's frontier share. The owner pushes and pops
// at the top (LIFO, deepest prefix first); thieves take from the bottom
// (the shallowest prefix, i.e. the biggest stolen subtree). A plain
// mutex suffices: runs cost tens of microseconds, so deque operations
// are nowhere near contention.
type prefixDeque struct {
	mu    sync.Mutex
	items [][]sched.ThreadID
}

func (d *prefixDeque) push(p []sched.ThreadID) {
	d.mu.Lock()
	d.items = append(d.items, p)
	d.mu.Unlock()
}

// popTop removes the most recently pushed prefix (owner side).
func (d *prefixDeque) popTop() ([]sched.ThreadID, bool) {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return nil, false
	}
	p := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	d.mu.Unlock()
	return p, true
}

// stealBottom removes the oldest prefix (thief side).
func (d *prefixDeque) stealBottom() ([]sched.ThreadID, bool) {
	d.mu.Lock()
	if len(d.items) == 0 {
		d.mu.Unlock()
		return nil, false
	}
	p := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	d.mu.Unlock()
	return p, true
}

// stealFrontier is the shared state of one DFS exploration. The same
// deque/parking machinery drives both the plain DFS enumeration and the
// DPOR-reduced one (dpor.go): exec is the per-prefix body — run the
// prefix, record the result, push the children the strategy requires.
type stealFrontier struct {
	sess *interp.Session
	opts Options
	seen *pipeline.ShardedSet
	sink *progressSink
	exec func(w int, prefix []sched.ThreadID)

	deques  []prefixDeque
	results [][]dfsRun // per-worker, merged after the drain

	// inflight counts prefixes that are enqueued or being processed;
	// the run that decrements it to zero ends the exploration.
	inflight int64
	// started reserves budget slots: the n-th reservation with
	// n > Schedules does not run (and marks the frontier leftover).
	started  int64
	leftover atomic.Bool
	pruned   int64
	diverged int64

	// DPOR-only state (nil / zero for plain DFS): ledger is the spawn
	// ledger keyed by (decision-path hash, candidate) — the global sleep
	// set that keeps stolen subtrees sound — and sleepSkips counts the
	// backtrack candidates it suppressed.
	ledger     *pipeline.ShardedSet
	sleepSkips int64
	overflowed int64

	// Idle workers park on wake (nudged by pushes) or done (closed when
	// inflight reaches zero or the budget is spent with work left).
	sleepers int32
	wake     chan struct{}
	done     chan struct{}
	endOnce  sync.Once
}

// newStealFrontier builds the shared frontier state with the root
// prefix seeded on worker 0's deque.
func newStealFrontier(sess *interp.Session, opts Options, pool *pipeline.Pool,
	seen *pipeline.ShardedSet) *stealFrontier {

	width := pool.Workers()
	if width > opts.Schedules {
		width = opts.Schedules
	}
	if width < 1 {
		width = 1
	}
	f := &stealFrontier{
		sess:    sess,
		opts:    opts,
		seen:    seen,
		deques:  make([]prefixDeque, width),
		results: make([][]dfsRun, width),
		wake:    make(chan struct{}, width),
		done:    make(chan struct{}),
	}
	// Seed the root (the unconstrained run) on worker 0's deque.
	f.inflight = 1
	f.deques[0].items = append(f.deques[0].items, nil)
	return f
}

// drain runs the workers and collects the completed runs.
func (f *stealFrontier) drain(pool *pipeline.Pool) (runs []dfsRun, leftover bool, pruned, diverged int) {
	// The pool recruits up to width-1 helpers and the caller works too;
	// if the pool is busy elsewhere, fewer helpers join and the idle
	// deques are simply stolen empty.
	pool.Map(len(f.deques), f.worker)

	for _, rs := range f.results {
		runs = append(runs, rs...)
	}
	return runs, f.leftover.Load(), int(atomic.LoadInt64(&f.pruned)), int(atomic.LoadInt64(&f.diverged))
}

// exploreDFSSteal drains the prefix tree with work-stealing workers on
// the shared pool.
func exploreDFSSteal(sess *interp.Session, opts Options, pool *pipeline.Pool,
	seen *pipeline.ShardedSet, sink *progressSink) (runs []dfsRun, leftover bool, pruned, diverged int) {

	f := newStealFrontier(sess, opts, pool, seen)
	f.sink = sink
	f.exec = f.execDFS
	return f.drain(pool)
}

// worker drains prefixes until the tree is explored or the budget is
// spent.
func (f *stealFrontier) worker(w int) {
	for {
		prefix, ok := f.next(w)
		if !ok {
			return
		}
		f.process(w, prefix)
		if atomic.AddInt64(&f.inflight, -1) == 0 {
			f.end()
			return
		}
	}
}

// end wakes every parked worker and terminates the drain.
func (f *stealFrontier) end() {
	f.endOnce.Do(func() { close(f.done) })
}

// scan tries the worker's own deque top, then every peer's bottom.
func (f *stealFrontier) scan(w int) ([]sched.ThreadID, bool) {
	if p, ok := f.deques[w].popTop(); ok {
		return p, true
	}
	for i := 1; i < len(f.deques); i++ {
		if p, ok := f.deques[(w+i)%len(f.deques)].stealBottom(); ok {
			return p, true
		}
	}
	return nil, false
}

// next returns the worker's next prefix, parking when the frontier is
// momentarily empty but peers still hold in-flight work.
func (f *stealFrontier) next(w int) ([]sched.ThreadID, bool) {
	for {
		if p, ok := f.scan(w); ok {
			return p, true
		}
		if atomic.LoadInt64(&f.inflight) == 0 {
			return nil, false
		}
		select {
		case <-f.done:
			return nil, false
		default:
		}
		// Register as a sleeper, then re-scan once: a push between the
		// failed scan and the registration would otherwise be missed.
		atomic.AddInt32(&f.sleepers, 1)
		if p, ok := f.scan(w); ok {
			atomic.AddInt32(&f.sleepers, -1)
			return p, true
		}
		select {
		case <-f.wake:
		case <-f.done:
		}
		atomic.AddInt32(&f.sleepers, -1)
	}
}

// process reserves budget and hands the prefix to the frontier's body.
func (f *stealFrontier) process(w int, prefix []sched.ThreadID) {
	if ctxErr(f.opts.Ctx) != nil {
		// Canceled: abandon this prefix (and, via end, the whole frontier)
		// without consuming budget. Workers mid-run are aborted by their
		// own RunCtx guard; this check is what stops the queued tail.
		f.leftover.Store(true)
		f.end()
		return
	}
	if atomic.AddInt64(&f.started, 1) > int64(f.opts.Schedules) {
		// Budget spent with this prefix (at least) unexplored: the
		// enumeration is not exhaustive. Ending here is what bounds the
		// run count; the reservation, not the wave boundary, is the
		// budget check.
		f.leftover.Store(true)
		f.end()
		return
	}
	f.exec(w, prefix)
}

// pushChild enqueues one child prefix on the worker's own deque and
// nudges a parked peer.
func (f *stealFrontier) pushChild(w int, child []sched.ThreadID) {
	atomic.AddInt64(&f.inflight, 1)
	f.deques[w].push(child)
	if atomic.LoadInt32(&f.sleepers) > 0 {
		select {
		case f.wake <- struct{}{}:
		default:
		}
	}
}

// execDFS is the plain DFS body: run the prefix and enqueue every
// unseen untaken alternative beyond it.
func (f *stealFrontier) execDFS(w int, prefix []sched.ThreadID) {
	dr, rec := runPrefix(f.opts.Ctx, f.sess, prefix)
	if dr.outcome == interp.OutcomeCanceled {
		// Aborted half-run: no verdict, no children; the frontier winds
		// down through the ctx check in process.
		if rec != nil {
			recorderPool.Put(rec)
		}
		f.leftover.Store(true)
		f.end()
		return
	}
	f.results[w] = append(f.results[w], dr)
	f.sink.noteDFS(&f.results[w][len(f.results[w])-1])
	if rec == nil {
		return // quarantined panic: recorder abandoned, no children
	}
	if dr.diverged {
		recorderPool.Put(rec)
		atomic.AddInt64(&f.diverged, 1)
		return
	}
	pruned := enumerate(f.opts, f.seen, len(prefix), dr.trace, rec.Branches,
		func(child []sched.ThreadID) { f.pushChild(w, child) })
	recorderPool.Put(rec)
	if pruned > 0 {
		atomic.AddInt64(&f.pruned, int64(pruned))
	}
}
