//go:build race

package explore

// raceEnabled trims the heaviest sweeps when the race detector is on:
// the 200-seed equivalence matrix is ~20× slower under -race, and the
// race gate's job is to exercise the concurrent machinery, not to
// re-prove the full equivalence already checked by the regular run.
const raceEnabled = true
