// FrontierDPOR: dynamic partial-order reduction on the work-stealing
// frontier.
//
// Plain DFS enumerates every untaken alternative at every branch point
// it passes — exponentially many interleavings that differ only in the
// order of commuting steps. DPOR runs the same iterative-replay loop but
// expands a run into children only where the run *proved* order matters:
// after each run the recorded event trace (sched.DPORRecorder) is
// analyzed for race pairs — conflicting accesses by different threads
// that no other happens-before edge orders (monitor.Analysis) — and for
// each race the classic backtrack rule (DPORRecorder.Candidates) names
// the threads that must be tried instead at the decision that started
// the race. Everything else commutes; one representative per
// interleaving class suffices for identical verdict sets.
//
// Sleep sets, work-stealing-shaped: instead of carrying per-node sleep
// sets in the deque entries, the frontier keeps one global spawn ledger
// keyed by (decision-path hash, branch) — node identity is the exact
// decision sequence that reaches it, so the cumulative path hash names
// the node and childKey folds the branch in. Every run first marks the
// branch it took at each node of its own path, then its race analysis
// spawns only candidates whose (node, branch) is not yet in the ledger.
// That gives the sleep-set guarantee (a branch explored or already
// scheduled anywhere in the tree is never re-spawned, no matter which
// worker stole which subtree) without any per-entry state to migrate.
// The mark-before-spawn order matters: a child prefix is only pushed
// after its spawner ledgered its own choices, so a descendant proposing
// the spawner's branch always finds it marked.
//
// Determinism: without budget truncation the explored set is the DPOR
// fixpoint of the program — independent of worker count and steal
// order — so reports are byte-identical at any width (the optional
// second-level positional-state dedupe, Options.DPORStateHash, trades
// that for extra pruning, with the same caveats as the DFS seen-set).
//
// Runs whose event trace overflowed monitor.DefaultTraceLimit (spinning,
// budget-bound schedules) fall back to full alternative enumeration over
// their branch list — the plain-DFS expansion, routed through the same
// ledger — because a truncated trace cannot prove commutativity for the
// steps it dropped. Such programs are not exhaustible anyway; the
// fallback keeps the reduction sound instead of silently unsound.
package explore

import (
	"runtime/debug"
	"sync"
	"sync/atomic"

	"parcoach/internal/chaos"
	"parcoach/internal/interp"
	"parcoach/internal/monitor"
	"parcoach/internal/pipeline"
	"parcoach/internal/sched"
)

// dporState is one worker's reusable DPOR machinery: the recording
// scheduler (with its event trace), the vector-clock analysis, and the
// path-hash / candidate scratch buffers.
type dporState struct {
	rec   *sched.DPORRecorder
	an    *monitor.Analysis
	path  []uint64
	cands []sched.ThreadID
}

var dporPool = sync.Pool{New: func() any {
	return &dporState{rec: new(sched.DPORRecorder), an: new(monitor.Analysis)}
}}

// pathSeed is the hash of the empty decision path (the FNV offset
// basis, matching the hash family used everywhere else in the engine).
const pathSeed uint64 = 14695981039346656037

// pathHashes fills st.path with the cumulative decision-path hashes:
// path[i] names the tree node reached by decisions trace[:i], so
// childKey(path[i], q) names the (node, branch) pair of taking q there.
func (st *dporState) pathHashes(trace []sched.ThreadID) []uint64 {
	ph := append(st.path[:0], pathSeed)
	for _, id := range trace {
		ph = append(ph, childKey(ph[len(ph)-1], id))
	}
	st.path = ph
	return ph
}

// exploreDFSDPOR drains the DPOR-reduced prefix tree with work-stealing
// workers on the shared pool.
func exploreDFSDPOR(sess *interp.Session, opts Options, pool *pipeline.Pool,
	seen *pipeline.ShardedSet, sink *progressSink) (runs []dfsRun, leftover bool, pruned, diverged, sleepSkips int) {

	f := newStealFrontier(sess, opts, pool, seen)
	f.sink = sink
	f.ledger = pipeline.NewShardedSet()
	f.exec = f.execDPOR
	runs, leftover, pruned, diverged = f.drain(pool)
	return runs, leftover, pruned, diverged, int(atomic.LoadInt64(&f.sleepSkips))
}

// execDPOR is the DPOR body: run the prefix, mark its path in the
// ledger, then spawn exactly the reversal prefixes the run's race pairs
// require.
func (f *stealFrontier) execDPOR(w int, prefix []sched.ThreadID) {
	st := dporPool.Get().(*dporState)
	st.rec.Reset(prefix)
	dr, quarantined := f.runDPOR(st, prefix)
	if quarantined {
		// Panicked run: record the internal-error verdict, abandon the
		// dporState (unknown state, never recycled), spawn nothing.
		f.results[w] = append(f.results[w], dr)
		f.sink.noteDFS(&f.results[w][len(f.results[w])-1])
		return
	}
	if dr.outcome == interp.OutcomeCanceled {
		// Aborted half-run: no verdict, no reversals; wind down via the
		// ctx check in process.
		dporPool.Put(st)
		f.leftover.Store(true)
		f.end()
		return
	}
	f.results[w] = append(f.results[w], dr)
	f.sink.noteDFS(&f.results[w][len(f.results[w])-1])
	if dr.diverged {
		dporPool.Put(st)
		atomic.AddInt64(&f.diverged, 1)
		return
	}

	trace := dr.trace
	branches := st.rec.Branches
	ph := st.pathHashes(trace)

	// Mark the branch this run took at every node of its path BEFORE any
	// spawning: descendants proposing one of these branches must find it
	// ledgered, or an already-explored subtree would be re-spawned.
	for bi := range branches {
		f.ledger.TryAdd(childKey(ph[bi], trace[bi]))
	}

	if st.rec.Events.Overflowed() {
		// Truncated trace: commutativity beyond the limit is unprovable,
		// so expand like plain DFS (every untaken alternative at every
		// branch of this run), deduped through the ledger.
		atomic.AddInt64(&f.overflowed, 1)
		for bi := range branches {
			b := &branches[bi]
			for _, alt := range b.Enabled {
				if alt == b.Chosen || !f.ledger.TryAdd(childKey(ph[bi], alt)) {
					continue
				}
				f.pushChild(w, childPrefix(trace, bi, alt))
			}
		}
		dporPool.Put(st)
		return
	}

	st.an.Analyze(&st.rec.Events)
	for _, rc := range st.an.Races() {
		_, d := st.rec.Events.At(rc.A)
		if d < 0 || d >= len(trace) {
			continue // forced decision: no alternative exists there
		}
		st.cands = st.rec.Candidates(st.an, rc, st.cands[:0])
		for _, q := range st.cands {
			if !f.ledger.TryAdd(childKey(ph[d], q)) {
				atomic.AddInt64(&f.sleepSkips, 1)
				continue
			}
			if f.opts.DPORStateHash && !f.seen.TryAdd(childKey(branches[d].Sig, q)) {
				atomic.AddInt64(&f.pruned, 1)
				continue
			}
			f.pushChild(w, childPrefix(trace, d, q))
		}
	}
	dporPool.Put(st)
}

// runDPOR executes one DPOR prefix on st's recorder. Like runPrefix it
// is a quarantine boundary: quarantined=true means the run panicked and
// dr carries the OutcomeInternalError verdict (and st must be abandoned,
// not recycled).
func (f *stealFrontier) runDPOR(st *dporState, prefix []sched.ThreadID) (dr dfsRun, quarantined bool) {
	defer func() {
		if r := recover(); r != nil {
			qerr := interp.NewQuarantineError("explore.run", r, debug.Stack())
			tr := make([]sched.ThreadID, len(prefix))
			copy(tr, prefix)
			dr = dfsRun{outcome: interp.OutcomeInternalError, runErr: qerr, trace: tr}
			quarantined = true
		}
	}()
	chaos.Here("explore.run")
	res := f.sess.RunCtx(f.opts.Ctx, st.rec)
	dr = dfsRun{outcome: res.Outcome(), runErr: res.Err, trace: st.rec.Trace(), diverged: st.rec.Diverged()}
	return dr, false
}

// childPrefix builds the reversal prefix: follow trace up to depth d,
// then take alt.
func childPrefix(trace []sched.ThreadID, d int, alt sched.ThreadID) []sched.ThreadID {
	child := make([]sched.ThreadID, d+1)
	copy(child, trace[:d])
	child[d] = alt
	return child
}
