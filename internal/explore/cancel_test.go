package explore

import (
	"context"
	"strings"
	"testing"

	"parcoach/internal/chaos"
	"parcoach/internal/interp"
	"parcoach/internal/leakcheck"
	"parcoach/internal/parser"
)

// explorePaths enumerates every engine path a cancellation or panic can
// travel: the sampled fan-out and each DFS frontier.
var explorePaths = []struct {
	name string
	opts Options
}{
	{"random", Options{Strategy: StrategyRandom, Schedules: 64, Seed: 3, MaxSteps: 100_000, Workers: 2}},
	{"dfs-steal", Options{Strategy: StrategyDFS, Frontier: FrontierSteal, Schedules: 64, MaxSteps: 100_000, Workers: 2}},
	{"dfs-wave", Options{Strategy: StrategyDFS, Frontier: FrontierWave, Schedules: 64, MaxSteps: 100_000, Workers: 2}},
	{"dfs-dpor", Options{Strategy: StrategyDFS, Frontier: FrontierDPOR, Schedules: 64, MaxSteps: 100_000, Workers: 2}},
}

// TestExploreCancelPartialReport: canceling mid-exploration (here at an
// exact run arrival, via the chaos injector, so the test replays
// deterministically) stops every engine path with a well-formed partial
// report: Canceled set, fewer schedules than the budget, and the
// rendered report carrying the marker.
func TestExploreCancelPartialReport(t *testing.T) {
	defer leakcheck.Check(t)
	prog := parser.MustParse("racer.mh", racerSrc)
	for _, path := range explorePaths {
		t.Run(path.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			disarm := chaos.Arm(chaos.Config{
				"explore.run": {First: 5, Action: chaos.ActCancel, Cancel: cancel},
			})
			defer disarm()

			opts := path.opts
			opts.Ctx = ctx
			rep := Explore(prog, opts)
			if !rep.Canceled {
				t.Fatal("canceled exploration did not mark its report Canceled")
			}
			if rep.Schedules >= opts.Schedules {
				t.Fatalf("canceled exploration still ran the full budget: %d/%d", rep.Schedules, opts.Schedules)
			}
			if !strings.Contains(rep.String(), "canceled=true") {
				t.Fatalf("rendered report lacks the canceled marker:\n%s", rep)
			}
			for _, v := range rep.Verdicts {
				if v.Outcome == interp.OutcomeCanceled {
					t.Fatal("an aborted half-run leaked into the verdict aggregation")
				}
			}
		})
	}
}

// TestExploreAlreadyCanceled: a context canceled before the exploration
// starts yields an empty well-formed report instead of one refused run
// per budgeted schedule.
func TestExploreAlreadyCanceled(t *testing.T) {
	defer leakcheck.Check(t)
	prog := parser.MustParse("racer.mh", racerSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := Explore(prog, Options{Strategy: StrategyRandom, Schedules: 32, Ctx: ctx, MaxSteps: 100_000})
	if !rep.Canceled || rep.Schedules != 0 || len(rep.Verdicts) != 0 {
		t.Fatalf("pre-canceled exploration = %+v, want empty canceled report", rep)
	}
}

// TestExploreQuarantinesPanickingRun: a run that panics is caught at the
// run boundary, classified internal-error, counted in Quarantined, and
// the exploration finishes its remaining budget — on every engine path.
func TestExploreQuarantinesPanickingRun(t *testing.T) {
	defer leakcheck.Check(t)
	prog := parser.MustParse("racer.mh", racerSrc)
	for _, path := range explorePaths {
		t.Run(path.name, func(t *testing.T) {
			disarm := chaos.Arm(chaos.Config{
				"explore.run": {First: 3, Action: chaos.ActPanic},
			})
			defer disarm()

			rep := Explore(prog, path.opts)
			if rep.Canceled {
				t.Fatal("quarantined panic canceled the exploration")
			}
			if rep.Quarantined != 1 {
				t.Fatalf("Quarantined = %d, want 1\n%s", rep.Quarantined, rep)
			}
			v := rep.Verdict(interp.OutcomeInternalError)
			if v == nil || v.Count != 1 {
				t.Fatalf("internal-error verdict missing or miscounted:\n%s", rep)
			}
			if !strings.Contains(v.Sample, "panic quarantined at explore.run") {
				t.Fatalf("quarantined verdict sample %q does not identify the boundary", v.Sample)
			}
			if !strings.Contains(rep.String(), "quarantined=1") {
				t.Fatalf("rendered report lacks the quarantined marker:\n%s", rep)
			}
			if got := chaos.Fired("explore.run"); got != 1 {
				t.Fatalf("chaos fired %d times, want 1", got)
			}
		})
	}
}
