// Package explore is the schedule-exploration engine of the dynamic
// validator: it runs one program under many thread interleavings
// (internal/sched), classifies every run through the interpreter's
// outcome classes, and reduces the results to an ExplorationReport —
// which distinct verdicts the schedule space contains, and a replayable
// token for the first failing schedule.
//
// A single run of the dynamic layer only validates the one interleaving
// that happened; a concurrency bug whose manifestation needs a
// particular election order or arrival order stays invisible. Exploring
// the schedule space is what turns the runtime checker into a validator,
// which is why the differential harness (internal/mhgen/diff) judges the
// schedule-dependent planted bug classes against the exploration verdict
// rather than a single run.
//
// Strategies:
//
//   - round-robin: the one deterministic reference schedule (one run);
//   - random: N independent runs under seeded uniform schedulers;
//   - pct: N runs under random-priority schedulers with depth-bounded
//     priority change points (probabilistic concurrency testing);
//   - dfs: bounded exhaustive enumeration — each run records the branch
//     points it passed (decision points with more than one enabled
//     thread), and every untaken alternative spawns a new prefix to
//     explore, with positional state hashing pruning commuting
//     interleavings, until the frontier drains or the budget is spent.
//     The frontier is work-stealing by default (per-worker LIFO deques,
//     steal from the shallow end; see steal.go) with the PR 3
//     wave-batched frontier kept as the equivalence reference.
//
// Runs fan out over the shared compile worker pool
// (internal/pipeline.Pool) and share one interp.Session, so the
// compiled artifact and the pooled per-rank run state are reused by
// every schedule instead of being rebuilt per run.
package explore

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"parcoach/internal/ast"
	"parcoach/internal/chaos"
	"parcoach/internal/interp"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/pipeline"
	"parcoach/internal/sched"
)

// Strategy selects how the schedule space is sampled.
type Strategy int

// Exploration strategies.
const (
	// StrategyRoundRobin runs the single deterministic reference
	// schedule.
	StrategyRoundRobin Strategy = iota
	// StrategyRandom samples N uniform seeded schedules.
	StrategyRandom
	// StrategyPCT samples N random-priority schedules with bounded
	// priority-change depth.
	StrategyPCT
	// StrategyDFS enumerates interleavings exhaustively (bounded by the
	// schedule budget), pruning revisited positional states.
	StrategyDFS
)

var strategyNames = [...]string{
	StrategyRoundRobin: "rr",
	StrategyRandom:     "random",
	StrategyPCT:        "pct",
	StrategyDFS:        "dfs",
}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "strategy(?)"
}

// ParseStrategy maps a CLI name ("rr", "random", "pct", "dfs") to its
// strategy.
func ParseStrategy(name string) (Strategy, error) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("explore: unknown strategy %q (want rr|random|pct|dfs)", name)
}

// Frontier selects how the DFS prefix frontier is distributed over the
// worker pool.
type Frontier int

// DFS frontier implementations.
const (
	// FrontierSteal (the default) gives every worker a private LIFO
	// deque: a worker pushes the children of the run it just completed
	// and pops the deepest one next, so it keeps replaying its own warm
	// prefix (longest common prefix first); idle workers steal from the
	// shallow end of a peer's deque, taking the largest remaining
	// subtree. Skewed prefix trees therefore keep every worker busy,
	// where the wave frontier stalls the pool on each wave's stragglers.
	//
	// Determinism: at Workers=1 the report is a pure function of
	// (program, options). Across worker counts the *reduction* is
	// canonical (runs merge in trace order, see mergeDFS), but when
	// state hashing is on, which of two same-state prefixes gets pruned
	// depends on seen-set insertion order, so the explored set — and
	// with it Pruned, Schedules and, on a truncating budget, the verdict
	// counts — can differ slightly between worker counts. With
	// NoStateHash the enumeration is order-independent and reports are
	// byte-identical at any width.
	FrontierSteal Frontier = iota
	// FrontierWave is the wave-batched frontier the engine shipped with
	// (PR 3), kept as the sequential reference for the equivalence
	// suite and for before/after benchmarking.
	FrontierWave
	// FrontierDPOR is dynamic partial-order reduction on the
	// work-stealing frontier (see dpor.go): each run's event trace is
	// analyzed for race pairs and only the reversal prefixes the races
	// require are explored, with a global sleep-set ledger keeping
	// stolen subtrees sound. Verdict sets are identical to plain DFS at
	// orders of magnitude fewer schedules; exploration that plain DFS
	// could only bound becomes exhaustible. Without budget truncation
	// (and with DPORStateHash off, the default) reports are
	// byte-identical at any worker count.
	FrontierDPOR
)

var frontierNames = [...]string{
	FrontierSteal: "steal",
	FrontierWave:  "wave",
	FrontierDPOR:  "dpor",
}

func (f Frontier) String() string {
	if int(f) < len(frontierNames) {
		return frontierNames[f]
	}
	return "frontier(?)"
}

// ParseFrontier maps a CLI name ("steal", "wave", "dpor") to its
// frontier.
func ParseFrontier(name string) (Frontier, error) {
	for i, n := range frontierNames {
		if n == name {
			return Frontier(i), nil
		}
	}
	return 0, fmt.Errorf("explore: unknown DFS frontier %q (want steal|wave|dpor)", name)
}

// Options configures an exploration.
type Options struct {
	// Strategy selects the schedule sampler (default StrategyRandom).
	Strategy Strategy
	// Schedules is the run budget (default 16; round-robin always runs
	// exactly 1).
	Schedules int
	// Seed seeds the random and PCT samplers and is the base of the
	// per-run seeds (run i uses Seed+i).
	Seed int64
	// PCTDepth is the PCT priority-change depth (default 3).
	PCTDepth int
	// Procs and Threads are the run parameters (defaults 2 and 2).
	Procs   int
	Threads int
	// MaxSteps bounds each run (default DefaultMaxSteps); schedules that
	// spin classify as OutcomeBudget, not deadlock.
	MaxSteps int64
	// Workers is the worker-pool width for concurrent runs (0 =
	// GOMAXPROCS). For the sampling strategies verdicts are identical
	// for any width; for DFS see the determinism notes on Frontier.
	Workers int
	// Policy is the single-construct election policy (default
	// FirstArrival: elections follow arrival order, which is exactly
	// what the schedules vary).
	Policy omp.Policy
	// NoStateHash disables the DFS positional-state pruning, forcing a
	// full enumeration of the (possibly much larger) prefix tree. It
	// does not affect FrontierDPOR, whose reduction is the race
	// analysis, not the seen-set.
	NoStateHash bool
	// DPORStateHash additionally applies the positional-state seen-set
	// to FrontierDPOR's backtrack candidates as a second-level dedupe.
	// Off by default: DPOR rarely revisits positional states, and the
	// seen-set's insertion-order sensitivity costs the byte-identical
	// cross-worker determinism DPOR otherwise has.
	DPORStateHash bool
	// Frontier selects the DFS work distribution (default
	// FrontierSteal); ignored by the sampling strategies.
	Frontier Frontier
	// Progress, when non-nil, is called once per completed run, in
	// completion order, serialized by the engine (implementations need
	// no locking). It powers streamed exploration (parcoachd's NDJSON
	// /explore): verdict deltas and failing replay tokens surface while
	// the exploration is still running. Completion order is NOT the
	// canonical order of the final Report — for DFS the report is
	// reduced in trace order after the drain — so Done counts and First
	// indices may differ between the stream and the report; the verdict
	// *set* is identical.
	Progress func(ProgressEvent)
	// Level is the MPI thread support to simulate; LevelSet marks it as
	// explicitly chosen (mirroring interp.Options, so exploration runs
	// under the same configuration a plain run would).
	Level    mpi.ThreadLevel
	LevelSet bool
	// ValueCheck arms the verifier's value oracle on every explored run
	// (mirroring interp.Options.ValueCheck); schedule-dependent value
	// bugs — a torn source buffer — surface as OutcomeValueError on the
	// schedules that expose them.
	ValueCheck bool
	// Ctx, when non-nil, cancels the exploration: runs not yet started
	// are skipped, the run in flight is aborted at its next statement
	// boundary (interp.RunCtx), and the engine returns a well-formed
	// partial report with Canceled set. Canceled runs are excluded from
	// Schedules and the verdict aggregation — a half-run says nothing
	// about the program.
	Ctx context.Context
	// WallTimeout, when positive, arms the interpreter's per-run
	// wall-clock watchdog (interp.Options.WallTimeout) on every explored
	// run: a wedged schedule is abandoned after this long and classifies
	// as OutcomeTimeout instead of hanging the exploration. Only honored
	// by Explore (which builds the session); ExploreSession callers
	// configure the watchdog on their own session.
	WallTimeout time.Duration
}

// DefaultMaxSteps is the per-schedule statement budget when Options
// leaves MaxSteps zero. Deliberately far below the interpreter's plain
// default: exploration runs many schedules, and a replay of a
// budget-exhausted schedule must use the same bound to reproduce (the
// hybridrun -replay path defaults to this value).
const DefaultMaxSteps = 1_000_000

func (o Options) normalized() Options {
	if o.Schedules <= 0 {
		o.Schedules = 16
	}
	if o.Strategy == StrategyRoundRobin {
		o.Schedules = 1
	}
	if o.PCTDepth <= 0 {
		o.PCTDepth = 3
	}
	if o.Procs <= 0 {
		o.Procs = 2
	}
	if o.Threads <= 0 {
		o.Threads = 2
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = DefaultMaxSteps
	}
	return o
}

// Verdict aggregates the runs that ended in one outcome class.
type Verdict struct {
	// Outcome is the shared outcome class.
	Outcome interp.Outcome
	// Count is how many explored schedules ended this way.
	Count int
	// First is the 0-based index of the first run with this outcome
	// (the schedules-to-first-detection metric). For the sampling
	// strategies the order is exploration (submission) order; for DFS
	// it is the canonical trace order of the explored set (see
	// mergeDFS), so it does not depend on which worker finished first.
	First int
	// Sample is the error text of the first such run ("" for clean).
	Sample string
	// Schedule is the replay token of the first such run; feeding it to
	// sched.Parse (or hybridrun -replay) reproduces the run exactly.
	Schedule string
}

// Failure names the first explored schedule whose run did not complete
// cleanly.
type Failure struct {
	Outcome interp.Outcome
	// Err is the run error text.
	Err string
	// Schedule is the replayable token.
	Schedule string
	// Index is the 0-based position in exploration order (sampling) or
	// canonical trace order (DFS) — the "schedules to first detection"
	// metric of the differential matrix.
	Index int
}

// Report is the result of exploring one program's schedule space.
type Report struct {
	// Strategy that produced the report.
	Strategy Strategy
	// Schedules actually run (≤ the budget).
	Schedules int
	// Exhausted is true when DFS drained its frontier within budget —
	// every interleaving (modulo state-hash pruning; modulo the proven
	// commutativity reduction under FrontierDPOR) was enumerated.
	// Sampling strategies always report false.
	Exhausted bool
	// Pruned counts branches skipped by the positional state hash —
	// candidates that *would* have been explored but whose (state,
	// branch) pair was already taken elsewhere in the tree. Under
	// FrontierSteal/FrontierWave that is the only dedupe; under
	// FrontierDPOR it is nonzero only with Options.DPORStateHash.
	Pruned int
	// SleepSkips counts FrontierDPOR backtrack candidates suppressed by
	// the sleep-set ledger: reversals some other run had already spawned
	// or explored. This is a different quantity from Pruned — sleep-set
	// suppression is part of the DPOR algorithm's correctness (skipping
	// is what prevents re-exploring a subtree), whereas state-hash
	// pruning is an optional heuristic dedupe — so the two are reported
	// as separate fields. Always zero for the non-DPOR frontiers.
	SleepSkips int
	// Diverged counts DFS replays whose recorded prefix stopped matching
	// the program (nonzero only for nondeterministic programs).
	Diverged int
	// Verdicts holds one entry per distinct outcome class observed,
	// sorted by outcome.
	Verdicts []Verdict
	// FirstFailure is the earliest non-clean schedule, or nil when every
	// explored schedule completed cleanly.
	FirstFailure *Failure
	// Canceled is true when Options.Ctx was canceled before the budget
	// drained: the report is a well-formed reduction of the runs that
	// completed, not of the full budget. DFS additionally reports
	// Exhausted=false.
	Canceled bool
	// Quarantined counts runs that panicked and were caught at the run
	// boundary (OutcomeInternalError) — validator bugs, not program
	// verdicts. They do appear in Verdicts (so they are visible), and are
	// summed here for the robustness counters.
	Quarantined int
}

// Verdict returns the aggregate for an outcome class, or nil if no
// explored schedule ended that way.
func (r *Report) Verdict(o interp.Outcome) *Verdict {
	for i := range r.Verdicts {
		if r.Verdicts[i].Outcome == o {
			return &r.Verdicts[i]
		}
	}
	return nil
}

// Caught reports whether any explored schedule ended in the given
// outcome class.
func (r *Report) Caught(o interp.Outcome) bool { return r.Verdict(o) != nil }

// String renders the report in the compact form the hybridrun CLI
// prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exploration: strategy=%s schedules=%d", r.Strategy, r.Schedules)
	if r.Strategy == StrategyDFS {
		fmt.Fprintf(&b, " exhausted=%t pruned=%d", r.Exhausted, r.Pruned)
		if r.SleepSkips > 0 {
			fmt.Fprintf(&b, " sleepskips=%d", r.SleepSkips)
		}
	}
	if r.Canceled {
		b.WriteString(" canceled=true")
	}
	if r.Quarantined > 0 {
		fmt.Fprintf(&b, " quarantined=%d", r.Quarantined)
	}
	b.WriteString("\n")
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "  %-16s ×%-4d", v.Outcome, v.Count)
		if v.Outcome != interp.OutcomeClean {
			fmt.Fprintf(&b, " first schedule: %s", v.Schedule)
		}
		b.WriteString("\n")
	}
	if r.FirstFailure != nil {
		fmt.Fprintf(&b, "  first failure at schedule %d (%s): %s\n    replay with: -replay '%s'\n",
			r.FirstFailure.Index, r.FirstFailure.Outcome,
			firstLine(r.FirstFailure.Err), r.FirstFailure.Schedule)
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// ProgressEvent describes one completed run to Options.Progress.
type ProgressEvent struct {
	// Done is how many runs have completed so far, this one included.
	Done int
	// Outcome is this run's outcome class.
	Outcome interp.Outcome
	// NewVerdict is true when this is the first completed run with this
	// outcome class — the verdict-delta signal a streaming consumer
	// forwards.
	NewVerdict bool
	// Err is the run's error text ("" for clean).
	Err string
	// Schedule is this run's replay token.
	Schedule string
}

// progressSink serializes Options.Progress calls and tracks which
// outcome classes have been seen, so NewVerdict is exact even when
// workers complete runs concurrently.
type progressSink struct {
	mu   sync.Mutex
	fn   func(ProgressEvent)
	done int
	seen map[interp.Outcome]bool
}

func newProgressSink(fn func(ProgressEvent)) *progressSink {
	if fn == nil {
		return nil
	}
	return &progressSink{fn: fn, seen: make(map[interp.Outcome]bool)}
}

// note reports one completed run. The error is rendered lazily — only
// when a sink exists — so the no-progress path keeps its error values
// unformatted.
func (p *progressSink) note(outcome interp.Outcome, errText func() string, schedule string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	ev := ProgressEvent{
		Done:       p.done,
		Outcome:    outcome,
		NewVerdict: !p.seen[outcome],
		Err:        errText(),
		Schedule:   schedule,
	}
	p.seen[outcome] = true
	// Deliver under the lock: events arrive strictly in Done order,
	// which is what lets a streaming consumer write them straight out.
	p.fn(ev)
	p.mu.Unlock()
}

// run is one explored schedule's classified result.
type run struct {
	outcome  interp.Outcome
	err      string
	schedule string
}

// Explore runs prog under opts.Schedules interleavings and reduces the
// outcomes. For the sampling strategies the report is deterministic for
// a fixed (program, options) pair at any worker count; for DFS see the
// determinism notes on Frontier.
func Explore(prog *ast.Program, opts Options) *Report {
	opts = opts.normalized()
	// One session for the whole exploration: the compiled artifact,
	// resolved entry point and pooled per-rank run state are shared
	// across every schedule, so per-run setup is amortized instead of
	// paid opts.Schedules times.
	sess := interp.NewSession(prog, interp.Options{
		Procs:       opts.Procs,
		Threads:     opts.Threads,
		Level:       opts.Level,
		LevelSet:    opts.LevelSet,
		Policy:      opts.Policy,
		MaxSteps:    opts.MaxSteps,
		ValueCheck:  opts.ValueCheck,
		WallTimeout: opts.WallTimeout,
	})
	return ExploreSession(sess, opts)
}

// ExploreSession explores on an existing session — the entry point for
// callers that keep sessions warm across many explorations of the same
// artifact (parcoachd's per-artifact session pools): the session's
// pooled run state carries over, so repeated /explore requests skip
// per-schedule setup entirely. The session's own run options (procs,
// threads, level, policy, step budget) govern the runs; the matching
// fields of opts only shape the report and must agree with the session
// for replay tokens to reproduce.
func ExploreSession(sess *interp.Session, opts Options) *Report {
	opts = opts.normalized()
	rep := &Report{Strategy: opts.Strategy}
	if ctxErr(opts.Ctx) != nil {
		// Already canceled: a well-formed empty report beats a refused run
		// per schedule.
		rep.Canceled = true
		return rep
	}
	pool := pipeline.NewPool(opts.Workers)
	sink := newProgressSink(opts.Progress)
	switch opts.Strategy {
	case StrategyDFS:
		exploreDFS(sess, opts, pool, rep, sink)
	default:
		exploreSampled(sess, opts, pool, rep, sink)
	}
	sort.Slice(rep.Verdicts, func(i, j int) bool { return rep.Verdicts[i].Outcome < rep.Verdicts[j].Outcome })
	if ctxErr(opts.Ctx) != nil {
		rep.Canceled = true
	}
	if v := rep.Verdict(interp.OutcomeInternalError); v != nil {
		rep.Quarantined = v.Count
	}
	return rep
}

// ctxErr is context.Cause tolerant of a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return context.Cause(ctx)
}

// runOne executes one sampled schedule. It is a quarantine boundary: a
// panic anywhere under the run is caught here, classified
// OutcomeInternalError, and the exploration continues on the remaining
// schedules instead of taking the process down.
func runOne(ctx context.Context, sess *interp.Session, s sched.Scheduler, token string) (r run) {
	defer func() {
		if rec := recover(); rec != nil {
			qerr := interp.NewQuarantineError("explore.run", rec, debug.Stack())
			r = run{outcome: interp.OutcomeInternalError, err: qerr.Error(), schedule: token}
		}
	}()
	chaos.Here("explore.run")
	res := sess.RunCtx(ctx, s)
	r = run{outcome: res.Outcome(), schedule: token}
	if res.Err != nil {
		r.err = res.Err.Error()
	}
	return r
}

// merge folds one run (in exploration order) into the report.
func (r *Report) merge(one run) {
	idx := r.Schedules
	r.Schedules++
	if v := r.Verdict(one.outcome); v != nil {
		v.Count++
	} else {
		r.Verdicts = append(r.Verdicts, Verdict{
			Outcome: one.outcome, Count: 1, First: idx, Sample: one.err, Schedule: one.schedule,
		})
	}
	if one.outcome != interp.OutcomeClean && r.FirstFailure == nil {
		r.FirstFailure = &Failure{
			Outcome: one.outcome, Err: one.err, Schedule: one.schedule, Index: idx,
		}
	}
}

// exploreSampled runs the independent sampling strategies concurrently.
func exploreSampled(sess *interp.Session, opts Options, pool *pipeline.Pool, rep *Report, sink *progressSink) {
	type job struct {
		mk    func() sched.Scheduler
		token string
	}
	jobs := make([]job, opts.Schedules)
	for i := range jobs {
		seed := opts.Seed + int64(i)
		switch opts.Strategy {
		case StrategyRoundRobin:
			jobs[i] = job{func() sched.Scheduler { return sched.NewRoundRobin() }, sched.RoundRobinToken}
		case StrategyPCT:
			depth := opts.PCTDepth
			jobs[i] = job{func() sched.Scheduler { return sched.NewPCT(seed, depth, 0) },
				sched.PCTToken(seed, depth)}
		default:
			jobs[i] = job{func() sched.Scheduler { return sched.NewRandom(seed) }, sched.RandomToken(seed)}
		}
	}
	results := make([]run, len(jobs))
	ran := make([]bool, len(jobs))
	pool.MapCtx(opts.Ctx, len(jobs), func(i int) {
		results[i] = runOne(opts.Ctx, sess, jobs[i].mk(), jobs[i].token)
		ran[i] = true
		one := &results[i]
		if one.outcome == interp.OutcomeCanceled {
			// An aborted half-run carries no verdict; don't stream it.
			return
		}
		sink.note(one.outcome, func() string { return one.err }, one.schedule)
	})
	// Merge in submission order so the report (and FirstFailure.Index)
	// is identical at any worker count. Schedules the cancellation
	// skipped (never started) or aborted mid-run are excluded: the
	// report reduces only completed runs.
	for i := range results {
		if !ran[i] || results[i].outcome == interp.OutcomeCanceled {
			continue
		}
		rep.merge(results[i])
	}
}

//
// Bounded-exhaustive DFS.
//
// Both frontier implementations enumerate the same prefix tree by
// iterative replay — each run follows a decision prefix, records every
// branch point it passes, and the untaken alternatives become new
// prefixes — and both dedupe candidate states through the same sharded
// seen-set. They differ only in how prefixes are distributed over the
// workers; the completed runs are reduced identically by mergeDFS.
//

// dfsRun is one completed DFS schedule: its classified outcome plus the
// branch trace that names (and replays) it. The run error stays an
// error value — thousands of failing runs share a handful of verdicts,
// so the (deadlock-report-sized) text is only rendered for the runs the
// report actually quotes.
type dfsRun struct {
	outcome  interp.Outcome
	runErr   error
	trace    []sched.ThreadID
	diverged bool
}

// recorderPool recycles DFS recorders (and their branch/enabled-set
// buffers) across the runs of an exploration.
var recorderPool = sync.Pool{New: func() any { return new(sched.Recorder) }}

// runPrefix replays one decision prefix and returns the completed run
// and its recorder (whose Branches drive child enumeration; return it
// to recorderPool when done with them).
//
// It is a quarantine boundary: a panic under the run yields an
// OutcomeInternalError dfsRun with a nil recorder (the panicked
// recorder's state is unknown, so it is abandoned to the GC, never
// recycled) — callers must skip enumeration when rec is nil. A
// canceled run comes back as OutcomeCanceled with its recorder intact;
// callers drop it from the result set and stop taking new work.
func runPrefix(ctx context.Context, sess *interp.Session, prefix []sched.ThreadID) (dr dfsRun, rec *sched.Recorder) {
	rec = recorderPool.Get().(*sched.Recorder)
	rec.Reset(prefix)
	defer func() {
		if r := recover(); r != nil {
			qerr := interp.NewQuarantineError("explore.run", r, debug.Stack())
			tr := make([]sched.ThreadID, len(prefix))
			copy(tr, prefix)
			dr = dfsRun{outcome: interp.OutcomeInternalError, runErr: qerr, trace: tr}
			rec = nil
		}
	}()
	chaos.Here("explore.run")
	res := sess.RunCtx(ctx, rec)
	dr = dfsRun{outcome: res.Outcome(), runErr: res.Err, trace: rec.Trace(), diverged: rec.Diverged()}
	return dr, rec
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// childKey folds a (positional state, alternative) pair into the
// dedupe-set key. Sig is already an FNV hash; the alternative is mixed
// in with a splitmix64 round so (sig, alt) pairs spread over the full
// key space.
func childKey(sig uint64, alt sched.ThreadID) uint64 {
	z := sig + (uint64(alt)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// enumerate walks the branch points a run discovered beyond its prefix
// (earlier ones were enumerated by the ancestor that spawned the
// prefix) and hands every unseen untaken alternative to push as a new
// prefix. Returns how many alternatives the seen-set pruned. push is
// called in increasing branch-depth order, so a LIFO consumer pops the
// deepest — longest-common-prefix — child first.
func enumerate(opts Options, seen *pipeline.ShardedSet, prefixLen int, trace []sched.ThreadID,
	branches []sched.Branch, push func([]sched.ThreadID)) (pruned int) {
	for bi := prefixLen; bi < len(branches); bi++ {
		b := branches[bi]
		for _, alt := range b.Enabled {
			if alt == b.Chosen {
				continue
			}
			if !opts.NoStateHash && !seen.TryAdd(childKey(b.Sig, alt)) {
				pruned++
				continue
			}
			child := make([]sched.ThreadID, bi+1)
			copy(child, trace[:bi])
			child[bi] = alt
			push(child)
		}
	}
	return pruned
}

// lessTrace orders branch traces lexicographically (traces are
// prefix-free — equal decisions replay to equal runs — so element-wise
// comparison fully orders them). This is the canonical schedule order
// of a DFS report: left-to-right over the prefix tree, independent of
// the discovery order any particular frontier or worker count produced.
func lessTrace(a, b []sched.ThreadID) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// mergeDFS reduces the completed runs into the report in canonical
// trace order, so Verdict.First, FirstFailure and the report rendering
// are a function of the explored *set* — not of which frontier, worker
// count or steal interleaving discovered it first. Error text and
// replay tokens are rendered only for the runs the report quotes (the
// first run of each outcome class and the first failure).
func mergeDFS(rep *Report, runs []dfsRun, leftover bool, pruned, diverged int) {
	sort.Slice(runs, func(i, j int) bool { return lessTrace(runs[i].trace, runs[j].trace) })
	for i := range runs {
		dr := &runs[i]
		idx := rep.Schedules
		rep.Schedules++
		if v := rep.Verdict(dr.outcome); v != nil {
			v.Count++
		} else {
			rep.Verdicts = append(rep.Verdicts, Verdict{
				Outcome: dr.outcome, Count: 1, First: idx,
				Sample: errText(dr.runErr), Schedule: sched.FormatTrace(dr.trace),
			})
		}
		if dr.outcome != interp.OutcomeClean && rep.FirstFailure == nil {
			rep.FirstFailure = &Failure{
				Outcome: dr.outcome, Err: errText(dr.runErr),
				Schedule: sched.FormatTrace(dr.trace), Index: idx,
			}
		}
	}
	rep.Pruned = pruned
	rep.Diverged = diverged
	rep.Exhausted = !leftover
}

// exploreDFS runs the selected frontier and reduces its runs.
func exploreDFS(sess *interp.Session, opts Options, pool *pipeline.Pool, rep *Report, sink *progressSink) {
	seen := pipeline.NewShardedSet()
	switch opts.Frontier {
	case FrontierWave:
		runs, leftover, pruned, diverged := exploreDFSWave(sess, opts, pool, seen, sink)
		mergeDFS(rep, runs, leftover, pruned, diverged)
	case FrontierDPOR:
		runs, leftover, pruned, diverged, sleepSkips := exploreDFSDPOR(sess, opts, pool, seen, sink)
		mergeDFS(rep, runs, leftover, pruned, diverged)
		rep.SleepSkips = sleepSkips
	default:
		runs, leftover, pruned, diverged := exploreDFSSteal(sess, opts, pool, seen, sink)
		mergeDFS(rep, runs, leftover, pruned, diverged)
	}
}

// noteDFS reports one completed DFS run to the sink (error text and
// replay token are rendered only when a sink exists).
func (p *progressSink) noteDFS(dr *dfsRun) {
	if p == nil {
		return
	}
	p.note(dr.outcome, func() string { return errText(dr.runErr) }, sched.FormatTrace(dr.trace))
}

// exploreDFSWave is the legacy wave-batched frontier, kept as the
// sequential reference the equivalence suite compares the work-stealing
// frontier against: prefixes are processed in deterministic waves with
// a full barrier between waves, which is exactly the behavior that
// starves workers on skewed prefix trees.
func exploreDFSWave(sess *interp.Session, opts Options, pool *pipeline.Pool,
	seen *pipeline.ShardedSet, sink *progressSink) (runs []dfsRun, leftover bool, pruned, diverged int) {

	type result struct {
		dr     dfsRun
		prefix []sched.ThreadID
		rec    *sched.Recorder
	}
	frontier := [][]sched.ThreadID{nil} // start with the unconstrained run
	for len(frontier) > 0 && len(runs) < opts.Schedules {
		if ctxErr(opts.Ctx) != nil {
			// Cancellation is checked once per wave: the in-flight wave's
			// runs are each aborted by their own RunCtx guard, and the
			// remaining frontier is abandoned (leftover → Exhausted=false).
			return runs, true, pruned, diverged
		}
		batch := frontier
		if left := opts.Schedules - len(runs); len(batch) > left {
			batch = batch[:left]
			frontier = frontier[left:]
		} else {
			frontier = nil
		}
		results := make([]result, len(batch))
		pool.Map(len(batch), func(i int) {
			dr, rec := runPrefix(opts.Ctx, sess, batch[i])
			results[i] = result{dr: dr, prefix: batch[i], rec: rec}
		})
		canceled := false
		for _, res := range results {
			if res.dr.outcome == interp.OutcomeCanceled {
				// Aborted half-run: no verdict, no children.
				canceled = true
				if res.rec != nil {
					recorderPool.Put(res.rec)
				}
				continue
			}
			runs = append(runs, res.dr)
			sink.noteDFS(&runs[len(runs)-1])
			if res.rec == nil {
				continue // quarantined panic: no recorder, no children
			}
			if res.dr.diverged {
				recorderPool.Put(res.rec)
				diverged++
				continue
			}
			pruned += enumerate(opts, seen, len(res.prefix), res.dr.trace, res.rec.Branches,
				func(child []sched.ThreadID) { frontier = append(frontier, child) })
			recorderPool.Put(res.rec)
		}
		if canceled {
			return runs, true, pruned, diverged
		}
	}
	return runs, len(frontier) > 0, pruned, diverged
}
