// Package explore is the schedule-exploration engine of the dynamic
// validator: it runs one program under many thread interleavings
// (internal/sched), classifies every run through the interpreter's
// outcome classes, and reduces the results to an ExplorationReport —
// which distinct verdicts the schedule space contains, and a replayable
// token for the first failing schedule.
//
// A single run of the dynamic layer only validates the one interleaving
// that happened; a concurrency bug whose manifestation needs a
// particular election order or arrival order stays invisible. Exploring
// the schedule space is what turns the runtime checker into a validator,
// which is why the differential harness (internal/mhgen/diff) judges the
// schedule-dependent planted bug classes against the exploration verdict
// rather than a single run.
//
// Strategies:
//
//   - round-robin: the one deterministic reference schedule (one run);
//   - random: N independent runs under seeded uniform schedulers;
//   - pct: N runs under random-priority schedulers with depth-bounded
//     priority change points (probabilistic concurrency testing);
//   - dfs: bounded exhaustive enumeration — each run records the branch
//     points it passed (decision points with more than one enabled
//     thread), and every untaken alternative spawns a new prefix to
//     explore, with positional state hashing pruning commuting
//     interleavings, until the frontier drains or the budget is spent.
//
// Runs fan out over the shared compile worker pool
// (internal/pipeline.Pool), so exploring a batch of programs keeps the
// hardware busy the same way batch compilation does.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"parcoach/internal/ast"
	"parcoach/internal/interp"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/pipeline"
	"parcoach/internal/sched"
)

// Strategy selects how the schedule space is sampled.
type Strategy int

// Exploration strategies.
const (
	// StrategyRoundRobin runs the single deterministic reference
	// schedule.
	StrategyRoundRobin Strategy = iota
	// StrategyRandom samples N uniform seeded schedules.
	StrategyRandom
	// StrategyPCT samples N random-priority schedules with bounded
	// priority-change depth.
	StrategyPCT
	// StrategyDFS enumerates interleavings exhaustively (bounded by the
	// schedule budget), pruning revisited positional states.
	StrategyDFS
)

var strategyNames = [...]string{
	StrategyRoundRobin: "rr",
	StrategyRandom:     "random",
	StrategyPCT:        "pct",
	StrategyDFS:        "dfs",
}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "strategy(?)"
}

// ParseStrategy maps a CLI name ("rr", "random", "pct", "dfs") to its
// strategy.
func ParseStrategy(name string) (Strategy, error) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("explore: unknown strategy %q (want rr|random|pct|dfs)", name)
}

// Options configures an exploration.
type Options struct {
	// Strategy selects the schedule sampler (default StrategyRandom).
	Strategy Strategy
	// Schedules is the run budget (default 16; round-robin always runs
	// exactly 1).
	Schedules int
	// Seed seeds the random and PCT samplers and is the base of the
	// per-run seeds (run i uses Seed+i).
	Seed int64
	// PCTDepth is the PCT priority-change depth (default 3).
	PCTDepth int
	// Procs and Threads are the run parameters (defaults 2 and 2).
	Procs   int
	Threads int
	// MaxSteps bounds each run (default DefaultMaxSteps); schedules that
	// spin classify as OutcomeBudget, not deadlock.
	MaxSteps int64
	// Workers is the worker-pool width for concurrent runs (0 =
	// GOMAXPROCS). Verdicts are identical for any width.
	Workers int
	// Policy is the single-construct election policy (default
	// FirstArrival: elections follow arrival order, which is exactly
	// what the schedules vary).
	Policy omp.Policy
	// NoStateHash disables the DFS positional-state pruning, forcing a
	// full enumeration of the (possibly much larger) prefix tree.
	NoStateHash bool
	// Level is the MPI thread support to simulate; LevelSet marks it as
	// explicitly chosen (mirroring interp.Options, so exploration runs
	// under the same configuration a plain run would).
	Level    mpi.ThreadLevel
	LevelSet bool
}

// DefaultMaxSteps is the per-schedule statement budget when Options
// leaves MaxSteps zero. Deliberately far below the interpreter's plain
// default: exploration runs many schedules, and a replay of a
// budget-exhausted schedule must use the same bound to reproduce (the
// hybridrun -replay path defaults to this value).
const DefaultMaxSteps = 1_000_000

func (o Options) normalized() Options {
	if o.Schedules <= 0 {
		o.Schedules = 16
	}
	if o.Strategy == StrategyRoundRobin {
		o.Schedules = 1
	}
	if o.PCTDepth <= 0 {
		o.PCTDepth = 3
	}
	if o.Procs <= 0 {
		o.Procs = 2
	}
	if o.Threads <= 0 {
		o.Threads = 2
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = DefaultMaxSteps
	}
	return o
}

// Verdict aggregates the runs that ended in one outcome class.
type Verdict struct {
	// Outcome is the shared outcome class.
	Outcome interp.Outcome
	// Count is how many explored schedules ended this way.
	Count int
	// First is the 0-based exploration-order index of the first run with
	// this outcome (the schedules-to-first-detection metric).
	First int
	// Sample is the error text of the first such run ("" for clean).
	Sample string
	// Schedule is the replay token of the first such run; feeding it to
	// sched.Parse (or hybridrun -replay) reproduces the run exactly.
	Schedule string
}

// Failure names the first explored schedule whose run did not complete
// cleanly.
type Failure struct {
	Outcome interp.Outcome
	// Err is the run error text.
	Err string
	// Schedule is the replayable token.
	Schedule string
	// Index is the 0-based position in exploration order — the
	// "schedules to first detection" metric of the differential matrix.
	Index int
}

// Report is the result of exploring one program's schedule space.
type Report struct {
	// Strategy that produced the report.
	Strategy Strategy
	// Schedules actually run (≤ the budget).
	Schedules int
	// Exhausted is true when DFS drained its frontier within budget —
	// every interleaving (modulo state-hash pruning) was enumerated.
	// Sampling strategies always report false.
	Exhausted bool
	// Pruned counts DFS branches skipped by the positional state hash.
	Pruned int
	// Diverged counts DFS replays whose recorded prefix stopped matching
	// the program (nonzero only for nondeterministic programs).
	Diverged int
	// Verdicts holds one entry per distinct outcome class observed,
	// sorted by outcome.
	Verdicts []Verdict
	// FirstFailure is the earliest non-clean schedule, or nil when every
	// explored schedule completed cleanly.
	FirstFailure *Failure
}

// Verdict returns the aggregate for an outcome class, or nil if no
// explored schedule ended that way.
func (r *Report) Verdict(o interp.Outcome) *Verdict {
	for i := range r.Verdicts {
		if r.Verdicts[i].Outcome == o {
			return &r.Verdicts[i]
		}
	}
	return nil
}

// Caught reports whether any explored schedule ended in the given
// outcome class.
func (r *Report) Caught(o interp.Outcome) bool { return r.Verdict(o) != nil }

// String renders the report in the compact form the hybridrun CLI
// prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exploration: strategy=%s schedules=%d", r.Strategy, r.Schedules)
	if r.Strategy == StrategyDFS {
		fmt.Fprintf(&b, " exhausted=%t pruned=%d", r.Exhausted, r.Pruned)
	}
	b.WriteString("\n")
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "  %-16s ×%-4d", v.Outcome, v.Count)
		if v.Outcome != interp.OutcomeClean {
			fmt.Fprintf(&b, " first schedule: %s", v.Schedule)
		}
		b.WriteString("\n")
	}
	if r.FirstFailure != nil {
		fmt.Fprintf(&b, "  first failure at schedule %d (%s): %s\n    replay with: -replay '%s'\n",
			r.FirstFailure.Index, r.FirstFailure.Outcome,
			firstLine(r.FirstFailure.Err), r.FirstFailure.Schedule)
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// run is one explored schedule's classified result.
type run struct {
	outcome  interp.Outcome
	err      string
	schedule string
}

// Explore runs prog under opts.Schedules interleavings and reduces the
// outcomes. The report is deterministic for a fixed (program, options)
// pair at any worker count.
func Explore(prog *ast.Program, opts Options) *Report {
	opts = opts.normalized()
	pool := pipeline.NewPool(opts.Workers)
	rep := &Report{Strategy: opts.Strategy}
	switch opts.Strategy {
	case StrategyDFS:
		exploreDFS(prog, opts, pool, rep)
	default:
		exploreSampled(prog, opts, pool, rep)
	}
	sort.Slice(rep.Verdicts, func(i, j int) bool { return rep.Verdicts[i].Outcome < rep.Verdicts[j].Outcome })
	return rep
}

func runOne(prog *ast.Program, opts Options, s sched.Scheduler, token string) run {
	res := interp.Run(prog, interp.Options{
		Procs:     opts.Procs,
		Threads:   opts.Threads,
		Level:     opts.Level,
		LevelSet:  opts.LevelSet,
		Policy:    opts.Policy,
		MaxSteps:  opts.MaxSteps,
		Scheduler: s,
	})
	r := run{outcome: res.Outcome(), schedule: token}
	if res.Err != nil {
		r.err = res.Err.Error()
	}
	return r
}

// merge folds one run (in exploration order) into the report.
func (r *Report) merge(one run) {
	idx := r.Schedules
	r.Schedules++
	if v := r.Verdict(one.outcome); v != nil {
		v.Count++
	} else {
		r.Verdicts = append(r.Verdicts, Verdict{
			Outcome: one.outcome, Count: 1, First: idx, Sample: one.err, Schedule: one.schedule,
		})
	}
	if one.outcome != interp.OutcomeClean && r.FirstFailure == nil {
		r.FirstFailure = &Failure{
			Outcome: one.outcome, Err: one.err, Schedule: one.schedule, Index: idx,
		}
	}
}

// exploreSampled runs the independent sampling strategies concurrently.
func exploreSampled(prog *ast.Program, opts Options, pool *pipeline.Pool, rep *Report) {
	type job struct {
		mk    func() sched.Scheduler
		token string
	}
	jobs := make([]job, opts.Schedules)
	for i := range jobs {
		seed := opts.Seed + int64(i)
		switch opts.Strategy {
		case StrategyRoundRobin:
			jobs[i] = job{func() sched.Scheduler { return sched.NewRoundRobin() }, sched.RoundRobinToken}
		case StrategyPCT:
			depth := opts.PCTDepth
			jobs[i] = job{func() sched.Scheduler { return sched.NewPCT(seed, depth, 0) },
				sched.PCTToken(seed, depth)}
		default:
			jobs[i] = job{func() sched.Scheduler { return sched.NewRandom(seed) }, sched.RandomToken(seed)}
		}
	}
	results := make([]run, len(jobs))
	pool.Map(len(jobs), func(i int) {
		results[i] = runOne(prog, opts, jobs[i].mk(), jobs[i].token)
	})
	// Merge in submission order so the report (and FirstFailure.Index)
	// is identical at any worker count.
	for _, one := range results {
		rep.merge(one)
	}
}

// dfsKey identifies a (positional state, alternative) pair for pruning.
type dfsKey struct {
	sig uint64
	alt sched.ThreadID
}

// exploreDFS enumerates interleavings by iterative prefix replay: each
// run follows a decision prefix, records every branch point it passes,
// and the untaken alternatives become new prefixes. The frontier is
// processed in deterministic waves fanned across the pool.
func exploreDFS(prog *ast.Program, opts Options, pool *pipeline.Pool, rep *Report) {
	type result struct {
		one      run
		prefix   []sched.ThreadID
		trace    []sched.ThreadID
		branches []sched.Branch
		diverged bool
	}
	frontier := [][]sched.ThreadID{nil} // start with the unconstrained run
	seen := make(map[dfsKey]bool)
	for len(frontier) > 0 && rep.Schedules < opts.Schedules {
		batch := frontier
		if left := opts.Schedules - rep.Schedules; len(batch) > left {
			batch = batch[:left]
			frontier = frontier[left:]
		} else {
			frontier = nil
		}
		results := make([]result, len(batch))
		pool.Map(len(batch), func(i int) {
			rec := &sched.Recorder{Prefix: batch[i]}
			one := runOne(prog, opts, rec, "")
			results[i] = result{
				one: one, prefix: batch[i],
				trace: rec.Trace(), branches: rec.Branches, diverged: rec.Diverged(),
			}
		})
		for _, res := range results {
			res.one.schedule = sched.FormatTrace(res.trace)
			rep.merge(res.one)
			if res.diverged {
				rep.Diverged++
				continue
			}
			// Enumerate the alternatives of every branch point this run
			// discovered beyond its prefix (earlier ones were enumerated
			// by the ancestor that spawned this prefix).
			for bi := len(res.prefix); bi < len(res.branches); bi++ {
				b := res.branches[bi]
				for _, alt := range b.Enabled {
					if alt == b.Chosen {
						continue
					}
					if !opts.NoStateHash {
						key := dfsKey{sig: b.Sig, alt: alt}
						if seen[key] {
							rep.Pruned++
							continue
						}
						seen[key] = true
					}
					child := make([]sched.ThreadID, bi+1)
					copy(child, res.trace[:bi])
					child[bi] = alt
					frontier = append(frontier, child)
				}
			}
		}
	}
	rep.Exhausted = len(frontier) == 0
}
