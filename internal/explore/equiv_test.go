package explore

// The frontier-equivalence suite: the work-stealing frontier must
// produce the same *validation verdict* as the wave-batched reference
// it replaced, on the hand-written schedule-only deadlock programs and
// across the 200-seed generated matrix.
//
// What "equivalent" means here — and deliberately does not mean:
//
//   - The verdict outcome set, the Exhausted flag, and the presence and
//     outcome class of a first failure are compared exactly.
//   - Replay tokens are compared by *replaying them*: each frontier's
//     first-failure token must reproduce that frontier's reported
//     outcome and error text bit-for-bit. The tokens themselves may
//     name different schedules: state-hash pruning keeps one
//     representative per (positional state, alternative) pair, and
//     which candidate wins depends on seen-set insertion order — wave
//     order and stealing order insert differently, so the frontiers
//     keep different (state-equivalent) representatives.
//   - Pruned and Schedules may differ for the same reason and are not
//     compared. With NoStateHash no pruning choice exists, the explored
//     set is the full prefix tree, and the reports must agree to the
//     byte — asserted on a program small enough to enumerate fully.

import (
	"reflect"
	"testing"

	"parcoach/internal/interp"
	"parcoach/internal/mhgen"
	"parcoach/internal/parser"
	"parcoach/internal/sched"
)

// replayFailure re-runs a report's first failure from its token and
// checks it reproduces the reported outcome and error text.
func replayFailure(t *testing.T, label string, rep *Report, run func(sched.Scheduler) *interp.Result) {
	t.Helper()
	if rep.FirstFailure == nil {
		return
	}
	s, err := sched.Parse(rep.FirstFailure.Schedule)
	if err != nil {
		t.Fatalf("%s: first-failure token %q does not parse: %v", label, rep.FirstFailure.Schedule, err)
	}
	res := run(s)
	if got := res.Outcome(); got != rep.FirstFailure.Outcome {
		t.Fatalf("%s: replay of %q = %v, want %v (err: %v)",
			label, rep.FirstFailure.Schedule, got, rep.FirstFailure.Outcome, res.Err)
	}
	if res.Err == nil || res.Err.Error() != rep.FirstFailure.Err {
		t.Fatalf("%s: replay error text differs:\n got: %v\nwant: %s", label, res.Err, rep.FirstFailure.Err)
	}
}

// TestFrontierEquivalencePropertySuite compares the frontiers on the
// three schedule-only deadlock programs, at one worker (both orders
// deterministic) and with the stealing frontier at width 8.
func TestFrontierEquivalencePropertySuite(t *testing.T) {
	for _, tc := range scheduleOnlyBugs {
		t.Run(tc.name, func(t *testing.T) {
			prog := parser.MustParse(tc.name+".mh", tc.src)
			base := Options{Strategy: StrategyDFS, Schedules: 4096, MaxSteps: 200_000, Workers: 1}

			mk := func(f Frontier, workers int) *Report {
				o := base
				o.Frontier = f
				o.Workers = workers
				return Explore(prog, o)
			}
			wave := mk(FrontierWave, 1)
			for _, v := range []struct {
				label string
				rep   *Report
			}{
				{"steal-w1", mk(FrontierSteal, 1)},
				{"steal-w8", mk(FrontierSteal, 8)},
				{"dpor-w1", mk(FrontierDPOR, 1)},
				{"dpor-w8", mk(FrontierDPOR, 8)},
			} {
				steal := v.rep
				if steal.Exhausted && !wave.Exhausted {
					// DPOR can exhaust a space the wave reference only
					// samples within the same budget — that is the
					// reduction working. The sample cannot contain
					// outcomes the exhaustive set lacks.
					for _, w := range wave.Verdicts {
						if !steal.Caught(w.Outcome) {
							t.Errorf("%s: wave observed %v but exhaustive run did not", v.label, w.Outcome)
						}
					}
				} else {
					if steal.Exhausted != wave.Exhausted {
						t.Errorf("%s: Exhausted=%t, wave=%t", v.label, steal.Exhausted, wave.Exhausted)
					}
					if !reflect.DeepEqual(outcomeSet(steal), outcomeSet(wave)) {
						t.Errorf("%s: verdict set %v, wave %v", v.label, outcomeSet(steal), outcomeSet(wave))
					}
				}
				if !steal.Caught(tc.want) {
					t.Errorf("%s: missed the planted %s", v.label, tc.want)
				}
				if (steal.FirstFailure == nil) != (wave.FirstFailure == nil) {
					t.Fatalf("%s: first-failure presence differs from wave", v.label)
				}
				if steal.FirstFailure.Outcome != wave.FirstFailure.Outcome {
					t.Errorf("%s: first failure %v, wave %v", v.label,
						steal.FirstFailure.Outcome, wave.FirstFailure.Outcome)
				}
				replayFailure(t, v.label, steal, func(s sched.Scheduler) *interp.Result {
					return interp.Run(prog, interp.Options{Procs: 2, Threads: 2, MaxSteps: 200_000, Scheduler: s})
				})
			}
			replayFailure(t, "wave", wave, func(s sched.Scheduler) *interp.Result {
				return interp.Run(prog, interp.Options{Procs: 2, Threads: 2, MaxSteps: 200_000, Scheduler: s})
			})
		})
	}
}

// TestFrontierEquivalenceMhgenMatrix sweeps the same 200 generated
// seeds as the differential matrix (mhgen.FromSeed), exploring each
// program's schedule space with both frontiers (the pristine source —
// exploration equivalence is about the frontier, not the planted
// instrumentation, so planted bugs surface as deadlocks or MPI errors
// here). Seeds whose space neither frontier exhausts within the budget
// are skipped for the set comparison (a truncated enumeration is an
// arbitrary sample and legitimately differs between discovery orders);
// the test fails if that leaves too few seeds to mean anything.
func TestFrontierEquivalenceMhgenMatrix(t *testing.T) {
	seeds := uint64(200)
	// The seed rotation spans ten bug classes; the torn-buffer programs
	// carry an extra in-region racing writer whose interleaving space
	// rarely exhausts at this budget, so ~45 of 200 seeds qualify.
	minCompared := 40
	if raceEnabled {
		// The race gate exercises the concurrent frontier machinery; the
		// full 200-seed equivalence proof runs in the regular suite.
		// (Exhaustible seeds are not uniformly distributed — the first
		// 50 seeds only contain 8.)
		seeds = 50
		minCompared = 8
	}
	const budget = 256 // exhausts ~a quarter of the seeds' spaces
	compared := 0
	for seed := uint64(0); seed < seeds; seed++ {
		gp := mhgen.FromSeed(seed)
		prog, err := parser.Parse(gp.Name+".mh", gp.Source)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts := Options{
			Strategy: StrategyDFS, Schedules: budget, Workers: 4,
			Procs: gp.Procs, Threads: gp.Threads, MaxSteps: 100_000,
		}
		o := opts
		o.Frontier = FrontierSteal
		steal := Explore(prog, o)
		o.Frontier = FrontierWave
		wave := Explore(prog, o)
		if !steal.Exhausted || !wave.Exhausted {
			// Both frontiers must at least agree the budget ran out.
			if steal.Exhausted != wave.Exhausted {
				t.Errorf("seed %d: exhaustion differs: steal=%t wave=%t", seed, steal.Exhausted, wave.Exhausted)
			}
			continue
		}
		compared++
		if !reflect.DeepEqual(outcomeSet(steal), outcomeSet(wave)) {
			t.Errorf("seed %d (%s): verdict sets differ: steal=%v wave=%v",
				seed, gp.Bug, outcomeSet(steal), outcomeSet(wave))
		}
		if (steal.FirstFailure == nil) != (wave.FirstFailure == nil) {
			t.Errorf("seed %d (%s): first-failure presence differs", seed, gp.Bug)
			continue
		}
		if steal.FirstFailure != nil && steal.FirstFailure.Outcome != wave.FirstFailure.Outcome {
			t.Errorf("seed %d (%s): first failure steal=%v wave=%v",
				seed, gp.Bug, steal.FirstFailure.Outcome, wave.FirstFailure.Outcome)
		}
	}
	if compared < minCompared {
		t.Errorf("only %d/%d seeds exhausted within %d schedules — the comparison lost its teeth", compared, seeds, budget)
	}
	t.Logf("compared %d/%d exhausted seeds", compared, seeds)
}
