package explore

// The DPOR acceptance suite: FrontierDPOR must reach exhausted=true on
// every schedule-only racer with the identical verdict set plain DFS
// produces, at ≥10× fewer explored schedules, with every first-failure
// token still replaying to the identical error text — and across the
// generated matrix its exhaustive verdicts must cover everything the
// plain frontier observed.

import (
	"reflect"
	"testing"

	"parcoach/internal/interp"
	"parcoach/internal/mhgen"
	"parcoach/internal/parser"
	"parcoach/internal/sched"
)

// TestDPORReductionPropertySuite pins the tentpole claim on the three
// hand-written racers: identical verdict sets, exhausted under DPOR,
// ≥10× fewer schedules than plain DFS, replay-identical failure text.
func TestDPORReductionPropertySuite(t *testing.T) {
	for _, tc := range scheduleOnlyBugs {
		t.Run(tc.name, func(t *testing.T) {
			prog := parser.MustParse(tc.name+".mh", tc.src)
			base := Options{Strategy: StrategyDFS, Schedules: 1 << 16, MaxSteps: 200_000, Workers: 1}

			o := base
			o.Frontier = FrontierSteal
			dfs := Explore(prog, o)
			o.Frontier = FrontierDPOR
			dpor := Explore(prog, o)

			if !dfs.Exhausted || !dpor.Exhausted {
				t.Fatalf("both must exhaust: dfs=%t dpor=%t (dfs=%d dpor=%d schedules)",
					dfs.Exhausted, dpor.Exhausted, dfs.Schedules, dpor.Schedules)
			}
			if !reflect.DeepEqual(outcomeSet(dpor), outcomeSet(dfs)) {
				t.Errorf("verdict sets differ: dpor=%v dfs=%v", outcomeSet(dpor), outcomeSet(dfs))
			}
			if !dpor.Caught(tc.want) {
				t.Errorf("DPOR missed the planted %s; verdicts: %+v", tc.want, dpor.Verdicts)
			}
			if dpor.Schedules*10 > dfs.Schedules {
				t.Errorf("reduction below 10×: dpor=%d dfs=%d schedules", dpor.Schedules, dfs.Schedules)
			}
			t.Logf("dfs=%d dpor=%d schedules (%.1fx), sleepskips=%d",
				dfs.Schedules, dpor.Schedules, float64(dfs.Schedules)/float64(dpor.Schedules), dpor.SleepSkips)

			replayFailure(t, "dpor", dpor, func(s sched.Scheduler) *interp.Result {
				return interp.Run(prog, interp.Options{Procs: 2, Threads: 2, MaxSteps: 200_000, Scheduler: s})
			})
		})
	}
}

// TestDPORDeterministicAcrossWorkers pins the fixpoint property: without
// budget truncation (and without the optional state hash) the explored
// set — and therefore the whole report — is independent of worker count
// and steal order.
func TestDPORDeterministicAcrossWorkers(t *testing.T) {
	for _, tc := range scheduleOnlyBugs {
		prog := parser.MustParse(tc.name+".mh", tc.src)
		base := Options{Strategy: StrategyDFS, Frontier: FrontierDPOR,
			Schedules: 1 << 16, MaxSteps: 200_000}
		o := base
		o.Workers = 1
		w1 := Explore(prog, o)
		o.Workers = 8
		w8 := Explore(prog, o)
		if w1.String() != w8.String() || w1.Schedules != w8.Schedules {
			t.Errorf("%s: DPOR report differs across worker counts:\nw1: %sw8: %s",
				tc.name, w1.String(), w8.String())
		}
	}
}

// TestDPOREquivalenceMhgenMatrix sweeps the generated matrix: wherever
// both frontiers exhaust, the verdict sets must be identical (with the
// failing token replay-verified); wherever only DPOR exhausts — the
// whole point of the reduction — every outcome the truncated plain
// frontier observed must appear in DPOR's exhaustive set.
func TestDPOREquivalenceMhgenMatrix(t *testing.T) {
	seeds := uint64(200)
	// See TestFrontierEquivalenceMhgenMatrix: the ten-class seed
	// rotation (torn-buffer's racing writer rarely exhausts) leaves
	// ~44 of 200 seeds exhausted under both frontiers.
	minCompared := 40
	if raceEnabled {
		seeds = 50
		minCompared = 8
	}
	const budget = 256
	compared, dporOnly := 0, 0
	for seed := uint64(0); seed < seeds; seed++ {
		gp := mhgen.FromSeed(seed)
		prog, err := parser.Parse(gp.Name+".mh", gp.Source)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts := Options{
			Strategy: StrategyDFS, Schedules: budget, Workers: 4,
			Procs: gp.Procs, Threads: gp.Threads, MaxSteps: 100_000,
		}
		o := opts
		o.Frontier = FrontierSteal
		steal := Explore(prog, o)
		o.Frontier = FrontierDPOR
		dpor := Explore(prog, o)

		if !dpor.Exhausted {
			continue // truncated DPOR enumerations are arbitrary samples
		}
		if dpor.Schedules > steal.Schedules {
			t.Errorf("seed %d (%s): DPOR ran more schedules than plain DFS: %d > %d",
				seed, gp.Bug, dpor.Schedules, steal.Schedules)
		}
		replayFailure(t, gp.Name, dpor, func(s sched.Scheduler) *interp.Result {
			return interp.Run(prog, interp.Options{
				Procs: gp.Procs, Threads: gp.Threads, MaxSteps: 100_000, Scheduler: s,
			})
		})
		if steal.Exhausted {
			compared++
			if !reflect.DeepEqual(outcomeSet(dpor), outcomeSet(steal)) {
				t.Errorf("seed %d (%s): verdict sets differ: dpor=%v steal=%v",
					seed, gp.Bug, outcomeSet(dpor), outcomeSet(steal))
			}
		} else {
			// DPOR exhausted a space the plain frontier could only sample:
			// the sample cannot contain outcomes the exhaustive set lacks.
			dporOnly++
			for _, v := range steal.Verdicts {
				if !dpor.Caught(v.Outcome) {
					t.Errorf("seed %d (%s): plain DFS observed %v but exhaustive DPOR did not",
						seed, gp.Bug, v.Outcome)
				}
			}
		}
	}
	if compared < minCompared {
		t.Errorf("only %d/%d seeds exhausted under both — the comparison lost its teeth", compared, seeds)
	}
	t.Logf("compared %d seeds exhausted under both; %d exhausted only under DPOR", compared, dporOnly)
}

// TestPrunedAndSleepSkipsAreSeparate is the counter-semantics
// regression: state-hash prunes and sleep-set skips are different
// quantities reported in different fields — the plain frontiers never
// report sleep skips, and DPOR by default never reports state-hash
// prunes (only with DPORStateHash may Pruned become nonzero).
func TestPrunedAndSleepSkipsAreSeparate(t *testing.T) {
	prog := parser.MustParse("racing-flag-read.mh", scheduleOnlyBugs[2].src)
	base := Options{Strategy: StrategyDFS, Schedules: 1 << 16, MaxSteps: 200_000, Workers: 1}

	o := base
	o.Frontier = FrontierSteal
	dfs := Explore(prog, o)
	if dfs.SleepSkips != 0 {
		t.Errorf("plain DFS reported %d sleep skips, want 0", dfs.SleepSkips)
	}
	if dfs.Pruned == 0 {
		t.Errorf("plain DFS on a racer should state-hash-prune something, got 0")
	}

	o.Frontier = FrontierDPOR
	dpor := Explore(prog, o)
	if dpor.Pruned != 0 {
		t.Errorf("DPOR without DPORStateHash reported Pruned=%d, want 0", dpor.Pruned)
	}
	if dpor.SleepSkips == 0 {
		t.Errorf("DPOR on a racer should suppress rediscovered reversals, got SleepSkips=0")
	}

	// The optional second-level dedupe routes through Pruned, not
	// SleepSkips, and must not change the verdict set.
	o.DPORStateHash = true
	hashed := Explore(prog, o)
	if !reflect.DeepEqual(outcomeSet(hashed), outcomeSet(dpor)) {
		t.Errorf("DPORStateHash changed the verdict set: %v vs %v", outcomeSet(hashed), outcomeSet(dpor))
	}
}
