package explore

import (
	"testing"

	"parcoach/internal/interp"
	"parcoach/internal/parser"
)

// TestProgressEvents: the per-run progress hook must see every run
// exactly once, in strictly increasing Done order, with NewVerdict
// marking precisely the first appearance of each outcome class — the
// contract the daemon's NDJSON streaming is built on.
func TestProgressEvents(t *testing.T) {
	prog := parser.MustParse("racer.mh", BenchRacerSrc)
	for _, frontier := range []Frontier{FrontierSteal, FrontierWave, FrontierDPOR} {
		t.Run(frontier.String(), func(t *testing.T) {
			var events []ProgressEvent
			rep := Explore(prog, Options{
				Strategy:  StrategyDFS,
				Frontier:  frontier,
				Schedules: 256,
				Workers:   4,
				Progress:  func(ev ProgressEvent) { events = append(events, ev) },
			})
			if len(events) != rep.Schedules {
				t.Fatalf("%d progress events for %d schedules", len(events), rep.Schedules)
			}
			firsts := map[interp.Outcome]bool{}
			for i, ev := range events {
				if ev.Done != i+1 {
					t.Fatalf("event %d has Done=%d, want %d", i, ev.Done, i+1)
				}
				if ev.NewVerdict != !firsts[ev.Outcome] {
					t.Fatalf("event %d: NewVerdict=%t but seen=%t", i, ev.NewVerdict, firsts[ev.Outcome])
				}
				firsts[ev.Outcome] = true
			}
			if len(firsts) != len(rep.Verdicts) {
				t.Fatalf("stream saw %d verdict classes, report has %d", len(firsts), len(rep.Verdicts))
			}
			for _, v := range rep.Verdicts {
				if !firsts[v.Outcome] {
					t.Fatalf("report verdict %s never streamed", v.Outcome)
				}
			}
			// The racer deadlocks on some schedule: a streamed failure
			// event must carry a non-empty replay token.
			var failed *ProgressEvent
			for i := range events {
				if events[i].Outcome != interp.OutcomeClean {
					failed = &events[i]
					break
				}
			}
			if failed == nil {
				t.Fatal("no failing run streamed for the racer")
			}
			if failed.Schedule == "" || failed.Err == "" {
				t.Fatalf("failure event missing token or error: %+v", failed)
			}
		})
	}
}

// TestProgressSampled: the sampling path streams too.
func TestProgressSampled(t *testing.T) {
	prog := parser.MustParse("racer.mh", BenchRacerSrc)
	var n int
	rep := Explore(prog, Options{
		Strategy:  StrategyRandom,
		Schedules: 8,
		Workers:   2,
		Progress:  func(ev ProgressEvent) { n++ },
	})
	if n != rep.Schedules {
		t.Fatalf("%d events for %d schedules", n, rep.Schedules)
	}
}
