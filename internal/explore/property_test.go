package explore

import (
	"testing"

	"parcoach/internal/interp"
	"parcoach/internal/parser"
	"parcoach/internal/sched"
)

// The programs below are the reason this package exists: each hides a
// deadlock that only manifests under a particular interleaving, so the
// single deterministic round-robin run reports "clean" while the bug is
// real. The property locked in here is that bounded exhaustive DFS
// finds the failing schedule — and that the schedule it prints replays
// to the identical outcome.

// scheduleOnlyBugs are hand-written programs whose failure needs a
// non-round-robin interleaving.
var scheduleOnlyBugs = []struct {
	name string
	src  string
	// outcome the DFS must find on some schedule.
	want interp.Outcome
}{
	{
		// Two threads race to elect the nowait-single winner; the winner
		// records its tid in shared state, and the collective afterwards
		// is guarded by it. A schedule where the ranks elect different
		// winners makes rank 1 skip the barrier and finalize while rank 0
		// blocks in it forever.
		name: "racing-single-winner",
		src: `
func main() {
	MPI_Init()
	var winner = 0
	parallel num_threads(2) {
		single nowait { winner = tid() }
	}
	if winner == 0 {
		MPI_Barrier()
	}
	MPI_Finalize()
}
`,
		want: interp.OutcomeDeadlock,
	},
	{
		// The elected winner's tid picks the message tag; the receiver
		// only listens on tag 0. A schedule electing thread 1 on rank 0
		// leaves the send and the recv on unmatched tags — both ranks
		// block in point-to-point rendezvous forever.
		name: "racing-tag-mismatch",
		src: `
func main() {
	MPI_Init()
	if rank() == 0 {
		var tag = 0
		parallel num_threads(2) {
			single nowait { tag = tid() }
		}
		MPI_Send(7, 1, tag)
	} else {
		var got = 0
		MPI_Recv(got, 0, 0)
	}
	MPI_Finalize()
}
`,
		want: interp.OutcomeDeadlock,
	},
	{
		// A plain read races the nowait-single's write: whether the
		// reading thread observes flag==0 decides whether it joins the
		// barrier. Ranks whose schedules resolve the race differently
		// disagree on the barrier — one blocks, the other finalizes.
		name: "racing-flag-read",
		src: `
func main() {
	MPI_Init()
	var flag = 0
	var join = 0
	parallel num_threads(2) {
		single nowait { flag = 1 }
		if tid() == 1 {
			if flag == 0 {
				join = 1
			}
		}
	}
	if join == 1 {
		MPI_Barrier()
	}
	MPI_Finalize()
}
`,
		want: interp.OutcomeDeadlock,
	},
}

// TestDFSFindsScheduleOnlyBugs is the value-of-exploration property:
// for each program, the single round-robin schedule completes cleanly,
// and bounded exhaustive DFS finds an interleaving with the planted
// failure.
func TestDFSFindsScheduleOnlyBugs(t *testing.T) {
	for _, tc := range scheduleOnlyBugs {
		t.Run(tc.name, func(t *testing.T) {
			prog := parser.MustParse(tc.name+".mh", tc.src)

			rr := Explore(prog, Options{Strategy: StrategyRoundRobin, MaxSteps: 200_000})
			if rr.Schedules != 1 {
				t.Fatalf("round-robin ran %d schedules, want 1", rr.Schedules)
			}
			if !rr.Caught(interp.OutcomeClean) || rr.FirstFailure != nil {
				t.Fatalf("round-robin schedule should complete cleanly, got %+v", rr.Verdicts)
			}

			dfs := Explore(prog, Options{Strategy: StrategyDFS, Schedules: 4096, MaxSteps: 200_000})
			if !dfs.Caught(tc.want) {
				t.Fatalf("DFS over %d schedules (exhausted=%t pruned=%d) missed the %s; verdicts: %+v",
					dfs.Schedules, dfs.Exhausted, dfs.Pruned, tc.want, dfs.Verdicts)
			}
			if dfs.FirstFailure == nil {
				t.Fatal("DFS found a failing outcome but no FirstFailure")
			}
			t.Logf("DFS: %d schedules, exhausted=%t, pruned=%d, first failure at %d (%s)",
				dfs.Schedules, dfs.Exhausted, dfs.Pruned, dfs.FirstFailure.Index, dfs.FirstFailure.Schedule)

			// The printed schedule must replay to the identical outcome —
			// that is the whole point of the token.
			replaySched, err := sched.Parse(dfs.FirstFailure.Schedule)
			if err != nil {
				t.Fatalf("failing schedule token does not parse: %v", err)
			}
			res := interp.Run(prog, interp.Options{
				Procs: 2, Threads: 2, MaxSteps: 200_000, Scheduler: replaySched,
			})
			if got := res.Outcome(); got != dfs.FirstFailure.Outcome {
				t.Fatalf("replay of %q = %v, want %v (err: %v)",
					dfs.FirstFailure.Schedule, got, dfs.FirstFailure.Outcome, res.Err)
			}
			if res.Err == nil || res.Err.Error() != dfs.FirstFailure.Err {
				t.Fatalf("replay error text differs:\n got: %v\nwant: %s", res.Err, dfs.FirstFailure.Err)
			}
		})
	}
}

// TestRoundRobinMissesWhatDFSFinds pins the asymmetry quantitatively:
// across the three programs, round-robin finds zero failures while DFS
// finds one in each — the committed evidence for the acceptance
// criterion that exploration detects bugs a single schedule misses.
func TestRoundRobinMissesWhatDFSFinds(t *testing.T) {
	rrFailures, dfsFailures := 0, 0
	for _, tc := range scheduleOnlyBugs {
		prog := parser.MustParse(tc.name+".mh", tc.src)
		if Explore(prog, Options{Strategy: StrategyRoundRobin, MaxSteps: 200_000}).FirstFailure != nil {
			rrFailures++
		}
		if Explore(prog, Options{Strategy: StrategyDFS, Schedules: 4096, MaxSteps: 200_000}).FirstFailure != nil {
			dfsFailures++
		}
	}
	if rrFailures != 0 {
		t.Errorf("round-robin found %d failures, want 0 (the bugs must be schedule-only)", rrFailures)
	}
	if dfsFailures != len(scheduleOnlyBugs) {
		t.Errorf("DFS found %d failures, want %d", dfsFailures, len(scheduleOnlyBugs))
	}
}
