//go:build !race

package explore

const raceEnabled = false
