package explore

import (
	"reflect"
	"strings"
	"testing"

	"parcoach/internal/interp"
	"parcoach/internal/parser"
)

const racerSrc = `
func main() {
	MPI_Init()
	var winner = 0
	parallel num_threads(2) {
		single nowait { winner = tid() }
	}
	if winner == 0 {
		MPI_Barrier()
	}
	MPI_Finalize()
}
`

func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{StrategyRoundRobin, StrategyRandom, StrategyPCT, StrategyDFS} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("zigzag"); err == nil {
		t.Error("ParseStrategy accepted an unknown strategy")
	}
}

// TestExploreDeterministicAcrossWorkers: the report — verdict counts,
// first-failure index, replay tokens — is identical at any pool width,
// for every strategy.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	prog := parser.MustParse("racer.mh", racerSrc)
	for _, strat := range []Strategy{StrategyRandom, StrategyPCT, StrategyDFS} {
		opts := Options{Strategy: strat, Schedules: 64, Seed: 11, MaxSteps: 100_000}
		o1 := opts
		o1.Workers = 1
		o8 := opts
		o8.Workers = 8
		r1 := Explore(prog, o1)
		r8 := Explore(prog, o8)
		if r1.String() != r8.String() {
			t.Errorf("%s: report differs across worker counts:\n-- workers=1 --\n%s-- workers=8 --\n%s",
				strat, r1, r8)
		}
		if !reflect.DeepEqual(r1.Verdicts, r8.Verdicts) {
			t.Errorf("%s: verdicts differ across worker counts", strat)
		}
	}
}

// TestExploreSeedReproducible: the same seed reproduces the same report;
// a different seed is allowed to differ (and for this racer, random
// sampling does find the failure).
func TestExploreSeedReproducible(t *testing.T) {
	prog := parser.MustParse("racer.mh", racerSrc)
	opts := Options{Strategy: StrategyRandom, Schedules: 32, Seed: 3, MaxSteps: 100_000}
	a, b := Explore(prog, opts), Explore(prog, opts)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different reports:\n%s\n%s", a, b)
	}
	if a.FirstFailure == nil {
		t.Fatal("32 random schedules should find the racing-winner deadlock")
	}
}

// TestExploreBudgetOutcome: a schedule that spins classifies as
// budget-exhausted, not as a deadlock.
func TestExploreBudgetOutcome(t *testing.T) {
	prog := parser.MustParse("spin.mh", `
func main() {
	var x = 1
	while x > 0 {
		x += 1
	}
}
`)
	rep := Explore(prog, Options{Strategy: StrategyRoundRobin, Procs: 1, MaxSteps: 5_000})
	if !rep.Caught(interp.OutcomeBudget) {
		t.Fatalf("want budget-exhausted verdict, got %+v", rep.Verdicts)
	}
	if rep.Caught(interp.OutcomeDeadlock) {
		t.Fatal("a spin must not classify as deadlock")
	}
}

// TestDFSExhaustsSequentialProgram: a single-threaded program has no
// branch points, so DFS runs exactly one schedule and reports the space
// exhausted.
func TestDFSExhaustsSequentialProgram(t *testing.T) {
	prog := parser.MustParse("seq.mh", `
func main() {
	MPI_Init()
	var x = rank()
	MPI_Allreduce(x, x, sum)
	print(x)
	MPI_Finalize()
}
`)
	rep := Explore(prog, Options{Strategy: StrategyDFS, Schedules: 100, Procs: 1, MaxSteps: 100_000})
	if rep.Schedules != 1 || !rep.Exhausted {
		t.Fatalf("sequential program: schedules=%d exhausted=%t, want 1/true", rep.Schedules, rep.Exhausted)
	}
	if rep.FirstFailure != nil {
		t.Fatalf("clean program failed: %+v", rep.FirstFailure)
	}
}

// TestReportString: the CLI rendering names the strategy, counts, and
// the replay token of the first failure.
func TestReportString(t *testing.T) {
	prog := parser.MustParse("racer.mh", racerSrc)
	rep := Explore(prog, Options{Strategy: StrategyDFS, Schedules: 512, MaxSteps: 100_000})
	s := rep.String()
	for _, want := range []string{"strategy=dfs", "deadlock", "-replay 'trace:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}

// TestStateHashPrunes: with hashing disabled the DFS explores at least
// as many schedules; with it enabled it still finds the bug (the
// pruning is the point, not a soundness hole for these programs).
func TestStateHashPrunes(t *testing.T) {
	prog := parser.MustParse("racer.mh", racerSrc)
	pruned := Explore(prog, Options{Strategy: StrategyDFS, Schedules: 4096, MaxSteps: 100_000})
	full := Explore(prog, Options{Strategy: StrategyDFS, Schedules: 4096, MaxSteps: 100_000, NoStateHash: true})
	if pruned.Pruned == 0 {
		t.Error("state hashing pruned nothing on a racy program")
	}
	if !pruned.Caught(interp.OutcomeDeadlock) || !full.Caught(interp.OutcomeDeadlock) {
		t.Errorf("both modes must find the deadlock (pruned: %+v, full: %+v)", pruned.Verdicts, full.Verdicts)
	}
	if full.Exhausted && pruned.Exhausted && full.Schedules < pruned.Schedules {
		t.Errorf("hashing explored more schedules (%d) than full enumeration (%d)",
			pruned.Schedules, full.Schedules)
	}
}
