package explore

import (
	"reflect"
	"strings"
	"testing"

	"parcoach/internal/interp"
	"parcoach/internal/parser"
)

// racerSrc is the shared benchmark/property racer (see bench.go).
const racerSrc = BenchRacerSrc

func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{StrategyRoundRobin, StrategyRandom, StrategyPCT, StrategyDFS} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("zigzag"); err == nil {
		t.Error("ParseStrategy accepted an unknown strategy")
	}
}

// TestExploreDeterministicAcrossWorkers: for the sampling strategies
// the report — verdict counts, first-failure index, replay tokens — is
// identical at any pool width.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	prog := parser.MustParse("racer.mh", racerSrc)
	for _, strat := range []Strategy{StrategyRandom, StrategyPCT} {
		opts := Options{Strategy: strat, Schedules: 64, Seed: 11, MaxSteps: 100_000}
		o1 := opts
		o1.Workers = 1
		o8 := opts
		o8.Workers = 8
		r1 := Explore(prog, o1)
		r8 := Explore(prog, o8)
		if r1.String() != r8.String() {
			t.Errorf("%s: report differs across worker counts:\n-- workers=1 --\n%s-- workers=8 --\n%s",
				strat, r1, r8)
		}
		if !reflect.DeepEqual(r1.Verdicts, r8.Verdicts) {
			t.Errorf("%s: verdicts differ across worker counts", strat)
		}
	}
}

// outcomeSet reduces a report to its sorted outcome classes.
func outcomeSet(r *Report) []interp.Outcome {
	var out []interp.Outcome
	for _, v := range r.Verdicts {
		out = append(out, v.Outcome)
	}
	return out
}

// TestDFSDeterministicAcrossWorkers pins what the work-stealing DFS
// guarantees across pool widths. With state hashing on, which of two
// state-equivalent prefixes gets pruned depends on seen-set insertion
// order, so only the *verdict outcome set* (and exhaustion) is
// width-independent; with hashing off the enumeration is the full
// prefix tree, order plays no role, and the canonical merge makes the
// whole report byte-identical at any width.
func TestDFSDeterministicAcrossWorkers(t *testing.T) {
	t.Run("hashed-outcome-set", func(t *testing.T) {
		prog := parser.MustParse("racer.mh", racerSrc)
		// 4096 exhausts the hashed space (~1.6k schedules), so every
		// width explores a full pruning-equivalent cover of the tree.
		opts := Options{Strategy: StrategyDFS, Schedules: 4096, MaxSteps: 200_000}
		o1, o8 := opts, opts
		o1.Workers = 1
		o8.Workers = 8
		r1, r8 := Explore(prog, o1), Explore(prog, o8)
		if !r1.Exhausted || !r8.Exhausted {
			t.Fatalf("exhaustion differs or missing: w1=%t w8=%t", r1.Exhausted, r8.Exhausted)
		}
		if !reflect.DeepEqual(outcomeSet(r1), outcomeSet(r8)) {
			t.Errorf("outcome sets differ across worker counts: %v vs %v", outcomeSet(r1), outcomeSet(r8))
		}
	})
	t.Run("unhashed-byte-identical", func(t *testing.T) {
		prog := parser.MustParse("tiny-racer.mh", racerSrc)
		// One rank keeps the full tree small enough to enumerate
		// completely, where the reports must agree to the byte.
		opts := Options{Strategy: StrategyDFS, Schedules: 50_000, MaxSteps: 100_000,
			NoStateHash: true, Procs: 1}
		o1, o8 := opts, opts
		o1.Workers = 1
		o8.Workers = 8
		r1, r8 := Explore(prog, o1), Explore(prog, o8)
		if !r1.Exhausted || !r8.Exhausted {
			t.Fatalf("full enumeration did not exhaust: w1=%t w8=%t (%d/%d schedules)",
				r1.Exhausted, r8.Exhausted, r1.Schedules, r8.Schedules)
		}
		if r1.String() != r8.String() {
			t.Errorf("full enumeration differs across worker counts:\n-- workers=1 --\n%s-- workers=8 --\n%s", r1, r8)
		}
		if !reflect.DeepEqual(r1.Verdicts, r8.Verdicts) {
			t.Error("full-enumeration verdicts differ across worker counts")
		}
	})
}

// TestDFSBudgetNeverOvershoots: the per-run atomic budget reservation
// bounds the schedule count exactly, for both frontiers, at any width —
// including budgets far narrower than the frontier gets wide.
func TestDFSBudgetNeverOvershoots(t *testing.T) {
	prog := parser.MustParse("racer.mh", racerSrc)
	for _, frontier := range []Frontier{FrontierSteal, FrontierWave} {
		for _, budget := range []int{1, 2, 3, 7, 16, 64} {
			for _, workers := range []int{1, 8} {
				rep := Explore(prog, Options{
					Strategy: StrategyDFS, Schedules: budget, Workers: workers,
					MaxSteps: 100_000, Frontier: frontier,
				})
				if rep.Schedules > budget {
					t.Errorf("%s budget=%d workers=%d: ran %d schedules (overshoot)",
						frontier, budget, workers, rep.Schedules)
				}
				if !rep.Exhausted && rep.Schedules != budget {
					t.Errorf("%s budget=%d workers=%d: ran %d schedules without exhausting",
						frontier, budget, workers, rep.Schedules)
				}
			}
		}
	}
}

// TestExploreSeedReproducible: the same seed reproduces the same report;
// a different seed is allowed to differ (and for this racer, random
// sampling does find the failure).
func TestExploreSeedReproducible(t *testing.T) {
	prog := parser.MustParse("racer.mh", racerSrc)
	opts := Options{Strategy: StrategyRandom, Schedules: 32, Seed: 3, MaxSteps: 100_000}
	a, b := Explore(prog, opts), Explore(prog, opts)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different reports:\n%s\n%s", a, b)
	}
	if a.FirstFailure == nil {
		t.Fatal("32 random schedules should find the racing-winner deadlock")
	}
}

// TestExploreBudgetOutcome: a schedule that spins classifies as
// budget-exhausted, not as a deadlock.
func TestExploreBudgetOutcome(t *testing.T) {
	prog := parser.MustParse("spin.mh", `
func main() {
	var x = 1
	while x > 0 {
		x += 1
	}
}
`)
	rep := Explore(prog, Options{Strategy: StrategyRoundRobin, Procs: 1, MaxSteps: 5_000})
	if !rep.Caught(interp.OutcomeBudget) {
		t.Fatalf("want budget-exhausted verdict, got %+v", rep.Verdicts)
	}
	if rep.Caught(interp.OutcomeDeadlock) {
		t.Fatal("a spin must not classify as deadlock")
	}
}

// TestDFSExhaustsSequentialProgram: a single-threaded program has no
// branch points, so DFS runs exactly one schedule and reports the space
// exhausted.
func TestDFSExhaustsSequentialProgram(t *testing.T) {
	prog := parser.MustParse("seq.mh", `
func main() {
	MPI_Init()
	var x = rank()
	MPI_Allreduce(x, x, sum)
	print(x)
	MPI_Finalize()
}
`)
	rep := Explore(prog, Options{Strategy: StrategyDFS, Schedules: 100, Procs: 1, MaxSteps: 100_000})
	if rep.Schedules != 1 || !rep.Exhausted {
		t.Fatalf("sequential program: schedules=%d exhausted=%t, want 1/true", rep.Schedules, rep.Exhausted)
	}
	if rep.FirstFailure != nil {
		t.Fatalf("clean program failed: %+v", rep.FirstFailure)
	}
}

// TestReportString: the CLI rendering names the strategy, counts, and
// the replay token of the first failure.
func TestReportString(t *testing.T) {
	prog := parser.MustParse("racer.mh", racerSrc)
	rep := Explore(prog, Options{Strategy: StrategyDFS, Schedules: 512, MaxSteps: 100_000})
	s := rep.String()
	for _, want := range []string{"strategy=dfs", "deadlock", "-replay 'trace:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}

// TestStateHashPrunes: state hashing is what makes the racer's schedule
// space finite — the hashed DFS exhausts it in ~1.6k schedules and
// still finds the deadlock, while the unhashed tree is so much larger
// that the same budget truncates mid-enumeration. (The unhashed
// enumeration is no longer asserted to find the bug within the budget:
// the work-stealing frontier descends depth-first, so a truncated
// unhashed search can spend its whole budget inside one deep clean
// subtree — the wave frontier only found it by luck of breadth-first
// discovery order.)
func TestStateHashPrunes(t *testing.T) {
	prog := parser.MustParse("racer.mh", racerSrc)
	pruned := Explore(prog, Options{Strategy: StrategyDFS, Schedules: 4096, MaxSteps: 100_000})
	full := Explore(prog, Options{Strategy: StrategyDFS, Schedules: 4096, MaxSteps: 100_000, NoStateHash: true})
	if pruned.Pruned == 0 {
		t.Error("state hashing pruned nothing on a racy program")
	}
	if !pruned.Caught(interp.OutcomeDeadlock) {
		t.Errorf("hashed DFS must find the deadlock, got %+v", pruned.Verdicts)
	}
	if !pruned.Exhausted {
		t.Errorf("hashed DFS should exhaust the racer within 4096 schedules, ran %d", pruned.Schedules)
	}
	if full.Exhausted {
		t.Errorf("unhashed enumeration exhausted within %d schedules — pruning is buying nothing", full.Schedules)
	}
	if full.Schedules < pruned.Schedules {
		t.Errorf("hashing explored more schedules (%d) than the budget-bound full enumeration (%d)",
			pruned.Schedules, full.Schedules)
	}
}
