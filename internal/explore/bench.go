package explore

// The schedules/sec trajectory is measured by two consumers — the root
// BenchmarkExplore and cmd/benchjson (which emits BENCH_explore.json) —
// that must stay cell-for-cell identical for the trajectory to mean
// anything. The workload program and the strategy × frontier grid are
// therefore defined once, here.

// BenchRacerSrc is the property-suite racing-single-winner program: a
// schedule-only deadlock (round-robin runs clean; the bug needs a
// particular nowait-single election) whose hashed DFS space of ~1.6k
// schedules is the reference workload for exploration throughput.
const BenchRacerSrc = `
func main() {
	MPI_Init()
	var winner = 0
	parallel num_threads(2) {
		single nowait { winner = tid() }
	}
	if winner == 0 {
		MPI_Barrier()
	}
	MPI_Finalize()
}
`

// BenchCase is one strategy cell of the throughput grid.
type BenchCase struct {
	Name      string
	Strategy  Strategy
	Frontier  Frontier // meaningful for DFS only
	Schedules int
}

// BenchGrid returns the canonical benchmark grid: every strategy, with
// DFS under the work-stealing frontier, the legacy wave-batched
// reference (the before/after of the frontier rebuild), and the
// DPOR-reduced frontier (whose schedules/sec is lower per run — each
// run pays trace recording and race analysis — but which exhausts the
// space in a tiny fraction of the runs, the metric that matters).
// dfsBudget bounds the DFS cells; sampling cells use a fixed budget
// of 64.
func BenchGrid(dfsBudget int) []BenchCase {
	return []BenchCase{
		{"rr", StrategyRoundRobin, FrontierSteal, 1},
		{"random", StrategyRandom, FrontierSteal, 64},
		{"pct", StrategyPCT, FrontierSteal, 64},
		{"dfs", StrategyDFS, FrontierSteal, dfsBudget},
		{"dfs-wave", StrategyDFS, FrontierWave, dfsBudget},
		{"dfs-dpor", StrategyDFS, FrontierDPOR, dfsBudget},
	}
}
