package parser

import (
	"strings"
	"testing"

	"parcoach/internal/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("t.mh", src)
	if err != nil {
		t.Fatalf("Parse failed: %v", err)
	}
	return prog
}

func mainBody(t *testing.T, src string) []ast.Stmt {
	t.Helper()
	prog := parseOK(t, "func main() {\n"+src+"\n}")
	return prog.Func("main").Body.Stmts
}

func TestEmptyProgram(t *testing.T) {
	prog := parseOK(t, "")
	if len(prog.Funcs) != 0 {
		t.Errorf("want no funcs, got %d", len(prog.Funcs))
	}
}

func TestFuncDecl(t *testing.T) {
	prog := parseOK(t, "func add(a, b) { return a + b }\nfunc main() { }")
	if len(prog.Funcs) != 2 {
		t.Fatalf("want 2 funcs, got %d", len(prog.Funcs))
	}
	add := prog.Func("add")
	if add == nil || len(add.Params) != 2 || add.Params[0] != "a" || add.Params[1] != "b" {
		t.Fatalf("add not parsed correctly: %+v", add)
	}
	if prog.Func("missing") != nil {
		t.Error("Func(missing) must be nil")
	}
}

func TestDuplicateFunc(t *testing.T) {
	_, err := Parse("t.mh", "func f() {}\nfunc f() {}")
	if err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Errorf("want redeclared error, got %v", err)
	}
}

func TestVarDeclForms(t *testing.T) {
	stmts := mainBody(t, "var x\nvar y = 3\nvar a[10]")
	if len(stmts) != 3 {
		t.Fatalf("want 3 stmts, got %d", len(stmts))
	}
	x := stmts[0].(*ast.VarDecl)
	if x.Name != "x" || x.Init != nil || x.ArraySize != nil {
		t.Errorf("var x parsed wrong: %+v", x)
	}
	y := stmts[1].(*ast.VarDecl)
	if y.Init == nil || y.Init.(*ast.IntLit).Value != 3 {
		t.Errorf("var y = 3 parsed wrong: %+v", y)
	}
	a := stmts[2].(*ast.VarDecl)
	if a.ArraySize == nil || a.ArraySize.(*ast.IntLit).Value != 10 {
		t.Errorf("var a[10] parsed wrong: %+v", a)
	}
}

func TestAssignForms(t *testing.T) {
	stmts := mainBody(t, "var x\nvar a[4]\nx = 1\nx += 2\nx -= 3\na[1] = 5")
	as := stmts[2].(*ast.Assign)
	if as.Op != ast.AssignSet {
		t.Errorf("x = 1 op = %v", as.Op)
	}
	if stmts[3].(*ast.Assign).Op != ast.AssignAdd {
		t.Error("+= not parsed")
	}
	if stmts[4].(*ast.Assign).Op != ast.AssignSub {
		t.Error("-= not parsed")
	}
	idx := stmts[5].(*ast.Assign).Target.(*ast.IndexExpr)
	if idx.Name != "a" {
		t.Errorf("a[1] target = %+v", idx)
	}
}

func TestIfElseChain(t *testing.T) {
	stmts := mainBody(t, `
if x == 0 {
	x = 1
} else if x == 1 {
	x = 2
} else {
	x = 3
}`)
	s := stmts[0].(*ast.If)
	elif, ok := s.Else.(*ast.If)
	if !ok {
		t.Fatalf("else-if not chained: %T", s.Else)
	}
	if _, ok := elif.Else.(*ast.Block); !ok {
		t.Fatalf("final else not a block: %T", elif.Else)
	}
}

func TestLoops(t *testing.T) {
	stmts := mainBody(t, "for i = 0 .. 10 { x = i }\nwhile x < 5 { x += 1 }")
	f := stmts[0].(*ast.For)
	if f.Var != "i" || f.From.(*ast.IntLit).Value != 0 || f.To.(*ast.IntLit).Value != 10 {
		t.Errorf("for parsed wrong: %+v", f)
	}
	w := stmts[1].(*ast.While)
	if w.Cond == nil || len(w.Body.Stmts) != 1 {
		t.Errorf("while parsed wrong: %+v", w)
	}
}

func TestMPIStatements(t *testing.T) {
	stmts := mainBody(t, `
MPI_Init()
MPI_Barrier()
MPI_Bcast(x)
MPI_Bcast(x, 2)
MPI_Reduce(r, x)
MPI_Reduce(r, x, max)
MPI_Reduce(r, x, max, 1)
MPI_Allreduce(r, x, min)
MPI_Gather(buf, x, 0)
MPI_Allgather(buf, x)
MPI_Scatter(x, buf)
MPI_Alltoall(dst, src)
MPI_Scan(r, x, prod)
MPI_Send(x, 1, 7)
MPI_Recv(x, 0)
MPI_Finalize()`)
	kinds := []ast.MPIKind{
		ast.MPIInit, ast.MPIBarrier, ast.MPIBcast, ast.MPIBcast, ast.MPIReduce,
		ast.MPIReduce, ast.MPIReduce, ast.MPIAllreduce, ast.MPIGather,
		ast.MPIAllgather, ast.MPIScatter, ast.MPIAlltoall, ast.MPIScan,
		ast.MPISend, ast.MPIRecv, ast.MPIFinalize,
	}
	if len(stmts) != len(kinds) {
		t.Fatalf("want %d stmts, got %d", len(kinds), len(stmts))
	}
	for i, want := range kinds {
		s := stmts[i].(*ast.MPIStmt)
		if s.Kind != want {
			t.Errorf("stmt %d kind = %v, want %v", i, s.Kind, want)
		}
	}
	// MPI_Reduce(r, x, max, 1): op and root both present.
	red := stmts[6].(*ast.MPIStmt)
	if red.OpName != "max" || red.Root == nil {
		t.Errorf("reduce with op+root parsed wrong: %+v", red)
	}
	// MPI_Bcast(x, 2): root present.
	if stmts[3].(*ast.MPIStmt).Root == nil {
		t.Error("bcast root missing")
	}
	// MPI_Send(x, 1, 7): tag present.
	if stmts[13].(*ast.MPIStmt).Tag == nil {
		t.Error("send tag missing")
	}
}

func TestAllreduceRejectsRoot(t *testing.T) {
	_, err := Parse("t.mh", "func main() { MPI_Allreduce(r, x, sum, 3) }")
	if err == nil || !strings.Contains(err.Error(), "no root") {
		t.Errorf("want root rejection, got %v", err)
	}
}

func TestParallelConstructs(t *testing.T) {
	stmts := mainBody(t, `
parallel {
	barrier
	single { x = 1 }
	single nowait { x = 2 }
	master { x = 3 }
	critical { x = 4 }
	critical(lk) { x = 5 }
	atomic x += 1
	pfor i = 0 .. 8 { x = i }
	pfor schedule(dynamic) nowait i = 0 .. 8 { x = i }
	sections {
		section { x = 6 }
		section { x = 7 }
	}
}
parallel num_threads(4) { x = 0 }`)
	par := stmts[0].(*ast.ParallelStmt)
	body := par.Body.Stmts
	if _, ok := body[0].(*ast.BarrierStmt); !ok {
		t.Error("barrier not parsed")
	}
	if s := body[1].(*ast.SingleStmt); s.Nowait {
		t.Error("single must not be nowait")
	}
	if s := body[2].(*ast.SingleStmt); !s.Nowait {
		t.Error("single nowait flag lost")
	}
	if _, ok := body[3].(*ast.MasterStmt); !ok {
		t.Error("master not parsed")
	}
	if c := body[5].(*ast.CriticalStmt); c.Name != "lk" {
		t.Errorf("critical name = %q", c.Name)
	}
	if a := body[6].(*ast.AtomicStmt); a.Op != ast.AssignAdd {
		t.Error("atomic op wrong")
	}
	pf := body[8].(*ast.PforStmt)
	if pf.Sched != ast.ScheduleDynamic || !pf.Nowait {
		t.Errorf("pfor clauses wrong: %+v", pf)
	}
	if body[7].(*ast.PforStmt).Sched != ast.ScheduleStatic {
		t.Error("default schedule must be static")
	}
	secs := body[9].(*ast.SectionsStmt)
	if len(secs.Bodies) != 2 || len(secs.SectionIDs) != 2 {
		t.Errorf("sections parsed wrong: %+v", secs)
	}
	par2 := stmts[1].(*ast.ParallelStmt)
	if par2.NumThreads == nil {
		t.Error("num_threads clause lost")
	}
}

func TestRegionIDsAreUnique(t *testing.T) {
	prog := parseOK(t, `
func a() { parallel { single { } master { } } }
func b() { parallel { sections { section { } section { } } } }`)
	seen := map[int]bool{}
	count := 0
	for _, f := range prog.Funcs {
		ast.Inspect(f, func(n ast.Node) bool {
			var ids []int
			switch n := n.(type) {
			case *ast.ParallelStmt:
				ids = []int{n.RegionID}
			case *ast.SingleStmt:
				ids = []int{n.RegionID}
			case *ast.MasterStmt:
				ids = []int{n.RegionID}
			case *ast.SectionsStmt:
				ids = append([]int{n.RegionID}, n.SectionIDs...)
			}
			for _, id := range ids {
				if seen[id] {
					t.Errorf("region id %d reused", id)
				}
				seen[id] = true
				count++
			}
			return true
		})
	}
	if count == 0 {
		t.Fatal("no regions found")
	}
	if prog.Regions < count {
		t.Errorf("Program.Regions = %d < %d distinct ids", prog.Regions, count)
	}
}

func TestExpressionPrecedence(t *testing.T) {
	stmts := mainBody(t, "x = 1 + 2 * 3\ny = (1 + 2) * 3\nz = a < b && c < d || e == f")
	x := stmts[0].(*ast.Assign).Value.(*ast.BinaryExpr)
	if x.Op.String() != "+" {
		t.Errorf("1+2*3 root op = %v, want +", x.Op)
	}
	y := stmts[1].(*ast.Assign).Value.(*ast.BinaryExpr)
	if y.Op.String() != "*" {
		t.Errorf("(1+2)*3 root op = %v, want *", y.Op)
	}
	z := stmts[2].(*ast.Assign).Value.(*ast.BinaryExpr)
	if z.Op.String() != "||" {
		t.Errorf("root of && || chain = %v, want ||", z.Op)
	}
}

func TestUnaryExpressions(t *testing.T) {
	stmts := mainBody(t, "x = -y\nb = !c\nz = -(-1)")
	if u := stmts[0].(*ast.Assign).Value.(*ast.UnaryExpr); u.Op.String() != "-" {
		t.Error("unary minus lost")
	}
	if u := stmts[1].(*ast.Assign).Value.(*ast.UnaryExpr); u.Op.String() != "!" {
		t.Error("not lost")
	}
}

func TestCallsAndIntrinsics(t *testing.T) {
	stmts := mainBody(t, "x = rank() + size()\ny = max(tid(), 3)\ncompute(x, y)")
	call := stmts[2].(*ast.CallStmt).Call
	if call.Name != "compute" || len(call.Args) != 2 {
		t.Errorf("call stmt parsed wrong: %+v", call)
	}
}

func TestReturnForms(t *testing.T) {
	prog := parseOK(t, "func a() { return }\nfunc b() { return 42 }")
	ra := prog.Func("a").Body.Stmts[0].(*ast.Return)
	if ra.Value != nil {
		t.Error("bare return must have nil value")
	}
	rb := prog.Func("b").Body.Stmts[0].(*ast.Return)
	if rb.Value == nil {
		t.Error("return 42 lost its value")
	}
}

func TestParseErrorsRecover(t *testing.T) {
	// The first statement is malformed; the parser must still see the rest.
	prog, err := Parse("t.mh", `
func main() {
	var = 3
	x = 1
}
func helper() { return 1 }`)
	if err == nil {
		t.Fatal("want parse error")
	}
	if prog.Func("helper") == nil {
		t.Error("parser did not recover to parse helper()")
	}
}

func TestEmptySectionsRejected(t *testing.T) {
	_, err := Parse("t.mh", "func main() { sections { } }")
	if err == nil || !strings.Contains(err.Error(), "no section") {
		t.Errorf("want empty-sections error, got %v", err)
	}
}

func TestAtomicRequiresCompound(t *testing.T) {
	_, err := Parse("t.mh", "func main() { atomic x = 3 }")
	if err == nil {
		t.Error("atomic with plain = must be rejected")
	}
}

func TestIntLiteralOverflow(t *testing.T) {
	_, err := Parse("t.mh", "func main() { x = 99999999999999999999999999 }")
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("want out-of-range error, got %v", err)
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("t.mh", "func { }")
}

// Round trip: printing a parsed program and reparsing it yields the same
// rendering. This pins the printer and parser against each other.
func TestPrintParseRoundTrip(t *testing.T) {
	src := `
func worker(n, a) {
	var local = n * 2
	if local > 10 && n != 0 {
		local = local % 7
	} else if local == 4 {
		return local
	} else {
		local += 1
	}
	for i = 0 .. n {
		a[i] = i - 1
	}
	while local < 100 {
		local += max(local, 3)
	}
	return local
}

func main() {
	MPI_Init()
	var x = rank()
	var buf[8]
	parallel num_threads(4) {
		pfor schedule(dynamic) i = 0 .. 64 {
			atomic x += i
		}
		barrier
		single {
			MPI_Allreduce(x, x, sum)
		}
		sections nowait {
			section {
				x = worker(1, buf)
			}
			section {
				x = worker(2, buf)
			}
		}
		master {
			print(x)
		}
		critical(upd) {
			x -= 1
		}
	}
	MPI_Gather(buf, x, 0)
	MPI_Send(x, 0, 9)
	MPI_Finalize()
}`
	p1 := parseOK(t, src)
	text1 := ast.String(p1)
	p2, err := Parse("t.mh", text1)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, text1)
	}
	text2 := ast.String(p2)
	if text1 != text2 {
		t.Errorf("round trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}
