package parser

import (
	"testing"
	"testing/quick"
)

// Property: the parser never panics, whatever bytes it is fed — it either
// produces a program or a located error list.
func TestParseNeverPanics(t *testing.T) {
	check := func(raw []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", raw, r)
				ok = false
			}
		}()
		_, _ = Parse("fuzz.mh", string(raw))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: near-miss programs (valid programs with one byte flipped)
// never panic and never lose the rest of the file when they still parse.
func TestParseMutatedPrograms(t *testing.T) {
	base := `
func helper(n) {
	if n > 0 {
		MPI_Barrier()
	}
	return n * 2
}
func main() {
	MPI_Init()
	var x = helper(rank())
	parallel num_threads(2) {
		single {
			MPI_Allreduce(x, x, sum)
		}
	}
	MPI_Finalize()
}`
	for i := 0; i < len(base); i += 3 {
		mutated := []byte(base)
		mutated[i] = '@'
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with mutation at %d: %v", i, r)
				}
			}()
			_, _ = Parse("mut.mh", string(mutated))
		}()
	}
}
