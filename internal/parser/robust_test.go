// Robustness properties: whatever bytes the parser is fed — random,
// truncated, or near-miss mutations of generator output — it must return
// a program or a located error list, never panic, and never lose the
// rest of the file when one statement is malformed. The package is
// parser_test (external) so the cases can draw on internal/mhgen's
// generated corpus without an import cycle.
package parser_test

import (
	"strings"
	"testing"
	"testing/quick"

	"parcoach/internal/mhgen"
	"parcoach/internal/parser"
	"parcoach/internal/token"
)

// parseNoPanic runs the parser and fails the test on panic.
func parseNoPanic(t *testing.T, what, src string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic on %s:\n%s\n%v", what, src, r)
		}
	}()
	_, _ = parser.Parse("fuzz.mh", src)
}

// Property: the parser never panics, whatever bytes it is fed.
func TestParseNeverPanics(t *testing.T) {
	check := func(raw []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", raw, r)
				ok = false
			}
		}()
		_, _ = parser.Parse("fuzz.mh", string(raw))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: near-miss programs (valid programs with one byte flipped)
// never panic and never lose the rest of the file when they still parse.
func TestParseMutatedPrograms(t *testing.T) {
	base := `
func helper(n) {
	if n > 0 {
		MPI_Barrier()
	}
	return n * 2
}
func main() {
	MPI_Init()
	var x = helper(rank())
	parallel num_threads(2) {
		single {
			MPI_Allreduce(x, x, sum)
		}
	}
	MPI_Finalize()
}`
	for i := 0; i < len(base); i += 3 {
		mutated := []byte(base)
		mutated[i] = '@'
		parseNoPanic(t, "byte mutation", string(mutated))
	}
}

// Property: every truncation prefix of a generated program — which
// leaves blocks, argument lists and expressions dangling at every
// possible point — parses without panicking.
func TestParseTruncatedGeneratedPrograms(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		src := mhgen.FromSeed(seed).Source
		step := len(src)/60 + 1
		for cut := 0; cut < len(src); cut += step {
			parseNoPanic(t, "truncation", src[:cut])
		}
	}
}

// Property: swapping adjacent tokens of a generated program (assignment
// targets and operators, keywords and braces, ...) never panics, and
// when the mutation still parses the rest of the program is retained.
func TestParseTokenSwappedGeneratedPrograms(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		src := mhgen.FromSeed(seed).Source
		fields := strings.Fields(src)
		step := len(fields)/40 + 1
		for i := 0; i+1 < len(fields); i += step {
			swapped := make([]string, len(fields))
			copy(swapped, fields)
			swapped[i], swapped[i+1] = swapped[i+1], swapped[i]
			parseNoPanic(t, "token swap", strings.Join(swapped, " "))
		}
	}
}

// Property: deleting any single line of a generated program (dropping a
// declaration, a brace, a region opener) yields diagnostics, not a
// panic — and resynchronization still sees the later functions.
func TestParseLineDeletedGeneratedPrograms(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		src := mhgen.FromSeed(seed).Source
		lines := strings.Split(src, "\n")
		step := len(lines)/40 + 1
		for i := 0; i < len(lines); i += step {
			mutated := make([]string, 0, len(lines)-1)
			mutated = append(mutated, lines[:i]...)
			mutated = append(mutated, lines[i+1:]...)
			parseNoPanic(t, "line deletion", strings.Join(mutated, "\n"))
		}
	}
}

// Regression: one malformed statement must not swallow the rest of the
// file — the parser resynchronizes and still reports later functions.
func TestParseResynchronizesAcrossGarbage(t *testing.T) {
	src := `
func broken() {
	var = = 3 @@@
}
func later() {
	MPI_Barrier()
}
func main() {
	later()
}`
	prog, err := parser.Parse("resync.mh", src)
	if err == nil {
		t.Fatal("expected a parse error")
	}
	if prog == nil {
		t.Fatal("error recovery must still return the program")
	}
	names := make(map[string]bool)
	for _, f := range prog.Funcs {
		names[f.Name] = true
	}
	for _, want := range []string{"later", "main"} {
		if !names[want] {
			t.Errorf("resynchronization lost function %q (got %v)", want, names)
		}
	}
}

// Sanity: the keyword kinds the parser's sync set keys on still lex from
// their source spellings — a lexer refactor that dropped one would
// silently weaken error recovery.
func TestSyncTokensExist(t *testing.T) {
	for _, c := range []struct {
		kind token.Kind
		name string
	}{
		{token.Func, "func"}, {token.Var, "var"}, {token.If, "if"},
		{token.For, "for"}, {token.While, "while"}, {token.Parallel, "parallel"},
		{token.Single, "single"}, {token.Barrier, "barrier"}, {token.Sections, "sections"},
	} {
		if got := c.kind.String(); got != c.name {
			t.Errorf("token kind %d renders %q, want keyword %q", c.kind, got, c.name)
		}
	}
}
