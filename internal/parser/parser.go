// Package parser builds MiniHybrid ASTs from source text with a
// recursive-descent parser. Parse errors do not abort at the first
// problem: the parser resynchronizes at statement boundaries so that one
// malformed statement still yields diagnostics for the rest of the file.
//
// Grammar sketch (statements are newline-insensitive, `;` optional):
//
//	program   = { "func" IDENT "(" [params] ")" block }
//	block     = "{" { stmt } "}"
//	stmt      = "var" IDENT [ "[" expr "]" | "=" expr ]
//	          | lvalue ("=" | "+=" | "-=") expr
//	          | IDENT "(" args ")"
//	          | "if" expr block [ "else" (if | block) ]
//	          | "for" IDENT "=" expr ".." expr block
//	          | "while" expr block
//	          | "return" [ expr ] | "print" "(" args ")"
//	          | MPI_* "(" ... ")"
//	          | "parallel" [clauses] block | "single" ["nowait"] block
//	          | "master" block | "critical" ["(" IDENT ")"] block
//	          | "barrier" | "atomic" lvalue ("+="|"-=") expr
//	          | "pfor" [clauses] IDENT "=" expr ".." expr block
//	          | "sections" ["nowait"] "{" { "section" block } "}"
package parser

import (
	"strconv"

	"parcoach/internal/ast"
	"parcoach/internal/lexer"
	"parcoach/internal/source"
	"parcoach/internal/token"
)

// Parse scans and parses the named source text.
func Parse(filename, src string) (*ast.Program, error) {
	file := source.NewFile(filename, src)
	lex := lexer.New(file)
	toks := lex.Scan()
	p := &parser{file: file, toks: toks, errs: lex.Errors()}
	prog := p.parseProgram()
	p.errs.Sort()
	if err := p.errs.Err(); err != nil {
		return prog, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and generators whose
// input is known-good by construction.
func MustParse(filename, src string) *ast.Program {
	prog, err := Parse(filename, src)
	if err != nil {
		panic("parser.MustParse: " + err.Error())
	}
	return prog
}

type parser struct {
	file    *source.File
	toks    []token.Token
	pos     int
	errs    source.ErrorList
	regions int
}

func (p *parser) cur() token.Token     { return p.toks[p.pos] }
func (p *parser) kind() token.Kind     { return p.toks[p.pos].Kind }
func (p *parser) at(k token.Kind) bool { return p.toks[p.pos].Kind == k }

func (p *parser) posOf(t token.Token) source.Pos { return p.file.Pos(t.Offset) }
func (p *parser) curPos() source.Pos             { return p.posOf(p.cur()) }

func (p *parser) advance() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Offset: p.cur().Offset}
}

func (p *parser) errorf(format string, args ...any) {
	p.errs.Add(p.curPos(), "parse", format, args...)
}

// sync skips tokens until a plausible statement start or block delimiter,
// so one error does not cascade.
func (p *parser) sync() {
	for {
		switch p.kind() {
		case token.EOF, token.RBrace, token.Func, token.Var, token.If, token.For,
			token.While, token.Return, token.Print, token.Parallel, token.Single,
			token.Master, token.Critical, token.Barrier, token.Atomic, token.Pfor,
			token.Sections:
			return
		}
		p.advance()
	}
}

func (p *parser) newRegion() int {
	id := p.regions
	p.regions++
	return id
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{File: p.file, ByName: make(map[string]*ast.FuncDecl)}
	for !p.at(token.EOF) {
		if !p.at(token.Func) {
			p.errorf("expected func declaration, found %s", p.cur())
			p.advance()
			p.sync()
			continue
		}
		f := p.parseFunc()
		if f != nil {
			prog.Funcs = append(prog.Funcs, f)
			if _, dup := prog.ByName[f.Name]; dup {
				p.errs.Add(f.NamePos, "parse", "function %q redeclared", f.Name)
			} else {
				prog.ByName[f.Name] = f
			}
		}
	}
	prog.Regions = p.regions
	return prog
}

func (p *parser) parseFunc() *ast.FuncDecl {
	p.expect(token.Func)
	nameTok := p.expect(token.Ident)
	f := &ast.FuncDecl{NamePos: p.posOf(nameTok), Name: nameTok.Lit}
	p.expect(token.LParen)
	if !p.at(token.RParen) {
		for {
			id := p.expect(token.Ident)
			f.Params = append(f.Params, id.Lit)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RParen)
	f.Body = p.parseBlock()
	return f
}

func (p *parser) parseBlock() *ast.Block {
	lb := p.expect(token.LBrace)
	b := &ast.Block{Lbrace: p.posOf(lb)}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		p.accept(token.Semi)
	}
	p.expect(token.RBrace)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.kind() {
	case token.Var:
		return p.parseVarDecl()
	case token.Ident:
		return p.parseSimpleStmt()
	case token.If:
		return p.parseIf()
	case token.For:
		return p.parseFor()
	case token.While:
		return p.parseWhile()
	case token.Return:
		t := p.advance()
		r := &ast.Return{RetPos: p.posOf(t)}
		// The value must start on the same line as `return`; otherwise the
		// next statement (which may begin with an identifier) would be
		// swallowed as the return value.
		if p.startsExpr() && p.curPos().Line == r.RetPos.Line {
			r.Value = p.parseExpr()
		}
		return r
	case token.Print:
		t := p.advance()
		p.expect(token.LParen)
		pr := &ast.Print{PrintPos: p.posOf(t)}
		if !p.at(token.RParen) {
			for {
				pr.Args = append(pr.Args, p.parseExpr())
				if !p.accept(token.Comma) {
					break
				}
			}
		}
		p.expect(token.RParen)
		return pr
	case token.Parallel:
		t := p.advance()
		s := &ast.ParallelStmt{ParPos: p.posOf(t), RegionID: p.newRegion()}
		for p.at(token.NumThreads) {
			p.advance()
			p.expect(token.LParen)
			s.NumThreads = p.parseExpr()
			p.expect(token.RParen)
		}
		s.Body = p.parseBlock()
		return s
	case token.Single:
		t := p.advance()
		s := &ast.SingleStmt{SingPos: p.posOf(t), RegionID: p.newRegion()}
		s.Nowait = p.accept(token.Nowait)
		s.Body = p.parseBlock()
		return s
	case token.Master:
		t := p.advance()
		return &ast.MasterStmt{MastPos: p.posOf(t), RegionID: p.newRegion(), Body: p.parseBlock()}
	case token.Critical:
		t := p.advance()
		s := &ast.CriticalStmt{CritPos: p.posOf(t)}
		if p.accept(token.LParen) {
			s.Name = p.expect(token.Ident).Lit
			p.expect(token.RParen)
		}
		s.Body = p.parseBlock()
		return s
	case token.Barrier:
		t := p.advance()
		return &ast.BarrierStmt{BarPos: p.posOf(t)}
	case token.Atomic:
		t := p.advance()
		lv := p.parseLValue()
		var op ast.AssignOp
		switch {
		case p.accept(token.PlusEq):
			op = ast.AssignAdd
		case p.accept(token.MinusEq):
			op = ast.AssignSub
		default:
			p.errorf("atomic requires += or -=, found %s", p.cur())
			p.sync()
			return nil
		}
		return &ast.AtomicStmt{AtomPos: p.posOf(t), Target: lv, Op: op, Value: p.parseExpr()}
	case token.Pfor:
		return p.parsePfor()
	case token.Sections:
		return p.parseSections()
	}
	p.errorf("unexpected %s at statement start", p.cur())
	p.advance()
	p.sync()
	return nil
}

func (p *parser) parseVarDecl() ast.Stmt {
	t := p.advance()
	name := p.expect(token.Ident)
	d := &ast.VarDecl{VarPos: p.posOf(t), Name: name.Lit}
	switch {
	case p.accept(token.LBracket):
		d.ArraySize = p.parseExpr()
		p.expect(token.RBracket)
	case p.accept(token.Assign):
		d.Init = p.parseExpr()
	}
	return d
}

// parseSimpleStmt handles assignment, compound assignment, call statements
// and MPI statements (whose names lex as identifiers).
func (p *parser) parseSimpleStmt() ast.Stmt {
	if kind, isMPI := mpiKinds[p.cur().Lit]; isMPI {
		return p.parseMPI(kind)
	}
	nameTok := p.advance()
	namePos := p.posOf(nameTok)
	switch p.kind() {
	case token.LParen:
		call := p.parseCallTail(nameTok.Lit, namePos)
		return &ast.CallStmt{Call: call}
	case token.LBracket:
		p.advance()
		idx := p.parseExpr()
		p.expect(token.RBracket)
		lv := &ast.IndexExpr{NamePos: namePos, Name: nameTok.Lit, Index: idx}
		return p.parseAssignTail(lv)
	default:
		lv := &ast.VarRef{NamePos: namePos, Name: nameTok.Lit}
		return p.parseAssignTail(lv)
	}
}

func (p *parser) parseAssignTail(lv ast.LValue) ast.Stmt {
	var op ast.AssignOp
	switch {
	case p.accept(token.Assign):
		op = ast.AssignSet
	case p.accept(token.PlusEq):
		op = ast.AssignAdd
	case p.accept(token.MinusEq):
		op = ast.AssignSub
	default:
		p.errorf("expected assignment operator, found %s", p.cur())
		p.sync()
		return nil
	}
	return &ast.Assign{Target: lv, Op: op, Value: p.parseExpr()}
}

var mpiKinds = map[string]ast.MPIKind{
	"MPI_Init":      ast.MPIInit,
	"MPI_Finalize":  ast.MPIFinalize,
	"MPI_Barrier":   ast.MPIBarrier,
	"MPI_Bcast":     ast.MPIBcast,
	"MPI_Reduce":    ast.MPIReduce,
	"MPI_Allreduce": ast.MPIAllreduce,
	"MPI_Gather":    ast.MPIGather,
	"MPI_Allgather": ast.MPIAllgather,
	"MPI_Scatter":   ast.MPIScatter,
	"MPI_Alltoall":  ast.MPIAlltoall,
	"MPI_Scan":      ast.MPIScan,
	"MPI_Send":      ast.MPISend,
	"MPI_Recv":      ast.MPIRecv,
}

var reduceOps = map[string]bool{"sum": true, "min": true, "max": true, "prod": true}

func (p *parser) parseMPI(kind ast.MPIKind) ast.Stmt {
	nameTok := p.advance()
	s := &ast.MPIStmt{KindPos: p.posOf(nameTok), Kind: kind}
	p.expect(token.LParen)
	switch kind {
	case ast.MPIInit, ast.MPIFinalize, ast.MPIBarrier:
		// no arguments
	case ast.MPIBcast:
		s.Dst = p.parseLValue()
		if p.accept(token.Comma) {
			s.Root = p.parseExpr()
		}
	case ast.MPIReduce, ast.MPIAllreduce, ast.MPIScan:
		s.Dst = p.parseLValue()
		p.expect(token.Comma)
		s.Src = p.parseExpr()
		if p.accept(token.Comma) {
			if p.at(token.Ident) && reduceOps[p.cur().Lit] {
				s.OpName = p.advance().Lit
				if p.accept(token.Comma) {
					s.Root = p.parseExpr()
				}
			} else {
				s.Root = p.parseExpr()
			}
		}
		if kind != ast.MPIReduce && s.Root != nil {
			p.errorf("%s takes no root argument", kind)
		}
	case ast.MPIGather, ast.MPIScatter:
		s.Dst = p.parseLValue()
		p.expect(token.Comma)
		s.Src = p.parseExpr()
		if p.accept(token.Comma) {
			s.Root = p.parseExpr()
		}
	case ast.MPIAllgather, ast.MPIAlltoall:
		s.Dst = p.parseLValue()
		p.expect(token.Comma)
		s.Src = p.parseExpr()
	case ast.MPISend:
		s.Src = p.parseExpr()
		p.expect(token.Comma)
		s.Dest = p.parseExpr()
		if p.accept(token.Comma) {
			s.Tag = p.parseExpr()
		}
	case ast.MPIRecv:
		s.Dst = p.parseLValue()
		p.expect(token.Comma)
		s.Dest = p.parseExpr()
		if p.accept(token.Comma) {
			s.Tag = p.parseExpr()
		}
	}
	p.expect(token.RParen)
	return s
}

func (p *parser) parsePfor() ast.Stmt {
	t := p.advance()
	s := &ast.PforStmt{PforPos: p.posOf(t), RegionID: p.newRegion()}
	for {
		switch {
		case p.at(token.Schedule):
			p.advance()
			p.expect(token.LParen)
			id := p.expect(token.Ident)
			switch id.Lit {
			case "static":
				s.Sched = ast.ScheduleStatic
			case "dynamic":
				s.Sched = ast.ScheduleDynamic
			default:
				p.errs.Add(p.posOf(id), "parse", "unknown schedule %q", id.Lit)
			}
			p.expect(token.RParen)
			continue
		case p.at(token.Nowait):
			p.advance()
			s.Nowait = true
			continue
		}
		break
	}
	s.Var = p.expect(token.Ident).Lit
	p.expect(token.Assign)
	s.From = p.parseExpr()
	p.expect(token.DotDot)
	s.To = p.parseExpr()
	s.Body = p.parseBlock()
	return s
}

func (p *parser) parseSections() ast.Stmt {
	t := p.advance()
	s := &ast.SectionsStmt{SecsPos: p.posOf(t), RegionID: p.newRegion()}
	s.Nowait = p.accept(token.Nowait)
	p.expect(token.LBrace)
	for p.at(token.Section) {
		p.advance()
		s.SectionIDs = append(s.SectionIDs, p.newRegion())
		s.Bodies = append(s.Bodies, p.parseBlock())
	}
	p.expect(token.RBrace)
	if len(s.Bodies) == 0 {
		p.errs.Add(s.SecsPos, "parse", "sections construct has no section blocks")
	}
	return s
}

func (p *parser) parseIf() ast.Stmt {
	t := p.advance()
	s := &ast.If{IfPos: p.posOf(t), Cond: p.parseExpr(), Then: p.parseBlock()}
	if p.accept(token.Else) {
		if p.at(token.If) {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *parser) parseFor() ast.Stmt {
	t := p.advance()
	s := &ast.For{ForPos: p.posOf(t)}
	s.Var = p.expect(token.Ident).Lit
	p.expect(token.Assign)
	s.From = p.parseExpr()
	p.expect(token.DotDot)
	s.To = p.parseExpr()
	s.Body = p.parseBlock()
	return s
}

func (p *parser) parseWhile() ast.Stmt {
	t := p.advance()
	return &ast.While{WhilePos: p.posOf(t), Cond: p.parseExpr(), Body: p.parseBlock()}
}

func (p *parser) parseLValue() ast.LValue {
	nameTok := p.expect(token.Ident)
	namePos := p.posOf(nameTok)
	if p.accept(token.LBracket) {
		idx := p.parseExpr()
		p.expect(token.RBracket)
		return &ast.IndexExpr{NamePos: namePos, Name: nameTok.Lit, Index: idx}
	}
	return &ast.VarRef{NamePos: namePos, Name: nameTok.Lit}
}

func (p *parser) startsExpr() bool {
	switch p.kind() {
	case token.Ident, token.Int, token.True, token.False, token.LParen,
		token.Not, token.Minus:
		return true
	}
	return false
}

//
// Expressions (precedence climbing)
//

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.kind().Precedence()
		if prec < minPrec {
			return x
		}
		opTok := p.advance()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{OpPos: p.posOf(opTok), Op: opTok.Kind, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.kind() {
	case token.Not, token.Minus:
		t := p.advance()
		return &ast.UnaryExpr{OpPos: p.posOf(t), Op: t.Kind, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.kind() {
	case token.Int:
		t := p.advance()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errs.Add(p.posOf(t), "parse", "integer literal %q out of range", t.Lit)
		}
		return &ast.IntLit{LitPos: p.posOf(t), Value: v}
	case token.True, token.False:
		t := p.advance()
		return &ast.BoolLit{LitPos: p.posOf(t), Value: t.Kind == token.True}
	case token.LParen:
		p.advance()
		e := p.parseExpr()
		p.expect(token.RParen)
		return e
	case token.Ident:
		t := p.advance()
		pos := p.posOf(t)
		switch p.kind() {
		case token.LParen:
			return p.parseCallTail(t.Lit, pos)
		case token.LBracket:
			p.advance()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			return &ast.IndexExpr{NamePos: pos, Name: t.Lit, Index: idx}
		}
		return &ast.VarRef{NamePos: pos, Name: t.Lit}
	}
	p.errorf("expected expression, found %s", p.cur())
	t := p.cur()
	if !p.at(token.EOF) && !p.at(token.RBrace) && !p.at(token.RParen) {
		p.advance()
	}
	return &ast.IntLit{LitPos: p.posOf(t), Value: 0}
}

func (p *parser) parseCallTail(name string, pos source.Pos) *ast.CallExpr {
	p.expect(token.LParen)
	c := &ast.CallExpr{NamePos: pos, Name: name}
	if !p.at(token.RParen) {
		for {
			c.Args = append(c.Args, p.parseExpr())
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RParen)
	return c
}
