package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPosString(t *testing.T) {
	tests := []struct {
		pos  Pos
		want string
	}{
		{Pos{}, "-"},
		{Pos{File: "a.mh", Line: 3, Col: 7}, "a.mh:3:7"},
		{Pos{File: "a.mh", Line: 3}, "a.mh:3"},
		{Pos{Line: 2, Col: 1}, "<input>:2:1"},
	}
	for _, tt := range tests {
		if got := tt.pos.String(); got != tt.want {
			t.Errorf("Pos%+v.String() = %q, want %q", tt.pos, got, tt.want)
		}
	}
}

func TestPosBefore(t *testing.T) {
	a := Pos{Line: 1, Col: 5}
	b := Pos{Line: 1, Col: 9}
	c := Pos{Line: 2, Col: 1}
	if !a.Before(b) || !b.Before(c) || !a.Before(c) {
		t.Error("expected a < b < c")
	}
	if b.Before(a) || c.Before(a) || a.Before(a) {
		t.Error("Before must be a strict order")
	}
}

func TestFilePos(t *testing.T) {
	f := NewFile("t.mh", "ab\ncde\n\nf")
	tests := []struct {
		offset    int
		line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // "ab" then newline
		{3, 2, 1}, {5, 2, 3}, // "cde"
		{7, 3, 1},   // empty line
		{8, 4, 1},   // "f"
		{9, 4, 2},   // EOF
		{-5, 1, 1},  // clamped
		{100, 4, 2}, // clamped
	}
	for _, tt := range tests {
		p := f.Pos(tt.offset)
		if p.Line != tt.line || p.Col != tt.col {
			t.Errorf("Pos(%d) = %d:%d, want %d:%d", tt.offset, p.Line, p.Col, tt.line, tt.col)
		}
		if p.File != "t.mh" {
			t.Errorf("Pos(%d).File = %q", tt.offset, p.File)
		}
	}
}

func TestFileLine(t *testing.T) {
	f := NewFile("t.mh", "first\nsecond\r\nthird")
	if got := f.Line(1); got != "first" {
		t.Errorf("Line(1) = %q", got)
	}
	if got := f.Line(2); got != "second" {
		t.Errorf("Line(2) = %q (CR must be trimmed)", got)
	}
	if got := f.Line(3); got != "third" {
		t.Errorf("Line(3) = %q", got)
	}
	if got := f.Line(0); got != "" {
		t.Errorf("Line(0) = %q, want empty", got)
	}
	if got := f.Line(4); got != "" {
		t.Errorf("Line(4) = %q, want empty", got)
	}
	if f.NumLines() != 3 {
		t.Errorf("NumLines = %d, want 3", f.NumLines())
	}
}

// Property: for any content and any valid offset, Pos is internally
// consistent: the computed line's start offset plus col-1 equals the offset.
func TestFilePosRoundTrip(t *testing.T) {
	check := func(raw []byte) bool {
		content := strings.ToValidUTF8(string(raw), "?")
		f := NewFile("p.mh", content)
		for off := 0; off <= len(content); off += 1 + len(content)/17 {
			p := f.Pos(off)
			if p.Line < 1 || p.Col < 1 {
				return false
			}
			// Rebuild the offset from the line table.
			lineStart := 0
			for i, line := 1, 0; i < p.Line; i++ {
				for line = lineStart; line < len(content) && content[line] != '\n'; line++ {
				}
				lineStart = line + 1
			}
			if lineStart+p.Col-1 != off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestErrorList(t *testing.T) {
	var l ErrorList
	if l.Err() != nil {
		t.Error("empty list must yield nil error")
	}
	l.Add(Pos{File: "b.mh", Line: 2, Col: 1}, "parse", "bad %s", "token")
	l.Add(Pos{File: "a.mh", Line: 9, Col: 4}, "lex", "oops")
	l.Add(Pos{File: "a.mh", Line: 1, Col: 1}, "lex", "first")
	if l.Err() == nil {
		t.Fatal("non-empty list must yield an error")
	}
	l.Sort()
	if l[0].Msg != "first" || l[1].Msg != "oops" || l[2].Msg != "bad token" {
		t.Errorf("sort order wrong: %v", l)
	}
	msg := l.Error()
	if !strings.Contains(msg, "a.mh:1:1") || !strings.Contains(msg, "2 more errors") {
		t.Errorf("Error() = %q", msg)
	}
	single := ErrorList{l[0]}
	if strings.Contains(single.Error(), "more errors") {
		t.Errorf("single error must not mention more errors: %q", single.Error())
	}
	if got := (&Error{Pos: Pos{Line: 1}, Msg: "m"}).Error(); !strings.Contains(got, "m") {
		t.Errorf("Error without code = %q", got)
	}
}
