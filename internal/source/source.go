// Package source provides source-file bookkeeping shared by the whole
// tool chain: positions, spans, and located diagnostics. Every warning the
// static analysis emits and every runtime abort the verifier raises carries
// a Pos so users can navigate back to the offending construct, mirroring
// the paper's requirement that errors report "the names and lines in the
// source code of MPI collective calls involved".
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position inside a named source file. Line and Col are 1-based;
// the zero Pos is "no position".
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether p denotes a real location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders file:line:col, omitting missing parts.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	file := p.File
	if file == "" {
		file = "<input>"
	}
	if p.Col > 0 {
		return fmt.Sprintf("%s:%d:%d", file, p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// Before reports whether p occurs strictly before q in the same file.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Span is a half-open region of source text from Start to End.
type Span struct {
	Start Pos
	End   Pos
}

// String renders the span as its start position.
func (s Span) String() string { return s.Start.String() }

// File holds the contents of one source file and resolves byte offsets to
// positions. The lexer feeds offsets; everything downstream works with Pos.
type File struct {
	Name    string
	Content string
	lines   []int // byte offset of the start of each line
}

// NewFile records the line table for content.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// Pos converts a byte offset into a Pos. Offsets past the end clamp to the
// final position.
func (f *File) Pos(offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	line := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > offset }) - 1
	return Pos{File: f.Name, Line: line + 1, Col: offset - f.lines[line] + 1}
}

// NumLines reports how many lines the file has.
func (f *File) NumLines() int { return len(f.lines) }

// Line returns the text of the 1-based line number n without its newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lines) {
		return ""
	}
	start := f.lines[n-1]
	end := len(f.Content)
	if n < len(f.lines) {
		end = f.lines[n] - 1
	}
	return strings.TrimSuffix(f.Content[start:end], "\r")
}

// Error is a located error with a short classification Code. It is used for
// lexical, syntactic and semantic failures; analysis warnings use the richer
// report types layered on top.
type Error struct {
	Pos  Pos
	Code string
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("%s: %s: %s", e.Pos, e.Code, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// ErrorList accumulates located errors while keeping scanning/parsing going
// so users see more than the first problem.
type ErrorList []*Error

// Add appends a new error.
func (l *ErrorList) Add(pos Pos, code, format string, args ...any) {
	*l = append(*l, &Error{Pos: pos, Code: code, Msg: fmt.Sprintf(format, args...)})
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Error implements the error interface by joining all messages.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (and %d more errors)", l[0].Error(), len(l)-1)
	return b.String()
}

// Sort orders errors by position for stable output.
func (l ErrorList) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i].Pos, l[j].Pos
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Before(b)
	})
}
