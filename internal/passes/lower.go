package passes

import (
	"fmt"
	"strings"

	"parcoach/internal/ast"
	"parcoach/internal/source"
	"parcoach/internal/token"
)

// OpCode enumerates linear-IR instructions.
type OpCode int

// IR opcodes.
const (
	OpConst    OpCode = iota // Dst <- Imm
	OpMove                   // Dst <- A
	OpBin                    // Dst <- A <Sym> B (Sym is the operator name)
	OpNot                    // Dst <- !A
	OpNeg                    // Dst <- -A
	OpNewArr                 // Dst becomes an array of length reg A
	OpLoadIdx                // Dst <- arr[A][B]
	OpStoreIdx               // arr[Dst][A] <- B
	OpCall                   // Dst <- call Sym(Args...)
	OpIntr                   // Dst <- intrinsic Sym(Args...)
	OpPrint                  // print Args...
	OpJump                   // goto Imm
	OpJumpZ                  // if A == 0 goto Imm
	OpRet                    // return A (A < 0: return 0)
	OpMPI                    // MPI op Sym with Args (register operands)
	OpRegion                 // threading construct marker Sym [r Imm]
	OpCheck                  // verification check Sym (from instrumentation)
	OpAtomic                 // atomic Dst <Sym>= A
)

var opNames = map[OpCode]string{
	OpConst: "const", OpMove: "move", OpBin: "bin", OpNot: "not", OpNeg: "neg",
	OpNewArr: "newarr", OpLoadIdx: "loadidx", OpStoreIdx: "storeidx",
	OpCall: "call", OpIntr: "intr", OpPrint: "print", OpJump: "jump",
	OpJumpZ: "jumpz", OpRet: "ret", OpMPI: "mpi", OpRegion: "region",
	OpCheck: "check", OpAtomic: "atomic",
}

func (o OpCode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Inst is one IR instruction.
type Inst struct {
	Op   OpCode
	Dst  int
	A, B int
	Imm  int64
	Sym  string
	Args []int
	Pos  source.Pos
}

// String renders the instruction for dumps and tests.
func (in Inst) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = %d", in.Dst, in.Imm)
	case OpMove:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("r%d = r%d %s r%d", in.Dst, in.A, in.Sym, in.B)
	case OpJump:
		return fmt.Sprintf("jump @%d", in.Imm)
	case OpJumpZ:
		return fmt.Sprintf("jumpz r%d @%d", in.A, in.Imm)
	case OpRet:
		if in.A < 0 {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", in.A)
	case OpCall, OpIntr:
		return fmt.Sprintf("r%d = %s(%s)", in.Dst, in.Sym, regList(in.Args))
	case OpMPI:
		return fmt.Sprintf("%s(%s)", in.Sym, regList(in.Args))
	case OpRegion:
		return fmt.Sprintf("#%s r%d", in.Sym, in.Imm)
	case OpCheck:
		return "check " + in.Sym
	}
	return fmt.Sprintf("%s d=%d a=%d b=%d", in.Op, in.Dst, in.A, in.B)
}

func regList(regs []int) string {
	parts := make([]string, len(regs))
	for i, r := range regs {
		parts[i] = fmt.Sprintf("r%d", r)
	}
	return strings.Join(parts, ", ")
}

// FuncIR is the lowered form of one function.
type FuncIR struct {
	Name    string
	Params  int
	NumRegs int
	Insts   []Inst
}

// String dumps the function IR.
func (f *FuncIR) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d, regs=%d)\n", f.Name, f.Params, f.NumRegs)
	for i, in := range f.Insts {
		fmt.Fprintf(&b, "  %3d: %s\n", i, in.String())
	}
	return b.String()
}

// Validate checks structural well-formedness: jump targets in range and
// register operands within NumRegs. Tests and the CLI run it after
// lowering.
func (f *FuncIR) Validate() error {
	checkReg := func(r int, what string, i int) error {
		if r >= f.NumRegs {
			return fmt.Errorf("ir %s: inst %d: %s register r%d out of range (%d regs)", f.Name, i, what, r, f.NumRegs)
		}
		return nil
	}
	for i, in := range f.Insts {
		switch in.Op {
		case OpJump, OpJumpZ:
			if in.Imm < 0 || in.Imm > int64(len(f.Insts)) {
				return fmt.Errorf("ir %s: inst %d: jump target %d out of range", f.Name, i, in.Imm)
			}
		}
		if in.Dst > 0 {
			if err := checkReg(in.Dst, "dst", i); err != nil {
				return err
			}
		}
		for _, r := range in.Args {
			if err := checkReg(r, "arg", i); err != nil {
				return err
			}
		}
	}
	return nil
}

// LowerProgram lowers every function.
func LowerProgram(prog *ast.Program) map[string]*FuncIR {
	out := make(map[string]*FuncIR, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		out[fn.Name] = Lower(fn)
	}
	return out
}

// Lower flattens one function into linear IR.
func Lower(fn *ast.FuncDecl) *FuncIR {
	l := &lowerer{
		ir:   &FuncIR{Name: fn.Name, Params: len(fn.Params)},
		vars: make(map[string]int),
	}
	for _, p := range fn.Params {
		l.vars[p] = l.newReg()
	}
	l.block(fn.Body)
	l.emit(Inst{Op: OpRet, A: -1, Pos: fn.NamePos})
	l.ir.NumRegs = l.nextReg
	return l.ir
}

type lowerer struct {
	ir      *FuncIR
	vars    map[string]int
	nextReg int
}

func (l *lowerer) newReg() int {
	r := l.nextReg
	l.nextReg++
	return r
}

func (l *lowerer) emit(in Inst) int {
	l.ir.Insts = append(l.ir.Insts, in)
	return len(l.ir.Insts) - 1
}

func (l *lowerer) here() int64 { return int64(len(l.ir.Insts)) }

// patch sets the jump target of instruction idx to the current position.
func (l *lowerer) patch(idx int) { l.ir.Insts[idx].Imm = l.here() }

func (l *lowerer) varReg(name string) int {
	if r, ok := l.vars[name]; ok {
		return r
	}
	r := l.newReg()
	l.vars[name] = r
	return r
}

func (l *lowerer) block(b *ast.Block) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		l.stmt(s)
	}
}

func (l *lowerer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		l.block(s)
	case *ast.VarDecl:
		dst := l.varReg(s.Name)
		if s.ArraySize != nil {
			size := l.expr(s.ArraySize)
			l.emit(Inst{Op: OpNewArr, Dst: dst, A: size, Pos: s.VarPos})
			return
		}
		if s.Init != nil {
			src := l.expr(s.Init)
			l.emit(Inst{Op: OpMove, Dst: dst, A: src, Pos: s.VarPos})
			return
		}
		l.emit(Inst{Op: OpConst, Dst: dst, Imm: 0, Pos: s.VarPos})
	case *ast.Assign:
		l.assign(s.Target, s.Op, l.expr(s.Value), s.Pos())
	case *ast.CallStmt:
		l.expr(s.Call)
	case *ast.If:
		cond := l.expr(s.Cond)
		jz := l.emit(Inst{Op: OpJumpZ, A: cond, Pos: s.IfPos})
		l.block(s.Then)
		if s.Else != nil {
			jend := l.emit(Inst{Op: OpJump, Pos: s.IfPos})
			l.patch(jz)
			l.stmt(s.Else)
			l.patch(jend)
		} else {
			l.patch(jz)
		}
	case *ast.For:
		v := l.varReg(s.Var)
		from := l.expr(s.From)
		l.emit(Inst{Op: OpMove, Dst: v, A: from, Pos: s.ForPos})
		to := l.expr(s.To)
		top := l.here()
		cond := l.newReg()
		l.emit(Inst{Op: OpBin, Dst: cond, A: v, B: to, Sym: "<", Pos: s.ForPos})
		jz := l.emit(Inst{Op: OpJumpZ, A: cond, Pos: s.ForPos})
		l.block(s.Body)
		one := l.newReg()
		l.emit(Inst{Op: OpConst, Dst: one, Imm: 1, Pos: s.ForPos})
		l.emit(Inst{Op: OpBin, Dst: v, A: v, B: one, Sym: "+", Pos: s.ForPos})
		l.emit(Inst{Op: OpJump, Imm: top, Pos: s.ForPos})
		l.patch(jz)
	case *ast.While:
		top := l.here()
		cond := l.expr(s.Cond)
		jz := l.emit(Inst{Op: OpJumpZ, A: cond, Pos: s.WhilePos})
		l.block(s.Body)
		l.emit(Inst{Op: OpJump, Imm: top, Pos: s.WhilePos})
		l.patch(jz)
	case *ast.Return:
		a := -1
		if s.Value != nil {
			a = l.expr(s.Value)
		}
		l.emit(Inst{Op: OpRet, A: a, Pos: s.RetPos})
	case *ast.Print:
		args := make([]int, len(s.Args))
		for i, e := range s.Args {
			args[i] = l.expr(e)
		}
		l.emit(Inst{Op: OpPrint, Args: args, Pos: s.PrintPos})
	case *ast.MPIStmt:
		var args []int
		for _, e := range []ast.Expr{s.Dst, s.Src, s.Root, s.Dest, s.Tag} {
			if e != nil {
				args = append(args, l.expr(e))
			}
		}
		l.emit(Inst{Op: OpMPI, Sym: s.Kind.String(), Args: args, Pos: s.KindPos})
	case *ast.ParallelStmt:
		if s.NumThreads != nil {
			l.expr(s.NumThreads)
		}
		l.emit(Inst{Op: OpRegion, Sym: "parallel.begin", Imm: int64(s.RegionID), Pos: s.ParPos})
		l.block(s.Body)
		l.emit(Inst{Op: OpRegion, Sym: "parallel.end", Imm: int64(s.RegionID), Pos: s.ParPos})
	case *ast.SingleStmt:
		l.emit(Inst{Op: OpRegion, Sym: "single.begin", Imm: int64(s.RegionID), Pos: s.SingPos})
		l.block(s.Body)
		l.emit(Inst{Op: OpRegion, Sym: "single.end", Imm: int64(s.RegionID), Pos: s.SingPos})
	case *ast.MasterStmt:
		l.emit(Inst{Op: OpRegion, Sym: "master.begin", Imm: int64(s.RegionID), Pos: s.MastPos})
		l.block(s.Body)
		l.emit(Inst{Op: OpRegion, Sym: "master.end", Imm: int64(s.RegionID), Pos: s.MastPos})
	case *ast.CriticalStmt:
		l.emit(Inst{Op: OpRegion, Sym: "critical.begin", Pos: s.CritPos})
		l.block(s.Body)
		l.emit(Inst{Op: OpRegion, Sym: "critical.end", Pos: s.CritPos})
	case *ast.BarrierStmt:
		l.emit(Inst{Op: OpRegion, Sym: "barrier", Pos: s.BarPos})
	case *ast.AtomicStmt:
		v := l.expr(s.Value)
		dst := l.lvalueReg(s.Target)
		l.emit(Inst{Op: OpAtomic, Dst: dst, A: v, Sym: s.Op.String(), Pos: s.AtomPos})
	case *ast.PforStmt:
		l.expr(s.From)
		l.expr(s.To)
		l.emit(Inst{Op: OpRegion, Sym: "pfor.begin", Imm: int64(s.RegionID), Pos: s.PforPos})
		l.varReg(s.Var)
		l.block(s.Body)
		l.emit(Inst{Op: OpRegion, Sym: "pfor.end", Imm: int64(s.RegionID), Pos: s.PforPos})
	case *ast.SectionsStmt:
		l.emit(Inst{Op: OpRegion, Sym: "sections.begin", Imm: int64(s.RegionID), Pos: s.SecsPos})
		for i, b := range s.Bodies {
			l.emit(Inst{Op: OpRegion, Sym: "section.begin", Imm: int64(s.SectionIDs[i]), Pos: b.Lbrace})
			l.block(b)
			l.emit(Inst{Op: OpRegion, Sym: "section.end", Imm: int64(s.SectionIDs[i]), Pos: b.Lbrace})
		}
		l.emit(Inst{Op: OpRegion, Sym: "sections.end", Imm: int64(s.RegionID), Pos: s.SecsPos})
	case *ast.InstrCC:
		l.emit(Inst{Op: OpCheck, Sym: "cc:" + s.OpName(), Pos: s.At})
	case *ast.InstrCCReturn:
		l.emit(Inst{Op: OpCheck, Sym: "cc:return", Pos: s.At})
	case *ast.InstrMonoCheck:
		l.emit(Inst{Op: OpCheck, Sym: fmt.Sprintf("mono:%d", s.RegionID), Pos: s.At})
	case *ast.InstrPhaseCount:
		l.emit(Inst{Op: OpCheck, Sym: fmt.Sprintf("phase:%d", s.NodeID), Pos: s.At})
	case *ast.InstrConcNote:
		side := "exit"
		if s.Enter {
			side = "enter"
		}
		l.emit(Inst{Op: OpCheck, Sym: fmt.Sprintf("conc:%s:%d", side, s.RegionID), Pos: s.At})
	}
}

func (l *lowerer) assign(lv ast.LValue, op ast.AssignOp, src int, pos source.Pos) {
	switch lv := lv.(type) {
	case *ast.VarRef:
		dst := l.varReg(lv.Name)
		if op == ast.AssignSet {
			l.emit(Inst{Op: OpMove, Dst: dst, A: src, Pos: pos})
			return
		}
		sym := "+"
		if op == ast.AssignSub {
			sym = "-"
		}
		l.emit(Inst{Op: OpBin, Dst: dst, A: dst, B: src, Sym: sym, Pos: pos})
	case *ast.IndexExpr:
		arr := l.varReg(lv.Name)
		idx := l.expr(lv.Index)
		if op != ast.AssignSet {
			cur := l.newReg()
			l.emit(Inst{Op: OpLoadIdx, Dst: cur, A: arr, B: idx, Pos: pos})
			sym := "+"
			if op == ast.AssignSub {
				sym = "-"
			}
			l.emit(Inst{Op: OpBin, Dst: cur, A: cur, B: src, Sym: sym, Pos: pos})
			src = cur
		}
		l.emit(Inst{Op: OpStoreIdx, Dst: arr, A: idx, B: src, Pos: pos})
	}
}

func (l *lowerer) lvalueReg(lv ast.LValue) int {
	switch lv := lv.(type) {
	case *ast.VarRef:
		return l.varReg(lv.Name)
	case *ast.IndexExpr:
		return l.varReg(lv.Name)
	}
	return l.newReg()
}

func (l *lowerer) expr(e ast.Expr) int {
	switch e := e.(type) {
	case *ast.IntLit:
		r := l.newReg()
		l.emit(Inst{Op: OpConst, Dst: r, Imm: e.Value, Pos: e.LitPos})
		return r
	case *ast.BoolLit:
		r := l.newReg()
		v := int64(0)
		if e.Value {
			v = 1
		}
		l.emit(Inst{Op: OpConst, Dst: r, Imm: v, Pos: e.LitPos})
		return r
	case *ast.VarRef:
		return l.varReg(e.Name)
	case *ast.IndexExpr:
		arr := l.varReg(e.Name)
		idx := l.expr(e.Index)
		r := l.newReg()
		l.emit(Inst{Op: OpLoadIdx, Dst: r, A: arr, B: idx, Pos: e.NamePos})
		return r
	case *ast.UnaryExpr:
		x := l.expr(e.X)
		r := l.newReg()
		op := OpNeg
		if e.Op == token.Not {
			op = OpNot
		}
		l.emit(Inst{Op: op, Dst: r, A: x, Pos: e.OpPos})
		return r
	case *ast.BinaryExpr:
		x := l.expr(e.X)
		y := l.expr(e.Y)
		r := l.newReg()
		l.emit(Inst{Op: OpBin, Dst: r, A: x, B: y, Sym: e.Op.String(), Pos: e.OpPos})
		return r
	case *ast.CallExpr:
		args := make([]int, len(e.Args))
		for i, a := range e.Args {
			args[i] = l.expr(a)
		}
		r := l.newReg()
		op := OpCall
		if _, ok := ast.Intrinsics[e.Name]; ok {
			op = OpIntr
		}
		l.emit(Inst{Op: op, Dst: r, Sym: e.Name, Args: args, Pos: e.NamePos})
		return r
	}
	return l.newReg()
}
