package passes

import (
	"fmt"
	"sort"
)

// This file completes the baseline backend with the standard low-level
// passes a production compiler runs after lowering: peephole
// simplification, virtual-register liveness, and linear-scan register
// allocation onto a fixed machine register file (spilling to stack slots).
// Besides making the Figure 1 baseline honest — PARCOACH's 6% overhead is
// measured against all of GCC, not against a parser — the allocation
// result is part of the object code the CLI can dump.

// MachineRegs is the size of the simulated machine register file.
const MachineRegs = 16

// Allocation is the result of register allocation for one function.
type Allocation struct {
	// Assign maps each virtual register to a machine register (>= 0) or a
	// spill slot (encoded as -(slot+1)).
	Assign []int
	// Spills is the number of stack slots used.
	Spills int
	// MaxLive is the peak number of simultaneously live virtual registers.
	MaxLive int
}

// Loc renders the location of virtual register v.
func (a *Allocation) Loc(v int) string {
	if v >= len(a.Assign) {
		return "?"
	}
	x := a.Assign[v]
	if x >= 0 {
		return fmt.Sprintf("m%d", x)
	}
	return fmt.Sprintf("stack[%d]", -x-1)
}

// Peephole simplifies the instruction stream in place and returns the
// number of rewrites: self-moves are dropped and binary operations on two
// constants whose operands are known const-defined registers are folded
// into a single constant load (a small, honest peephole — folding across
// control flow is the AST folder's job).
func Peephole(f *FuncIR) int {
	rewrites := 0
	constVal := make(map[int]int64)
	constKnown := make(map[int]bool)
	kill := func(r int) {
		delete(constVal, r)
		delete(constKnown, r)
	}
	var out []Inst
	for _, in := range f.Insts {
		switch in.Op {
		case OpConst:
			constVal[in.Dst] = in.Imm
			constKnown[in.Dst] = true
		case OpMove:
			if in.Dst == in.A {
				rewrites++
				continue // drop self-move
			}
			if constKnown[in.A] {
				rewrites++
				in = Inst{Op: OpConst, Dst: in.Dst, Imm: constVal[in.A], Pos: in.Pos}
				constVal[in.Dst] = in.Imm
				constKnown[in.Dst] = true
			} else {
				kill(in.Dst)
			}
		case OpBin:
			if constKnown[in.A] && constKnown[in.B] {
				if v, ok := foldBinarySym(in.Sym, constVal[in.A], constVal[in.B]); ok {
					rewrites++
					in = Inst{Op: OpConst, Dst: in.Dst, Imm: v, Pos: in.Pos}
					constVal[in.Dst] = v
					constKnown[in.Dst] = true
					out = append(out, in)
					continue
				}
			}
			kill(in.Dst)
		case OpJump, OpJumpZ:
			// Control flow merges invalidate local constant knowledge.
			constVal = make(map[int]int64)
			constKnown = make(map[int]bool)
		default:
			if _, def := usesDefs(in); def >= 0 {
				kill(def)
			}
		}
		out = append(out, in)
	}
	if rewrites > 0 {
		// Dropping instructions shifts jump targets; the simple fix that
		// keeps this a peephole: only apply instruction-dropping rewrites
		// when the function has no jumps, otherwise keep length by
		// replacing dropped instructions with cheap const loads.
		if len(out) != len(f.Insts) && hasJumps(f) {
			return Peepholes_keepLength(f)
		}
		f.Insts = out
	}
	return rewrites
}

func hasJumps(f *FuncIR) bool {
	for _, in := range f.Insts {
		if in.Op == OpJump || in.Op == OpJumpZ {
			return true
		}
	}
	return false
}

// Peepholes_keepLength is the jump-safe variant: rewrites in place without
// changing instruction indices.
func Peepholes_keepLength(f *FuncIR) int {
	rewrites := 0
	constVal := make(map[int]int64)
	constKnown := make(map[int]bool)
	kill := func(r int) {
		delete(constVal, r)
		delete(constKnown, r)
	}
	for i := range f.Insts {
		in := &f.Insts[i]
		switch in.Op {
		case OpConst:
			constVal[in.Dst] = in.Imm
			constKnown[in.Dst] = true
		case OpMove:
			if constKnown[in.A] {
				rewrites++
				*in = Inst{Op: OpConst, Dst: in.Dst, Imm: constVal[in.A], Pos: in.Pos}
				constVal[in.Dst] = in.Imm
				constKnown[in.Dst] = true
			} else {
				kill(in.Dst)
			}
		case OpBin:
			if constKnown[in.A] && constKnown[in.B] {
				if v, ok := foldBinarySym(in.Sym, constVal[in.A], constVal[in.B]); ok {
					rewrites++
					*in = Inst{Op: OpConst, Dst: in.Dst, Imm: v, Pos: in.Pos}
					constVal[in.Dst] = v
					constKnown[in.Dst] = true
					continue
				}
			}
			kill(in.Dst)
		case OpJump, OpJumpZ:
			constVal = make(map[int]int64)
			constKnown = make(map[int]bool)
		default:
			if _, def := usesDefs(*in); def >= 0 {
				kill(def)
			}
		}
	}
	return rewrites
}

func foldBinarySym(sym string, x, y int64) (int64, bool) {
	b := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch sym {
	case "+":
		return x + y, true
	case "-":
		return x - y, true
	case "*":
		return x * y, true
	case "/":
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case "%":
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case "==":
		return b(x == y), true
	case "!=":
		return b(x != y), true
	case "<":
		return b(x < y), true
	case "<=":
		return b(x <= y), true
	case ">":
		return b(x > y), true
	case ">=":
		return b(x >= y), true
	}
	return 0, false
}

// Liveness computes, per instruction index, the set of virtual registers
// live after it, with an iterated backward dataflow over the linear code
// (jump targets induce the loop-carried flows).
func Liveness(f *FuncIR) [][]int {
	n := len(f.Insts)
	liveOut := make([]map[int]bool, n)
	for i := range liveOut {
		liveOut[i] = make(map[int]bool)
	}
	succs := func(i int) []int {
		in := f.Insts[i]
		switch in.Op {
		case OpJump:
			return []int{int(in.Imm)}
		case OpJumpZ:
			return []int{i + 1, int(in.Imm)}
		case OpRet:
			return nil
		}
		return []int{i + 1}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := make(map[int]bool)
			for _, s := range succs(i) {
				if s >= n {
					continue
				}
				sIn := f.Insts[s]
				uses, def := usesDefs(sIn)
				// live-in(s) = uses(s) ∪ (live-out(s) − def(s))
				for _, u := range uses {
					out[u] = true
				}
				for r := range liveOut[s] {
					if r != def {
						out[r] = true
					}
				}
			}
			if len(out) != len(liveOut[i]) {
				liveOut[i] = out
				changed = true
				continue
			}
			for r := range out {
				if !liveOut[i][r] {
					liveOut[i] = out
					changed = true
					break
				}
			}
		}
	}
	result := make([][]int, n)
	for i, m := range liveOut {
		for r := range m {
			result[i] = append(result[i], r)
		}
		sort.Ints(result[i])
	}
	return result
}

// usesDefs returns the registers an instruction reads and the one it
// defines (-1 for none). Array registers are treated as used by stores.
func usesDefs(in Inst) (uses []int, def int) {
	def = -1
	switch in.Op {
	case OpConst:
		def = in.Dst
	case OpMove, OpNot, OpNeg:
		uses = []int{in.A}
		def = in.Dst
	case OpBin:
		uses = []int{in.A, in.B}
		def = in.Dst
	case OpNewArr:
		uses = []int{in.A}
		def = in.Dst
	case OpLoadIdx:
		uses = []int{in.A, in.B}
		def = in.Dst
	case OpStoreIdx:
		uses = []int{in.Dst, in.A, in.B}
	case OpCall, OpIntr:
		uses = append(uses, in.Args...)
		def = in.Dst
	case OpPrint, OpMPI:
		uses = append(uses, in.Args...)
	case OpJumpZ:
		uses = []int{in.A}
	case OpRet:
		if in.A >= 0 {
			uses = []int{in.A}
		}
	case OpAtomic:
		uses = []int{in.Dst, in.A}
		def = in.Dst
	}
	return uses, def
}

// Allocate performs linear-scan register allocation over the liveness
// intervals, spilling the longest-lived intervals when pressure exceeds
// MachineRegs.
func Allocate(f *FuncIR) *Allocation {
	live := Liveness(f)
	n := len(f.Insts)
	// Build [start,end] intervals per virtual register.
	type interval struct {
		reg, start, end int
	}
	starts := make(map[int]int)
	ends := make(map[int]int)
	note := func(r, i int) {
		if _, ok := starts[r]; !ok {
			starts[r] = i
		}
		ends[r] = i
	}
	for i := 0; i < n; i++ {
		uses, def := usesDefs(f.Insts[i])
		for _, u := range uses {
			note(u, i)
		}
		if def >= 0 {
			note(def, i)
		}
		for _, r := range live[i] {
			note(r, i)
		}
	}
	intervals := make([]interval, 0, len(starts))
	for r, s := range starts {
		intervals = append(intervals, interval{reg: r, start: s, end: ends[r]})
	}
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].start != intervals[j].start {
			return intervals[i].start < intervals[j].start
		}
		return intervals[i].reg < intervals[j].reg
	})

	alloc := &Allocation{Assign: make([]int, f.NumRegs)}
	for i := range alloc.Assign {
		alloc.Assign[i] = -1 // default: first spill slot semantics fixed below
	}
	type active struct {
		interval
		machine int
	}
	var actives []active
	free := make([]int, 0, MachineRegs)
	for i := MachineRegs - 1; i >= 0; i-- {
		free = append(free, i)
	}
	expire := func(pos int) {
		kept := actives[:0]
		for _, a := range actives {
			if a.end < pos {
				free = append(free, a.machine)
				continue
			}
			kept = append(kept, a)
		}
		actives = kept
	}
	spillSlot := 0
	for _, iv := range intervals {
		expire(iv.start)
		if len(actives) > alloc.MaxLive {
			alloc.MaxLive = len(actives)
		}
		if len(free) > 0 {
			m := free[len(free)-1]
			free = free[:len(free)-1]
			alloc.Assign[iv.reg] = m
			actives = append(actives, active{interval: iv, machine: m})
			continue
		}
		// Spill the active interval with the farthest end.
		far := -1
		for idx, a := range actives {
			if far < 0 || a.end > actives[far].end {
				far = idx
			}
		}
		if far >= 0 && actives[far].end > iv.end {
			// Steal its machine register; the victim spills.
			victim := actives[far]
			alloc.Assign[iv.reg] = victim.machine
			alloc.Assign[victim.reg] = -(spillSlot + 1)
			spillSlot++
			actives[far] = active{interval: iv, machine: victim.machine}
		} else {
			alloc.Assign[iv.reg] = -(spillSlot + 1)
			spillSlot++
		}
	}
	alloc.Spills = spillSlot
	// Registers never touched by any instruction stay unassigned; give
	// them machine register 0 for a total mapping.
	for r, m := range alloc.Assign {
		if m == -1 && !used(starts, r) {
			alloc.Assign[r] = 0
		}
	}
	return alloc
}

func used(starts map[int]int, r int) bool {
	_, ok := starts[r]
	return ok
}

// Optimize runs the whole low-level pipeline on one function and returns
// the allocation: peephole constant propagation, local value numbering,
// a second peephole to clean the moves LVN introduced, then liveness and
// linear-scan register allocation.
func Optimize(f *FuncIR) *Allocation {
	Peephole(f)
	ValueNumber(f)
	Peephole(f)
	return Allocate(f)
}
