package passes

// Local value numbering: within each straight-line span of the linear IR
// (between jumps and jump targets), repeated pure computations over the
// same operand values are replaced by register moves from the first
// result — the classic local CSE every production backend performs.
// Rewrites preserve instruction indices, so jump targets stay valid.

// exprKey identifies a pure computation by opcode, operator and the value
// numbers of its operands.
type exprKey struct {
	op  OpCode
	sym string
	vnA int
	vnB int
}

// cached records which register held a computation and the value number
// it had then; the entry is stale once the register is redefined.
type cached struct {
	reg int
	vn  int
}

// ValueNumber performs local CSE on f and returns the number of
// computations replaced by moves.
func ValueNumber(f *FuncIR) int {
	boundary := make([]bool, len(f.Insts)+1)
	for _, in := range f.Insts {
		switch in.Op {
		case OpJump, OpJumpZ:
			if in.Imm >= 0 && int(in.Imm) < len(boundary) {
				boundary[in.Imm] = true
			}
		}
	}

	replaced := 0
	vn := make(map[int]int) // register -> current value number
	nextVN := 1
	table := make(map[exprKey]cached)
	reset := func() {
		vn = make(map[int]int)
		table = make(map[exprKey]cached)
	}
	number := func(r int) int {
		if n, ok := vn[r]; ok {
			return n
		}
		n := nextVN
		nextVN++
		vn[r] = n
		return n
	}
	define := func(r int) int {
		n := nextVN
		nextVN++
		vn[r] = n
		return n
	}
	lookup := func(key exprKey) (cached, bool) {
		c, ok := table[key]
		if !ok || vn[c.reg] != c.vn {
			return cached{}, false
		}
		return c, true
	}

	for i := range f.Insts {
		if boundary[i] {
			reset()
		}
		in := &f.Insts[i]
		switch in.Op {
		case OpBin, OpNot, OpNeg:
			key := exprKey{op: in.Op, sym: in.Sym, vnA: number(in.A)}
			if in.Op == OpBin {
				key.vnB = number(in.B)
			}
			if c, ok := lookup(key); ok && c.reg != in.Dst {
				*in = Inst{Op: OpMove, Dst: in.Dst, A: c.reg, Pos: in.Pos}
				vn[in.Dst] = c.vn
				replaced++
				continue
			}
			n := define(in.Dst)
			table[key] = cached{reg: in.Dst, vn: n}
		case OpMove:
			vn[in.Dst] = number(in.A)
		case OpConst:
			key := exprKey{op: OpConst, vnA: int(in.Imm)}
			if c, ok := lookup(key); ok {
				// No rewrite needed (const loads are cheap); just share
				// the value number so downstream computations unify.
				vn[in.Dst] = c.vn
				continue
			}
			n := define(in.Dst)
			table[key] = cached{reg: in.Dst, vn: n}
		case OpJump, OpJumpZ:
			reset()
		default:
			// Calls, loads, MPI operations and checks define fresh,
			// unshareable values; stores and effects do not invalidate
			// register computations (arrays are never value-numbered).
			if _, def := usesDefs(*in); def >= 0 {
				define(def)
			}
		}
	}
	return replaced
}
