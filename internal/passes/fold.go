// Package passes implements the baseline backend of the compilation
// pipeline: constant folding, constant-branch simplification, unreachable
// CFG-node elimination and lowering to a linear register IR.
//
// These passes exist for fidelity of the paper's Figure 1 experiment: the
// compile-time overhead of verification is measured against a compiler
// that does real work besides parsing — exactly as PARCOACH's overhead is
// measured against the rest of GCC's pipeline. The lowered IR is also the
// "object code" artifact the CLI can dump.
package passes

import (
	"parcoach/internal/ast"
	"parcoach/internal/token"
)

// FoldStats reports what folding did.
type FoldStats struct {
	ExprsFolded      int
	BranchesResolved int
	LoopsRemoved     int
}

// FoldProgram returns a constant-folded deep copy of prog along with
// statistics. The input program is never modified.
func FoldProgram(prog *ast.Program) (*ast.Program, FoldStats) {
	clone := ast.CloneProgram(prog)
	var total FoldStats
	for _, fn := range clone.Funcs {
		total = total.Add(FoldFunc(fn))
	}
	return clone, total
}

// FoldFunc constant-folds one (already cloned) function in place and
// returns its fold statistics. Distinct functions fold independently, so
// the compile pipeline fans this across workers.
func FoldFunc(fn *ast.FuncDecl) FoldStats {
	f := &folder{}
	f.foldBlock(fn.Body)
	return f.stats
}

// Add sums fold statistics (used to merge per-function results).
func (s FoldStats) Add(o FoldStats) FoldStats {
	s.ExprsFolded += o.ExprsFolded
	s.BranchesResolved += o.BranchesResolved
	s.LoopsRemoved += o.LoopsRemoved
	return s
}

type folder struct {
	stats FoldStats
}

func (f *folder) foldBlock(b *ast.Block) {
	if b == nil {
		return
	}
	var out []ast.Stmt
	for _, s := range b.Stmts {
		if kept := f.foldStmt(s); kept != nil {
			out = append(out, kept...)
		}
	}
	b.Stmts = out
}

// foldStmt folds inside s and returns its replacement statements (nil to
// drop the statement entirely).
func (f *folder) foldStmt(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.Block:
		f.foldBlock(s)
		return []ast.Stmt{s}
	case *ast.VarDecl:
		s.ArraySize = f.foldExpr(s.ArraySize)
		s.Init = f.foldExpr(s.Init)
	case *ast.Assign:
		s.Value = f.foldExpr(s.Value)
		f.foldLValue(s.Target)
	case *ast.CallStmt:
		f.foldExprInPlace(&s.Call.Args)
	case *ast.If:
		s.Cond = f.foldExpr(s.Cond)
		f.foldBlock(s.Then)
		if s.Else != nil {
			switch repl := f.foldStmt(s.Else); len(repl) {
			case 0:
				s.Else = nil
			case 1:
				s.Else = repl[0]
			default:
				s.Else = &ast.Block{Lbrace: s.Else.Pos(), Stmts: repl}
			}
		}
		if v, ok := constValue(s.Cond); ok {
			f.stats.BranchesResolved++
			if v != 0 {
				return []ast.Stmt{s.Then}
			}
			if s.Else != nil {
				return []ast.Stmt{s.Else}
			}
			return nil
		}
	case *ast.For:
		s.From = f.foldExpr(s.From)
		s.To = f.foldExpr(s.To)
		f.foldBlock(s.Body)
		if from, okF := constValue(s.From); okF {
			if to, okT := constValue(s.To); okT && from >= to {
				f.stats.LoopsRemoved++
				return nil
			}
		}
	case *ast.While:
		s.Cond = f.foldExpr(s.Cond)
		f.foldBlock(s.Body)
		if v, ok := constValue(s.Cond); ok && v == 0 {
			f.stats.LoopsRemoved++
			return nil
		}
	case *ast.Return:
		s.Value = f.foldExpr(s.Value)
	case *ast.Print:
		f.foldExprInPlace(&s.Args)
	case *ast.MPIStmt:
		s.Src = f.foldExpr(s.Src)
		s.Root = f.foldExpr(s.Root)
		s.Dest = f.foldExpr(s.Dest)
		s.Tag = f.foldExpr(s.Tag)
		if s.Dst != nil {
			f.foldLValue(s.Dst)
		}
	case *ast.ParallelStmt:
		s.NumThreads = f.foldExpr(s.NumThreads)
		f.foldBlock(s.Body)
	case *ast.SingleStmt:
		f.foldBlock(s.Body)
	case *ast.MasterStmt:
		f.foldBlock(s.Body)
	case *ast.CriticalStmt:
		f.foldBlock(s.Body)
	case *ast.AtomicStmt:
		s.Value = f.foldExpr(s.Value)
		f.foldLValue(s.Target)
	case *ast.PforStmt:
		s.From = f.foldExpr(s.From)
		s.To = f.foldExpr(s.To)
		f.foldBlock(s.Body)
	case *ast.SectionsStmt:
		for _, b := range s.Bodies {
			f.foldBlock(b)
		}
	}
	return []ast.Stmt{s}
}

func (f *folder) foldLValue(lv ast.LValue) {
	if idx, ok := lv.(*ast.IndexExpr); ok {
		idx.Index = f.foldExpr(idx.Index)
	}
}

func (f *folder) foldExprInPlace(es *[]ast.Expr) {
	for i, e := range *es {
		(*es)[i] = f.foldExpr(e)
	}
}

// constValue extracts a compile-time constant (bools as 0/1).
func constValue(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.BoolLit:
		if e.Value {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// foldExpr rewrites e bottom-up, folding constant subtrees. Nil maps to nil.
func (f *folder) foldExpr(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.UnaryExpr:
		e.X = f.foldExpr(e.X)
		if v, ok := constValue(e.X); ok {
			f.stats.ExprsFolded++
			if e.Op == token.Not {
				return &ast.BoolLit{LitPos: e.OpPos, Value: v == 0}
			}
			return &ast.IntLit{LitPos: e.OpPos, Value: -v}
		}
		return e
	case *ast.BinaryExpr:
		e.X = f.foldExpr(e.X)
		e.Y = f.foldExpr(e.Y)
		x, okX := constValue(e.X)
		y, okY := constValue(e.Y)
		if !okX || !okY {
			return e
		}
		folded, ok := foldBinary(e.Op, x, y)
		if !ok {
			return e // division by zero: leave for runtime diagnosis
		}
		f.stats.ExprsFolded++
		switch e.Op {
		case token.Eq, token.NotEq, token.Lt, token.LtEq, token.Gt, token.GtEq,
			token.AndAnd, token.OrOr:
			return &ast.BoolLit{LitPos: e.OpPos, Value: folded != 0}
		}
		return &ast.IntLit{LitPos: e.OpPos, Value: folded}
	case *ast.IndexExpr:
		e.Index = f.foldExpr(e.Index)
		return e
	case *ast.CallExpr:
		f.foldExprInPlace(&e.Args)
		// Pure intrinsics over constants fold too.
		switch e.Name {
		case "abs":
			if len(e.Args) == 1 {
				if v, ok := constValue(e.Args[0]); ok {
					f.stats.ExprsFolded++
					if v < 0 {
						v = -v
					}
					return &ast.IntLit{LitPos: e.NamePos, Value: v}
				}
			}
		case "min", "max":
			if len(e.Args) == 2 {
				a, okA := constValue(e.Args[0])
				b, okB := constValue(e.Args[1])
				if okA && okB {
					f.stats.ExprsFolded++
					if (e.Name == "min") == (a < b) {
						return &ast.IntLit{LitPos: e.NamePos, Value: a}
					}
					return &ast.IntLit{LitPos: e.NamePos, Value: b}
				}
			}
		}
		return e
	default:
		return e
	}
}

func foldBinary(op token.Kind, x, y int64) (int64, bool) {
	b := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case token.Plus:
		return x + y, true
	case token.Minus:
		return x - y, true
	case token.Star:
		return x * y, true
	case token.Slash:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case token.Percent:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case token.Eq:
		return b(x == y), true
	case token.NotEq:
		return b(x != y), true
	case token.Lt:
		return b(x < y), true
	case token.LtEq:
		return b(x <= y), true
	case token.Gt:
		return b(x > y), true
	case token.GtEq:
		return b(x >= y), true
	case token.AndAnd:
		return b(x != 0 && y != 0), true
	case token.OrOr:
		return b(x != 0 || y != 0), true
	}
	return 0, false
}
