package passes

import "parcoach/internal/cfg"

// EliminateDead removes CFG nodes unreachable from the entry (code after
// returns, arms of folded-away branches) and returns how many were
// removed. Edges from removed nodes are unlinked so downstream analyses
// see a clean graph.
func EliminateDead(g *cfg.Graph) int {
	reachable := make([]bool, len(g.Nodes))
	var stack []*cfg.Node
	stack = append(stack, g.Entry)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reachable[n.ID] {
			continue
		}
		reachable[n.ID] = true
		for _, s := range n.Succs {
			if !reachable[s.ID] {
				stack = append(stack, s)
			}
		}
	}
	// The virtual exit stays even when no return reaches it.
	reachable[g.Exit.ID] = true

	removed := 0
	var kept []*cfg.Node
	for _, n := range g.Nodes {
		if !reachable[n.ID] {
			removed++
			continue
		}
		kept = append(kept, n)
	}
	if removed == 0 {
		return 0
	}
	for _, n := range kept {
		n.Preds = filterNodes(n.Preds, reachable)
		n.Succs = filterNodes(n.Succs, reachable)
	}
	// Renumber densely so NodeByID stays an index lookup.
	for i, n := range kept {
		n.ID = i
	}
	g.Nodes = kept
	return removed
}

func filterNodes(list []*cfg.Node, keep []bool) []*cfg.Node {
	out := list[:0]
	for _, n := range list {
		if keep[n.ID] {
			out = append(out, n)
		}
	}
	return out
}
