package passes

import (
	"strings"
	"testing"
	"testing/quick"

	"parcoach/internal/ast"
	"parcoach/internal/cfg"
	"parcoach/internal/interp"
	"parcoach/internal/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("t.mh", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func foldMain(t *testing.T, body string) (*ast.Program, FoldStats) {
	t.Helper()
	return FoldProgram(parse(t, "func main() {\n"+body+"\n}"))
}

func TestFoldArithmetic(t *testing.T) {
	folded, st := foldMain(t, "var x = 2 + 3 * 4\nvar y = (10 - 4) / 3\nvar z = 17 % 5")
	text := ast.String(folded)
	for _, want := range []string{"x = 14", "y = 2", "z = 2"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in folded output:\n%s", want, text)
		}
	}
	if st.ExprsFolded < 4 {
		t.Errorf("ExprsFolded = %d", st.ExprsFolded)
	}
}

func TestFoldComparisonsAndLogic(t *testing.T) {
	folded, _ := foldMain(t, "var a = 3 < 4 && 5 >= 5\nvar b = !(1 == 2)\nvar c = false || 7 > 9")
	text := ast.String(folded)
	if !strings.Contains(text, "a = true") || !strings.Contains(text, "b = true") || !strings.Contains(text, "c = false") {
		t.Errorf("logic folding wrong:\n%s", text)
	}
}

func TestFoldIntrinsics(t *testing.T) {
	folded, _ := foldMain(t, "var a = abs(0 - 9)\nvar b = min(3, 8)\nvar c = max(3, 8)")
	text := ast.String(folded)
	if !strings.Contains(text, "a = 9") || !strings.Contains(text, "b = 3") || !strings.Contains(text, "c = 8") {
		t.Errorf("intrinsic folding wrong:\n%s", text)
	}
}

func TestFoldConstantBranch(t *testing.T) {
	folded, st := foldMain(t, `
var x = 0
if 1 < 2 {
	x = 1
} else {
	x = 2
}
if 1 > 2 {
	x = 3
}`)
	text := ast.String(folded)
	if !strings.Contains(text, "x = 1") || strings.Contains(text, "x = 2") || strings.Contains(text, "x = 3") {
		t.Errorf("branch resolution wrong:\n%s", text)
	}
	if st.BranchesResolved != 2 {
		t.Errorf("BranchesResolved = %d, want 2", st.BranchesResolved)
	}
}

func TestFoldElseIfChain(t *testing.T) {
	folded, _ := foldMain(t, `
var x = 0
if x > 0 {
	x = 1
} else if 2 > 1 {
	x = 2
} else {
	x = 3
}`)
	text := ast.String(folded)
	// The inner constant else-if must collapse to its then-block.
	if strings.Contains(text, "x = 3") {
		t.Errorf("dead else retained:\n%s", text)
	}
}

func TestFoldDeadLoops(t *testing.T) {
	folded, st := foldMain(t, `
var x = 0
while false {
	x = 1
}
for i = 5 .. 3 {
	x = 2
}`)
	text := ast.String(folded)
	if strings.Contains(text, "x = 1") || strings.Contains(text, "x = 2") {
		t.Errorf("dead loops retained:\n%s", text)
	}
	if st.LoopsRemoved != 2 {
		t.Errorf("LoopsRemoved = %d, want 2", st.LoopsRemoved)
	}
}

func TestFoldKeepsDivisionByZero(t *testing.T) {
	folded, _ := foldMain(t, "var x = 1 / 0\nvar y = 1 % 0")
	text := ast.String(folded)
	if !strings.Contains(text, "1 / 0") || !strings.Contains(text, "1 % 0") {
		t.Errorf("division by zero must be left for runtime diagnosis:\n%s", text)
	}
}

func TestFoldDoesNotTouchOriginal(t *testing.T) {
	prog := parse(t, "func main() { var x = 1 + 2 }")
	before := ast.String(prog)
	FoldProgram(prog)
	if ast.String(prog) != before {
		t.Error("FoldProgram mutated its input")
	}
}

func TestFoldInsideConstructs(t *testing.T) {
	folded, _ := foldMain(t, `
parallel num_threads(2 + 2) {
	single {
		var a = 1 + 1
	}
	pfor i = 0 .. 2 * 8 {
		atomic a += 3 * 3
	}
	sections {
		section { var b = 5 - 5 }
	}
	critical {
		var c = 2 * 2
	}
	master {
		var d = 6 / 2
	}
}
MPI_Bcast(x, 1 + 1)`)
	text := ast.String(folded)
	for _, want := range []string{"num_threads(4)", "a = 2", "0 .. 16", "+= 9", "b = 0", "c = 4", "d = 3", "MPI_Bcast(x, 2)"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q:\n%s", want, text)
		}
	}
}

// Property: folding preserves program behaviour on single-process runs.
func TestFoldPreservesSemantics(t *testing.T) {
	gen := func(seed int64) string {
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := (rng >> 33) % n
			if v < 0 {
				v = -v
			}
			return v
		}
		lit := func() string {
			return []string{"1", "2", "3", "7", "0"}[next(5)]
		}
		var expr func(d int) string
		expr = func(d int) string {
			if d > 2 {
				return lit()
			}
			switch next(5) {
			case 0:
				return lit()
			case 1:
				return "(" + expr(d+1) + " + " + expr(d+1) + ")"
			case 2:
				return "(" + expr(d+1) + " * " + expr(d+1) + ")"
			case 3:
				return "min(" + expr(d+1) + ", " + expr(d+1) + ")"
			default:
				return "(" + expr(d+1) + " - " + expr(d+1) + ")"
			}
		}
		var b strings.Builder
		b.WriteString("func main() {\nvar acc = 0\n")
		for i := 0; i < 6; i++ {
			b.WriteString("acc += " + expr(0) + "\n")
			if next(2) == 0 {
				b.WriteString("if " + expr(0) + " > " + lit() + " { acc += 1 } else { acc -= 1 }\n")
			}
		}
		b.WriteString("print(acc)\n}")
		return b.String()
	}
	check := func(seed int64) bool {
		src := gen(seed)
		prog, err := parser.Parse("p.mh", src)
		if err != nil {
			return false
		}
		folded, _ := FoldProgram(prog)
		r1 := interp.Run(prog, interp.Options{Procs: 1})
		r2 := interp.Run(folded, interp.Options{Procs: 1})
		return r1.Err == nil && r2.Err == nil && r1.Output == r2.Output
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

//
// Dead-node elimination
//

func TestEliminateDeadAfterReturn(t *testing.T) {
	prog := parse(t, "func main() {\nreturn\nMPI_Barrier()\n}")
	g := cfg.Build(prog.Func("main"))
	before := len(g.Nodes)
	removed := EliminateDead(g)
	if removed == 0 {
		t.Fatal("dead collective not removed")
	}
	if len(g.Nodes) != before-removed {
		t.Error("node count inconsistent")
	}
	for i, n := range g.Nodes {
		if n.ID != i {
			t.Fatal("ids not renumbered densely")
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindCollective {
			t.Error("dead collective survived")
		}
		for _, s := range n.Succs {
			if s.ID >= len(g.Nodes) {
				t.Error("dangling successor")
			}
		}
	}
}

func TestEliminateDeadNoop(t *testing.T) {
	prog := parse(t, "func main() { var x = 1\nif x > 0 { x = 2 } }")
	g := cfg.Build(prog.Func("main"))
	if removed := EliminateDead(g); removed != 0 {
		t.Errorf("live graph lost %d nodes", removed)
	}
}

//
// Lowering
//

func lowerMain(t *testing.T, body string) *FuncIR {
	t.Helper()
	prog := parse(t, "func main() {\n"+body+"\n}")
	ir := Lower(prog.Func("main"))
	if err := ir.Validate(); err != nil {
		t.Fatalf("IR invalid: %v\n%s", err, ir)
	}
	return ir
}

func TestLowerStraightLine(t *testing.T) {
	ir := lowerMain(t, "var x = 1\nvar y = x + 2\nprint(y)")
	var hasConst, hasBin, hasPrint, hasRet bool
	for _, in := range ir.Insts {
		switch in.Op {
		case OpConst:
			hasConst = true
		case OpBin:
			hasBin = true
		case OpPrint:
			hasPrint = true
		case OpRet:
			hasRet = true
		}
	}
	if !hasConst || !hasBin || !hasPrint || !hasRet {
		t.Errorf("missing opcodes:\n%s", ir)
	}
}

func TestLowerBranchTargets(t *testing.T) {
	ir := lowerMain(t, "var x = 1\nif x > 0 { x = 2 } else { x = 3 }\nx = 4")
	jumps := 0
	for _, in := range ir.Insts {
		if in.Op == OpJump || in.Op == OpJumpZ {
			jumps++
			if in.Imm <= 0 || in.Imm > int64(len(ir.Insts)) {
				t.Errorf("bad jump target %d", in.Imm)
			}
		}
	}
	if jumps != 2 {
		t.Errorf("if/else needs 2 jumps, got %d", jumps)
	}
}

func TestLowerLoopsJumpBackwards(t *testing.T) {
	ir := lowerMain(t, "var s = 0\nfor i = 0 .. 10 { s += i }\nwhile s > 0 { s -= 1 }")
	backward := 0
	for idx, in := range ir.Insts {
		if in.Op == OpJump && in.Imm <= int64(idx) {
			backward++
		}
	}
	if backward != 2 {
		t.Errorf("want 2 backward jumps, got %d\n%s", backward, ir)
	}
}

func TestLowerArrays(t *testing.T) {
	ir := lowerMain(t, "var a[8]\na[2] = 5\na[3] += 1\nvar v = a[2]")
	var newArr, store, load int
	for _, in := range ir.Insts {
		switch in.Op {
		case OpNewArr:
			newArr++
		case OpStoreIdx:
			store++
		case OpLoadIdx:
			load++
		}
	}
	if newArr != 1 || store != 2 || load < 2 {
		t.Errorf("array ops: new=%d store=%d load=%d\n%s", newArr, store, load, ir)
	}
}

func TestLowerMPIAndRegions(t *testing.T) {
	ir := lowerMain(t, `
MPI_Init()
var x = 0
parallel {
	single {
		MPI_Allreduce(x, x, sum)
	}
	barrier
}
MPI_Finalize()`)
	var mpiOps, regions []string
	for _, in := range ir.Insts {
		switch in.Op {
		case OpMPI:
			mpiOps = append(mpiOps, in.Sym)
		case OpRegion:
			regions = append(regions, in.Sym)
		}
	}
	wantMPI := []string{"MPI_Init", "MPI_Allreduce", "MPI_Finalize"}
	for i, w := range wantMPI {
		if mpiOps[i] != w {
			t.Errorf("mpi[%d] = %s, want %s", i, mpiOps[i], w)
		}
	}
	joined := strings.Join(regions, " ")
	for _, w := range []string{"parallel.begin", "single.begin", "single.end", "barrier", "parallel.end"} {
		if !strings.Contains(joined, w) {
			t.Errorf("missing region marker %s in %v", w, regions)
		}
	}
}

func TestLowerChecks(t *testing.T) {
	prog := parse(t, "func main() { var x = 0\nMPI_Bcast(x) }")
	fn := prog.Func("main")
	// Inject instrumentation nodes manually.
	fn.Body.Stmts = append([]ast.Stmt{
		&ast.InstrCC{CollKind: ast.MPIBcast},
		&ast.InstrMonoCheck{RegionID: 2},
		&ast.InstrPhaseCount{NodeID: 5, CollKind: ast.MPIBcast},
		&ast.InstrConcNote{RegionID: 2, Enter: true},
		&ast.InstrCCReturn{},
	}, fn.Body.Stmts...)
	ir := Lower(fn)
	if err := ir.Validate(); err != nil {
		t.Fatal(err)
	}
	var syms []string
	for _, in := range ir.Insts {
		if in.Op == OpCheck {
			syms = append(syms, in.Sym)
		}
	}
	joined := strings.Join(syms, " ")
	for _, w := range []string{"cc:MPI_Bcast", "mono:2", "phase:5", "conc:enter:2", "cc:return"} {
		if !strings.Contains(joined, w) {
			t.Errorf("missing check %s in %v", w, syms)
		}
	}
}

func TestLowerProgramAllFunctions(t *testing.T) {
	prog := parse(t, "func a() { return 1 }\nfunc b(x) { return x }")
	irs := LowerProgram(prog)
	if len(irs) != 2 || irs["a"] == nil || irs["b"] == nil {
		t.Fatal("LowerProgram incomplete")
	}
	if irs["b"].Params != 1 {
		t.Error("param count wrong")
	}
	for _, ir := range irs {
		if err := ir.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestValidateCatchesBadIR(t *testing.T) {
	bad := &FuncIR{Name: "x", NumRegs: 1, Insts: []Inst{{Op: OpJump, Imm: 99}}}
	if bad.Validate() == nil {
		t.Error("bad jump target accepted")
	}
	bad2 := &FuncIR{Name: "y", NumRegs: 1, Insts: []Inst{{Op: OpBin, Dst: 5, A: 0, B: 0}}}
	if bad2.Validate() == nil {
		t.Error("bad register accepted")
	}
}

func TestInstStrings(t *testing.T) {
	ir := lowerMain(t, "var x = 1\nif x > 0 { print(x) }\nreturn x")
	dump := ir.String()
	if !strings.Contains(dump, "func main") || !strings.Contains(dump, "jumpz") {
		t.Errorf("dump malformed:\n%s", dump)
	}
}
