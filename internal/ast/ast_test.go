package ast_test

import (
	"strings"
	"testing"

	"parcoach/internal/ast"
	"parcoach/internal/parser"
)

const sample = `
func helper(n) {
	var a[4]
	if n > 0 {
		MPI_Reduce(n, n, sum, 0)
	}
	return n
}

func main() {
	MPI_Init()
	var x = rank()
	parallel {
		single {
			MPI_Bcast(x)
		}
		pfor i = 0 .. 4 {
			x += helper(i)
		}
		sections {
			section { x += 1 }
			section { x -= 1 }
		}
	}
	MPI_Finalize()
}`

func parse(t *testing.T) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("s.mh", sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestInspectVisitsAllStatementKinds(t *testing.T) {
	prog := parse(t)
	var sawParallel, sawSingle, sawPfor, sawSections, sawMPI, sawIf, sawCall bool
	ast.Inspect(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ParallelStmt:
			sawParallel = true
		case *ast.SingleStmt:
			sawSingle = true
		case *ast.PforStmt:
			sawPfor = true
		case *ast.SectionsStmt:
			sawSections = true
		case *ast.MPIStmt:
			sawMPI = true
		case *ast.If:
			sawIf = true
		case *ast.CallExpr:
			sawCall = true
		}
		return true
	})
	if !sawParallel || !sawSingle || !sawPfor || !sawSections || !sawMPI || !sawIf || !sawCall {
		t.Error("Inspect missed a node kind")
	}
}

func TestInspectPrune(t *testing.T) {
	prog := parse(t)
	count := 0
	ast.Inspect(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.ParallelStmt); ok {
			return false // prune
		}
		if _, ok := n.(*ast.SingleStmt); ok {
			count++
		}
		return true
	})
	if count != 0 {
		t.Errorf("pruned subtree was visited (%d singles)", count)
	}
}

func TestCalls(t *testing.T) {
	prog := parse(t)
	names := ast.Calls(prog.Func("main"))
	if len(names) != 1 || names[0] != "helper" {
		t.Errorf("Calls = %v, want [helper]", names)
	}
	// Intrinsics are excluded.
	for _, n := range names {
		if _, ok := ast.Intrinsics[n]; ok {
			t.Errorf("intrinsic %q leaked into Calls", n)
		}
	}
}

func TestCountStmts(t *testing.T) {
	prog := parse(t)
	if n := ast.CountStmts(prog); n < 10 {
		t.Errorf("CountStmts = %d, implausibly small", n)
	}
}

func TestIsCollective(t *testing.T) {
	collectives := []ast.MPIKind{
		ast.MPIBarrier, ast.MPIBcast, ast.MPIReduce, ast.MPIAllreduce,
		ast.MPIGather, ast.MPIAllgather, ast.MPIScatter, ast.MPIAlltoall, ast.MPIScan,
	}
	for _, k := range collectives {
		if !k.IsCollective() {
			t.Errorf("%v must be collective", k)
		}
	}
	for _, k := range []ast.MPIKind{ast.MPIInit, ast.MPIFinalize, ast.MPISend, ast.MPIRecv} {
		if k.IsCollective() {
			t.Errorf("%v must not be collective", k)
		}
	}
}

func TestMPIKindString(t *testing.T) {
	if ast.MPIAllreduce.String() != "MPI_Allreduce" || ast.MPIBarrier.String() != "MPI_Barrier" {
		t.Error("MPIKind.String mismatch")
	}
}

func TestCloneProgramIsDeep(t *testing.T) {
	prog := parse(t)
	clone := ast.CloneProgram(prog)
	if ast.String(prog) != ast.String(clone) {
		t.Fatal("clone renders differently")
	}
	// Mutate the clone; the original must not change.
	clone.Func("main").Body.Stmts = nil
	if len(prog.Func("main").Body.Stmts) == 0 {
		t.Error("clone shares the statement slice with the original")
	}

	clone2 := ast.CloneProgram(prog)
	ast.Inspect(clone2, func(n ast.Node) bool {
		if d, ok := n.(*ast.VarDecl); ok && d.Init != nil {
			if lit, ok := d.Init.(*ast.CallExpr); ok {
				lit.Name = "mutated"
			}
		}
		return true
	})
	if strings.Contains(ast.String(prog), "mutated") {
		t.Error("clone shares expression nodes with the original")
	}
}

func TestCloneInstrNodes(t *testing.T) {
	stmts := []ast.Stmt{
		&ast.InstrCC{CollKind: ast.MPIBcast},
		&ast.InstrCCReturn{},
		&ast.InstrMonoCheck{RegionID: 3},
		&ast.InstrPhaseCount{NodeID: 7, CollKind: ast.MPIBarrier},
		&ast.InstrConcNote{RegionID: 1, Enter: true},
	}
	for _, s := range stmts {
		c := ast.CloneStmt(s)
		if c == s {
			t.Errorf("%T clone returned same pointer", s)
		}
	}
}

func TestPrinterRendersInstrNodes(t *testing.T) {
	b := &ast.Block{Stmts: []ast.Stmt{
		&ast.InstrCC{CollKind: ast.MPIBcast},
		&ast.InstrCCReturn{},
		&ast.InstrMonoCheck{RegionID: 3},
		&ast.InstrPhaseCount{NodeID: 7, CollKind: ast.MPIBarrier},
		&ast.InstrConcNote{RegionID: 1, Enter: true},
		&ast.InstrConcNote{RegionID: 1, Enter: false},
	}}
	f := &ast.FuncDecl{Name: "f", Body: b}
	out := ast.String(f)
	for _, want := range []string{"__cc(", "__cc_return", "__mono_check", "__phase_count", "__conc_enter", "__conc_exit"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q:\n%s", want, out)
		}
	}
}

func TestExprString(t *testing.T) {
	prog, err := parser.Parse("e.mh", `func f() { x = (1 + 2) * -3 - min(a[4], !b) }`)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Func("f").Body.Stmts[0].(*ast.Assign)
	got := ast.ExprString(as.Value)
	want := "(1 + 2) * -3 - min(a[4], !b)"
	if got != want {
		t.Errorf("ExprString = %q, want %q", got, want)
	}
}

func TestProgramPos(t *testing.T) {
	prog := parse(t)
	if !prog.Pos().IsValid() {
		t.Error("non-empty program must have a valid Pos")
	}
	empty := &ast.Program{}
	if empty.Pos().IsValid() {
		t.Error("empty program must have invalid Pos")
	}
}
