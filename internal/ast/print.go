package ast

import (
	"fmt"
	"io"
	"strings"

	"parcoach/internal/token"
)

// Fprint writes a canonical textual rendering of the node. The output of a
// pristine program re-parses to an equivalent tree (round-trip tested);
// instrumentation nodes render as __cc/__mono/__phase/__conc pseudo-calls
// so instrumented programs remain inspectable.
func Fprint(w io.Writer, n Node) {
	p := &printer{w: w}
	p.node(n)
}

// String renders the node with Fprint.
func String(n Node) string {
	var b strings.Builder
	Fprint(&b, n)
	return b.String()
}

type printer struct {
	w      io.Writer
	indent int
}

func (p *printer) printf(format string, args ...any) {
	fmt.Fprintf(p.w, format, args...)
}

func (p *printer) line(format string, args ...any) {
	p.printf("%s", strings.Repeat("    ", p.indent))
	p.printf(format, args...)
	p.printf("\n")
}

func (p *printer) node(n Node) {
	switch n := n.(type) {
	case *Program:
		for i, f := range n.Funcs {
			if i > 0 {
				p.printf("\n")
			}
			p.node(f)
		}
	case *FuncDecl:
		p.line("func %s(%s) {", n.Name, strings.Join(n.Params, ", "))
		p.indent++
		p.stmts(n.Body)
		p.indent--
		p.line("}")
	default:
		p.stmt(n.(Stmt))
	}
}

func (p *printer) stmts(b *Block) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		p.stmt(s)
	}
}

func (p *printer) blockTail(b *Block) {
	p.indent++
	p.stmts(b)
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.line("{")
		p.blockTail(s)
	case *VarDecl:
		switch {
		case s.ArraySize != nil:
			p.line("var %s[%s]", s.Name, ExprString(s.ArraySize))
		case s.Init != nil:
			p.line("var %s = %s", s.Name, ExprString(s.Init))
		default:
			p.line("var %s", s.Name)
		}
	case *Assign:
		p.line("%s %s %s", ExprString(s.Target), s.Op, ExprString(s.Value))
	case *CallStmt:
		p.line("%s", ExprString(s.Call))
	case *If:
		p.ifStmt(s, "")
	case *For:
		p.line("for %s = %s .. %s {", s.Var, ExprString(s.From), ExprString(s.To))
		p.blockTail(s.Body)
	case *While:
		p.line("while %s {", ExprString(s.Cond))
		p.blockTail(s.Body)
	case *Return:
		if s.Value != nil {
			p.line("return %s", ExprString(s.Value))
		} else {
			p.line("return")
		}
	case *Print:
		p.line("print(%s)", exprList(s.Args))
	case *MPIStmt:
		p.mpi(s)
	case *ParallelStmt:
		if s.NumThreads != nil {
			p.line("parallel num_threads(%s) {", ExprString(s.NumThreads))
		} else {
			p.line("parallel {")
		}
		p.blockTail(s.Body)
	case *SingleStmt:
		if s.Nowait {
			p.line("single nowait {")
		} else {
			p.line("single {")
		}
		p.blockTail(s.Body)
	case *MasterStmt:
		p.line("master {")
		p.blockTail(s.Body)
	case *CriticalStmt:
		if s.Name != "" {
			p.line("critical(%s) {", s.Name)
		} else {
			p.line("critical {")
		}
		p.blockTail(s.Body)
	case *BarrierStmt:
		p.line("barrier")
	case *AtomicStmt:
		p.line("atomic %s %s %s", ExprString(s.Target), s.Op, ExprString(s.Value))
	case *PforStmt:
		var cl []string
		if s.Sched == ScheduleDynamic {
			cl = append(cl, "schedule(dynamic)")
		}
		if s.Nowait {
			cl = append(cl, "nowait")
		}
		clause := ""
		if len(cl) > 0 {
			clause = " " + strings.Join(cl, " ")
		}
		p.line("pfor%s %s = %s .. %s {", clause, s.Var, ExprString(s.From), ExprString(s.To))
		p.blockTail(s.Body)
	case *SectionsStmt:
		if s.Nowait {
			p.line("sections nowait {")
		} else {
			p.line("sections {")
		}
		p.indent++
		for _, b := range s.Bodies {
			p.line("section {")
			p.blockTail(b)
		}
		p.indent--
		p.line("}")
	case *InstrCC:
		p.line("// __cc(%s) before %s", s.OpName(), s.CollPos)
	case *InstrCCReturn:
		p.line("// __cc_return()")
	case *InstrMonoCheck:
		p.line("// __mono_check(region=%d)", s.RegionID)
	case *InstrPhaseCount:
		p.line("// __phase_count(node=%d, %s)", s.NodeID, s.CollKind)
	case *InstrConcNote:
		if s.Enter {
			p.line("// __conc_enter(region=%d)", s.RegionID)
		} else {
			p.line("// __conc_exit(region=%d)", s.RegionID)
		}
	default:
		p.line("// <unknown statement %T>", s)
	}
}

func (p *printer) ifStmt(s *If, prefix string) {
	p.line("%sif %s {", prefix, ExprString(s.Cond))
	p.blockTail(s.Then)
	if s.Else != nil {
		p.elseTail(s.Else)
	}
}

func (p *printer) elseTail(s Stmt) {
	switch e := s.(type) {
	case *If:
		p.line("else if %s {", ExprString(e.Cond))
		p.blockTail(e.Then)
		if e.Else != nil {
			p.elseTail(e.Else)
		}
	case *Block:
		p.line("else {")
		p.blockTail(e)
	}
}

func (p *printer) mpi(s *MPIStmt) {
	var args []string
	add := func(e Expr) {
		if e != nil {
			args = append(args, ExprString(e))
		}
	}
	switch s.Kind {
	case MPIInit, MPIFinalize, MPIBarrier:
	case MPIBcast:
		args = append(args, ExprString(s.Dst))
		add(s.Root)
	case MPIReduce, MPIAllreduce, MPIScan:
		args = append(args, ExprString(s.Dst), ExprString(s.Src))
		if s.OpName != "" {
			args = append(args, s.OpName)
		}
		add(s.Root)
	case MPIGather, MPIScatter:
		args = append(args, ExprString(s.Dst), ExprString(s.Src))
		add(s.Root)
	case MPIAllgather, MPIAlltoall:
		args = append(args, ExprString(s.Dst), ExprString(s.Src))
	case MPISend:
		args = append(args, ExprString(s.Src), ExprString(s.Dest))
		add(s.Tag)
	case MPIRecv:
		args = append(args, ExprString(s.Dst), ExprString(s.Dest))
		add(s.Tag)
	}
	p.line("%s(%s)", s.Kind, strings.Join(args, ", "))
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

// ExprString renders an expression in source syntax with minimal
// parenthesization (children of lower precedence are parenthesized).
func ExprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *VarRef:
		return e.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", e.Name, ExprString(e.Index))
	case *BinaryExpr:
		x := ExprString(e.X)
		y := ExprString(e.Y)
		if sub, ok := e.X.(*BinaryExpr); ok && sub.Op.Precedence() < e.Op.Precedence() {
			x = "(" + x + ")"
		}
		if sub, ok := e.Y.(*BinaryExpr); ok && sub.Op.Precedence() <= e.Op.Precedence() {
			y = "(" + y + ")"
		}
		return fmt.Sprintf("%s %s %s", x, e.Op, y)
	case *UnaryExpr:
		x := ExprString(e.X)
		if _, ok := e.X.(*BinaryExpr); ok {
			x = "(" + x + ")"
		}
		if e.Op == token.Not {
			return "!" + x
		}
		return "-" + x
	case *CallExpr:
		return fmt.Sprintf("%s(%s)", e.Name, exprList(e.Args))
	}
	return fmt.Sprintf("<expr %T>", e)
}
