package ast

// Inspect traverses the tree rooted at n in depth-first order, calling f for
// each node. If f returns false for a node, its children are skipped.
// Nil children are never visited.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *Program:
		for _, fn := range n.Funcs {
			Inspect(fn, f)
		}
	case *FuncDecl:
		Inspect(n.Body, f)
	case *Block:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *VarDecl:
		inspectExpr(n.ArraySize, f)
		inspectExpr(n.Init, f)
	case *Assign:
		Inspect(n.Target, f)
		inspectExpr(n.Value, f)
	case *CallStmt:
		Inspect(n.Call, f)
	case *If:
		inspectExpr(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *For:
		inspectExpr(n.From, f)
		inspectExpr(n.To, f)
		Inspect(n.Body, f)
	case *While:
		inspectExpr(n.Cond, f)
		Inspect(n.Body, f)
	case *Return:
		inspectExpr(n.Value, f)
	case *Print:
		for _, a := range n.Args {
			inspectExpr(a, f)
		}
	case *MPIStmt:
		if n.Dst != nil {
			Inspect(n.Dst, f)
		}
		inspectExpr(n.Src, f)
		inspectExpr(n.Root, f)
		inspectExpr(n.Dest, f)
		inspectExpr(n.Tag, f)
	case *ParallelStmt:
		inspectExpr(n.NumThreads, f)
		Inspect(n.Body, f)
	case *SingleStmt:
		Inspect(n.Body, f)
	case *MasterStmt:
		Inspect(n.Body, f)
	case *CriticalStmt:
		Inspect(n.Body, f)
	case *AtomicStmt:
		Inspect(n.Target, f)
		inspectExpr(n.Value, f)
	case *PforStmt:
		inspectExpr(n.From, f)
		inspectExpr(n.To, f)
		Inspect(n.Body, f)
	case *SectionsStmt:
		for _, b := range n.Bodies {
			Inspect(b, f)
		}
	case *IndexExpr:
		inspectExpr(n.Index, f)
	case *BinaryExpr:
		inspectExpr(n.X, f)
		inspectExpr(n.Y, f)
	case *UnaryExpr:
		inspectExpr(n.X, f)
	case *CallExpr:
		for _, a := range n.Args {
			inspectExpr(a, f)
		}
	}
}

func inspectExpr(e Expr, f func(Node) bool) {
	if e != nil {
		Inspect(e, f)
	}
}

// Calls returns the names of all user-level function calls appearing
// anywhere under n (intrinsics excluded), in first-appearance order.
func Calls(n Node) []string {
	var names []string
	seen := make(map[string]bool)
	Inspect(n, func(m Node) bool {
		if c, ok := m.(*CallExpr); ok {
			if _, intrinsic := Intrinsics[c.Name]; !intrinsic && !seen[c.Name] {
				seen[c.Name] = true
				names = append(names, c.Name)
			}
		}
		return true
	})
	return names
}

// CountStmts returns the number of statement nodes under n; used by the
// benchmark harness to report workload sizes.
func CountStmts(n Node) int {
	count := 0
	Inspect(n, func(m Node) bool {
		if _, ok := m.(Stmt); ok {
			count++
		}
		return true
	})
	return count
}
