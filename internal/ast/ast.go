// Package ast defines the abstract syntax tree of MiniHybrid programs.
//
// The tree mirrors what the paper's analyses need from the compiler middle
// end: structured control flow (if/for/while), MPI collective and
// point-to-point statements, and fork/join threading constructs with
// perfectly nested regions (parallel, single, master, critical, sections,
// worksharing loops, barriers). Every threading construct carries a
// RegionID, the `i` in the paper's parallelism-word letters P_i and S_i.
//
// The instrumentation pass (internal/instrument) injects the Instr* nodes;
// they have no surface syntax and are executed by the interpreter through
// the runtime verifier.
package ast

import (
	"parcoach/internal/source"
	"parcoach/internal/token"
)

// Node is implemented by all AST nodes.
type Node interface {
	Pos() source.Pos
}

// Program is a parsed MiniHybrid source file.
type Program struct {
	File    *source.File
	Funcs   []*FuncDecl
	ByName  map[string]*FuncDecl
	Regions int // number of threading regions; RegionIDs are in [0,Regions)
}

// Pos returns the position of the first function, or an invalid Pos for an
// empty program.
func (p *Program) Pos() source.Pos {
	if len(p.Funcs) > 0 {
		return p.Funcs[0].Pos()
	}
	return source.Pos{}
}

// Func returns the function declaration with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	if p.ByName == nil {
		return nil
	}
	return p.ByName[name]
}

// FuncDecl is a function definition. All functions return an int (0 by
// default); parameters are ints passed by value, arrays by reference.
type FuncDecl struct {
	NamePos source.Pos
	Name    string
	Params  []string
	Body    *Block
}

// Pos returns the position of the function name.
func (f *FuncDecl) Pos() source.Pos { return f.NamePos }

// Block is a braced statement list.
type Block struct {
	Lbrace source.Pos
	Stmts  []Stmt
}

// Pos returns the opening brace position.
func (b *Block) Pos() source.Pos { return b.Lbrace }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// LValue is an assignable location: a variable or an array element.
type LValue interface {
	Expr
	lvalueNode()
}

//
// Statements
//

// VarDecl declares a local variable. If ArraySize is non-nil the variable
// is an integer array of that length (zero initialized); otherwise it is a
// scalar, optionally initialized by Init. Variables declared inside a
// threading construct are private to each executing thread; all others are
// shared by the threads of enclosing regions.
type VarDecl struct {
	VarPos    source.Pos
	Name      string
	ArraySize Expr // nil for scalars
	Init      Expr // nil means 0
}

// AssignOp distinguishes plain and compound assignment.
type AssignOp int

// Assignment operators.
const (
	AssignSet AssignOp = iota // =
	AssignAdd                 // +=
	AssignSub                 // -=
)

func (op AssignOp) String() string {
	switch op {
	case AssignAdd:
		return "+="
	case AssignSub:
		return "-="
	}
	return "="
}

// Assign stores Value into Target.
type Assign struct {
	Target LValue
	Op     AssignOp
	Value  Expr
}

// CallStmt invokes a function for its effects, discarding the result.
type CallStmt struct {
	Call *CallExpr
}

// If is a two-way branch. Else is nil, a *Block, or another *If.
type If struct {
	IfPos source.Pos
	Cond  Expr
	Then  *Block
	Else  Stmt
}

// For is a sequential counted loop: Var ranges over [From, To).
type For struct {
	ForPos   source.Pos
	Var      string
	From, To Expr
	Body     *Block
}

// While loops while Cond holds.
type While struct {
	WhilePos source.Pos
	Cond     Expr
	Body     *Block
}

// Return leaves the current function. Value may be nil (returns 0).
type Return struct {
	RetPos source.Pos
	Value  Expr
}

// Print writes its arguments to the run's output stream, space separated
// and newline terminated; used by examples and tests to observe execution.
type Print struct {
	PrintPos source.Pos
	Args     []Expr
}

//
// MPI statements
//

// MPIKind enumerates the MPI operations of MiniHybrid.
type MPIKind int

// MPI operations. Collective operations are those for which IsCollective
// reports true; Send/Recv are point-to-point and invisible to the
// collective-validation analyses (but still run on the simulated runtime).
const (
	MPIInit MPIKind = iota
	MPIFinalize
	MPIBarrier
	MPIBcast
	MPIReduce
	MPIAllreduce
	MPIGather
	MPIAllgather
	MPIScatter
	MPIAlltoall
	MPIScan
	MPISend
	MPIRecv
)

var mpiNames = [...]string{
	MPIInit:      "MPI_Init",
	MPIFinalize:  "MPI_Finalize",
	MPIBarrier:   "MPI_Barrier",
	MPIBcast:     "MPI_Bcast",
	MPIReduce:    "MPI_Reduce",
	MPIAllreduce: "MPI_Allreduce",
	MPIGather:    "MPI_Gather",
	MPIAllgather: "MPI_Allgather",
	MPIScatter:   "MPI_Scatter",
	MPIAlltoall:  "MPI_Alltoall",
	MPIScan:      "MPI_Scan",
	MPISend:      "MPI_Send",
	MPIRecv:      "MPI_Recv",
}

// String returns the MPI_* name of the operation.
func (k MPIKind) String() string {
	if int(k) < len(mpiNames) {
		return mpiNames[k]
	}
	return "MPI_?"
}

// IsCollective reports whether the operation synchronizes the whole
// communicator, i.e. participates in the paper's validation problem.
func (k MPIKind) IsCollective() bool {
	switch k {
	case MPIBarrier, MPIBcast, MPIReduce, MPIAllreduce, MPIGather,
		MPIAllgather, MPIScatter, MPIAlltoall, MPIScan:
		return true
	}
	return false
}

// MPIStmt is one MPI call. Field use by kind:
//
//	MPI_Barrier()                    — no fields
//	MPI_Bcast(dst [, root])          — Dst (in/out), Root
//	MPI_Reduce(dst, src [, op [, root]])
//	MPI_Allreduce(dst, src [, op])
//	MPI_Gather(dstArray, src [, root])
//	MPI_Allgather(dstArray, src)
//	MPI_Scatter(dst, srcArray [, root])
//	MPI_Alltoall(dstArray, srcArray)
//	MPI_Scan(dst, src [, op])
//	MPI_Send(value, dest [, tag])    — Src, Dest, Tag
//	MPI_Recv(dst, src [, tag])       — Dst, Dest (peer), Tag
type MPIStmt struct {
	KindPos source.Pos
	Kind    MPIKind
	Dst     LValue // destination lvalue, nil when unused
	Src     Expr   // contribution / payload, nil when unused
	OpName  string // "sum", "min", "max", "prod" (reductions); "" defaults to sum
	Root    Expr   // root rank, nil defaults to 0
	Dest    Expr   // peer rank for Send/Recv
	Tag     Expr   // message tag for Send/Recv, nil defaults to 0
}

//
// Threading (OpenMP-like) statements
//

// ParallelStmt forks a team of threads that each execute Body; an implicit
// barrier joins them at the end. NumThreads, when non-nil, sets the team
// size, otherwise the runtime default applies.
type ParallelStmt struct {
	ParPos     source.Pos
	NumThreads Expr
	Body       *Block
	RegionID   int
}

// SingleStmt executes Body on exactly one thread of the current team; the
// others skip it and, unless Nowait is set, wait on an implicit barrier.
type SingleStmt struct {
	SingPos  source.Pos
	Nowait   bool
	Body     *Block
	RegionID int
}

// MasterStmt executes Body on thread 0 only. There is no implicit barrier.
type MasterStmt struct {
	MastPos  source.Pos
	Body     *Block
	RegionID int
}

// CriticalStmt serializes Body across the threads of the process. It does
// NOT make a region monothreaded in the paper's sense: every thread still
// executes Body, one at a time.
type CriticalStmt struct {
	CritPos source.Pos
	Name    string // optional critical-section name; "" is the anonymous lock
	Body    *Block
}

// BarrierStmt is an explicit team barrier (the letter B).
type BarrierStmt struct {
	BarPos source.Pos
}

// AtomicStmt performs Target op= Value atomically within the process.
type AtomicStmt struct {
	AtomPos source.Pos
	Target  LValue
	Op      AssignOp // AssignAdd or AssignSub
	Value   Expr
}

// Schedule names a worksharing loop schedule.
type Schedule int

// Worksharing schedules.
const (
	ScheduleStatic Schedule = iota
	ScheduleDynamic
)

func (s Schedule) String() string {
	if s == ScheduleDynamic {
		return "dynamic"
	}
	return "static"
}

// PforStmt is a worksharing loop: iterations of [From, To) are distributed
// across the current team. Unless Nowait is set, an implicit barrier ends
// the construct. The loop body remains multithreaded for the parallelism
// word (no letter is emitted, only the ending B).
type PforStmt struct {
	PforPos  source.Pos
	Var      string
	From, To Expr
	Sched    Schedule
	Nowait   bool
	Body     *Block
	RegionID int
}

// SectionsStmt distributes its section blocks across the team: each section
// executes on one thread, like concurrently running singles. Unless Nowait
// is set, an implicit barrier ends the construct.
type SectionsStmt struct {
	SecsPos    source.Pos
	Nowait     bool
	Bodies     []*Block
	SectionIDs []int // one region id per section body
	RegionID   int   // id of the sections construct itself
}

//
// Instrumentation statements (inserted by internal/instrument)
//

// InstrCC is the paper's CC check, inserted immediately before a collective
// call: all processes agree on the id of the next collective operation or
// the run aborts with a located error (PARCOACH Algorithm 3). When the
// guarded statement is a call to a collective-bearing function rather than
// a direct collective, Callee names it and the agreed id is "call:<name>".
type InstrCC struct {
	At       source.Pos
	CollKind MPIKind
	Callee   string
	CollPos  source.Pos // position of the guarded collective
	// Once marks sites reached by every thread of a team (directly in a
	// parallel body, or at function level under a multithreaded caller):
	// the check then runs with execute-once semantics (the paper's single
	// wrapping). Sites inside single/master/section bodies are reached by
	// exactly the thread executing the guarded statement and must not be
	// filtered.
	Once bool
}

// OpName returns the operation identifier processes must agree on.
func (s *InstrCC) OpName() string {
	if s.Callee != "" {
		return "call:" + s.Callee
	}
	return s.CollKind.String()
}

// InstrCCReturn is the CC check inserted before return statements (and at
// function end) so a process leaving the function while others still expect
// collectives is reported instead of deadlocking. When inside a threaded
// region it executes under execute-once (single) semantics as in the paper.
type InstrCCReturn struct {
	At   source.Pos
	Once bool
}

// InstrMonoCheck is inserted at a node of the paper's set Sipw: it verifies
// at run time that the dominating region really executes monothreaded
// (team size 1), clearing compile-time false positives.
type InstrMonoCheck struct {
	At       source.Pos
	RegionID int
}

// InstrPhaseCount is inserted before a collective node in the paper's set S
// (collectives in a possibly multithreaded context): the verifier counts
// executions per (process, team, barrier phase) and aborts when more than
// one thread executes the collective in the same phase.
type InstrPhaseCount struct {
	At       source.Pos
	NodeID   int // CFG node id of the collective
	CollKind MPIKind
}

// InstrConcNote brackets a monothreaded region in the paper's set Scc: the
// verifier tracks which thread executes collectives of which region in the
// same barrier phase, and aborts when two different threads run collectives
// of concurrent monothreaded regions without an ordering barrier.
type InstrConcNote struct {
	At       source.Pos
	RegionID int
	Enter    bool
}

//
// Expressions
//

// IntLit is an integer literal.
type IntLit struct {
	LitPos source.Pos
	Value  int64
}

// BoolLit is true or false.
type BoolLit struct {
	LitPos source.Pos
	Value  bool
}

// VarRef names a scalar variable (or a whole array when used as an MPI
// buffer or call argument).
type VarRef struct {
	NamePos source.Pos
	Name    string
}

// IndexExpr is an array element a[i].
type IndexExpr struct {
	NamePos source.Pos
	Name    string
	Index   Expr
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	OpPos source.Pos
	Op    token.Kind
	X, Y  Expr
}

// UnaryExpr applies ! or unary -.
type UnaryExpr struct {
	OpPos source.Pos
	Op    token.Kind
	X     Expr
}

// CallExpr invokes a user function or an intrinsic. Intrinsics:
//
//	rank()      — MPI rank of the calling process
//	size()      — number of MPI processes
//	tid()       — thread id within the innermost team
//	nthreads()  — size of the innermost team
//	len(a)      — array length
//	abs(x), min(x,y), max(x,y)
type CallExpr struct {
	NamePos source.Pos
	Name    string
	Args    []Expr
}

// Intrinsics lists the built-in function names.
var Intrinsics = map[string]int{ // name -> arity
	"rank": 0, "size": 0, "tid": 0, "nthreads": 0,
	"len": 1, "abs": 1, "min": 2, "max": 2,
}

//
// Interface plumbing
//

func (*Block) stmtNode()           {}
func (*VarDecl) stmtNode()         {}
func (*Assign) stmtNode()          {}
func (*CallStmt) stmtNode()        {}
func (*If) stmtNode()              {}
func (*For) stmtNode()             {}
func (*While) stmtNode()           {}
func (*Return) stmtNode()          {}
func (*Print) stmtNode()           {}
func (*MPIStmt) stmtNode()         {}
func (*ParallelStmt) stmtNode()    {}
func (*SingleStmt) stmtNode()      {}
func (*MasterStmt) stmtNode()      {}
func (*CriticalStmt) stmtNode()    {}
func (*BarrierStmt) stmtNode()     {}
func (*AtomicStmt) stmtNode()      {}
func (*PforStmt) stmtNode()        {}
func (*SectionsStmt) stmtNode()    {}
func (*InstrCC) stmtNode()         {}
func (*InstrCCReturn) stmtNode()   {}
func (*InstrMonoCheck) stmtNode()  {}
func (*InstrPhaseCount) stmtNode() {}
func (*InstrConcNote) stmtNode()   {}

func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}

func (*VarRef) lvalueNode()    {}
func (*IndexExpr) lvalueNode() {}

func (s *VarDecl) Pos() source.Pos         { return s.VarPos }
func (s *Assign) Pos() source.Pos          { return s.Target.Pos() }
func (s *CallStmt) Pos() source.Pos        { return s.Call.Pos() }
func (s *If) Pos() source.Pos              { return s.IfPos }
func (s *For) Pos() source.Pos             { return s.ForPos }
func (s *While) Pos() source.Pos           { return s.WhilePos }
func (s *Return) Pos() source.Pos          { return s.RetPos }
func (s *Print) Pos() source.Pos           { return s.PrintPos }
func (s *MPIStmt) Pos() source.Pos         { return s.KindPos }
func (s *ParallelStmt) Pos() source.Pos    { return s.ParPos }
func (s *SingleStmt) Pos() source.Pos      { return s.SingPos }
func (s *MasterStmt) Pos() source.Pos      { return s.MastPos }
func (s *CriticalStmt) Pos() source.Pos    { return s.CritPos }
func (s *BarrierStmt) Pos() source.Pos     { return s.BarPos }
func (s *AtomicStmt) Pos() source.Pos      { return s.AtomPos }
func (s *PforStmt) Pos() source.Pos        { return s.PforPos }
func (s *SectionsStmt) Pos() source.Pos    { return s.SecsPos }
func (s *InstrCC) Pos() source.Pos         { return s.At }
func (s *InstrCCReturn) Pos() source.Pos   { return s.At }
func (s *InstrMonoCheck) Pos() source.Pos  { return s.At }
func (s *InstrPhaseCount) Pos() source.Pos { return s.At }
func (s *InstrConcNote) Pos() source.Pos   { return s.At }

func (e *IntLit) Pos() source.Pos     { return e.LitPos }
func (e *BoolLit) Pos() source.Pos    { return e.LitPos }
func (e *VarRef) Pos() source.Pos     { return e.NamePos }
func (e *IndexExpr) Pos() source.Pos  { return e.NamePos }
func (e *BinaryExpr) Pos() source.Pos { return e.X.Pos() }
func (e *UnaryExpr) Pos() source.Pos  { return e.OpPos }
func (e *CallExpr) Pos() source.Pos   { return e.NamePos }
