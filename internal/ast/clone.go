package ast

// CloneProgram deep-copies a program. The instrumentation pass transforms a
// clone so the analysed (pristine) tree and the instrumented tree can
// coexist; this also keeps Compile idempotent for the benchmark harness.
func CloneProgram(p *Program) *Program {
	out := &Program{File: p.File, Regions: p.Regions, ByName: make(map[string]*FuncDecl, len(p.Funcs))}
	for _, f := range p.Funcs {
		nf := CloneFunc(f)
		out.Funcs = append(out.Funcs, nf)
		out.ByName[nf.Name] = nf
	}
	return out
}

// CloneFunc deep-copies a function declaration.
func CloneFunc(f *FuncDecl) *FuncDecl {
	params := make([]string, len(f.Params))
	copy(params, f.Params)
	return &FuncDecl{NamePos: f.NamePos, Name: f.Name, Params: params, Body: CloneBlock(f.Body)}
}

// CloneBlock deep-copies a block.
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	out := &Block{Lbrace: b.Lbrace, Stmts: make([]Stmt, 0, len(b.Stmts))}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, CloneStmt(s))
	}
	return out
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *VarDecl:
		return &VarDecl{VarPos: s.VarPos, Name: s.Name, ArraySize: CloneExpr(s.ArraySize), Init: CloneExpr(s.Init)}
	case *Assign:
		return &Assign{Target: cloneLValue(s.Target), Op: s.Op, Value: CloneExpr(s.Value)}
	case *CallStmt:
		return &CallStmt{Call: CloneExpr(s.Call).(*CallExpr)}
	case *If:
		out := &If{IfPos: s.IfPos, Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then)}
		if s.Else != nil {
			out.Else = CloneStmt(s.Else)
		}
		return out
	case *Block:
		return CloneBlock(s)
	case *For:
		return &For{ForPos: s.ForPos, Var: s.Var, From: CloneExpr(s.From), To: CloneExpr(s.To), Body: CloneBlock(s.Body)}
	case *While:
		return &While{WhilePos: s.WhilePos, Cond: CloneExpr(s.Cond), Body: CloneBlock(s.Body)}
	case *Return:
		return &Return{RetPos: s.RetPos, Value: CloneExpr(s.Value)}
	case *Print:
		return &Print{PrintPos: s.PrintPos, Args: cloneExprs(s.Args)}
	case *MPIStmt:
		out := &MPIStmt{KindPos: s.KindPos, Kind: s.Kind, OpName: s.OpName,
			Src: CloneExpr(s.Src), Root: CloneExpr(s.Root), Dest: CloneExpr(s.Dest), Tag: CloneExpr(s.Tag)}
		if s.Dst != nil {
			out.Dst = cloneLValue(s.Dst)
		}
		return out
	case *ParallelStmt:
		return &ParallelStmt{ParPos: s.ParPos, NumThreads: CloneExpr(s.NumThreads), Body: CloneBlock(s.Body), RegionID: s.RegionID}
	case *SingleStmt:
		return &SingleStmt{SingPos: s.SingPos, Nowait: s.Nowait, Body: CloneBlock(s.Body), RegionID: s.RegionID}
	case *MasterStmt:
		return &MasterStmt{MastPos: s.MastPos, Body: CloneBlock(s.Body), RegionID: s.RegionID}
	case *CriticalStmt:
		return &CriticalStmt{CritPos: s.CritPos, Name: s.Name, Body: CloneBlock(s.Body)}
	case *BarrierStmt:
		return &BarrierStmt{BarPos: s.BarPos}
	case *AtomicStmt:
		return &AtomicStmt{AtomPos: s.AtomPos, Target: cloneLValue(s.Target), Op: s.Op, Value: CloneExpr(s.Value)}
	case *PforStmt:
		return &PforStmt{PforPos: s.PforPos, Var: s.Var, From: CloneExpr(s.From), To: CloneExpr(s.To),
			Sched: s.Sched, Nowait: s.Nowait, Body: CloneBlock(s.Body), RegionID: s.RegionID}
	case *SectionsStmt:
		out := &SectionsStmt{SecsPos: s.SecsPos, Nowait: s.Nowait, RegionID: s.RegionID}
		out.SectionIDs = append(out.SectionIDs, s.SectionIDs...)
		for _, b := range s.Bodies {
			out.Bodies = append(out.Bodies, CloneBlock(b))
		}
		return out
	case *InstrCC:
		cp := *s
		return &cp
	case *InstrCCReturn:
		cp := *s
		return &cp
	case *InstrMonoCheck:
		cp := *s
		return &cp
	case *InstrPhaseCount:
		cp := *s
		return &cp
	case *InstrConcNote:
		cp := *s
		return &cp
	}
	panic("ast: CloneStmt: unknown statement type")
}

func cloneLValue(lv LValue) LValue {
	switch lv := lv.(type) {
	case *VarRef:
		cp := *lv
		return &cp
	case *IndexExpr:
		return &IndexExpr{NamePos: lv.NamePos, Name: lv.Name, Index: CloneExpr(lv.Index)}
	}
	panic("ast: cloneLValue: unknown lvalue type")
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = CloneExpr(e)
	}
	return out
}

// CloneExpr deep-copies an expression; nil propagates.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *IntLit:
		cp := *e
		return &cp
	case *BoolLit:
		cp := *e
		return &cp
	case *VarRef:
		cp := *e
		return &cp
	case *IndexExpr:
		return &IndexExpr{NamePos: e.NamePos, Name: e.Name, Index: CloneExpr(e.Index)}
	case *BinaryExpr:
		return &BinaryExpr{OpPos: e.OpPos, Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y)}
	case *UnaryExpr:
		return &UnaryExpr{OpPos: e.OpPos, Op: e.Op, X: CloneExpr(e.X)}
	case *CallExpr:
		return &CallExpr{NamePos: e.NamePos, Name: e.Name, Args: cloneExprs(e.Args)}
	}
	panic("ast: CloneExpr: unknown expression type")
}
