package monitor

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWakeBeforeAwait(t *testing.T) {
	m := New()
	m.ThreadStarted()
	m.ThreadStarted()
	m.Lock()
	w := m.NewWaiterLocked("test", func() string { return "w1" })
	m.WakeLocked(w)
	m.Unlock()
	if err := w.Await(); err != nil {
		t.Errorf("Await after wake = %v", err)
	}
}

func TestAwaitBlocksUntilWake(t *testing.T) {
	m := New()
	m.ThreadStarted()
	m.ThreadStarted()
	m.Lock()
	w := m.NewWaiterLocked("test", func() string { return "w1" })
	m.Unlock()
	done := make(chan error, 1)
	go func() { done <- w.Await() }()
	select {
	case <-done:
		t.Fatal("Await returned before wake")
	case <-time.After(10 * time.Millisecond):
	}
	m.Lock()
	m.WakeLocked(w)
	m.Unlock()
	if err := <-done; err != nil {
		t.Errorf("Await = %v", err)
	}
}

func TestAbortWakesAllWithError(t *testing.T) {
	m := New()
	for i := 0; i < 3; i++ {
		m.ThreadStarted()
	}
	boom := errors.New("boom")
	var ws []*Waiter
	m.Lock()
	for i := 0; i < 2; i++ {
		ws = append(ws, m.NewWaiterLocked("test", func() string { return "w" }))
	}
	m.Unlock()
	m.Abort(boom)
	for _, w := range ws {
		if err := w.Await(); err != boom {
			t.Errorf("Await after abort = %v, want boom", err)
		}
	}
	if !m.Aborted() || m.Err() != boom {
		t.Error("abort state not recorded")
	}
}

func TestFirstAbortWins(t *testing.T) {
	m := New()
	e1, e2 := errors.New("first"), errors.New("second")
	m.Abort(e1)
	m.Abort(e2)
	if m.Err() != e1 {
		t.Errorf("Err = %v, want first", m.Err())
	}
}

func TestWaiterAfterAbortWakesImmediately(t *testing.T) {
	m := New()
	m.ThreadStarted()
	boom := errors.New("boom")
	m.Abort(boom)
	m.Lock()
	w := m.NewWaiterLocked("test", func() string { return "late" })
	m.Unlock()
	if err := w.Await(); err != boom {
		t.Errorf("late waiter error = %v", err)
	}
}

func TestQuiescenceDetectsAllBlocked(t *testing.T) {
	m := New()
	m.ThreadStarted()
	m.ThreadStarted()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Lock()
			w := m.NewWaiterLocked("test wait", func() string { return "thread blocked forever" })
			m.Unlock()
			errs[i] = w.Await()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		var d *DeadlockError
		if !errors.As(err, &d) {
			t.Fatalf("want DeadlockError, got %v", err)
		}
		if !strings.Contains(d.Error(), "thread blocked forever") {
			t.Errorf("report must include waiter details: %v", d)
		}
	}
}

func TestQuiescenceOnThreadExit(t *testing.T) {
	m := New()
	m.ThreadStarted() // blocker
	m.ThreadStarted() // exiter
	m.Lock()
	w := m.NewWaiterLocked("MPI collective", func() string { return "rank 0: MPI_Barrier" })
	m.Unlock()
	done := make(chan error, 1)
	go func() { done <- w.Await() }()
	// The second thread exits without ever waking the first.
	m.ThreadExited()
	err := <-done
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("want DeadlockError after exit, got %v", err)
	}
}

func TestNoFalseQuiescenceWhileRunnable(t *testing.T) {
	m := New()
	m.ThreadStarted()
	m.ThreadStarted()
	m.Lock()
	w := m.NewWaiterLocked("test", func() string { return "one blocked" })
	m.Unlock()
	// One thread blocked, one running: no deadlock.
	if m.Aborted() {
		t.Fatal("false quiescence")
	}
	m.Lock()
	m.WakeLocked(w)
	m.Unlock()
	if err := w.Await(); err != nil {
		t.Errorf("Await = %v", err)
	}
}

func TestAllThreadsExitedIsNotDeadlock(t *testing.T) {
	m := New()
	m.ThreadStarted()
	m.ThreadExited()
	if m.Aborted() {
		t.Error("clean exit treated as deadlock")
	}
}

func TestAnalyzerContributesToReport(t *testing.T) {
	m := New()
	m.AddAnalyzer(func() []string { return []string{"rank 1: finalized"} })
	m.ThreadStarted()
	m.Lock()
	w := m.NewWaiterLocked("MPI collective", func() string { return "rank 0 waiting" })
	m.Unlock()
	err := w.Await()
	if err == nil || !strings.Contains(err.Error(), "rank 1: finalized") {
		t.Errorf("analyzer lines missing from report: %v", err)
	}
}

func TestWakeLockedIdempotent(t *testing.T) {
	m := New()
	m.ThreadStarted()
	m.ThreadStarted()
	m.Lock()
	w := m.NewWaiterLocked("test", func() string { return "w" })
	m.WakeLocked(w)
	m.WakeLocked(w) // second wake must be a no-op
	m.Unlock()
	if err := w.Await(); err != nil {
		t.Errorf("Await = %v", err)
	}
	if _, blocked := m.Stats(); blocked != 0 {
		t.Errorf("blocked count corrupted: %d", blocked)
	}
}

func TestStats(t *testing.T) {
	m := New()
	m.ThreadStarted()
	m.ThreadStarted()
	if live, blocked := m.Stats(); live != 2 || blocked != 0 {
		t.Errorf("Stats = %d,%d", live, blocked)
	}
}
